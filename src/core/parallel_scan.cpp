#include "core/parallel_scan.hpp"

#include <algorithm>
#include <cassert>
#include <thread>

namespace vpm::core {

namespace {

// Resolves the overlap bound against the actual PatternSet: derive it when
// unspecified, and reject (in debug builds) an explicit bound that is
// shorter than the longest pattern — that would silently lose matches that
// straddle a segment boundary.
std::size_t set_aware_overlap(const ParallelScanConfig& cfg,
                              const pattern::PatternSet& set) {
  const std::size_t true_max = set.max_pattern_length();
  if (cfg.max_pattern_len == 0) return true_max;
  assert(cfg.max_pattern_len >= true_max &&
         "ParallelScanConfig::max_pattern_len is shorter than the set's longest "
         "pattern; boundary-straddling matches would be lost");
  return cfg.max_pattern_len;
}

struct Segment {
  std::size_t begin = 0;      // first start-offset owned by this segment
  std::size_t end = 0;        // first start-offset NOT owned
  std::size_t scan_end = 0;   // end of the byte slice actually scanned
};

std::vector<Segment> split(std::size_t n, unsigned threads, std::size_t max_len) {
  std::vector<Segment> segs;
  const std::size_t per = (n + threads - 1) / threads;
  for (std::size_t begin = 0; begin < n; begin += per) {
    Segment s;
    s.begin = begin;
    s.end = std::min(begin + per, n);
    // Lookahead so a match starting before `end` can complete.
    s.scan_end = std::min(s.end + (max_len > 0 ? max_len - 1 : 0), n);
    segs.push_back(s);
  }
  return segs;
}

unsigned effective_threads(const ParallelScanConfig& cfg, std::size_t n) {
  unsigned t = cfg.threads != 0 ? cfg.threads : std::thread::hardware_concurrency();
  if (t == 0) t = 1;
  // No point spawning more threads than ~64 KB slices.
  const auto by_size = static_cast<unsigned>(std::max<std::size_t>(n / (64 * 1024), 1));
  return std::min(t, by_size);
}

// Sink that keeps only matches starting inside the owned range.
template <typename OnMatch>
class RangeSink final : public MatchSink {
 public:
  RangeSink(std::size_t base, std::size_t owned_end, OnMatch on_match)
      : base_(base), owned_end_(owned_end), on_match_(on_match) {}

  void on_match(const Match& m) override {
    const std::uint64_t global = base_ + m.pos;
    if (global < owned_end_) on_match_(Match{m.pattern_id, global});
  }

 private:
  std::size_t base_;
  std::size_t owned_end_;
  OnMatch on_match_;
};

std::vector<Match> find_matches_impl(const Matcher& matcher, util::ByteView data,
                                     const ParallelScanConfig& cfg, std::size_t overlap) {
  const unsigned threads = effective_threads(cfg, data.size());
  if (threads <= 1 || data.empty()) return matcher.find_matches(data);

  const auto segments = split(data.size(), threads, overlap);
  std::vector<std::vector<Match>> per_thread(segments.size());
  {
    std::vector<std::jthread> pool;
    pool.reserve(segments.size());
    for (std::size_t i = 0; i < segments.size(); ++i) {
      pool.emplace_back([&, i] {
        const Segment s = segments[i];
        auto collect = [&](const Match& m) { per_thread[i].push_back(m); };
        RangeSink sink(s.begin, s.end, collect);
        matcher.scan({data.data() + s.begin, s.scan_end - s.begin}, sink);
      });
    }
  }

  std::vector<Match> all;
  std::size_t total = 0;
  for (const auto& v : per_thread) total += v.size();
  all.reserve(total);
  for (auto& v : per_thread) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  return all;
}

std::uint64_t count_matches_impl(const Matcher& matcher, util::ByteView data,
                                 const ParallelScanConfig& cfg, std::size_t overlap) {
  const unsigned threads = effective_threads(cfg, data.size());
  if (threads <= 1 || data.empty()) return matcher.count_matches(data);

  const auto segments = split(data.size(), threads, overlap);
  std::vector<std::uint64_t> counts(segments.size(), 0);
  {
    std::vector<std::jthread> pool;
    pool.reserve(segments.size());
    for (std::size_t i = 0; i < segments.size(); ++i) {
      pool.emplace_back([&, i] {
        const Segment s = segments[i];
        auto count = [&](const Match&) { ++counts[i]; };
        RangeSink sink(s.begin, s.end, count);
        matcher.scan({data.data() + s.begin, s.scan_end - s.begin}, sink);
      });
    }
  }
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  return total;
}

}  // namespace

std::vector<Match> parallel_find_matches(const Matcher& matcher, util::ByteView data,
                                         const ParallelScanConfig& cfg) {
  // Without a PatternSet an unspecified bound (0) cannot be derived, and a
  // full-overlap split would burn every thread on a whole-buffer scan for no
  // wall-clock gain — run single-threaded instead of spawning the pool.
  if (cfg.max_pattern_len == 0) return matcher.find_matches(data);
  return find_matches_impl(matcher, data, cfg, cfg.max_pattern_len);
}

std::uint64_t parallel_count_matches(const Matcher& matcher, util::ByteView data,
                                     const ParallelScanConfig& cfg) {
  if (cfg.max_pattern_len == 0) return matcher.count_matches(data);
  return count_matches_impl(matcher, data, cfg, cfg.max_pattern_len);
}

std::vector<Match> parallel_find_matches(const Matcher& matcher,
                                         const pattern::PatternSet& set,
                                         util::ByteView data,
                                         const ParallelScanConfig& cfg) {
  return find_matches_impl(matcher, data, cfg, set_aware_overlap(cfg, set));
}

std::uint64_t parallel_count_matches(const Matcher& matcher,
                                     const pattern::PatternSet& set, util::ByteView data,
                                     const ParallelScanConfig& cfg) {
  return count_matches_impl(matcher, data, cfg, set_aware_overlap(cfg, set));
}

}  // namespace vpm::core
