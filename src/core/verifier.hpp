// The verification round shared by S-PATCH and V-PATCH.
//
// "The verification round is as in DFC" (paper §IV-A2): candidate positions
// from A_short go through the short compact table, candidates from A_long
// through the long table.  Splitting verification into its own round keeps
// the filter structures cache-resident during round one and avoids mixing
// scalar verification into vector code during round two.
#pragma once

#include <cstdint>
#include <span>

#include "dfc/compact_table.hpp"
#include "match/matcher.hpp"
#include "pattern/pattern_set.hpp"

namespace vpm::core {

class Verifier {
 public:
  explicit Verifier(const pattern::PatternSet& set, unsigned long_bucket_bits = 15)
      : short_table_(set), long_table_(set, long_bucket_bits) {}

  void verify_short(util::ByteView data, std::span<const std::uint32_t> positions,
                    MatchSink& sink) const {
    for (std::uint32_t pos : positions) short_table_.verify_at(data, pos, sink);
  }

  void verify_long(util::ByteView data, std::span<const std::uint32_t> positions,
                   MatchSink& sink) const {
    for (std::uint32_t pos : positions) long_table_.verify_at(data, pos, sink);
  }

  const dfc::ShortTable& short_table() const { return short_table_; }
  const dfc::LongTable& long_table() const { return long_table_; }

  std::size_t memory_bytes() const {
    return short_table_.memory_bytes() + long_table_.memory_bytes();
  }

 private:
  dfc::ShortTable short_table_;
  dfc::LongTable long_table_;
};

}  // namespace vpm::core
