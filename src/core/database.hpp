// The compile/runtime API split.
//
// vpm::Database is the immutable compiled artifact: compile() copies the
// pattern bytes and metadata out of the caller's PatternSet and builds the
// engine over the copy, so the source set may be destroyed the moment
// compile() returns (the old make_matcher contract — "the PatternSet must
// outlive the matcher" — does not apply here).  A Database is shared by
// std::shared_ptr<const Database> and is safe to scan from any number of
// threads concurrently: all mutable scan state lives in the per-thread
// Scanner session.
//
// vpm::Scanner is the thin per-thread runtime handle: a Database ref plus
// the reusable ScanScratch the batch fast path needs.  One Scanner per
// thread; Scanners are cheap (the compiled tables are shared, not copied).
//
// Identity: every compile() assigns a process-monotonic `generation` id
// (never reused — the pipeline's hot-swap tags alerts with it), and a
// content `fingerprint` (64-bit hash over the pattern bytes/flags/groups)
// that is stable across processes and survives save_patterns() /
// from_serialized() round trips.
//
//   auto db = vpm::compile(core::Algorithm::vpatch, rules);  // rules may die
//   vpm::Scanner scanner(db);                                // per thread
//   scanner.scan(payload, sink);
//   scanner.scan_batch(payloads, batch_sink);
#pragma once

#include <memory>
#include <mutex>

#include "core/matcher_factory.hpp"
#include "core/prefilter.hpp"
#include "match/matcher.hpp"
#include "pattern/pattern_set.hpp"
#include "pattern/serialize.hpp"

namespace vpm {

class Database;
using DatabasePtr = std::shared_ptr<const Database>;

class Database {
  struct Private {};  // compile()/from_serialized() are the only builders

 public:
  Database(Private, core::Algorithm algorithm, pattern::PatternSet patterns);

  core::Algorithm algorithm() const { return algorithm_; }
  std::string_view algorithm_name() const { return core::algorithm_name(algorithm_); }
  std::size_t pattern_count() const { return patterns_.size(); }
  // Engine tables plus the owned pattern storage.
  std::size_t memory_bytes() const;

  // Process-monotonic compile id (never reused; assigned per compile()).
  std::uint64_t generation() const { return generation_; }
  // Content hash over (count, and per pattern: length, nocase, group,
  // bytes); independent of the algorithm and of the process.
  std::uint64_t fingerprint() const { return fingerprint_; }

  // The owned pattern copy (ids are the ids engines report).
  const pattern::PatternSet& patterns() const { return patterns_; }

  // Per-group approximate q-gram signatures, built eagerly at compile time
  // over each group's own + generic patterns (the same composition
  // GroupedRules scans).  Null slot = no usable signature for that group
  // (empty, or contains a sub-3-byte pattern).  Serialized inside
  // save_patterns() and restored — checksummed — by from_serialized(), so a
  // loaded database screens identically to the compiling process.
  const core::GroupPrefilters& prefilters() const { return prefilters_; }
  const core::PrefilterPtr& prefilter_for(pattern::Group group) const {
    return prefilters_[static_cast<std::size_t>(group)];
  }

  // The compiled whole-set engine.  Scanning through it directly is valid
  // (scan / scan_batch are const and thread-safe with caller-owned
  // scratch); Scanner packages exactly that.  Built lazily on first access
  // (std::call_once, so concurrent first readers are safe): consumers that
  // only need the pattern artifact — GroupedRules/IdsEngine/the pipeline
  // compile their own per-group matchers — never pay for or hold the
  // unused whole-set tables.  Availability of the algorithm is validated
  // eagerly in compile(), so this cannot throw for a missing kernel.
  const Matcher& engine() const;

  // Serialized v2 pattern database carrying this database's fingerprint and
  // algorithm hint; feed to from_serialized() to rebuild an equivalent
  // Database (new generation, same fingerprint) in another process.
  util::Bytes save_patterns() const;

  // Rebuilds from save_patterns() output (or any v1/v2 pattern blob).  The
  // no-algorithm overload requires a v2 blob with an algorithm hint that is
  // available on this CPU; the explicit overload overrides/supplies the
  // engine.  A v2 blob must carry the content fingerprint (as
  // save_patterns() writes) and it is verified against the deserialized
  // patterns, and must carry the trailing checksummed prefilter section;
  // absence, truncation, or mismatch of either throws std::invalid_argument
  // (corrupt or tampered payload).  v1 blobs predate fingerprints and the
  // prefilter section: they load unchecked and rebuild signatures locally.
  static DatabasePtr from_serialized(util::ByteView blob);
  static DatabasePtr from_serialized(util::ByteView blob, core::Algorithm algorithm);

  static std::uint64_t fingerprint_of(const pattern::PatternSet& set);

 private:
  friend DatabasePtr compile(core::Algorithm, pattern::PatternSet);

  static DatabasePtr from_serialized_impl(util::ByteView blob,
                                          const core::Algorithm* algorithm_override);

  pattern::PatternSet patterns_;  // outlives engine_: the engine is built over it
  mutable std::once_flag engine_once_;
  mutable MatcherPtr engine_;  // lazily built; logically part of the const artifact
  core::GroupPrefilters prefilters_;
  core::Algorithm algorithm_;
  std::uint64_t generation_;
  std::uint64_t fingerprint_;
};

// Builds an immutable, shareable compiled database.  The set is copied (or
// moved — pass std::move(set) to avoid the copy); the caller's set is not
// referenced after compile() returns.  Throws std::runtime_error for vector
// engines on unsupported CPUs (same contract as make_matcher; checked here
// even though the whole-set engine itself materializes lazily).
DatabasePtr compile(core::Algorithm algorithm, pattern::PatternSet set);

// The per-thread scan session: a shared Database plus this thread's scratch.
class Scanner {
 public:
  // Throws std::invalid_argument on a null database.
  explicit Scanner(DatabasePtr db);

  const Database& database() const { return *db_; }
  const DatabasePtr& database_ptr() const { return db_; }

  // Swaps this session onto a new database (ruleset update).  Scratch
  // storage is retained; its state re-keys to the new engine automatically
  // (owner ids are never reused, so stale state cannot leak across).
  void rebind(DatabasePtr db);

  void scan(util::ByteView data, MatchSink& sink) const {
    db_->engine().scan(data, sink);
  }
  // Non-const: reuses this session's scratch across calls.
  void scan_batch(std::span<const util::ByteView> payloads, BatchSink& sink) {
    db_->engine().scan_batch(payloads, sink, scratch_);
  }

  std::uint64_t count_matches(util::ByteView data) const {
    return db_->engine().count_matches(data);
  }
  std::vector<Match> find_matches(util::ByteView data) const {
    return db_->engine().find_matches(data);
  }

 private:
  DatabasePtr db_;
  ScanScratch scratch_;
};

}  // namespace vpm
