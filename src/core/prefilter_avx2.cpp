// Approximate q-gram prefilter screen, AVX2: 8 STRIDED probe positions per
// block (lane j probes position p + j*threshold, so one block disposes of
// 8*threshold positions), one gather for the grams and one for the
// signature words, and a scalar neighborhood verify on the rare lanes that
// hit.  See prefilter_kernels.hpp for why strided probing cannot miss a
// qualifying run.
#include "core/prefilter_kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <bit>

namespace vpm::core {

// Gathers read data[idx .. idx+3] for idx <= len - q, and the verify/tail
// helpers load 4 bytes at the same positions: all covered by kPrefilterPad.
bool prefilter_screen_avx2(const PrefilterView& v, const std::uint8_t* data,
                           std::size_t len) {
  const std::size_t positions = len - v.q + 1;  // caller guarantees len >= q
  const std::size_t span = std::size_t{8} * v.threshold;  // positions per block
  const __m256i lane_off = _mm256_mullo_epi32(
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
      _mm256_set1_epi32(static_cast<int>(v.threshold)));
  const __m256i gram_mask = _mm256_set1_epi32(v.q == 4 ? -1 : 0x00FFFFFF);
  const __m256i gamma = _mm256_set1_epi32(static_cast<int>(util::kGoldenGamma));
  const __m256i m31 = _mm256_set1_epi32(31);
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i wmask = _mm256_set1_epi32(static_cast<int>(v.word_mask));
  const int* bytes = reinterpret_cast<const int*>(data);
  const int* words_base = reinterpret_cast<const int*>(v.words);

  std::size_t p = 0;
  for (; p + (span - v.threshold) < positions; p += span) {  // lane 7 in range
    const __m256i idx = _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(p)), lane_off);
    const __m256i grams =
        _mm256_and_si256(_mm256_i32gather_epi32(bytes, idx, 1), gram_mask);
    const __m256i h = _mm256_mullo_epi32(grams, gamma);
    const __m256i widx = _mm256_and_si256(_mm256_srli_epi32(h, 10), wmask);
    const __m256i words = _mm256_i32gather_epi32(words_base, widx, 4);
    const __m256i b1 = _mm256_and_si256(h, m31);
    const __m256i b2 = _mm256_and_si256(_mm256_srli_epi32(h, 5), m31);
    const __m256i hit = _mm256_and_si256(
        _mm256_and_si256(_mm256_srlv_epi32(words, b1), _mm256_srlv_epi32(words, b2)),
        one);
    std::uint32_t m = static_cast<std::uint32_t>(_mm256_movemask_ps(
                          _mm256_castsi256_ps(_mm256_cmpeq_epi32(hit, one)))) &
                      0xFFu;
    while (m != 0) {
      const unsigned lane = static_cast<unsigned>(std::countr_zero(m));
      if (prefilter_verify_run(v, data, positions, p + std::size_t{lane} * v.threshold)) {
        return true;
      }
      m &= m - 1;
    }
  }
  return prefilter_screen_folded_tail(v, data, positions, p);
}

}  // namespace vpm::core

#else  // no AVX2 toolchain support

#include <cstdlib>

namespace vpm::core {

bool prefilter_screen_avx2(const PrefilterView&, const std::uint8_t*, std::size_t) {
  std::abort();  // dispatch must not select an uncompiled kernel
}

}  // namespace vpm::core

#endif
