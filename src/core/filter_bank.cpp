#include "core/filter_bank.hpp"

#include "util/bitarray.hpp"

namespace vpm::core {

FilterBank::FilterBank(const pattern::PatternSet& set, FilterBankConfig cfg)
    : f3_(cfg.f3_bits_log2) {
  for (const pattern::Pattern& p : set) {
    if (p.size() < pattern::kShortLongBoundary) {
      f1_.add_pattern_prefix(p);
      has_short_ = true;
    } else {
      f2_.add_pattern_prefix(p);
      f3_.add_pattern_prefix(p);
      has_long_ = true;
    }
  }
  // Byte-interleaved merged layout: merged[2k] = F1 byte k, merged[2k+1] =
  // F2 byte k.  One dword gather at offset 2*(window>>3) then holds the F1
  // byte in bits 0..7 and the F2 byte in bits 8..15.
  const std::uint8_t* b1 = f1_.bits().data();
  const std::uint8_t* b2 = f2_.bits().data();
  const std::size_t nbytes = dfc::DirectFilter2B::kBits / 8;
  merged_.assign(2 * nbytes + util::BitArray::kGatherSlack, 0);
  for (std::size_t k = 0; k < nbytes; ++k) {
    merged_[2 * k] = b1[k];
    merged_[2 * k + 1] = b2[k];
  }
}

}  // namespace vpm::core
