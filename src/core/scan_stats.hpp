// Instrumentation counters for the Fig. 5b experiment: the share of time in
// filtering vs verification, and how many vector lanes carry useful work
// when Filter 3 is evaluated speculatively.
#pragma once

#include <cstdint>

namespace vpm::core {

struct ScanStats {
  double filter_seconds = 0.0;
  double verify_seconds = 0.0;
  std::uint64_t short_candidates = 0;  // positions stored into A_short
  std::uint64_t long_candidates = 0;   // positions stored into A_long
  std::uint64_t matches = 0;
  // Vector-only: every time the kernel proceeds to Filter 3 ("at least one
  // element passed Filter 2"), the number of lanes that actually passed.
  std::uint64_t f3_blocks = 0;
  std::uint64_t f3_useful_lanes = 0;
  unsigned vector_width = 1;

  double filter_time_fraction() const {
    const double total = filter_seconds + verify_seconds;
    return total > 0.0 ? filter_seconds / total : 0.0;
  }
  // Mean fraction of useful lanes when Filter 3 runs (paper Fig. 5b red line).
  double f3_lane_utilization() const {
    if (f3_blocks == 0 || vector_width == 0) return 0.0;
    return static_cast<double>(f3_useful_lanes) /
           static_cast<double>(f3_blocks * vector_width);
  }

  void reset() { *this = ScanStats{}; }
};

}  // namespace vpm::core
