// ISA-specific V-PATCH filtering kernels (Algorithm 2), linked from
// translation units compiled with the matching -m flags.
//
// Contract shared by all kernels:
//   * filter positions [begin, end) of data (end <= total_len - 1, i.e.
//     every position has a complete 2-byte window);
//   * append hit positions to out.short_pos / out.long_pos (left-pack stores
//     may write a full vector of slack past the logical end);
//   * stop at the last position the vector loop can safely cover (raw loads
//     read kLoadBytes bytes) and RETURN the first unfiltered position — the
//     caller finishes with the scalar loop and the tail probe;
//   * when stats is non-null, record speculative Filter-3 lane utilization.
#pragma once

#include <cstdint>
#include <span>

#include "core/candidates.hpp"
#include "core/filter_bank.hpp"
#include "core/scan_stats.hpp"

namespace vpm::core {

// Ablation knobs for the design choices called out in DESIGN.md §5.  The
// defaults are the paper's configuration.
struct KernelOptions {
  bool unroll2 = true;          // 2x manual unroll (two gather chains in flight)
  bool merged_filters = true;   // one gather for F1+F2 vs two separate gathers
  bool speculative_f3 = true;   // all-lane F3 + mask vs per-lane scalar probes
};

// AVX2, W = 8. Requires simd::cpu().has_avx2_kernel().
std::size_t vpatch_filter_avx2(const std::uint8_t* data, std::size_t begin, std::size_t end,
                               std::size_t total_len, const FilterBank& bank,
                               CandidateBuffers& out, const KernelOptions& opt,
                               ScanStats* stats);

// AVX-512, W = 16. Requires simd::cpu().has_avx512_kernel().
std::size_t vpatch_filter_avx512(const std::uint8_t* data, std::size_t begin, std::size_t end,
                                 std::size_t total_len, const FilterBank& bank,
                                 CandidateBuffers& out, const KernelOptions& opt,
                                 ScanStats* stats);

// Whole-batch round one (the scan_batch fast path): filters every payload
// with size() <= max_payload into the shared candidate pool, appending each
// candidate's payload index to short_item / long_item in step (slack
// contract as above, caller provides pool-sized item arrays).  Kernel
// constants (shuffle masks, filter pointers, F3 hash bits) are hoisted
// across the batch, so the per-call setup a small-packet scan() pays per
// payload is paid once per batch.  Each payload's vector remainder runs
// through the scalar filter and the zero-padded tail probe, exactly as
// scan() does; empty and oversized payloads are skipped (the caller scans
// oversized ones through the chunked per-payload path).
void vpatch_filter_batch_avx2(std::span<const util::ByteView> payloads,
                              const FilterBank& bank, CandidateBuffers& out,
                              std::uint32_t* short_item, std::uint32_t* long_item,
                              std::size_t max_payload, const KernelOptions& opt);
void vpatch_filter_batch_avx512(std::span<const util::ByteView> payloads,
                                const FilterBank& bank, CandidateBuffers& out,
                                std::uint32_t* short_item, std::uint32_t* long_item,
                                std::size_t max_payload, const KernelOptions& opt);

// Filtering with the candidate stores suppressed — the "V-PATCH-filtering"
// series of Fig. 6 (counts survive; the position writes do not happen).
struct NoStoreCounts {
  std::uint64_t short_hits = 0;
  std::uint64_t long_hits = 0;
};
std::size_t vpatch_filter_nostore_avx2(const std::uint8_t* data, std::size_t begin,
                                       std::size_t end, std::size_t total_len,
                                       const FilterBank& bank, NoStoreCounts& counts);
std::size_t vpatch_filter_nostore_avx512(const std::uint8_t* data, std::size_t begin,
                                         std::size_t end, std::size_t total_len,
                                         const FilterBank& bank, NoStoreCounts& counts);

}  // namespace vpm::core
