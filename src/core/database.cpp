#include "core/database.hpp"

#include <atomic>
#include <stdexcept>

#include "util/hash.hpp"

namespace vpm {

namespace {

std::uint64_t next_generation() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::uint64_t Database::fingerprint_of(const pattern::PatternSet& set) {
  std::uint64_t h = util::fnv1a64_u64(set.size(), util::kFnv64Seed);
  for (const pattern::Pattern& p : set) {
    h = util::fnv1a64_u64(p.size(), h);
    h = util::fnv1a64_u64((p.nocase ? 1u : 0u) |
                              (static_cast<std::uint64_t>(p.group) << 8),
                          h);
    h = util::fnv1a64(p.bytes.data(), p.bytes.size(), h);
  }
  return h;
}

Database::Database(Private, core::Algorithm algorithm, pattern::PatternSet patterns)
    : patterns_(std::move(patterns)),
      algorithm_(algorithm),
      generation_(next_generation()),
      fingerprint_(fingerprint_of(patterns_)) {
  // Fail at compile() time, not on first engine() use: a database whose
  // algorithm this CPU cannot run must never be handed out.
  if (!core::algorithm_available(algorithm_)) {
    throw std::runtime_error(std::string("compile: algorithm '") +
                             std::string(core::algorithm_name(algorithm_)) +
                             "' is unavailable on this CPU");
  }
  // Per-group signatures over the same pattern subset each GroupedRules
  // entry scans (the group's own patterns plus the generic group).
  for (std::size_t g = 0; g < core::kPrefilterGroupCount; ++g) {
    const auto group = static_cast<pattern::Group>(g);
    prefilters_[g] =
        core::build_prefilter(patterns_.filter_groups({group, pattern::Group::generic}));
  }
}

const Matcher& Database::engine() const {
  std::call_once(engine_once_,
                 [this] { engine_ = core::make_matcher(algorithm_, patterns_); });
  return *engine_;
}

std::size_t Database::memory_bytes() const {
  std::size_t pattern_bytes = 0;
  for (const pattern::Pattern& p : patterns_) {
    pattern_bytes += sizeof(pattern::Pattern) + p.bytes.capacity();
  }
  std::size_t prefilter_bytes = 0;
  for (const core::PrefilterPtr& f : prefilters_) {
    if (f != nullptr) prefilter_bytes += f->memory_bytes();
  }
  return engine().memory_bytes() + pattern_bytes + prefilter_bytes;
}

util::Bytes Database::save_patterns() const {
  pattern::DbHeader header;
  header.algorithm_hint = static_cast<std::uint8_t>(algorithm_);
  header.fingerprint = fingerprint_;
  util::Bytes out = pattern::serialize_patterns(patterns_, header);
  core::append_prefilter_section(out, prefilters_, fingerprint_);
  return out;
}

DatabasePtr compile(core::Algorithm algorithm, pattern::PatternSet set) {
  return std::make_shared<Database>(Database::Private{}, algorithm, std::move(set));
}

DatabasePtr Database::from_serialized_impl(util::ByteView blob,
                                           const core::Algorithm* algorithm_override) {
  pattern::DbHeader header;
  std::size_t consumed = 0;
  pattern::PatternSet set = pattern::deserialize_patterns(blob, &header, &consumed);
  // v2 blobs MUST carry the matching content fingerprint (save_patterns
  // always writes it); exempting 0 would let corruption that zeroes the
  // header field silently disable the integrity check.  v1 blobs predate
  // fingerprints and are admitted unchecked.
  if (header.version >= 2 && header.fingerprint != Database::fingerprint_of(set)) {
    throw std::invalid_argument("pattern db: fingerprint mismatch (corrupt payload)");
  }
  core::Algorithm algorithm;
  if (algorithm_override != nullptr) {
    algorithm = *algorithm_override;
  } else {
    if (header.algorithm_hint == pattern::kNoAlgorithmHint ||
        !core::algorithm_from_name(
             core::algorithm_name(static_cast<core::Algorithm>(header.algorithm_hint)))
             .has_value()) {
      throw std::invalid_argument(
          "pattern db: no usable algorithm hint; pass one explicitly");
    }
    algorithm = static_cast<core::Algorithm>(header.algorithm_hint);
    if (!core::algorithm_available(algorithm)) {
      // A blob saved on a wider-ISA host: the payload is fine, this CPU just
      // cannot run the hinted engine — distinct from corruption, and fixable
      // by the caller choosing an engine for this host.
      throw std::invalid_argument(
          std::string("pattern db: hinted algorithm '") +
          std::string(core::algorithm_name(algorithm)) +
          "' is unavailable on this CPU; pass one explicitly");
    }
  }
  auto db = std::make_shared<Database>(Private{}, algorithm, std::move(set));
  if (header.version >= 2) {
    // The prefilter section is mandatory in v2 blobs: tolerating its absence
    // would make every truncation at the pattern-records boundary load
    // silently.  Adopting the parsed (checksummed) signatures — rather than
    // keeping the ctor-rebuilt ones — makes the loaded artifact screen
    // bit-identically to the process that saved it.
    db->prefilters_ =
        core::parse_prefilter_section(blob.subspan(consumed), db->fingerprint_);
  }
  return db;
}

DatabasePtr Database::from_serialized(util::ByteView blob) {
  return from_serialized_impl(blob, nullptr);
}

DatabasePtr Database::from_serialized(util::ByteView blob, core::Algorithm algorithm) {
  return from_serialized_impl(blob, &algorithm);
}

Scanner::Scanner(DatabasePtr db) : db_(std::move(db)) {
  if (db_ == nullptr) throw std::invalid_argument("Scanner: null database");
}

void Scanner::rebind(DatabasePtr db) {
  if (db == nullptr) throw std::invalid_argument("Scanner::rebind: null database");
  db_ = std::move(db);
}

}  // namespace vpm
