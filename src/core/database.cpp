#include "core/database.hpp"

#include <atomic>
#include <stdexcept>

#include "util/hash.hpp"

namespace vpm {

namespace {

std::uint64_t next_generation() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::uint64_t Database::fingerprint_of(const pattern::PatternSet& set) {
  std::uint64_t h = util::fnv1a64_u64(set.size(), util::kFnv64Seed);
  for (const pattern::Pattern& p : set) {
    h = util::fnv1a64_u64(p.size(), h);
    h = util::fnv1a64_u64((p.nocase ? 1u : 0u) |
                              (static_cast<std::uint64_t>(p.group) << 8),
                          h);
    h = util::fnv1a64(p.bytes.data(), p.bytes.size(), h);
  }
  return h;
}

Database::Database(Private, core::Algorithm algorithm, pattern::PatternSet patterns)
    : patterns_(std::move(patterns)),
      algorithm_(algorithm),
      generation_(next_generation()),
      fingerprint_(fingerprint_of(patterns_)) {
  // Fail at compile() time, not on first engine() use: a database whose
  // algorithm this CPU cannot run must never be handed out.
  if (!core::algorithm_available(algorithm_)) {
    throw std::runtime_error(std::string("compile: algorithm '") +
                             std::string(core::algorithm_name(algorithm_)) +
                             "' is unavailable on this CPU");
  }
}

const Matcher& Database::engine() const {
  std::call_once(engine_once_,
                 [this] { engine_ = core::make_matcher(algorithm_, patterns_); });
  return *engine_;
}

std::size_t Database::memory_bytes() const {
  std::size_t pattern_bytes = 0;
  for (const pattern::Pattern& p : patterns_) {
    pattern_bytes += sizeof(pattern::Pattern) + p.bytes.capacity();
  }
  return engine().memory_bytes() + pattern_bytes;
}

util::Bytes Database::save_patterns() const {
  pattern::DbHeader header;
  header.algorithm_hint = static_cast<std::uint8_t>(algorithm_);
  header.fingerprint = fingerprint_;
  return pattern::serialize_patterns(patterns_, header);
}

DatabasePtr compile(core::Algorithm algorithm, pattern::PatternSet set) {
  return std::make_shared<Database>(Database::Private{}, algorithm, std::move(set));
}

namespace {

DatabasePtr from_serialized_impl(util::ByteView blob,
                                 const core::Algorithm* algorithm_override) {
  pattern::DbHeader header;
  pattern::PatternSet set = pattern::deserialize_patterns(blob, &header);
  // v2 blobs MUST carry the matching content fingerprint (save_patterns
  // always writes it); exempting 0 would let corruption that zeroes the
  // header field silently disable the integrity check.  v1 blobs predate
  // fingerprints and are admitted unchecked.
  if (header.version >= 2 && header.fingerprint != Database::fingerprint_of(set)) {
    throw std::invalid_argument("pattern db: fingerprint mismatch (corrupt payload)");
  }
  core::Algorithm algorithm;
  if (algorithm_override != nullptr) {
    algorithm = *algorithm_override;
  } else {
    if (header.algorithm_hint == pattern::kNoAlgorithmHint ||
        !core::algorithm_from_name(
             core::algorithm_name(static_cast<core::Algorithm>(header.algorithm_hint)))
             .has_value()) {
      throw std::invalid_argument(
          "pattern db: no usable algorithm hint; pass one explicitly");
    }
    algorithm = static_cast<core::Algorithm>(header.algorithm_hint);
    if (!core::algorithm_available(algorithm)) {
      // A blob saved on a wider-ISA host: the payload is fine, this CPU just
      // cannot run the hinted engine — distinct from corruption, and fixable
      // by the caller choosing an engine for this host.
      throw std::invalid_argument(
          std::string("pattern db: hinted algorithm '") +
          std::string(core::algorithm_name(algorithm)) +
          "' is unavailable on this CPU; pass one explicitly");
    }
  }
  return compile(algorithm, std::move(set));
}

}  // namespace

DatabasePtr Database::from_serialized(util::ByteView blob) {
  return from_serialized_impl(blob, nullptr);
}

DatabasePtr Database::from_serialized(util::ByteView blob, core::Algorithm algorithm) {
  return from_serialized_impl(blob, &algorithm);
}

Scanner::Scanner(DatabasePtr db) : db_(std::move(db)) {
  if (db_ == nullptr) throw std::invalid_argument("Scanner: null database");
}

void Scanner::rebind(DatabasePtr db) {
  if (db == nullptr) throw std::invalid_argument("Scanner::rebind: null database");
  db_ = std::move(db);
}

}  // namespace vpm
