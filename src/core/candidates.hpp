// Candidate-position buffers (the paper's A_short / A_long temporary arrays).
//
// Round one appends positions; round two verifies and clears.  The arrays
// carry slack beyond the logical end because the AVX2 left-pack store always
// writes a full vector register (8 dwords) regardless of how many lanes
// matched.
#pragma once

#include <cstdint>
#include <vector>

namespace vpm::core {

struct CandidateBuffers {
  std::vector<std::uint32_t> short_pos;
  std::vector<std::uint32_t> long_pos;
  std::uint32_t n_short = 0;
  std::uint32_t n_long = 0;

  static constexpr std::size_t kStoreSlack = 16;  // >= one full vector store

  // Capacity for filtering a chunk of `chunk_positions` positions: every
  // position can be stored in both arrays in the worst case.
  void ensure_capacity(std::size_t chunk_positions) {
    const std::size_t need = chunk_positions + kStoreSlack;
    if (short_pos.size() < need) short_pos.resize(need);
    if (long_pos.size() < need) long_pos.resize(need);
  }

  void clear() { n_short = n_long = 0; }
};

}  // namespace vpm::core
