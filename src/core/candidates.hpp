// Candidate-position buffers (the paper's A_short / A_long temporary arrays).
//
// Round one appends positions; round two verifies and clears.  The arrays
// carry slack beyond the logical end because the AVX2 left-pack store always
// writes a full vector register (8 dwords) regardless of how many lanes
// matched.
//
// Storage is deliberately UNINITIALIZED on growth: every dword below the
// logical end (n_short / n_long) is written by a left-pack store or the
// scalar append before it is ever read, and the slack region is write-only,
// so the value-initialization a std::vector resize would perform is pure
// waste on the hot path.
#pragma once

#include <cstdint>
#include <memory>

#include "match/matcher.hpp"

namespace vpm::core {

// Grow-only array of uninitialized trivially-copyable storage.  Growth
// discards previous contents (callers fill from scratch after ensure()).
template <class T>
class UninitArray {
 public:
  void ensure(std::size_t need) {
    if (capacity_ < need) {
      data_ = std::make_unique_for_overwrite<T[]>(need);
      capacity_ = need;
    }
  }
  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  std::size_t capacity() const { return capacity_; }

 private:
  std::unique_ptr<T[]> data_;
  std::size_t capacity_ = 0;
};

struct CandidateBuffers {
  UninitArray<std::uint32_t> short_pos;
  UninitArray<std::uint32_t> long_pos;
  std::uint32_t n_short = 0;
  std::uint32_t n_long = 0;

  static constexpr std::size_t kStoreSlack = 16;  // >= one full vector store

  // Capacity for filtering `chunk_positions` input positions: every position
  // can be stored in both arrays in the worst case.  Growth discards current
  // contents (call before round one starts, never between rounds).
  void ensure_capacity(std::size_t chunk_positions) {
    const std::size_t need = chunk_positions + kStoreSlack;
    short_pos.ensure(need);
    long_pos.ensure(need);
  }

  void clear() { n_short = n_long = 0; }
};

// Reusable state for the two-round batch fast path (Matcher::scan_batch):
// one shared candidate pool segmented per payload, the candidate -> payload
// index maps, and the stage-one scratch of the software-pipelined deferred
// verification round.  Installed into a caller-owned ScanScratch so the
// steady-state batch loop performs zero heap allocations.
struct BatchScanState final : ScanScratch::State {
  CandidateBuffers buffers;
  UninitArray<std::uint32_t> short_item;   // short candidate -> payload index
  UninitArray<std::uint32_t> long_item;    // long candidate -> payload index
  UninitArray<std::uint32_t> entry_begin;  // resolved CSR entry ranges (long)
  UninitArray<std::uint32_t> entry_end;
  UninitArray<std::uint32_t> window4;      // 4-byte windows of long candidates
};

}  // namespace vpm::core
