#include "core/matcher_factory.hpp"

#include "ac/ac_compact.hpp"
#include "ac/ac_full.hpp"
#include "ac/ac_sparse.hpp"
#include "core/naive.hpp"
#include "core/spatch.hpp"
#include "dfc/dfc.hpp"
#include "dfc/vector_dfc.hpp"
#include "simd/cpu_features.hpp"
#include "wm/wu_manber.hpp"

namespace vpm::core {

std::string_view algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::naive: return "naive";
    case Algorithm::aho_corasick: return "aho-corasick";
    case Algorithm::aho_corasick_sparse: return "aho-corasick-sparse";
    case Algorithm::aho_corasick_compact: return "aho-corasick-compact";
    case Algorithm::dfc: return "dfc";
    case Algorithm::vector_dfc: return "vector-dfc";
    case Algorithm::spatch: return "s-patch";
    case Algorithm::vpatch: return "v-patch";
    case Algorithm::vpatch_avx2: return "v-patch-avx2";
    case Algorithm::vpatch_avx512: return "v-patch-avx512";
    case Algorithm::wu_manber: return "wu-manber";
  }
  return "?";
}

std::optional<Algorithm> algorithm_from_name(std::string_view name) {
  for (Algorithm a : {Algorithm::naive, Algorithm::aho_corasick, Algorithm::aho_corasick_sparse,
                      Algorithm::aho_corasick_compact, Algorithm::dfc, Algorithm::vector_dfc,
                      Algorithm::spatch, Algorithm::vpatch, Algorithm::vpatch_avx2,
                      Algorithm::vpatch_avx512, Algorithm::wu_manber}) {
    if (algorithm_name(a) == name) return a;
  }
  return std::nullopt;
}

bool algorithm_available(Algorithm a) {
  switch (a) {
    case Algorithm::vector_dfc:
    case Algorithm::vpatch_avx2:
      return simd::cpu().has_avx2_kernel();
    case Algorithm::vpatch_avx512:
      return simd::cpu().has_avx512_kernel();
    default:
      return true;
  }
}

std::vector<Algorithm> available_algorithms() {
  std::vector<Algorithm> out;
  for (Algorithm a : {Algorithm::naive, Algorithm::aho_corasick, Algorithm::aho_corasick_sparse,
                      Algorithm::aho_corasick_compact, Algorithm::dfc, Algorithm::vector_dfc,
                      Algorithm::spatch, Algorithm::vpatch, Algorithm::vpatch_avx2,
                      Algorithm::vpatch_avx512, Algorithm::wu_manber}) {
    if (algorithm_available(a)) out.push_back(a);
  }
  return out;
}

MatcherPtr make_matcher(Algorithm a, const pattern::PatternSet& set) {
  switch (a) {
    case Algorithm::naive:
      return std::make_unique<NaiveMatcher>(set);
    case Algorithm::aho_corasick:
      return std::make_unique<ac::AcFullMatcher>(set);
    case Algorithm::aho_corasick_sparse:
      return std::make_unique<ac::AcSparseMatcher>(set);
    case Algorithm::aho_corasick_compact:
      // Always available: the scalar compact scan needs no vector ISA; the
      // lane-parallel scan_batch kernel dispatches through simd::cpu().
      return std::make_unique<ac::AcCompactMatcher>(set);
    case Algorithm::dfc:
      return std::make_unique<dfc::DfcMatcher>(set);
    case Algorithm::vector_dfc:
      return std::make_unique<dfc::VectorDfcMatcher>(set);
    case Algorithm::spatch:
      return std::make_unique<SpatchMatcher>(set);
    case Algorithm::vpatch:
      return std::make_unique<VpatchMatcher>(set);
    case Algorithm::vpatch_avx2: {
      VpatchConfig cfg;
      cfg.isa = Isa::avx2;
      return std::make_unique<VpatchMatcher>(set, cfg);
    }
    case Algorithm::vpatch_avx512: {
      VpatchConfig cfg;
      cfg.isa = Isa::avx512;
      return std::make_unique<VpatchMatcher>(set, cfg);
    }
    case Algorithm::wu_manber:
      return std::make_unique<wm::WuManberMatcher>(set);
  }
  throw std::runtime_error("unknown algorithm");
}

}  // namespace vpm::core
