// Engine factory: the five evaluated algorithms (paper §V) plus the extra
// baselines, behind one constructor for benches, examples and tests.
//
// NOTE — compile/runtime split: new code should prefer the Database/Scanner
// API in core/database.hpp (`vpm::compile(algorithm, set)` returns an
// immutable shared artifact that OWNS its pattern copy; `vpm::Scanner` is
// the per-thread session).  make_matcher below remains as the low-level
// building block the Database wraps — DEPRECATED for direct application
// use because of its lifetime contract (the caller's PatternSet must
// outlive the matcher).  See README "API: compile vs. runtime" for the
// migration table.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/vpatch.hpp"
#include "match/matcher.hpp"
#include "pattern/pattern_set.hpp"

namespace vpm::core {

enum class Algorithm : std::uint8_t {
  naive,
  aho_corasick,          // full-matrix (the paper's AC baseline)
  aho_corasick_sparse,   // failure-link variant
  aho_corasick_compact,  // compressed interleaved layout + SIMD lane batch kernel
  dfc,                  // Choi et al. baseline
  vector_dfc,           // direct vectorization of DFC
  spatch,               // scalar restructured design
  vpatch,               // vectorized, widest available kernel
  vpatch_avx2,          // forced W=8
  vpatch_avx512,        // forced W=16
  wu_manber,
};

std::string_view algorithm_name(Algorithm a);
std::optional<Algorithm> algorithm_from_name(std::string_view name);
// All algorithms buildable on this CPU (vector variants only when supported).
std::vector<Algorithm> available_algorithms();
bool algorithm_available(Algorithm a);

// Builds a matcher over `set`. The PatternSet must outlive the matcher —
// this lifetime footgun is why application code should use vpm::compile()
// (core/database.hpp) instead; that wrapper owns a copy of the patterns.
// Throws std::runtime_error for vector engines on unsupported CPUs.
MatcherPtr make_matcher(Algorithm a, const pattern::PatternSet& set);

}  // namespace vpm::core
