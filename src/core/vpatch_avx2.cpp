// V-PATCH filtering kernel, AVX2 (W = 8) — the paper's Haswell target.
#include "core/vpatch_kernels.hpp"

#if defined(__AVX2__)

#include <bit>

#include "core/spatch.hpp"
#include "simd/avx2_ops.hpp"

namespace vpm::core {

namespace {

using namespace simd::avx2;

struct BlockMasks {
  std::uint32_t short_mask = 0;  // lanes that passed Filter 1
  std::uint32_t long_mask = 0;   // lanes that passed Filters 2 AND 3
  std::uint32_t f2_mask = 0;     // lanes that passed Filter 2 (stats)
};

// One 8-position filtering block at base position i (Algorithm 2 body).
template <bool kMerged, bool kSpecF3>
inline BlockMasks process_block(const std::uint8_t* d, std::size_t i, const FilterBank& bank,
                                __m256i shuffle2, __m256i shuffle4, unsigned f3_bits) {
  BlockMasks r;
  const __m256i win2 = windows2(d + i, shuffle2);

  __m256i word_f1, word_f2;
  if constexpr (kMerged) {
    // One gather serves both filters: byte offset 2*(window >> 3) into the
    // interleaved layout; F1 byte in bits 0..7, F2 byte in bits 8..15.
    const __m256i off = _mm256_slli_epi32(_mm256_srli_epi32(win2, 3), 1);
    const __m256i word = gather_u32(bank.merged_data(), off);
    word_f1 = word;
    word_f2 = _mm256_srli_epi32(word, 8);
  } else {
    const __m256i off = _mm256_srli_epi32(win2, 3);
    word_f1 = gather_u32(bank.f1_data(), off);
    word_f2 = gather_u32(bank.f2_data(), off);
  }
  r.short_mask = filter_testbits(word_f1, win2);
  r.f2_mask = filter_testbits(word_f2, win2);

  if (r.f2_mask != 0) {
    if constexpr (kSpecF3) {
      // Speculative: evaluate Filter 3 on ALL lanes, mask by Filter 2.
      const __m256i win4 = windows4(d + i, shuffle4);
      const __m256i keys = hash_mul(win4, f3_bits);
      const __m256i off3 = _mm256_srli_epi32(keys, 3);
      const __m256i word3 = gather_u32(bank.f3_data(), off3);
      r.long_mask = filter_testbits(word3, keys) & r.f2_mask;
    } else {
      // Ablation: per-lane scalar probes for only the useful lanes.
      std::uint32_t m = r.f2_mask;
      while (m != 0) {
        const unsigned lane = static_cast<unsigned>(std::countr_zero(m));
        m &= m - 1;
        const std::uint32_t w4 = util::load_u32(d + i + lane);
        if (bank.test_f3(w4)) r.long_mask |= 1u << lane;
      }
    }
  }
  return r;
}

// Store policies: the real engine appends positions; the Fig. 6 no-store
// variant only counts.
struct StoreToBuffers {
  CandidateBuffers* out;
  inline void on_block(std::size_t i, const BlockMasks& m) {
    if (m.short_mask != 0) {
      out->n_short += leftpack_positions(static_cast<std::uint32_t>(i), m.short_mask,
                                         out->short_pos.data() + out->n_short);
    }
    if (m.long_mask != 0) {
      out->n_long += leftpack_positions(static_cast<std::uint32_t>(i), m.long_mask,
                                        out->long_pos.data() + out->n_long);
    }
  }
};

struct CountOnly {
  std::uint64_t shorts = 0;
  std::uint64_t longs = 0;
  inline void on_block(std::size_t, const BlockMasks& m) {
    shorts += std::popcount(m.short_mask);
    longs += std::popcount(m.long_mask);
  }
};

// Hoisted kernel constants, built once per scan call — or once per BATCH in
// the batch entry point, which is the point of batching small payloads.
struct KernelConsts {
  __m256i shuffle2;
  __m256i shuffle4;
  unsigned f3_bits;
  explicit KernelConsts(const FilterBank& bank)
      : shuffle2(window_shuffle_mask(2)),
        shuffle4(window_shuffle_mask(4)),
        f3_bits(bank.f3_bits_log2()) {}
};

template <bool kMerged, bool kSpecF3, typename Store>
std::size_t run_filter(const std::uint8_t* d, std::size_t begin, std::size_t end,
                       std::size_t total_len, const FilterBank& bank, bool unroll2,
                       Store& store, ScanStats* stats, const KernelConsts& c) {
  const __m256i shuffle2 = c.shuffle2;
  const __m256i shuffle4 = c.shuffle4;
  const unsigned f3_bits = c.f3_bits;

  std::uint64_t f3_blocks = 0;
  std::uint64_t f3_lanes = 0;
  std::size_t i = begin;

  if (unroll2) {
    // Two independent 8-lane blocks per iteration: the second block's
    // computation overlaps the first block's gather latency (§IV-B).
    while (i + 24 <= total_len && i + 16 <= end) {
      const BlockMasks a =
          process_block<kMerged, kSpecF3>(d, i, bank, shuffle2, shuffle4, f3_bits);
      const BlockMasks b =
          process_block<kMerged, kSpecF3>(d, i + 8, bank, shuffle2, shuffle4, f3_bits);
      store.on_block(i, a);
      store.on_block(i + 8, b);
      if (stats) {
        f3_blocks += (a.f2_mask != 0) + (b.f2_mask != 0);
        f3_lanes += std::popcount(a.f2_mask) + std::popcount(b.f2_mask);
      }
      i += 16;
    }
  }
  while (i + 16 <= total_len && i + 8 <= end) {
    const BlockMasks a = process_block<kMerged, kSpecF3>(d, i, bank, shuffle2, shuffle4, f3_bits);
    store.on_block(i, a);
    if (stats) {
      f3_blocks += (a.f2_mask != 0);
      f3_lanes += std::popcount(a.f2_mask);
    }
    i += 8;
  }

  if (stats) {
    stats->f3_blocks += f3_blocks;
    stats->f3_useful_lanes += f3_lanes;
  }
  return i;
}

// One whole-batch pass: constants live in registers across payloads; each
// payload's scalar remainder and tail probe run inline so the pool and item
// maps fill exactly as scan() would per payload.
template <bool kMerged, bool kSpecF3>
void run_filter_batch(std::span<const util::ByteView> payloads, const FilterBank& bank,
                      bool unroll2, CandidateBuffers& out, std::uint32_t* short_item,
                      std::uint32_t* long_item, std::size_t max_payload) {
  const KernelConsts c(bank);
  StoreToBuffers store{&out};
  for (std::size_t p = 0; p < payloads.size(); ++p) {
    const util::ByteView data = payloads[p];
    const std::size_t n = data.size();
    if (n == 0 || n > max_payload) continue;
    const std::uint8_t* d = data.data();
    const std::uint32_t short_begin = out.n_short;
    const std::uint32_t long_begin = out.n_long;
    const std::size_t end = n - 1;
    if (0 < end) {
      const std::size_t done =
          run_filter<kMerged, kSpecF3>(d, 0, end, n, bank, unroll2, store, nullptr, c);
      if (done < end) spatch_filter_scalar(d, done, end, n, bank, out);
    }
    spatch_filter_tail(d, n, bank, out);
    const std::uint32_t packet = static_cast<std::uint32_t>(p);
    for (std::uint32_t k = short_begin; k < out.n_short; ++k) short_item[k] = packet;
    for (std::uint32_t k = long_begin; k < out.n_long; ++k) long_item[k] = packet;
  }
}

}  // namespace

std::size_t vpatch_filter_avx2(const std::uint8_t* data, std::size_t begin, std::size_t end,
                               std::size_t total_len, const FilterBank& bank,
                               CandidateBuffers& out, const KernelOptions& opt,
                               ScanStats* stats) {
  StoreToBuffers store{&out};
  const KernelConsts c(bank);
  if (opt.merged_filters) {
    if (opt.speculative_f3)
      return run_filter<true, true>(data, begin, end, total_len, bank, opt.unroll2, store,
                                    stats, c);
    return run_filter<true, false>(data, begin, end, total_len, bank, opt.unroll2, store,
                                   stats, c);
  }
  if (opt.speculative_f3)
    return run_filter<false, true>(data, begin, end, total_len, bank, opt.unroll2, store,
                                   stats, c);
  return run_filter<false, false>(data, begin, end, total_len, bank, opt.unroll2, store,
                                  stats, c);
}

void vpatch_filter_batch_avx2(std::span<const util::ByteView> payloads,
                              const FilterBank& bank, CandidateBuffers& out,
                              std::uint32_t* short_item, std::uint32_t* long_item,
                              std::size_t max_payload, const KernelOptions& opt) {
  if (opt.merged_filters) {
    if (opt.speculative_f3)
      return run_filter_batch<true, true>(payloads, bank, opt.unroll2, out, short_item,
                                          long_item, max_payload);
    return run_filter_batch<true, false>(payloads, bank, opt.unroll2, out, short_item,
                                         long_item, max_payload);
  }
  if (opt.speculative_f3)
    return run_filter_batch<false, true>(payloads, bank, opt.unroll2, out, short_item,
                                         long_item, max_payload);
  return run_filter_batch<false, false>(payloads, bank, opt.unroll2, out, short_item,
                                        long_item, max_payload);
}

std::size_t vpatch_filter_nostore_avx2(const std::uint8_t* data, std::size_t begin,
                                       std::size_t end, std::size_t total_len,
                                       const FilterBank& bank, NoStoreCounts& counts) {
  CountOnly store;
  const KernelConsts c(bank);
  const std::size_t next = run_filter<true, true>(data, begin, end, total_len, bank,
                                                  /*unroll2=*/true, store, nullptr, c);
  counts.short_hits += store.shorts;
  counts.long_hits += store.longs;
  return next;
}

}  // namespace vpm::core

#else  // !__AVX2__

#include <cstdlib>

namespace vpm::core {
std::size_t vpatch_filter_avx2(const std::uint8_t*, std::size_t, std::size_t, std::size_t,
                               const FilterBank&, CandidateBuffers&, const KernelOptions&,
                               ScanStats*) {
  std::abort();
}
void vpatch_filter_batch_avx2(std::span<const util::ByteView>, const FilterBank&,
                              CandidateBuffers&, std::uint32_t*, std::uint32_t*,
                              std::size_t, const KernelOptions&) {
  std::abort();
}
std::size_t vpatch_filter_nostore_avx2(const std::uint8_t*, std::size_t, std::size_t,
                                       std::size_t, const FilterBank&, NoStoreCounts&) {
  std::abort();
}
}  // namespace vpm::core

#endif
