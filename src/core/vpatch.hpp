// V-PATCH — the vectorized pattern matcher (paper §IV-B).
//
// Round one runs the SIMD filtering kernel (AVX-512 W=16, AVX2 W=8, or the
// scalar S-PATCH loop as fallback/tail); round two is the shared scalar
// verification over the stored candidate positions.  The kernel choice, the
// unroll factor, filter merging and speculative-Filter-3 evaluation are all
// configurable so the ablation benches can isolate each design decision.
//
// Batch fast path (scan_batch) and the deferred-verification contract:
// round one runs across ALL payloads of a batch, appending candidates to one
// shared, caller-owned candidate pool segmented per payload (each candidate
// carries its payload index; positions stay payload-relative).  Verification
// is then DEFERRED into a single round over the whole pool, software-
// prefetching the compact-table bucket of candidate i+K while candidate i is
// compared (kVerifyPrefetchDistance).  Consequences callers rely on:
//   * per-payload match multisets equal scan(), but matches of one payload
//     arrive in two bursts (short pass, then long pass) interleaved with
//     other payloads' matches — consumers must not assume payload-contiguous
//     emission;
//   * candidate slack stores (a full vector per left-pack) land in the pool
//     region the NEXT payload's round one immediately overwrites, which is
//     why the pool needs total-batch-positions + kStoreSlack capacity, not
//     per-payload slack;
//   * payload views must stay valid until scan_batch returns (verification
//     re-reads payload bytes), and payloads longer than cfg.chunk_size take
//     the chunked per-payload scan() path so the pool stays bounded.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "core/spatch.hpp"
#include "core/vpatch_kernels.hpp"

namespace vpm::core {

enum class Isa : std::uint8_t {
  scalar,  // no vector kernel: equivalent to S-PATCH with V-PATCH plumbing
  avx2,    // W = 8 (the paper's Haswell configuration)
  avx512,  // W = 16 (the paper's Xeon-Phi configuration, on AVX-512 hosts)
  best,    // widest available at runtime
};

std::string_view isa_name(Isa isa);
// Resolves `best` to the widest kernel the CPU supports; returns `scalar`
// when no vector kernel is available.
Isa resolve_isa(Isa requested);
bool isa_supported(Isa isa);

struct VpatchConfig {
  FilterBankConfig filters{};
  unsigned long_bucket_bits = 15;
  std::size_t chunk_size = 32 * 1024;
  Isa isa = Isa::best;
  KernelOptions kernel{};
};

class VpatchMatcher final : public Matcher {
 public:
  // Throws std::runtime_error if cfg.isa names a kernel the CPU lacks.
  explicit VpatchMatcher(const pattern::PatternSet& set, VpatchConfig cfg = {});

  void scan(util::ByteView data, MatchSink& sink) const override;
  // The batch fast path: one filtering round over every payload, one
  // deferred prefetch-pipelined verification round (see the header comment).
  void scan_batch(std::span<const util::ByteView> payloads, BatchSink& sink,
                  ScanScratch& scratch) const override;
  std::string_view name() const override;
  std::size_t memory_bytes() const override {
    return bank_.memory_bytes() + verifier_.memory_bytes();
  }

  void scan_with_stats(util::ByteView data, MatchSink& sink, ScanStats& stats) const;

  // Round one in isolation (Fig. 6): with_stores=true exercises the real
  // kernel including candidate stores; false uses the no-store variant.
  // The scratch overload reuses caller-owned candidate buffers so repeated
  // calls (the Fig. 6 measurement loop) allocate nothing.
  struct FilterOnlyResult {
    std::uint64_t short_candidates = 0;
    std::uint64_t long_candidates = 0;
  };
  FilterOnlyResult filter_only(util::ByteView data, bool with_stores) const;
  FilterOnlyResult filter_only(util::ByteView data, bool with_stores,
                               ScanScratch& scratch) const;

  Isa isa() const { return isa_; }
  unsigned vector_width() const;
  const FilterBank& filter_bank() const { return bank_; }
  const VpatchConfig& config() const { return cfg_; }

 private:
  template <bool kWithStats>
  void scan_impl(util::ByteView data, MatchSink& sink, ScanStats* stats) const;

  // Dispatches one chunk's round-one to the configured kernel; returns the
  // first position the vector loop did not cover.
  std::size_t run_kernel(const std::uint8_t* d, std::size_t begin, std::size_t end,
                         std::size_t n, CandidateBuffers& buffers, ScanStats* stats) const;

  VpatchConfig cfg_;
  Isa isa_;
  FilterBank bank_;
  Verifier verifier_;
};

}  // namespace vpm::core
