// Traffic-aware filter planning — the paper's future-work direction made
// concrete: "this poses interesting questions for the future in how to best
// design the filters based on the expected traffic mix" (§V-B).
//
// A TrafficProfile records the 2-byte-window frequency distribution of a
// traffic sample.  plan_filters() predicts, for a given pattern set, the
// per-window probability that Filters 1/2 fire on that traffic (the exact
// expected candidate rates, since F1/F2 are direct bitmaps), then sizes
// Filter 3 so the expected long-candidate rate meets a target: Filter-3
// false positives behave like uniform hashing, so its pass rate on non-
// matching windows is approximately its bit occupancy.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/filter_bank.hpp"
#include "pattern/pattern_set.hpp"
#include "util/bytes.hpp"

namespace vpm::core {

struct TrafficProfile {
  std::array<std::uint64_t, 1 << 16> window2_counts{};
  std::uint64_t total_windows = 0;

  double frequency(std::uint32_t window2) const {
    if (total_windows == 0) return 0.0;
    return static_cast<double>(window2_counts[window2]) /
           static_cast<double>(total_windows);
  }
};

// Counts every sliding 2-byte window of the sample.
TrafficProfile profile_traffic(util::ByteView sample);
// Merges another sample into an existing profile (streaming profiling).
void accumulate_profile(TrafficProfile& profile, util::ByteView sample);

struct FilterPlan {
  unsigned f3_bits_log2 = 16;
  // Expected per-window probabilities on the profiled traffic:
  double f1_hit_rate = 0.0;        // short-candidate rate (exact)
  double f2_hit_rate = 0.0;        // long filter-2 pass rate (exact)
  double f3_occupancy = 0.0;       // at the chosen size
  double expected_long_rate = 0.0; // ~ f2_hit_rate * f3_occupancy + true matches
};

// Chooses the smallest Filter-3 size in [min_bits, max_bits] whose expected
// long-candidate rate is below `target_long_rate` (falls back to max_bits
// when unreachable).  The returned rates let operators see what the filters
// will do on their traffic before deploying.
FilterPlan plan_filters(const pattern::PatternSet& set, const TrafficProfile& profile,
                        double target_long_rate = 0.01, unsigned min_bits = 12,
                        unsigned max_bits = 20);

}  // namespace vpm::core
