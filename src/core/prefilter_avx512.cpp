// Approximate q-gram prefilter screen, AVX-512: 16 STRIDED probe positions
// per block (lane j probes position p + j*threshold, so one block disposes
// of 16*threshold positions), one gather for the grams and one for the
// signature words, and a scalar neighborhood verify on the rare lanes that
// hit.  See prefilter_kernels.hpp for why strided probing cannot miss a
// qualifying run.
#include "core/prefilter_kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__)

#include <immintrin.h>

#include <bit>

namespace vpm::core {

// Gathers read data[idx .. idx+3] for idx <= len - q, and the verify/tail
// helpers load 4 bytes at the same positions: all covered by kPrefilterPad.
bool prefilter_screen_avx512(const PrefilterView& v, const std::uint8_t* data,
                             std::size_t len) {
  const std::size_t positions = len - v.q + 1;  // caller guarantees len >= q
  const std::size_t span = std::size_t{16} * v.threshold;  // positions per block
  const __m512i lane_off = _mm512_mullo_epi32(
      _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15),
      _mm512_set1_epi32(static_cast<int>(v.threshold)));
  const __m512i gram_mask = _mm512_set1_epi32(v.q == 4 ? -1 : 0x00FFFFFF);
  const __m512i gamma = _mm512_set1_epi32(static_cast<int>(util::kGoldenGamma));
  const __m512i m31 = _mm512_set1_epi32(31);
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i wmask = _mm512_set1_epi32(static_cast<int>(v.word_mask));

  std::size_t p = 0;
  for (; p + (span - v.threshold) < positions; p += span) {  // lane 15 in range
    const __m512i idx = _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(p)), lane_off);
    const __m512i grams = _mm512_and_si512(_mm512_i32gather_epi32(idx, data, 1), gram_mask);
    const __m512i h = _mm512_mullo_epi32(grams, gamma);
    const __m512i widx = _mm512_and_si512(_mm512_srli_epi32(h, 10), wmask);
    const __m512i words = _mm512_i32gather_epi32(widx, v.words, 4);
    const __m512i b1 = _mm512_and_si512(h, m31);
    const __m512i b2 = _mm512_and_si512(_mm512_srli_epi32(h, 5), m31);
    const __m512i both =
        _mm512_and_si512(_mm512_srlv_epi32(words, b1), _mm512_srlv_epi32(words, b2));
    std::uint32_t m = _mm512_test_epi32_mask(both, one);
    while (m != 0) {
      const unsigned lane = static_cast<unsigned>(std::countr_zero(m));
      if (prefilter_verify_run(v, data, positions, p + std::size_t{lane} * v.threshold)) {
        return true;
      }
      m &= m - 1;
    }
  }
  return prefilter_screen_folded_tail(v, data, positions, p);
}

}  // namespace vpm::core

#else  // no AVX-512 toolchain support

#include <cstdlib>

namespace vpm::core {

bool prefilter_screen_avx512(const PrefilterView&, const std::uint8_t*, std::size_t) {
  std::abort();  // dispatch must not select an uncompiled kernel
}

}  // namespace vpm::core

#endif
