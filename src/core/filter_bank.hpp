// The S-PATCH three-filter bank (paper §IV-A, Fig. 1).
//
//   Filter 1 — direct 2-byte bitmap over the SHORT patterns (1..3 B).
//   Filter 2 — direct 2-byte bitmap over the LONG patterns (>= 4 B),
//              indexed identically to Filter 1.
//   Filter 3 — bitmap indexed by a multiplicative hash of a 4-byte window,
//              corroborating Filter-2 hits before a position is stored.
//
// Filters 1 and 2 are additionally kept byte-interleaved in one "merged"
// array (Fig. 3): because both use the same index, a single gather at byte
// offset 2*(window>>3) returns one byte of each filter, halving the gather
// count in V-PATCH.  Total footprint at defaults: 8 + 8 KB direct (16 KB
// merged copy) + 8 KB hashed — comfortably L1/L2-resident with room for the
// input block and the candidate arrays, as the paper's size-efficiency
// property requires.
#pragma once

#include <cstdint>
#include <vector>

#include "dfc/direct_filter.hpp"
#include "pattern/pattern_set.hpp"

namespace vpm::core {

struct FilterBankConfig {
  // log2 of Filter-3 bit count; 16 -> 8 KB. Trade-off: larger = fewer false
  // positives, smaller = better cache residency (paper §IV-A1).
  unsigned f3_bits_log2 = 16;
};

class FilterBank {
 public:
  explicit FilterBank(const pattern::PatternSet& set, FilterBankConfig cfg = {});

  // Scalar probes (S-PATCH inner loop).
  bool test_f1(std::uint32_t window2) const { return f1_.test(window2); }
  bool test_f2(std::uint32_t window2) const { return f2_.test(window2); }
  bool test_f3(std::uint32_t window4) const { return f3_.test(window4); }

  // Raw storage for the gather kernels.
  const std::uint8_t* merged_data() const { return merged_.data(); }
  const std::uint8_t* f3_data() const { return f3_.bits().data(); }
  unsigned f3_bits_log2() const { return f3_.bits_log2(); }

  // Separate (non-merged) storage, for the filter-merging ablation.
  const std::uint8_t* f1_data() const { return f1_.bits().data(); }
  const std::uint8_t* f2_data() const { return f2_.bits().data(); }

  double f1_occupancy() const { return f1_.occupancy(); }
  double f2_occupancy() const { return f2_.occupancy(); }
  double f3_occupancy() const { return f3_.occupancy(); }

  bool has_short_patterns() const { return has_short_; }
  bool has_long_patterns() const { return has_long_; }

  std::size_t memory_bytes() const {
    return 2 * dfc::DirectFilter2B::kBits / 8 + merged_.size() + (1u << f3_.bits_log2()) / 8;
  }

 private:
  dfc::DirectFilter2B f1_;
  dfc::DirectFilter2B f2_;
  dfc::HashedFilter4B f3_;
  std::vector<std::uint8_t> merged_;
  bool has_short_ = false;
  bool has_long_ = false;
};

}  // namespace vpm::core
