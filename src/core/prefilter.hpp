// Approximate per-rule-group payload prefilter (the paper's thesis applied
// one level up: a cheap cache-resident screen in front of the exact
// engines).
//
// At Database compile time each protocol group gets a q-gram blocked-Bloom
// signature over its pattern bytes (q = 3 or 4, case-folded).  At scan time
// a whole payload is screened in one vectorized pass: it reaches the exact
// engine only if it contains a run of >= threshold consecutive positions
// whose q-grams all hit the signature — where threshold =
// min(min_pattern_len - q + 1, 4), so any payload containing a pattern
// occurrence always passes (ZERO false negatives; rejection is exact,
// passing is approximate with a measured false-positive rate).  At low
// match fractions most payloads are rejected after the screen alone, and
// the per-group signature (a few hundred KB even for Snort-scale groups)
// stays L2-resident across the batch.
//
// Exactness is enforced by a differential suite (prefilter-on alert
// multiset == prefilter-off across engines, batch sizes, and worker
// counts), not argued; see tests/prefilter_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "match/matcher.hpp"
#include "pattern/pattern_set.hpp"

namespace vpm::core {

// Engine-level switch (EngineConfig / PipelineConfig / pcap_sensor
// --prefilter=):
//   off        never screen
//   on         screen every group that has a built signature
//   automatic  screen only groups whose statistics make screening advisable
//              (enough patterns to amortize the fold+probe pass), and
//              adaptively bypass a group whose observed pass ratio says the
//              screen is not rejecting enough to pay for itself (match-heavy
//              traffic or a weak threshold-1 signature).
enum class PrefilterMode : std::uint8_t { off, on, automatic };

std::string_view prefilter_mode_name(PrefilterMode mode);
// Accepts "off" / "on" / "auto".
std::optional<PrefilterMode> prefilter_mode_from_name(std::string_view name);

struct PrefilterConfig {
  unsigned q = 0;            // 3 or 4; 0 = auto (4 when min pattern len >= 4)
  unsigned bits_log2 = 0;    // signature size; 0 = auto-sized from gram count
  unsigned max_threshold = 4;     // cap on the consecutive-hit run requirement
  unsigned max_bits_log2 = 24;    // auto-size ceiling (16 MiB of bits = 2 MiB)
  std::size_t min_patterns = 8;   // advised() gate for PrefilterMode::automatic
};

// Immutable built signature; shared (like GroupedRules) across engines and
// threads — screening state lives in caller-owned ScanScratch.
class Prefilter {
 public:
  // Built by build_prefilter / parse_prefilter_section only.
  struct Parts {
    std::uint32_t q = 0;
    std::uint32_t threshold = 0;
    std::uint32_t bits_log2 = 0;
    std::uint32_t pattern_count = 0;
    std::uint32_t gram_count = 0;
    std::vector<std::uint32_t> words;
    std::size_t min_patterns = 0;
  };
  explicit Prefilter(Parts parts);

  // Scalar whole-payload screen (folds on the fly; allocation-free).
  // Payloads shorter than min_payload() cannot contain any pattern: exact
  // reject.
  bool screen(util::ByteView payload) const;

  // Vectorized batch screen: stages case-folded copies of all payloads into
  // `scratch` (grow-to-high-water; zero steady-state allocations) and writes
  // verdicts[i] = 1 (might match — scan it) / 0 (cannot match — skip).
  // Verdicts are identical to screen() payload-by-payload on every ISA.
  void screen_batch(std::span<const util::ByteView> payloads, std::uint8_t* verdicts,
                    ScanScratch& scratch) const;

  std::uint32_t q() const { return q_; }
  std::uint32_t threshold() const { return threshold_; }
  std::uint32_t bits_log2() const { return bits_log2_; }
  std::size_t pattern_count() const { return pattern_count_; }
  std::size_t gram_count() const { return gram_count_; }
  // Shortest payload that could possibly contain a pattern (threshold
  // consecutive windows of q bytes).
  std::size_t min_payload() const { return q_ + threshold_ - 1; }
  std::size_t memory_bytes() const { return words_.size() * sizeof(std::uint32_t); }
  // Fraction of signature bits set (drives the expected false-positive rate).
  double occupancy() const;
  // Whether PrefilterMode::automatic should engage this signature: enough
  // patterns that screening beats scanning outright.
  bool advised() const { return pattern_count_ >= min_patterns_; }
  const std::vector<std::uint32_t>& words() const { return words_; }

 private:
  std::vector<std::uint32_t> words_;
  std::uint32_t q_;
  std::uint32_t threshold_;
  std::uint32_t bits_log2_;
  std::uint32_t pattern_count_;
  std::uint32_t gram_count_;
  std::size_t min_patterns_;
  std::uint64_t scratch_owner_id_;
};

using PrefilterPtr = std::shared_ptr<const Prefilter>;

inline constexpr std::size_t kPrefilterGroupCount =
    static_cast<std::size_t>(pattern::Group::count);
// One signature slot per protocol group (null = group has no usable
// signature: empty, or a pattern shorter than any workable q).
using GroupPrefilters = std::array<PrefilterPtr, kPrefilterGroupCount>;

// Builds the signature over `set` (the group's own + generic patterns, as
// GroupedRules composes them).  Returns null when no exact signature exists:
// the set is empty or its shortest pattern is under 3 bytes (every 1-2 byte
// pattern would force the screen to pass everything).
PrefilterPtr build_prefilter(const pattern::PatternSet& set,
                             const PrefilterConfig& cfg = {});

// v2 pattern-database section carrying the per-group signatures, appended by
// Database::save_patterns after the pattern records:
//   magic "VPMPF1\0\0" | version u32 (= 1) | fingerprint u64 | group count
//   u32 | per group: built u8, and when built: q u8 | threshold u8 |
//   bits_log2 u8 | reserved u8 | pattern_count u32 | gram_count u32 |
//   word_count u32 | words u32[word_count] | trailing fnv1a64 checksum over
//   every preceding section byte.
// parse validates structure, fingerprint, and checksum; any truncation,
// field corruption, or mismatch throws std::invalid_argument.
void append_prefilter_section(util::Bytes& out, const GroupPrefilters& filters,
                              std::uint64_t fingerprint);
GroupPrefilters parse_prefilter_section(util::ByteView section,
                                        std::uint64_t expected_fingerprint,
                                        const PrefilterConfig& cfg = {});

}  // namespace vpm::core
