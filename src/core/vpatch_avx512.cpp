// V-PATCH filtering kernel, AVX-512 (W = 16) — the wide-vector stand-in for
// the paper's Xeon-Phi experiments (Fig. 7): twice the lanes per gather,
// native compress stores instead of the permutation-table left-pack.
#include "core/vpatch_kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__)

#include <bit>

#include "core/spatch.hpp"
#include "simd/avx512_ops.hpp"

namespace vpm::core {

namespace {

using namespace simd::avx512;

struct BlockMasks {
  std::uint32_t short_mask = 0;
  std::uint32_t long_mask = 0;
  std::uint32_t f2_mask = 0;
};

// One 16-position filtering block at base position i.  Raw loads read 32
// bytes (two 16-byte halves at i and i+8).
template <bool kMerged, bool kSpecF3>
inline BlockMasks process_block(const std::uint8_t* d, std::size_t i, const FilterBank& bank,
                                __m256i shuffle2, __m256i shuffle4, unsigned f3_bits) {
  BlockMasks r;
  const __m512i win2 = windows2(d + i, shuffle2);

  __m512i word_f1, word_f2;
  if constexpr (kMerged) {
    const __m512i off = _mm512_slli_epi32(_mm512_srli_epi32(win2, 3), 1);
    const __m512i word = gather_u32(bank.merged_data(), off);
    word_f1 = word;
    word_f2 = _mm512_srli_epi32(word, 8);
  } else {
    const __m512i off = _mm512_srli_epi32(win2, 3);
    word_f1 = gather_u32(bank.f1_data(), off);
    word_f2 = gather_u32(bank.f2_data(), off);
  }
  r.short_mask = filter_testbits(word_f1, win2);
  r.f2_mask = filter_testbits(word_f2, win2);

  if (r.f2_mask != 0) {
    if constexpr (kSpecF3) {
      const __m512i win4 = windows4(d + i, shuffle4);
      const __m512i keys = hash_mul(win4, f3_bits);
      const __m512i off3 = _mm512_srli_epi32(keys, 3);
      const __m512i word3 = gather_u32(bank.f3_data(), off3);
      r.long_mask = filter_testbits(word3, keys) & r.f2_mask;
    } else {
      std::uint32_t m = r.f2_mask;
      while (m != 0) {
        const unsigned lane = static_cast<unsigned>(std::countr_zero(m));
        m &= m - 1;
        if (bank.test_f3(util::load_u32(d + i + lane))) r.long_mask |= 1u << lane;
      }
    }
  }
  return r;
}

struct StoreToBuffers {
  CandidateBuffers* out;
  inline void on_block(std::size_t i, const BlockMasks& m) {
    if (m.short_mask != 0) {
      out->n_short += leftpack_positions(static_cast<std::uint32_t>(i), m.short_mask,
                                         out->short_pos.data() + out->n_short);
    }
    if (m.long_mask != 0) {
      out->n_long += leftpack_positions(static_cast<std::uint32_t>(i), m.long_mask,
                                        out->long_pos.data() + out->n_long);
    }
  }
};

struct CountOnly {
  std::uint64_t shorts = 0;
  std::uint64_t longs = 0;
  inline void on_block(std::size_t, const BlockMasks& m) {
    shorts += std::popcount(m.short_mask);
    longs += std::popcount(m.long_mask);
  }
};

// Hoisted kernel constants — built once per scan call, or once per BATCH in
// the batch entry point.
struct KernelConsts {
  __m256i shuffle2;
  __m256i shuffle4;
  unsigned f3_bits;
  explicit KernelConsts(const FilterBank& bank)
      : shuffle2(simd::avx2::window_shuffle_mask(2)),
        shuffle4(simd::avx2::window_shuffle_mask(4)),
        f3_bits(bank.f3_bits_log2()) {}
};

template <bool kMerged, bool kSpecF3, typename Store>
std::size_t run_filter(const std::uint8_t* d, std::size_t begin, std::size_t end,
                       std::size_t total_len, const FilterBank& bank, bool unroll2,
                       Store& store, ScanStats* stats, const KernelConsts& c) {
  const __m256i shuffle2 = c.shuffle2;
  const __m256i shuffle4 = c.shuffle4;
  const unsigned f3_bits = c.f3_bits;

  std::uint64_t f3_blocks = 0;
  std::uint64_t f3_lanes = 0;
  std::size_t i = begin;

  // Per-block raw reads cover bytes [i, i+32); unrolled, [i, i+48).
  if (unroll2) {
    while (i + 48 <= total_len && i + 32 <= end) {
      const BlockMasks a =
          process_block<kMerged, kSpecF3>(d, i, bank, shuffle2, shuffle4, f3_bits);
      const BlockMasks b =
          process_block<kMerged, kSpecF3>(d, i + 16, bank, shuffle2, shuffle4, f3_bits);
      store.on_block(i, a);
      store.on_block(i + 16, b);
      if (stats) {
        f3_blocks += (a.f2_mask != 0) + (b.f2_mask != 0);
        f3_lanes += std::popcount(a.f2_mask) + std::popcount(b.f2_mask);
      }
      i += 32;
    }
  }
  while (i + 32 <= total_len && i + 16 <= end) {
    const BlockMasks a = process_block<kMerged, kSpecF3>(d, i, bank, shuffle2, shuffle4, f3_bits);
    store.on_block(i, a);
    if (stats) {
      f3_blocks += (a.f2_mask != 0);
      f3_lanes += std::popcount(a.f2_mask);
    }
    i += 16;
  }

  if (stats) {
    stats->f3_blocks += f3_blocks;
    stats->f3_useful_lanes += f3_lanes;
  }
  return i;
}

// One whole-batch pass with the constants hoisted across payloads; scalar
// remainder and tail probe per payload, exactly as scan() does.
template <bool kMerged, bool kSpecF3>
void run_filter_batch(std::span<const util::ByteView> payloads, const FilterBank& bank,
                      bool unroll2, CandidateBuffers& out, std::uint32_t* short_item,
                      std::uint32_t* long_item, std::size_t max_payload) {
  const KernelConsts c(bank);
  StoreToBuffers store{&out};
  for (std::size_t p = 0; p < payloads.size(); ++p) {
    const util::ByteView data = payloads[p];
    const std::size_t n = data.size();
    if (n == 0 || n > max_payload) continue;
    const std::uint8_t* d = data.data();
    const std::uint32_t short_begin = out.n_short;
    const std::uint32_t long_begin = out.n_long;
    const std::size_t end = n - 1;
    if (0 < end) {
      const std::size_t done =
          run_filter<kMerged, kSpecF3>(d, 0, end, n, bank, unroll2, store, nullptr, c);
      if (done < end) spatch_filter_scalar(d, done, end, n, bank, out);
    }
    spatch_filter_tail(d, n, bank, out);
    const std::uint32_t packet = static_cast<std::uint32_t>(p);
    for (std::uint32_t k = short_begin; k < out.n_short; ++k) short_item[k] = packet;
    for (std::uint32_t k = long_begin; k < out.n_long; ++k) long_item[k] = packet;
  }
}

}  // namespace

std::size_t vpatch_filter_avx512(const std::uint8_t* data, std::size_t begin, std::size_t end,
                                 std::size_t total_len, const FilterBank& bank,
                                 CandidateBuffers& out, const KernelOptions& opt,
                                 ScanStats* stats) {
  StoreToBuffers store{&out};
  const KernelConsts c(bank);
  if (opt.merged_filters) {
    if (opt.speculative_f3)
      return run_filter<true, true>(data, begin, end, total_len, bank, opt.unroll2, store,
                                    stats, c);
    return run_filter<true, false>(data, begin, end, total_len, bank, opt.unroll2, store,
                                   stats, c);
  }
  if (opt.speculative_f3)
    return run_filter<false, true>(data, begin, end, total_len, bank, opt.unroll2, store,
                                   stats, c);
  return run_filter<false, false>(data, begin, end, total_len, bank, opt.unroll2, store,
                                  stats, c);
}

void vpatch_filter_batch_avx512(std::span<const util::ByteView> payloads,
                                const FilterBank& bank, CandidateBuffers& out,
                                std::uint32_t* short_item, std::uint32_t* long_item,
                                std::size_t max_payload, const KernelOptions& opt) {
  if (opt.merged_filters) {
    if (opt.speculative_f3)
      return run_filter_batch<true, true>(payloads, bank, opt.unroll2, out, short_item,
                                          long_item, max_payload);
    return run_filter_batch<true, false>(payloads, bank, opt.unroll2, out, short_item,
                                         long_item, max_payload);
  }
  if (opt.speculative_f3)
    return run_filter_batch<false, true>(payloads, bank, opt.unroll2, out, short_item,
                                         long_item, max_payload);
  return run_filter_batch<false, false>(payloads, bank, opt.unroll2, out, short_item,
                                        long_item, max_payload);
}

std::size_t vpatch_filter_nostore_avx512(const std::uint8_t* data, std::size_t begin,
                                         std::size_t end, std::size_t total_len,
                                         const FilterBank& bank, NoStoreCounts& counts) {
  CountOnly store;
  const KernelConsts c(bank);
  const std::size_t next = run_filter<true, true>(data, begin, end, total_len, bank,
                                                  /*unroll2=*/true, store, nullptr, c);
  counts.short_hits += store.shorts;
  counts.long_hits += store.longs;
  return next;
}

}  // namespace vpm::core

#else  // no AVX-512 toolchain support

#include <cstdlib>

namespace vpm::core {
std::size_t vpatch_filter_avx512(const std::uint8_t*, std::size_t, std::size_t, std::size_t,
                                 const FilterBank&, CandidateBuffers&, const KernelOptions&,
                                 ScanStats*) {
  std::abort();
}
void vpatch_filter_batch_avx512(std::span<const util::ByteView>, const FilterBank&,
                                CandidateBuffers&, std::uint32_t*, std::uint32_t*,
                                std::size_t, const KernelOptions&) {
  std::abort();
}
std::size_t vpatch_filter_nostore_avx512(const std::uint8_t*, std::size_t, std::size_t,
                                         std::size_t, const FilterBank&, NoStoreCounts&) {
  std::abort();
}
}  // namespace vpm::core

#endif
