#include "core/traffic_profile.hpp"

#include <cmath>

#include "dfc/direct_filter.hpp"
#include "util/hash.hpp"

namespace vpm::core {

void accumulate_profile(TrafficProfile& profile, util::ByteView sample) {
  if (sample.size() < 2) return;
  for (std::size_t i = 0; i + 1 < sample.size(); ++i) {
    ++profile.window2_counts[util::load_u16(sample.data() + i)];
  }
  profile.total_windows += sample.size() - 1;
}

TrafficProfile profile_traffic(util::ByteView sample) {
  TrafficProfile p;
  accumulate_profile(p, sample);
  return p;
}

FilterPlan plan_filters(const pattern::PatternSet& set, const TrafficProfile& profile,
                        double target_long_rate, unsigned min_bits, unsigned max_bits) {
  FilterPlan plan;

  // Exact F1/F2 hit rates: build the two direct filters and weight each set
  // bit by the traffic frequency of its window value.
  dfc::DirectFilter2B f1, f2;
  std::size_t long_patterns = 0;
  for (const pattern::Pattern& p : set) {
    if (p.size() < pattern::kShortLongBoundary) {
      f1.add_pattern_prefix(p);
    } else {
      f2.add_pattern_prefix(p);
      ++long_patterns;
    }
  }
  for (std::uint32_t w = 0; w < (1u << 16); ++w) {
    const double freq = profile.frequency(w);
    if (freq == 0.0) continue;
    if (f1.test(w)) plan.f1_hit_rate += freq;
    if (f2.test(w)) plan.f2_hit_rate += freq;
  }

  // F3 sizing: its false-positive pass rate on non-matching windows is its
  // occupancy (uniform multiplicative hash).  Occupancy at size 2^b with k
  // distinct inserted keys is 1 - (1 - 2^-b)^k; count keys incl. case
  // variants without building every size.
  std::size_t f3_keys = 0;
  for (const pattern::Pattern& p : set) {
    if (p.size() < pattern::kShortLongBoundary) continue;
    std::size_t variants = 1;
    for (std::size_t i = 0; i < 4; ++i) {
      const std::uint8_t c = p.bytes[i];
      if (p.nocase && util::ascii_lower(c) != util::ascii_upper(c)) variants *= 2;
    }
    f3_keys += variants;
  }

  plan.f3_bits_log2 = max_bits;
  for (unsigned bits = min_bits; bits <= max_bits; ++bits) {
    const double slots = static_cast<double>(1u << bits);
    const double occupancy =
        1.0 - std::pow(1.0 - 1.0 / slots, static_cast<double>(f3_keys));
    const double expected = plan.f2_hit_rate * occupancy;
    if (expected <= target_long_rate || bits == max_bits) {
      plan.f3_bits_log2 = bits;
      plan.f3_occupancy = occupancy;
      plan.expected_long_rate = expected;
      break;
    }
  }
  return plan;
}

}  // namespace vpm::core
