// Data-parallel scanning across hardware threads.
//
// The paper evaluates single-thread speedup and notes that "different
// hardware threads can operate independently on different parts of the
// stream" (§V-A) — this module implements that split: the input is divided
// into per-thread segments, each thread scans its segment plus a
// (max_pattern_len - 1)-byte lookahead so straddling matches are found, and
// each match is attributed to exactly one thread by its start offset.
// Matchers are stateless per scan, so one shared matcher serves all threads.
#pragma once

#include <cstdint>
#include <vector>

#include "match/matcher.hpp"

namespace vpm::core {

struct ParallelScanConfig {
  unsigned threads = 0;  // 0 = std::thread::hardware_concurrency()
  // Upper bound on pattern length; governs the segment overlap. Using the
  // true max pattern length of the set is exact; larger values are safe.
  std::size_t max_pattern_len = 256;
};

// All matches, sorted canonically; equivalent to matcher.find_matches(data).
std::vector<Match> parallel_find_matches(const Matcher& matcher, util::ByteView data,
                                         const ParallelScanConfig& cfg);

// Match count only (no per-match storage across threads beyond counters).
std::uint64_t parallel_count_matches(const Matcher& matcher, util::ByteView data,
                                     const ParallelScanConfig& cfg);

}  // namespace vpm::core
