// Data-parallel scanning across hardware threads.
//
// The paper evaluates single-thread speedup and notes that "different
// hardware threads can operate independently on different parts of the
// stream" (§V-A) — this module implements that split: the input is divided
// into per-thread segments, each thread scans its segment plus a
// (max_pattern_len - 1)-byte lookahead so straddling matches are found, and
// each match is attributed to exactly one thread by its start offset.
// Matchers are stateless per scan, so one shared matcher serves all threads.
#pragma once

#include <cstdint>
#include <vector>

#include "match/matcher.hpp"
#include "pattern/pattern_set.hpp"

namespace vpm::core {

struct ParallelScanConfig {
  unsigned threads = 0;  // 0 = std::thread::hardware_concurrency()
  // Upper bound on pattern length; governs the segment overlap.  0 means
  // "derive it": the PatternSet-aware overloads use the set's true max
  // pattern length (exact); the set-less overloads cannot derive it and
  // fall back to a plain single-threaded scan — pass the real bound there
  // to parallelize.  A non-zero value shorter than the longest pattern
  // would silently lose straddling matches, so the set-aware overloads
  // assert against it in debug builds.
  std::size_t max_pattern_len = 0;
};

// All matches, sorted canonically; equivalent to matcher.find_matches(data).
std::vector<Match> parallel_find_matches(const Matcher& matcher, util::ByteView data,
                                         const ParallelScanConfig& cfg);

// Match count only (no per-match storage across threads beyond counters).
std::uint64_t parallel_count_matches(const Matcher& matcher, util::ByteView data,
                                     const ParallelScanConfig& cfg);

// Set-aware variants: `set` is the PatternSet `matcher` was built over.  The
// segment overlap is derived from set.max_pattern_length() when
// cfg.max_pattern_len is 0, and debug-asserted to be >= it otherwise.
std::vector<Match> parallel_find_matches(const Matcher& matcher,
                                         const pattern::PatternSet& set,
                                         util::ByteView data,
                                         const ParallelScanConfig& cfg = {});
std::uint64_t parallel_count_matches(const Matcher& matcher,
                                     const pattern::PatternSet& set, util::ByteView data,
                                     const ParallelScanConfig& cfg = {});

}  // namespace vpm::core
