#include "core/prefilter.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "core/candidates.hpp"
#include "core/prefilter_kernels.hpp"
#include "simd/cpu_features.hpp"
#include "util/hash.hpp"

namespace vpm::core {

namespace {

constexpr char kSectionMagic[8] = {'V', 'P', 'M', 'P', 'F', '1', 0, 0};

// Field bounds enforced on both build and parse: the probe derives the word
// index from hash bits 10..31, so word_count may use at most 22 of them.
constexpr unsigned kMinBitsLog2 = 10;
constexpr unsigned kMaxBitsLog2 = 27;
constexpr unsigned kMaxThresholdCap = 8;

void put_u32(util::Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void put_u64(util::Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         static_cast<std::uint64_t>(get_u32(p + 4)) << 32;
}

[[noreturn]] void fail(const char* what) {
  throw std::invalid_argument(std::string("prefilter section: ") + what);
}

// Per-thread staging for screen_batch: one folded copy of every staged
// payload, each followed by kPrefilterPad zeroed slack bytes (the vector
// kernels' read contract).
struct PrefilterBatchState final : ScanScratch::State {
  UninitArray<std::uint8_t> folded;
};

}  // namespace

std::string_view prefilter_mode_name(PrefilterMode mode) {
  switch (mode) {
    case PrefilterMode::off: return "off";
    case PrefilterMode::on: return "on";
    case PrefilterMode::automatic: return "auto";
  }
  return "off";
}

std::optional<PrefilterMode> prefilter_mode_from_name(std::string_view name) {
  if (name == "off") return PrefilterMode::off;
  if (name == "on") return PrefilterMode::on;
  if (name == "auto" || name == "automatic") return PrefilterMode::automatic;
  return std::nullopt;
}

Prefilter::Prefilter(Parts parts)
    : words_(std::move(parts.words)),
      q_(parts.q),
      threshold_(parts.threshold),
      bits_log2_(parts.bits_log2),
      pattern_count_(parts.pattern_count),
      gram_count_(parts.gram_count),
      min_patterns_(parts.min_patterns),
      scratch_owner_id_(next_scratch_owner_id()) {}

double Prefilter::occupancy() const {
  std::uint64_t set_bits = 0;
  for (const std::uint32_t w : words_) set_bits += std::popcount(w);
  const std::uint64_t total = std::uint64_t{words_.size()} * 32;
  return total == 0 ? 0.0 : static_cast<double>(set_bits) / static_cast<double>(total);
}

bool Prefilter::screen(util::ByteView payload) const {
  const std::size_t len = payload.size();
  if (len < min_payload()) return false;
  const PrefilterView v{words_.data(), static_cast<std::uint32_t>(words_.size() - 1),
                        q_, threshold_};
  // Strided probing on raw payload memory: grams are assembled byte-wise
  // (folding as we go), so no 4-byte load ever reaches past the payload —
  // unlike the kernels, this path has no staging slack to lean on.
  const std::uint8_t* d = payload.data();
  const auto gram_at = [&](std::size_t p) {
    std::uint32_t gram = 0;
    for (unsigned k = 0; k < q_; ++k) {
      gram |= static_cast<std::uint32_t>(util::ascii_lower(d[p + k])) << (8u * k);
    }
    return gram;
  };
  const std::size_t positions = len - q_ + 1;
  for (std::size_t p = 0; p < positions; p += threshold_) {
    if (!prefilter_probe(v, gram_at(p))) continue;
    // Neighborhood verify, bounded by threshold (see prefilter_verify_run).
    std::size_t l = p;
    std::size_t r = p + 1;
    while (l > 0 && r - l < threshold_ && prefilter_probe(v, gram_at(l - 1))) --l;
    while (r < positions && r - l < threshold_ && prefilter_probe(v, gram_at(r))) ++r;
    if (r - l >= threshold_) return true;
  }
  return false;
}

void Prefilter::screen_batch(std::span<const util::ByteView> payloads,
                             std::uint8_t* verdicts, ScanScratch& scratch) const {
  const simd::CpuFeatures& cpu = simd::cpu();
  const bool use512 = cpu.has_avx512_kernel();
  const bool use256 = !use512 && cpu.has_avx2_kernel();
  if (!use512 && !use256) {
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      verdicts[i] = screen(payloads[i]) ? 1 : 0;
    }
    return;
  }

  const std::size_t min_len = min_payload();
  std::size_t total = 0;
  for (const util::ByteView& p : payloads) {
    if (p.size() >= min_len) total += p.size() + kPrefilterPad;
  }
  PrefilterBatchState& st = scratch.state_for<PrefilterBatchState>(scratch_owner_id_);
  st.folded.ensure(total);

  const PrefilterView v{words_.data(), static_cast<std::uint32_t>(words_.size() - 1),
                        q_, threshold_};
  std::size_t off = 0;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    const util::ByteView p = payloads[i];
    if (p.size() < min_len) {  // cannot hold any pattern: exact reject
      verdicts[i] = 0;
      continue;
    }
    std::uint8_t* dst = st.folded.data() + off;
    for (std::size_t j = 0; j < p.size(); ++j) dst[j] = util::ascii_lower(p[j]);
    std::memset(dst + p.size(), 0, kPrefilterPad);
    verdicts[i] = (use512 ? prefilter_screen_avx512(v, dst, p.size())
                          : prefilter_screen_avx2(v, dst, p.size()))
                      ? 1
                      : 0;
    off += p.size() + kPrefilterPad;
  }
}

PrefilterPtr build_prefilter(const pattern::PatternSet& set, const PrefilterConfig& cfg) {
  if (set.empty()) return nullptr;
  std::size_t min_len = SIZE_MAX;
  for (const pattern::Pattern& p : set) min_len = std::min(min_len, p.size());
  // A 1-2 byte pattern defeats any q >= 3 signature: no exact screen exists.
  if (min_len < 3) return nullptr;

  unsigned q = (cfg.q == 3 || cfg.q == 4) ? cfg.q : (min_len >= 4 ? 4u : 3u);
  if (q > min_len) q = 3;
  const unsigned max_threshold =
      std::clamp(cfg.max_threshold, 1u, kMaxThresholdCap);
  const auto threshold = static_cast<std::uint32_t>(
      std::min<std::size_t>(min_len - q + 1, max_threshold));

  // Distinct case-folded q-grams across all patterns (nocase and exact-case
  // alike fold: the screen also folds the payload, so an exact-case pattern
  // occurrence always produces hitting folded windows — a fold collision can
  // only add false PASSES, never a miss).
  std::unordered_set<std::uint32_t> grams;
  util::Bytes folded;
  for (const pattern::Pattern& p : set) {
    folded.assign(p.bytes.begin(), p.bytes.end());
    for (std::uint8_t& b : folded) b = util::ascii_lower(b);
    for (std::size_t i = 0; i + q <= folded.size(); ++i) {
      grams.insert(util::load_le(folded.data() + i, q));
    }
  }

  // Auto-size: ~16 signature bits per distinct gram (each gram sets <= 2
  // bits, so occupancy stays near 1/8 and the per-position false-hit rate
  // near occupancy^2 ~ 1.6%), clamped to the configured ceiling.
  unsigned bits_log2 = cfg.bits_log2;
  const unsigned ceiling = std::clamp(cfg.max_bits_log2, kMinBitsLog2, kMaxBitsLog2);
  if (bits_log2 == 0) {
    const std::uint64_t target = std::max<std::uint64_t>(
        std::uint64_t{grams.size()} * 16, 1ull << kMinBitsLog2);
    bits_log2 = kMinBitsLog2;
    while (bits_log2 < ceiling && (1ull << bits_log2) < target) ++bits_log2;
  }
  bits_log2 = std::clamp(bits_log2, kMinBitsLog2, kMaxBitsLog2);

  Prefilter::Parts parts;
  parts.q = q;
  parts.threshold = threshold;
  parts.bits_log2 = bits_log2;
  parts.pattern_count = static_cast<std::uint32_t>(set.size());
  parts.gram_count = static_cast<std::uint32_t>(grams.size());
  parts.min_patterns = cfg.min_patterns;
  parts.words.assign(std::size_t{1} << (bits_log2 - 5), 0);
  const auto word_mask = static_cast<std::uint32_t>(parts.words.size() - 1);
  for (const std::uint32_t gram : grams) {
    const std::uint32_t h = gram * util::kGoldenGamma;
    parts.words[(h >> 10) & word_mask] |= (1u << (h & 31u)) | (1u << ((h >> 5) & 31u));
  }
  return std::make_shared<Prefilter>(std::move(parts));
}

void append_prefilter_section(util::Bytes& out, const GroupPrefilters& filters,
                              std::uint64_t fingerprint) {
  const std::size_t start = out.size();
  for (const char c : kSectionMagic) out.push_back(static_cast<std::uint8_t>(c));
  put_u32(out, 1);  // section version
  put_u64(out, fingerprint);
  put_u32(out, static_cast<std::uint32_t>(kPrefilterGroupCount));
  for (const PrefilterPtr& f : filters) {
    if (f == nullptr) {
      out.push_back(0);
      continue;
    }
    out.push_back(1);
    out.push_back(static_cast<std::uint8_t>(f->q()));
    out.push_back(static_cast<std::uint8_t>(f->threshold()));
    out.push_back(static_cast<std::uint8_t>(f->bits_log2()));
    out.push_back(0);  // reserved
    put_u32(out, static_cast<std::uint32_t>(f->pattern_count()));
    put_u32(out, static_cast<std::uint32_t>(f->gram_count()));
    put_u32(out, static_cast<std::uint32_t>(f->words().size()));
    for (const std::uint32_t w : f->words()) put_u32(out, w);
  }
  // Trailing checksum over the whole section: a flipped signature bit would
  // otherwise deserialize into a structurally valid filter that silently
  // drops true matches — the one corruption mode the pattern fingerprint
  // cannot see.
  put_u64(out, util::fnv1a64(out.data() + start, out.size() - start));
}

GroupPrefilters parse_prefilter_section(util::ByteView data,
                                        std::uint64_t expected_fingerprint,
                                        const PrefilterConfig& cfg) {
  std::size_t off = 0;
  // Subtraction-form bounds (off <= data.size() always holds), as in the
  // pattern parser: no length arithmetic can overflow.
  const auto need = [&](std::size_t n) {
    if (data.size() - off < n) fail("truncated");
  };
  need(8 + 4 + 8 + 4);
  if (std::memcmp(data.data(), kSectionMagic, 8) != 0) fail("bad magic");
  off = 8;
  if (get_u32(data.data() + off) != 1) fail("unsupported version");
  off += 4;
  if (get_u64(data.data() + off) != expected_fingerprint) {
    fail("fingerprint mismatch (corrupt payload)");
  }
  off += 8;
  if (get_u32(data.data() + off) != kPrefilterGroupCount) fail("group count mismatch");
  off += 4;

  GroupPrefilters out{};
  for (std::size_t g = 0; g < kPrefilterGroupCount; ++g) {
    need(1);
    const std::uint8_t built = data[off++];
    if (built > 1) fail("bad group flag");
    if (built == 0) continue;
    need(4 + 4 + 4 + 4);
    Prefilter::Parts parts;
    parts.q = data[off];
    parts.threshold = data[off + 1];
    parts.bits_log2 = data[off + 2];
    if (data[off + 3] != 0) fail("bad reserved byte");
    off += 4;
    if (parts.q != 3 && parts.q != 4) fail("bad q");
    if (parts.threshold < 1 || parts.threshold > kMaxThresholdCap) fail("bad threshold");
    if (parts.bits_log2 < kMinBitsLog2 || parts.bits_log2 > kMaxBitsLog2) {
      fail("bad signature size");
    }
    parts.pattern_count = get_u32(data.data() + off);
    parts.gram_count = get_u32(data.data() + off + 4);
    const std::uint32_t word_count = get_u32(data.data() + off + 8);
    off += 12;
    if (word_count != (1u << (parts.bits_log2 - 5))) fail("word count mismatch");
    need(std::size_t{word_count} * 4);
    parts.words.resize(word_count);
    for (std::uint32_t i = 0; i < word_count; ++i) {
      parts.words[i] = get_u32(data.data() + off + std::size_t{i} * 4);
    }
    off += std::size_t{word_count} * 4;
    parts.min_patterns = cfg.min_patterns;
    out[g] = std::make_shared<Prefilter>(std::move(parts));
  }
  need(8);
  if (get_u64(data.data() + off) != util::fnv1a64(data.data(), off)) {
    fail("checksum mismatch (corrupt payload)");
  }
  return out;
}

}  // namespace vpm::core
