#include "core/vpatch.hpp"

#include <algorithm>
#include <type_traits>

#include "simd/cpu_features.hpp"
#include "util/timer.hpp"

namespace vpm::core {

std::string_view isa_name(Isa isa) {
  switch (isa) {
    case Isa::scalar: return "scalar";
    case Isa::avx2: return "avx2";
    case Isa::avx512: return "avx512";
    case Isa::best: return "best";
  }
  return "?";
}

bool isa_supported(Isa isa) {
  switch (isa) {
    case Isa::scalar: return true;
    case Isa::avx2: return simd::cpu().has_avx2_kernel();
    case Isa::avx512: return simd::cpu().has_avx512_kernel();
    case Isa::best: return true;
  }
  return false;
}

Isa resolve_isa(Isa requested) {
  if (requested != Isa::best) return requested;
  if (simd::cpu().has_avx512_kernel()) return Isa::avx512;
  if (simd::cpu().has_avx2_kernel()) return Isa::avx2;
  return Isa::scalar;
}

VpatchMatcher::VpatchMatcher(const pattern::PatternSet& set, VpatchConfig cfg)
    : cfg_(cfg),
      isa_(resolve_isa(cfg.isa)),
      bank_(set, cfg.filters),
      verifier_(set, cfg.long_bucket_bits) {
  if (!isa_supported(isa_)) {
    throw std::runtime_error("V-PATCH: requested ISA not supported on this CPU");
  }
}

std::string_view VpatchMatcher::name() const {
  switch (isa_) {
    case Isa::avx512: return "V-PATCH-512";
    case Isa::avx2: return "V-PATCH";
    default: return "V-PATCH-scalar";
  }
}

unsigned VpatchMatcher::vector_width() const {
  switch (isa_) {
    case Isa::avx512: return 16;
    case Isa::avx2: return 8;
    default: return 1;
  }
}

std::size_t VpatchMatcher::run_kernel(const std::uint8_t* d, std::size_t begin,
                                      std::size_t end, std::size_t n,
                                      CandidateBuffers& buffers, ScanStats* stats) const {
  switch (isa_) {
    case Isa::avx2:
      return vpatch_filter_avx2(d, begin, end, n, bank_, buffers, cfg_.kernel, stats);
    case Isa::avx512:
      return vpatch_filter_avx512(d, begin, end, n, bank_, buffers, cfg_.kernel, stats);
    default:
      return begin;  // no vector coverage; scalar loop takes the whole range
  }
}

template <bool kWithStats>
void VpatchMatcher::scan_impl(util::ByteView data, MatchSink& sink, ScanStats* stats) const {
  const std::size_t n = data.size();
  if (n == 0) return;
  const std::uint8_t* d = data.data();
  CandidateBuffers buffers;
  buffers.ensure_capacity(std::min(cfg_.chunk_size, n));

  // The round timer only exists in the instrumented instantiation — a clock
  // read per chunk is real money on small-packet scans.
  using RoundTimer = std::conditional_t<kWithStats, util::Timer, util::NullTimer>;

  const std::size_t last_window_pos = n - 1;
  for (std::size_t chunk = 0; chunk < n; chunk += cfg_.chunk_size) {
    const std::size_t end = std::min(chunk + cfg_.chunk_size, last_window_pos);
    buffers.clear();

    RoundTimer timer;
    if (chunk < end) {
      // Vectorized main loop, then the scalar remainder of this chunk.
      const std::size_t done = run_kernel(d, chunk, end, n, buffers, stats);
      if (done < end) spatch_filter_scalar(d, done, end, n, bank_, buffers);
    }
    if (chunk + cfg_.chunk_size >= n) {
      spatch_filter_tail(d, n, bank_, buffers);
    }
    if constexpr (kWithStats) {
      stats->filter_seconds += timer.seconds();
      stats->short_candidates += buffers.n_short;
      stats->long_candidates += buffers.n_long;
      timer.reset();
    }

    verifier_.verify_short(data, {buffers.short_pos.data(), buffers.n_short}, sink);
    verifier_.verify_long(data, {buffers.long_pos.data(), buffers.n_long}, sink);
    if constexpr (kWithStats) {
      stats->verify_seconds += timer.seconds();
    }
  }
}

void VpatchMatcher::scan(util::ByteView data, MatchSink& sink) const {
  scan_impl<false>(data, sink, nullptr);
}

void VpatchMatcher::scan_with_stats(util::ByteView data, MatchSink& sink,
                                    ScanStats& stats) const {
  stats.vector_width = vector_width();
  struct Tee final : MatchSink {
    MatchSink* inner = nullptr;
    std::uint64_t n = 0;
    void on_match(const Match& m) override {
      ++n;
      inner->on_match(m);
    }
  } tee;
  tee.inner = &sink;
  scan_impl<true>(data, tee, &stats);
  stats.matches += tee.n;
}

void VpatchMatcher::scan_batch(std::span<const util::ByteView> payloads, BatchSink& sink,
                               ScanScratch& scratch) const {
  BatchScanState& st = scratch.state_for<BatchScanState>(scratch_owner_id());

  // Capacity: every position of every batched payload can land in both
  // candidate arrays; oversized payloads take the chunked per-payload path
  // below, keeping the shared pool bounded by the batch byte count.
  std::size_t batched_positions = 0;
  for (const util::ByteView& p : payloads) {
    if (p.size() <= cfg_.chunk_size) batched_positions += p.size();
  }
  st.buffers.ensure_capacity(batched_positions);
  st.short_item.ensure(batched_positions + CandidateBuffers::kStoreSlack);
  st.long_item.ensure(batched_positions + CandidateBuffers::kStoreSlack);
  // Stage-one verification scratch, sized by the same content-INDEPENDENT
  // bound (actual long-candidate counts vary per batch; sizing by the bound
  // keeps the steady state allocation-free).
  st.entry_begin.ensure(batched_positions + CandidateBuffers::kStoreSlack);
  st.entry_end.ensure(batched_positions + CandidateBuffers::kStoreSlack);
  st.window4.ensure(batched_positions + CandidateBuffers::kStoreSlack);
  st.buffers.clear();

  // Round one across the whole batch: candidates accumulate in the shared
  // pool; slack stores past the logical end are overwritten by the next
  // payload's appends (or ignored), per the pool capacity contract.  The
  // vector ISAs run the whole batch through one kernel call (setup hoisted
  // across payloads); oversized payloads are skipped there and scanned
  // through the chunked per-payload path below.
  bool batched_round_one = true;
  switch (isa_) {
    case Isa::avx2:
      vpatch_filter_batch_avx2(payloads, bank_, st.buffers, st.short_item.data(),
                               st.long_item.data(), cfg_.chunk_size, cfg_.kernel);
      break;
    case Isa::avx512:
      vpatch_filter_batch_avx512(payloads, bank_, st.buffers, st.short_item.data(),
                                 st.long_item.data(), cfg_.chunk_size, cfg_.kernel);
      break;
    default:
      batched_round_one = false;
      break;
  }

  for (std::size_t p = 0; p < payloads.size(); ++p) {
    const util::ByteView data = payloads[p];
    const std::size_t n = data.size();
    if (n == 0) continue;
    if (n > cfg_.chunk_size) {
      PacketSinkAdapter adapter;
      adapter.out = &sink;
      adapter.packet = static_cast<std::uint32_t>(p);
      scan(data, adapter);
      continue;
    }
    if (batched_round_one) continue;  // the batch kernel already filtered it
    const std::uint32_t short_begin = st.buffers.n_short;
    const std::uint32_t long_begin = st.buffers.n_long;
    const std::uint8_t* d = data.data();
    const std::size_t end = n - 1;
    if (0 < end) spatch_filter_scalar(d, 0, end, n, bank_, st.buffers);
    spatch_filter_tail(d, n, bank_, st.buffers);
    for (std::uint32_t k = short_begin; k < st.buffers.n_short; ++k) {
      st.short_item[k] = static_cast<std::uint32_t>(p);
    }
    for (std::uint32_t k = long_begin; k < st.buffers.n_long; ++k) {
      st.long_item[k] = static_cast<std::uint32_t>(p);
    }
  }

  // Round two, deferred: one verification pass over the whole pool.  The
  // long pass software-prefetches bucket headers and entry rows ahead.
  const auto emit = [&sink](std::uint32_t packet, const Match& m) {
    sink.on_match(packet, m);
  };
  verifier_.short_table().verify_flat(payloads, st.buffers.short_pos.data(),
                                      st.short_item.data(), st.buffers.n_short, emit);
  verifier_.long_table().verify_flat(payloads, st.buffers.long_pos.data(),
                                     st.long_item.data(), st.buffers.n_long,
                                     st.entry_begin.data(), st.entry_end.data(),
                                     st.window4.data(), emit);
}

VpatchMatcher::FilterOnlyResult VpatchMatcher::filter_only(util::ByteView data,
                                                           bool with_stores) const {
  ScanScratch scratch;
  return filter_only(data, with_stores, scratch);
}

VpatchMatcher::FilterOnlyResult VpatchMatcher::filter_only(util::ByteView data,
                                                           bool with_stores,
                                                           ScanScratch& scratch) const {
  FilterOnlyResult result;
  const std::size_t n = data.size();
  if (n == 0) return result;
  const std::uint8_t* d = data.data();

  if (!with_stores) {
    NoStoreCounts counts;
    std::size_t done = 0;
    const std::size_t end = n - 1;
    switch (isa_) {
      case Isa::avx2:
        done = vpatch_filter_nostore_avx2(d, 0, end, n, bank_, counts);
        break;
      case Isa::avx512:
        done = vpatch_filter_nostore_avx512(d, 0, end, n, bank_, counts);
        break;
      default:
        break;
    }
    // Scalar remainder, counting only.
    for (std::size_t i = done; i < end; ++i) {
      const std::uint32_t window = util::load_u16(d + i);
      if (bank_.test_f1(window)) ++counts.short_hits;
      if (bank_.test_f2(window) && i + 4 <= n && bank_.test_f3(util::load_u32(d + i))) {
        ++counts.long_hits;
      }
    }
    if (bank_.test_f1(d[n - 1])) ++counts.short_hits;
    result.short_candidates = counts.short_hits;
    result.long_candidates = counts.long_hits;
    return result;
  }

  CandidateBuffers& buffers = scratch.state_for<BatchScanState>(scratch_owner_id()).buffers;
  buffers.ensure_capacity(std::min(cfg_.chunk_size, n));
  const std::size_t last_window_pos = n - 1;
  for (std::size_t chunk = 0; chunk < n; chunk += cfg_.chunk_size) {
    const std::size_t end = std::min(chunk + cfg_.chunk_size, last_window_pos);
    buffers.clear();
    if (chunk < end) {
      const std::size_t done = run_kernel(d, chunk, end, n, buffers, nullptr);
      if (done < end) spatch_filter_scalar(d, done, end, n, bank_, buffers);
    }
    if (chunk + cfg_.chunk_size >= n) spatch_filter_tail(d, n, bank_, buffers);
    result.short_candidates += buffers.n_short;
    result.long_candidates += buffers.n_long;
  }
  return result;
}

}  // namespace vpm::core
