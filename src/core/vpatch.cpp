#include "core/vpatch.hpp"

#include <algorithm>

#include "simd/cpu_features.hpp"
#include "util/timer.hpp"

namespace vpm::core {

std::string_view isa_name(Isa isa) {
  switch (isa) {
    case Isa::scalar: return "scalar";
    case Isa::avx2: return "avx2";
    case Isa::avx512: return "avx512";
    case Isa::best: return "best";
  }
  return "?";
}

bool isa_supported(Isa isa) {
  switch (isa) {
    case Isa::scalar: return true;
    case Isa::avx2: return simd::cpu().has_avx2_kernel();
    case Isa::avx512: return simd::cpu().has_avx512_kernel();
    case Isa::best: return true;
  }
  return false;
}

Isa resolve_isa(Isa requested) {
  if (requested != Isa::best) return requested;
  if (simd::cpu().has_avx512_kernel()) return Isa::avx512;
  if (simd::cpu().has_avx2_kernel()) return Isa::avx2;
  return Isa::scalar;
}

VpatchMatcher::VpatchMatcher(const pattern::PatternSet& set, VpatchConfig cfg)
    : cfg_(cfg),
      isa_(resolve_isa(cfg.isa)),
      bank_(set, cfg.filters),
      verifier_(set, cfg.long_bucket_bits) {
  if (!isa_supported(isa_)) {
    throw std::runtime_error("V-PATCH: requested ISA not supported on this CPU");
  }
}

std::string_view VpatchMatcher::name() const {
  switch (isa_) {
    case Isa::avx512: return "V-PATCH-512";
    case Isa::avx2: return "V-PATCH";
    default: return "V-PATCH-scalar";
  }
}

unsigned VpatchMatcher::vector_width() const {
  switch (isa_) {
    case Isa::avx512: return 16;
    case Isa::avx2: return 8;
    default: return 1;
  }
}

std::size_t VpatchMatcher::run_kernel(const std::uint8_t* d, std::size_t begin,
                                      std::size_t end, std::size_t n,
                                      CandidateBuffers& buffers, ScanStats* stats) const {
  switch (isa_) {
    case Isa::avx2:
      return vpatch_filter_avx2(d, begin, end, n, bank_, buffers, cfg_.kernel, stats);
    case Isa::avx512:
      return vpatch_filter_avx512(d, begin, end, n, bank_, buffers, cfg_.kernel, stats);
    default:
      return begin;  // no vector coverage; scalar loop takes the whole range
  }
}

template <bool kWithStats>
void VpatchMatcher::scan_impl(util::ByteView data, MatchSink& sink, ScanStats* stats) const {
  const std::size_t n = data.size();
  if (n == 0) return;
  const std::uint8_t* d = data.data();
  CandidateBuffers buffers;
  buffers.ensure_capacity(std::min(cfg_.chunk_size, n));

  const std::size_t last_window_pos = n - 1;
  for (std::size_t chunk = 0; chunk < n; chunk += cfg_.chunk_size) {
    const std::size_t end = std::min(chunk + cfg_.chunk_size, last_window_pos);
    buffers.clear();

    util::Timer timer;
    if (chunk < end) {
      // Vectorized main loop, then the scalar remainder of this chunk.
      const std::size_t done = run_kernel(d, chunk, end, n, buffers, stats);
      if (done < end) spatch_filter_scalar(d, done, end, n, bank_, buffers);
    }
    if (chunk + cfg_.chunk_size >= n) {
      spatch_filter_tail(d, n, bank_, buffers);
    }
    if constexpr (kWithStats) {
      stats->filter_seconds += timer.seconds();
      stats->short_candidates += buffers.n_short;
      stats->long_candidates += buffers.n_long;
      timer.reset();
    }

    verifier_.verify_short(data, {buffers.short_pos.data(), buffers.n_short}, sink);
    verifier_.verify_long(data, {buffers.long_pos.data(), buffers.n_long}, sink);
    if constexpr (kWithStats) {
      stats->verify_seconds += timer.seconds();
    }
  }
}

void VpatchMatcher::scan(util::ByteView data, MatchSink& sink) const {
  scan_impl<false>(data, sink, nullptr);
}

void VpatchMatcher::scan_with_stats(util::ByteView data, MatchSink& sink,
                                    ScanStats& stats) const {
  stats.vector_width = vector_width();
  struct Tee final : MatchSink {
    MatchSink* inner = nullptr;
    std::uint64_t n = 0;
    void on_match(const Match& m) override {
      ++n;
      inner->on_match(m);
    }
  } tee;
  tee.inner = &sink;
  scan_impl<true>(data, tee, &stats);
  stats.matches += tee.n;
}

VpatchMatcher::FilterOnlyResult VpatchMatcher::filter_only(util::ByteView data,
                                                           bool with_stores) const {
  FilterOnlyResult result;
  const std::size_t n = data.size();
  if (n == 0) return result;
  const std::uint8_t* d = data.data();

  if (!with_stores) {
    NoStoreCounts counts;
    std::size_t done = 0;
    const std::size_t end = n - 1;
    switch (isa_) {
      case Isa::avx2:
        done = vpatch_filter_nostore_avx2(d, 0, end, n, bank_, counts);
        break;
      case Isa::avx512:
        done = vpatch_filter_nostore_avx512(d, 0, end, n, bank_, counts);
        break;
      default:
        break;
    }
    // Scalar remainder, counting only.
    for (std::size_t i = done; i < end; ++i) {
      const std::uint32_t window = util::load_u16(d + i);
      if (bank_.test_f1(window)) ++counts.short_hits;
      if (bank_.test_f2(window) && i + 4 <= n && bank_.test_f3(util::load_u32(d + i))) {
        ++counts.long_hits;
      }
    }
    if (bank_.test_f1(d[n - 1])) ++counts.short_hits;
    result.short_candidates = counts.short_hits;
    result.long_candidates = counts.long_hits;
    return result;
  }

  CandidateBuffers buffers;
  buffers.ensure_capacity(std::min(cfg_.chunk_size, n));
  const std::size_t last_window_pos = n - 1;
  for (std::size_t chunk = 0; chunk < n; chunk += cfg_.chunk_size) {
    const std::size_t end = std::min(chunk + cfg_.chunk_size, last_window_pos);
    buffers.clear();
    if (chunk < end) {
      const std::size_t done = run_kernel(d, chunk, end, n, buffers, nullptr);
      if (done < end) spatch_filter_scalar(d, done, end, n, bank_, buffers);
    }
    if (chunk + cfg_.chunk_size >= n) spatch_filter_tail(d, n, bank_, buffers);
    result.short_candidates += buffers.n_short;
    result.long_candidates += buffers.n_long;
  }
  return result;
}

}  // namespace vpm::core
