// Kernel-side contract of the approximate q-gram prefilter (core/prefilter).
//
// A payload PASSES the screen iff it contains a run of at least `threshold`
// CONSECUTIVE positions whose q-gram hits the blocked-Bloom signature.  A
// pattern of length L >= q contributes L-q+1 consecutive hitting positions
// wherever it occurs, and threshold is built as
// min(min_pattern_len - q + 1, cap), so every payload containing any
// pattern occurrence passes: rejection is exact, passing is approximate.
//
// Probe (shared bit-for-bit by the build, the scalar screen, and both
// vector kernels): h = gram * kGoldenGamma; the word at ((h >> 10) &
// word_mask) must have BOTH bit (h & 31) and bit ((h >> 5) & 31) set.
// Grams are little-endian windows of case-FOLDED bytes (q = 3 masks the
// top byte off a 4-byte load), so nocase and exact-case patterns screen
// through one signature.
//
// Probing is STRIDED: any threshold consecutive integers contain a multiple
// of threshold, so probing only positions 0, T, 2T, ... cannot miss a
// qualifying run — a hit at a strided position is then verified by scanning
// its neighborhood for the full run.  On the dominant reject path this cuts
// the probe count (and the signature gathers) by a factor of threshold.
//
// Read contract of the vector kernels and of the folded helpers: the folded
// payload copy must be readable up to data[len + kPrefilterPad - 1] (the
// staging buffer zero-fills that slack, exactly like the AC lane kernels'
// kStagePad).  The kernels are compiled per-ISA in prefilter_avx2.cpp /
// prefilter_avx512.cpp with abort stubs on narrower toolchains; dispatch
// goes through simd::cpu() and never reaches a stub.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/hash.hpp"

namespace vpm::core {

// Zeroed staging slack past the folded payload end, in bytes.  Every folded
// access — the kernels' gram gathers and the verify/tail 4-byte loads — reads
// data[p .. p+3] for a position p <= len - q, so reads reach at most
// data[len] (q = 3); the pad keeps a wide margin on top of that.
inline constexpr std::size_t kPrefilterPad = 16;

// The probe-side view of a built signature (points into Prefilter storage).
struct PrefilterView {
  const std::uint32_t* words = nullptr;
  std::uint32_t word_mask = 0;  // word_count - 1 (word_count is a power of 2)
  std::uint32_t q = 0;          // 3 or 4
  std::uint32_t threshold = 0;  // required consecutive-hit run length, >= 1
};

inline bool prefilter_probe(const PrefilterView& v, std::uint32_t gram) {
  const std::uint32_t h = gram * util::kGoldenGamma;
  const std::uint32_t w = v.words[(h >> 10) & v.word_mask];
  return ((w >> (h & 31u)) & (w >> ((h >> 5) & 31u)) & 1u) != 0;
}

// The q-gram at position p of an already-FOLDED payload copy (4-byte load
// even for q = 3: requires the kPrefilterPad slack).
inline std::uint32_t prefilter_gram_folded(const PrefilterView& v,
                                           const std::uint8_t* data, std::size_t p) {
  return util::load_u32(data + p) & (v.q == 4 ? 0xFFFFFFFFu : 0x00FFFFFFu);
}

// Verify step after a strided hit at position p (which must itself hit):
// extend the hit run left and right until it either reaches threshold or
// breaks.  Extension stops as soon as the run qualifies, so the scan cost is
// bounded by threshold regardless of how long the true run is.
inline bool prefilter_verify_run(const PrefilterView& v, const std::uint8_t* data,
                                 std::size_t positions, std::size_t p) {
  std::size_t l = p;
  std::size_t r = p + 1;
  while (l > 0 && r - l < v.threshold &&
         prefilter_probe(v, prefilter_gram_folded(v, data, l - 1))) {
    --l;
  }
  while (r < positions && r - l < v.threshold &&
         prefilter_probe(v, prefilter_gram_folded(v, data, r))) {
    ++r;
  }
  return r - l >= v.threshold;
}

// Scalar strided screen over FOLDED bytes from position `start` (which must
// be a multiple of threshold, so the stride lattice stays aligned with the
// callers' vector blocks) to the end.  Serves as the kernels' tail and as
// the whole-payload fallback for staged copies.
inline bool prefilter_screen_folded_tail(const PrefilterView& v, const std::uint8_t* data,
                                         std::size_t positions, std::size_t start) {
  for (std::size_t p = start; p < positions; p += v.threshold) {
    if (prefilter_probe(v, prefilter_gram_folded(v, data, p)) &&
        prefilter_verify_run(v, data, positions, p)) {
      return true;
    }
  }
  return false;
}

// Vectorized whole-payload screens over a folded copy (see the read
// contract above).  Defined in the ISA-split translation units; must only
// be called when simd::cpu() reports the matching kernel.
bool prefilter_screen_avx2(const PrefilterView& v, const std::uint8_t* data,
                           std::size_t len);
bool prefilter_screen_avx512(const PrefilterView& v, const std::uint8_t* data,
                             std::size_t len);

}  // namespace vpm::core
