// Brute-force reference matcher: O(positions x patterns) — the ground truth
// oracle for the differential test suite.  Never used in benchmarks.
#pragma once

#include "match/matcher.hpp"
#include "pattern/pattern_set.hpp"

namespace vpm::core {

class NaiveMatcher final : public Matcher {
 public:
  explicit NaiveMatcher(const pattern::PatternSet& set) : set_(&set) {}

  void scan(util::ByteView data, MatchSink& sink) const override;
  std::string_view name() const override { return "naive"; }
  std::size_t memory_bytes() const override { return 0; }

 private:
  const pattern::PatternSet* set_;
};

}  // namespace vpm::core
