// S-PATCH — the scalar, vectorizable restructuring of DFC (paper §IV-A,
// Algorithm 1).
//
// Differences from DFC that this class embodies:
//   * short patterns get a dedicated first filter so frequent, cheap matches
//     (GET/HTTP-class tokens) are identified without dragging long-pattern
//     state in;
//   * long-pattern candidates must pass BOTH the 2-byte Filter 2 and the
//     hashed 4-byte Filter 3 before being stored — more compute per window,
//     far fewer verifications;
//   * filtering and verification run as two separate rounds over each input
//     chunk, communicating through the A_short/A_long position arrays.
#pragma once

#include <cstdint>

#include "core/candidates.hpp"
#include "core/filter_bank.hpp"
#include "core/scan_stats.hpp"
#include "core/verifier.hpp"
#include "match/matcher.hpp"

namespace vpm::core {

struct SpatchConfig {
  FilterBankConfig filters{};
  unsigned long_bucket_bits = 15;
  // Input positions filtered per round-one pass before verification runs;
  // sized so the candidate arrays stay cache-resident next to the filters.
  std::size_t chunk_size = 32 * 1024;
};

// Round one, scalar: filters positions [begin, end) of data (end <= n-1;
// every position has a full 2-byte window) into `out`.  Exposed as a free
// function because the vectorized engine reuses it for remainder tails.
void spatch_filter_scalar(const std::uint8_t* data, std::size_t begin, std::size_t end,
                          std::size_t total_len, const FilterBank& bank,
                          CandidateBuffers& out);

// The zero-padded final-position probe (only 1..3-byte patterns can start at
// the last bytes; 1-byte wildcard expansion makes the padded test exact).
void spatch_filter_tail(const std::uint8_t* data, std::size_t total_len,
                        const FilterBank& bank, CandidateBuffers& out);

class SpatchMatcher final : public Matcher {
 public:
  explicit SpatchMatcher(const pattern::PatternSet& set, SpatchConfig cfg = {});

  void scan(util::ByteView data, MatchSink& sink) const override;
  std::string_view name() const override { return "S-PATCH"; }
  std::size_t memory_bytes() const override {
    return bank_.memory_bytes() + verifier_.memory_bytes();
  }

  // Instrumented scan for the Fig. 5b filtering/verification time split.
  void scan_with_stats(util::ByteView data, MatchSink& sink, ScanStats& stats) const;

  // Round one only over the whole input (Fig. 6 filtering-isolation bench).
  // Returns candidate counts; with_stores=false still records counts but
  // skips writing the position arrays.
  struct FilterOnlyResult {
    std::uint64_t short_candidates = 0;
    std::uint64_t long_candidates = 0;
  };
  FilterOnlyResult filter_only(util::ByteView data, bool with_stores) const;

  const FilterBank& filter_bank() const { return bank_; }
  const Verifier& verifier() const { return verifier_; }
  const SpatchConfig& config() const { return cfg_; }

 private:
  template <bool kWithStats>
  void scan_impl(util::ByteView data, MatchSink& sink, ScanStats* stats) const;

  SpatchConfig cfg_;
  FilterBank bank_;
  Verifier verifier_;
};

}  // namespace vpm::core
