#include "core/naive.hpp"

namespace vpm::core {

void NaiveMatcher::scan(util::ByteView data, MatchSink& sink) const {
  for (std::size_t pos = 0; pos < data.size(); ++pos) {
    for (const pattern::Pattern& p : *set_) {
      if (p.matches_at(data, pos)) sink.on_match({p.id, pos});
    }
  }
}

}  // namespace vpm::core
