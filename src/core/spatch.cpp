#include "core/spatch.hpp"

#include <algorithm>
#include <type_traits>

#include "util/hash.hpp"
#include "util/timer.hpp"

namespace vpm::core {

void spatch_filter_scalar(const std::uint8_t* data, std::size_t begin, std::size_t end,
                          std::size_t total_len, const FilterBank& bank,
                          CandidateBuffers& out) {
  // The scalar loop benefits from the merged layout too: one 2-byte load
  // serves both Filter 1 (low byte) and Filter 2 (high byte).
  const std::uint8_t* merged = bank.merged_data();
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint32_t window = util::load_u16(data + i);
    const std::uint32_t word = util::load_u16(merged + 2 * (window >> 3));
    const std::uint32_t bit = window & 7u;
    if ((word >> bit) & 1u) {
      out.short_pos[out.n_short++] = static_cast<std::uint32_t>(i);
    }
    if ((word >> (bit + 8)) & 1u && i + 4 <= total_len) {
      const std::uint32_t window4 = util::load_u32(data + i);
      if (bank.test_f3(window4)) {
        out.long_pos[out.n_long++] = static_cast<std::uint32_t>(i);
      }
    }
  }
}

void spatch_filter_tail(const std::uint8_t* data, std::size_t total_len,
                        const FilterBank& bank, CandidateBuffers& out) {
  if (total_len == 0) return;
  const std::uint32_t window = data[total_len - 1];  // zero-padded second byte
  if (bank.test_f1(window)) {
    out.short_pos[out.n_short++] = static_cast<std::uint32_t>(total_len - 1);
  }
}

SpatchMatcher::SpatchMatcher(const pattern::PatternSet& set, SpatchConfig cfg)
    : cfg_(cfg), bank_(set, cfg.filters), verifier_(set, cfg.long_bucket_bits) {}

template <bool kWithStats>
void SpatchMatcher::scan_impl(util::ByteView data, MatchSink& sink, ScanStats* stats) const {
  const std::size_t n = data.size();
  if (n == 0) return;
  CandidateBuffers buffers;
  buffers.ensure_capacity(std::min(cfg_.chunk_size, n));

  // Clock reads only in the instrumented instantiation (cf. VpatchMatcher).
  using RoundTimer = std::conditional_t<kWithStats, util::Timer, util::NullTimer>;

  // The main loop covers positions with a complete 2-byte window.
  const std::size_t last_window_pos = n - 1;  // exclusive bound for round one
  for (std::size_t chunk = 0; chunk < n; chunk += cfg_.chunk_size) {
    const std::size_t end = std::min(chunk + cfg_.chunk_size, last_window_pos);
    buffers.clear();

    RoundTimer timer;
    if (chunk < end) {
      spatch_filter_scalar(data.data(), chunk, end, n, bank_, buffers);
    }
    if (chunk + cfg_.chunk_size >= n) {
      spatch_filter_tail(data.data(), n, bank_, buffers);
    }
    if constexpr (kWithStats) {
      stats->filter_seconds += timer.seconds();
      stats->short_candidates += buffers.n_short;
      stats->long_candidates += buffers.n_long;
      timer.reset();
    }

    verifier_.verify_short(data, {buffers.short_pos.data(), buffers.n_short}, sink);
    verifier_.verify_long(data, {buffers.long_pos.data(), buffers.n_long}, sink);
    if constexpr (kWithStats) {
      stats->verify_seconds += timer.seconds();
    }
  }
}

void SpatchMatcher::scan(util::ByteView data, MatchSink& sink) const {
  scan_impl<false>(data, sink, nullptr);
}

void SpatchMatcher::scan_with_stats(util::ByteView data, MatchSink& sink,
                                    ScanStats& stats) const {
  stats.vector_width = 1;
  struct Tee final : MatchSink {
    MatchSink* inner = nullptr;
    std::uint64_t n = 0;
    void on_match(const Match& m) override {
      ++n;
      inner->on_match(m);
    }
  } tee;
  tee.inner = &sink;
  scan_impl<true>(data, tee, &stats);
  stats.matches += tee.n;
}

SpatchMatcher::FilterOnlyResult SpatchMatcher::filter_only(util::ByteView data,
                                                           bool with_stores) const {
  FilterOnlyResult result;
  const std::size_t n = data.size();
  if (n == 0) return result;
  CandidateBuffers buffers;
  buffers.ensure_capacity(std::min(cfg_.chunk_size, n));

  if (with_stores) {
    const std::size_t last = n - 1;
    for (std::size_t chunk = 0; chunk < n; chunk += cfg_.chunk_size) {
      const std::size_t end = std::min(chunk + cfg_.chunk_size, last);
      buffers.clear();
      if (chunk < end) spatch_filter_scalar(data.data(), chunk, end, n, bank_, buffers);
      if (chunk + cfg_.chunk_size >= n) spatch_filter_tail(data.data(), n, bank_, buffers);
      result.short_candidates += buffers.n_short;
      result.long_candidates += buffers.n_long;
    }
    return result;
  }

  // No-stores variant: identical probe sequence, counters only.
  const std::uint8_t* d = data.data();
  std::uint64_t shorts = 0;
  std::uint64_t longs = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::uint32_t window = util::load_u16(d + i);
    if (bank_.test_f1(window)) ++shorts;
    if (bank_.test_f2(window) && i + 4 <= n) {
      if (bank_.test_f3(util::load_u32(d + i))) ++longs;
    }
  }
  if (bank_.test_f1(d[n - 1])) ++shorts;
  result.short_candidates = shorts;
  result.long_candidates = longs;
  return result;
}

}  // namespace vpm::core
