#include "util/bitarray.hpp"

#include <bit>

namespace vpm::util {

std::size_t BitArray::popcount() const {
  std::size_t n = 0;
  for (std::uint8_t b : bytes_) n += static_cast<std::size_t>(std::popcount(b));
  return n;
}

double BitArray::occupancy() const {
  if (bits_ == 0) return 0.0;
  return static_cast<double>(popcount()) / static_cast<double>(bits_);
}

}  // namespace vpm::util
