// Fixed-size bit array backing the cache-resident direct filters.
//
// The filters in DFC / S-PATCH / V-PATCH are bitmaps indexed by a 2-byte
// window value (64K bits = 8 KB) or by a hash of a 4-byte window.  The SIMD
// filtering kernels gather 32-bit words from the byte storage at arbitrary
// byte offsets, so the storage is allocated with trailing slack to keep such
// over-reads in bounds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vpm::util {

class BitArray {
 public:
  // Trailing bytes kept valid beyond the last addressable index so that a
  // 4-byte gather at the final byte offset stays in allocated memory.
  static constexpr std::size_t kGatherSlack = 8;

  BitArray() = default;
  explicit BitArray(std::size_t bit_count)
      : bits_(bit_count), bytes_((bit_count + 7) / 8 + kGatherSlack, 0) {}

  std::size_t bit_size() const { return bits_; }
  std::size_t byte_size() const { return bytes_.empty() ? 0 : bytes_.size() - kGatherSlack; }

  void set(std::size_t i) { bytes_[i >> 3] |= static_cast<std::uint8_t>(1u << (i & 7)); }
  void clear(std::size_t i) { bytes_[i >> 3] &= static_cast<std::uint8_t>(~(1u << (i & 7))); }
  bool test(std::size_t i) const { return (bytes_[i >> 3] >> (i & 7)) & 1u; }

  void reset() { std::fill(bytes_.begin(), bytes_.end(), std::uint8_t{0}); }

  // Raw byte storage, for the gather-based kernels.
  const std::uint8_t* data() const { return bytes_.data(); }
  std::uint8_t* data() { return bytes_.data(); }

  // Number of set bits; filters report this as occupancy.
  std::size_t popcount() const;
  // Fraction of set bits in [0,1]; 0 for an empty array.
  double occupancy() const;

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace vpm::util
