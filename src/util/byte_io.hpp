// Whole-file byte I/O for loading rulesets and writing generated traces.
#pragma once

#include <string>

#include "util/bytes.hpp"

namespace vpm::util {

// Reads an entire file; throws std::runtime_error on failure.
Bytes read_file(const std::string& path);
void write_file(const std::string& path, ByteView data);

}  // namespace vpm::util
