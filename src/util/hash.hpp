// Hash functions shared by the filters and the compact verification tables.
//
// The paper's Filter 3 uses a multiplicative hash of a 4-byte input window
// (Knuth's golden-ratio constant); the same function must be cheap to express
// with vpmulld/vpsrld in the vectorized kernels, so it is a single multiply
// followed by a shift.
#pragma once

#include <cstdint>

namespace vpm::util {

// 2^32 / phi, Knuth's multiplicative-hash constant.
inline constexpr std::uint32_t kGoldenGamma = 0x9E3779B1u;

// Multiplicative ("Fibonacci") hash of a 32-bit key into [0, 2^out_bits).
// Identical scalar formula to the one the vector kernels apply lane-wise.
constexpr std::uint32_t multiplicative_hash(std::uint32_t key, unsigned out_bits) {
  return (key * kGoldenGamma) >> (32u - out_bits);
}

// Little-endian load of n<=4 bytes into the low bytes of a u32.
constexpr std::uint32_t load_le(const std::uint8_t* p, unsigned n) {
  std::uint32_t v = 0;
  for (unsigned i = 0; i < n; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

constexpr std::uint32_t load_u16(const std::uint8_t* p) { return load_le(p, 2); }
constexpr std::uint32_t load_u32(const std::uint8_t* p) { return load_le(p, 4); }

// FNV-1a, used for bucket hashing in the compact tables (quality matters more
// than vectorizability there — those lookups are scalar in every algorithm).
constexpr std::uint32_t fnv1a(const std::uint8_t* data, std::size_t n,
                              std::uint32_t seed = 0x811C9DC5u) {
  std::uint32_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x01000193u;
  }
  return h;
}

// 64-bit FNV-1a, used for content fingerprints (the compiled-database id
// that survives serialization; collisions must be rare across rule sets).
inline constexpr std::uint64_t kFnv64Seed = 0xCBF29CE484222325ull;
constexpr std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n,
                                std::uint64_t seed = kFnv64Seed) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x00000100000001B3ull;
  }
  return h;
}

// Folds a 64-bit value into a running fnv1a64 state byte-by-byte (LE).
constexpr std::uint64_t fnv1a64_u64(std::uint64_t v, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (unsigned i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x00000100000001B3ull;
  }
  return h;
}

// 64-bit mix (splitmix64 finalizer) for RNG seeding and test fixtures.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace vpm::util
