// Deterministic xoshiro256** generator.
//
// All synthetic workloads (rulesets, traces, injectors) must be reproducible
// from a single seed so that every benchmark row in EXPERIMENTS.md can be
// regenerated bit-for-bit; std::mt19937 distributions are not portable across
// standard libraries, so we ship our own generator and bounded-int helpers.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/hash.hpp"

namespace vpm::util {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xC0FFEE) {
    std::uint64_t x = seed;
    for (auto& s : state_) s = mix64(x += 0x9E3779B97F4A7C15ull);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Lemire's multiply-shift rejection-free
  // approximation is fine here: bias is < 2^-32 for the bounds we use.
  std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double uniform() { return static_cast<double>(operator()() >> 11) * 0x1.0p-53; }

  bool chance(double p) { return uniform() < p; }

  std::uint8_t byte() { return static_cast<std::uint8_t>(below(256)); }

  char printable() {  // ASCII 0x20..0x7E
    return static_cast<char>(0x20 + below(0x5F));
  }

  char lower_alpha() { return static_cast<char>('a' + below(26)); }
  char alnum() {
    static constexpr std::string_view kAlnum =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    return kAlnum[below(kAlnum.size())];
  }

  template <typename Container>
  const auto& pick(const Container& c) {
    return c[below(c.size())];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace vpm::util
