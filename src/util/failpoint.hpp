// Seeded, deterministic fault-injection points for the chaos suite.
//
// A failpoint is a named site on an error-handling path (ring push/pop,
// reassembly buffer growth, alert-sink write, hot-swap publish, exporter
// socket ops, worker batch processing).  Armed, the site's check returns
// true on a deterministic subset of hits — as if the real failure (full
// ring, exhausted budget, failed write, ...) had happened — so the chaos
// tests can prove the pipeline degrades instead of wedging.  Disarmed (the
// production state), the check is ONE relaxed load of a global mask plus a
// predicted-not-taken branch: no locks, no allocation, no clock reads —
// alloc_test pins the no-allocation half and the chaos differential pins
// that a disarmed binary's alert stream is byte-identical.
//
// Arming:
//   - programmatic: util::failpoint::arm("ring_push=every:7,alert_sink_write"
//     "=prob:0.01", seed) — returns an error string ("" on success);
//   - environment:  VPM_FAILPOINTS=<spec> (+ optional VPM_FAILPOINT_SEED=<n>)
//     is read once at process start, so ANY binary (tests, benches,
//     pcap_sensor) can be chaos-run without code changes.
//
// Spec grammar:  site=mode[,site=mode...]
//   off        never fires (explicit disarm of one site)
//   always     every hit fires
//   prob:<p>   each hit fires independently with probability p (seeded
//              splitmix over (seed, site, hit-index): the fire set is a pure
//              function of the hit sequence, so a serialized replay is
//              deterministic)
//   every:<n>  hits n, 2n, 3n, ... fire (n >= 1)
//   after:<n>  every hit past the first n fires
//   once:<n>   exactly hit n fires (1-based)
//
// Determinism contract: fires(site) is a pure function of (spec, seed,
// hits(site)); with concurrent callers the per-hit decisions are still
// deterministic per hit INDEX — only the interleaving of indices across
// threads varies.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace vpm::util::failpoint {

enum class Site : std::uint8_t {
  ring_push,          // SpscRing::try_push reports full
  ring_pop,           // SpscRing::try_pop reports empty (slow consumer)
  reassembly_buffer,  // TcpReassembler::insert_piece reports budget exhausted
  alert_sink_write,   // alert delivery fails (GuardedSink throw / NDJSON write)
  hot_swap_publish,   // PipelineRuntime::swap_database throws
  exporter_socket,    // HttpExporter send is short (partial-write path)
  worker_batch,       // Worker::process throws (catastrophic worker failure)
  count
};

inline constexpr std::size_t kSiteCount = static_cast<std::size_t>(Site::count);

const char* site_name(Site s);
std::optional<Site> site_from_name(std::string_view name);

// Parses and installs `spec` (see grammar above).  Returns "" on success or
// a human-readable parse error; a failed arm leaves the previous arming
// untouched.  Hit/fire counters reset on every successful arm.  Thread-safe
// against concurrent should_fail callers (sites are armed one atomic mask
// store at the end).
std::string arm(std::string_view spec, std::uint64_t seed = 1);

// Disarms every site (the mask goes to 0; counters are kept for reading).
void disarm();

// True when at least one site is armed.
bool any_armed();

// Lifetime counters since the last arm(): how often the site was reached /
// how often it fired.
std::uint64_t hits(Site s);
std::uint64_t fires(Site s);

// One line per armed site: "site=mode hits=N fires=N" (diagnostics for the
// end-of-run dumps).  Empty when nothing is armed.
std::string describe();

namespace detail {
// Bit i set <=> site i armed.  Relaxed: arming mid-run is advisory; the
// ordering of the first few post-arm hits does not matter.
extern std::atomic<std::uint32_t> g_armed_mask;
bool fire_slow(Site s);
}  // namespace detail

// THE hot-path check.  Call as: if (should_fail(Site::ring_push)) ...
inline bool should_fail(Site s) {
  const std::uint32_t mask = detail::g_armed_mask.load(std::memory_order_relaxed);
  if (mask == 0) [[likely]] {
    return false;
  }
  if ((mask & (1u << static_cast<unsigned>(s))) == 0) return false;
  return detail::fire_slow(s);
}

}  // namespace vpm::util::failpoint
