// Byte arena with stable offsets.
//
// The compact verification tables keep thousands of variable-length patterns;
// storing each as its own vector would scatter them across the heap and add a
// pointer dereference to every verification probe.  The arena packs all
// pattern bytes into one contiguous block and hands out integral offsets that
// stay valid across growth (unlike raw pointers).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace vpm::util {

class ByteArena {
 public:
  // Appends a copy of `bytes`; returns its offset within the arena.
  std::uint32_t add(std::span<const std::uint8_t> bytes);

  const std::uint8_t* at(std::uint32_t offset) const { return storage_.data() + offset; }
  std::span<const std::uint8_t> view(std::uint32_t offset, std::size_t len) const {
    return {storage_.data() + offset, len};
  }

  std::size_t size() const { return storage_.size(); }
  bool empty() const { return storage_.empty(); }
  void reserve(std::size_t n) { storage_.reserve(n); }

 private:
  std::vector<std::uint8_t> storage_;
};

}  // namespace vpm::util
