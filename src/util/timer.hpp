// Wall-clock timing and throughput accounting for the benchmark harness.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace vpm::util {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Raw steady-clock nanoseconds for timestamp plumbing (ring-dwell stamps)
// where carrying a Timer object per item would be clumsy.
inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Zero-cost stand-in for Timer in templated code whose non-instrumented
// instantiation must not pay clock reads (hot small-packet scan paths).
struct NullTimer {
  void reset() {}
};

// The paper reports throughput in Gbps (gigabits per second of payload).
inline double gbps(std::size_t bytes, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(bytes) * 8.0 / seconds / 1e9;
}

inline double mbps(std::size_t bytes, double seconds) { return gbps(bytes, seconds) * 1e3; }

}  // namespace vpm::util
