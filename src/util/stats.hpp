// Streaming summary statistics (Welford) used by the benchmark harness to
// report mean throughput and standard deviation over independent runs, as the
// paper does ("10 independent runs ... average ... standard deviation").
#pragma once

#include <cstddef>
#include <vector>

namespace vpm::util {

class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1); 0 if n < 2
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Batch helpers for when all samples are retained anyway.
double mean_of(const std::vector<double>& xs);
double stddev_of(const std::vector<double>& xs);
// Linear-interpolated percentile, p in [0,100]. Sorts a copy.
double percentile_of(std::vector<double> xs, double p);

}  // namespace vpm::util
