#include "util/arena.hpp"

#include <stdexcept>

namespace vpm::util {

std::uint32_t ByteArena::add(std::span<const std::uint8_t> bytes) {
  if (storage_.size() + bytes.size() > UINT32_MAX) {
    throw std::length_error("ByteArena: 4 GiB capacity exceeded");
  }
  const auto offset = static_cast<std::uint32_t>(storage_.size());
  storage_.insert(storage_.end(), bytes.begin(), bytes.end());
  return offset;
}

}  // namespace vpm::util
