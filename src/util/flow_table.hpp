// Open-addressing flow table for millions-of-flows churn.
//
// The per-worker flow maps (TcpReassembler connections, IdsEngine stream
// state, the worker's UDP last-seen tracker) were std::unordered_map: one
// heap node per entry, pointer-chasing buckets, and idle eviction as a full
// O(table) sweep — a latency spike that grows with the table and lands in
// the middle of packet processing.  This table replaces them with:
//
//   - linear-probe open addressing over a flat power-of-two slot array
//     (cached 64-bit hash per slot, so probing never touches keys of
//     non-matching entries' values);
//   - values on their own heap cells, so Value* stays stable across
//     rehash and erase — IdsEngine::Staged::flow relies on exactly this,
//     as unordered_map's node stability did before;
//   - tombstone deletion.  Backward-shift deletion would be tombstone-free
//     but moves surviving entries backwards across the wrap-around, which
//     can carry an entry from a not-yet-visited slot into an
//     already-visited one during an in-progress sweep — a missed flow.
//     Tombstones keep every live entry in place; the table rebuilds in
//     bulk when tombstones exceed a quarter of capacity;
//   - an incremental sweep cursor: sweep_step(max_slots, fn) examines a
//     bounded run of slots and remembers where it stopped, so idle
//     eviction can be amortized over packet batches instead of stalling
//     on one full pass (the classic NIDS flow-table design; see
//     evict_idle_step / PipelineConfig::eviction_max_steps).
//
// Single-threaded by design, like the maps it replaces: each pipeline
// worker owns its tables exclusively.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace vpm::util {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class FlowTable {
 public:
  FlowTable() = default;
  explicit FlowTable(std::size_t initial_capacity) { reserve_slots(initial_capacity); }

  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;
  FlowTable(FlowTable&&) = default;
  FlowTable& operator=(FlowTable&&) = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

  Value* find(const Key& key) {
    const std::size_t idx = find_index(key, hash_of(key));
    return idx == kNotFound ? nullptr : slots_[idx].value.get();
  }
  const Value* find(const Key& key) const {
    const std::size_t idx = find_index(key, hash_of(key));
    return idx == kNotFound ? nullptr : slots_[idx].value.get();
  }

  // Find-or-insert.  `make` is invoked only on insertion and must return a
  // Value (a factory rather than a default constructor: engine FlowState is
  // built from the current ruleset).  Returns {value, inserted}.  The
  // returned pointer is stable for the entry's lifetime.
  template <typename Make>
  std::pair<Value*, bool> find_or_emplace(const Key& key, Make&& make) {
    const std::uint64_t h = hash_of(key);
    std::size_t idx = find_index(key, h);
    if (idx != kNotFound) return {slots_[idx].value.get(), false};
    if (slots_.empty() || (size_ + tombstones_ + 1) * 4 > slots_.size() * 3) {
      grow();
    }
    idx = insert_index(key, h);
    Slot& s = slots_[idx];
    if (s.state == State::tombstone) --tombstones_;
    s.state = State::full;
    s.hash = h;
    s.key = key;
    s.value = std::make_unique<Value>(make());
    ++size_;
    return {s.value.get(), true};
  }

  bool erase(const Key& key) {
    const std::size_t idx = find_index(key, hash_of(key));
    if (idx == kNotFound) return false;
    erase_at(idx);
    maybe_rebuild();
    return true;
  }

  void clear() {
    for (Slot& s : slots_) {
      s.state = State::empty;
      s.value.reset();
    }
    size_ = 0;
    tombstones_ = 0;
    cursor_ = 0;
  }

  // Visits every live entry; fn(key, value).  Must not mutate the table.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.state == State::full) fn(s.key, *s.value);
    }
  }

  // Full sweep: fn(key, value) returning true erases the entry.  Returns the
  // number erased.  Equivalent to sweep_step over exactly capacity() slots.
  template <typename Fn>
  std::size_t sweep(Fn&& fn) {
    std::size_t erased = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Slot& s = slots_[i];
      if (s.state == State::full && fn(s.key, *s.value)) {
        erase_at(i);
        ++erased;
      }
    }
    maybe_rebuild();
    return erased;
  }

  // Incremental sweep: examines up to `max_slots` slots starting at the
  // persistent cursor (wrapping), erasing entries fn returns true for.
  // Consecutive calls with max_slots summing to >= capacity() visit every
  // entry that stays put, so bounded per-batch calls converge to the same
  // eviction set a full sweep finds — just spread over time (the "eviction
  // debt" the soak bench reports).  Returns the number erased.
  template <typename Fn>
  std::size_t sweep_step(std::size_t max_slots, Fn&& fn) {
    if (slots_.empty() || max_slots == 0) return 0;
    std::size_t erased = 0;
    const std::size_t n = std::min(max_slots, slots_.size());
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t i = cursor_;
      cursor_ = (cursor_ + 1) & (slots_.size() - 1);
      Slot& s = slots_[i];
      if (s.state == State::full && fn(s.key, *s.value)) {
        erase_at(i);
        ++erased;
      }
    }
    maybe_rebuild();
    return erased;
  }

 private:
  enum class State : std::uint8_t { empty, full, tombstone };

  struct Slot {
    State state = State::empty;
    std::uint64_t hash = 0;
    Key key{};
    std::unique_ptr<Value> value;
  };

  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = 16;

  std::uint64_t hash_of(const Key& key) const {
    return static_cast<std::uint64_t>(Hash{}(key));
  }

  std::size_t find_index(const Key& key, std::uint64_t h) const {
    if (slots_.empty()) return kNotFound;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    for (;;) {
      const Slot& s = slots_[i];
      if (s.state == State::empty) return kNotFound;
      if (s.state == State::full && s.hash == h && s.key == key) return i;
      i = (i + 1) & mask;
    }
  }

  // First insertable slot for a key known to be absent (reuses the first
  // tombstone on the probe path).
  std::size_t insert_index(const Key& key, std::uint64_t h) const {
    (void)key;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    for (;;) {
      const Slot& s = slots_[i];
      if (s.state != State::full) return i;
      i = (i + 1) & mask;
    }
  }

  void erase_at(std::size_t idx) {
    Slot& s = slots_[idx];
    s.state = State::tombstone;
    s.value.reset();
    ++tombstones_;
    --size_;
  }

  void grow() {
    std::size_t cap = slots_.empty() ? kMinCapacity : slots_.size();
    // Size for the live entries only: a grow triggered by tombstone pileup
    // may keep (or even shrink toward kMinCapacity) the capacity.
    while ((size_ + 1) * 4 > cap * 3) cap *= 2;
    rehash(cap);
  }

  void maybe_rebuild() {
    if (!slots_.empty() && tombstones_ * 4 > slots_.size()) {
      std::size_t cap = kMinCapacity;
      while ((size_ + 1) * 4 > cap * 3) cap *= 2;
      rehash(std::max(cap, kMinCapacity));
    }
  }

  void reserve_slots(std::size_t want_entries) {
    std::size_t cap = kMinCapacity;
    while ((want_entries + 1) * 4 > cap * 3) cap *= 2;
    if (cap > slots_.size()) rehash(cap);
  }

  void rehash(std::size_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    // vector(n) default-constructs in place — Slot is move-only (unique_ptr).
    slots_ = std::vector<Slot>(new_cap);
    const std::size_t mask = new_cap - 1;
    for (Slot& s : old) {
      if (s.state != State::full) continue;
      std::size_t i = static_cast<std::size_t>(s.hash) & mask;
      while (slots_[i].state == State::full) i = (i + 1) & mask;
      Slot& dst = slots_[i];
      dst.state = State::full;
      dst.hash = s.hash;
      dst.key = std::move(s.key);
      dst.value = std::move(s.value);  // Value* unchanged: stability holds
    }
    tombstones_ = 0;
    cursor_ &= mask;  // keep the sweep cursor in range; exact slot is moot
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
  std::size_t cursor_ = 0;
};

// splitmix64 finalizer: the pipeline's flow ids are already-mixed tuple
// hashes, but a cheap re-mix keeps linear probing robust for arbitrary
// uint64 keys (sequential ids, port-only variation).
struct U64Hash {
  std::size_t operator()(std::uint64_t x) const {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

}  // namespace vpm::util
