#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace vpm::util {

void RunningStats::add(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double percentile_of(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

}  // namespace vpm::util
