// Small byte-buffer helpers shared across modules: ASCII case folding used by
// nocase patterns, and conversions between strings and byte spans.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace vpm::util {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string to_string(ByteView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

inline ByteView as_view(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

// ASCII-only lowercase; byte values outside 'A'..'Z' pass through unchanged.
// Snort content matching is ASCII case-insensitive, never locale-dependent.
constexpr std::uint8_t ascii_lower(std::uint8_t c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<std::uint8_t>(c + 32) : c;
}
constexpr std::uint8_t ascii_upper(std::uint8_t c) {
  return (c >= 'a' && c <= 'z') ? static_cast<std::uint8_t>(c - 32) : c;
}
constexpr bool ascii_ieq(std::uint8_t a, std::uint8_t b) {
  return ascii_lower(a) == ascii_lower(b);
}

inline Bytes lowered(ByteView b) {
  Bytes out(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) out[i] = ascii_lower(b[i]);
  return out;
}

// memcmp-like equality with optional ASCII case folding.
inline bool bytes_equal(const std::uint8_t* a, const std::uint8_t* b, std::size_t n,
                        bool case_insensitive) {
  if (!case_insensitive) {
    for (std::size_t i = 0; i < n; ++i)
      if (a[i] != b[i]) return false;
    return true;
  }
  for (std::size_t i = 0; i < n; ++i)
    if (!ascii_ieq(a[i], b[i])) return false;
  return true;
}

// Printable rendering for logs/alerts: non-printable bytes become \xHH.
std::string escape_bytes(ByteView b);

}  // namespace vpm::util
