#include "util/byte_io.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/bytes.hpp"

namespace vpm::util {

std::string escape_bytes(ByteView b) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size());
  for (std::uint8_t c : b) {
    if (c >= 0x20 && c < 0x7F && c != '\\') {
      out.push_back(static_cast<char>(c));
    } else {
      out += "\\x";
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xF]);
    }
  }
  return out;
}

Bytes read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::runtime_error("cannot open file: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  Bytes data(size > 0 ? static_cast<std::size_t>(size) : 0);
  if (!data.empty() && std::fread(data.data(), 1, data.size(), f) != data.size()) {
    std::fclose(f);
    throw std::runtime_error("short read: " + path);
  }
  std::fclose(f);
  return data;
}

void write_file(const std::string& path, ByteView data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) throw std::runtime_error("cannot open file for write: " + path);
  if (!data.empty() && std::fwrite(data.data(), 1, data.size(), f) != data.size()) {
    std::fclose(f);
    throw std::runtime_error("short write: " + path);
  }
  std::fclose(f);
}

}  // namespace vpm::util
