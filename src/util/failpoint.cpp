#include "util/failpoint.hpp"

#include <array>
#include <cstdio>
#include <cstdlib>

namespace vpm::util::failpoint {

namespace {

enum class Mode : std::uint8_t { off, always, prob, every, after, once };

struct SiteState {
  // Mode/params are written only while the site is disarmed (arm() clears
  // the mask first), so the slow path reads them plain.
  Mode mode = Mode::off;
  double p = 0.0;        // prob
  std::uint64_t n = 0;   // every / after / once
  std::uint64_t seed = 1;
  std::atomic<std::uint64_t> hit_count{0};
  std::atomic<std::uint64_t> fire_count{0};
};

std::array<SiteState, kSiteCount>& sites() {
  static std::array<SiteState, kSiteCount> s;
  return s;
}

// splitmix64 finalizer: uniform in [0, 2^64) as a pure function of the
// (seed, site, hit-index) triple — the determinism contract.
std::uint64_t mix(std::uint64_t seed, std::uint64_t site, std::uint64_t hit) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (site * 0x10001ull + hit + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::off: return "off";
    case Mode::always: return "always";
    case Mode::prob: return "prob";
    case Mode::every: return "every";
    case Mode::after: return "after";
    case Mode::once: return "once";
  }
  return "?";
}

// Reads VPM_FAILPOINTS (+ VPM_FAILPOINT_SEED) once at process start, so any
// binary can be chaos-run from the environment with no code changes.  A
// parse error is reported on stderr and leaves everything disarmed — a typo
// must not silently run an unintended chaos configuration.
struct EnvArm {
  EnvArm() {
    const char* spec = std::getenv("VPM_FAILPOINTS");
    if (spec == nullptr || *spec == '\0') return;
    std::uint64_t seed = 1;
    if (const char* s = std::getenv("VPM_FAILPOINT_SEED"); s != nullptr && *s != '\0') {
      seed = std::strtoull(s, nullptr, 0);
    }
    const std::string err = arm(spec, seed);
    if (!err.empty()) {
      std::fprintf(stderr, "vpm: ignoring VPM_FAILPOINTS: %s\n", err.c_str());
    }
  }
};
const EnvArm g_env_arm;

}  // namespace

namespace detail {

std::atomic<std::uint32_t> g_armed_mask{0};

bool fire_slow(Site s) {
  SiteState& st = sites()[static_cast<std::size_t>(s)];
  // 1-based hit index: deterministic per index regardless of which thread
  // claimed it.
  const std::uint64_t hit = st.hit_count.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire = false;
  switch (st.mode) {
    case Mode::off: break;
    case Mode::always: fire = true; break;
    case Mode::prob:
      fire = static_cast<double>(mix(st.seed, static_cast<std::uint64_t>(s), hit)) <
             st.p * 18446744073709551616.0;  // 2^64
      break;
    case Mode::every: fire = st.n > 0 && hit % st.n == 0; break;
    case Mode::after: fire = hit > st.n; break;
    case Mode::once: fire = hit == st.n; break;
  }
  if (fire) st.fire_count.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

}  // namespace detail

const char* site_name(Site s) {
  switch (s) {
    case Site::ring_push: return "ring_push";
    case Site::ring_pop: return "ring_pop";
    case Site::reassembly_buffer: return "reassembly_buffer";
    case Site::alert_sink_write: return "alert_sink_write";
    case Site::hot_swap_publish: return "hot_swap_publish";
    case Site::exporter_socket: return "exporter_socket";
    case Site::worker_batch: return "worker_batch";
    case Site::count: break;
  }
  return "?";
}

std::optional<Site> site_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    const Site s = static_cast<Site>(i);
    if (name == site_name(s)) return s;
  }
  return std::nullopt;
}

std::string arm(std::string_view spec, std::uint64_t seed) {
  // Parse into a staging copy first: a bad spec must not half-arm.
  struct Parsed {
    Mode mode = Mode::off;
    double p = 0.0;
    std::uint64_t n = 0;
    bool set = false;
  };
  std::array<Parsed, kSiteCount> staged{};

  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return "failpoint entry '" + std::string(entry) + "' has no '=mode'";
    }
    const std::string_view name = entry.substr(0, eq);
    const auto site = site_from_name(name);
    if (!site) return "unknown failpoint site '" + std::string(name) + "'";

    std::string_view mode = entry.substr(eq + 1);
    std::string_view argstr;
    if (const std::size_t colon = mode.find(':'); colon != std::string_view::npos) {
      argstr = mode.substr(colon + 1);
      mode = mode.substr(0, colon);
    }

    Parsed p;
    p.set = true;
    const std::string arg(argstr);
    char* end = nullptr;
    if (mode == "off") {
      p.mode = Mode::off;
    } else if (mode == "always") {
      p.mode = Mode::always;
    } else if (mode == "prob") {
      p.mode = Mode::prob;
      p.p = std::strtod(arg.c_str(), &end);
      if (arg.empty() || end == arg.c_str() || *end != '\0' || p.p < 0.0 || p.p > 1.0) {
        return "failpoint '" + std::string(name) + "': prob wants 0..1, got '" + arg +
               "'";
      }
    } else if (mode == "every" || mode == "after" || mode == "once") {
      p.mode = mode == "every" ? Mode::every : mode == "after" ? Mode::after : Mode::once;
      p.n = std::strtoull(arg.c_str(), &end, 10);
      if (arg.empty() || end == arg.c_str() || *end != '\0' ||
          (p.mode != Mode::after && p.n == 0)) {
        return "failpoint '" + std::string(name) + "': " + std::string(mode) +
               " wants a positive count, got '" + arg + "'";
      }
    } else {
      return "failpoint '" + std::string(name) + "': unknown mode '" +
             std::string(mode) + "'";
    }
    staged[static_cast<std::size_t>(*site)] = p;
  }

  // Install: disarm (so the slow path cannot observe a half-written state),
  // write configs + reset counters, then publish the new mask.
  detail::g_armed_mask.store(0, std::memory_order_relaxed);
  std::uint32_t mask = 0;
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    SiteState& st = sites()[i];
    st.hit_count.store(0, std::memory_order_relaxed);
    st.fire_count.store(0, std::memory_order_relaxed);
    if (!staged[i].set) {
      st.mode = Mode::off;
      continue;
    }
    st.mode = staged[i].mode;
    st.p = staged[i].p;
    st.n = staged[i].n;
    st.seed = seed;
    if (st.mode != Mode::off) mask |= 1u << i;
  }
  detail::g_armed_mask.store(mask, std::memory_order_release);
  return "";
}

void disarm() { detail::g_armed_mask.store(0, std::memory_order_relaxed); }

bool any_armed() {
  return detail::g_armed_mask.load(std::memory_order_relaxed) != 0;
}

std::uint64_t hits(Site s) {
  return sites()[static_cast<std::size_t>(s)].hit_count.load(std::memory_order_relaxed);
}

std::uint64_t fires(Site s) {
  return sites()[static_cast<std::size_t>(s)].fire_count.load(std::memory_order_relaxed);
}

std::string describe() {
  const std::uint32_t mask = detail::g_armed_mask.load(std::memory_order_relaxed);
  std::string out;
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    if ((mask & (1u << i)) == 0) continue;
    const SiteState& st = sites()[i];
    if (!out.empty()) out += ' ';
    out += site_name(static_cast<Site>(i));
    out += '=';
    out += mode_name(st.mode);
    out += " hits=" + std::to_string(st.hit_count.load(std::memory_order_relaxed));
    out += " fires=" + std::to_string(st.fire_count.load(std::memory_order_relaxed));
  }
  return out;
}

}  // namespace vpm::util::failpoint
