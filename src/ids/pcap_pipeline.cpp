#include "ids/pcap_pipeline.hpp"

#include <unordered_map>

namespace vpm::ids {

pattern::Group classify_port(std::uint16_t dst_port) {
  switch (dst_port) {
    case 80:
    case 8080:
    case 8000:
      return pattern::Group::http;
    case 53:
      return pattern::Group::dns;
    case 21:
      return pattern::Group::ftp;
    case 25:
    case 587:
      return pattern::Group::smtp;
    default:
      return pattern::Group::generic;
  }
}

PcapPipelineResult inspect_pcap(util::ByteView pcap_bytes, const pattern::PatternSet& rules,
                                EngineConfig cfg, net::ReassemblyConfig reassembly) {
  PcapPipelineResult result;
  const net::PcapParseResult parsed = net::read_pcap(pcap_bytes);
  result.packets = parsed.packets.size();
  result.skipped_records = parsed.skipped_records;

  IdsEngine engine(rules, cfg);

  // Dense flow ids per directional 5-tuple: each side of a connection scans
  // as its own stream.
  std::unordered_map<std::uint64_t, std::uint64_t> flow_ids;
  auto flow_id_of = [&](const net::FiveTuple& t) {
    const auto [it, inserted] = flow_ids.emplace(t.hash(), flow_ids.size());
    return it->second;
  };

  net::TcpReassembler reassembler(
      [&](const net::StreamChunk& chunk) {
        engine.inspect(flow_id_of(chunk.tuple), classify_port(chunk.server_port),
                       chunk.data, result.alerts);
      },
      reassembly);
  // Connection end (FIN/RST/eviction) is a stream boundary: drop both
  // sides' scanner state so a reused tuple starts a fresh stream.
  reassembler.on_connection_end([&](const net::FiveTuple& client, net::EndReason) {
    engine.close_flow(flow_id_of(client));
    engine.close_flow(flow_id_of(client.reversed()));
  });

  for (const net::Packet& p : parsed.packets) {
    if (p.tuple.proto == net::IpProto::tcp) {
      reassembler.ingest(p);
    } else {
      // UDP: datagram-scoped scan, no cross-datagram state.
      engine.inspect(flow_id_of(p.tuple), classify_port(p.tuple.dst_port), p.payload,
                     result.alerts);
    }
  }

  result.counters = engine.counters();
  result.reassembly_drops = reassembler.dropped_segments();
  result.duplicate_bytes_trimmed = reassembler.duplicate_bytes_trimmed();
  result.reassembly = reassembler.stats();
  return result;
}

}  // namespace vpm::ids
