// The end-to-end inspection engine: grouped rules + per-flow streaming scan
// + alert production.  This is the application layer a NIDS would embed; the
// examples and integration tests drive it.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ids/alert.hpp"
#include "ids/flow.hpp"
#include "ids/rule_group.hpp"

namespace vpm::ids {

struct EngineConfig {
  core::Algorithm algorithm = core::Algorithm::vpatch;
};

struct EngineCounters {
  std::uint64_t bytes_inspected = 0;
  std::uint64_t chunks = 0;
  std::uint64_t alerts = 0;
  std::uint64_t flows = 0;  // distinct flows ever seen (not currently active)
};

class IdsEngine {
 public:
  IdsEngine(const pattern::PatternSet& rules, EngineConfig cfg = {});

  // Inspects the next payload chunk of `flow_id` (protocol fixed per flow at
  // first sight); delivers alerts to `sink` as they are found.
  void inspect(std::uint64_t flow_id, pattern::Group protocol, util::ByteView chunk,
               AlertSink& sink);

  // Convenience overload: appends alerts to `out`.
  void inspect(std::uint64_t flow_id, pattern::Group protocol, util::ByteView chunk,
               std::vector<Alert>& out) {
    AlertBuffer buffer(out);
    inspect(flow_id, protocol, chunk, buffer);
  }

  // Forgets a flow's stream state (connection close / idle eviction).
  void close_flow(std::uint64_t flow_id);

  // Flows currently holding stream-scanner state (carry buffers).
  std::size_t active_flows() const { return flows_.size(); }

  const EngineCounters& counters() const { return counters_; }
  const GroupedRules& rules() const { return rules_; }

 private:
  struct FlowState {
    pattern::Group protocol;
    StreamScanner scanner;
  };

  GroupedRules rules_;
  std::unordered_map<std::uint64_t, FlowState> flows_;
  EngineCounters counters_;
};

}  // namespace vpm::ids
