// The end-to-end inspection engine: grouped rules + per-flow streaming scan
// + alert production.  This is the application layer a NIDS would embed; the
// examples and integration tests drive it.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/prefilter.hpp"
#include "ids/alert.hpp"
#include "ids/flow.hpp"
#include "ids/rule_group.hpp"
#include "util/flow_table.hpp"

namespace vpm::telemetry {
class Counter;
class Histogram;
}

namespace vpm::ids {

struct EngineConfig {
  core::Algorithm algorithm = core::Algorithm::vpatch;
  core::PrefilterMode prefilter = core::PrefilterMode::automatic;
};

struct EngineCounters {
  std::uint64_t bytes_inspected = 0;
  std::uint64_t chunks = 0;
  std::uint64_t alerts = 0;
  std::uint64_t flows = 0;  // distinct flows ever seen (not currently active)
  // Prefilter screening decisions (flush_batch path; counted only when the
  // screen actually ran — bypassed or prefilter-off payloads count neither).
  std::uint64_t prefilter_pass_payloads = 0;
  std::uint64_t prefilter_reject_payloads = 0;
  std::uint64_t prefilter_pass_bytes = 0;
  std::uint64_t prefilter_reject_bytes = 0;
};

inline constexpr std::size_t kEngineGroupCount =
    static_cast<std::size_t>(pattern::Group::count);

// Optional per-engine instrumentation handles (registry-owned; every pointer
// may be null to disable that instrument).  Recording is relaxed-atomic and
// allocation-free, so enabling telemetry cannot change scan results or the
// zero-alloc steady-state contract — only add a clock read per flush.
struct EngineTelemetry {
  // Wall latency of each flush_batch() scan round, in seconds.
  telemetry::Histogram* flush_latency = nullptr;
  // Bytes scanned / alerts raised per rule group (indexed by pattern::Group).
  // group_scan_bytes counts bytes that reached the exact engine: with the
  // prefilter engaged, rejected payloads are excluded.
  std::array<telemetry::Counter*, kEngineGroupCount> group_scan_bytes{};
  std::array<telemetry::Counter*, kEngineGroupCount> group_alerts{};
  // Prefilter screening outcomes per group (vpm_prefilter_* metrics).
  std::array<telemetry::Counter*, kEngineGroupCount> prefilter_pass_payloads{};
  std::array<telemetry::Counter*, kEngineGroupCount> prefilter_reject_payloads{};
  std::array<telemetry::Counter*, kEngineGroupCount> prefilter_pass_bytes{};
  std::array<telemetry::Counter*, kEngineGroupCount> prefilter_reject_bytes{};

  bool enabled() const { return flush_latency != nullptr; }
};

class IdsEngine {
 public:
  // Legacy shim: compiles a private GroupedRules from a caller-owned set
  // (copied; the caller's set is not referenced afterwards).  Alerts carry
  // generation 0.  Prefer the Database/GroupedRulesPtr constructors.
  IdsEngine(const pattern::PatternSet& rules, EngineConfig cfg = {});

  // Compiles protocol groups keyed off a shared database; alerts carry
  // db->generation().
  explicit IdsEngine(DatabasePtr db);

  // Adopts an already-compiled grouped ruleset.  This is the pipeline's
  // form: one GroupedRules per ruleset generation, compiled once and shared
  // immutably by every worker's engine (scan state lives in per-engine
  // scratch, so concurrent engines over one GroupedRules are safe).
  explicit IdsEngine(GroupedRulesPtr rules);

  // Ruleset hot-swap: flushes any staged chunks under the OLD rules
  // (delivering their alerts to `sink`), resets all per-flow stream state —
  // a swap is a clean stream boundary; a pattern spanning the swap point is
  // attributed to neither generation — then adopts `rules`.  Must not be
  // called from an AlertSink callback mid-scan.
  void swap_rules(GroupedRulesPtr rules, AlertSink& sink);

  // The generation of the currently adopted rules (tags every alert).
  std::uint64_t generation() const { return rules_->generation(); }

  // Inspects the next payload chunk of `flow_id` (protocol fixed per flow at
  // first sight); delivers alerts to `sink` as they are found.
  void inspect(std::uint64_t flow_id, pattern::Group protocol, util::ByteView chunk,
               AlertSink& sink);

  // Convenience overload: appends alerts to `out`.
  void inspect(std::uint64_t flow_id, pattern::Group protocol, util::ByteView chunk,
               std::vector<Alert>& out) {
    AlertBuffer buffer(out);
    inspect(flow_id, protocol, chunk, buffer);
  }

  // Batched inspection fast path (the pipeline worker's per-PacketBatch
  // loop).  stage() copies `chunk` into the flow's stream buffer and defers
  // the scan; flush_batch() runs ONE Matcher::scan_batch per protocol group
  // over every staged chunk, reusing per-group engine-owned scratch — zero
  // steady-state heap allocations, and each group's filter structures stay
  // cache-resident across the whole batch.  Alert multiset per chunk is
  // identical to inspect(); alert ORDER within a batch is engine-specific.
  // If `flow_id` already has a staged chunk, stage() flushes first so
  // per-flow stream order is preserved (hence the sink parameter).  `chunk`
  // need only stay valid for the stage() call itself.
  //
  // Sink reentrancy: an AlertSink::on_alert callback may call close_flow()
  // (teardown-on-alert; deferred until the live scan — flush_batch or
  // inspect's feed — completes) but must NOT call stage()/inspect()/
  // flush_batch() on this engine: the batch being scanned cannot be
  // mutated mid-flush.
  void stage(std::uint64_t flow_id, pattern::Group protocol, util::ByteView chunk,
             AlertSink& sink);
  void flush_batch(AlertSink& sink);
  std::size_t staged_chunks() const { return pending_.size(); }

  // Forgets a flow's stream state (connection close / idle eviction).  A
  // still-staged chunk of that flow is dropped unscanned (eviction is lossy
  // by design); flush_batch() first if those alerts matter.
  void close_flow(std::uint64_t flow_id);

  // Flows currently holding stream-scanner state (carry buffers).
  std::size_t active_flows() const { return flows_.size(); }

  const EngineCounters& counters() const { return counters_; }
  const GroupedRules& rules() const { return *rules_; }
  const GroupedRulesPtr& rules_ptr() const { return rules_; }

  // Installs instrumentation handles (copied; the pointed-to instruments must
  // outlive the engine).  Not synchronized against concurrent scans — set it
  // before the owning worker starts processing.
  void set_telemetry(const EngineTelemetry& t) { telemetry_ = t; }

  // Prefilter engagement policy for the flush_batch path (see PrefilterMode).
  // Alert results are mode-independent (the screen has zero false negatives);
  // only throughput and the prefilter_* counters change.  Not synchronized
  // against concurrent scans — set before processing starts.
  void set_prefilter_mode(core::PrefilterMode mode) { prefilter_mode_ = mode; }
  core::PrefilterMode prefilter_mode() const { return prefilter_mode_; }

 private:
  struct FlowState {
    pattern::Group protocol;
    StreamScanner scanner;
  };

  // One staged chunk awaiting flush_batch().  `view` points into the flow
  // scanner's stream buffer (stable until commit); `flow` stays valid across
  // rehash (FlowTable values live on their own heap cells and do not move).
  struct Staged {
    FlowState* flow = nullptr;
    std::uint64_t flow_id = 0;
    pattern::Group protocol{};
    util::ByteView view;
    std::size_t carry = 0;
    std::uint64_t base = 0;
  };

  static constexpr std::size_t kGroups = static_cast<std::size_t>(pattern::Group::count);

  FlowState& flow_for(std::uint64_t flow_id, pattern::Group protocol);

  GroupedRulesPtr rules_;
  // Open-addressing flow table (util::FlowTable): flat probing instead of
  // per-node chasing, stable FlowState pointers for Staged::flow, and the
  // structure the pipeline's bounded-step idle eviction scales on.
  util::FlowTable<std::uint64_t, FlowState, util::U64Hash> flows_;
  EngineCounters counters_;
  EngineTelemetry telemetry_;

  // Batch machinery (all grow-to-high-water, reused across flushes).
  struct GroupGather {
    std::vector<util::ByteView> views;
    std::vector<std::uint32_t> staged_index;
    // The screened-in subset handed to the exact engine when the prefilter
    // is engaged (parallel arrays, subsequences of the two above).
    std::vector<util::ByteView> passed_views;
    std::vector<std::uint32_t> passed_staged;
  };
  std::vector<Staged> pending_;
  std::array<GroupGather, kGroups> gather_;
  std::array<ScanScratch, kGroups> scratch_;
  // The prefilter stages folded payload copies in its own scratch: sharing
  // scratch_[gi] would make screen and scan evict each other's state_for
  // slot every flush (the slot is keyed per owner).
  std::array<ScanScratch, kGroups> pf_scratch_;
  std::vector<std::uint8_t> verdicts_;
  core::PrefilterMode prefilter_mode_ = core::PrefilterMode::automatic;
  // PrefilterMode::automatic adaptive bypass: sample the screen's pass ratio
  // over windows of kPrefilterSampleWindow payloads; when a window passes
  // more than half (match-heavy traffic, or a threshold-1 signature too weak
  // to reject), skip screening for the next kPrefilterBypassPayloads
  // payloads, then sample again.  31 bypass windows per sample window keeps
  // steady-state sampling overhead ~3% on hostile traffic.
  struct PrefilterAuto {
    std::uint32_t sampled = 0;
    std::uint32_t passed = 0;
    std::uint32_t bypass_payloads = 0;
  };
  static constexpr std::uint32_t kPrefilterSampleWindow = 64;
  static constexpr std::uint32_t kPrefilterBypassPayloads = 31 * 64;
  std::array<PrefilterAuto, kGroups> pf_auto_{};
  // Set while a scan is live (flush_batch, or inspect()'s feed): close_flow
  // from an AlertSink defers while set, so the scanner/batch being driven is
  // never destroyed under its own callback.
  bool in_scan_ = false;
  std::vector<std::uint64_t> deferred_close_;

  void flush_batch_impl(AlertSink& out);  // body of flush_batch, under guard
  void run_deferred_closes();
};

}  // namespace vpm::ids
