// Alert records produced by the IDS engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pattern/pattern_set.hpp"

namespace vpm::ids {

struct Alert {
  std::uint64_t flow_id = 0;
  std::uint32_t pattern_id = 0;
  std::uint64_t stream_offset = 0;  // match start within the flow's byte stream
  pattern::Group group = pattern::Group::generic;

  friend bool operator==(const Alert&, const Alert&) = default;
};

// Renders "flow=3 off=128 group=http pattern=17 'GET /'" style lines.
std::string format_alert(const Alert& alert, const pattern::PatternSet& set);

}  // namespace vpm::ids
