// Alert records produced by the IDS engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pattern/pattern_set.hpp"

namespace vpm::ids {

struct Alert {
  std::uint64_t flow_id = 0;
  std::uint32_t pattern_id = 0;
  std::uint64_t stream_offset = 0;  // match start within the flow's byte stream
  pattern::Group group = pattern::Group::generic;
  // Ruleset generation the alert was produced under (Database::generation()
  // of the rules; 0 for rules compiled through the legacy PatternSet shims).
  // Lets hot-swap consumers attribute every alert to the exact ruleset that
  // raised it, even while workers straddle a swap.
  std::uint64_t generation = 0;

  friend bool operator==(const Alert&, const Alert&) = default;
  friend auto operator<=>(const Alert&, const Alert&) = default;
};

// Receives alerts as the engine produces them.  Decouples alert delivery
// from storage so embedders (the pipeline workers, log shippers) can route
// alerts without an intermediate vector per inspect call.
class AlertSink {
 public:
  virtual void on_alert(const Alert& alert) = 0;

 protected:
  ~AlertSink() = default;
};

// The trivial sink: append to a vector.
class AlertBuffer final : public AlertSink {
 public:
  explicit AlertBuffer(std::vector<Alert>& out) : out_(&out) {}
  void on_alert(const Alert& alert) override { out_->push_back(alert); }

 private:
  std::vector<Alert>* out_;
};

// Renders "flow=3 off=128 group=http pattern=17 'GET /'" style lines.
std::string format_alert(const Alert& alert, const pattern::PatternSet& set);

}  // namespace vpm::ids
