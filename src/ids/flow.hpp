// Streaming scan over a flow's reassembled byte stream.
//
// NIDS payloads arrive in chunks; a pattern may straddle a chunk boundary.
// StreamScanner keeps the last (max_pattern_len - 1) bytes of the previous
// data as carry, scans carry+chunk, and reports each match exactly once with
// absolute stream offsets: a match that ends inside the carry region was
// already reported by the previous feed and is suppressed.
#pragma once

#include <cstdint>

#include "match/matcher.hpp"
#include "util/bytes.hpp"

namespace vpm::ids {

class StreamScanner {
 public:
  // `matcher` must outlive the scanner; `max_pattern_len` bounds the carry.
  // `pattern_lengths` (pattern id -> byte length) is copied.
  StreamScanner(const Matcher& matcher, std::size_t max_pattern_len,
                std::vector<std::uint32_t> pattern_lengths);

  // Scans the next chunk; emits matches (absolute stream offsets) to sink.
  void feed(util::ByteView chunk, MatchSink& sink);

  // Total bytes consumed so far.
  std::uint64_t stream_length() const { return consumed_; }

  void reset();

 private:
  const Matcher* matcher_;
  std::size_t carry_capacity_;
  std::vector<std::uint32_t> lengths_;  // pattern id -> byte length
  util::Bytes buffer_;                         // carry + current chunk
  std::size_t carry_len_ = 0;
  std::uint64_t consumed_ = 0;
};

}  // namespace vpm::ids
