// Streaming scan over a flow's reassembled byte stream.
//
// NIDS payloads arrive in chunks; a pattern may straddle a chunk boundary.
// StreamScanner keeps the last (max_pattern_len - 1) bytes of the previous
// data as carry, scans carry+chunk, and reports each match exactly once with
// absolute stream offsets: a match that ends inside the carry region was
// already reported by the previous feed and is suppressed.
#pragma once

#include <cstdint>

#include "match/matcher.hpp"
#include "util/bytes.hpp"

namespace vpm::ids {

class StreamScanner {
 public:
  // `matcher` must outlive the scanner; `max_pattern_len` bounds the carry.
  // `pattern_lengths` (pattern id -> byte length) is copied.
  StreamScanner(const Matcher& matcher, std::size_t max_pattern_len,
                std::vector<std::uint32_t> pattern_lengths);

  // Scans the next chunk; emits matches (absolute stream offsets) to sink.
  void feed(util::ByteView chunk, MatchSink& sink);

  // Staged (batched) protocol, the deferred flavor of feed(): prepare()
  // assembles carry+chunk into the flow buffer and returns the view to scan
  // (stable until commit()); the caller scans it — typically many flows
  // together through Matcher::scan_batch — suppressing matches that end
  // inside staged_carry() (already reported by the previous feed) and
  // rebasing surviving positions by staged_base(); commit() consumes the
  // chunk and retains the next carry.  At most one chunk may be staged at a
  // time; feed() must not run while a chunk is staged.
  util::ByteView prepare(util::ByteView chunk);
  void commit();
  bool staged() const { return staged_; }
  std::size_t staged_carry() const { return carry_at_stage_; }
  std::uint64_t staged_base() const { return consumed_ - carry_at_stage_; }

  // The carry-dedup rule shared by feed() and the engine's batched flush: a
  // match ending inside the carry was already reported by the previous feed.
  bool already_reported(const Match& m, std::size_t carry) const {
    return m.pos + lengths_[m.pattern_id] <= carry;
  }

  // Total bytes consumed so far.
  std::uint64_t stream_length() const { return consumed_; }

  void reset();

 private:
  const Matcher* matcher_;
  std::size_t carry_capacity_;
  std::vector<std::uint32_t> lengths_;  // pattern id -> byte length
  util::Bytes buffer_;                         // carry + current chunk
  std::size_t carry_len_ = 0;
  std::uint64_t consumed_ = 0;
  std::size_t carry_at_stage_ = 0;  // carry length captured by prepare()
  std::size_t staged_chunk_len_ = 0;
  bool staged_ = false;
};

}  // namespace vpm::ids
