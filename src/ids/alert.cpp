#include "ids/alert.hpp"

namespace vpm::ids {

std::string format_alert(const Alert& alert, const pattern::PatternSet& set) {
  std::string out = "flow=" + std::to_string(alert.flow_id);
  out += " off=" + std::to_string(alert.stream_offset);
  out += " group=";
  out += group_name(alert.group);
  out += " pattern=" + std::to_string(alert.pattern_id);
  if (alert.generation != 0) out += " gen=" + std::to_string(alert.generation);
  if (alert.pattern_id < set.size()) {
    out += " '";
    out += set[alert.pattern_id].printable();
    out += "'";
  }
  return out;
}

}  // namespace vpm::ids
