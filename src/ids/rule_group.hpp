// Protocol rule groups (paper §V-A): "patterns are organized in groups,
// depending on the type of traffic they refer to. When traffic arrives ...
// the reassembled payload is matched only against patterns that are relevant
// (e.g. if the stream has HTTP traffic, it is checked against HTTP related
// patterns, as well as more general patterns)".
//
// GroupedRules builds one matcher per protocol, each over that protocol's
// patterns plus the generic ones.  Pattern ids reported by group matchers
// are LOCAL to the group's PatternSet; the mapping back to the master set is
// provided for alert rendering.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "core/matcher_factory.hpp"
#include "pattern/pattern_set.hpp"

namespace vpm::ids {

class GroupedRules {
 public:
  GroupedRules(const pattern::PatternSet& master, core::Algorithm algorithm);

  // The matcher for traffic of protocol `g` (http/dns/ftp/smtp/generic).
  const Matcher& matcher_for(pattern::Group g) const { return *entries_[index(g)].matcher; }
  const pattern::PatternSet& patterns_for(pattern::Group g) const {
    return entries_[index(g)].patterns;
  }
  // Maps a group-local pattern id back to the master-set id.
  std::uint32_t master_id(pattern::Group g, std::uint32_t local_id) const {
    return entries_[index(g)].to_master[local_id];
  }
  std::size_t max_pattern_length(pattern::Group g) const {
    return entries_[index(g)].max_len;
  }
  const std::vector<std::uint32_t>& pattern_lengths(pattern::Group g) const {
    return entries_[index(g)].lengths;
  }

 private:
  static std::size_t index(pattern::Group g) { return static_cast<std::size_t>(g); }

  struct Entry {
    pattern::PatternSet patterns;
    std::vector<std::uint32_t> to_master;
    std::vector<std::uint32_t> lengths;
    MatcherPtr matcher;
    std::size_t max_len = 0;
  };
  std::array<Entry, static_cast<std::size_t>(pattern::Group::count)> entries_;
};

}  // namespace vpm::ids
