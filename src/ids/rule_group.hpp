// Protocol rule groups (paper §V-A): "patterns are organized in groups,
// depending on the type of traffic they refer to. When traffic arrives ...
// the reassembled payload is matched only against patterns that are relevant
// (e.g. if the stream has HTTP traffic, it is checked against HTTP related
// patterns, as well as more general patterns)".
//
// GroupedRules builds one matcher per protocol, each over that protocol's
// patterns plus the generic ones.  Pattern ids reported by group matchers
// are LOCAL to the group's PatternSet; the mapping back to the master set is
// provided for alert rendering.
//
// A GroupedRules is an immutable compiled artifact once built: matcher_for()
// and every accessor are const and thread-safe (scan state lives in
// caller-owned ScanScratch), so one instance can back any number of engine
// instances across threads — the pipeline shares one GroupedRulesPtr per
// ruleset generation among all workers instead of compiling per worker.
// Build it from a DatabasePtr to key the groups off a shared compiled
// database: the Database ref keeps the master pattern bytes alive and
// supplies the generation id alerts are tagged with.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "core/database.hpp"
#include "core/matcher_factory.hpp"
#include "pattern/pattern_set.hpp"

namespace vpm::ids {

class GroupedRules;
using GroupedRulesPtr = std::shared_ptr<const GroupedRules>;

class GroupedRules {
 public:
  // Keys the group matchers off `db` (master patterns + algorithm); the
  // stored ref keeps the database alive and generation() reports
  // db->generation().
  explicit GroupedRules(DatabasePtr db);

  // Legacy shim: compiles from a caller-owned master set (copied into the
  // per-group sets; the caller's set is not referenced after construction).
  // generation() is 0 on this path.
  GroupedRules(const pattern::PatternSet& master, core::Algorithm algorithm);

  // The ruleset generation alerts produced through these rules carry.
  std::uint64_t generation() const { return db_ != nullptr ? db_->generation() : 0; }
  // The backing database (null on the legacy shim path).
  const DatabasePtr& database() const { return db_; }
  core::Algorithm algorithm() const { return algorithm_; }

  // The matcher for traffic of protocol `g` (http/dns/ftp/smtp/generic).
  const Matcher& matcher_for(pattern::Group g) const { return *entries_[index(g)].matcher; }
  const pattern::PatternSet& patterns_for(pattern::Group g) const {
    return entries_[index(g)].patterns;
  }
  // Maps a group-local pattern id back to the master-set id.
  std::uint32_t master_id(pattern::Group g, std::uint32_t local_id) const {
    return entries_[index(g)].to_master[local_id];
  }
  std::size_t max_pattern_length(pattern::Group g) const {
    return entries_[index(g)].max_len;
  }
  const std::vector<std::uint32_t>& pattern_lengths(pattern::Group g) const {
    return entries_[index(g)].lengths;
  }
  // The group's approximate q-gram signature (null = no usable signature).
  // Comes from the backing Database when built from one (so a deserialized
  // artifact screens with the exact saved signature); the legacy shim path
  // builds it locally over the group's working set.
  const core::PrefilterPtr& prefilter_for(pattern::Group g) const {
    return entries_[index(g)].prefilter;
  }

 private:
  static std::size_t index(pattern::Group g) { return static_cast<std::size_t>(g); }

  void build(const pattern::PatternSet& master, core::Algorithm algorithm);

  struct Entry {
    pattern::PatternSet patterns;
    std::vector<std::uint32_t> to_master;
    std::vector<std::uint32_t> lengths;
    MatcherPtr matcher;
    core::PrefilterPtr prefilter;
    std::size_t max_len = 0;
  };
  DatabasePtr db_;  // null on the legacy shim path
  core::Algorithm algorithm_ = core::Algorithm::vpatch;
  std::array<Entry, static_cast<std::size_t>(pattern::Group::count)> entries_;
};

}  // namespace vpm::ids
