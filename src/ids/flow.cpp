#include "ids/flow.hpp"

#include <algorithm>

namespace vpm::ids {

StreamScanner::StreamScanner(const Matcher& matcher, std::size_t max_pattern_len,
                             std::vector<std::uint32_t> pattern_lengths)
    : matcher_(&matcher),
      carry_capacity_(max_pattern_len > 0 ? max_pattern_len - 1 : 0),
      lengths_(std::move(pattern_lengths)) {}

util::ByteView StreamScanner::prepare(util::ByteView chunk) {
  // Assemble carry + chunk; the view stays valid until commit() (the buffer
  // is not touched in between).
  buffer_.resize(carry_len_);
  buffer_.insert(buffer_.end(), chunk.begin(), chunk.end());
  carry_at_stage_ = carry_len_;
  staged_chunk_len_ = chunk.size();
  staged_ = true;
  return buffer_;
}

void StreamScanner::commit() {
  consumed_ += staged_chunk_len_;
  // Retain the tail as the next carry.
  carry_len_ = std::min(carry_capacity_, buffer_.size());
  if (carry_len_ > 0) {
    std::copy(buffer_.end() - static_cast<long>(carry_len_), buffer_.end(), buffer_.begin());
  }
  buffer_.resize(carry_len_);
  staged_ = false;
}

void StreamScanner::feed(util::ByteView chunk, MatchSink& sink) {
  const util::ByteView view = prepare(chunk);

  struct DedupSink final : MatchSink {
    MatchSink* inner = nullptr;
    const StreamScanner* scanner = nullptr;
    std::uint64_t base = 0;
    std::size_t carry = 0;
    void on_match(const Match& m) override {
      if (scanner->already_reported(m, carry)) return;
      inner->on_match({m.pattern_id, base + m.pos});
    }
  } dedup;
  dedup.inner = &sink;
  dedup.scanner = this;
  dedup.base = staged_base();
  dedup.carry = staged_carry();

  matcher_->scan(view, dedup);
  commit();
}

void StreamScanner::reset() {
  buffer_.clear();
  carry_len_ = 0;
  consumed_ = 0;
  carry_at_stage_ = 0;
  staged_chunk_len_ = 0;
  staged_ = false;
}

}  // namespace vpm::ids
