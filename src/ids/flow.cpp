#include "ids/flow.hpp"

#include <algorithm>

namespace vpm::ids {

StreamScanner::StreamScanner(const Matcher& matcher, std::size_t max_pattern_len,
                             std::vector<std::uint32_t> pattern_lengths)
    : matcher_(&matcher),
      carry_capacity_(max_pattern_len > 0 ? max_pattern_len - 1 : 0),
      lengths_(std::move(pattern_lengths)) {}

void StreamScanner::feed(util::ByteView chunk, MatchSink& sink) {
  // Assemble carry + chunk.
  buffer_.resize(carry_len_);
  buffer_.insert(buffer_.end(), chunk.begin(), chunk.end());

  // Offset of buffer_[0] within the absolute stream.
  const std::uint64_t base = consumed_ - carry_len_;
  const std::size_t carry = carry_len_;

  struct DedupSink final : MatchSink {
    MatchSink* inner = nullptr;
    const std::vector<std::uint32_t>* lengths = nullptr;
    std::uint64_t base = 0;
    std::size_t carry = 0;
    void on_match(const Match& m) override {
      // Matches ending within the carry were found by the previous feed.
      const std::uint32_t len = (*lengths)[m.pattern_id];
      if (m.pos + len <= carry) return;
      inner->on_match({m.pattern_id, base + m.pos});
    }
  } dedup;
  dedup.inner = &sink;
  dedup.lengths = &lengths_;
  dedup.base = base;
  dedup.carry = carry;

  matcher_->scan(buffer_, dedup);
  consumed_ += chunk.size();

  // Retain the tail as the next carry.
  carry_len_ = std::min(carry_capacity_, buffer_.size());
  if (carry_len_ > 0) {
    std::copy(buffer_.end() - static_cast<long>(carry_len_), buffer_.end(), buffer_.begin());
  }
  buffer_.resize(carry_len_);
}

void StreamScanner::reset() {
  buffer_.clear();
  carry_len_ = 0;
  consumed_ = 0;
}

}  // namespace vpm::ids
