// End-to-end packet pipeline: pcap bytes -> bidirectional TCP reassembly ->
// protocol classification -> grouped IDS inspection.  The full path a
// deployed sensor runs, assembled from the library's pieces.
#pragma once

#include <vector>

#include "ids/engine.hpp"
#include "net/pcap.hpp"
#include "net/reassembly.hpp"

namespace vpm::ids {

struct PcapPipelineResult {
  std::vector<Alert> alerts;
  EngineCounters counters;
  std::size_t packets = 0;
  std::size_t skipped_records = 0;
  std::uint64_t reassembly_drops = 0;
  std::uint64_t duplicate_bytes_trimmed = 0;
  // Full per-side/lifecycle reassembly counters (the two fields above are
  // aggregates of this, kept for existing callers).
  net::ReassemblyStats reassembly;
};

// Classifies a flow by its server-side port, mirroring how Snort binds rule
// groups to port groups.  For reassembled TCP this is StreamChunk::server_port
// (the client's destination), so BOTH directions of a connection classify
// into the same group; for UDP it is the datagram's destination port.
pattern::Group classify_port(std::uint16_t dst_port);

// Parses `pcap_bytes`, reassembles every TCP flow bidirectionally (each side
// scans as its own stream; UDP payloads are scanned per-datagram), and
// inspects each stream with the grouped rules.  `reassembly` selects the
// overlap policy and buffering limits.
PcapPipelineResult inspect_pcap(util::ByteView pcap_bytes, const pattern::PatternSet& rules,
                                EngineConfig cfg = {},
                                net::ReassemblyConfig reassembly = {});

}  // namespace vpm::ids
