// End-to-end packet pipeline: pcap bytes -> TCP reassembly -> protocol
// classification -> grouped IDS inspection.  The full path a deployed sensor
// runs, assembled from the library's pieces.
#pragma once

#include <vector>

#include "ids/engine.hpp"
#include "net/pcap.hpp"
#include "net/reassembly.hpp"

namespace vpm::ids {

struct PcapPipelineResult {
  std::vector<Alert> alerts;
  EngineCounters counters;
  std::size_t packets = 0;
  std::size_t skipped_records = 0;
  std::uint64_t reassembly_drops = 0;
  std::uint64_t duplicate_bytes_trimmed = 0;
};

// Classifies a flow by its server-side (destination) port, mirroring how
// Snort binds rule groups to port groups.
pattern::Group classify_port(std::uint16_t dst_port);

// Parses `pcap_bytes`, reassembles every TCP flow (UDP payloads are scanned
// per-datagram), and inspects each stream with the grouped rules.
PcapPipelineResult inspect_pcap(util::ByteView pcap_bytes, const pattern::PatternSet& rules,
                                EngineConfig cfg = {});

}  // namespace vpm::ids
