#include "ids/rule_group.hpp"

#include <stdexcept>

namespace vpm::ids {

GroupedRules::GroupedRules(DatabasePtr db) : db_(std::move(db)) {
  if (db_ == nullptr) throw std::invalid_argument("GroupedRules: null database");
  algorithm_ = db_->algorithm();
  build(db_->patterns(), algorithm_);
}

GroupedRules::GroupedRules(const pattern::PatternSet& master, core::Algorithm algorithm)
    : algorithm_(algorithm) {
  build(master, algorithm);
}

void GroupedRules::build(const pattern::PatternSet& master, core::Algorithm algorithm) {
  using pattern::Group;
  for (std::size_t g = 0; g < entries_.size(); ++g) {
    Entry& entry = entries_[g];
    const Group group = static_cast<Group>(g);
    for (const pattern::Pattern& p : master) {
      // Each group's working set = its own patterns + the generic ones; the
      // generic matcher sees only generic patterns.
      if (p.group != group && p.group != Group::generic) continue;
      const std::uint32_t local = entry.patterns.add(p.bytes, p.nocase, p.group);
      if (local == entry.to_master.size()) {
        entry.to_master.push_back(p.id);
        entry.lengths.push_back(static_cast<std::uint32_t>(p.size()));
        entry.max_len = std::max(entry.max_len, p.size());
      }
    }
    entry.prefilter = db_ != nullptr ? db_->prefilter_for(group)
                                     : core::build_prefilter(entry.patterns);
    if (entry.patterns.empty()) {
      // Keep a valid (trivially empty-result) matcher for protocol groups
      // with no rules: one unmatched sentinel pattern is cheaper than a null
      // check on every inspect call — build from a set with no patterns is
      // rejected by some engines, so route through naive.
      entry.matcher = core::make_matcher(core::Algorithm::naive, entry.patterns);
      continue;
    }
    entry.matcher = core::make_matcher(algorithm, entry.patterns);
  }
}

}  // namespace vpm::ids
