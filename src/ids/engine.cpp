#include "ids/engine.hpp"

namespace vpm::ids {

IdsEngine::IdsEngine(const pattern::PatternSet& rules, EngineConfig cfg)
    : rules_(rules, cfg.algorithm) {}

void IdsEngine::inspect(std::uint64_t flow_id, pattern::Group protocol, util::ByteView chunk,
                        AlertSink& out) {
  auto it = flows_.find(flow_id);
  if (it == flows_.end()) {
    it = flows_
             .emplace(flow_id,
                      FlowState{protocol, StreamScanner(rules_.matcher_for(protocol),
                                                        rules_.max_pattern_length(protocol),
                                                        rules_.pattern_lengths(protocol))})
             .first;
    ++counters_.flows;
  }
  FlowState& flow = it->second;

  struct MatchToAlert final : MatchSink {
    AlertSink* out = nullptr;
    const GroupedRules* rules = nullptr;
    std::uint64_t flow_id = 0;
    pattern::Group protocol{};
    std::uint64_t emitted = 0;
    void on_match(const Match& m) override {
      out->on_alert(Alert{flow_id, rules->master_id(protocol, m.pattern_id), m.pos,
                          protocol});
      ++emitted;
    }
  } sink;
  sink.out = &out;
  sink.rules = &rules_;
  sink.flow_id = flow_id;
  sink.protocol = flow.protocol;

  flow.scanner.feed(chunk, sink);
  counters_.bytes_inspected += chunk.size();
  ++counters_.chunks;
  counters_.alerts += sink.emitted;
}

void IdsEngine::close_flow(std::uint64_t flow_id) { flows_.erase(flow_id); }

}  // namespace vpm::ids
