#include "ids/engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "telemetry/metrics.hpp"
#include "util/timer.hpp"

namespace vpm::ids {

namespace {
// RAII for IdsEngine::in_scan_: a throwing AlertSink must not leave the
// engine wedged with the guard stuck set.
struct ScanGuard {
  bool* flag;
  explicit ScanGuard(bool* f) : flag(f) { *flag = true; }
  ~ScanGuard() { *flag = false; }
  ScanGuard(const ScanGuard&) = delete;
  ScanGuard& operator=(const ScanGuard&) = delete;
};
}  // namespace

IdsEngine::IdsEngine(const pattern::PatternSet& rules, EngineConfig cfg)
    : rules_(std::make_shared<const GroupedRules>(rules, cfg.algorithm)) {
  prefilter_mode_ = cfg.prefilter;
}

IdsEngine::IdsEngine(DatabasePtr db)
    : rules_(std::make_shared<const GroupedRules>(std::move(db))) {}

IdsEngine::IdsEngine(GroupedRulesPtr rules) : rules_(std::move(rules)) {
  if (rules_ == nullptr) throw std::invalid_argument("IdsEngine: null rules");
}

void IdsEngine::swap_rules(GroupedRulesPtr rules, AlertSink& sink) {
  assert(!in_scan_ && "swap_rules() called from an AlertSink mid-scan");
  if (rules == nullptr) throw std::invalid_argument("IdsEngine::swap_rules: null rules");
  // Staged chunks belong to the old generation: scan them under the old
  // rules before the boundary.
  flush_batch(sink);
  // Clean stream boundary: per-flow carry is tied to the old rules' group
  // matchers and pattern-length tables, so every flow restarts fresh under
  // the new generation (counters_.flows keeps counting distinct arrivals).
  flows_.clear();
  rules_ = std::move(rules);
  // New signatures, new traffic regime: restart the auto-mode sampling.
  pf_auto_.fill({});
}

IdsEngine::FlowState& IdsEngine::flow_for(std::uint64_t flow_id, pattern::Group protocol) {
  auto [flow, inserted] = flows_.find_or_emplace(flow_id, [&] {
    return FlowState{protocol, StreamScanner(rules_->matcher_for(protocol),
                                             rules_->max_pattern_length(protocol),
                                             rules_->pattern_lengths(protocol))};
  });
  if (inserted) ++counters_.flows;
  return *flow;
}

void IdsEngine::inspect(std::uint64_t flow_id, pattern::Group protocol, util::ByteView chunk,
                        AlertSink& out) {
  assert(!in_scan_ && "inspect() called from an AlertSink mid-scan");
  FlowState* flow = &flow_for(flow_id, protocol);
  // feed() must not run while a chunk is staged: prepare() would discard the
  // staged bytes and leave the pending view dangling.  Scan pending first —
  // and re-acquire the flow afterwards: the flush's deferred close_flow
  // calls (teardown-on-alert sinks) may have erased this very flow.
  if (flow->scanner.staged()) {
    flush_batch(out);
    flow = &flow_for(flow_id, protocol);
  }

  // When the approximate screen would engage for this group, route through
  // the staged path: it is the one place that knows how to screen a view,
  // commit carry for rejected chunks, and keep the per-group auto-mode
  // sampling coherent.  The batch path's alert multiset per chunk is
  // identical to the feed below, so callers can't tell — except that the
  // prefilter counters now move on the per-chunk API too.
  if (const core::PrefilterPtr& pf = rules_->prefilter_for(flow->protocol);
      pf != nullptr &&
      (prefilter_mode_ == core::PrefilterMode::on ||
       (prefilter_mode_ == core::PrefilterMode::automatic && pf->advised()))) {
    stage(flow_id, protocol, chunk, out);
    flush_batch(out);
    return;
  }

  struct MatchToAlert final : MatchSink {
    AlertSink* out = nullptr;
    const GroupedRules* rules = nullptr;
    std::uint64_t flow_id = 0;
    pattern::Group protocol{};
    std::uint64_t emitted = 0;
    void on_match(const Match& m) override {
      out->on_alert(Alert{flow_id, rules->master_id(protocol, m.pattern_id), m.pos,
                          protocol, rules->generation()});
      ++emitted;
    }
  } sink;
  sink.out = &out;
  sink.rules = rules_.get();
  sink.flow_id = flow_id;
  sink.protocol = flow->protocol;

  // Guard the live scanner: an AlertSink closing this flow from on_alert
  // must not destroy the scanner mid-feed (the close defers).
  {
    ScanGuard guard(&in_scan_);
    flow->scanner.feed(chunk, sink);
  }
  counters_.bytes_inspected += chunk.size();
  ++counters_.chunks;
  counters_.alerts += sink.emitted;
  run_deferred_closes();
}

void IdsEngine::stage(std::uint64_t flow_id, pattern::Group protocol, util::ByteView chunk,
                      AlertSink& sink) {
  assert(!in_scan_ && "stage() called from an AlertSink mid-scan");
  FlowState* flow = &flow_for(flow_id, protocol);
  // A flow can be staged once per flush: a second chunk for the same flow
  // must see the first one's carry, so scan what is pending first — and
  // re-acquire the flow afterwards: the flush's deferred close_flow calls
  // (teardown-on-alert sinks) may have erased this very flow.
  if (flow->scanner.staged()) {
    flush_batch(sink);
    flow = &flow_for(flow_id, protocol);
  }

  Staged s;
  s.flow = flow;
  s.flow_id = flow_id;
  s.protocol = flow->protocol;
  s.view = flow->scanner.prepare(chunk);
  s.carry = flow->scanner.staged_carry();
  s.base = flow->scanner.staged_base();
  pending_.push_back(s);
  // bytes_inspected/chunks count at flush time, when the scan actually
  // happens — a staged chunk dropped by close_flow was never inspected.
}

void IdsEngine::flush_batch(AlertSink& out) {
  assert(!in_scan_ && "flush_batch() called from an AlertSink mid-scan");
  if (pending_.empty() || in_scan_) return;
  const std::uint64_t t0 =
      telemetry_.flush_latency != nullptr ? util::monotonic_ns() : 0;
  {
    // Exception-safe: a throwing sink cannot leave in_scan_ wedged.
    ScanGuard guard(&in_scan_);
    flush_batch_impl(out);
  }
  if (telemetry_.flush_latency != nullptr) {
    telemetry_.flush_latency->record(
        static_cast<double>(util::monotonic_ns() - t0) * 1e-9);
  }
  run_deferred_closes();
}

void IdsEngine::flush_batch_impl(AlertSink& out) {
  for (std::uint32_t i = 0; i < pending_.size(); ++i) {
    GroupGather& g = gather_[static_cast<std::size_t>(pending_[i].protocol)];
    g.views.push_back(pending_[i].view);
    g.staged_index.push_back(i);
  }

  for (std::size_t gi = 0; gi < kGroups; ++gi) {
    GroupGather& g = gather_[gi];
    if (g.views.empty()) continue;
    const pattern::Group group = static_cast<pattern::Group>(gi);

    // Approximate screen ahead of the exact engine.  `off` never screens;
    // `on` screens whenever the group has a signature; `automatic` screens
    // advised groups, minus the adaptive-bypass stretches.
    const core::PrefilterPtr& pf = rules_->prefilter_for(group);
    bool engaged = false;
    if (pf != nullptr && prefilter_mode_ != core::PrefilterMode::off) {
      if (prefilter_mode_ == core::PrefilterMode::on) {
        engaged = true;
      } else if (pf->advised()) {
        PrefilterAuto& a = pf_auto_[gi];
        if (a.bypass_payloads > 0) {
          a.bypass_payloads -= static_cast<std::uint32_t>(
              std::min<std::size_t>(a.bypass_payloads, g.views.size()));
        } else {
          engaged = true;
        }
      }
    }
    if (engaged) {
      verdicts_.resize(g.views.size());
      pf->screen_batch(g.views, verdicts_.data(), pf_scratch_[gi]);
      std::uint64_t pass_bytes = 0;
      std::uint64_t reject_bytes = 0;
      for (std::size_t i = 0; i < g.views.size(); ++i) {
        if (verdicts_[i] != 0) {
          g.passed_views.push_back(g.views[i]);
          g.passed_staged.push_back(g.staged_index[i]);
          pass_bytes += g.views[i].size();
        } else {
          reject_bytes += g.views[i].size();
        }
      }
      const std::uint64_t pass_n = g.passed_views.size();
      const std::uint64_t reject_n = g.views.size() - pass_n;
      counters_.prefilter_pass_payloads += pass_n;
      counters_.prefilter_reject_payloads += reject_n;
      counters_.prefilter_pass_bytes += pass_bytes;
      counters_.prefilter_reject_bytes += reject_bytes;
      if (telemetry::Counter* c = telemetry_.prefilter_pass_payloads[gi]) c->add(pass_n);
      if (telemetry::Counter* c = telemetry_.prefilter_reject_payloads[gi]) {
        c->add(reject_n);
      }
      if (telemetry::Counter* c = telemetry_.prefilter_pass_bytes[gi]) c->add(pass_bytes);
      if (telemetry::Counter* c = telemetry_.prefilter_reject_bytes[gi]) {
        c->add(reject_bytes);
      }
      if (prefilter_mode_ == core::PrefilterMode::automatic) {
        PrefilterAuto& a = pf_auto_[gi];
        a.sampled += static_cast<std::uint32_t>(g.views.size());
        a.passed += static_cast<std::uint32_t>(pass_n);
        if (a.sampled >= kPrefilterSampleWindow) {
          if (a.passed * 2 > a.sampled) a.bypass_payloads = kPrefilterBypassPayloads;
          a.sampled = 0;
          a.passed = 0;
        }
      }
    }
    const std::vector<util::ByteView>& scan_views = engaged ? g.passed_views : g.views;

    struct BatchToAlert final : BatchSink {
      const IdsEngine* self = nullptr;
      AlertSink* out = nullptr;
      // Maps a scanned-batch packet index back to pending_ (the screened-in
      // subsequence when the prefilter is engaged, all staged views
      // otherwise).
      const std::uint32_t* to_staged = nullptr;
      pattern::Group group{};
      std::uint64_t emitted = 0;
      void on_match(std::uint32_t packet, const Match& m) override {
        const Staged& s = self->pending_[to_staged[packet]];
        if (s.flow->scanner.already_reported(m, s.carry)) return;
        out->on_alert(Alert{s.flow_id, self->rules_->master_id(group, m.pattern_id),
                            s.base + m.pos, group, self->rules_->generation()});
        ++emitted;
      }
    } sink;
    sink.self = this;
    sink.out = &out;
    sink.to_staged = engaged ? g.passed_staged.data() : g.staged_index.data();
    sink.group = group;

    if (!scan_views.empty()) {
      rules_->matcher_for(group).scan_batch(scan_views, sink, scratch_[gi]);
    }
    counters_.alerts += sink.emitted;
    if (telemetry::Counter* c = telemetry_.group_scan_bytes[gi]; c != nullptr) {
      std::uint64_t bytes = 0;
      for (const util::ByteView& v : scan_views) bytes += v.size();
      c->add(bytes);
    }
    if (telemetry::Counter* c = telemetry_.group_alerts[gi]; c != nullptr) {
      c->add(sink.emitted);
    }
    g.views.clear();
    g.staged_index.clear();
    g.passed_views.clear();
    g.passed_staged.clear();
  }

  for (Staged& s : pending_) {
    s.flow->scanner.commit();
    counters_.bytes_inspected += s.view.size() - s.carry;  // the chunk's bytes
    ++counters_.chunks;
  }
  pending_.clear();
}

// close_flow calls made by a sink during a live scan were deferred so the
// scanner / in-flight batch stayed valid; apply them once the scan is done.
// Routed through close_flow itself (in_scan_ is clear now) so a closed flow
// that STILL has staged state — possible after inspect(), which flushes only
// its own flow — gets the full staged-drop teardown.
void IdsEngine::run_deferred_closes() {
  while (!deferred_close_.empty()) {
    const std::uint64_t flow_id = deferred_close_.back();
    deferred_close_.pop_back();
    close_flow(flow_id);
  }
}

void IdsEngine::close_flow(std::uint64_t flow_id) {
  if (in_scan_) {
    // Called from an AlertSink while its scanner/batch is live (teardown-
    // on-alert): defer the erase — pending_ holds live pointers into the
    // flow table's nodes, and inspect()'s scanner must outlive its feed.
    deferred_close_.push_back(flow_id);
    return;
  }
  FlowState* flow = flows_.find(flow_id);
  if (flow == nullptr) return;
  if (flow->scanner.staged()) {
    // Dropping a staged chunk unscanned: eviction-time teardown is lossy by
    // design, and a dangling Staged entry must never survive the erase.
    std::erase_if(pending_, [flow](const Staged& s) { return s.flow == flow; });
  }
  flows_.erase(flow_id);
}

}  // namespace vpm::ids
