#include "wm/wu_manber.hpp"

#include <algorithm>

#include "util/bytes.hpp"
#include "util/hash.hpp"

namespace vpm::wm {

namespace {

std::uint32_t folded_block(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(util::ascii_lower(p[0])) |
         (static_cast<std::uint32_t>(util::ascii_lower(p[1])) << 8);
}

}  // namespace

WuManberMatcher::WuManberMatcher(const pattern::PatternSet& set) : set_(&set) {
  // Partition: block-searched (len >= 2) vs direct short patterns (len 1).
  m_ = SIZE_MAX;
  for (const pattern::Pattern& p : set) {
    if (p.size() < kBlock) {
      has_short_patterns_ = true;
      const std::uint8_t b = p.bytes[0];
      short_by_byte_[b].push_back(p.id);
      if (p.nocase) {
        const std::uint8_t other =
            util::ascii_lower(b) == b ? util::ascii_upper(b) : util::ascii_lower(b);
        if (other != b) short_by_byte_[other].push_back(p.id);
      }
    } else {
      has_block_patterns_ = true;
      m_ = std::min(m_, p.size());
    }
  }
  if (!has_block_patterns_) {
    m_ = 0;
    return;
  }

  // Shift table: for every folded 2-byte block, how far the search window may
  // jump.  Default shift = m - 1 (block absent from every pattern prefix).
  const std::size_t default_shift = m_ - kBlock + 1;
  shift_.assign(1u << 16, static_cast<std::uint8_t>(std::min<std::size_t>(default_shift, 255)));

  struct Keyed {
    std::uint32_t block;
    std::uint32_t id;
  };
  std::vector<Keyed> zero_shift;
  for (const pattern::Pattern& p : set) {
    if (p.size() < kBlock) continue;
    // Consider only the first m bytes of each pattern (classic WM).
    for (std::size_t j = 0; j + kBlock <= m_; ++j) {
      const std::uint32_t block = folded_block(p.bytes.data() + j);
      const std::size_t shift = m_ - kBlock - j;
      shift_[block] = static_cast<std::uint8_t>(
          std::min<std::size_t>(shift_[block], shift));
      if (shift == 0) zero_shift.push_back({block, p.id});
    }
  }

  std::stable_sort(zero_shift.begin(), zero_shift.end(),
                   [](const Keyed& a, const Keyed& b) { return a.block < b.block; });
  bucket_offsets_.assign((1u << 16) + 1, 0);
  candidates_.reserve(zero_shift.size());
  for (const Keyed& k : zero_shift) {
    ++bucket_offsets_[k.block + 1];
    candidates_.push_back(k.id);
  }
  for (std::size_t i = 1; i < bucket_offsets_.size(); ++i) {
    bucket_offsets_[i] += bucket_offsets_[i - 1];
  }
}

void WuManberMatcher::scan_short(util::ByteView data, MatchSink& sink) const {
  if (!has_short_patterns_) return;
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::uint32_t id : short_by_byte_[data[i]]) sink.on_match({id, i});
  }
}

void WuManberMatcher::scan_block(util::ByteView data, MatchSink& sink) const {
  if (!has_block_patterns_ || data.size() < m_) return;
  const std::uint8_t* d = data.data();
  const std::size_t n = data.size();
  std::size_t i = m_ - kBlock;  // window end-block position
  while (i + kBlock <= n) {
    const std::uint32_t block = folded_block(d + i);
    const std::uint8_t shift = shift_[block];
    if (shift != 0) {
      i += shift;
      continue;
    }
    // Candidate window: patterns whose bytes [m-2, m) fold to this block
    // start at position i - (m - 2).
    const std::size_t start = i - (m_ - kBlock);
    for (std::uint32_t e = bucket_offsets_[block]; e < bucket_offsets_[block + 1]; ++e) {
      const pattern::Pattern& p = (*set_)[candidates_[e]];
      if (start + p.size() > n) continue;
      if (util::bytes_equal(d + start, p.bytes.data(), p.size(), true)) {
        // Folded match; exact-case patterns verify raw bytes.
        if (p.nocase || util::bytes_equal(d + start, p.bytes.data(), p.size(), false)) {
          sink.on_match({p.id, start});
        }
      }
    }
    ++i;
  }
}

void WuManberMatcher::scan(util::ByteView data, MatchSink& sink) const {
  scan_short(data, sink);
  scan_block(data, sink);
}

std::size_t WuManberMatcher::memory_bytes() const {
  return shift_.size() + bucket_offsets_.size() * sizeof(std::uint32_t) +
         candidates_.size() * sizeof(std::uint32_t);
}

}  // namespace vpm::wm
