// Wu-Manber multi-pattern matcher (related-work baseline, paper §VI-A).
//
// Classic bad-block-shift search over 2-byte blocks: most windows skip
// several input bytes, which is why WM shines on long patterns and — as the
// paper notes — "performs poorly with short patterns".  Patterns shorter
// than the block size fall back to a per-byte direct check pass, preserving
// exact output equivalence with the other engines.
//
// Like the AC automaton, the tables are built over case-folded bytes;
// case-sensitive patterns verify raw bytes on a hit.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "match/matcher.hpp"
#include "pattern/pattern_set.hpp"

namespace vpm::wm {

class WuManberMatcher final : public Matcher {
 public:
  explicit WuManberMatcher(const pattern::PatternSet& set);

  void scan(util::ByteView data, MatchSink& sink) const override;
  std::string_view name() const override { return "Wu-Manber"; }
  std::size_t memory_bytes() const override;

  std::size_t min_block_pattern_length() const { return m_; }

 private:
  static constexpr std::size_t kBlock = 2;  // shift-block size in bytes

  void scan_short(util::ByteView data, MatchSink& sink) const;
  void scan_block(util::ByteView data, MatchSink& sink) const;

  const pattern::PatternSet* set_;
  // Shift table over folded 2-byte blocks (64 K entries).
  std::vector<std::uint8_t> shift_;
  // Candidate lists for blocks with shift 0, CSR keyed by the folded block
  // value of the pattern's bytes [m-2, m).
  std::vector<std::uint32_t> bucket_offsets_;
  std::vector<std::uint32_t> candidates_;
  std::size_t m_ = 0;  // min length among block-searched patterns
  // Patterns with size() < kBlock, checked by the direct pass: matching ids
  // per raw input byte value.
  std::array<std::vector<std::uint32_t>, 256> short_by_byte_;
  bool has_short_patterns_ = false;
  bool has_block_patterns_ = false;
};

}  // namespace vpm::wm
