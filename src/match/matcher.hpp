// The common exact-multiple-pattern-matching interface.
//
// Every engine (Aho-Corasick, DFC, Vector-DFC, S-PATCH, V-PATCH, Wu-Manber,
// naive) reports the identical multiset of (pattern_id, start position) for
// all occurrences of all patterns — "producing the same output as
// Aho-Corasick" (paper §IV-A2).  That contract is the backbone of the
// differential test suite.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"

namespace vpm {

struct Match {
  std::uint32_t pattern_id = 0;
  std::uint64_t pos = 0;  // start offset of the occurrence within the scanned buffer

  friend bool operator==(const Match&, const Match&) = default;
  friend auto operator<=>(const Match&, const Match&) = default;
};

// Receives matches during a scan.  Implementations must tolerate matches
// arriving in engine-specific order (AC emits by end position; the filtering
// engines by family then position).
class MatchSink {
 public:
  virtual void on_match(const Match& m) = 0;

 protected:
  ~MatchSink() = default;
};

class CountingSink final : public MatchSink {
 public:
  void on_match(const Match&) override { ++count_; }
  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

class CollectingSink final : public MatchSink {
 public:
  void on_match(const Match& m) override { matches_.push_back(m); }
  const std::vector<Match>& matches() const { return matches_; }
  // Canonical order for set comparison across engines.
  std::vector<Match> sorted() const {
    std::vector<Match> v = matches_;
    std::sort(v.begin(), v.end());
    return v;
  }

 private:
  std::vector<Match> matches_;
};

// Receives matches during a batch scan; `packet` is the index into the
// payload span passed to Matcher::scan_batch, and Match::pos is relative to
// that payload.  Matches never span payload boundaries.
class BatchSink {
 public:
  virtual void on_match(std::uint32_t packet, const Match& m) = 0;

 protected:
  ~BatchSink() = default;
};

// Adapts a per-payload scan()'s MatchSink stream into BatchSink deliveries
// for a fixed payload index (the generic scan_batch fallback and engines'
// oversized-payload paths).
struct PacketSinkAdapter final : MatchSink {
  BatchSink* out = nullptr;
  std::uint32_t packet = 0;
  void on_match(const Match& m) override { out->on_match(packet, m); }
};

// Process-unique owner tags for ScanScratch state.  Every Matcher draws one
// at construction; ids are never reused, so scratch tagged by a dead engine
// can never be mistaken for the current owner's (the ABA hazard a raw
// `const void*` owner pointer had: a new engine allocated at a dead engine's
// address would inherit stale state).
inline std::uint64_t next_scratch_owner_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// Caller-owned, reusable scratch for Matcher::scan_batch.
//
// The batch fast path amortizes per-call setup across many small payloads;
// the remaining fixed cost is the scratch storage (candidate arrays,
// per-packet bookkeeping), which the caller owns so steady-state scanning
// performs zero heap allocations.  A scratch instance must not be shared
// between threads.  It MAY be handed to different matchers over time: the
// stored state is tagged by the owning matcher's monotonically assigned id
// and is re-created whenever the owner changes.
class ScanScratch {
 public:
  struct State {
    virtual ~State() = default;
  };

  // Returns the stored state if it was installed by the owner with id
  // `owner_id` (a Matcher::scratch_owner_id()) with type T, otherwise
  // replaces the state with a default-constructed T.  Owner ids are
  // monotonic and never recycled, so a mismatch is always detected; State
  // implementations must still be pure reusable scratch whose logical
  // content is re-established on every scan_batch call (capacity may carry
  // over; data must not).
  template <class T>
  T& state_for(std::uint64_t owner_id) {
    if (owner_ != owner_id || dynamic_cast<T*>(state_.get()) == nullptr) {
      state_ = std::make_unique<T>();
      owner_ = owner_id;
    }
    return static_cast<T&>(*state_);
  }

 private:
  std::unique_ptr<State> state_;
  std::uint64_t owner_ = 0;  // 0 = no state installed (ids start at 1)
};

class Matcher {
 public:
  Matcher() = default;
  Matcher(const Matcher&) = delete;
  Matcher& operator=(const Matcher&) = delete;
  virtual ~Matcher() = default;

  // This engine's ScanScratch owner tag (monotonic, never reused).
  std::uint64_t scratch_owner_id() const { return scratch_owner_id_; }

  // Finds every occurrence of every pattern in `data`.
  virtual void scan(util::ByteView data, MatchSink& sink) const = 0;

  // Scans each payload independently (matches never cross payloads) and
  // reports (payload index, match) pairs.  Match multiset per payload is
  // identical to scan(payloads[i], ...); the emission ORDER across and
  // within payloads is engine-specific, exactly as it is for scan().
  //
  // The default walks payloads through scan().  Engines with a real batch
  // fast path override it to run one filtering round over the whole batch
  // and one deferred verification round, reusing `scratch` across calls.
  virtual void scan_batch(std::span<const util::ByteView> payloads, BatchSink& sink,
                          ScanScratch& scratch) const {
    (void)scratch;
    PacketSinkAdapter adapter;
    adapter.out = &sink;
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      adapter.packet = static_cast<std::uint32_t>(i);
      scan(payloads[i], adapter);
    }
  }

  virtual std::string_view name() const = 0;

  // Approximate heap footprint of the search structures, for the memory
  // comparisons (AC's automaton blow-up vs the filters' few KB).
  virtual std::size_t memory_bytes() const = 0;

  std::uint64_t count_matches(util::ByteView data) const {
    CountingSink sink;
    scan(data, sink);
    return sink.count();
  }

  std::vector<Match> find_matches(util::ByteView data) const {
    CollectingSink sink;
    scan(data, sink);
    return sink.sorted();
  }

 private:
  std::uint64_t scratch_owner_id_ = next_scratch_owner_id();
};

using MatcherPtr = std::unique_ptr<Matcher>;

}  // namespace vpm
