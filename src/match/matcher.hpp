// The common exact-multiple-pattern-matching interface.
//
// Every engine (Aho-Corasick, DFC, Vector-DFC, S-PATCH, V-PATCH, Wu-Manber,
// naive) reports the identical multiset of (pattern_id, start position) for
// all occurrences of all patterns — "producing the same output as
// Aho-Corasick" (paper §IV-A2).  That contract is the backbone of the
// differential test suite.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"

namespace vpm {

struct Match {
  std::uint32_t pattern_id = 0;
  std::uint64_t pos = 0;  // start offset of the occurrence within the scanned buffer

  friend bool operator==(const Match&, const Match&) = default;
  friend auto operator<=>(const Match&, const Match&) = default;
};

// Receives matches during a scan.  Implementations must tolerate matches
// arriving in engine-specific order (AC emits by end position; the filtering
// engines by family then position).
class MatchSink {
 public:
  virtual void on_match(const Match& m) = 0;

 protected:
  ~MatchSink() = default;
};

class CountingSink final : public MatchSink {
 public:
  void on_match(const Match&) override { ++count_; }
  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

class CollectingSink final : public MatchSink {
 public:
  void on_match(const Match& m) override { matches_.push_back(m); }
  const std::vector<Match>& matches() const { return matches_; }
  // Canonical order for set comparison across engines.
  std::vector<Match> sorted() const {
    std::vector<Match> v = matches_;
    std::sort(v.begin(), v.end());
    return v;
  }

 private:
  std::vector<Match> matches_;
};

class Matcher {
 public:
  virtual ~Matcher() = default;

  // Finds every occurrence of every pattern in `data`.
  virtual void scan(util::ByteView data, MatchSink& sink) const = 0;

  virtual std::string_view name() const = 0;

  // Approximate heap footprint of the search structures, for the memory
  // comparisons (AC's automaton blow-up vs the filters' few KB).
  virtual std::size_t memory_bytes() const = 0;

  std::uint64_t count_matches(util::ByteView data) const {
    CountingSink sink;
    scan(data, sink);
    return sink.count();
  }

  std::vector<Match> find_matches(util::ByteView data) const {
    CollectingSink sink;
    scan(data, sink);
    return sink.sorted();
  }
};

using MatcherPtr = std::unique_ptr<Matcher>;

}  // namespace vpm
