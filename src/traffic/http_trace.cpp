#include "traffic/http_trace.hpp"

#include <array>
#include <string>
#include <string_view>

#include "pattern/attack_corpus.hpp"
#include "util/rng.hpp"

namespace vpm::traffic {

namespace {

constexpr std::string_view kHosts[] = {
    "www.example.com", "cdn.imagehost.net", "mail.corporate.org", "news.daily.io",
    "shop.retailer.com", "api.service.net", "static.assets.org", "login.portal.edu",
    "update.vendor.com", "media.stream.tv", "search.engine.info", "blog.writer.me",
};

constexpr std::string_view kPathSegments[] = {
    "index", "home", "login", "images", "css", "js", "api", "v1", "v2", "users",
    "profile", "search", "cart", "checkout", "article", "news", "static", "assets",
    "download", "upload", "media", "video", "docs", "help", "about", "contact",
};

constexpr std::string_view kExtensions[] = {
    ".html", ".php", ".asp", ".jsp", "", ".js", ".css", ".png", ".jpg", ".gif",
    ".json", ".xml", ".txt", ".pdf", ".zip", ".ico",
};

constexpr std::string_view kUserAgents[] = {
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, like Gecko) "
    "Chrome/91.0.4472.124 Safari/537.36",
    "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_7) AppleWebKit/605.1.15 (KHTML, like "
    "Gecko) Version/14.1 Safari/605.1.15",
    "Mozilla/5.0 (X11; Linux x86_64; rv:89.0) Gecko/20100101 Firefox/89.0",
    "Mozilla/4.0 (compatible; MSIE 8.0; Windows NT 6.1)",
    "curl/7.68.0",
    "Wget/1.20.3 (linux-gnu)",
    "python-requests/2.25.1",
};

constexpr std::string_view kWords[] = {
    "the", "of", "and", "a", "to", "in", "is", "you", "that", "it", "he", "was",
    "for", "on", "are", "as", "with", "his", "they", "at", "be", "this", "have",
    "from", "or", "one", "had", "by", "word", "but", "not", "what", "all", "were",
    "we", "when", "your", "can", "said", "there", "use", "an", "each", "which",
    "she", "do", "how", "their", "if", "will", "up", "other", "about", "out",
    "many", "then", "them", "these", "so", "some", "her", "would", "make", "like",
    "him", "into", "time", "has", "look", "two", "more", "write", "go", "see",
    "number", "no", "way", "could", "people", "my", "than", "first", "water",
    "been", "call", "who", "oil", "its", "now", "find", "long", "down", "day",
    "did", "get", "come", "made", "may", "part", "server", "client", "request",
    "response", "page", "error", "data", "user", "account", "session", "content",
};

constexpr std::string_view kHtmlTags[] = {
    "<html>", "</html>", "<head>", "</head>", "<body>", "</body>", "<div class=\"",
    "</div>", "<p>", "</p>", "<a href=\"", "</a>", "<span>", "</span>", "<table>",
    "</table>", "<tr><td>", "</td></tr>", "<ul><li>", "</li></ul>", "<h1>", "</h1>",
    "<img src=\"", "\" alt=\"\"/>", "<script src=\"", "\"></script>",
    "<link rel=\"stylesheet\" href=\"", "\"/>", "<meta charset=\"utf-8\"/>",
    "<form action=\"", "\" method=\"post\">", "</form>", "<input type=\"text\"",
};

void append(util::Bytes& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

std::string make_uri(util::Rng& rng) {
  std::string uri = "/";
  const int segs = static_cast<int>(rng.between(1, 4));
  for (int i = 0; i < segs; ++i) {
    uri += kPathSegments[rng.below(std::size(kPathSegments))];
    if (i + 1 < segs) uri += '/';
  }
  uri += kExtensions[rng.below(std::size(kExtensions))];
  if (rng.chance(0.35)) {  // query string
    uri += '?';
    const int params = static_cast<int>(rng.between(1, 3));
    for (int i = 0; i < params; ++i) {
      if (i) uri += '&';
      uri += kWords[rng.below(std::size(kWords))];
      uri += '=';
      const int n = static_cast<int>(rng.between(1, 8));
      for (int j = 0; j < n; ++j) uri += rng.alnum();
    }
  }
  return uri;
}

void append_text_body(util::Bytes& out, util::Rng& rng, std::size_t approx_len) {
  const std::size_t start = out.size();
  while (out.size() - start < approx_len) {
    if (rng.chance(0.18)) append(out, kHtmlTags[rng.below(std::size(kHtmlTags))]);
    append(out, kWords[rng.below(std::size(kWords))]);
    out.push_back(rng.chance(0.12) ? '\n' : ' ');
  }
}

void append_binary_body(util::Bytes& out, util::Rng& rng, std::size_t len) {
  // PNG-ish: magic, then high-entropy bytes with occasional structure.
  static constexpr std::uint8_t kPngMagic[] = {0x89, 'P', 'N', 'G', 0x0D, 0x0A, 0x1A, 0x0A};
  out.insert(out.end(), std::begin(kPngMagic), std::end(kPngMagic));
  for (std::size_t i = 8; i < len; ++i) out.push_back(rng.byte());
}

void append_request(util::Bytes& out, util::Rng& rng, const HttpTraceConfig& cfg) {
  const bool post = rng.chance(cfg.post_fraction);
  append(out, post ? "POST " : (rng.chance(0.06) ? "HEAD " : "GET "));
  append(out, make_uri(rng));
  append(out, " HTTP/1.1\r\nHost: ");
  append(out, kHosts[rng.below(std::size(kHosts))]);
  append(out, "\r\nUser-Agent: ");
  append(out, kUserAgents[rng.below(std::size(kUserAgents))]);
  append(out, "\r\nAccept: text/html,application/xhtml+xml,*/*;q=0.8\r\n");
  if (rng.chance(0.7)) append(out, "Accept-Encoding: gzip, deflate\r\n");
  if (rng.chance(0.6)) append(out, "Connection: keep-alive\r\n");
  if (rng.chance(0.4)) {
    append(out, "Cookie: session=");
    for (int i = 0; i < 24; ++i) out.push_back(static_cast<std::uint8_t>(rng.alnum()));
    append(out, "\r\n");
  }
  if (post) {
    const std::size_t body_len = static_cast<std::size_t>(rng.between(20, 400));
    append(out, "Content-Type: application/x-www-form-urlencoded\r\nContent-Length: ");
    append(out, std::to_string(body_len));
    append(out, "\r\n\r\n");
    const std::size_t start = out.size();
    while (out.size() - start < body_len) {
      append(out, kWords[rng.below(std::size(kWords))]);
      out.push_back('=');
      const int n = static_cast<int>(rng.between(1, 10));
      for (int j = 0; j < n; ++j) out.push_back(static_cast<std::uint8_t>(rng.alnum()));
      out.push_back('&');
    }
  } else {
    append(out, "\r\n");
  }
}

void append_response(util::Bytes& out, util::Rng& rng, const HttpTraceConfig& cfg) {
  const bool ok = rng.chance(0.85);
  append(out, ok ? "HTTP/1.1 200 OK\r\n"
                 : (rng.chance(0.5) ? "HTTP/1.1 404 Not Found\r\n"
                                    : "HTTP/1.1 302 Found\r\n"));
  append(out, rng.chance(0.5) ? "Server: Apache/2.4.41 (Ubuntu)\r\n"
                              : "Server: nginx/1.18.0\r\n");
  const bool binary = rng.chance(cfg.binary_body_fraction);
  const std::size_t body_len =
      static_cast<std::size_t>(binary ? rng.between(400, 8000) : rng.between(100, 4000));
  append(out, binary ? "Content-Type: image/png\r\n" : "Content-Type: text/html; charset=utf-8\r\n");
  append(out, "Content-Length: ");
  append(out, std::to_string(body_len));
  append(out, "\r\nConnection: keep-alive\r\n\r\n");
  if (binary) {
    append_binary_body(out, rng, body_len);
  } else {
    append_text_body(out, rng, body_len);
  }
}

}  // namespace

HttpTraceConfig iscx_day2_config(std::size_t bytes, std::uint64_t seed) {
  HttpTraceConfig cfg;
  cfg.target_bytes = bytes;
  cfg.seed = seed;
  cfg.binary_body_fraction = 0.12;
  cfg.post_fraction = 0.25;
  cfg.response_fraction = 0.50;
  return cfg;
}

HttpTraceConfig iscx_day6_config(std::size_t bytes, std::uint64_t seed) {
  HttpTraceConfig cfg;
  cfg.target_bytes = bytes;
  cfg.seed = seed ^ 0x5157ull;
  cfg.binary_body_fraction = 0.25;
  cfg.post_fraction = 0.12;
  cfg.response_fraction = 0.65;
  return cfg;
}

util::Bytes generate_http_trace(const HttpTraceConfig& cfg) {
  util::Bytes out;
  out.reserve(cfg.target_bytes + 16384);
  util::Rng rng(cfg.seed);
  while (out.size() < cfg.target_bytes) {
    if (rng.chance(cfg.response_fraction)) {
      append_response(out, rng, cfg);
    } else {
      append_request(out, rng, cfg);
    }
  }
  out.resize(cfg.target_bytes);
  return out;
}

}  // namespace vpm::traffic
