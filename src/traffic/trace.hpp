// Common trace types for the traffic generators.
//
// A trace is the reassembled payload stream the matcher scans (the paper
// feeds 300 MB - 1 GB of ISCX/DARPA payload per run).  Generators are
// deterministic functions of (config, seed) so every benchmark row is
// regenerable.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace vpm::traffic {

// The named workloads of the paper's evaluation (§V-A).
enum class TraceKind : std::uint8_t {
  iscx_day2,   // HTTP-heavy realistic mix (our HTTP generator, profile A)
  iscx_day6,   // HTTP-heavy realistic mix (profile B: more responses/binary)
  darpa2000,   // multi-protocol mix with telnet/ftp/smtp flavor
  random,      // uniform random bytes
};

std::string_view trace_kind_name(TraceKind k);

util::Bytes generate_trace(TraceKind kind, std::size_t target_bytes, std::uint64_t seed);

}  // namespace vpm::traffic
