#include "traffic/trace.hpp"

#include "traffic/http_trace.hpp"
#include "traffic/mixed_trace.hpp"
#include "traffic/random_trace.hpp"

namespace vpm::traffic {

std::string_view trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::iscx_day2: return "ISCX-day2";
    case TraceKind::iscx_day6: return "ISCX-day6";
    case TraceKind::darpa2000: return "DARPA-2000";
    case TraceKind::random: return "random";
  }
  return "?";
}

util::Bytes generate_trace(TraceKind kind, std::size_t target_bytes, std::uint64_t seed) {
  switch (kind) {
    case TraceKind::iscx_day2:
      return generate_http_trace(iscx_day2_config(target_bytes, seed));
    case TraceKind::iscx_day6:
      return generate_http_trace(iscx_day6_config(target_bytes, seed));
    case TraceKind::darpa2000: {
      MixedTraceConfig cfg;
      cfg.target_bytes = target_bytes;
      cfg.seed = seed;
      return generate_mixed_trace(cfg);
    }
    case TraceKind::random:
      return generate_random_trace(target_bytes, seed);
  }
  return {};
}

}  // namespace vpm::traffic
