// Trace characterization, reported next to benchmark rows so EXPERIMENTS.md
// can document how closely the synthetic workloads track the real captures.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace vpm::traffic {

struct TraceStats {
  std::size_t bytes = 0;
  double printable_fraction = 0.0;  // bytes in [0x20, 0x7F) plus \t \r \n
  double shannon_entropy_bits = 0.0;  // per byte, 0..8
  std::size_t distinct_bytes = 0;
  std::array<std::uint64_t, 256> histogram{};
};

TraceStats compute_trace_stats(util::ByteView trace);

// Occurrences of a token (exact bytes) per megabyte of trace — used to check
// that GET/HTTP-class tokens appear at realistic density.
double token_density_per_mb(util::ByteView trace, util::ByteView token);

}  // namespace vpm::traffic
