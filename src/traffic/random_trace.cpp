#include "traffic/random_trace.hpp"

#include <cstring>

#include "util/rng.hpp"

namespace vpm::traffic {

util::Bytes generate_random_trace(std::size_t bytes, std::uint64_t seed) {
  util::Bytes out(bytes);
  util::Rng rng(seed);
  std::size_t i = 0;
  // Fill 8 bytes per draw; the tail byte-by-byte.
  for (; i + 8 <= bytes; i += 8) {
    const std::uint64_t v = rng();
    std::memcpy(out.data() + i, &v, 8);
  }
  for (; i < bytes; ++i) out[i] = rng.byte();
  return out;
}

util::Bytes generate_random_printable_trace(std::size_t bytes, std::uint64_t seed) {
  util::Bytes out(bytes);
  util::Rng rng(seed);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.printable());
  return out;
}

}  // namespace vpm::traffic
