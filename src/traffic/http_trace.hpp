// Synthetic HTTP payload streams — the ISCX-dataset stand-in.
//
// What the paper's results actually depend on, and what this generator
// reproduces:
//   * HTTP keywords (GET, HTTP, Host, User-Agent, ...) occur at realistic
//     density, so short patterns fire frequently ("strings like GET and HTTP
//     ... will frequently be found in real network traffic", §IV-A);
//   * header/body byte skew (mostly printable ASCII with binary bodies mixed
//     in), which sets the direct-filter pass rate on long patterns;
//   * session structure (request/response alternation) rather than uniform
//     noise.
// Two profiles stand in for the two ISCX capture days.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace vpm::traffic {

struct HttpTraceConfig {
  std::size_t target_bytes = 1 << 20;
  std::uint64_t seed = 42;
  double binary_body_fraction = 0.15;  // images/archives among response bodies
  double post_fraction = 0.20;         // POST vs GET requests
  double response_fraction = 0.55;     // byte share of responses vs requests
};

// ISCX "day 2" flavor: request-heavy browsing mix.
HttpTraceConfig iscx_day2_config(std::size_t bytes, std::uint64_t seed);
// ISCX "day 6" flavor: response/binary-heavier mix.
HttpTraceConfig iscx_day6_config(std::size_t bytes, std::uint64_t seed);

util::Bytes generate_http_trace(const HttpTraceConfig& cfg);

}  // namespace vpm::traffic
