// Multi-protocol payload mix — the DARPA-2000 stand-in.
//
// The DARPA capture is older, less HTTP-dominated traffic (telnet, ftp, smtp
// sessions).  This generator mixes HTTP with command-protocol dialogues and
// raw binary transfers; the matcher-facing effect is a different short-token
// density and lower printable skew than the ISCX profiles.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace vpm::traffic {

struct MixedTraceConfig {
  std::size_t target_bytes = 1 << 20;
  std::uint64_t seed = 7;
  double http_share = 0.45;
  double ftp_share = 0.15;
  double smtp_share = 0.15;
  double telnet_share = 0.15;  // remainder is raw binary transfer
};

util::Bytes generate_mixed_trace(const MixedTraceConfig& cfg);

}  // namespace vpm::traffic
