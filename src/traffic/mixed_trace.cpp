#include "traffic/mixed_trace.hpp"

#include <string>
#include <string_view>

#include "traffic/http_trace.hpp"
#include "util/rng.hpp"

namespace vpm::traffic {

namespace {

void append(util::Bytes& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

constexpr std::string_view kFtpFiles[] = {
    "report.doc", "data.tar.gz", "backup.zip", "readme.txt", "image.jpg",
    "notes.md", "archive.rar", "firmware.bin", "logs.txt", "export.csv",
};

constexpr std::string_view kUsers[] = {
    "alice", "bob", "carol", "dave", "eve", "mallory", "peggy", "trent",
};

void append_ftp_session(util::Bytes& out, util::Rng& rng) {
  append(out, "220 FTP server ready\r\nUSER ");
  append(out, kUsers[rng.below(std::size(kUsers))]);
  append(out, "\r\n331 Password required\r\nPASS ");
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(rng.alnum()));
  append(out, "\r\n230 Login successful\r\n");
  const int cmds = static_cast<int>(rng.between(2, 6));
  for (int i = 0; i < cmds; ++i) {
    switch (rng.below(4)) {
      case 0: append(out, "LIST\r\n150 Opening data connection\r\n226 Transfer complete\r\n"); break;
      case 1:
        append(out, "RETR ");
        append(out, kFtpFiles[rng.below(std::size(kFtpFiles))]);
        append(out, "\r\n150 Opening BINARY mode\r\n226 Transfer complete\r\n");
        break;
      case 2: append(out, "PASV\r\n227 Entering Passive Mode (10,0,0,1,19,136)\r\n"); break;
      default: append(out, "TYPE I\r\n200 Switching to Binary mode\r\n"); break;
    }
  }
  append(out, "QUIT\r\n221 Goodbye\r\n");
}

void append_smtp_session(util::Bytes& out, util::Rng& rng) {
  append(out, "220 mail.example.org ESMTP\r\nEHLO client.example.com\r\n");
  append(out, "250-mail.example.org\r\n250 OK\r\nMAIL FROM:<");
  append(out, kUsers[rng.below(std::size(kUsers))]);
  append(out, "@example.com>\r\n250 OK\r\nRCPT TO:<");
  append(out, kUsers[rng.below(std::size(kUsers))]);
  append(out, "@example.org>\r\n250 OK\r\nDATA\r\n354 End data with <CR><LF>.<CR><LF>\r\n");
  append(out, "Subject: meeting notes\r\nFrom: sender@example.com\r\n\r\n");
  const int lines = static_cast<int>(rng.between(3, 12));
  for (int i = 0; i < lines; ++i) {
    const int words = static_cast<int>(rng.between(4, 12));
    for (int j = 0; j < words; ++j) {
      const int n = static_cast<int>(rng.between(2, 9));
      for (int k = 0; k < n; ++k) out.push_back(static_cast<std::uint8_t>(rng.lower_alpha()));
      out.push_back(' ');
    }
    append(out, "\r\n");
  }
  append(out, ".\r\n250 OK queued\r\nQUIT\r\n221 Bye\r\n");
}

void append_telnet_session(util::Bytes& out, util::Rng& rng) {
  // IAC negotiation bytes then a shell-ish dialogue.
  static constexpr std::uint8_t kIac[] = {0xFF, 0xFB, 0x01, 0xFF, 0xFB, 0x03, 0xFF, 0xFD, 0x18};
  out.insert(out.end(), std::begin(kIac), std::end(kIac));
  append(out, "login: ");
  append(out, kUsers[rng.below(std::size(kUsers))]);
  append(out, "\r\nPassword: \r\nLast login: Mon Jun  8 10:21:33\r\n$ ");
  const int cmds = static_cast<int>(rng.between(2, 6));
  for (int i = 0; i < cmds; ++i) {
    switch (rng.below(5)) {
      case 0: append(out, "ls -la\r\ntotal 48\r\ndrwxr-xr-x 2 user user 4096 .\r\n$ "); break;
      case 1: append(out, "ps aux | head\r\nUSER PID %CPU COMMAND\r\n$ "); break;
      case 2: append(out, "cat /var/log/messages\r\n$ "); break;
      case 3: append(out, "uname -a\r\nLinux host 4.4.0 x86_64\r\n$ "); break;
      default: append(out, "netstat -an\r\nActive Internet connections\r\n$ "); break;
    }
  }
  append(out, "exit\r\nlogout\r\n");
}

void append_binary_transfer(util::Bytes& out, util::Rng& rng) {
  const std::size_t len = static_cast<std::size_t>(rng.between(500, 6000));
  for (std::size_t i = 0; i < len; ++i) out.push_back(rng.byte());
}

}  // namespace

util::Bytes generate_mixed_trace(const MixedTraceConfig& cfg) {
  util::Bytes out;
  out.reserve(cfg.target_bytes + 16384);
  util::Rng rng(cfg.seed);
  HttpTraceConfig http = iscx_day2_config(1 << 14, cfg.seed);
  while (out.size() < cfg.target_bytes) {
    const double u = rng.uniform();
    if (u < cfg.http_share) {
      // One request/response pair worth of HTTP.
      http.seed = rng();
      const util::Bytes chunk = generate_http_trace(http);
      const std::size_t take = std::min<std::size_t>(chunk.size(),
                                                     static_cast<std::size_t>(rng.between(600, 8000)));
      out.insert(out.end(), chunk.begin(), chunk.begin() + static_cast<long>(take));
    } else if (u < cfg.http_share + cfg.ftp_share) {
      append_ftp_session(out, rng);
    } else if (u < cfg.http_share + cfg.ftp_share + cfg.smtp_share) {
      append_smtp_session(out, rng);
    } else if (u < cfg.http_share + cfg.ftp_share + cfg.smtp_share + cfg.telnet_share) {
      append_telnet_session(out, rng);
    } else {
      append_binary_transfer(out, rng);
    }
  }
  out.resize(cfg.target_bytes);
  return out;
}

}  // namespace vpm::traffic
