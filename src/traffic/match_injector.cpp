#include "traffic/match_injector.hpp"

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace vpm::traffic {

InjectionReport inject_matches(util::Bytes& trace, const pattern::PatternSet& set,
                               double fraction, std::uint64_t seed) {
  InjectionReport report;
  if (trace.empty() || set.empty() || fraction <= 0.0) return report;
  fraction = std::min(fraction, 1.0);

  const std::size_t target_bytes =
      static_cast<std::size_t>(fraction * static_cast<double>(trace.size()));

  // Occupied-interval bookkeeping: a byte-granular bitmap is simplest and the
  // traces here are at most a few hundred MB.
  std::vector<bool> occupied(trace.size(), false);
  util::Rng rng(seed);

  auto try_place = [&](const pattern::Pattern& p, std::size_t pos) {
    for (std::size_t i = pos; i < pos + p.size(); ++i) {
      if (occupied[i]) return false;
    }
    std::copy(p.bytes.begin(), p.bytes.end(), trace.begin() + static_cast<long>(pos));
    std::fill(occupied.begin() + static_cast<long>(pos),
              occupied.begin() + static_cast<long>(pos + p.size()), true);
    report.injected_bytes += p.size();
    ++report.injected_copies;
    return true;
  };

  // Phase 1: uniform random placement — keeps injected copies spread out.
  std::size_t failures = 0;
  const std::size_t max_failures = 16 * 1024;
  while (report.injected_bytes < target_bytes && failures < max_failures) {
    const pattern::Pattern& p = set[static_cast<std::uint32_t>(rng.below(set.size()))];
    if (p.size() > trace.size()) { ++failures; continue; }
    const std::size_t pos = static_cast<std::size_t>(rng.below(trace.size() - p.size() + 1));
    if (!try_place(p, pos)) ++failures;
  }

  // Phase 2: random placement saturates well below 100% coverage; finish
  // with a linear sweep that drops patterns into the remaining free gaps so
  // high target fractions (the right side of Fig. 5c) are reachable.
  if (report.injected_bytes < target_bytes) {
    std::size_t pos = 0;
    while (pos < trace.size() && report.injected_bytes < target_bytes) {
      if (occupied[pos]) { ++pos; continue; }
      bool placed = false;
      // A few random draws, then accept any pattern that fits the gap.
      for (int attempt = 0; attempt < 8 && !placed; ++attempt) {
        const pattern::Pattern& p = set[static_cast<std::uint32_t>(rng.below(set.size()))];
        if (pos + p.size() <= trace.size()) placed = try_place(p, pos);
      }
      pos += placed ? 0 : 1;  // re-check: try_place advanced occupancy
      if (placed) {
        while (pos < trace.size() && occupied[pos]) ++pos;
      }
    }
  }
  report.achieved_fraction =
      static_cast<double>(report.injected_bytes) / static_cast<double>(trace.size());
  return report;
}

}  // namespace vpm::traffic
