#include "traffic/trace_stats.hpp"

#include <cmath>

namespace vpm::traffic {

TraceStats compute_trace_stats(util::ByteView trace) {
  TraceStats s;
  s.bytes = trace.size();
  if (trace.empty()) return s;
  for (std::uint8_t b : trace) ++s.histogram[b];

  std::uint64_t printable = 0;
  for (unsigned b = 0; b < 256; ++b) {
    if (s.histogram[b] == 0) continue;
    ++s.distinct_bytes;
    const bool is_printable = (b >= 0x20 && b < 0x7F) || b == '\t' || b == '\r' || b == '\n';
    if (is_printable) printable += s.histogram[b];
    const double p = static_cast<double>(s.histogram[b]) / static_cast<double>(s.bytes);
    s.shannon_entropy_bits -= p * std::log2(p);
  }
  s.printable_fraction = static_cast<double>(printable) / static_cast<double>(s.bytes);
  return s;
}

double token_density_per_mb(util::ByteView trace, util::ByteView token) {
  if (token.empty() || trace.size() < token.size()) return 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i + token.size() <= trace.size(); ++i) {
    bool eq = true;
    for (std::size_t j = 0; j < token.size(); ++j) {
      if (trace[i + j] != token[j]) { eq = false; break; }
    }
    if (eq) ++count;
  }
  return static_cast<double>(count) / (static_cast<double>(trace.size()) / (1024.0 * 1024.0));
}

}  // namespace vpm::traffic
