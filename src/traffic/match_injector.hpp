// Match injection — the workload knob for Fig. 5c.
//
// The paper "created a synthetic input that contains increasingly more
// patterns, randomly selected from a ruleset".  The injector overwrites
// non-overlapping spans of a base trace with pattern bytes until a target
// fraction of the trace bytes belongs to injected pattern copies.
#pragma once

#include <cstdint>

#include "pattern/pattern_set.hpp"
#include "util/bytes.hpp"

namespace vpm::traffic {

struct InjectionReport {
  std::size_t injected_copies = 0;
  std::size_t injected_bytes = 0;
  double achieved_fraction = 0.0;  // injected_bytes / trace size
};

// Overwrites spans of `trace` in place with patterns drawn uniformly from
// `set`; stops when `fraction` of the bytes are pattern bytes (or when no
// more space is available).  Injection sites never overlap each other, so
// every injected copy survives verbatim and is guaranteed to be a match.
InjectionReport inject_matches(util::Bytes& trace, const pattern::PatternSet& set,
                               double fraction, std::uint64_t seed);

}  // namespace vpm::traffic
