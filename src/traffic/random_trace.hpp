// Uniform random byte traces — the paper's "synthetic data set consists of
// 1GB of randomly generated characters".  Two flavors: raw uniform bytes and
// uniform printable ASCII.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace vpm::traffic {

util::Bytes generate_random_trace(std::size_t bytes, std::uint64_t seed);
util::Bytes generate_random_printable_trace(std::size_t bytes, std::uint64_t seed);

}  // namespace vpm::traffic
