// CPU/NUMA topology discovery and thread pinning — sysfs parsing only, no
// libnuma dependency (the container images this runs in rarely ship it, and
// the two facts the pipeline needs — which CPUs exist and which node each
// belongs to — are a pair of text files away).
//
// Used by the runtime for worker→CPU pinning (PipelineConfig::worker_cpus)
// and per-NUMA-node GroupedRules replication, and by pcap_sensor's
// --numa=auto placement.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vpm::capture {

struct CpuTopology {
  struct Node {
    int id = 0;
    std::vector<int> cpus;  // ascending
  };
  std::vector<Node> nodes;  // ascending by id; never empty after detect()

  // Node id owning `cpu`, or -1 when unknown (treat as node 0).
  int node_of(int cpu) const;
  // Every online CPU, ascending.
  std::vector<int> all_cpus() const;
  // CPUs interleaved across nodes (node0[0], node1[0], node0[1], ...) — the
  // --numa=auto placement: consecutive workers land on alternating sockets
  // so per-node rules replication splits the fleet evenly.
  std::vector<int> interleaved_cpus() const;

  // Reads /sys/devices/system/{node,cpu}.  Hosts without NUMA sysfs (or
  // with it hidden) come back as a single node 0 holding every online CPU;
  // a host where even that fails yields one node with cpu 0.
  static CpuTopology detect();
  // Same parse against an alternate sysfs root — the test seam.
  static CpuTopology detect_at(const std::string& sysfs_root);
};

// Parses a kernel cpulist ("0-3,8,10-11") into ascending CPU ids; nullopt on
// malformed input.  Also the --cpu-list flag format.
std::optional<std::vector<int>> parse_cpu_list(std::string_view text);

// Pins the calling thread to one CPU (sched_setaffinity).  Returns false on
// failure (bad cpu id, restricted cpuset) — callers treat pinning as a hint.
bool pin_current_thread(int cpu);

}  // namespace vpm::capture
