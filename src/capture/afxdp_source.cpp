#include "capture/afxdp_source.hpp"

#include <stdexcept>

#if VPM_WITH_AFXDP
// Compile-tested only: pull in the headers the real XSK implementation will
// need so the flagged CI job catches toolchain bit-rot early.
#include <linux/if_xdp.h>
#include <sys/socket.h>
#endif

namespace vpm::capture {

AfXdpSource::AfXdpSource(AfXdpConfig cfg) {
#if VPM_WITH_AFXDP
  throw std::runtime_error("afxdp source '" + cfg.interface +
                           "': AF_XDP capture is not implemented yet "
                           "(VPM_WITH_AFXDP is compile-tested only)");
#else
  throw std::runtime_error("afxdp source '" + cfg.interface +
                           "': this build has no AF_XDP support (configure "
                           "with -DVPM_WITH_AFXDP=ON)");
#endif
}

std::size_t AfXdpSource::poll(std::vector<net::Packet>&, std::size_t) { return 0; }

}  // namespace vpm::capture
