// Generated-traffic CaptureSource wrapping net::generate_flows — the soak
// workload.  One base epoch is generated deterministically from the seed;
// subsequent epochs replay the same packets with a remapped server address
// and shifted timestamps, so an endless soak creates FRESH flows every epoch
// (flow-table churn) at zero per-epoch generation cost, and the whole stream
// is reproducible under VPM_TEST_SEED.
#pragma once

#include <string>

#include "capture/source.hpp"
#include "net/flowgen.hpp"

namespace vpm::capture {

struct TraceConfig {
  std::string profile = "mixed";  // mixed | evasion (adversarial segments)
  std::size_t flows = 64;
  std::size_t bytes_per_flow = 64 * 1024;
  std::uint64_t seed = 1;
  // Epochs to serve; 0 = endless (live soak; exhausted() never true).
  std::uint64_t epochs = 1;
};

class TraceSource final : public CaptureSource {
 public:
  // Throws std::invalid_argument on an unknown profile.
  explicit TraceSource(TraceConfig cfg);

  std::size_t poll(std::vector<net::Packet>& out, std::size_t max_packets) override;
  bool exhausted() const override {
    return cfg_.epochs != 0 && epoch_ >= cfg_.epochs;
  }
  std::string_view kind() const override { return "trace"; }
  CaptureStats stats() const override { return stats_; }

  // Ground truth of the base epoch (differential/determinism tests).
  const net::GeneratedFlows& base() const { return base_; }
  std::size_t packets_per_epoch() const { return base_.packets.size(); }

 private:
  TraceConfig cfg_;
  net::GeneratedFlows base_;
  std::uint64_t epoch_span_us_ = 0;  // timestamp shift between epochs
  std::uint64_t epoch_ = 0;
  std::size_t cursor_ = 0;  // index into base_.packets within the epoch
  CaptureStats stats_;
};

}  // namespace vpm::capture
