#include "capture/pcap_source.hpp"

#include <fstream>
#include <stdexcept>

namespace vpm::capture {

PcapFileSource::PcapFileSource(util::Bytes pcap_bytes) : raw_(std::move(pcap_bytes)) {
  parsed_ = net::read_pcap({raw_.data(), raw_.size()});
  stats_.skipped = parsed_.skipped_records;
}

PcapFileSource PcapFileSource::open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("capture: cannot open pcap file: " + path);
  util::Bytes bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return PcapFileSource(std::move(bytes));
}

std::size_t PcapFileSource::poll(std::vector<net::Packet>& out,
                                 std::size_t max_packets) {
  std::size_t n = 0;
  while (n < max_packets && cursor_ < parsed_.packets.size()) {
    // Copy, not move: the parse stays intact so raw()/reference replays and
    // repeated stats passes see the full capture.
    const net::Packet& p = parsed_.packets[cursor_++];
    stats_.bytes += p.payload.size();
    ++stats_.packets;
    out.push_back(p);
    ++n;
  }
  return n;
}

}  // namespace vpm::capture
