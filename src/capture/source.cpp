#include "capture/source.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "capture/afpacket_source.hpp"
#include "capture/afxdp_source.hpp"
#include "capture/pcap_source.hpp"
#include "capture/trace_source.hpp"

namespace vpm::capture {

namespace {

std::uint64_t parse_u64(std::string_view text, std::string_view what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument("capture source spec: bad " + std::string(what) +
                                " value '" + std::string(text) + "'");
  }
  return value;
}

// Splits "head,key=v,key=v" into head + key/value pairs.
struct SpecBody {
  std::string_view head;
  std::vector<std::pair<std::string_view, std::string_view>> options;
};

SpecBody split_spec_body(std::string_view body) {
  SpecBody out;
  std::size_t comma = body.find(',');
  out.head = body.substr(0, comma);
  while (comma != std::string_view::npos) {
    body.remove_prefix(comma + 1);
    comma = body.find(',');
    const std::string_view item = body.substr(0, comma);
    const std::size_t eq = item.find('=');
    if (item.empty() || eq == 0 || eq == std::string_view::npos) {
      throw std::invalid_argument("capture source spec: expected key=value, got '" +
                                  std::string(item) + "'");
    }
    out.options.emplace_back(item.substr(0, eq), item.substr(eq + 1));
  }
  return out;
}

std::unique_ptr<CaptureSource> open_trace(std::string_view body) {
  const SpecBody spec = split_spec_body(body);
  TraceConfig cfg;
  if (!spec.head.empty()) cfg.profile = std::string(spec.head);
  for (const auto& [key, value] : spec.options) {
    if (key == "flows") {
      cfg.flows = parse_u64(value, key);
    } else if (key == "mb") {
      cfg.bytes_per_flow = parse_u64(value, key) * 1024 * 1024 / std::max<std::size_t>(cfg.flows, 1);
    } else if (key == "bytes_per_flow") {
      cfg.bytes_per_flow = parse_u64(value, key);
    } else if (key == "seed") {
      cfg.seed = parse_u64(value, key);
    } else if (key == "epochs") {
      cfg.epochs = parse_u64(value, key);
    } else {
      throw std::invalid_argument("capture source spec: unknown trace option '" +
                                  std::string(key) + "'");
    }
  }
  return std::make_unique<TraceSource>(cfg);
}

std::unique_ptr<CaptureSource> open_afpacket(std::string_view body) {
  const SpecBody spec = split_spec_body(body);
  if (spec.head.empty()) {
    throw std::invalid_argument("capture source spec: afpacket needs an interface");
  }
  AfPacketConfig cfg;
  cfg.interface = std::string(spec.head);
  for (const auto& [key, value] : spec.options) {
    if (key == "blocks") {
      cfg.block_count = parse_u64(value, key);
    } else if (key == "block_kb") {
      cfg.block_size = parse_u64(value, key) * 1024;
    } else if (key == "fanout") {
      cfg.fanout_group = static_cast<std::uint16_t>(parse_u64(value, key));
    } else {
      throw std::invalid_argument(
          "capture source spec: unknown afpacket option '" + std::string(key) + "'");
    }
  }
  return std::make_unique<AfPacketSource>(cfg);
}

}  // namespace

std::string describe_capture_stats(const CaptureSource& source) {
  const CaptureStats s = source.stats();
  std::ostringstream out;
  out << "capture[" << source.kind() << "]: packets=" << s.packets
      << " bytes=" << s.bytes << " kernel_drops=" << s.kernel_drops
      << " ring_full=" << s.ring_full << " truncated=" << s.truncated
      << " skipped=" << s.skipped;
  if (s.ring_occupancy > 0.0) {
    out << " ring_occupancy=" << s.ring_occupancy;
  }
  return out.str();
}

std::unique_ptr<CaptureSource> open_source(std::string_view spec) {
  if (spec.empty()) {
    throw std::invalid_argument("capture source spec: empty");
  }
  const std::size_t colon = spec.find(':');
  // No scheme tag (or a path like C:\...): treat the whole spec as a pcap
  // path for backward compatibility with positional file arguments.
  const std::string_view scheme =
      colon == std::string_view::npos ? std::string_view{} : spec.substr(0, colon);
  const std::string_view body =
      colon == std::string_view::npos ? spec : spec.substr(colon + 1);

  if (scheme == "pcap") {
    return std::make_unique<PcapFileSource>(PcapFileSource::open(std::string(body)));
  }
  if (scheme == "trace") return open_trace(body);
  if (scheme == "afpacket") return open_afpacket(body);
  if (scheme == "afxdp") {
    AfXdpConfig cfg;
    cfg.interface = std::string(split_spec_body(body).head);
    return std::make_unique<AfXdpSource>(cfg);
  }
  if (scheme.empty()) {
    return std::make_unique<PcapFileSource>(PcapFileSource::open(std::string(spec)));
  }
  throw std::invalid_argument("capture source spec: unknown scheme '" +
                              std::string(scheme) + "' (expected pcap|trace|afpacket)");
}

}  // namespace vpm::capture
