#include "capture/mock_ring.hpp"

#include <atomic>
#include <cstring>
#include <stdexcept>

#include "net/frame.hpp"

namespace vpm::capture {

MockRing::MockRing(std::size_t block_size, std::size_t block_count)
    : ring_(block_size * block_count, 0),
      block_size_(block_size),
      block_count_(block_count) {
  if (block_count == 0 || block_size < sizeof(tpacket::BlockDesc) + 64) {
    throw std::invalid_argument("MockRing: implausible ring geometry");
  }
}

bool MockRing::kernel_owns(std::size_t i) const {
  return (std::atomic_ref<const std::uint32_t>(block(i)->hdr.block_status)
              .load(std::memory_order_acquire) &
          tpacket::kStatusUser) == 0;
}

std::size_t MockRing::produce_block(std::span<const net::Packet> packets,
                                    std::uint32_t snaplen) {
  if (packets.empty()) return 0;
  if (!kernel_owns(head_)) {
    // Walker still holds the next block: the ring is full.  The kernel
    // counts every undeliverable frame in tp_drops and bumps freeze_q_cnt
    // once per congestion episode.
    drops_ += packets.size();
    if (!frozen_) {
      ++freezes_;
      frozen_ = true;
    }
    return 0;
  }
  frozen_ = false;

  tpacket::BlockDesc* bd = block(head_);
  std::uint8_t* base = reinterpret_cast<std::uint8_t*>(bd);
  // Scratch encode buffer reused per frame.
  util::Bytes frame_bytes;

  const std::size_t first_off = tpacket::align_frame(sizeof(tpacket::BlockDesc));
  std::size_t off = first_off;
  std::uint32_t count = 0;
  tpacket::FrameHeader* prev = nullptr;

  for (const net::Packet& p : packets) {
    frame_bytes.clear();
    net::encode_ethernet_frame(frame_bytes, p);
    const std::uint32_t wire_len = static_cast<std::uint32_t>(frame_bytes.size());
    const std::uint32_t cap_len =
        snaplen != 0 && snaplen < wire_len ? snaplen : wire_len;
    const std::size_t need =
        tpacket::align_frame(sizeof(tpacket::FrameHeader) + cap_len);
    if (off + need > block_size_) break;  // block full; rest goes to the next

    auto* fh = reinterpret_cast<tpacket::FrameHeader*>(base + off);
    std::memset(fh, 0, sizeof(*fh));
    fh->tp_sec = static_cast<std::uint32_t>(p.timestamp_us / 1000000);
    fh->tp_nsec = static_cast<std::uint32_t>((p.timestamp_us % 1000000) * 1000);
    fh->tp_snaplen = cap_len;
    fh->tp_len = wire_len;
    fh->tp_status = tpacket::kStatusUser;
    fh->tp_mac = static_cast<std::uint16_t>(sizeof(tpacket::FrameHeader));
    fh->tp_net = fh->tp_mac + net::kEthHeaderLen;
    std::memcpy(base + off + fh->tp_mac, frame_bytes.data(), cap_len);

    if (prev != nullptr) {
      prev->tp_next_offset = static_cast<std::uint32_t>((base + off) -
                                                        reinterpret_cast<std::uint8_t*>(prev));
    }
    prev = fh;
    off += need;
    ++count;
  }
  if (count == 0) {
    // Nothing fit (frame larger than a block): drop rather than wedge.
    drops_ += packets.size();
    return 0;
  }
  // Last frame terminates the chain, kernel-style.
  prev->tp_next_offset = 0;

  bd->version = 1;
  bd->offset_to_priv = 0;
  bd->hdr.num_pkts = count;
  bd->hdr.offset_to_first_pkt = static_cast<std::uint32_t>(first_off);
  bd->hdr.blk_len = static_cast<std::uint32_t>(off);
  bd->hdr.seq_num = ++seq_;
  bd->hdr.ts_first_pkt = {static_cast<std::uint32_t>(packets[0].timestamp_us / 1000000),
                          0};
  bd->hdr.ts_last_pkt = {
      static_cast<std::uint32_t>(packets[count - 1].timestamp_us / 1000000), 0};
  // Publish: everything written above must be visible before the status
  // flip — the same release edge the kernel provides.
  std::atomic_ref<std::uint32_t>(bd->hdr.block_status)
      .store(tpacket::kStatusUser, std::memory_order_release);
  head_ = (head_ + 1) % block_count_;
  return count;
}

}  // namespace vpm::capture
