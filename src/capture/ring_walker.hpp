// TPACKET_V3 block walker: the user-space half of the AF_PACKET mmap ring
// protocol, factored out of AfPacketSource so the identical code runs in CI
// against the in-process MockRing (no root, no NIC).
//
// Protocol: the ring is block_count fixed-size blocks.  The kernel fills a
// block with frames, stamps num_pkts/offset_to_first_pkt, and flips
// block_status to TP_STATUS_USER (release); the walker consumes blocks IN
// ORDER (the kernel retires them in order), walks the frame chain via
// tp_next_offset, and flips the block back to TP_STATUS_KERNEL (release)
// when done — holding a block too long is what makes the kernel drop
// (tp_drops) and freeze (freeze_q_cnt).  A poll() bounded by max_packets may
// stop mid-block; the walker resumes exactly where it left off and releases
// the block only after its last frame.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "capture/tpacket.hpp"
#include "net/packet.hpp"

namespace vpm::capture {

struct RingWalkStats {
  std::uint64_t frames = 0;     // decoded frames delivered
  std::uint64_t bytes = 0;      // payload bytes delivered
  std::uint64_t truncated = 0;  // frames with tp_snaplen < tp_len (payload
                                // clamped to the captured prefix)
  std::uint64_t skipped = 0;    // undecodable frames (non-IPv4, mangled)
  std::uint64_t blocks = 0;     // blocks consumed and released
  std::uint64_t losing = 0;     // frames flagged TP_STATUS_LOSING
};

class RingWalker {
 public:
  // `ring` is block_count contiguous blocks of block_size bytes (the mmap
  // region, or the mock's buffer).  The walker does not own it.
  RingWalker(std::uint8_t* ring, std::size_t block_size, std::size_t block_count);

  // Consumes ready blocks, appending up to max_packets decoded packets to
  // `out`.  Returns the number appended; 0 = no block ready (caller decides
  // whether to ::poll the fd or spin).
  std::size_t poll(std::vector<net::Packet>& out, std::size_t max_packets);

  // Fraction of blocks currently user-owned (ready or being walked) — the
  // ring-occupancy gauge; near 1.0 means the walker is the bottleneck and
  // kernel drops are imminent.
  double occupancy() const;

  const RingWalkStats& stats() const { return stats_; }

 private:
  tpacket::BlockDesc* block(std::size_t i) const {
    return reinterpret_cast<tpacket::BlockDesc*>(ring_ + i * block_size_);
  }

  std::uint8_t* ring_;
  std::size_t block_size_;
  std::size_t block_count_;
  std::size_t current_ = 0;  // next block to consume (kernel retires in order)
  // Mid-block resume state: frames remaining and the current frame's offset
  // within the block; frames_left_ == 0 means no block is being walked.
  std::uint32_t frames_left_ = 0;
  std::uint32_t frame_offset_ = 0;
  RingWalkStats stats_;
};

}  // namespace vpm::capture
