#include "capture/topology.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#if defined(__linux__)
#include <sched.h>
#endif

namespace vpm::capture {

namespace {

// Reads a one-line sysfs file; empty string when unreadable.
std::string read_line(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::string line;
  std::getline(in, line);
  return line;
}

}  // namespace

std::optional<std::vector<int>> parse_cpu_list(std::string_view text) {
  // Trim trailing whitespace/newline the kernel appends.
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  std::vector<int> cpus;
  if (text.empty()) return cpus;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string_view item = text.substr(pos, comma - pos);
    const std::size_t dash = item.find('-');
    const auto parse_int = [](std::string_view s, int& out) {
      if (s.empty()) return false;
      int v = 0;
      for (char c : s) {
        if (c < '0' || c > '9') return false;
        v = v * 10 + (c - '0');
        if (v > 1 << 20) return false;  // implausible CPU id
      }
      out = v;
      return true;
    };
    int lo = 0;
    int hi = 0;
    if (dash == std::string_view::npos) {
      if (!parse_int(item, lo)) return std::nullopt;
      hi = lo;
    } else {
      if (!parse_int(item.substr(0, dash), lo) ||
          !parse_int(item.substr(dash + 1), hi) || hi < lo) {
        return std::nullopt;
      }
    }
    for (int c = lo; c <= hi; ++c) cpus.push_back(c);
    pos = comma + 1;
    if (comma == text.size()) break;
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

int CpuTopology::node_of(int cpu) const {
  for (const Node& n : nodes) {
    if (std::binary_search(n.cpus.begin(), n.cpus.end(), cpu)) return n.id;
  }
  return -1;
}

std::vector<int> CpuTopology::all_cpus() const {
  std::vector<int> out;
  for (const Node& n : nodes) out.insert(out.end(), n.cpus.begin(), n.cpus.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<int> CpuTopology::interleaved_cpus() const {
  std::vector<int> out;
  std::size_t rank = 0;
  for (bool any = true; any; ++rank) {
    any = false;
    for (const Node& n : nodes) {
      if (rank < n.cpus.size()) {
        out.push_back(n.cpus[rank]);
        any = true;
      }
    }
  }
  return out;
}

CpuTopology CpuTopology::detect_at(const std::string& root) {
  CpuTopology topo;
  const auto node_ids =
      parse_cpu_list(read_line(root + "/devices/system/node/online"));
  if (node_ids && !node_ids->empty()) {
    for (int id : *node_ids) {
      const auto cpus = parse_cpu_list(read_line(
          root + "/devices/system/node/node" + std::to_string(id) + "/cpulist"));
      if (!cpus || cpus->empty()) continue;
      topo.nodes.push_back(Node{id, *cpus});
    }
  }
  if (topo.nodes.empty()) {
    // No NUMA sysfs: one node holding every online CPU.
    const auto cpus = parse_cpu_list(read_line(root + "/devices/system/cpu/online"));
    Node n;
    n.cpus = (cpus && !cpus->empty()) ? *cpus : std::vector<int>{0};
    topo.nodes.push_back(std::move(n));
  }
  return topo;
}

CpuTopology CpuTopology::detect() { return detect_at("/sys"); }

bool pin_current_thread(int cpu) {
#if defined(__linux__)
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace vpm::capture
