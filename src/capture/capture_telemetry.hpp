// Capture-stage metrics: one vpm_capture_* family per CaptureStats counter,
// labelled {source=<kind>}, plus the ring-occupancy gauge.  Handles are
// registered once at attach; publish() is a handful of relaxed stores of
// the source's monotonic totals (Counter::set publication, same scheme as
// the worker counters in pipeline_metrics).
#pragma once

#include "capture/source.hpp"
#include "telemetry/metrics.hpp"

namespace vpm::capture {

class CaptureTelemetry {
 public:
  // Registers the vpm_capture_* series for `kind` ("pcap", "trace",
  // "afpacket") in `registry`.  The registry must outlive this object.
  CaptureTelemetry(telemetry::MetricsRegistry& registry, std::string_view kind);

  // Snapshots the source's stats into the registered series.  Call from the
  // thread that polls the source (single-writer Counter::set contract).
  void publish(const CaptureSource& source);

 private:
  telemetry::Counter* packets_;
  telemetry::Counter* bytes_;
  telemetry::Counter* kernel_drops_;
  telemetry::Counter* ring_full_;
  telemetry::Counter* truncated_;
  telemetry::Counter* skipped_;
  telemetry::Gauge* ring_occupancy_;
};

}  // namespace vpm::capture
