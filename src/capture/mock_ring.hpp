// In-process TPACKET_V3 "kernel": builds real ring-block layouts (the same
// BlockDesc/FrameHeader ABI the kernel writes) from synthetic packets, so
// RingWalker's frame walk, mid-block resume, block release, truncation
// clamp, and drop accounting all run deterministically in CI without root,
// a NIC, or even Linux.
//
// It plays the kernel's side of the protocol: fill the next block only when
// the walker has released it (block_status back to TP_STATUS_KERNEL);
// otherwise count the offered frames as drops (tp_drops in
// PACKET_STATISTICS terms) and, once per congestion episode, a queue freeze
// (freeze_q_cnt).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "capture/tpacket.hpp"
#include "net/packet.hpp"

namespace vpm::capture {

class MockRing {
 public:
  MockRing(std::size_t block_size, std::size_t block_count);

  std::uint8_t* data() { return ring_.data(); }
  std::size_t block_size() const { return block_size_; }
  std::size_t block_count() const { return block_count_; }

  // Frames as many of `packets` as fit into the next kernel-owned block
  // (encoded via net::encode_ethernet_frame, snaplen-clamped to `snaplen`
  // when nonzero) and publishes the block to the walker.  Returns the number
  // of packets framed: short when the block filled up (offer the rest to the
  // next produce_block call), 0 when the walker still owns the next block —
  // those packets are DROPPED and counted, as the kernel would.
  std::size_t produce_block(std::span<const net::Packet> packets,
                            std::uint32_t snaplen = 0);

  // PACKET_STATISTICS analogue (cumulative, not reset-on-read).
  std::uint64_t drops() const { return drops_; }
  std::uint64_t freezes() const { return freezes_; }

  // True when block i is kernel-owned (released or never filled).
  bool kernel_owns(std::size_t i) const;

 private:
  tpacket::BlockDesc* block(std::size_t i) {
    return reinterpret_cast<tpacket::BlockDesc*>(ring_.data() + i * block_size_);
  }
  const tpacket::BlockDesc* block(std::size_t i) const {
    return reinterpret_cast<const tpacket::BlockDesc*>(ring_.data() + i * block_size_);
  }

  std::vector<std::uint8_t> ring_;  // block_count_ * block_size_, zeroed
  std::size_t block_size_;
  std::size_t block_count_;
  std::size_t head_ = 0;  // next block to fill
  std::uint64_t seq_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t freezes_ = 0;
  bool frozen_ = false;  // inside a congestion episode (dedups freeze count)
};

}  // namespace vpm::capture
