#include "capture/afpacket_source.hpp"

#include <stdexcept>

#if VPM_WITH_AFPACKET

#include <cerrno>
#include <cstddef>
#include <cstring>

#include <arpa/inet.h>
#include <linux/if_ether.h>
#include <linux/if_packet.h>
#include <net/if.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <unistd.h>

#include "capture/ring_walker.hpp"
#include "capture/tpacket.hpp"

namespace vpm::capture {

// Our locally-declared ring ABI (capture/tpacket.hpp, used by the walker and
// the CI mock) must be bit-identical to the kernel's.  Checked here — the
// one TU that sees both — so drift fails this flagged build loudly.
static_assert(sizeof(tpacket::FrameHeader) == sizeof(struct tpacket3_hdr));
static_assert(offsetof(tpacket::FrameHeader, tp_next_offset) ==
              offsetof(struct tpacket3_hdr, tp_next_offset));
static_assert(offsetof(tpacket::FrameHeader, tp_snaplen) ==
              offsetof(struct tpacket3_hdr, tp_snaplen));
static_assert(offsetof(tpacket::FrameHeader, tp_status) ==
              offsetof(struct tpacket3_hdr, tp_status));
static_assert(offsetof(tpacket::FrameHeader, tp_mac) ==
              offsetof(struct tpacket3_hdr, tp_mac));
static_assert(sizeof(tpacket::BlockDesc) == sizeof(struct tpacket_block_desc));
static_assert(offsetof(tpacket::BlockDesc, hdr) ==
              offsetof(struct tpacket_block_desc, hdr));
static_assert(sizeof(tpacket::BlockHeaderV1) == sizeof(struct tpacket_hdr_v1));
static_assert(offsetof(tpacket::BlockHeaderV1, offset_to_first_pkt) ==
              offsetof(struct tpacket_hdr_v1, offset_to_first_pkt));
static_assert(tpacket::kStatusUser == TP_STATUS_USER);
static_assert(tpacket::kStatusKernel == TP_STATUS_KERNEL);
static_assert(tpacket::kFrameAlign == TPACKET_ALIGNMENT);

struct AfPacketSource::Impl {
  int fd = -1;
  std::uint8_t* map = static_cast<std::uint8_t*>(MAP_FAILED);
  std::size_t map_len = 0;
  std::unique_ptr<RingWalker> walker;
  AfPacketConfig cfg;
  // Accumulated PACKET_STATISTICS (the getsockopt is reset-on-read).
  std::uint64_t kernel_drops = 0;
  std::uint64_t freezes = 0;

  ~Impl() {
    if (map != MAP_FAILED) munmap(map, map_len);
    if (fd >= 0) close(fd);
  }

  void harvest_kernel_stats() {
    struct tpacket_stats_v3 st {};
    socklen_t len = sizeof(st);
    if (getsockopt(fd, SOL_PACKET, PACKET_STATISTICS, &st, &len) == 0) {
      kernel_drops += st.tp_drops;
      freezes += st.tp_freeze_q_cnt;
    }
  }
};

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("afpacket: " + what + ": " + std::strerror(errno));
}

}  // namespace

AfPacketSource::AfPacketSource(AfPacketConfig cfg) {
  auto impl = std::make_unique<Impl>();
  impl->cfg = cfg;

  impl->fd = ::socket(AF_PACKET, SOCK_RAW, htons(ETH_P_ALL));
  if (impl->fd < 0) throw_errno("socket(AF_PACKET) (need CAP_NET_RAW)");

  const int version = TPACKET_V3;
  if (setsockopt(impl->fd, SOL_PACKET, PACKET_VERSION, &version, sizeof(version)) != 0) {
    throw_errno("PACKET_VERSION=TPACKET_V3");
  }

  struct tpacket_req3 req {};
  req.tp_block_size = static_cast<unsigned>(cfg.block_size);
  req.tp_block_nr = static_cast<unsigned>(cfg.block_count);
  req.tp_frame_size = static_cast<unsigned>(cfg.frame_size);
  req.tp_frame_nr = static_cast<unsigned>(cfg.block_size / cfg.frame_size *
                                          cfg.block_count);
  req.tp_retire_blk_tov = cfg.retire_timeout_ms;
  req.tp_feature_req_word = 0;
  if (setsockopt(impl->fd, SOL_PACKET, PACKET_RX_RING, &req, sizeof(req)) != 0) {
    throw_errno("PACKET_RX_RING");
  }

  impl->map_len = cfg.block_size * cfg.block_count;
  impl->map = static_cast<std::uint8_t*>(mmap(nullptr, impl->map_len,
                                              PROT_READ | PROT_WRITE,
                                              MAP_SHARED | MAP_LOCKED, impl->fd, 0));
  if (impl->map == MAP_FAILED) {
    // Retry without MAP_LOCKED: RLIMIT_MEMLOCK is commonly tiny.
    impl->map = static_cast<std::uint8_t*>(
        mmap(nullptr, impl->map_len, PROT_READ | PROT_WRITE, MAP_SHARED, impl->fd, 0));
  }
  if (impl->map == MAP_FAILED) throw_errno("mmap ring");

  struct sockaddr_ll addr {};
  addr.sll_family = AF_PACKET;
  addr.sll_protocol = htons(ETH_P_ALL);
  addr.sll_ifindex = static_cast<int>(if_nametoindex(cfg.interface.c_str()));
  if (addr.sll_ifindex == 0) {
    throw std::runtime_error("afpacket: unknown interface: " + cfg.interface);
  }
  if (bind(impl->fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("bind(" + cfg.interface + ")");
  }

  if (cfg.fanout_group != 0) {
    // FANOUT_HASH: the kernel's flow hash is direction-symmetric, so both
    // directions of a connection reach the same ring — the property the
    // pipeline's conn_hash sharding assumes of its input.
    const int fanout = cfg.fanout_group | (PACKET_FANOUT_HASH << 16);
    if (setsockopt(impl->fd, SOL_PACKET, PACKET_FANOUT, &fanout, sizeof(fanout)) != 0) {
      throw_errno("PACKET_FANOUT");
    }
  }

  impl->walker =
      std::make_unique<RingWalker>(impl->map, cfg.block_size, cfg.block_count);
  impl_ = impl.release();
}

AfPacketSource::~AfPacketSource() { delete impl_; }

std::size_t AfPacketSource::poll(std::vector<net::Packet>& out,
                                 std::size_t max_packets) {
  const std::size_t n = impl_->walker->poll(out, max_packets);
  if (n == 0) {
    // No block ready: sleep on the fd until the kernel retires one (or the
    // retire timeout flushes a partial block).
    struct pollfd pfd {};
    pfd.fd = impl_->fd;
    pfd.events = POLLIN | POLLERR;
    ::poll(&pfd, 1, static_cast<int>(impl_->cfg.retire_timeout_ms));
    return impl_->walker->poll(out, max_packets);
  }
  return n;
}

CaptureStats AfPacketSource::stats() const {
  impl_->harvest_kernel_stats();
  const RingWalkStats& ws = impl_->walker->stats();
  CaptureStats s;
  s.packets = ws.frames;
  s.bytes = ws.bytes;
  s.truncated = ws.truncated;
  s.skipped = ws.skipped;
  s.kernel_drops = impl_->kernel_drops;
  s.ring_full = impl_->freezes;
  s.ring_occupancy = impl_->walker->occupancy();
  return s;
}

bool AfPacketSource::supported() { return true; }

}  // namespace vpm::capture

#else  // !VPM_WITH_AFPACKET

namespace vpm::capture {

AfPacketSource::AfPacketSource(AfPacketConfig cfg) {
  throw std::runtime_error(
      "afpacket source '" + cfg.interface +
      "': this build has no AF_PACKET support (configure with "
      "-DVPM_WITH_AFPACKET=ON on Linux)");
}

AfPacketSource::~AfPacketSource() = default;

std::size_t AfPacketSource::poll(std::vector<net::Packet>&, std::size_t) { return 0; }

CaptureStats AfPacketSource::stats() const { return {}; }

bool AfPacketSource::supported() { return false; }

}  // namespace vpm::capture

#endif  // VPM_WITH_AFPACKET
