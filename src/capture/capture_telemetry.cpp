#include "capture/capture_telemetry.hpp"

namespace vpm::capture {

CaptureTelemetry::CaptureTelemetry(telemetry::MetricsRegistry& registry,
                                   std::string_view kind) {
  const telemetry::Labels labels{{"source", std::string(kind)}};
  packets_ = &registry.counter("vpm_capture_packets_total",
                               "Decoded packets delivered by the capture source",
                               labels);
  bytes_ = &registry.counter("vpm_capture_bytes_total",
                             "Payload bytes delivered by the capture source",
                             labels);
  kernel_drops_ = &registry.counter(
      "vpm_capture_kernel_drops_total",
      "Frames dropped by the kernel before the ring (PACKET_STATISTICS tp_drops)",
      labels);
  ring_full_ = &registry.counter(
      "vpm_capture_ring_full_total",
      "Ring congestion episodes (TPACKET_V3 freeze_q_cnt)", labels);
  truncated_ = &registry.counter("vpm_capture_truncated_total",
                                 "Frames clamped to the capture snaplen", labels);
  skipped_ = &registry.counter("vpm_capture_skipped_total",
                               "Undecodable frames or records skipped", labels);
  ring_occupancy_ = &registry.gauge(
      "vpm_capture_ring_occupancy_permille",
      "Ring blocks awaiting the walker, in permille of the ring (0 for "
      "non-ring sources)",
      labels);
}

void CaptureTelemetry::publish(const CaptureSource& source) {
  const CaptureStats s = source.stats();
  packets_->set(s.packets);
  bytes_->set(s.bytes);
  kernel_drops_->set(s.kernel_drops);
  ring_full_->set(s.ring_full);
  truncated_->set(s.truncated);
  skipped_->set(s.skipped);
  ring_occupancy_->set(static_cast<std::int64_t>(s.ring_occupancy * 1000.0));
}

}  // namespace vpm::capture
