// Pcap-file replay as a CaptureSource — the migration target for
// pcap_sensor's bespoke replay loop.  Parses eagerly (a replay file is all
// history; there is nothing to wait for) and serves the decoded packets in
// capture order.
#pragma once

#include <string>

#include "capture/source.hpp"
#include "net/pcap.hpp"

namespace vpm::capture {

class PcapFileSource final : public CaptureSource {
 public:
  // Parses `pcap_bytes` (throws std::invalid_argument on a bad header, like
  // net::read_pcap; malformed records are skipped and counted).
  explicit PcapFileSource(util::Bytes pcap_bytes);

  // Reads and parses the file (std::runtime_error when unreadable).
  static PcapFileSource open(const std::string& path);

  std::size_t poll(std::vector<net::Packet>& out, std::size_t max_packets) override;
  bool exhausted() const override { return cursor_ >= parsed_.packets.size(); }
  std::string_view kind() const override { return "pcap"; }
  CaptureStats stats() const override { return stats_; }

  // The raw file bytes — the sensor's single-threaded inspect_pcap reference
  // path reads the same buffer this source replays.
  const util::Bytes& raw() const { return raw_; }
  std::size_t total_packets() const { return parsed_.packets.size(); }

 private:
  util::Bytes raw_;
  net::PcapParseResult parsed_;
  std::size_t cursor_ = 0;
  CaptureStats stats_;
};

}  // namespace vpm::capture
