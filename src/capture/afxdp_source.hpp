// AF_XDP placeholder.  The zero-copy XSK path (UMEM + fill/completion rings
// + an XDP redirect program) is a larger dependency surface than AF_PACKET —
// libxdp or hand-rolled ring management plus a loaded BPF object.  This stub
// reserves the source kind and the build flag (VPM_WITH_AFXDP, compile-
// tested only) so the sensor's --source grammar and the CMake wiring are
// already in place when the real implementation lands; the constructor
// always throws.
#pragma once

#include <string>

#include "capture/source.hpp"

namespace vpm::capture {

struct AfXdpConfig {
  std::string interface;
  std::uint32_t queue_id = 0;
};

class AfXdpSource final : public CaptureSource {
 public:
  // Always throws std::runtime_error ("not implemented" under
  // VPM_WITH_AFXDP, "built without" otherwise).
  explicit AfXdpSource(AfXdpConfig cfg);

  std::size_t poll(std::vector<net::Packet>& out, std::size_t max_packets) override;
  bool exhausted() const override { return false; }
  std::string_view kind() const override { return "afxdp"; }
  CaptureStats stats() const override { return {}; }

  static bool supported() { return false; }
};

}  // namespace vpm::capture
