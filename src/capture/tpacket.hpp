// TPACKET_V3 ring ABI, declared locally so the frame-walk logic and the mock
// kernel ring compile (and run in CI) on any host, with or without
// <linux/if_packet.h>.  The real AF_PACKET TU (afpacket_source.cpp under
// VPM_WITH_AFPACKET) static_asserts these layouts against the kernel
// headers, so drift fails the flagged build instead of corrupting a ring.
//
// Layout reference: struct tpacket_block_desc / tpacket_hdr_v1 /
// tpacket3_hdr in the kernel's if_packet.h.  All fields are host-endian
// (the kernel fills them; no byte swapping on either side).
#pragma once

#include <cstddef>
#include <cstdint>

namespace vpm::capture::tpacket {

// Block/frame ownership bits (tp_status / block_status).
inline constexpr std::uint32_t kStatusKernel = 0;        // TP_STATUS_KERNEL
inline constexpr std::uint32_t kStatusUser = 1u << 0;    // TP_STATUS_USER
inline constexpr std::uint32_t kStatusLosing = 1u << 2;  // TP_STATUS_LOSING:
// set by the kernel on frames delivered while the socket was dropping —
// the walker's cue to re-read PACKET_STATISTICS promptly.

struct BdTimestamp {  // struct tpacket_bd_ts
  std::uint32_t ts_sec;
  std::uint32_t ts_usec_or_nsec;
};

struct BlockHeaderV1 {  // struct tpacket_hdr_v1
  std::uint32_t block_status;        // kStatusKernel <-> kStatusUser handoff
  std::uint32_t num_pkts;
  std::uint32_t offset_to_first_pkt;  // from the block descriptor's start
  std::uint32_t blk_len;
  std::uint64_t seq_num;
  BdTimestamp ts_first_pkt;
  BdTimestamp ts_last_pkt;
};

struct BlockDesc {  // struct tpacket_block_desc
  std::uint32_t version;  // always 1 (TPACKET_V3's bh1)
  std::uint32_t offset_to_priv;
  BlockHeaderV1 hdr;
};

struct FrameHeader {  // struct tpacket3_hdr
  std::uint32_t tp_next_offset;  // to the next frame in the block; 0 = last
  std::uint32_t tp_sec;
  std::uint32_t tp_nsec;
  std::uint32_t tp_snaplen;  // captured bytes (<= tp_len when snap-cut)
  std::uint32_t tp_len;      // on-wire bytes
  std::uint32_t tp_status;
  std::uint16_t tp_mac;  // frame start, offset from this header
  std::uint16_t tp_net;
  // union tpacket_hdr_variant1 hv1
  std::uint32_t hv1_rxhash;
  std::uint32_t hv1_vlan_tci;
  std::uint16_t hv1_vlan_tpid;
  std::uint16_t hv1_padding;
  std::uint8_t tp_padding[8];
};

static_assert(sizeof(BlockHeaderV1) == 40, "tpacket_hdr_v1 ABI drift");
static_assert(sizeof(BlockDesc) == 48, "tpacket_block_desc ABI drift");
static_assert(sizeof(FrameHeader) == 48, "tpacket3_hdr ABI drift");
static_assert(offsetof(FrameHeader, tp_mac) == 24, "tpacket3_hdr ABI drift");

// The kernel aligns each frame header to TPACKET_ALIGNMENT (16).
inline constexpr std::size_t kFrameAlign = 16;
inline constexpr std::size_t align_frame(std::size_t n) {
  return (n + kFrameAlign - 1) & ~(kFrameAlign - 1);
}

}  // namespace vpm::capture::tpacket
