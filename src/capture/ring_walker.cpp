#include "capture/ring_walker.hpp"

#include <atomic>

#include "net/frame.hpp"

namespace vpm::capture {

namespace {

// The block_status handoff is the one cross-thread edge of the ring
// protocol: the kernel's status write releases the filled block, our
// acquire load pairs with it (and vice versa on release back).  atomic_ref
// keeps the mmap'd field a plain uint32 in the struct layout.
std::uint32_t load_status(tpacket::BlockDesc* bd) {
  return std::atomic_ref<std::uint32_t>(bd->hdr.block_status)
      .load(std::memory_order_acquire);
}

void store_status(tpacket::BlockDesc* bd, std::uint32_t status) {
  std::atomic_ref<std::uint32_t>(bd->hdr.block_status)
      .store(status, std::memory_order_release);
}

}  // namespace

RingWalker::RingWalker(std::uint8_t* ring, std::size_t block_size,
                       std::size_t block_count)
    : ring_(ring), block_size_(block_size), block_count_(block_count) {}

std::size_t RingWalker::poll(std::vector<net::Packet>& out, std::size_t max_packets) {
  std::size_t delivered = 0;
  while (delivered < max_packets) {
    tpacket::BlockDesc* bd = block(current_);
    if (frames_left_ == 0) {
      // Start of a block: only consume once the kernel has handed it over.
      if ((load_status(bd) & tpacket::kStatusUser) == 0) break;
      frames_left_ = bd->hdr.num_pkts;
      frame_offset_ = bd->hdr.offset_to_first_pkt;
      if (frames_left_ == 0) {
        // Timeout-retired empty block (retire_blk_tov): release and move on.
        store_status(bd, tpacket::kStatusKernel);
        ++stats_.blocks;
        current_ = (current_ + 1) % block_count_;
        continue;
      }
    }
    std::uint8_t* base = reinterpret_cast<std::uint8_t*>(bd);
    while (frames_left_ > 0 && delivered < max_packets) {
      auto* fh = reinterpret_cast<tpacket::FrameHeader*>(base + frame_offset_);
      if ((fh->tp_status & tpacket::kStatusLosing) != 0) ++stats_.losing;
      net::Packet pkt;
      const std::uint8_t* frame =
          reinterpret_cast<const std::uint8_t*>(fh) + fh->tp_mac;
      // Snaplen clamp is routine here (clamp_truncated): a frame cut by the
      // capture length still yields its payload prefix for scanning.
      const net::FrameDecode dec =
          net::decode_ethernet_frame(frame, fh->tp_snaplen,
                                     /*clamp_truncated=*/true, pkt);
      if (dec == net::FrameDecode::malformed) {
        ++stats_.skipped;
      } else {
        if (dec == net::FrameDecode::truncated || fh->tp_snaplen < fh->tp_len) {
          ++stats_.truncated;
        }
        pkt.timestamp_us =
            static_cast<std::uint64_t>(fh->tp_sec) * 1000000 + fh->tp_nsec / 1000;
        stats_.bytes += pkt.payload.size();
        ++stats_.frames;
        out.push_back(std::move(pkt));
        ++delivered;
      }
      --frames_left_;
      frame_offset_ += fh->tp_next_offset;
    }
    if (frames_left_ == 0) {
      // Block fully walked: hand it back to the kernel.
      store_status(bd, tpacket::kStatusKernel);
      ++stats_.blocks;
      current_ = (current_ + 1) % block_count_;
    }
  }
  return delivered;
}

double RingWalker::occupancy() const {
  std::size_t user_owned = 0;
  for (std::size_t i = 0; i < block_count_; ++i) {
    if ((load_status(block(i)) & tpacket::kStatusUser) != 0) ++user_owned;
  }
  // A block mid-walk has already been counted via its USER bit (we clear it
  // only on release).
  return block_count_ == 0
             ? 0.0
             : static_cast<double>(user_owned) / static_cast<double>(block_count_);
}

}  // namespace vpm::capture
