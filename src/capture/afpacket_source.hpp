// Live capture from a network interface via AF_PACKET TPACKET_V3 mmap RX
// rings.  The kernel DMA-fills ring blocks; RingWalker (shared with the mock
// ring) consumes them — zero copies between kernel hand-off and frame
// decode.  PACKET_FANOUT_HASH spreads flows across the sockets of a fanout
// group (one AfPacketSource per capture thread, same group id), keyed so
// both directions of a connection land on one socket — matching the
// pipeline's conn_hash sharding.
//
// The real implementation is compiled under -DVPM_WITH_AFPACKET=1 (CMake
// option VPM_WITH_AFPACKET; needs Linux + CAP_NET_RAW at runtime).  Without
// it this header still compiles everywhere and the constructor throws — so
// callers (pcap_sensor --source=afpacket:...) fail with a clear message
// instead of an ifdef maze.
#pragma once

#include <string>

#include "capture/source.hpp"

namespace vpm::capture {

struct AfPacketConfig {
  std::string interface;            // e.g. "eth0"
  std::size_t block_size = 1 << 20;  // bytes per ring block (page multiple)
  std::size_t block_count = 64;      // ring blocks (64 MiB ring by default)
  std::size_t frame_size = 2048;     // tp_frame_size hint
  unsigned retire_timeout_ms = 60;   // retire_blk_tov: max block latency
  // PACKET_FANOUT group id; 0 = no fanout (single-socket capture).  All
  // sockets of one group must use the same id; mode is FANOUT_HASH.
  std::uint16_t fanout_group = 0;
};

class AfPacketSource final : public CaptureSource {
 public:
  // Opens the socket, maps the ring, binds, joins the fanout group.  Throws
  // std::runtime_error on any failure — including "built without
  // VPM_WITH_AFPACKET".
  explicit AfPacketSource(AfPacketConfig cfg);
  ~AfPacketSource() override;

  AfPacketSource(const AfPacketSource&) = delete;
  AfPacketSource& operator=(const AfPacketSource&) = delete;

  std::size_t poll(std::vector<net::Packet>& out, std::size_t max_packets) override;
  bool exhausted() const override { return false; }  // live source
  std::string_view kind() const override { return "afpacket"; }
  CaptureStats stats() const override;

  // True when this build carries the real implementation.
  static bool supported();

 private:
  struct Impl;
  Impl* impl_ = nullptr;
};

}  // namespace vpm::capture
