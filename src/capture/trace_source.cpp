#include "capture/trace_source.hpp"

#include <algorithm>
#include <stdexcept>

namespace vpm::capture {

TraceSource::TraceSource(TraceConfig cfg) : cfg_(std::move(cfg)) {
  net::FlowGenConfig gen;
  gen.flow_count = cfg_.flows == 0 ? 1 : cfg_.flows;
  gen.bytes_per_flow = cfg_.bytes_per_flow;
  gen.seed = cfg_.seed;
  if (cfg_.profile == "mixed") {
    gen.reorder_fraction = 0.05;
  } else if (cfg_.profile == "evasion") {
    gen.evasion = true;
  } else {
    throw std::invalid_argument("trace source: unknown profile '" + cfg_.profile +
                                "' (mixed|evasion)");
  }
  base_ = net::generate_flows(gen);
  if (base_.packets.empty()) {
    throw std::invalid_argument("trace source: profile generated no packets");
  }
  // Epochs must not overlap in capture time: shift each by the base span
  // plus a gap larger than any idle timeout granularity we soak with.
  std::uint64_t max_ts = 0;
  for (const net::Packet& p : base_.packets) max_ts = std::max(max_ts, p.timestamp_us);
  epoch_span_us_ = max_ts + 1000;
}

std::size_t TraceSource::poll(std::vector<net::Packet>& out, std::size_t max_packets) {
  std::size_t n = 0;
  while (n < max_packets && !exhausted()) {
    net::Packet p = base_.packets[cursor_];
    if (epoch_ > 0) {
      // Fresh flows each epoch: remapped (synthetic) endpoint addresses make
      // every tuple new, while ports — and therefore rule-group
      // classification — stay identical to the base epoch.  XORing BOTH
      // addresses keeps a connection's two directions paired (reversed()
      // still maps c2s onto s2c) so evasion-mode epochs reassemble exactly
      // like the base epoch.
      const auto mix = static_cast<std::uint32_t>(epoch_ * 0x9E3779B1u);
      p.tuple.src_ip ^= mix;
      p.tuple.dst_ip ^= mix;
      p.timestamp_us += epoch_ * epoch_span_us_;
    }
    stats_.bytes += p.payload.size();
    ++stats_.packets;
    out.push_back(std::move(p));
    ++n;
    if (++cursor_ >= base_.packets.size()) {
      cursor_ = 0;
      ++epoch_;
    }
  }
  return n;
}

}  // namespace vpm::capture
