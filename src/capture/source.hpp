// The ingestion abstraction: every way packets enter the pipeline —
// pcap-file replay, generated traces, AF_PACKET rings — is a CaptureSource
// the sensor pulls decoded-Packet batches from.  One interface means the
// submit loop, the capture telemetry, and the differential tests are
// identical across sources; a source differs only in where bytes come from
// and which loss counters can move.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/packet.hpp"

namespace vpm::capture {

// Per-source counters, all monotonic except ring_occupancy.  Exported as
// vpm_capture_*_total by CaptureTelemetry and printed by
// describe_capture_stats.
struct CaptureStats {
  std::uint64_t packets = 0;       // decoded packets delivered to the caller
  std::uint64_t bytes = 0;         // payload bytes delivered
  std::uint64_t kernel_drops = 0;  // frames the kernel dropped before the ring
                                   // (PACKET_STATISTICS tp_drops; mock-ring
                                   // producer overruns)
  std::uint64_t ring_full = 0;     // ring-congestion episodes (TPACKET_V3
                                   // freeze_q_cnt; mock block-unavailable)
  std::uint64_t truncated = 0;     // frames clamped to the capture snaplen
  std::uint64_t skipped = 0;       // undecodable frames/records
  double ring_occupancy = 0.0;     // gauge 0..1: ring blocks awaiting the
                                   // walker (0 for non-ring sources)
};

class CaptureSource {
 public:
  virtual ~CaptureSource() = default;

  // Appends up to `max_packets` decoded packets to `out` (existing contents
  // untouched).  Returns the number appended; 0 means nothing available
  // right now — poll again unless exhausted().  Non-blocking for ring
  // sources (the sensor loop owns the wait policy).
  virtual std::size_t poll(std::vector<net::Packet>& out, std::size_t max_packets) = 0;

  // True once the source can never produce again (end of file / trace
  // epochs).  Live sources never exhaust.
  virtual bool exhausted() const = 0;

  // Stable source kind ("pcap", "trace", "afpacket") — the telemetry label.
  virtual std::string_view kind() const = 0;

  virtual CaptureStats stats() const = 0;
};

// One human line of a source's counters (the describe_pipeline_stats
// companion): "capture[pcap]: packets=... bytes=... kernel_drops=0 ...".
std::string describe_capture_stats(const CaptureSource& source);

// Parses a --source spec and opens it:
//   pcap:FILE                              replay FILE (bare paths work too)
//   trace:PROFILE[,key=N...]               generated traffic; PROFILE is
//                                          mixed|evasion; keys: flows, mb,
//                                          seed, epochs (0 = endless)
//   afpacket:IFACE[,blocks=N,block_kb=N,fanout=ID]
// Throws std::invalid_argument on a malformed spec, std::runtime_error when
// the source cannot be opened (missing file; afpacket without
// VPM_WITH_AFPACKET or without CAP_NET_RAW).
std::unique_ptr<CaptureSource> open_source(std::string_view spec);

}  // namespace vpm::capture
