// The sharded multi-worker IDS runtime.
//
// Usage:
//   pipeline::PipelineConfig cfg;
//   cfg.workers = 4;
//   pipeline::PipelineRuntime rt(rules, cfg);
//   rt.start();
//   for (net::Packet& p : packets) rt.submit(std::move(p));
//   rt.stop();                       // flush + drain + join
//   use rt.alerts(), rt.stats();
//
// Determinism contract: with eviction and the drop policy disabled, the
// union of all workers' alerts is the same multiset a single-threaded
// IdsEngine fed by one TcpReassembler would produce over the same packets
// (flow ids are flow_key(tuple) in both cases) — flows never split across
// workers and per-flow order is preserved through the FIFO rings.  The
// differential test suite enforces this across worker counts and algorithms.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "ids/alert.hpp"
#include "pipeline/config.hpp"
#include "pipeline/shard_router.hpp"
#include "pipeline/stats.hpp"
#include "pipeline/worker.hpp"

namespace vpm::pipeline {

class PipelineRuntime {
 public:
  // Builds one engine per worker over `rules` (which must outlive the
  // runtime).  Worker counts are clamped to >= 1.
  PipelineRuntime(const pattern::PatternSet& rules, PipelineConfig cfg = {});
  ~PipelineRuntime();  // stops and joins if still running

  PipelineRuntime(const PipelineRuntime&) = delete;
  PipelineRuntime& operator=(const PipelineRuntime&) = delete;

  // Spawns the worker threads.  One-shot: a runtime is started once.
  void start();

  // Routes one packet to its flow's shard.  Single-producer: submit(),
  // flush() and stop() must all be called from one thread.  Returns false
  // when the drop backpressure policy discarded a batch during this call —
  // the discarded batch may also contain earlier buffered packets, and a
  // packet accepted now can still be dropped by a later batch push or
  // flush(), so per-packet loss accounting must use
  // stats().dropped_backpressure, not the return values.
  bool submit(net::Packet packet);

  // Convenience bulk submit (copies).  Returns packets.size() minus the
  // packets the drop policy discarded while this call ran (batch
  // granularity; same caveats as the single-packet overload).
  std::size_t submit(std::span<const net::Packet> packets);

  // Pushes partially filled batches without stopping.
  void flush();

  // Drains: flushes, lets every worker consume its ring to empty, joins the
  // threads, and gathers alerts.  Idempotent.
  void stop();

  bool running() const { return running_; }
  const PipelineConfig& config() const { return cfg_; }
  unsigned workers() const { return static_cast<unsigned>(workers_.size()); }

  // Counter snapshot; callable from any thread, before, during or after the
  // run.
  PipelineStats stats() const;

  // All workers' alerts concatenated (worker-major order).  Valid after
  // stop(); empty when cfg.alert_sink routed alerts elsewhere.
  const std::vector<ids::Alert>& alerts() const { return alerts_; }

 private:
  PipelineConfig cfg_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<ShardRouter> router_;
  std::vector<ids::Alert> alerts_;
  std::atomic<std::uint64_t> submitted_{0};
  bool running_ = false;
  bool stopped_ = false;
};

}  // namespace vpm::pipeline
