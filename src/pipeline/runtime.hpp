// The sharded multi-worker IDS runtime.
//
// Usage:
//   auto db = vpm::compile(core::Algorithm::vpatch, rules);  // rules may die
//   pipeline::PipelineConfig cfg;
//   cfg.workers = 4;
//   pipeline::PipelineRuntime rt(db, cfg);
//   rt.start();
//   for (net::Packet& p : packets) rt.submit(std::move(p));
//   rt.swap_database(new_db);        // zero-drop ruleset hot-swap, any time
//   rt.stop();                       // flush + drain + join
//   use rt.alerts(), rt.stats();     // alerts carry their ruleset generation
//
// Determinism contract: with eviction and the drop policy disabled, the
// union of all workers' alerts is the same multiset a single-threaded
// IdsEngine fed by one TcpReassembler would produce over the same packets
// (flow ids are flow_key(tuple) in both cases) — flows never split across
// workers and per-flow order is preserved through the FIFO rings.  The
// differential test suite enforces this across worker counts and algorithms.
//
// Hot-swap contract: swap_database() compiles the new grouped ruleset on the
// calling thread (control plane), publishes it RCU-style (shared_ptr store +
// sequence bump; no locks on the scan path), and every worker adopts it at a
// batch boundary.  No packet is dropped by a swap: packets in flight finish
// under the generation that was current when their batch was popped, and
// every alert is tagged with the generation that produced it.  A swap is a
// clean stream boundary (per-flow carry resets), so a pattern spanning the
// swap point is attributed to neither generation.  The old generation's
// compiled tables are freed when the last worker adopts the new one.  For an
// exact packet partition between generations, quiesce() before swapping —
// pipeline_swap_test pins that recipe against single-threaded references.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "core/database.hpp"
#include "ids/alert.hpp"
#include "pipeline/config.hpp"
#include "pipeline/shard_router.hpp"
#include "pipeline/stats.hpp"
#include "pipeline/watchdog.hpp"
#include "pipeline/worker.hpp"

namespace vpm::pipeline {

class PipelineRuntime {
 public:
  // Builds the shared grouped ruleset from `db` (one compile, shared
  // read-only by every worker — not one compile per worker) and one
  // reassembler/engine pair per worker.  cfg.algorithm is ignored on this
  // path (the database fixes the engine).  Worker counts are clamped to
  // >= 1.
  PipelineRuntime(DatabasePtr db, PipelineConfig cfg = {});

  // Legacy shim: compiles from a caller-owned PatternSet with
  // cfg.algorithm; the set is copied during construction and not referenced
  // afterwards.  Alerts carry generation 0 on this path (matching the
  // legacy single-threaded IdsEngine(rules, cfg) reference).
  PipelineRuntime(const pattern::PatternSet& rules, PipelineConfig cfg = {});

  ~PipelineRuntime();  // stops and joins if still running

  PipelineRuntime(const PipelineRuntime&) = delete;
  PipelineRuntime& operator=(const PipelineRuntime&) = delete;

  // Spawns the worker threads.  One-shot: a runtime is started once.
  void start();

  // Routes one packet to its flow's shard.  Single-producer: submit(),
  // flush() and stop() must all be called from one thread.  Returns false
  // when the drop backpressure policy discarded a batch during this call —
  // the discarded batch may also contain earlier buffered packets, and a
  // packet accepted now can still be dropped by a later batch push or
  // flush(), so per-packet loss accounting must use
  // stats().dropped_backpressure, not the return values.
  bool submit(net::Packet packet);

  // Convenience bulk submit (copies).  Returns packets.size() minus the
  // packets the drop policy discarded while this call ran (batch
  // granularity; same caveats as the single-packet overload).
  std::size_t submit(std::span<const net::Packet> packets);

  // Pushes partially filled batches without stopping.
  void flush();

  // Publishes a new compiled database to every worker (zero-drop ruleset
  // hot-swap).  Compiles the grouped ruleset here, on the calling thread;
  // workers adopt at their next batch boundary.  Callable from any thread,
  // before or while running; with concurrent callers the last publication
  // wins.  Throws std::invalid_argument on a null database.
  void swap_database(DatabasePtr db);

  // The most recently published ruleset generation (workers may briefly lag
  // until their next batch boundary; per-worker adoption is visible in
  // stats().workers[i].rules_generation).
  std::uint64_t generation() const;

  // Blocks until every packet submitted so far has been consumed from the
  // rings (flushes partial batches first).  Same single-producer rule as
  // submit().  The quiesce-then-swap recipe gives an exact packet partition
  // between ruleset generations.
  void quiesce();

  // Drains: flushes, lets every worker consume its ring to empty, joins the
  // threads, and gathers alerts.  Idempotent.
  void stop();

  bool running() const { return running_; }
  const PipelineConfig& config() const { return cfg_; }
  unsigned workers() const { return static_cast<unsigned>(workers_.size()); }

  // Counter snapshot; callable from any thread, before, during or after the
  // run.
  PipelineStats stats() const;

  // All workers' alerts concatenated (worker-major order).  Valid after
  // stop(); empty when cfg.alert_sink routed alerts elsewhere.
  const std::vector<ids::Alert>& alerts() const { return alerts_; }

  // Ruleset replicas backing the workers: 1 normally; one per NUMA node
  // covered by cfg.worker_cpus when cfg.numa_replicate_rules is set (the
  // DatabasePtr path — replicas share the master pattern bytes through the
  // database but carry node-local compiled matcher tables).
  std::size_t rules_replicas() const { return rules_channels_.size(); }

 private:
  // `db` is the compiled database backing `rules` (null on the legacy
  // PatternSet path); kept so NUMA replication can build additional
  // same-generation GroupedRules instances off it.
  PipelineRuntime(ids::GroupedRulesPtr rules, DatabasePtr db, PipelineConfig cfg);

  PipelineConfig cfg_;
  // One channel per ruleset replica.  Slot 0 always exists; worker i reads
  // worker_slot_[i].  unique_ptr: RulesChannel holds atomics/mutex and must
  // not move once workers hold pointers into it.
  std::vector<std::unique_ptr<RulesChannel>> rules_channels_;
  std::vector<std::size_t> worker_slot_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<ShardRouter> router_;
  std::unique_ptr<Watchdog> watchdog_;  // null when cfg.watchdog_interval_ms == 0
  std::vector<ids::Alert> alerts_;
  std::atomic<std::uint64_t> submitted_{0};
  bool running_ = false;
  bool stopped_ = false;
};

}  // namespace vpm::pipeline
