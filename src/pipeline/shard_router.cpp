#include "pipeline/shard_router.hpp"

#include <thread>

#include "util/timer.hpp"

namespace vpm::pipeline {

unsigned shard_of(const net::FiveTuple& tuple, unsigned shards) {
  if (shards <= 1) return 0;
  // Symmetric over direction: both sides of a connection hash identically,
  // so a bidirectional flow's reassembler state lives on one worker.
  std::uint64_t z = tuple.conn_hash() + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return static_cast<unsigned>(z % shards);
}

ShardRouter::ShardRouter(std::vector<Ring*> rings, std::size_t batch_packets,
                         BackpressurePolicy policy, bool stamp_enqueue_time)
    : rings_(std::move(rings)),
      pending_(rings_.size()),
      batch_packets_(batch_packets > 0 ? batch_packets : 1),
      policy_(policy),
      stamp_enqueue_time_(stamp_enqueue_time) {
  for (PacketBatch& b : pending_) b.reserve(batch_packets_);
}

bool ShardRouter::route(net::Packet&& packet) {
  const std::size_t shard = shard_of(packet.tuple, static_cast<unsigned>(rings_.size()));
  PacketBatch& batch = pending_[shard];
  batch.push_back(std::move(packet));
  if (batch.size() < batch_packets_) return true;
  return push_batch(shard);
}

void ShardRouter::flush() {
  for (std::size_t shard = 0; shard < pending_.size(); ++shard) {
    if (!pending_[shard].empty()) push_batch(shard);
  }
}

bool ShardRouter::push_batch(std::size_t shard) {
  PacketBatch& batch = pending_[shard];
  const std::size_t n = batch.size();
  // Stamped before the push attempt, so a blocked push counts its wait as
  // dwell — from the consumer's perspective the batch WAS queued that long.
  if (stamp_enqueue_time_) batch.enqueue_ns = util::monotonic_ns();
  if (policy_ == BackpressurePolicy::block) {
    // Spin briefly, then yield: the consumer is another thread on this host,
    // so the queue-full condition clears in microseconds unless the worker
    // is genuinely saturated.
    unsigned spins = 0;
    while (!rings_[shard]->try_push(batch)) {
      if (++spins >= 64) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  } else {
    if (!rings_[shard]->try_push(batch)) {
      dropped_.fetch_add(n, std::memory_order_relaxed);
      batch.clear();
      batch.reserve(batch_packets_);
      return false;
    }
  }
  routed_.fetch_add(n, std::memory_order_relaxed);
  // try_push moved the vector out; restore a usable buffer.
  batch = PacketBatch();
  batch.reserve(batch_packets_);
  return true;
}

}  // namespace vpm::pipeline
