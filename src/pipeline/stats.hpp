// Aggregated counter view of a running (or finished) pipeline.
//
// Workers publish their counters through relaxed atomics after every batch,
// so PipelineRuntime::stats() can be called from any thread at any time and
// returns a coherent-enough snapshot (counts lag by at most one in-flight
// batch per worker).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vpm::pipeline {

struct WorkerStats {
  std::uint64_t packets = 0;         // packets consumed from the ring
  std::uint64_t batches = 0;         // batches consumed from the ring
  std::uint64_t payload_bytes = 0;   // raw payload bytes ingested
  std::uint64_t bytes_inspected = 0; // bytes the engine actually scanned
  std::uint64_t chunks = 0;          // reassembled chunks fed to the engine
  std::uint64_t alerts = 0;
  std::uint64_t flows_seen = 0;      // distinct flows the engine ever saw
  std::uint64_t flows_evicted = 0;   // idle evictions (engine + reassembler)
  std::uint64_t reassembly_drops = 0;
  std::uint64_t duplicate_bytes_trimmed = 0;  // overlap bytes the policy discarded
  // Bidirectional reassembly: per-side delivery and lifecycle counters.
  std::uint64_t c2s_delivered_bytes = 0;  // client→server bytes reassembled
  std::uint64_t s2c_delivered_bytes = 0;  // server→client bytes reassembled
  std::uint64_t overwritten_bytes = 0;    // buffered bytes replaced (last/target)
  std::uint64_t discarded_on_close_bytes = 0;  // pending dropped by RST/close/evict
  std::uint64_t connections_started = 0;
  std::uint64_t connections_ended = 0;
  std::uint64_t active_flows = 0;    // engine flows currently holding state
  std::uint64_t rules_generation = 0;  // ruleset generation this worker runs
  std::uint64_t rules_swaps = 0;       // hot-swaps this worker has adopted

  WorkerStats& operator+=(const WorkerStats& o) {
    packets += o.packets;
    batches += o.batches;
    payload_bytes += o.payload_bytes;
    bytes_inspected += o.bytes_inspected;
    chunks += o.chunks;
    alerts += o.alerts;
    flows_seen += o.flows_seen;
    flows_evicted += o.flows_evicted;
    reassembly_drops += o.reassembly_drops;
    duplicate_bytes_trimmed += o.duplicate_bytes_trimmed;
    c2s_delivered_bytes += o.c2s_delivered_bytes;
    s2c_delivered_bytes += o.s2c_delivered_bytes;
    overwritten_bytes += o.overwritten_bytes;
    discarded_on_close_bytes += o.discarded_on_close_bytes;
    connections_started += o.connections_started;
    connections_ended += o.connections_ended;
    active_flows += o.active_flows;
    // Generations don't sum: totals report the newest generation any worker
    // has adopted (and the max swap count — workers adopt independently).
    rules_generation = rules_generation > o.rules_generation ? rules_generation
                                                             : o.rules_generation;
    rules_swaps = rules_swaps > o.rules_swaps ? rules_swaps : o.rules_swaps;
    return *this;
  }
};

struct PipelineStats {
  std::vector<WorkerStats> workers;
  std::uint64_t submitted = 0;             // packets handed to submit()
  std::uint64_t routed = 0;                // packets pushed into some ring
  std::uint64_t dropped_backpressure = 0;  // packets discarded (drop policy)

  WorkerStats totals() const {
    WorkerStats t;
    for (const WorkerStats& w : workers) t += w;
    return t;
  }
};

}  // namespace vpm::pipeline
