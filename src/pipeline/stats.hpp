// Aggregated counter view of a running (or finished) pipeline.
//
// Workers publish their counters through relaxed atomics after every batch,
// so PipelineRuntime::stats() can be called from any thread at any time and
// returns a coherent-enough snapshot (counts lag by at most one in-flight
// batch per worker).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vpm::pipeline {

// How a WorkerStats field behaves over time and across workers.  Every
// consumer that renders or aggregates stats switches on this, so a gauge can
// never accidentally be exported or summed as a monotonic counter:
//   counter    monotonically increasing; totals() sums across workers and
//              the Prometheus exporter emits TYPE counter
//   gauge      point-in-time level; totals() sums (the fleet-wide level at
//              the snapshot instant) and the exporter emits TYPE gauge
//   gauge_max  point-in-time level where summing is meaningless (ruleset
//              generation, swap count); totals() takes the max and the
//              exporter emits TYPE gauge
enum class StatKind : std::uint8_t { counter, gauge, gauge_max };

struct WorkerStats {
  std::uint64_t packets = 0;         // packets consumed from the ring
  std::uint64_t batches = 0;         // batches consumed from the ring
  std::uint64_t payload_bytes = 0;   // raw payload bytes ingested
  std::uint64_t bytes_inspected = 0; // bytes the engine actually scanned
  std::uint64_t chunks = 0;          // reassembled chunks fed to the engine
  std::uint64_t alerts = 0;
  std::uint64_t flows_seen = 0;      // distinct flows the engine ever saw
  std::uint64_t flows_evicted = 0;   // idle evictions (engine + reassembler)
  std::uint64_t reassembly_drops = 0;
  std::uint64_t duplicate_bytes_trimmed = 0;  // overlap bytes the policy discarded
  // Bidirectional reassembly: per-side delivery and lifecycle counters.
  std::uint64_t c2s_delivered_bytes = 0;  // client→server bytes reassembled
  std::uint64_t s2c_delivered_bytes = 0;  // server→client bytes reassembled
  std::uint64_t overwritten_bytes = 0;    // buffered bytes replaced (last/target)
  std::uint64_t discarded_on_close_bytes = 0;  // pending dropped by RST/close/evict
  std::uint64_t connections_started = 0;
  std::uint64_t connections_ended = 0;
  std::uint64_t active_flows = 0;    // gauge: engine flows currently holding state
  std::uint64_t tracked_connections = 0;  // gauge: reassembler connections + UDP flows
                                          // currently tracked (flow-table occupancy)
  std::uint64_t rules_generation = 0;  // gauge: ruleset generation this worker runs
  std::uint64_t rules_swaps = 0;       // gauge: hot-swaps this worker has adopted
  // Overload / robustness accounting.  The drain identity after stop():
  //   packets == processed_packets + shed_packets        (per worker)
  //   routed  == Σ packets                               (across workers)
  // i.e. every packet that entered a ring was either fully processed or shed
  // under the degradation ladder / failure drain — never silently lost.
  std::uint64_t processed_packets = 0;  // packets fully handled (not shed)
  std::uint64_t shed_packets = 0;       // packets discarded by the ladder/drain
  std::uint64_t shed_bytes = 0;         // payload bytes of shed packets
  std::uint64_t degradation_level = 0;  // gauge: current ladder rung (0..3)
  std::uint64_t degradation_transitions = 0;  // ladder moves (either direction)
  std::uint64_t heartbeats = 0;         // worker loop iterations (liveness)
  std::uint64_t sink_errors = 0;        // alert-sink deliveries that threw
  std::uint64_t sink_quarantined = 0;   // gauge: 1 when the sink is quarantined
  // Approximate prefilter screening outcomes (zero when the prefilter is off
  // or bypassed; pass+reject <= chunks since only screened chunks count).
  std::uint64_t prefilter_pass_payloads = 0;
  std::uint64_t prefilter_reject_payloads = 0;
  std::uint64_t prefilter_pass_bytes = 0;
  std::uint64_t prefilter_reject_bytes = 0;

  // THE single enumeration of every field, with its name and kind.  Every
  // stats surface (totals() aggregation below, the human formatter and the
  // Prometheus exporter in telemetry/pipeline_metrics) iterates this, so a
  // new field added here — and only here — shows up everywhere at once; one
  // added to the struct but not the table trips the static_assert below.
  // f(name, kind, member pointer) per field.
  template <typename F>
  static void for_each_field(F&& f) {
    f("packets", StatKind::counter, &WorkerStats::packets);
    f("batches", StatKind::counter, &WorkerStats::batches);
    f("payload_bytes", StatKind::counter, &WorkerStats::payload_bytes);
    f("bytes_inspected", StatKind::counter, &WorkerStats::bytes_inspected);
    f("chunks", StatKind::counter, &WorkerStats::chunks);
    f("alerts", StatKind::counter, &WorkerStats::alerts);
    f("flows_seen", StatKind::counter, &WorkerStats::flows_seen);
    f("flows_evicted", StatKind::counter, &WorkerStats::flows_evicted);
    f("reassembly_drops", StatKind::counter, &WorkerStats::reassembly_drops);
    f("duplicate_bytes_trimmed", StatKind::counter,
      &WorkerStats::duplicate_bytes_trimmed);
    f("c2s_delivered_bytes", StatKind::counter, &WorkerStats::c2s_delivered_bytes);
    f("s2c_delivered_bytes", StatKind::counter, &WorkerStats::s2c_delivered_bytes);
    f("overwritten_bytes", StatKind::counter, &WorkerStats::overwritten_bytes);
    f("discarded_on_close_bytes", StatKind::counter,
      &WorkerStats::discarded_on_close_bytes);
    f("connections_started", StatKind::counter, &WorkerStats::connections_started);
    f("connections_ended", StatKind::counter, &WorkerStats::connections_ended);
    f("active_flows", StatKind::gauge, &WorkerStats::active_flows);
    f("tracked_connections", StatKind::gauge, &WorkerStats::tracked_connections);
    f("rules_generation", StatKind::gauge_max, &WorkerStats::rules_generation);
    f("rules_swaps", StatKind::gauge_max, &WorkerStats::rules_swaps);
    f("processed_packets", StatKind::counter, &WorkerStats::processed_packets);
    f("shed_packets", StatKind::counter, &WorkerStats::shed_packets);
    f("shed_bytes", StatKind::counter, &WorkerStats::shed_bytes);
    f("degradation_level", StatKind::gauge_max, &WorkerStats::degradation_level);
    f("degradation_transitions", StatKind::counter,
      &WorkerStats::degradation_transitions);
    f("heartbeats", StatKind::counter, &WorkerStats::heartbeats);
    f("sink_errors", StatKind::counter, &WorkerStats::sink_errors);
    f("sink_quarantined", StatKind::gauge, &WorkerStats::sink_quarantined);
    f("prefilter_pass_payloads", StatKind::counter,
      &WorkerStats::prefilter_pass_payloads);
    f("prefilter_reject_payloads", StatKind::counter,
      &WorkerStats::prefilter_reject_payloads);
    f("prefilter_pass_bytes", StatKind::counter, &WorkerStats::prefilter_pass_bytes);
    f("prefilter_reject_bytes", StatKind::counter,
      &WorkerStats::prefilter_reject_bytes);
  }

  // 32 uint64 fields.  If this fires you added a field: list it in
  // for_each_field (pick its StatKind deliberately) and bump the count.
  static constexpr std::size_t kFieldCount = 32;

  WorkerStats& operator+=(const WorkerStats& o) {
    for_each_field([&](const char*, StatKind kind, auto member) {
      switch (kind) {
        case StatKind::counter:
        case StatKind::gauge:  // summed gauges: the fleet-wide level
          this->*member += o.*member;
          break;
        case StatKind::gauge_max:
          if (o.*member > this->*member) this->*member = o.*member;
          break;
      }
    });
    return *this;
  }
};

static_assert(sizeof(WorkerStats) == WorkerStats::kFieldCount * sizeof(std::uint64_t),
              "WorkerStats changed: update for_each_field and kFieldCount");

struct PipelineStats {
  std::vector<WorkerStats> workers;
  std::uint64_t submitted = 0;             // packets handed to submit()
  std::uint64_t routed = 0;                // packets pushed into some ring
  std::uint64_t dropped_backpressure = 0;  // packets discarded (drop policy)
  std::uint64_t watchdog_stalls = 0;       // stall episodes the watchdog flagged
  std::uint64_t worker_failures = 0;       // workers that died and drained
  // One human-readable line per contained failure (worker exceptions); the
  // engine keeps running — these are for the operator, not control flow.
  std::vector<std::string> errors;

  // Aggregation follows each field's StatKind: counters and gauges sum
  // (point-in-time gauges like active_flows sum to the fleet-wide level of
  // the snapshot); gauge_max fields (rules_generation, rules_swaps) take the
  // max — the newest generation any worker has adopted.
  WorkerStats totals() const {
    WorkerStats t;
    for (const WorkerStats& w : workers) t += w;
    return t;
  }
};

}  // namespace vpm::pipeline
