#include "pipeline/worker.hpp"

#include <algorithm>
#include <string>

#include "ids/pcap_pipeline.hpp"
#include "telemetry/metrics.hpp"
#include "util/timer.hpp"

namespace vpm::pipeline {

Worker::Worker(ids::GroupedRulesPtr rules, const PipelineConfig& cfg,
               const RulesChannel* swaps)
    : cfg_(cfg),
      ring_(cfg.ring_batches > 0 ? cfg.ring_batches : 1),
      reassembler_(
          [this](const net::StreamChunk& chunk) {
            // Staged, not scanned: the chunk is copied into the flow's
            // stream buffer now (reassembler views die with this callback)
            // and scanned together with the rest of the batch in one
            // scan_batch round per protocol group at flush time.  Flow id is
            // the DIRECTIONAL tuple hash (each side scans as its own
            // stream); classification uses the connection's server port so
            // both directions hit the same rule group.
            engine_.stage(flow_key(chunk.tuple), ids::classify_port(chunk.server_port),
                          chunk.data, *sink_);
          },
          cfg.reassembly),
      engine_(std::move(rules)),
      sink_(cfg.alert_sink != nullptr ? cfg.alert_sink : &buffer_sink_),
      swaps_(swaps) {
  // Connection end (FIN completion, RST, close, eviction) is a stream
  // boundary: scan anything still staged under the dying streams, then drop
  // both sides' scanner state so a reused tuple starts a fresh stream.  This
  // mirrors what the single-threaded reference does at the same packet, so
  // the differential contract holds across lifecycle events.
  reassembler_.on_connection_end(
      [this](const net::FiveTuple& client, net::EndReason) {
        if (engine_.staged_chunks() > 0) engine_.flush_batch(*sink_);
        engine_.close_flow(flow_key(client));
        engine_.close_flow(flow_key(client.reversed()));
      });
  published_.rules_generation.store(engine_.generation(), std::memory_order_relaxed);
}

Worker::~Worker() {
  if (thread_.joinable()) {
    request_stop();
    join();
  }
}

void Worker::enable_telemetry(telemetry::MetricsRegistry& reg, unsigned index) {
  const std::string worker = std::to_string(index);
  ring_dwell_ = &reg.histogram(
      "vpm_ring_dwell_seconds",
      "Time a packet batch waited in its shard ring before a worker popped it",
      telemetry::latency_buckets_seconds(), {{"worker", worker}});
  batch_fill_ = &reg.histogram(
      "vpm_batch_fill_packets", "Packets per popped batch",
      telemetry::linear_buckets(1.0, 8.0, 16), {{"worker", worker}});

  ids::EngineTelemetry et;
  et.flush_latency = &reg.histogram(
      "vpm_scan_latency_seconds",
      "Wall latency of one batched scan round (IdsEngine::flush_batch)",
      telemetry::latency_buckets_seconds(), {{"worker", worker}});
  for (std::size_t gi = 0; gi < ids::kEngineGroupCount; ++gi) {
    const std::string group(pattern::group_name(static_cast<pattern::Group>(gi)));
    et.group_scan_bytes[gi] =
        &reg.counter("vpm_group_scan_bytes_total", "Bytes scanned per rule group",
                     {{"group", group}, {"worker", worker}});
    et.group_alerts[gi] =
        &reg.counter("vpm_group_alerts_total", "Alerts raised per rule group",
                     {{"group", group}, {"worker", worker}});
  }
  engine_.set_telemetry(et);

  reassembler_.set_chunk_histogram(&reg.histogram(
      "vpm_chunk_bytes", "Reassembled in-order chunk sizes delivered to the engine",
      telemetry::size_buckets_bytes(), {{"worker", worker}}));
}

void Worker::start() { thread_ = std::thread([this] { run(); }); }

void Worker::request_stop() { done_.store(true, std::memory_order_release); }

void Worker::join() {
  if (thread_.joinable()) thread_.join();
}

void Worker::run() {
  PacketBatch batch;
  unsigned idle_spins = 0;
  // Dwell/fill accounting for a just-popped batch; a no-op (and no clock
  // read) when telemetry is off or the producer did not stamp the batch.
  const auto record_pop = [this](const PacketBatch& b) {
    if (batch_fill_ != nullptr) batch_fill_->record(static_cast<double>(b.size()));
    if (ring_dwell_ != nullptr && b.enqueue_ns != 0) {
      ring_dwell_->record(static_cast<double>(util::monotonic_ns() - b.enqueue_ns) *
                          1e-9);
    }
  };
  for (;;) {
    if (ring_.try_pop(batch)) {
      record_pop(batch);
      // Adopt AFTER the pop: the producer publishes a new generation before
      // pushing any batch meant for it, and the ring's release-push /
      // acquire-pop edge makes that publication visible here — so a batch
      // is never scanned under rules older than those current when it was
      // pushed.
      maybe_adopt_rules();
      process(batch);
      batch.clear();
      idle_spins = 0;
      continue;
    }
    // Idle: adopt promptly so a swap during a traffic lull does not wait
    // for the next packet.
    maybe_adopt_rules();
    // The producer sets done_ only after flushing, so an empty ring observed
    // AFTER the done_ load means there is nothing left to drain.
    if (done_.load(std::memory_order_acquire)) {
      if (ring_.try_pop(batch)) {
        record_pop(batch);
        maybe_adopt_rules();
        process(batch);
        batch.clear();
        continue;
      }
      break;
    }
    if (++idle_spins >= 64) {
      std::this_thread::yield();
      idle_spins = 0;
    }
  }
  publish_stats();
}

void Worker::maybe_adopt_rules() {
  if (swaps_ == nullptr) return;
  // Lock-free fast path: one acquire load per loop iteration; the slot
  // mutex is touched only when a publication actually happened.
  const std::uint64_t seq = swaps_->sequence();
  if (seq == adopted_seq_) return;
  ids::GroupedRulesPtr rules = swaps_->current();
  adopted_seq_ = seq;
  if (rules == nullptr || rules == engine_.rules_ptr()) return;
  // Flushes staged chunks under the old generation, then retires this
  // worker's reference to it (the last adopter destroys it).
  engine_.swap_rules(std::move(rules), *sink_);
  ++swaps_adopted_;
  published_.rules_generation.store(engine_.generation(), std::memory_order_relaxed);
  published_.rules_swaps.store(swaps_adopted_, std::memory_order_relaxed);
}

void Worker::process(PacketBatch& batch) {
  for (net::Packet& p : batch) handle_packet(p);
  // One deferred scan round over everything the batch staged — the batch
  // fast path that amortizes filter setup and candidate storage across all
  // of the batch's small payloads.
  engine_.flush_batch(*sink_);
  published_.batches.fetch_add(1, std::memory_order_relaxed);
  publish_stats();
}

void Worker::handle_packet(net::Packet& packet) {
  virtual_now_us_ = std::max(virtual_now_us_, packet.timestamp_us);
  published_.packets.fetch_add(1, std::memory_order_relaxed);
  published_.payload_bytes.fetch_add(packet.payload.size(), std::memory_order_relaxed);

  if (packet.tuple.proto == net::IpProto::tcp) {
    reassembler_.ingest(packet);
  } else {
    // UDP: datagram-scoped scan; the engine still keeps per-flow carry so a
    // pattern split across datagrams of one flow is found.
    const std::uint64_t key = flow_key(packet.tuple);
    udp_last_seen_[key] = virtual_now_us_;
    engine_.stage(key, ids::classify_port(packet.tuple.dst_port), packet.payload,
                  *sink_);
  }

  if (cfg_.idle_timeout_us > 0 &&
      ++packets_since_sweep_ >= cfg_.eviction_sweep_packets) {
    packets_since_sweep_ = 0;
    // Scan staged chunks before tearing flows down: close_flow drops a
    // still-staged chunk unscanned.
    engine_.flush_batch(*sink_);
    sweep_idle();
  }
}

void Worker::sweep_idle() {
  // Engine-side teardown happens in the reassembler's connection-end
  // callback (both directions of each evicted connection).
  const auto evicted = reassembler_.evict_idle(virtual_now_us_, cfg_.idle_timeout_us);
  evicted_ += evicted.size();
  for (auto it = udp_last_seen_.begin(); it != udp_last_seen_.end();) {
    if (it->second + cfg_.idle_timeout_us <= virtual_now_us_) {
      engine_.close_flow(it->first);
      ++evicted_;
      it = udp_last_seen_.erase(it);
    } else {
      ++it;
    }
  }
}

void Worker::publish_stats() {
  const ids::EngineCounters& ec = engine_.counters();
  published_.bytes_inspected.store(ec.bytes_inspected, std::memory_order_relaxed);
  published_.chunks.store(ec.chunks, std::memory_order_relaxed);
  published_.alerts.store(ec.alerts, std::memory_order_relaxed);
  published_.flows_seen.store(ec.flows, std::memory_order_relaxed);
  published_.flows_evicted.store(evicted_, std::memory_order_relaxed);
  const net::ReassemblyStats& rs = reassembler_.stats();
  published_.reassembly_drops.store(rs.dropped_segments, std::memory_order_relaxed);
  published_.duplicate_bytes_trimmed.store(rs.overlap_bytes_trimmed(),
                                           std::memory_order_relaxed);
  published_.c2s_delivered_bytes.store(rs.side[0].delivered_bytes,
                                       std::memory_order_relaxed);
  published_.s2c_delivered_bytes.store(rs.side[1].delivered_bytes,
                                       std::memory_order_relaxed);
  published_.overwritten_bytes.store(
      rs.side[0].overwritten_bytes + rs.side[1].overwritten_bytes,
      std::memory_order_relaxed);
  published_.discarded_on_close_bytes.store(rs.discarded_on_close_bytes,
                                            std::memory_order_relaxed);
  published_.connections_started.store(rs.connections_started,
                                       std::memory_order_relaxed);
  published_.connections_ended.store(rs.connections_ended, std::memory_order_relaxed);
  published_.active_flows.store(engine_.active_flows(), std::memory_order_relaxed);
  published_.rules_generation.store(engine_.generation(), std::memory_order_relaxed);
  published_.rules_swaps.store(swaps_adopted_, std::memory_order_relaxed);
}

WorkerStats Worker::stats() const {
  WorkerStats s;
  s.packets = published_.packets.load(std::memory_order_relaxed);
  s.batches = published_.batches.load(std::memory_order_relaxed);
  s.payload_bytes = published_.payload_bytes.load(std::memory_order_relaxed);
  s.bytes_inspected = published_.bytes_inspected.load(std::memory_order_relaxed);
  s.chunks = published_.chunks.load(std::memory_order_relaxed);
  s.alerts = published_.alerts.load(std::memory_order_relaxed);
  s.flows_seen = published_.flows_seen.load(std::memory_order_relaxed);
  s.flows_evicted = published_.flows_evicted.load(std::memory_order_relaxed);
  s.reassembly_drops = published_.reassembly_drops.load(std::memory_order_relaxed);
  s.duplicate_bytes_trimmed =
      published_.duplicate_bytes_trimmed.load(std::memory_order_relaxed);
  s.c2s_delivered_bytes = published_.c2s_delivered_bytes.load(std::memory_order_relaxed);
  s.s2c_delivered_bytes = published_.s2c_delivered_bytes.load(std::memory_order_relaxed);
  s.overwritten_bytes = published_.overwritten_bytes.load(std::memory_order_relaxed);
  s.discarded_on_close_bytes =
      published_.discarded_on_close_bytes.load(std::memory_order_relaxed);
  s.connections_started = published_.connections_started.load(std::memory_order_relaxed);
  s.connections_ended = published_.connections_ended.load(std::memory_order_relaxed);
  s.active_flows = published_.active_flows.load(std::memory_order_relaxed);
  s.rules_generation = published_.rules_generation.load(std::memory_order_relaxed);
  s.rules_swaps = published_.rules_swaps.load(std::memory_order_relaxed);
  return s;
}

}  // namespace vpm::pipeline
