#include "pipeline/worker.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "capture/topology.hpp"
#include "ids/pcap_pipeline.hpp"
#include "telemetry/metrics.hpp"
#include "util/failpoint.hpp"
#include "util/timer.hpp"

namespace vpm::pipeline {

void GuardedSink::on_alert(const ids::Alert& alert) {
  if (quarantined_.load(std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  try {
    if (util::failpoint::should_fail(util::failpoint::Site::alert_sink_write)) {
      throw std::runtime_error("injected alert-sink failure (failpoint)");
    }
    inner_->on_alert(alert);
    consecutive_ = 0;
  } catch (...) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    if (++consecutive_ >= quarantine_after_) {
      quarantined_.store(true, std::memory_order_relaxed);
    }
  }
}

Worker::Worker(ids::GroupedRulesPtr rules, const PipelineConfig& cfg,
               const RulesChannel* swaps)
    : cfg_(cfg),
      ring_(cfg.ring_batches > 0 ? cfg.ring_batches : 1),
      reassembler_(
          [this](const net::StreamChunk& chunk) {
            // Staged, not scanned: the chunk is copied into the flow's
            // stream buffer now (reassembler views die with this callback)
            // and scanned together with the rest of the batch in one
            // scan_batch round per protocol group at flush time.  Flow id is
            // the DIRECTIONAL tuple hash (each side scans as its own
            // stream); classification uses the connection's server port so
            // both directions hit the same rule group.
            engine_.stage(flow_key(chunk.tuple), ids::classify_port(chunk.server_port),
                          chunk.data, *sink_);
          },
          cfg.reassembly),
      engine_(std::move(rules)),
      guarded_sink_(cfg.alert_sink != nullptr ? cfg.alert_sink : &buffer_sink_,
                    cfg.sink_quarantine_after),
      sink_(&guarded_sink_),
      swaps_(swaps),
      overload_(cfg.overload),
      base_buffered_budget_(cfg.reassembly.max_buffered_bytes) {
  engine_.set_prefilter_mode(cfg.prefilter);
  // Connection end (FIN completion, RST, close, eviction) is a stream
  // boundary: scan anything still staged under the dying streams, then drop
  // both sides' scanner state so a reused tuple starts a fresh stream.  This
  // mirrors what the single-threaded reference does at the same packet, so
  // the differential contract holds across lifecycle events.
  reassembler_.on_connection_end(
      [this](const net::FiveTuple& client, net::EndReason) {
        if (engine_.staged_chunks() > 0) engine_.flush_batch(*sink_);
        engine_.close_flow(flow_key(client));
        engine_.close_flow(flow_key(client.reversed()));
      });
  published_.rules_generation.store(engine_.generation(), std::memory_order_relaxed);
}

Worker::~Worker() {
  if (thread_.joinable()) {
    request_stop();
    join();
  }
}

void Worker::enable_telemetry(telemetry::MetricsRegistry& reg, unsigned index) {
  const std::string worker = std::to_string(index);
  ring_dwell_ = &reg.histogram(
      "vpm_ring_dwell_seconds",
      "Time a packet batch waited in its shard ring before a worker popped it",
      telemetry::latency_buckets_seconds(), {{"worker", worker}});
  batch_fill_ = &reg.histogram(
      "vpm_batch_fill_packets", "Packets per popped batch",
      telemetry::linear_buckets(1.0, 8.0, 16), {{"worker", worker}});

  ids::EngineTelemetry et;
  et.flush_latency = &reg.histogram(
      "vpm_scan_latency_seconds",
      "Wall latency of one batched scan round (IdsEngine::flush_batch)",
      telemetry::latency_buckets_seconds(), {{"worker", worker}});
  for (std::size_t gi = 0; gi < ids::kEngineGroupCount; ++gi) {
    const std::string group(pattern::group_name(static_cast<pattern::Group>(gi)));
    et.group_scan_bytes[gi] =
        &reg.counter("vpm_group_scan_bytes_total", "Bytes scanned per rule group",
                     {{"group", group}, {"worker", worker}});
    et.group_alerts[gi] =
        &reg.counter("vpm_group_alerts_total", "Alerts raised per rule group",
                     {{"group", group}, {"worker", worker}});
    et.prefilter_pass_payloads[gi] = &reg.counter(
        "vpm_prefilter_pass_payloads_total",
        "Payloads the approximate prefilter passed to the exact engine",
        {{"group", group}, {"worker", worker}});
    et.prefilter_reject_payloads[gi] = &reg.counter(
        "vpm_prefilter_reject_payloads_total",
        "Payloads the approximate prefilter rejected (exactly: no match possible)",
        {{"group", group}, {"worker", worker}});
    et.prefilter_pass_bytes[gi] = &reg.counter(
        "vpm_prefilter_pass_bytes_total", "Bytes of prefilter-passed payloads",
        {{"group", group}, {"worker", worker}});
    et.prefilter_reject_bytes[gi] = &reg.counter(
        "vpm_prefilter_reject_bytes_total", "Bytes of prefilter-rejected payloads",
        {{"group", group}, {"worker", worker}});
  }
  engine_.set_telemetry(et);

  reassembler_.set_chunk_histogram(&reg.histogram(
      "vpm_chunk_bytes", "Reassembled in-order chunk sizes delivered to the engine",
      telemetry::size_buckets_bytes(), {{"worker", worker}}));
}

void Worker::start() { thread_ = std::thread([this] { run(); }); }

void Worker::request_stop() { done_.store(true, std::memory_order_release); }

void Worker::join() {
  if (thread_.joinable()) thread_.join();
}

void Worker::run() {
  // Containment boundary: anything the loop throws (engine bug, OOM on one
  // flow, an injected worker_batch fault) is recorded and the ring is then
  // DRAINED (everything counted as shed) instead of abandoned — under the
  // block backpressure policy an abandoned ring would wedge the producer and
  // with it every healthy shard.
  try {
    // Pin before any work: the flow tables and scratch this thread is about
    // to fault in should come from the pinned CPU's local node.
    if (pin_cpu_ >= 0) capture::pin_current_thread(pin_cpu_);
    run_loop();
  } catch (const std::exception& e) {
    error_ = std::string("worker failure: ") + e.what();
    failed_.store(true, std::memory_order_release);
    drain_after_failure();
  } catch (...) {
    error_ = "worker failure: non-standard exception";
    failed_.store(true, std::memory_order_release);
    drain_after_failure();
  }
  publish_stats();
  finished_.store(true, std::memory_order_release);
}

void Worker::run_loop() {
  PacketBatch batch;
  unsigned idle_spins = 0;
  // Dwell/fill accounting for a just-popped batch; a no-op (and no clock
  // read) when telemetry is off or the producer did not stamp the batch.
  const auto record_pop = [this](const PacketBatch& b) {
    if (batch_fill_ != nullptr) batch_fill_->record(static_cast<double>(b.size()));
    if (ring_dwell_ != nullptr && b.enqueue_ns != 0) {
      ring_dwell_->record(static_cast<double>(util::monotonic_ns() - b.enqueue_ns) *
                          1e-9);
    }
  };
  for (;;) {
    // Liveness: one bump per iteration, idle included — a flat heartbeat
    // therefore means the thread is wedged inside a batch, not merely idle.
    heartbeat_.fetch_add(1, std::memory_order_relaxed);
    apply_overload();
    if (ring_.try_pop(batch)) {
      record_pop(batch);
      // Adopt AFTER the pop: the producer publishes a new generation before
      // pushing any batch meant for it, and the ring's release-push /
      // acquire-pop edge makes that publication visible here — so a batch
      // is never scanned under rules older than those current when it was
      // pushed.
      maybe_adopt_rules();
      process(batch);
      batch.clear();
      idle_spins = 0;
      continue;
    }
    // Idle: adopt promptly so a swap during a traffic lull does not wait
    // for the next packet.
    maybe_adopt_rules();
    // The producer sets done_ only after flushing, so an empty ring observed
    // AFTER the done_ load means there is nothing left to drain.
    if (done_.load(std::memory_order_acquire)) {
      if (ring_.try_pop(batch)) {
        record_pop(batch);
        maybe_adopt_rules();
        process(batch);
        batch.clear();
        continue;
      }
      break;
    }
    if (++idle_spins >= 64) {
      std::this_thread::yield();
      idle_spins = 0;
    }
  }
}

void Worker::drain_after_failure() {
  // The engine is in an unknown state; do not touch it.  Keep consuming so
  // the producer never blocks on this shard, counting every packet as shed —
  // the drain identity (packets == processed + shed) keeps holding, it just
  // attributes the loss honestly.
  PacketBatch batch;
  const auto shed_batch = [this](const PacketBatch& b) {
    for (const net::Packet& p : b) {
      published_.packets.fetch_add(1, std::memory_order_relaxed);
      published_.payload_bytes.fetch_add(p.payload.size(), std::memory_order_relaxed);
      published_.shed_packets.fetch_add(1, std::memory_order_relaxed);
      published_.shed_bytes.fetch_add(p.payload.size(), std::memory_order_relaxed);
    }
  };
  for (;;) {
    heartbeat_.fetch_add(1, std::memory_order_relaxed);
    if (ring_.try_pop(batch)) {
      shed_batch(batch);
      batch.clear();
      continue;
    }
    if (done_.load(std::memory_order_acquire)) {
      if (ring_.try_pop(batch)) {
        shed_batch(batch);
        batch.clear();
        continue;
      }
      return;
    }
    std::this_thread::yield();
  }
}

void Worker::maybe_adopt_rules() {
  if (swaps_ == nullptr) return;
  // Lock-free fast path: one acquire load per loop iteration; the slot
  // mutex is touched only when a publication actually happened.
  const std::uint64_t seq = swaps_->sequence();
  if (seq == adopted_seq_) return;
  ids::GroupedRulesPtr rules = swaps_->current();
  adopted_seq_ = seq;
  if (rules == nullptr || rules == engine_.rules_ptr()) return;
  // Flushes staged chunks under the old generation, then retires this
  // worker's reference to it (the last adopter destroys it).
  engine_.swap_rules(std::move(rules), *sink_);
  ++swaps_adopted_;
  published_.rules_generation.store(engine_.generation(), std::memory_order_relaxed);
  published_.rules_swaps.store(swaps_adopted_, std::memory_order_relaxed);
}

void Worker::apply_overload() {
  if (!cfg_.overload.enabled) return;
  const double fill = static_cast<double>(ring_.size_approx()) /
                      static_cast<double>(ring_.capacity());
  const DegradationLevel prev = overload_.level();
  const DegradationLevel now = overload_.update(fill);
  if (now == prev) return;
  published_.degradation_level.store(static_cast<std::uint64_t>(now),
                                     std::memory_order_relaxed);
  published_.degradation_transitions.store(overload_.transitions(),
                                           std::memory_order_relaxed);
  // Rung 1+: shrink (or on descent restore) the reassembly buffering budget.
  if (now >= DegradationLevel::shrink_budgets) {
    const auto shrunk = static_cast<std::size_t>(
        cfg_.overload.budget_factor * static_cast<double>(base_buffered_budget_));
    reassembler_.set_max_buffered_bytes(std::max<std::size_t>(1, shrunk));
  } else {
    reassembler_.set_max_buffered_bytes(base_buffered_budget_);
  }
  // Leaving rung 3 ends the shed episode: forget its flow byte counts so
  // the next episode judges flows on fresh behavior (and the map stays
  // empty in normal operation).
  if (now < DegradationLevel::shed_load) shed_flow_bytes_.clear();
}

void Worker::process(PacketBatch& batch) {
  std::size_t handled = 0;
  try {
    if (util::failpoint::should_fail(util::failpoint::Site::worker_batch)) {
      throw std::runtime_error("injected batch-processing failure (failpoint)");
    }
    for (net::Packet& p : batch) {
      handle_packet(p);
      ++handled;
    }
    // One deferred scan round over everything the batch staged — the batch
    // fast path that amortizes filter setup and candidate storage across all
    // of the batch's small payloads.
    engine_.flush_batch(*sink_);
  } catch (...) {
    // Account the packets handle_packet never saw as consumed-and-shed, so
    // the drain identity survives a mid-batch failure; then let run()'s
    // containment boundary take over.
    for (std::size_t i = handled; i < batch.size(); ++i) {
      const net::Packet& p = batch.packets[i];
      published_.packets.fetch_add(1, std::memory_order_relaxed);
      published_.payload_bytes.fetch_add(p.payload.size(), std::memory_order_relaxed);
      published_.shed_packets.fetch_add(1, std::memory_order_relaxed);
      published_.shed_bytes.fetch_add(p.payload.size(), std::memory_order_relaxed);
    }
    throw;
  }
  published_.batches.fetch_add(1, std::memory_order_relaxed);
  publish_stats();
}

bool Worker::should_shed(const net::Packet& packet) {
  if (overload_.level() != DegradationLevel::shed_load) return false;
  const OverloadConfig& oc = cfg_.overload;
  // Oversized payloads first: one elephant segment costs as much scan time
  // as dozens of mice.
  if (packet.payload.size() > oc.shed_payload_bytes) return true;
  // Then the flows that dominated bytes during this overload episode.
  std::uint64_t& seen = shed_flow_bytes_[packet.tuple.conn_hash()];
  seen += packet.payload.size();
  return seen > oc.shed_flow_total_bytes;
}

void Worker::handle_packet(net::Packet& packet) {
  virtual_now_us_ = std::max(virtual_now_us_, packet.timestamp_us);
  published_.packets.fetch_add(1, std::memory_order_relaxed);
  published_.payload_bytes.fetch_add(packet.payload.size(), std::memory_order_relaxed);

  if (should_shed(packet)) {
    published_.shed_packets.fetch_add(1, std::memory_order_relaxed);
    published_.shed_bytes.fetch_add(packet.payload.size(), std::memory_order_relaxed);
    return;
  }
  published_.processed_packets.fetch_add(1, std::memory_order_relaxed);

  if (packet.tuple.proto == net::IpProto::tcp) {
    reassembler_.ingest(packet);
  } else {
    // UDP: datagram-scoped scan; the engine still keeps per-flow carry so a
    // pattern split across datagrams of one flow is found.
    const std::uint64_t key = flow_key(packet.tuple);
    *udp_last_seen_.find_or_emplace(key, [&] { return virtual_now_us_; }).first =
        virtual_now_us_;
    engine_.stage(key, ids::classify_port(packet.tuple.dst_port), packet.payload,
                  *sink_);
  }

  // Rung 2+ tightens eviction: a much shorter idle timeout (even when
  // eviction was configured off) and 4x more frequent sweeps.
  std::uint64_t idle_us = cfg_.idle_timeout_us;
  std::size_t sweep_every = cfg_.eviction_sweep_packets;
  if (overload_.level() >= DegradationLevel::evict_early) {
    const std::uint64_t degraded = cfg_.overload.degraded_idle_timeout_us;
    idle_us = idle_us == 0 ? degraded : std::min(idle_us, degraded);
    sweep_every = std::max<std::size_t>(1, sweep_every / 4);
  }
  if (idle_us > 0 && ++packets_since_sweep_ >= sweep_every) {
    packets_since_sweep_ = 0;
    // Scan staged chunks before tearing flows down: close_flow drops a
    // still-staged chunk unscanned.
    engine_.flush_batch(*sink_);
    sweep_idle(idle_us);
  }
}

void Worker::sweep_idle(std::uint64_t idle_us) {
  // Engine-side teardown happens in the reassembler's connection-end
  // callback (both directions of each evicted connection).
  // eviction_max_steps bounds the slots examined per sweep (rotating
  // cursor); 0 keeps the exact full sweep.
  const std::size_t max_steps = cfg_.eviction_max_steps;
  const auto evicted =
      max_steps == 0 ? reassembler_.evict_idle(virtual_now_us_, idle_us)
                     : reassembler_.evict_idle_step(virtual_now_us_, idle_us, max_steps);
  evicted_ += evicted.size();
  const auto evict_udp = [&](std::uint64_t key, std::uint64_t last_seen) {
    if (last_seen + idle_us > virtual_now_us_) return false;
    engine_.close_flow(key);
    ++evicted_;
    return true;
  };
  if (max_steps == 0) {
    udp_last_seen_.sweep(evict_udp);
  } else {
    udp_last_seen_.sweep_step(max_steps, evict_udp);
  }
}

void Worker::publish_stats() {
  const ids::EngineCounters& ec = engine_.counters();
  published_.bytes_inspected.store(ec.bytes_inspected, std::memory_order_relaxed);
  published_.chunks.store(ec.chunks, std::memory_order_relaxed);
  published_.alerts.store(ec.alerts, std::memory_order_relaxed);
  published_.flows_seen.store(ec.flows, std::memory_order_relaxed);
  published_.flows_evicted.store(evicted_, std::memory_order_relaxed);
  const net::ReassemblyStats& rs = reassembler_.stats();
  published_.reassembly_drops.store(rs.dropped_segments, std::memory_order_relaxed);
  published_.duplicate_bytes_trimmed.store(rs.overlap_bytes_trimmed(),
                                           std::memory_order_relaxed);
  published_.c2s_delivered_bytes.store(rs.side[0].delivered_bytes,
                                       std::memory_order_relaxed);
  published_.s2c_delivered_bytes.store(rs.side[1].delivered_bytes,
                                       std::memory_order_relaxed);
  published_.overwritten_bytes.store(
      rs.side[0].overwritten_bytes + rs.side[1].overwritten_bytes,
      std::memory_order_relaxed);
  published_.discarded_on_close_bytes.store(rs.discarded_on_close_bytes,
                                            std::memory_order_relaxed);
  published_.connections_started.store(rs.connections_started,
                                       std::memory_order_relaxed);
  published_.connections_ended.store(rs.connections_ended, std::memory_order_relaxed);
  published_.active_flows.store(engine_.active_flows(), std::memory_order_relaxed);
  published_.tracked_connections.store(
      reassembler_.active_flows() + udp_last_seen_.size(), std::memory_order_relaxed);
  published_.rules_generation.store(engine_.generation(), std::memory_order_relaxed);
  published_.rules_swaps.store(swaps_adopted_, std::memory_order_relaxed);
  published_.prefilter_pass_payloads.store(ec.prefilter_pass_payloads,
                                           std::memory_order_relaxed);
  published_.prefilter_reject_payloads.store(ec.prefilter_reject_payloads,
                                             std::memory_order_relaxed);
  published_.prefilter_pass_bytes.store(ec.prefilter_pass_bytes,
                                        std::memory_order_relaxed);
  published_.prefilter_reject_bytes.store(ec.prefilter_reject_bytes,
                                          std::memory_order_relaxed);
}

WorkerStats Worker::stats() const {
  WorkerStats s;
  s.packets = published_.packets.load(std::memory_order_relaxed);
  s.batches = published_.batches.load(std::memory_order_relaxed);
  s.payload_bytes = published_.payload_bytes.load(std::memory_order_relaxed);
  s.bytes_inspected = published_.bytes_inspected.load(std::memory_order_relaxed);
  s.chunks = published_.chunks.load(std::memory_order_relaxed);
  s.alerts = published_.alerts.load(std::memory_order_relaxed);
  s.flows_seen = published_.flows_seen.load(std::memory_order_relaxed);
  s.flows_evicted = published_.flows_evicted.load(std::memory_order_relaxed);
  s.reassembly_drops = published_.reassembly_drops.load(std::memory_order_relaxed);
  s.duplicate_bytes_trimmed =
      published_.duplicate_bytes_trimmed.load(std::memory_order_relaxed);
  s.c2s_delivered_bytes = published_.c2s_delivered_bytes.load(std::memory_order_relaxed);
  s.s2c_delivered_bytes = published_.s2c_delivered_bytes.load(std::memory_order_relaxed);
  s.overwritten_bytes = published_.overwritten_bytes.load(std::memory_order_relaxed);
  s.discarded_on_close_bytes =
      published_.discarded_on_close_bytes.load(std::memory_order_relaxed);
  s.connections_started = published_.connections_started.load(std::memory_order_relaxed);
  s.connections_ended = published_.connections_ended.load(std::memory_order_relaxed);
  s.active_flows = published_.active_flows.load(std::memory_order_relaxed);
  s.tracked_connections = published_.tracked_connections.load(std::memory_order_relaxed);
  s.rules_generation = published_.rules_generation.load(std::memory_order_relaxed);
  s.rules_swaps = published_.rules_swaps.load(std::memory_order_relaxed);
  s.processed_packets = published_.processed_packets.load(std::memory_order_relaxed);
  s.shed_packets = published_.shed_packets.load(std::memory_order_relaxed);
  s.shed_bytes = published_.shed_bytes.load(std::memory_order_relaxed);
  s.degradation_level = published_.degradation_level.load(std::memory_order_relaxed);
  s.degradation_transitions =
      published_.degradation_transitions.load(std::memory_order_relaxed);
  s.heartbeats = heartbeat_.load(std::memory_order_relaxed);
  s.sink_errors = guarded_sink_.errors();
  s.sink_quarantined = guarded_sink_.quarantined() ? 1 : 0;
  s.prefilter_pass_payloads =
      published_.prefilter_pass_payloads.load(std::memory_order_relaxed);
  s.prefilter_reject_payloads =
      published_.prefilter_reject_payloads.load(std::memory_order_relaxed);
  s.prefilter_pass_bytes =
      published_.prefilter_pass_bytes.load(std::memory_order_relaxed);
  s.prefilter_reject_bytes =
      published_.prefilter_reject_bytes.load(std::memory_order_relaxed);
  return s;
}

}  // namespace vpm::pipeline
