// Bounded single-producer / single-consumer ring queue.
//
// The pipeline moves packet batches from the ingest thread to each worker
// through one of these: exactly one thread pushes and exactly one thread
// pops, so the only synchronization needed is a release store / acquire load
// pair on each index.  Both sides keep a cached copy of the opposing index
// so the common case (queue neither full nor empty) touches no cross-core
// cache line.  Capacity is rounded up to a power of two.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/failpoint.hpp"

namespace vpm::pipeline {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // Producer side.  Moves `item` in on success; leaves it untouched when the
  // ring is full.
  bool try_push(T& item) {
    // Chaos hook: report "full" without touching the item — callers follow
    // their real backpressure path (block retries, drop counts the loss).
    if (util::failpoint::should_fail(util::failpoint::Site::ring_push)) return false;
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= capacity()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= capacity()) return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side.
  bool try_pop(T& out) {
    // Chaos hook: report "empty" (a consumer hiccup); nothing is lost — the
    // batch is popped on a later attempt.
    if (util::failpoint::should_fail(util::failpoint::Site::ring_pop)) return false;
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Approximate occupancy (either side may be mid-operation).
  std::size_t size_approx() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  bool empty_approx() const { return size_approx() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // next slot to pop
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // next slot to push
  alignas(64) std::uint64_t cached_head_ = 0;       // producer's view of head_
  alignas(64) std::uint64_t cached_tail_ = 0;       // consumer's view of tail_
};

}  // namespace vpm::pipeline
