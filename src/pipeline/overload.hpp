// Watermark-driven graceful-degradation ladder.
//
// The overload signal is the worker's own ring occupancy: a ring filling up
// means the worker is falling behind its shard's arrival rate, and under the
// block backpressure policy that stall propagates to the ingest thread and
// every other shard.  Instead of wedging (block) or dropping blindly at the
// tail (drop), an overloaded worker climbs a ladder of increasingly lossy
// countermeasures — each rung sacrifices the least valuable work first, and
// every sacrificed byte is accounted (WorkerStats::shed_*):
//
//   rung 0  normal          full fidelity
//   rung 1  shrink_budgets  per-connection reassembly buffering budget drops
//                           to budget_factor of its configured value: the
//                           memory- and CPU-hungriest evasion state goes
//                           first, in-order traffic is untouched
//   rung 2  evict_early     idle flows are evicted on a much shorter timeout
//                           and sweeps run more often, bounding flow-table
//                           growth under churn floods
//   rung 3  shed_load       lowest-value packets are discarded before any
//                           processing: oversized payloads and the long-tail
//                           flows that dominated bytes during the overload
//                           episode (an elephant flow starves thousands of
//                           mice — shedding it frees the most capacity at
//                           the smallest coverage loss)
//
// Transitions move ONE rung per evaluation (a batch boundary), with
// hysteresis: the ladder climbs at enter_fill[rung] and only descends below
// exit_fill[rung-1] (< enter), so a fill level oscillating around one
// watermark cannot flap the ladder.  The manager itself is plain single-
// threaded state owned by the worker; only the mirrored stats gauge crosses
// threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace vpm::pipeline {

enum class DegradationLevel : std::uint8_t {
  normal = 0,
  shrink_budgets = 1,
  evict_early = 2,
  shed_load = 3,
};

inline constexpr std::size_t kDegradationLevels = 4;

constexpr const char* degradation_level_name(DegradationLevel l) {
  switch (l) {
    case DegradationLevel::normal: return "normal";
    case DegradationLevel::shrink_budgets: return "shrink_budgets";
    case DegradationLevel::evict_early: return "evict_early";
    case DegradationLevel::shed_load: return "shed_load";
  }
  return "?";
}

struct OverloadConfig {
  bool enabled = false;

  // Watermarks as ring-fill fractions (0..1).  enter_fill[i] climbs from
  // rung i to i+1; exit_fill[i] descends from rung i+1 back to i.  Sane
  // configs keep exit_fill[i] < enter_fill[i] (the hysteresis band) and both
  // arrays monotonically increasing.
  double enter_fill[kDegradationLevels - 1] = {0.50, 0.75, 0.90};
  double exit_fill[kDegradationLevels - 1] = {0.30, 0.55, 0.75};

  // Rung 1: the reassembly buffering budget becomes
  // max(1, budget_factor * configured max_buffered_bytes).
  double budget_factor = 0.25;

  // Rung 2: idle timeout drops to min(configured, degraded_idle_timeout_us)
  // — or to degraded_idle_timeout_us outright when eviction was disabled —
  // and sweeps run every eviction_sweep_packets/4 packets.
  std::uint64_t degraded_idle_timeout_us = 1'000'000;  // 1 s of capture time

  // Rung 3 shed criteria: a packet is shed when its payload exceeds
  // shed_payload_bytes, or when its connection has already contributed more
  // than shed_flow_total_bytes of payload during this overload episode
  // (per-connection byte counts start at rung 3 and reset on descent, so
  // the tracking map is empty in normal operation).
  std::size_t shed_payload_bytes = 1200;
  std::uint64_t shed_flow_total_bytes = 64 * 1024;
};

// Named policies for CLI/config surfaces: "off", "conservative" (the
// OverloadConfig defaults, enabled), "aggressive" (earlier watermarks,
// deeper budget cut, tighter shed criteria).  Unknown names -> nullopt.
std::optional<OverloadConfig> overload_policy_from_name(std::string_view name);

class OverloadManager {
 public:
  explicit OverloadManager(const OverloadConfig& cfg) : cfg_(cfg) {}

  // Evaluates one ladder step against the current ring-fill fraction.
  // Moves at most one rung; returns the (possibly unchanged) level.
  DegradationLevel update(double ring_fill) {
    const std::size_t cur = static_cast<std::size_t>(level_);
    if (cur + 1 < kDegradationLevels && ring_fill >= cfg_.enter_fill[cur]) {
      level_ = static_cast<DegradationLevel>(cur + 1);
      ++transitions_;
    } else if (cur > 0 && ring_fill < cfg_.exit_fill[cur - 1]) {
      level_ = static_cast<DegradationLevel>(cur - 1);
      ++transitions_;
    }
    return level_;
  }

  DegradationLevel level() const { return level_; }
  std::uint64_t transitions() const { return transitions_; }
  const OverloadConfig& config() const { return cfg_; }

 private:
  OverloadConfig cfg_;
  DegradationLevel level_ = DegradationLevel::normal;
  std::uint64_t transitions_ = 0;
};

}  // namespace vpm::pipeline
