#include "pipeline/watchdog.hpp"

#include <chrono>

namespace vpm::pipeline {

void Watchdog::start() {
  if (thread_.joinable() || watched_.empty()) return;
  samples_.assign(watched_.size(), Sample{});
  for (std::size_t i = 0; i < watched_.size(); ++i) {
    samples_[i].last_beat = watched_[i].heartbeat->load(std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = false;
  }
  thread_ = std::thread([this] { run(); });
}

void Watchdog::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (cv_.wait_for(lock, std::chrono::milliseconds(cfg_.interval_ms),
                     [this] { return stopping_; })) {
      return;
    }
    // Sampling needs no lock (heartbeats are atomics; samples_ is ours), but
    // holding it across the short pass is harmless and keeps stop() simple.
    std::uint64_t stalled_now = 0;
    for (std::size_t i = 0; i < watched_.size(); ++i) {
      Sample& s = samples_[i];
      const std::uint64_t beat = watched_[i].heartbeat->load(std::memory_order_relaxed);
      if (beat != s.last_beat) {
        s.last_beat = beat;
        s.flat = 0;
        s.in_stall = false;
        continue;
      }
      if (watched_[i].finished->load(std::memory_order_acquire)) {
        // Clean exit: a flat heartbeat is expected, not a stall.
        s.flat = 0;
        s.in_stall = false;
        continue;
      }
      if (++s.flat >= cfg_.stall_intervals) {
        if (!s.in_stall) {
          s.in_stall = true;
          stalls_.fetch_add(1, std::memory_order_relaxed);
        }
        ++stalled_now;
        s.flat = cfg_.stall_intervals;  // saturate; avoid overflow on long wedges
      }
    }
    stalled_now_.store(stalled_now, std::memory_order_relaxed);
  }
}

}  // namespace vpm::pipeline
