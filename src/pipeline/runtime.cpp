#include "pipeline/runtime.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "capture/topology.hpp"
#include "util/failpoint.hpp"

namespace vpm::pipeline {

namespace {

// Worker i -> ruleset-replica slot.  Without NUMA replication every worker
// reads slot 0.  With it, workers pinned to CPUs of the same NUMA node share
// a slot; slots are numbered in first-seen order so slot 0 is always
// populated.
std::vector<std::size_t> compute_worker_slots(const PipelineConfig& cfg) {
  std::vector<std::size_t> slots(cfg.workers, 0);
  if (!cfg.numa_replicate_rules || cfg.worker_cpus.empty()) return slots;
  const capture::CpuTopology topo = capture::CpuTopology::detect();
  std::vector<int> seen_nodes;
  for (unsigned i = 0; i < cfg.workers; ++i) {
    const int cpu = cfg.worker_cpus[i % cfg.worker_cpus.size()];
    const int node = std::max(topo.node_of(cpu), 0);
    std::size_t slot = seen_nodes.size();
    for (std::size_t s = 0; s < seen_nodes.size(); ++s) {
      if (seen_nodes[s] == node) {
        slot = s;
        break;
      }
    }
    if (slot == seen_nodes.size()) seen_nodes.push_back(node);
    slots[i] = slot;
  }
  return slots;
}

}  // namespace

PipelineRuntime::PipelineRuntime(ids::GroupedRulesPtr rules, DatabasePtr db,
                                 PipelineConfig cfg)
    : cfg_(cfg) {
  if (cfg_.workers == 0) cfg_.workers = 1;
  if (cfg_.batch_packets == 0) cfg_.batch_packets = 1;
  worker_slot_ = compute_worker_slots(cfg_);
  std::size_t num_slots = 1;
  for (const std::size_t s : worker_slot_) num_slots = std::max(num_slots, s + 1);

  // Slot 0 adopts the caller's instance; further slots get their own
  // GroupedRules compiled off the same database — same generation (it comes
  // from the database), node-local matcher tables.  The legacy PatternSet
  // path has no database to recompile from and shares the one instance.
  std::vector<ids::GroupedRulesPtr> replicas(num_slots, rules);
  for (std::size_t s = 1; s < num_slots && db != nullptr; ++s) {
    replicas[s] = std::make_shared<const ids::GroupedRules>(db);
  }
  rules_channels_.reserve(num_slots);
  for (std::size_t s = 0; s < num_slots; ++s) {
    rules_channels_.push_back(std::make_unique<RulesChannel>());
    rules_channels_.back()->set_initial(replicas[s]);
  }

  workers_.reserve(cfg_.workers);
  for (unsigned i = 0; i < cfg_.workers; ++i) {
    const std::size_t slot = worker_slot_[i];
    workers_.push_back(
        std::make_unique<Worker>(replicas[slot], cfg_, rules_channels_[slot].get()));
    if (!cfg_.worker_cpus.empty()) {
      workers_.back()->set_cpu(cfg_.worker_cpus[i % cfg_.worker_cpus.size()]);
    }
    if (cfg_.metrics != nullptr) workers_.back()->enable_telemetry(*cfg_.metrics, i);
  }
  std::vector<ShardRouter::Ring*> rings;
  rings.reserve(workers_.size());
  for (auto& w : workers_) rings.push_back(&w->ring());
  // Telemetry on => the router stamps batches so workers can measure dwell.
  router_ = std::make_unique<ShardRouter>(std::move(rings), cfg_.batch_packets,
                                          cfg_.backpressure, cfg_.metrics != nullptr);
}

PipelineRuntime::PipelineRuntime(DatabasePtr db, PipelineConfig cfg)
    : PipelineRuntime(std::make_shared<const ids::GroupedRules>(db), db, cfg) {}

PipelineRuntime::PipelineRuntime(const pattern::PatternSet& rules, PipelineConfig cfg)
    // Legacy shim: generation-0 rules, matching the legacy single-threaded
    // IdsEngine(rules, cfg) reference alert-for-alert.
    : PipelineRuntime(std::make_shared<const ids::GroupedRules>(rules, cfg.algorithm),
                      nullptr, cfg) {}

void PipelineRuntime::swap_database(DatabasePtr db) {
  if (db == nullptr) {
    throw std::invalid_argument("PipelineRuntime::swap_database: null database");
  }
  // Chaos hook: a publish that fails BEFORE the channel store must leave the
  // previous generation fully live (workers keep scanning; no packet drops).
  if (util::failpoint::should_fail(util::failpoint::Site::hot_swap_publish)) {
    throw std::runtime_error(
        "PipelineRuntime::swap_database: injected publish failure (failpoint)");
  }
  // Control-plane compile (one per replica slot; every replica reports the
  // database's generation); the scan path never blocks on it.  publish()
  // orders the slot write before the seq bump, pairing with the workers'
  // seq-then-slot reads: observing the bump implies observing the rules.
  // Publications to the per-node channels are not atomic as a set, but
  // adoption was already per-worker at batch boundaries, so the swap
  // contract (every alert tagged with the generation that produced it) is
  // unchanged.
  for (auto& channel : rules_channels_) {
    channel->publish(std::make_shared<const ids::GroupedRules>(db));
  }
}

std::uint64_t PipelineRuntime::generation() const {
  const ids::GroupedRulesPtr rules = rules_channels_.front()->current();
  return rules != nullptr ? rules->generation() : 0;
}

void PipelineRuntime::quiesce() {
  if (!running_) return;
  router_->flush();
  for (;;) {
    std::uint64_t processed = 0;
    for (const auto& w : workers_) processed += w->stats().packets;
    if (processed >= router_->routed()) return;
    std::this_thread::yield();
  }
}

PipelineRuntime::~PipelineRuntime() {
  if (running_) stop();
}

void PipelineRuntime::start() {
  if (running_ || stopped_) {
    throw std::logic_error("PipelineRuntime::start: runtime is one-shot");
  }
  for (auto& w : workers_) w->start();
  if (cfg_.watchdog_interval_ms > 0) {
    Watchdog::Config wc;
    wc.interval_ms = cfg_.watchdog_interval_ms;
    wc.stall_intervals = cfg_.watchdog_stall_intervals;
    watchdog_ = std::make_unique<Watchdog>(wc);
    for (auto& w : workers_) {
      watchdog_->watch({&w->heartbeat_counter(), &w->finished_flag()});
    }
    watchdog_->start();
  }
  running_ = true;
}

bool PipelineRuntime::submit(net::Packet packet) {
  if (!running_) throw std::logic_error("PipelineRuntime::submit: not running");
  submitted_.fetch_add(1, std::memory_order_relaxed);
  return router_->route(std::move(packet));
}

std::size_t PipelineRuntime::submit(std::span<const net::Packet> packets) {
  // Drops happen at batch granularity, so "how many of *these* packets
  // survived" is measured against the drop counter, not per-call returns.
  const std::uint64_t dropped_before = router_->dropped();
  for (const net::Packet& p : packets) submit(p);
  const std::uint64_t dropped = router_->dropped() - dropped_before;
  return packets.size() > dropped ? packets.size() - static_cast<std::size_t>(dropped)
                                  : 0;
}

void PipelineRuntime::flush() {
  if (running_) router_->flush();
}

void PipelineRuntime::stop() {
  if (!running_) return;
  router_->flush();
  // done_ is set only after the flush above, so a worker that observes it
  // and then finds its ring empty has truly consumed everything.
  for (auto& w : workers_) w->request_stop();
  for (auto& w : workers_) w->join();
  // After the joins: the workers' finished flags are set, so stopping the
  // sampler here can never miss a real stall or flag a false one.
  if (watchdog_ != nullptr) watchdog_->stop();
  for (auto& w : workers_) {
    std::vector<ids::Alert>& a = w->alerts();
    alerts_.insert(alerts_.end(), a.begin(), a.end());
    a.clear();
    a.shrink_to_fit();
  }
  running_ = false;
  stopped_ = true;
}

PipelineStats PipelineRuntime::stats() const {
  PipelineStats s;
  s.workers.reserve(workers_.size());
  for (const auto& w : workers_) s.workers.push_back(w->stats());
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.routed = router_->routed();
  s.dropped_backpressure = router_->dropped();
  if (watchdog_ != nullptr) s.watchdog_stalls = watchdog_->stalls();
  for (const auto& w : workers_) {
    if (w->failed()) {
      ++s.worker_failures;
      s.errors.push_back(w->error());
    }
  }
  return s;
}

}  // namespace vpm::pipeline
