// Flow-sharded packet routing with batching and backpressure.
//
// Every packet of a flow must reach the same worker in submission order —
// that is the whole determinism story of the pipeline: per-flow stream order
// is preserved by construction (one FIFO ring per shard), and flows never
// share mutable state across workers.  The shard index is derived from the
// direction-symmetric connection key (FiveTuple::conn_hash), so BOTH
// directions of a TCP connection — and any two tuples that collide in the
// key — land on the same worker and behave exactly as they would
// single-threaded.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "pipeline/config.hpp"
#include "pipeline/spsc_ring.hpp"

namespace vpm::pipeline {

// Shard index for a tuple (splitmix64 finalizer over the flow key, so the
// raw key's low bits need not be well distributed).
unsigned shard_of(const net::FiveTuple& tuple, unsigned shards);

class ShardRouter {
 public:
  using Ring = SpscRing<PacketBatch>;

  // `rings[i]` receives shard i's batches; pointers must outlive the router.
  // `stamp_enqueue_time` makes every pushed batch carry a steady-clock
  // timestamp (PacketBatch::enqueue_ns) so consumers can measure ring dwell;
  // off by default — the uninstrumented path pays no clock reads.
  ShardRouter(std::vector<Ring*> rings, std::size_t batch_packets,
              BackpressurePolicy policy, bool stamp_enqueue_time = false);

  // Routes one packet; pushes its shard's batch when full.  Returns false
  // only when the drop policy discarded the batch the packet was put in.
  bool route(net::Packet&& packet);

  // Pushes every partial batch (end of input / drain).
  void flush();

  // Relaxed atomics: readable from any thread for stats snapshots.
  std::uint64_t routed() const { return routed_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  bool push_batch(std::size_t shard);

  std::vector<Ring*> rings_;
  std::vector<PacketBatch> pending_;  // one partial batch per shard
  std::size_t batch_packets_;
  BackpressurePolicy policy_;
  bool stamp_enqueue_time_;
  std::atomic<std::uint64_t> routed_{0};   // packets successfully pushed into a ring
  std::atomic<std::uint64_t> dropped_{0};  // packets discarded under the drop policy
};

}  // namespace vpm::pipeline
