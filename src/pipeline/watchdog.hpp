// Worker liveness watchdog.
//
// Every worker bumps a relaxed heartbeat counter once per loop iteration —
// including idle spins, so a heartbeat only stops advancing when the thread
// is genuinely wedged inside a batch (a sink blocking forever, a stuck
// syscall, an engine livelock).  The watchdog thread samples all heartbeats
// every interval_ms; a worker whose heartbeat has not advanced for
// stall_intervals consecutive samples (and whose finished flag is unset)
// enters the "stalled" state, counted ONCE per episode — when the heartbeat
// advances again the episode ends and a later wedge counts as a new one.
//
// The watchdog observes and counts; it never kills a thread (there is no
// safe way to reclaim a wedged thread's engine state mid-scan).  Containment
// of the common wedge cause — a misbehaving alert sink — is the GuardedSink
// quarantine in the worker itself; the watchdog is the backstop that makes
// any remaining stall visible in stats()/metrics instead of silent.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace vpm::pipeline {

class Watchdog {
 public:
  struct Config {
    std::uint64_t interval_ms = 100;   // sample period
    unsigned stall_intervals = 5;      // flat samples before a stall is flagged
  };

  // One monitored thread: the heartbeat it bumps and the flag it sets on
  // clean exit.  Both must outlive the watchdog.
  struct Watched {
    const std::atomic<std::uint64_t>* heartbeat = nullptr;
    const std::atomic<bool>* finished = nullptr;
  };

  explicit Watchdog(Config cfg) : cfg_(cfg) {
    if (cfg_.interval_ms == 0) cfg_.interval_ms = 1;
    if (cfg_.stall_intervals == 0) cfg_.stall_intervals = 1;
  }
  ~Watchdog() { stop(); }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Call before start(); not thread-safe against a running watchdog.
  void watch(Watched w) { watched_.push_back(w); }

  void start();
  void stop();  // idempotent; joins the sampler thread

  // Stall episodes flagged so far (cumulative), and how many workers are in
  // a stall episode right now.
  std::uint64_t stalls() const { return stalls_.load(std::memory_order_relaxed); }
  std::uint64_t currently_stalled() const {
    return stalled_now_.load(std::memory_order_relaxed);
  }

 private:
  void run();

  Config cfg_;
  std::vector<Watched> watched_;

  struct Sample {
    std::uint64_t last_beat = 0;
    unsigned flat = 0;       // consecutive samples with no advance
    bool in_stall = false;   // episode already counted
  };
  std::vector<Sample> samples_;

  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> stalled_now_{0};

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace vpm::pipeline
