// Configuration for the sharded multi-worker pipeline runtime.
//
// The runtime mirrors an RSS-style NIC deployment: each flow is hashed to
// one worker shard, so per-flow packet order is preserved without locks on
// the hot path, and every worker owns a private TcpReassembler + IdsEngine
// pair (shared-nothing; the only cross-thread structures are the SPSC rings
// and the stats counters).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/matcher_factory.hpp"
#include "core/prefilter.hpp"
#include "ids/alert.hpp"
#include "net/packet.hpp"
#include "net/reassembly.hpp"
#include "pipeline/overload.hpp"

namespace vpm::telemetry {
class MetricsRegistry;
}

namespace vpm::pipeline {

// A unit of transfer through the rings: packets are moved in batches to
// amortize queue synchronization over many small segments.  The router
// stamps enqueue_ns (steady-clock) as it pushes when telemetry is enabled,
// so the consuming worker can histogram ring dwell time; 0 = unstamped.
struct PacketBatch {
  std::vector<net::Packet> packets;
  std::uint64_t enqueue_ns = 0;

  auto begin() { return packets.begin(); }
  auto end() { return packets.end(); }
  auto begin() const { return packets.begin(); }
  auto end() const { return packets.end(); }
  std::size_t size() const { return packets.size(); }
  bool empty() const { return packets.empty(); }
  void reserve(std::size_t n) { packets.reserve(n); }
  void push_back(net::Packet p) { packets.push_back(std::move(p)); }
  void clear() {
    packets.clear();
    enqueue_ns = 0;
  }
};

// The pipeline's per-STREAM identity: the engine flow id every worker uses —
// directional, so each side of a TCP connection scans as its own stream —
// and identical to what a single-threaded reference over the same packets
// would compute, which is what makes the sharded alert multiset comparable.
// Sharding does NOT use this key: the shard index derives from the
// direction-symmetric FiveTuple::conn_hash() so both sides of a connection
// always land on the same worker (see shard_of).
inline std::uint64_t flow_key(const net::FiveTuple& tuple) { return tuple.hash(); }

// What the ingest side does when a worker's ring is full.
//   block: spin/yield until the worker catches up (lossless, default).
//   drop:  discard the batch and count the packets (NIC-like tail drop).
enum class BackpressurePolicy : std::uint8_t { block, drop };

struct PipelineConfig {
  // Engine for the legacy PatternSet constructor only; the DatabasePtr
  // constructor takes the algorithm from the compiled database.
  core::Algorithm algorithm = core::Algorithm::vpatch;
  // Approximate q-gram prefilter ahead of each worker's exact engines.
  // Alert output is mode-independent (zero false negatives); `automatic`
  // screens heavy groups and adaptively bypasses when traffic is match-heavy.
  core::PrefilterMode prefilter = core::PrefilterMode::automatic;
  unsigned workers = 2;              // shard / worker-thread count (>= 1)
  std::size_t batch_packets = 32;    // packets per batch before a ring push
  std::size_t ring_batches = 256;    // per-worker ring capacity, in batches
  BackpressurePolicy backpressure = BackpressurePolicy::block;

  // Idle-flow eviction keeps per-worker flow tables bounded under churn.
  // Time is packet-capture time (Packet::timestamp_us), not wall time, so
  // replays behave identically at any speed.  0 disables eviction.
  std::uint64_t idle_timeout_us = 0;
  std::size_t eviction_sweep_packets = 512;  // packets between sweeps
  // Upper bound on flow-table slots examined per eviction sweep.  0 = full
  // sweep every time (exact, but an O(table) latency spike at million-flow
  // scale).  Nonzero bounds per-batch eviction work: each sweep advances a
  // rotating cursor by at most this many slots, so idle flows are evicted
  // with bounded lag instead of a stall — the soak bench quantifies the
  // spike-vs-debt trade.  Small tables are unaffected (a bound >= capacity
  // is a full sweep).
  std::size_t eviction_max_steps = 0;

  // Worker→CPU pinning: worker i pins its thread to worker_cpus[i %
  // worker_cpus.size()] at startup.  Empty = no pinning (the default; the
  // scheduler places threads).  Fill from --cpu-list, or from
  // capture::CpuTopology for NUMA-interleaved placement.
  std::vector<int> worker_cpus;
  // With pinning in effect, compile one GroupedRules instance per distinct
  // NUMA node the pinned workers land on (instead of one shared instance),
  // so each socket scans its node-local copy of the compiled arena.  Applies
  // to the DatabasePtr constructor and swap_database(); ignored (single
  // shared instance) when worker_cpus is empty or the host has one node.
  bool numa_replicate_rules = false;

  net::ReassemblyLimits reassembly{};

  // Graceful degradation under overload (see pipeline/overload.hpp for the
  // ladder).  Disabled by default: the pipeline then behaves exactly as
  // before — block or drop at the ring, full fidelity everywhere else.
  OverloadConfig overload{};

  // Worker liveness watchdog.  0 disables (no sampler thread).  A worker
  // whose heartbeat stays flat for watchdog_stall_intervals consecutive
  // samples counts one stall episode in stats().watchdog_stalls.
  std::uint64_t watchdog_interval_ms = 0;
  unsigned watchdog_stall_intervals = 5;

  // Alert-sink containment: after this many CONSECUTIVE delivery failures
  // (exceptions from cfg.alert_sink) the worker quarantines the sink —
  // further alerts are counted and dropped instead of risking a wedged or
  // crashing engine.  One successful delivery resets the streak.
  unsigned sink_quarantine_after = 8;

  // Optional live alert delivery.  Called from worker threads concurrently;
  // the sink must be thread-safe.  When null, alerts are buffered per worker
  // and available from PipelineRuntime::alerts() after stop().
  ids::AlertSink* alert_sink = nullptr;

  // Optional telemetry.  When set, the runtime registers per-worker latency
  // and size histograms plus per-rule-group counters in the registry (the
  // vpm_* families; see telemetry/pipeline_metrics.hpp for the stats-derived
  // ones) and workers record into them: ring dwell and scan/flush latency,
  // batch fill, reassembled chunk sizes, per-group scan bytes and alerts.
  // Recording is relaxed-atomic and allocation-free; null keeps the hot path
  // byte-identical to the uninstrumented build (no clock reads).  The
  // registry must outlive the runtime.
  telemetry::MetricsRegistry* metrics = nullptr;
};

}  // namespace vpm::pipeline
