// One pipeline shard: a consumer thread owning a private TcpReassembler +
// IdsEngine pair, fed packet batches through an SPSC ring.
//
// Shared-nothing on the hot path: the worker's flow tables, scratch, and
// alert buffer are touched only by its thread; the ring, the atomic counter
// mirror, and the read-only shared compiled ruleset (GroupedRulesPtr — one
// instance per generation, shared by every worker instead of compiled per
// worker) are the only cross-thread state.  Flow ids are the stable
// flow_key (tuple hash), so a worker's alerts are bitwise what a
// single-threaded engine would emit for the same flows.
//
// Ruleset hot-swap (RCU-style): the runtime publishes a new generation into
// the shared RulesChannel (shared_ptr slot + sequence counter).  Each worker
// polls the sequence — one lock-free atomic load per loop iteration; the
// scan path never takes a lock — and adopts the new rules at a batch
// boundary: after popping a batch and before processing it, or while idle.
// The ring's release-push/acquire-pop pairing guarantees a batch pushed
// after a publish is never processed under the old rules.  The old
// generation is retired (destroyed) when the last worker drops its
// reference.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/flow_table.hpp"

#include "ids/engine.hpp"
#include "net/reassembly.hpp"
#include "pipeline/config.hpp"
#include "pipeline/overload.hpp"
#include "pipeline/spsc_ring.hpp"
#include "pipeline/stats.hpp"

namespace vpm::telemetry {
class Histogram;
class MetricsRegistry;
}

namespace vpm::pipeline {

// The ruleset publication slot shared by the runtime (writer) and every
// worker (reader).  The lock-free seq gate is what workers poll on the scan
// path; the shared_ptr slot itself is mutex-guarded (touched only on
// publish and on the rare adoption after seq changed — not std::atomic<
// shared_ptr>, whose libstdc++ lock-bit protocol ThreadSanitizer cannot see
// through and reports as a race).  Writer order: slot under the mutex, then
// seq bump (release); readers load seq (acquire), then the slot — observing
// the bump therefore implies observing the new rules.
class RulesChannel {
 public:
  std::uint64_t sequence() const { return seq_.load(std::memory_order_acquire); }

  ids::GroupedRulesPtr current() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return slot_;
  }

  // Publishes without bumping seq (the initial ruleset workers are born
  // with).
  void set_initial(ids::GroupedRulesPtr rules) {
    std::lock_guard<std::mutex> lock(mutex_);
    slot_ = std::move(rules);
  }

  void publish(ids::GroupedRulesPtr rules) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      slot_ = std::move(rules);
    }
    seq_.fetch_add(1, std::memory_order_release);
  }

 private:
  mutable std::mutex mutex_;
  ids::GroupedRulesPtr slot_;
  std::atomic<std::uint64_t> seq_{0};
};

// Exception containment between the engine and a user-supplied alert sink.
// A sink that throws must not take the worker (and with it the whole
// pipeline) down: each failure is counted, and after quarantine_after
// CONSECUTIVE failures the sink is quarantined — alerts are counted and
// dropped instead of retried forever.  One successful delivery resets the
// streak.  on_alert runs only on the owning worker's thread; the counters
// are atomics so stats() can read them from anywhere.
class GuardedSink final : public ids::AlertSink {
 public:
  GuardedSink(ids::AlertSink* inner, unsigned quarantine_after)
      : inner_(inner),
        quarantine_after_(quarantine_after == 0 ? 1 : quarantine_after) {}

  void on_alert(const ids::Alert& alert) override;

  std::uint64_t errors() const { return errors_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  bool quarantined() const { return quarantined_.load(std::memory_order_relaxed); }

 private:
  ids::AlertSink* inner_;
  const unsigned quarantine_after_;
  unsigned consecutive_ = 0;  // worker-thread-local
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> dropped_{0};  // alerts swallowed while quarantined
  std::atomic<bool> quarantined_{false};
};

class Worker {
 public:
  // Adopts `rules` (a shared compiled ruleset; no per-worker compile) and
  // watches `swaps` (may be null: hot-swap disabled) for new generations.
  Worker(ids::GroupedRulesPtr rules, const PipelineConfig& cfg,
         const RulesChannel* swaps = nullptr);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  SpscRing<PacketBatch>& ring() { return ring_; }

  // Pins the worker thread to `cpu` when it starts (sched_setaffinity; -1 =
  // unpinned).  Call before start().  A failed pin is non-fatal: the worker
  // runs wherever the scheduler puts it.
  void set_cpu(int cpu) { pin_cpu_ = cpu; }

  void start();
  // Tells the thread to exit once the ring is drained (producer must have
  // flushed and stopped pushing first).
  void request_stop();
  void join();

  // Coherent-enough snapshot; callable from any thread while running.
  WorkerStats stats() const;

  // Registers this worker's instruments (labelled worker="index") in `reg`
  // and starts recording into them: ring dwell, batch fill, scan/flush
  // latency, reassembled chunk sizes, per-rule-group scan bytes and alerts.
  // Call before start(); `reg` must outlive the worker.  All registration
  // allocation happens here — the recording paths are allocation-free.
  void enable_telemetry(telemetry::MetricsRegistry& reg, unsigned index);

  // The worker's buffered alerts (empty when cfg.alert_sink routed them
  // elsewhere).  Only valid after join().
  std::vector<ids::Alert>& alerts() { return alerts_; }

  // Watchdog hooks: the loop-iteration heartbeat and the clean-exit flag
  // (set when run() returns, normally or after a contained failure).
  const std::atomic<std::uint64_t>& heartbeat_counter() const { return heartbeat_; }
  const std::atomic<bool>& finished_flag() const { return finished_; }

  // Contained catastrophic failure: the worker thread threw, logged the
  // error, drained its ring (counting everything as shed) and exited.
  // error() is valid once failed() returns true.
  bool failed() const { return failed_.load(std::memory_order_acquire); }
  const std::string& error() const { return error_; }

 private:
  void run();
  void run_loop();
  void drain_after_failure();
  void maybe_adopt_rules();
  void process(PacketBatch& batch);
  void handle_packet(net::Packet& packet);
  bool should_shed(const net::Packet& packet);
  void apply_overload();
  void sweep_idle(std::uint64_t idle_us);
  void publish_stats();

  const PipelineConfig cfg_;
  SpscRing<PacketBatch> ring_;
  net::TcpReassembler reassembler_;
  ids::IdsEngine engine_;
  std::vector<ids::Alert> alerts_;
  ids::AlertBuffer buffer_sink_{alerts_};
  // Every alert flows through the guard (failpoint + quarantine), wrapping
  // either the external cfg_.alert_sink or the local buffer.
  GuardedSink guarded_sink_;
  ids::AlertSink* sink_;  // always &guarded_sink_

  // Hot-swap subscription (worker-thread reads; runtime writes).
  const RulesChannel* swaps_;
  std::uint64_t adopted_seq_ = 0;

  // Telemetry instruments (registry-owned; null when telemetry is off, and
  // the hot loop then performs no clock reads).
  telemetry::Histogram* ring_dwell_ = nullptr;
  telemetry::Histogram* batch_fill_ = nullptr;

  // Worker-thread-local bookkeeping.
  std::uint64_t virtual_now_us_ = 0;  // max packet timestamp seen
  std::size_t packets_since_sweep_ = 0;
  int pin_cpu_ = -1;
  // Last activity of engine-only (UDP) flows; TCP flows are tracked by the
  // reassembler itself.  Open-addressing like the reassembler's table so
  // bounded-step eviction (cfg.eviction_max_steps) covers UDP churn too.
  util::FlowTable<std::uint64_t, std::uint64_t, util::U64Hash> udp_last_seen_;

  // Degradation ladder (worker-thread-only except the mirrored gauges).
  OverloadManager overload_;
  const std::size_t base_buffered_budget_;  // configured reassembly budget
  // Per-connection payload bytes observed while at shed_load; keyed by the
  // direction-symmetric conn_hash so both sides of an elephant flow count
  // together.  Populated only at rung 3 and cleared on descent, so it is
  // empty (and costs nothing) in normal operation.
  std::unordered_map<std::uint64_t, std::uint64_t> shed_flow_bytes_;

  // Published counters (relaxed; read by stats()).
  struct AtomicStats {
    std::atomic<std::uint64_t> packets{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> payload_bytes{0};
    std::atomic<std::uint64_t> bytes_inspected{0};
    std::atomic<std::uint64_t> chunks{0};
    std::atomic<std::uint64_t> alerts{0};
    std::atomic<std::uint64_t> flows_seen{0};
    std::atomic<std::uint64_t> flows_evicted{0};
    std::atomic<std::uint64_t> reassembly_drops{0};
    std::atomic<std::uint64_t> duplicate_bytes_trimmed{0};
    std::atomic<std::uint64_t> c2s_delivered_bytes{0};
    std::atomic<std::uint64_t> s2c_delivered_bytes{0};
    std::atomic<std::uint64_t> overwritten_bytes{0};
    std::atomic<std::uint64_t> discarded_on_close_bytes{0};
    std::atomic<std::uint64_t> connections_started{0};
    std::atomic<std::uint64_t> connections_ended{0};
    std::atomic<std::uint64_t> active_flows{0};
    std::atomic<std::uint64_t> tracked_connections{0};
    std::atomic<std::uint64_t> rules_generation{0};
    std::atomic<std::uint64_t> rules_swaps{0};
    std::atomic<std::uint64_t> processed_packets{0};
    std::atomic<std::uint64_t> shed_packets{0};
    std::atomic<std::uint64_t> shed_bytes{0};
    std::atomic<std::uint64_t> degradation_level{0};
    std::atomic<std::uint64_t> degradation_transitions{0};
    std::atomic<std::uint64_t> prefilter_pass_payloads{0};
    std::atomic<std::uint64_t> prefilter_reject_payloads{0};
    std::atomic<std::uint64_t> prefilter_pass_bytes{0};
    std::atomic<std::uint64_t> prefilter_reject_bytes{0};
  };
  AtomicStats published_;
  std::uint64_t evicted_ = 0;  // engine+reassembler evictions (thread-local)
  std::uint64_t swaps_adopted_ = 0;

  // Liveness + failure containment.
  std::atomic<std::uint64_t> heartbeat_{0};
  std::atomic<bool> finished_{false};
  std::atomic<bool> failed_{false};
  std::string error_;  // written by the worker thread before failed_ (release)

  std::atomic<bool> done_{false};
  std::thread thread_;
};

}  // namespace vpm::pipeline
