// One pipeline shard: a consumer thread owning a private TcpReassembler +
// IdsEngine pair, fed packet batches through an SPSC ring.
//
// Shared-nothing by construction: the worker's flow tables, scanners, and
// alert buffer are touched only by its thread; the ring and the atomic
// counter mirror are the only cross-thread state.  Flow ids are the stable
// flow_key (tuple hash), so a worker's alerts are bitwise what a
// single-threaded engine would emit for the same flows.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ids/engine.hpp"
#include "net/reassembly.hpp"
#include "pipeline/config.hpp"
#include "pipeline/spsc_ring.hpp"
#include "pipeline/stats.hpp"

namespace vpm::pipeline {

class Worker {
 public:
  // Builds this shard's engine over `rules` (each worker gets its own
  // matchers; `rules` must outlive the worker).
  Worker(const pattern::PatternSet& rules, const PipelineConfig& cfg);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  SpscRing<PacketBatch>& ring() { return ring_; }

  void start();
  // Tells the thread to exit once the ring is drained (producer must have
  // flushed and stopped pushing first).
  void request_stop();
  void join();

  // Coherent-enough snapshot; callable from any thread while running.
  WorkerStats stats() const;

  // The worker's buffered alerts (empty when cfg.alert_sink routed them
  // elsewhere).  Only valid after join().
  std::vector<ids::Alert>& alerts() { return alerts_; }

 private:
  void run();
  void process(PacketBatch& batch);
  void handle_packet(net::Packet& packet);
  void sweep_idle();
  void publish_stats();

  const PipelineConfig cfg_;
  SpscRing<PacketBatch> ring_;
  net::TcpReassembler reassembler_;
  ids::IdsEngine engine_;
  std::vector<ids::Alert> alerts_;
  ids::AlertBuffer buffer_sink_{alerts_};
  ids::AlertSink* sink_;  // cfg_.alert_sink or &buffer_sink_

  // Worker-thread-local bookkeeping.
  std::uint64_t virtual_now_us_ = 0;  // max packet timestamp seen
  std::size_t packets_since_sweep_ = 0;
  // Last activity of engine-only (UDP) flows; TCP flows are tracked by the
  // reassembler itself.
  std::unordered_map<std::uint64_t, std::uint64_t> udp_last_seen_;

  // Published counters (relaxed; read by stats()).
  struct AtomicStats {
    std::atomic<std::uint64_t> packets{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> payload_bytes{0};
    std::atomic<std::uint64_t> bytes_inspected{0};
    std::atomic<std::uint64_t> chunks{0};
    std::atomic<std::uint64_t> alerts{0};
    std::atomic<std::uint64_t> flows_seen{0};
    std::atomic<std::uint64_t> flows_evicted{0};
    std::atomic<std::uint64_t> reassembly_drops{0};
    std::atomic<std::uint64_t> duplicate_bytes_trimmed{0};
    std::atomic<std::uint64_t> active_flows{0};
  };
  AtomicStats published_;
  std::uint64_t evicted_ = 0;  // engine+reassembler evictions (thread-local)

  std::atomic<bool> done_{false};
  std::thread thread_;
};

}  // namespace vpm::pipeline
