#include "pipeline/overload.hpp"

namespace vpm::pipeline {

std::optional<OverloadConfig> overload_policy_from_name(std::string_view name) {
  if (name == "off") {
    OverloadConfig cfg;
    cfg.enabled = false;
    return cfg;
  }
  if (name == "conservative") {
    OverloadConfig cfg;
    cfg.enabled = true;
    return cfg;
  }
  if (name == "aggressive") {
    OverloadConfig cfg;
    cfg.enabled = true;
    cfg.enter_fill[0] = 0.35;
    cfg.enter_fill[1] = 0.60;
    cfg.enter_fill[2] = 0.80;
    cfg.exit_fill[0] = 0.20;
    cfg.exit_fill[1] = 0.40;
    cfg.exit_fill[2] = 0.60;
    cfg.budget_factor = 0.125;
    cfg.degraded_idle_timeout_us = 250'000;
    cfg.shed_payload_bytes = 512;
    cfg.shed_flow_total_bytes = 16 * 1024;
    return cfg;
  }
  return std::nullopt;
}

}  // namespace vpm::pipeline
