#include "dfc/vector_dfc.hpp"

#include <stdexcept>

#include "simd/cpu_features.hpp"
#include "util/hash.hpp"

#if defined(__AVX2__)
#include "simd/avx2_ops.hpp"
#endif

namespace vpm::dfc {

VectorDfcMatcher::VectorDfcMatcher(const pattern::PatternSet& set) : scalar_(set) {
  if (!simd::cpu().has_avx2_kernel()) {
    throw std::runtime_error("Vector-DFC requires AVX2");
  }
  // Interleave the short/long filters byte-wise so one gather returns both
  // (the filter-merging optimization of the paper's Fig. 3).
  const std::uint8_t* s = scalar_.df_short_.bits().data();
  const std::uint8_t* l = scalar_.df_long_.bits().data();
  const std::size_t nbytes = DirectFilter2B::kBits / 8;
  merged_.assign(2 * nbytes + util::BitArray::kGatherSlack, 0);
  for (std::size_t k = 0; k < nbytes; ++k) {
    merged_[2 * k] = s[k];
    merged_[2 * k + 1] = l[k];
  }
}

std::size_t VectorDfcMatcher::memory_bytes() const {
  return scalar_.memory_bytes() + merged_.size();
}

#if defined(__AVX2__)

void VectorDfcMatcher::scan(util::ByteView data, MatchSink& sink) const {
  const std::uint8_t* d = data.data();
  const std::size_t n = data.size();
  if (n == 0) return;

  const __m256i shuffle2 = simd::avx2::window_shuffle_mask(2);
  const std::uint8_t* merged = merged_.data();

  std::size_t i = 0;
  if (n >= 16) {
    std::uint32_t hits[16];  // leftpack writes 8 dwords past the logical end
    for (; i + 16 <= n; i += 8) {
      const __m256i win = simd::avx2::windows2(d + i, shuffle2);
      // Byte offset into the merged layout: (window >> 3) * 2.
      const __m256i byte_off = _mm256_slli_epi32(_mm256_srli_epi32(win, 3), 1);
      const __m256i word = simd::avx2::gather_u32(merged, byte_off);
      const std::uint32_t short_mask = simd::avx2::filter_testbits(word, win);
      // Long filter bits live one byte higher in the gathered word.
      const __m256i word_long = _mm256_srli_epi32(word, 8);
      const std::uint32_t long_mask = simd::avx2::filter_testbits(word_long, win);

      // Immediate scalar verification of hit lanes — the vector/scalar mix
      // that caps this variant's speedup.
      if (short_mask != 0) {
        const unsigned cnt = simd::avx2::leftpack_positions(static_cast<std::uint32_t>(i),
                                                            short_mask, hits);
        for (unsigned k = 0; k < cnt; ++k) {
          scalar_.short_table_.verify_at(data, hits[k], sink);
        }
      }
      if (long_mask != 0) {
        const unsigned cnt = simd::avx2::leftpack_positions(static_cast<std::uint32_t>(i),
                                                            long_mask, hits);
        for (unsigned k = 0; k < cnt; ++k) {
          scalar_.long_table_.verify_at(data, hits[k], sink);
        }
      }
    }
  }

  // Scalar tail, identical to DfcMatcher::scan over the remaining positions.
  for (; i + 1 < n; ++i) {
    const std::uint32_t window = util::load_u16(d + i);
    if (!scalar_.df_all_.test(window)) continue;
    if (scalar_.df_short_.test(window)) scalar_.short_table_.verify_at(data, i, sink);
    if (scalar_.df_long_.test(window)) scalar_.long_table_.verify_at(data, i, sink);
  }
  if (i == n - 1) {
    const std::uint32_t tail = d[n - 1];
    if (scalar_.df_all_.test(tail) && scalar_.df_short_.test(tail)) {
      scalar_.short_table_.verify_at(data, n - 1, sink);
    }
  }
}

#else

void VectorDfcMatcher::scan(util::ByteView data, MatchSink& sink) const {
  scalar_.scan(data, sink);  // unreachable: constructor throws without AVX2
}

#endif

}  // namespace vpm::dfc
