#include "dfc/direct_filter.hpp"

#include <cassert>

#include "pattern/prefix.hpp"

namespace vpm::dfc {

void DirectFilter2B::add_pattern_prefix(const pattern::Pattern& p) {
  assert(!p.bytes.empty());
  if (p.size() == 1) {
    const std::uint8_t b = p.bytes[0];
    for (std::uint32_t first : pattern::prefix_variants({&b, 1}, p.nocase)) {
      for (std::uint32_t second = 0; second < 256; ++second) {
        bits_.set(first | (second << 8));
      }
    }
    return;
  }
  for (std::uint32_t v : pattern::prefix_variants({p.bytes.data(), 2}, p.nocase)) {
    bits_.set(v);
  }
}

void HashedFilter4B::add_pattern_prefix(const pattern::Pattern& p) {
  assert(p.size() >= 4);
  for (std::uint32_t v : pattern::prefix_variants({p.bytes.data(), 4}, p.nocase)) {
    bits_.set(util::multiplicative_hash(v, bits_log2_));
  }
}

}  // namespace vpm::dfc
