// Vector-DFC — "a direct vectorization of DFC done by us" (paper §V).
//
// Vectorizes only DFC's filter probes (AVX2 gather over the merged
// short/long filters) but keeps the original single-pass structure: each
// vector block's hit lanes are verified immediately with scalar code.  The
// resulting scalar/vector mixing is why the paper measures only marginal
// gains for this variant, motivating S-PATCH's two-round redesign.
#pragma once

#include <memory>
#include <vector>

#include "dfc/dfc.hpp"
#include "match/matcher.hpp"

namespace vpm::dfc {

class VectorDfcMatcher final : public Matcher {
 public:
  // Throws std::runtime_error if the host lacks AVX2.
  explicit VectorDfcMatcher(const pattern::PatternSet& set);

  void scan(util::ByteView data, MatchSink& sink) const override;
  std::string_view name() const override { return "Vector-DFC"; }
  std::size_t memory_bytes() const override;

 private:
  DfcMatcher scalar_;
  // df_short_/df_long_ byte-interleaved for one-gather probing.
  std::vector<std::uint8_t> merged_;
};

// Defined in vector_dfc.cpp (compiled with -mavx2): the vectorized scan body.
}  // namespace vpm::dfc
