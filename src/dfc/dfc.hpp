// DFC (Direct Filter Classification) — the scalar baseline of Choi et al.
// as described in the paper's §II-B.
//
// Single pass, filtering and verification interleaved per input position:
// a 2-byte window probes the initial filter over all patterns; on a hit, the
// two per-length-family filters (same index) decide which compact hash
// tables to verify against, immediately.  The interleaving is precisely what
// limits Vector-DFC and what S-PATCH's two-round split removes.
#pragma once

#include "dfc/compact_table.hpp"
#include "dfc/direct_filter.hpp"
#include "match/matcher.hpp"
#include "pattern/pattern_set.hpp"

namespace vpm::dfc {

class DfcMatcher final : public Matcher {
 public:
  explicit DfcMatcher(const pattern::PatternSet& set);

  void scan(util::ByteView data, MatchSink& sink) const override;
  // scan_batch stays on the generic per-payload fallback deliberately: DFC
  // has no per-call fixed cost to amortize (no candidate buffers, no kernel
  // setup), and restructuring it into a deferred store-then-verify round
  // measured 0.7-0.9x its interleaved scan on small payloads — the
  // two-round split only pays combined with a real filtering round, which
  // is exactly what S-PATCH/V-PATCH are.
  std::string_view name() const override { return "DFC"; }
  std::size_t memory_bytes() const override;

  const DirectFilter2B& initial_filter() const { return df_all_; }
  const DirectFilter2B& short_filter() const { return df_short_; }
  const DirectFilter2B& long_filter() const { return df_long_; }

 private:
  friend class VectorDfcMatcher;

  DirectFilter2B df_all_;    // first two bytes of every pattern
  DirectFilter2B df_short_;  // patterns of 1..3 bytes
  DirectFilter2B df_long_;   // patterns of >= 4 bytes
  ShortTable short_table_;
  LongTable long_table_;
};

}  // namespace vpm::dfc
