// Direct filters: the cache-resident bitmaps at the heart of DFC and
// S-PATCH/V-PATCH.
//
// DirectFilter2B is "a bit-array that summarizes only a specific part of each
// pattern, e.g. its first two bytes, having one bit for every possible
// combination of two characters" (paper §II-B): 2^16 bits = 8 KB, L1-resident.
// HashedFilter4B is the S-PATCH third filter: a bitmap indexed by a
// multiplicative hash of a 4-byte window, size/collision trade-off tunable.
#pragma once

#include <cstdint>

#include "pattern/pattern.hpp"
#include "util/bitarray.hpp"
#include "util/hash.hpp"

namespace vpm::dfc {

class DirectFilter2B {
 public:
  static constexpr std::size_t kBits = 1u << 16;

  DirectFilter2B() : bits_(kBits) {}

  // Marks a pattern's 2-byte prefix (all case variants when nocase).
  // 1-byte patterns wildcard the second byte: every (p0, x) combination is
  // set, which also makes the explicit zero-padded tail window test correct
  // at the last input position.
  void add_pattern_prefix(const pattern::Pattern& p);

  bool test(std::uint32_t window2) const { return bits_.test(window2); }
  const util::BitArray& bits() const { return bits_; }
  double occupancy() const { return bits_.occupancy(); }

 private:
  util::BitArray bits_;
};

class HashedFilter4B {
 public:
  explicit HashedFilter4B(unsigned bits_log2 = 16) : bits_log2_(bits_log2), bits_(1u << bits_log2) {}

  // Marks the hash of a pattern's 4-byte prefix (all case variants).
  void add_pattern_prefix(const pattern::Pattern& p);

  bool test(std::uint32_t window4) const {
    return bits_.test(util::multiplicative_hash(window4, bits_log2_));
  }
  unsigned bits_log2() const { return bits_log2_; }
  const util::BitArray& bits() const { return bits_; }
  double occupancy() const { return bits_.occupancy(); }

 private:
  unsigned bits_log2_;
  util::BitArray bits_;
};

}  // namespace vpm::dfc
