#include "dfc/compact_table.hpp"

#include <algorithm>

#include "pattern/prefix.hpp"
#include "util/hash.hpp"

namespace vpm::dfc {

ShortTable::ShortTable(const pattern::PatternSet& set) {
  struct Keyed {
    std::uint8_t bucket;
    Entry entry;
  };
  std::vector<Keyed> keyed;
  for (const pattern::Pattern& p : set) {
    if (p.size() >= pattern::kShortLongBoundary) continue;
    ++pattern_count_;
    for (std::uint32_t v : pattern::prefix_variants({p.bytes.data(), 1}, p.nocase)) {
      Keyed k;
      k.bucket = static_cast<std::uint8_t>(v);
      k.entry.len = static_cast<std::uint8_t>(p.size());
      k.entry.id = p.id;
      k.entry.nocase = p.nocase;
      std::copy(p.bytes.begin(), p.bytes.end(), k.entry.bytes);
      // Store with the variant first byte so the raw-byte quick path works.
      k.entry.bytes[0] = k.bucket;
      keyed.push_back(k);
    }
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& a, const Keyed& b) { return a.bucket < b.bucket; });
  offsets_.assign(257, 0);
  entries_.reserve(keyed.size());
  for (const Keyed& k : keyed) {
    ++offsets_[k.bucket + 1];
    entries_.push_back(k.entry);
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
}

std::size_t ShortTable::memory_bytes() const {
  return entries_.size() * sizeof(Entry) + offsets_.size() * sizeof(std::uint32_t);
}

LongTable::LongTable(const pattern::PatternSet& set, unsigned bucket_bits_log2)
    : bucket_bits_log2_(bucket_bits_log2) {
  struct Keyed {
    std::uint32_t bucket;
    Entry entry;
  };
  std::vector<Keyed> keyed;
  for (const pattern::Pattern& p : set) {
    if (p.size() < pattern::kShortLongBoundary) continue;
    ++pattern_count_;
    const std::uint32_t offset = arena_.add(p.bytes);
    for (std::uint32_t v : pattern::prefix_variants({p.bytes.data(), 4}, p.nocase)) {
      Keyed k;
      k.bucket = util::multiplicative_hash(v, bucket_bits_log2_);
      k.entry = Entry{v, p.id, static_cast<std::uint32_t>(p.size()), offset, p.nocase};
      keyed.push_back(k);
    }
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& a, const Keyed& b) { return a.bucket < b.bucket; });
  offsets_.assign((1u << bucket_bits_log2_) + 1, 0);
  entries_.reserve(keyed.size());
  for (const Keyed& k : keyed) {
    ++offsets_[k.bucket + 1];
    entries_.push_back(k.entry);
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
}

double LongTable::mean_bucket_entries() const {
  std::size_t used = 0;
  for (std::size_t b = 0; b + 1 < offsets_.size(); ++b) {
    if (offsets_[b + 1] > offsets_[b]) ++used;
  }
  return used == 0 ? 0.0 : static_cast<double>(entries_.size()) / static_cast<double>(used);
}

std::size_t LongTable::memory_bytes() const {
  return entries_.size() * sizeof(Entry) + offsets_.size() * sizeof(std::uint32_t) +
         arena_.size();
}

}  // namespace vpm::dfc
