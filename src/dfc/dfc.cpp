#include "dfc/dfc.hpp"

#include "util/hash.hpp"

namespace vpm::dfc {

DfcMatcher::DfcMatcher(const pattern::PatternSet& set)
    : short_table_(set), long_table_(set) {
  for (const pattern::Pattern& p : set) {
    df_all_.add_pattern_prefix(p);
    if (p.size() < pattern::kShortLongBoundary) {
      df_short_.add_pattern_prefix(p);
    } else {
      df_long_.add_pattern_prefix(p);
    }
  }
}

void DfcMatcher::scan(util::ByteView data, MatchSink& sink) const {
  if (data.empty()) return;
  const std::uint8_t* d = data.data();
  const std::size_t n = data.size();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::uint32_t window = util::load_u16(d + i);
    if (!df_all_.test(window)) continue;
    if (df_short_.test(window)) short_table_.verify_at(data, i, sink);
    if (df_long_.test(window)) long_table_.verify_at(data, i, sink);
  }
  // Last position: only 1-byte patterns can start here.  The zero-padded
  // window is covered by the wildcard expansion of 1-byte prefixes.
  const std::uint32_t tail = d[n - 1];
  if (df_all_.test(tail) && df_short_.test(tail)) short_table_.verify_at(data, n - 1, sink);
}

std::size_t DfcMatcher::memory_bytes() const {
  return 3 * DirectFilter2B::kBits / 8 + short_table_.memory_bytes() +
         long_table_.memory_bytes();
}

}  // namespace vpm::dfc
