// Compact hash tables for the verification phase.
//
// "Specially designed compact hash tables that are different for different
// pattern lengths ... Each hash table is indexed with as many bytes as the
// shortest pattern that the hash table contains" (paper §IV-A2, after Choi
// et al.).  Two families, split at the S-PATCH 4-byte boundary:
//   * ShortTable  — patterns of 1..3 bytes, indexed by the first input byte;
//   * LongTable   — patterns of >= 4 bytes, indexed by a multiplicative hash
//                   of the first four input bytes, with the 4-byte prefix
//                   stored inline for an O(1) reject before the full compare.
// Both use CSR (offset-array + flat entry array) bucket storage and keep all
// pattern bytes in one arena, so verification touches at most two contiguous
// allocations.  Case-insensitive patterns insert one entry per case variant
// of the indexed prefix; variants are distinct byte strings, so an input
// window matches exactly one of them and nothing is double-reported.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "match/matcher.hpp"
#include "pattern/pattern_set.hpp"
#include "util/arena.hpp"
#include "util/hash.hpp"

namespace vpm::dfc {


class ShortTable {
 public:
  // Builds from the short family (patterns with size() < 4) of `set`;
  // other patterns are ignored.
  explicit ShortTable(const pattern::PatternSet& set);

  // Reports every short pattern matching at data[pos..].
  void verify_at(util::ByteView data, std::size_t pos, MatchSink& sink) const {
    verify_one(data, pos, [&](const Match& m) { sink.on_match(m); });
  }

  // Batched variant: candidate k is positions[k] within payloads[item[k]].
  // Emit is invoked as emit(item[k], Match).  The 1 KB offset array and the
  // handful of short entries are always cache-hot, so no prefetch pipeline.
  template <class Emit>
  void verify_flat(std::span<const util::ByteView> payloads, const std::uint32_t* positions,
                   const std::uint32_t* item, std::uint32_t n, Emit&& emit) const {
    for (std::uint32_t k = 0; k < n; ++k) {
      verify_one(payloads[item[k]], positions[k],
                 [&](const Match& m) { emit(item[k], m); });
    }
  }

  std::size_t entry_count() const { return entries_.size(); }
  std::size_t pattern_count() const { return pattern_count_; }
  std::size_t memory_bytes() const;

 private:
  struct Entry {
    std::uint8_t bytes[3];  // pattern bytes, raw
    std::uint8_t len = 0;
    std::uint32_t id = 0;
    bool nocase = false;
  };

  template <class Emit>
  void verify_one(util::ByteView data, std::size_t pos, Emit&& emit) const {
    if (pos >= data.size()) return;
    const std::uint8_t first = data[pos];
    const std::size_t remaining = data.size() - pos;
    for (std::uint32_t e = offsets_[first]; e < offsets_[first + 1]; ++e) {
      const Entry& entry = entries_[e];
      if (entry.len > remaining) continue;
      if (util::bytes_equal(data.data() + pos, entry.bytes, entry.len, entry.nocase)) {
        emit(Match{entry.id, pos});
      }
    }
  }

  std::vector<Entry> entries_;           // grouped by first byte (raw; nocase
                                         // patterns appear under both cases)
  std::vector<std::uint32_t> offsets_;   // 257 CSR offsets
  std::size_t pattern_count_ = 0;
};

class LongTable {
 public:
  // Builds from the long family (size() >= 4) of `set`. bucket_bits_log2
  // controls the bucket count (2^bits); the default keeps mean bucket
  // occupancy around one entry for 20 K patterns.
  explicit LongTable(const pattern::PatternSet& set, unsigned bucket_bits_log2 = 15);

  void verify_at(util::ByteView data, std::size_t pos, MatchSink& sink) const {
    if (pos + 4 > data.size()) return;  // no long pattern can fit
    const std::uint32_t window = util::load_u32(data.data() + pos);
    const std::uint32_t bucket = util::multiplicative_hash(window, bucket_bits_log2_);
    verify_entries(data, pos, window, offsets_[bucket], offsets_[bucket + 1],
                   [&](const Match& m) { sink.on_match(m); });
  }

  // Batched deferred verification (round two of the batch fast path), by
  // GROUP PREFETCHING: instead of one loop with a dependent three-level
  // pointer chase per candidate (bucket header -> entry row -> arena bytes),
  // the pool is walked in four short passes, each issuing the next level's
  // prefetch for EVERY candidate before any candidate needs it — so each
  // level's misses overlap across the whole pool rather than serializing:
  //   A: hash the (cache-hot, just-filtered) payload windows, prefetch the
  //      bucket headers;
  //   B: read the headers into CSR ranges, prefetch the entry rows (two
  //      lines: Entry is 17 B, buckets regularly straddle a line);
  //   C: read each row's first entry, prefetch its arena bytes;
  //   D: compare and emit.
  // The pass scratch (entry_begin/entry_end/window4, capacity >= n) stays
  // L1/L2-resident, so the re-walks are cheap.
  //
  // Equivalent to calling verify_at per candidate: candidate k is
  // positions[k] within payloads[item[k]]; emit(item[k], Match).
  template <class Emit>
  void verify_flat(std::span<const util::ByteView> payloads, const std::uint32_t* positions,
                   const std::uint32_t* item, std::uint32_t n, std::uint32_t* entry_begin,
                   std::uint32_t* entry_end, std::uint32_t* window4, Emit&& emit) const {
    // Pass A: window hashes; bucket ids park in entry_end until pass B.
    for (std::uint32_t k = 0; k < n; ++k) {
      const util::ByteView d = payloads[item[k]];
      const std::size_t pos = positions[k];
      if (pos + 4 > d.size()) {  // no long pattern can fit: empty range
        entry_begin[k] = 1;      // begin > end marks "skip" until pass B
        entry_end[k] = 0;
        continue;
      }
      const std::uint32_t w = util::load_u32(d.data() + pos);
      const std::uint32_t b = util::multiplicative_hash(w, bucket_bits_log2_);
      window4[k] = w;
      entry_begin[k] = 0;
      entry_end[k] = b;
      __builtin_prefetch(offsets_.data() + b);
    }
    // Pass B: CSR ranges; prefetch entry rows of non-empty buckets.
    for (std::uint32_t k = 0; k < n; ++k) {
      if (entry_begin[k] > entry_end[k]) {
        entry_begin[k] = entry_end[k] = 0;
        continue;
      }
      const std::uint32_t b = entry_end[k];
      const std::uint32_t begin = offsets_[b];
      const std::uint32_t end = offsets_[b + 1];
      entry_begin[k] = begin;
      entry_end[k] = end;
      if (begin != end) {
        const char* row = reinterpret_cast<const char*>(entries_.data() + begin);
        __builtin_prefetch(row);
        __builtin_prefetch(row + 64);
      }
    }
    // Pass C: arena bytes of each row's first entry (later entries of a
    // multi-entry bucket share the row and usually the arena region).
    for (std::uint32_t k = 0; k < n; ++k) {
      if (entry_begin[k] != entry_end[k]) {
        __builtin_prefetch(arena_.at(entries_[entry_begin[k]].offset));
      }
    }
    // Pass D: compares.
    for (std::uint32_t k = 0; k < n; ++k) {
      if (entry_begin[k] == entry_end[k]) continue;
      verify_entries(payloads[item[k]], positions[k], window4[k], entry_begin[k],
                     entry_end[k], [&](const Match& m) { emit(item[k], m); });
    }
  }

  std::size_t entry_count() const { return entries_.size(); }
  std::size_t pattern_count() const { return pattern_count_; }
  unsigned bucket_bits_log2() const { return bucket_bits_log2_; }
  double mean_bucket_entries() const;
  std::size_t memory_bytes() const;

 private:
  struct Entry {
    std::uint32_t prefix = 0;  // the case-variant 4-byte prefix, little-endian
    std::uint32_t id = 0;
    std::uint32_t len = 0;
    std::uint32_t offset = 0;  // pattern bytes in the arena (raw)
    bool nocase = false;
  };

  template <class Emit>
  void verify_entries(util::ByteView data, std::size_t pos, std::uint32_t window,
                      std::uint32_t begin, std::uint32_t end, Emit&& emit) const {
    const std::size_t remaining = data.size() - pos;
    for (std::uint32_t e = begin; e < end; ++e) {
      const Entry& entry = entries_[e];
      if (entry.prefix != window || entry.len > remaining) continue;
      // Prefix (4 bytes) already matched exactly; compare the remainder with
      // the entry's case mode.
      if (util::bytes_equal(data.data() + pos + 4, arena_.at(entry.offset) + 4,
                            entry.len - 4, entry.nocase)) {
        emit(Match{entry.id, pos});
      }
    }
  }

  std::vector<Entry> entries_;
  std::vector<std::uint32_t> offsets_;  // 2^bits + 1 CSR offsets
  util::ByteArena arena_;
  unsigned bucket_bits_log2_;
  std::size_t pattern_count_ = 0;
};

}  // namespace vpm::dfc
