// Compact hash tables for the verification phase.
//
// "Specially designed compact hash tables that are different for different
// pattern lengths ... Each hash table is indexed with as many bytes as the
// shortest pattern that the hash table contains" (paper §IV-A2, after Choi
// et al.).  Two families, split at the S-PATCH 4-byte boundary:
//   * ShortTable  — patterns of 1..3 bytes, indexed by the first input byte;
//   * LongTable   — patterns of >= 4 bytes, indexed by a multiplicative hash
//                   of the first four input bytes, with the 4-byte prefix
//                   stored inline for an O(1) reject before the full compare.
// Both use CSR (offset-array + flat entry array) bucket storage and keep all
// pattern bytes in one arena, so verification touches at most two contiguous
// allocations.  Case-insensitive patterns insert one entry per case variant
// of the indexed prefix; variants are distinct byte strings, so an input
// window matches exactly one of them and nothing is double-reported.
#pragma once

#include <cstdint>
#include <vector>

#include "match/matcher.hpp"
#include "pattern/pattern_set.hpp"
#include "util/arena.hpp"

namespace vpm::dfc {

class ShortTable {
 public:
  // Builds from the short family (patterns with size() < 4) of `set`;
  // other patterns are ignored.
  explicit ShortTable(const pattern::PatternSet& set);

  // Reports every short pattern matching at data[pos..].
  void verify_at(util::ByteView data, std::size_t pos, MatchSink& sink) const;

  std::size_t entry_count() const { return entries_.size(); }
  std::size_t pattern_count() const { return pattern_count_; }
  std::size_t memory_bytes() const;

 private:
  struct Entry {
    std::uint8_t bytes[3];  // pattern bytes, raw
    std::uint8_t len = 0;
    std::uint32_t id = 0;
    bool nocase = false;
  };
  std::vector<Entry> entries_;           // grouped by first byte (raw; nocase
                                         // patterns appear under both cases)
  std::vector<std::uint32_t> offsets_;   // 257 CSR offsets
  std::size_t pattern_count_ = 0;
};

class LongTable {
 public:
  // Builds from the long family (size() >= 4) of `set`. bucket_bits_log2
  // controls the bucket count (2^bits); the default keeps mean bucket
  // occupancy around one entry for 20 K patterns.
  explicit LongTable(const pattern::PatternSet& set, unsigned bucket_bits_log2 = 15);

  void verify_at(util::ByteView data, std::size_t pos, MatchSink& sink) const;

  std::size_t entry_count() const { return entries_.size(); }
  std::size_t pattern_count() const { return pattern_count_; }
  unsigned bucket_bits_log2() const { return bucket_bits_log2_; }
  double mean_bucket_entries() const;
  std::size_t memory_bytes() const;

 private:
  struct Entry {
    std::uint32_t prefix = 0;  // the case-variant 4-byte prefix, little-endian
    std::uint32_t id = 0;
    std::uint32_t len = 0;
    std::uint32_t offset = 0;  // pattern bytes in the arena (raw)
    bool nocase = false;
  };
  std::vector<Entry> entries_;
  std::vector<std::uint32_t> offsets_;  // 2^bits + 1 CSR offsets
  util::ByteArena arena_;
  unsigned bucket_bits_log2_;
  std::size_t pattern_count_ = 0;
};

}  // namespace vpm::dfc
