// Flow packetization: turns the traffic generators' byte streams into
// interleaved TCP packet sequences (MTU-sized segments, per-flow sequence
// numbers, optional reordering) — the glue between src/traffic and the
// packet-level world (pcap files, the reassembler, the IDS examples).
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"

namespace vpm::net {

struct FlowGenConfig {
  std::size_t flow_count = 4;
  std::size_t bytes_per_flow = 1 << 20;
  std::size_t mss = 1460;          // max segment payload
  double reorder_fraction = 0.0;   // fraction of adjacent segment pairs swapped
  std::uint64_t seed = 1;
  std::uint16_t dst_port = 80;     // classifies the flows (80 -> http group)
};

// Builds `flow_count` server-bound flows from iscx-day2-style generated
// content, segments them, interleaves them round-robin with jittered
// timestamps, and applies optional adjacent-pair reordering.  The i-th
// flow's stream content is returned in `streams` for ground-truth checks.
struct GeneratedFlows {
  std::vector<Packet> packets;
  std::vector<util::Bytes> streams;
  std::vector<FiveTuple> tuples;
};
GeneratedFlows generate_flows(const FlowGenConfig& cfg);

}  // namespace vpm::net
