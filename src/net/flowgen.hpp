// Flow packetization: turns the traffic generators' byte streams into
// interleaved TCP packet sequences (MTU-sized segments, per-flow sequence
// numbers, optional reordering) — the glue between src/traffic and the
// packet-level world (pcap files, the reassembler, the IDS examples).
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"

namespace vpm::net {

struct FlowGenConfig {
  std::size_t flow_count = 4;
  std::size_t bytes_per_flow = 1 << 20;
  std::size_t mss = 1460;          // max segment payload
  double reorder_fraction = 0.0;   // fraction of adjacent segment pairs swapped
  std::uint64_t seed = 1;
  std::uint16_t dst_port = 80;     // classifies the flows (80 -> http group)
  // Adversarial mode: SYN/SYN|ACK handshakes, wrap-adjacent ISNs, 1-byte
  // splits, keep-alive probes below the window, conflicting retransmits
  // (garbage resent AFTER the original, so at reorder_fraction=0 the
  // delivered streams still equal the ground truth under every overlap
  // policy), server→client response streams, and FIN/RST teardown.
  bool evasion = false;
};

// Builds `flow_count` server-bound flows from iscx-day2-style generated
// content, segments them, interleaves them round-robin with jittered
// timestamps, and applies optional adjacent-pair reordering.  The i-th
// flow's stream content is returned in `streams` for ground-truth checks.
struct GeneratedFlows {
  std::vector<Packet> packets;
  std::vector<util::Bytes> streams;          // client→server ground truth
  std::vector<util::Bytes> reverse_streams;  // server→client (evasion mode)
  std::vector<FiveTuple> tuples;             // client→server direction
};
GeneratedFlows generate_flows(const FlowGenConfig& cfg);

}  // namespace vpm::net
