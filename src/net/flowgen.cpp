#include "net/flowgen.hpp"

#include <algorithm>

#include "traffic/http_trace.hpp"
#include "util/rng.hpp"

namespace vpm::net {

GeneratedFlows generate_flows(const FlowGenConfig& cfg) {
  GeneratedFlows out;
  util::Rng rng(cfg.seed);

  // Per-flow content and tuple.
  for (std::size_t f = 0; f < cfg.flow_count; ++f) {
    out.streams.push_back(traffic::generate_http_trace(
        traffic::iscx_day2_config(cfg.bytes_per_flow, cfg.seed * 1000 + f)));
    FiveTuple t;
    t.src_ip = 0x0A000000u | static_cast<std::uint32_t>(f + 2);  // 10.0.0.x
    t.dst_ip = 0xC0A80001u;                                      // 192.168.0.1
    t.src_port = static_cast<std::uint16_t>(49152 + f);
    t.dst_port = cfg.dst_port;
    t.proto = IpProto::tcp;
    out.tuples.push_back(t);
  }

  // Segment + interleave round-robin.
  std::vector<std::size_t> cursor(cfg.flow_count, 0);
  std::vector<std::uint32_t> isn(cfg.flow_count);
  for (auto& s : isn) s = static_cast<std::uint32_t>(rng());
  std::uint64_t clock_us = 1'000'000;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t f = 0; f < cfg.flow_count; ++f) {
      if (cursor[f] >= out.streams[f].size()) continue;
      progressed = true;
      const std::size_t seg_len =
          std::min<std::size_t>({cfg.mss, out.streams[f].size() - cursor[f],
                                 static_cast<std::size_t>(rng.between(200, 1460))});
      Packet p;
      p.timestamp_us = clock_us;
      clock_us += static_cast<std::uint64_t>(rng.between(5, 200));
      p.tuple = out.tuples[f];
      p.tcp_seq = isn[f] + static_cast<std::uint32_t>(cursor[f]);
      p.payload.assign(out.streams[f].begin() + static_cast<long>(cursor[f]),
                       out.streams[f].begin() + static_cast<long>(cursor[f] + seg_len));
      out.packets.push_back(std::move(p));
      cursor[f] += seg_len;
    }
  }

  // Optional adjacent-pair reordering (same-flow pairs included; the
  // reassembler must cope either way).
  if (cfg.reorder_fraction > 0.0) {
    for (std::size_t i = 0; i + 1 < out.packets.size(); i += 2) {
      if (rng.chance(cfg.reorder_fraction)) {
        std::swap(out.packets[i], out.packets[i + 1]);
        std::swap(out.packets[i].timestamp_us, out.packets[i + 1].timestamp_us);
      }
    }
  }
  return out;
}

}  // namespace vpm::net
