#include "net/flowgen.hpp"

#include <algorithm>

#include "traffic/http_trace.hpp"
#include "util/rng.hpp"

namespace vpm::net {

namespace {

Packet make_packet(const FiveTuple& t, std::uint32_t seq, std::uint8_t flags,
                   util::Bytes payload, std::uint64_t ts) {
  Packet p;
  p.timestamp_us = ts;
  p.tuple = t;
  p.tcp_seq = seq;
  p.tcp_flags = flags;
  p.payload = std::move(payload);
  return p;
}

// Adversarial packetization: the evasion corpus the reassembler must shrug
// off.  Per connection: SYN / SYN|ACK handshake (data starts at ISN+1),
// every third client (and offset server) ISN parked just below the 2^32 wrap
// so the stream crosses it, occasional 1-byte segments, keep-alive probes one
// byte below the next expected sequence (at offset 0 that is BEFORE the
// window — the classic wedge the wrap-safe placement fixes), conflicting
// retransmits of just-sent ranges filled with 'X' (emitted after the
// original, so at reorder_fraction=0 the delivered bytes match the ground
// truth under every overlap policy — the garbage hits the already-delivered
// prefix, which is always first-wins), a server→client response stream
// interleaved with the client's, and FIN teardown on both sides except every
// fourth connection, which is torn down by a client RST.
GeneratedFlows generate_evasion_flows(const FlowGenConfig& cfg,
                                      GeneratedFlows&& seeded, util::Rng& rng) {
  GeneratedFlows out = std::move(seeded);
  const std::size_t n = cfg.flow_count;
  for (std::size_t f = 0; f < n; ++f) {
    const std::size_t rev_bytes = std::max<std::size_t>(1, cfg.bytes_per_flow / 4);
    out.reverse_streams.push_back(traffic::generate_http_trace(
        traffic::iscx_day2_config(rev_bytes, cfg.seed * 1000 + 500 + f)));
  }

  std::vector<std::uint32_t> isn_c(n), isn_s(n);
  for (std::size_t f = 0; f < n; ++f) {
    isn_c[f] = f % 3 == 0 ? 0xFFFFFF00u + static_cast<std::uint32_t>(rng() & 0xFF)
                          : static_cast<std::uint32_t>(rng());
    isn_s[f] = f % 3 == 1 ? 0xFFFFFFF0u + static_cast<std::uint32_t>(rng() & 0x0F)
                          : static_cast<std::uint32_t>(rng());
  }

  std::uint64_t clock_us = 1'000'000;
  auto tick = [&] {
    const std::uint64_t t = clock_us;
    clock_us += static_cast<std::uint64_t>(rng.between(5, 200));
    return t;
  };

  // Handshakes first: the client SYN is the connection's first packet, so
  // the reassembler pins that side as the client.
  for (std::size_t f = 0; f < n; ++f) {
    out.packets.push_back(make_packet(out.tuples[f], isn_c[f], kTcpSyn, {}, tick()));
    out.packets.push_back(
        make_packet(out.tuples[f].reversed(), isn_s[f], kTcpSyn | kTcpAck, {}, tick()));
  }

  // Data: round-robin across flows AND directions.
  std::vector<std::size_t> c_cur(n, 0), s_cur(n, 0);
  auto emit_side = [&](const FiveTuple& tuple, const util::Bytes& stream,
                       std::uint32_t isn, std::size_t& cur) {
    if (cur >= stream.size()) return false;
    // Keep-alive probe: one garbage byte a sequence number below the next
    // expected byte.  At cur == 0 this sits below the ISN+1 data base.
    if (rng.chance(0.05)) {
      out.packets.push_back(make_packet(
          tuple, isn + static_cast<std::uint32_t>(cur), kTcpAck, {0x00}, tick()));
    }
    const std::size_t seg_len =
        rng.chance(0.10)
            ? 1
            : std::min<std::size_t>({cfg.mss, stream.size() - cur,
                                     static_cast<std::size_t>(rng.between(200, 1460))});
    const std::uint32_t seq = isn + 1 + static_cast<std::uint32_t>(cur);
    out.packets.push_back(make_packet(
        tuple, seq, kTcpPsh | kTcpAck,
        util::Bytes(stream.begin() + static_cast<long>(cur),
                    stream.begin() + static_cast<long>(cur + seg_len)),
        tick()));
    // Conflicting retransmit: the same range again, but filled with 'X'.
    if (rng.chance(0.15)) {
      const std::size_t xlen =
          std::min<std::size_t>(seg_len, static_cast<std::size_t>(rng.between(1, 64)));
      out.packets.push_back(make_packet(tuple, seq, kTcpPsh | kTcpAck,
                                        util::Bytes(xlen, 'X'), tick()));
    }
    cur += seg_len;
    return true;
  };
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t f = 0; f < n; ++f) {
      progressed |= emit_side(out.tuples[f], out.streams[f], isn_c[f], c_cur[f]);
      progressed |=
          emit_side(out.tuples[f].reversed(), out.reverse_streams[f], isn_s[f], s_cur[f]);
    }
  }

  // Teardown: FIN both ways, except every fourth connection dies by RST.
  for (std::size_t f = 0; f < n; ++f) {
    const std::uint32_t c_end =
        isn_c[f] + 1 + static_cast<std::uint32_t>(out.streams[f].size());
    if (f % 4 == 3) {
      out.packets.push_back(
          make_packet(out.tuples[f], c_end, kTcpRst | kTcpAck, {}, tick()));
      continue;
    }
    const std::uint32_t s_end =
        isn_s[f] + 1 + static_cast<std::uint32_t>(out.reverse_streams[f].size());
    out.packets.push_back(
        make_packet(out.tuples[f], c_end, kTcpFin | kTcpAck, {}, tick()));
    out.packets.push_back(
        make_packet(out.tuples[f].reversed(), s_end, kTcpFin | kTcpAck, {}, tick()));
  }
  return out;
}

}  // namespace

GeneratedFlows generate_flows(const FlowGenConfig& cfg) {
  GeneratedFlows out;
  util::Rng rng(cfg.seed);

  // Per-flow content and tuple.
  for (std::size_t f = 0; f < cfg.flow_count; ++f) {
    out.streams.push_back(traffic::generate_http_trace(
        traffic::iscx_day2_config(cfg.bytes_per_flow, cfg.seed * 1000 + f)));
    FiveTuple t;
    t.src_ip = 0x0A000000u | static_cast<std::uint32_t>(f + 2);  // 10.0.0.x
    t.dst_ip = 0xC0A80001u;                                      // 192.168.0.1
    t.src_port = static_cast<std::uint16_t>(49152 + f);
    t.dst_port = cfg.dst_port;
    t.proto = IpProto::tcp;
    out.tuples.push_back(t);
  }

  if (cfg.evasion) {
    GeneratedFlows evaded = generate_evasion_flows(cfg, std::move(out), rng);
    if (cfg.reorder_fraction > 0.0) {
      for (std::size_t i = 0; i + 1 < evaded.packets.size(); i += 2) {
        if (rng.chance(cfg.reorder_fraction)) {
          std::swap(evaded.packets[i], evaded.packets[i + 1]);
          std::swap(evaded.packets[i].timestamp_us, evaded.packets[i + 1].timestamp_us);
        }
      }
    }
    return evaded;
  }

  // Segment + interleave round-robin.
  std::vector<std::size_t> cursor(cfg.flow_count, 0);
  std::vector<std::uint32_t> isn(cfg.flow_count);
  for (auto& s : isn) s = static_cast<std::uint32_t>(rng());
  std::uint64_t clock_us = 1'000'000;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t f = 0; f < cfg.flow_count; ++f) {
      if (cursor[f] >= out.streams[f].size()) continue;
      progressed = true;
      const std::size_t seg_len =
          std::min<std::size_t>({cfg.mss, out.streams[f].size() - cursor[f],
                                 static_cast<std::size_t>(rng.between(200, 1460))});
      Packet p;
      p.timestamp_us = clock_us;
      clock_us += static_cast<std::uint64_t>(rng.between(5, 200));
      p.tuple = out.tuples[f];
      p.tcp_seq = isn[f] + static_cast<std::uint32_t>(cursor[f]);
      p.payload.assign(out.streams[f].begin() + static_cast<long>(cursor[f]),
                       out.streams[f].begin() + static_cast<long>(cursor[f] + seg_len));
      out.packets.push_back(std::move(p));
      cursor[f] += seg_len;
    }
  }

  // Optional adjacent-pair reordering (same-flow pairs included; the
  // reassembler must cope either way).
  if (cfg.reorder_fraction > 0.0) {
    for (std::size_t i = 0; i + 1 < out.packets.size(); i += 2) {
      if (rng.chance(cfg.reorder_fraction)) {
        std::swap(out.packets[i], out.packets[i + 1]);
        std::swap(out.packets[i].timestamp_us, out.packets[i + 1].timestamp_us);
      }
    }
  }
  return out;
}

}  // namespace vpm::net
