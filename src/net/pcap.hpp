// Minimal classic-pcap (libpcap 2.4) reader/writer over Ethernet/IPv4.
//
// Writes well-formed Ethernet + IPv4 + TCP/UDP frames (checksums zeroed, as
// capture tools commonly emit with offload) and parses them back to Packet
// records.  This is the interchange format between the traffic generators
// and the IDS examples, and it accepts real captures of the same link type.
#pragma once

#include <vector>

#include "net/packet.hpp"

namespace vpm::net {

// Serializes packets into a classic pcap byte stream (microsecond timestamps,
// LINKTYPE_ETHERNET).
util::Bytes write_pcap(const std::vector<Packet>& packets);

struct PcapParseResult {
  std::vector<Packet> packets;
  std::size_t skipped_records = 0;  // non-IPv4 / non-TCP-UDP / truncated
};

// Parses a classic pcap byte stream; throws std::invalid_argument on a bad
// global header, skips (and counts) records it cannot interpret.
PcapParseResult read_pcap(util::ByteView data);

}  // namespace vpm::net
