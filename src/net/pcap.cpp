#include "net/pcap.hpp"

#include <cstring>
#include <stdexcept>

namespace vpm::net {

namespace {

constexpr std::uint32_t kPcapMagic = 0xA1B2C3D4;  // microsecond timestamps
constexpr std::uint32_t kLinkEthernet = 1;
constexpr std::size_t kEthLen = 14;
constexpr std::size_t kIpv4Len = 20;
constexpr std::size_t kTcpLen = 20;
constexpr std::size_t kUdpLen = 8;

void put_u16be(util::Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}
void put_u32be(util::Bytes& out, std::uint32_t v) {
  put_u16be(out, static_cast<std::uint16_t>(v >> 16));
  put_u16be(out, static_cast<std::uint16_t>(v & 0xFFFF));
}
void put_u32le(util::Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}
void put_u16le(util::Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint16_t get_u16be(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] << 8 | p[1]);
}
std::uint32_t get_u32be(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 | static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 | p[3];
}
std::uint32_t get_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[3]) << 24 | static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[1]) << 8 | p[0];
}

}  // namespace

util::Bytes write_pcap(const std::vector<Packet>& packets) {
  util::Bytes out;
  // Global header: magic, version 2.4, tz 0, sigfigs 0, snaplen, linktype.
  put_u32le(out, kPcapMagic);
  put_u16le(out, 2);
  put_u16le(out, 4);
  put_u32le(out, 0);
  put_u32le(out, 0);
  put_u32le(out, 1 << 16);
  put_u32le(out, kLinkEthernet);

  for (const Packet& p : packets) {
    const bool tcp = p.tuple.proto == IpProto::tcp;
    const std::size_t l4 = tcp ? kTcpLen : kUdpLen;
    const std::size_t frame_len = kEthLen + kIpv4Len + l4 + p.payload.size();

    // Record header.
    put_u32le(out, static_cast<std::uint32_t>(p.timestamp_us / 1000000));
    put_u32le(out, static_cast<std::uint32_t>(p.timestamp_us % 1000000));
    put_u32le(out, static_cast<std::uint32_t>(frame_len));  // captured
    put_u32le(out, static_cast<std::uint32_t>(frame_len));  // on wire

    // Ethernet: synthetic MACs, EtherType IPv4.
    static constexpr std::uint8_t kDstMac[] = {0x02, 0, 0, 0, 0, 0x01};
    static constexpr std::uint8_t kSrcMac[] = {0x02, 0, 0, 0, 0, 0x02};
    out.insert(out.end(), std::begin(kDstMac), std::end(kDstMac));
    out.insert(out.end(), std::begin(kSrcMac), std::end(kSrcMac));
    put_u16be(out, 0x0800);

    // IPv4 header (no options, zero checksum).
    out.push_back(0x45);  // version 4, IHL 5
    out.push_back(0);     // DSCP/ECN
    put_u16be(out, static_cast<std::uint16_t>(kIpv4Len + l4 + p.payload.size()));
    put_u16be(out, 0);    // identification
    put_u16be(out, 0x4000);  // DF, no fragmentation
    out.push_back(64);    // TTL
    out.push_back(static_cast<std::uint8_t>(p.tuple.proto));
    put_u16be(out, 0);    // header checksum (offloaded)
    put_u32be(out, p.tuple.src_ip);
    put_u32be(out, p.tuple.dst_ip);

    if (tcp) {
      put_u16be(out, p.tuple.src_port);
      put_u16be(out, p.tuple.dst_port);
      put_u32be(out, p.tcp_seq);
      put_u32be(out, 0);        // ack
      out.push_back(5 << 4);    // data offset 5 words
      out.push_back(p.tcp_flags);
      put_u16be(out, 0xFFFF);   // window
      put_u16be(out, 0);        // checksum
      put_u16be(out, 0);        // urgent
    } else {
      put_u16be(out, p.tuple.src_port);
      put_u16be(out, p.tuple.dst_port);
      put_u16be(out, static_cast<std::uint16_t>(kUdpLen + p.payload.size()));
      put_u16be(out, 0);  // checksum
    }
    out.insert(out.end(), p.payload.begin(), p.payload.end());
  }
  return out;
}

PcapParseResult read_pcap(util::ByteView data) {
  if (data.size() < 24) throw std::invalid_argument("pcap: truncated global header");
  const std::uint32_t magic = get_u32le(data.data());
  if (magic != kPcapMagic) throw std::invalid_argument("pcap: bad magic (only usec LE supported)");
  if (get_u32le(data.data() + 20) != kLinkEthernet) {
    throw std::invalid_argument("pcap: unsupported link type");
  }

  PcapParseResult result;
  std::size_t off = 24;
  // Every bound below is subtraction-form (`len > size - off` with off <=
  // size already established) so a crafted length can never overflow the
  // comparison, and every malformed record is SKIPPED and counted — one bad
  // record must not take down a capture worth of good ones.
  while (data.size() - off >= 16) {
    const std::uint32_t ts_sec = get_u32le(data.data() + off);
    const std::uint32_t ts_usec = get_u32le(data.data() + off + 4);
    const std::uint32_t cap_len = get_u32le(data.data() + off + 8);
    off += 16;
    if (cap_len > data.size() - off) {
      // Truncated (or length-lying) trailing record; nothing after it can be
      // framed.
      ++result.skipped_records;
      break;
    }
    if (cap_len > kEthLen + kMaxSanePayload) {
      // Larger than any Ethernet frame carrying a max-size IPv4 datagram;
      // skip the claimed extent rather than trusting its contents.
      ++result.skipped_records;
      off += cap_len;
      continue;
    }
    const std::uint8_t* frame = data.data() + off;
    off += cap_len;

    if (cap_len < kEthLen + kIpv4Len || get_u16be(frame + 12) != 0x0800) {
      ++result.skipped_records;
      continue;
    }
    const std::uint8_t* ip = frame + kEthLen;
    const unsigned ihl = (ip[0] & 0x0F) * 4u;
    if ((ip[0] >> 4) != 4 || ihl < 20 || cap_len < kEthLen + ihl) {
      ++result.skipped_records;
      continue;
    }
    const std::uint16_t total_len = get_u16be(ip + 2);
    const std::uint8_t proto = ip[9];
    if ((proto != 6 && proto != 17) || total_len < ihl || kEthLen + total_len > cap_len) {
      ++result.skipped_records;
      continue;
    }

    Packet pkt;
    pkt.timestamp_us = static_cast<std::uint64_t>(ts_sec) * 1000000 + ts_usec;
    pkt.tuple.src_ip = get_u32be(ip + 12);
    pkt.tuple.dst_ip = get_u32be(ip + 16);
    pkt.tuple.proto = static_cast<IpProto>(proto);

    const std::uint8_t* l4 = ip + ihl;
    const std::size_t l4_avail = total_len - ihl;
    if (proto == 6) {
      if (l4_avail < kTcpLen) { ++result.skipped_records; continue; }
      const unsigned data_off = (l4[12] >> 4) * 4u;
      if (data_off < kTcpLen || l4_avail < data_off) { ++result.skipped_records; continue; }
      pkt.tuple.src_port = get_u16be(l4);
      pkt.tuple.dst_port = get_u16be(l4 + 2);
      pkt.tcp_seq = get_u32be(l4 + 4);
      pkt.tcp_flags = l4[13];
      pkt.payload.assign(l4 + data_off, l4 + l4_avail);
    } else {
      if (l4_avail < kUdpLen) { ++result.skipped_records; continue; }
      // The UDP header carries its own length; honor it, but only when it is
      // consistent with the IP framing — a datagram claiming more bytes than
      // the IP layer delivered (or fewer than its own header) is crafted.
      const std::uint16_t udp_len = get_u16be(l4 + 4);
      if (udp_len < kUdpLen || udp_len > l4_avail) {
        ++result.skipped_records;
        continue;
      }
      pkt.tuple.src_port = get_u16be(l4);
      pkt.tuple.dst_port = get_u16be(l4 + 2);
      pkt.payload.assign(l4 + kUdpLen, l4 + udp_len);
    }
    result.packets.push_back(std::move(pkt));
  }
  return result;
}

}  // namespace vpm::net
