#include "net/pcap.hpp"

#include <cstring>
#include <stdexcept>

#include "net/frame.hpp"

namespace vpm::net {

namespace {

constexpr std::uint32_t kPcapMagic = 0xA1B2C3D4;  // microsecond timestamps
constexpr std::uint32_t kLinkEthernet = 1;
constexpr std::size_t kEthLen = kEthHeaderLen;

void put_u32le(util::Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}
void put_u16le(util::Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

std::uint32_t get_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[3]) << 24 | static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[1]) << 8 | p[0];
}

}  // namespace

util::Bytes write_pcap(const std::vector<Packet>& packets) {
  util::Bytes out;
  // Global header: magic, version 2.4, tz 0, sigfigs 0, snaplen, linktype.
  put_u32le(out, kPcapMagic);
  put_u16le(out, 2);
  put_u16le(out, 4);
  put_u32le(out, 0);
  put_u32le(out, 0);
  put_u32le(out, 1 << 16);
  put_u32le(out, kLinkEthernet);

  for (const Packet& p : packets) {
    const std::size_t frame_len = encoded_frame_length(p);

    // Record header.
    put_u32le(out, static_cast<std::uint32_t>(p.timestamp_us / 1000000));
    put_u32le(out, static_cast<std::uint32_t>(p.timestamp_us % 1000000));
    put_u32le(out, static_cast<std::uint32_t>(frame_len));  // captured
    put_u32le(out, static_cast<std::uint32_t>(frame_len));  // on wire

    // The frame body is the shared codec's canonical encoding (net/frame.hpp)
    // — the same bytes the mock TPACKET_V3 ring wraps in its frame headers.
    encode_ethernet_frame(out, p);
  }
  return out;
}

PcapParseResult read_pcap(util::ByteView data) {
  if (data.size() < 24) throw std::invalid_argument("pcap: truncated global header");
  const std::uint32_t magic = get_u32le(data.data());
  if (magic != kPcapMagic) throw std::invalid_argument("pcap: bad magic (only usec LE supported)");
  if (get_u32le(data.data() + 20) != kLinkEthernet) {
    throw std::invalid_argument("pcap: unsupported link type");
  }

  PcapParseResult result;
  std::size_t off = 24;
  // Every bound below is subtraction-form (`len > size - off` with off <=
  // size already established) so a crafted length can never overflow the
  // comparison, and every malformed record is SKIPPED and counted — one bad
  // record must not take down a capture worth of good ones.
  while (data.size() - off >= 16) {
    const std::uint32_t ts_sec = get_u32le(data.data() + off);
    const std::uint32_t ts_usec = get_u32le(data.data() + off + 4);
    const std::uint32_t cap_len = get_u32le(data.data() + off + 8);
    off += 16;
    if (cap_len > data.size() - off) {
      // Truncated (or length-lying) trailing record; nothing after it can be
      // framed.
      ++result.skipped_records;
      break;
    }
    if (cap_len > kEthLen + kMaxSanePayload) {
      // Larger than any Ethernet frame carrying a max-size IPv4 datagram;
      // skip the claimed extent rather than trusting its contents.
      ++result.skipped_records;
      off += cap_len;
      continue;
    }
    const std::uint8_t* frame = data.data() + off;
    off += cap_len;

    // Replay semantics (clamp_truncated = false): a record whose captured
    // bytes don't cover the IP-claimed frame is crafted, not snaplen-cut.
    Packet pkt;
    if (decode_ethernet_frame(frame, cap_len, /*clamp_truncated=*/false, pkt) !=
        FrameDecode::ok) {
      ++result.skipped_records;
      continue;
    }
    pkt.timestamp_us = static_cast<std::uint64_t>(ts_sec) * 1000000 + ts_usec;
    result.packets.push_back(std::move(pkt));
  }
  return result;
}

}  // namespace vpm::net
