#include "net/reassembly.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"
#include "util/failpoint.hpp"

namespace vpm::net {

std::optional<OverlapPolicy> overlap_policy_from_name(std::string_view name) {
  if (name == "first") return OverlapPolicy::first;
  if (name == "last") return OverlapPolicy::last;
  if (name == "target_bsd" || name == "bsd") return OverlapPolicy::target_bsd;
  if (name == "target_linux" || name == "linux") return OverlapPolicy::target_linux;
  return std::nullopt;
}

void TcpReassembler::ingest(const Packet& packet) {
  if (packet.tuple.proto != IpProto::tcp) return;
  const bool syn = (packet.tcp_flags & kTcpSyn) != 0;
  const bool fin = (packet.tcp_flags & kTcpFin) != 0;
  const bool rst = (packet.tcp_flags & kTcpRst) != 0;

  const FiveTuple key = packet.tuple.canonical();
  ConnectionState* found = conns_.find(key);
  if (found == nullptr) {
    // Don't materialize state for stray empty ACKs of unknown connections
    // (state-exhaustion hygiene), and an RST for an unknown connection has
    // nothing to tear down.
    if (rst || (packet.payload.empty() && !syn && !fin)) return;
    found = conns_
                .find_or_emplace(key,
                                 [&] {
                                   ConnectionState conn;
                                   // The first packet's sender is the client —
                                   // unless it is the server's SYN|ACK of a
                                   // handshake whose SYN the capture missed.
                                   const bool from_server =
                                       syn && (packet.tcp_flags & kTcpAck) != 0;
                                   conn.sides[0] = from_server
                                                       ? packet.tuple.reversed()
                                                       : packet.tuple;
                                   conn.sides[1] = conn.sides[0].reversed();
                                   return conn;
                                 })
                .first;
    ++stats_.connections_started;
    if (on_start_) on_start_(found->sides[0]);
  }
  ConnectionState& conn = *found;
  conn.last_activity_us = std::max(conn.last_activity_us, packet.timestamp_us);
  const Direction dir = packet.tuple == conn.sides[0] ? Direction::client_to_server
                                                      : Direction::server_to_client;
  const auto d = static_cast<std::size_t>(dir);
  StreamState& side = conn.streams[d];
  SideStats& ss = stats_.side[d];
  ++ss.segments;

  if (rst) {
    // RST tears the connection down immediately; its payload (if any) is
    // ignored, as the endpoint would ignore it.
    ++stats_.resets;
    finish_connection(conn, EndReason::rst);
    conns_.erase(key);
    return;
  }

  // SYN consumes one sequence number: stream byte 0 lives at seq+1.
  const std::uint32_t data_seq = packet.tcp_seq + (syn ? 1u : 0u);
  if (!side.pinned) {
    side.initial_seq = data_seq;
    side.pinned = true;
  }

  // Wrap-safe placement: the 32-bit delta from the NEXT EXPECTED sequence
  // number, interpreted as signed, places a segment just below the window
  // (TCP keep-alive probe, retransmit of the pinning byte) as before-window
  // overlap instead of far-future data — and keeps streams longer than
  // 4 GiB working, since only the delta is 32-bit.
  const std::uint32_t expected_seq =
      side.initial_seq + static_cast<std::uint32_t>(side.next_offset);
  const auto delta = static_cast<std::int32_t>(data_seq - expected_seq);
  std::int64_t begin_signed = static_cast<std::int64_t>(side.next_offset) + delta;

  if (fin && !side.fin_seen) {
    // The FIN occupies the sequence slot right after this segment's data; a
    // FIN claiming a spot before data already delivered clamps forward (the
    // bytes cannot be un-delivered).
    const std::int64_t fo = begin_signed + static_cast<std::int64_t>(packet.payload.size());
    side.fin_seen = true;
    side.fin_offset = fo < static_cast<std::int64_t>(side.next_offset)
                          ? side.next_offset
                          : static_cast<std::uint64_t>(fo);
    ++stats_.fins;
    truncate_past_fin(side, dir);
  }

  const std::uint8_t* src = packet.payload.data();
  std::size_t len = packet.payload.size();

  // Bytes before the stream's first byte (keep-alive garbage, SYN-adjacent
  // retransmits) are outside the stream entirely.
  if (len > 0 && begin_signed < 0) {
    const auto cut = static_cast<std::uint64_t>(-begin_signed);
    const std::size_t trim = static_cast<std::size_t>(std::min<std::uint64_t>(cut, len));
    ss.overlap_bytes_trimmed += trim;
    src += trim;
    len -= trim;
    begin_signed = 0;
  }
  std::uint64_t begin = static_cast<std::uint64_t>(begin_signed);

  // Data at or past the side's FIN never reaches the endpoint
  // (FIN-then-more-data evasion): trim it.
  if (len > 0 && side.fin_seen && begin + len > side.fin_offset) {
    const std::uint64_t keep = begin < side.fin_offset ? side.fin_offset - begin : 0;
    ss.overlap_bytes_trimmed += len - static_cast<std::size_t>(keep);
    len = static_cast<std::size_t>(keep);
  }

  // Trim the prefix already delivered.  Delivered bytes can never be
  // retracted, so this is first-wins under every policy.
  if (len > 0 && begin < side.next_offset) {
    const auto cut =
        static_cast<std::size_t>(std::min<std::uint64_t>(side.next_offset - begin, len));
    ss.overlap_bytes_trimmed += cut;
    src += cut;
    len -= cut;
    begin += cut;
  }

  if (len > 0) {
    if (begin == side.next_offset &&
        (side.pending.empty() || side.pending.begin()->first >= begin + len)) {
      // Fast path: in-order and clear of the pending window — deliver
      // zero-copy straight from the packet payload.
      deliver(conn, dir, begin, {src, len});
      side.next_offset = begin + len;
      drain(conn, dir);
    } else {
      merge_insert(conn, dir, begin, src, len);
      drain(conn, dir);
    }
  }

  if (both_sides_done(conn)) {
    finish_connection(conn, EndReason::fin);
    conns_.erase(key);
  }
}

void TcpReassembler::deliver(const ConnectionState& conn, Direction dir,
                             std::uint64_t offset, util::ByteView data) {
  const auto d = static_cast<std::size_t>(dir);
  SideStats& ss = stats_.side[d];
  ++ss.chunks;
  ss.delivered_bytes += data.size();
  if (chunk_hist_ != nullptr) chunk_hist_->record(static_cast<double>(data.size()));
  const StreamChunk chunk{conn.sides[d], dir, conn.sides[0].dst_port, offset, data};
  on_chunk_(chunk);
}

void TcpReassembler::merge_insert(ConnectionState& conn, Direction dir,
                                  std::uint64_t begin, const std::uint8_t* src,
                                  std::size_t len) {
  StreamState& side = conn.streams[static_cast<std::size_t>(dir)];
  SideStats& ss = stats_.side[static_cast<std::size_t>(dir)];
  // Target policies compare the ORIGINAL segment starts, not the start of
  // whatever piece survives earlier arbitration.
  const std::uint64_t new_begin = begin;

  // First buffered segment whose range could overlap [begin, ...).
  auto it = side.pending.upper_bound(begin);
  if (it != side.pending.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size() > begin) it = prev;
  }

  std::uint64_t cur = begin;
  while (len > 0) {
    const std::uint64_t cur_end = cur + len;
    if (it == side.pending.end() || it->first >= cur_end) {
      // Pure hole: buffer the rest of the segment.
      insert_piece(conn, side, cur, src, len);
      return;
    }
    const std::uint64_t old_begin = it->first;
    const std::uint64_t old_end = old_begin + it->second.size();
    if (old_end <= cur) {
      ++it;
      continue;
    }
    if (cur < old_begin) {
      // Hole before the next buffered segment.
      const auto piece = static_cast<std::size_t>(old_begin - cur);
      if (!insert_piece(conn, side, cur, src, piece)) return;
      cur += piece;
      src += piece;
      len -= piece;
      continue;
    }
    // Conflict region [cur, min(cur_end, old_end)): arbitrate per policy.
    const auto ov =
        static_cast<std::size_t>(std::min<std::uint64_t>(cur_end, old_end) - cur);
    const bool new_wins =
        cfg_.overlap == OverlapPolicy::last ||
        (cfg_.overlap == OverlapPolicy::target_bsd && new_begin < old_begin) ||
        (cfg_.overlap == OverlapPolicy::target_linux && new_begin <= old_begin);
    if (new_wins) {
      // Replace in place: sizes don't change, so the non-overlap invariant
      // and the budget accounting are untouched.
      std::copy_n(src, ov, it->second.data() + static_cast<std::size_t>(cur - old_begin));
      ss.overwritten_bytes += ov;
    } else {
      ss.overlap_bytes_trimmed += ov;
    }
    cur += ov;
    src += ov;
    len -= ov;
    if (cur >= old_end) ++it;
  }
}

bool TcpReassembler::insert_piece(ConnectionState& conn, StreamState& side,
                                  std::uint64_t begin, const std::uint8_t* src,
                                  std::size_t len) {
  if (len == 0) return true;
  // Chaos hook first: an injected "budget exhausted" takes the identical
  // code path (and counters) as the real one.
  if (util::failpoint::should_fail(util::failpoint::Site::reassembly_buffer) ||
      pending_total(conn) + len > cfg_.max_buffered_bytes) {
    ++stats_.dropped_segments;
    return false;
  }
  side.pending.emplace(begin, util::Bytes(src, src + len));
  side.pending_bytes += len;
  return true;
}

void TcpReassembler::drain(ConnectionState& conn, Direction dir) {
  StreamState& side = conn.streams[static_cast<std::size_t>(dir)];
  SideStats& ss = stats_.side[static_cast<std::size_t>(dir)];
  auto it = side.pending.begin();
  while (it != side.pending.end() && it->first <= side.next_offset) {
    const std::uint64_t begin = it->first;
    util::Bytes& bytes = it->second;
    // The non-overlap invariant means a buffered segment never starts below
    // next_offset once it is reachable; keep the partial-skip arbitration
    // defensive (and exactly counted) anyway.
    std::size_t skip = 0;
    if (begin < side.next_offset) {
      skip = static_cast<std::size_t>(side.next_offset - begin);
      if (skip >= bytes.size()) {
        ss.overlap_bytes_trimmed += bytes.size();
        side.pending_bytes -= bytes.size();
        it = side.pending.erase(it);
        continue;
      }
      ss.overlap_bytes_trimmed += skip;
    }
    deliver(conn, dir, side.next_offset, {bytes.data() + skip, bytes.size() - skip});
    side.next_offset = begin + bytes.size();
    side.pending_bytes -= bytes.size();
    it = side.pending.erase(it);
  }
}

void TcpReassembler::truncate_past_fin(StreamState& side, Direction dir) {
  SideStats& ss = stats_.side[static_cast<std::size_t>(dir)];
  auto it = side.pending.lower_bound(side.fin_offset);
  if (it != side.pending.begin()) {
    // A buffered segment straddling the FIN keeps only its head.
    auto prev = std::prev(it);
    const std::uint64_t end = prev->first + prev->second.size();
    if (end > side.fin_offset) {
      const auto cut = static_cast<std::size_t>(end - side.fin_offset);
      ss.overlap_bytes_trimmed += cut;
      prev->second.resize(prev->second.size() - cut);
      side.pending_bytes -= cut;
    }
  }
  while (it != side.pending.end()) {
    ss.overlap_bytes_trimmed += it->second.size();
    side.pending_bytes -= it->second.size();
    it = side.pending.erase(it);
  }
}

bool TcpReassembler::both_sides_done(const ConnectionState& conn) const {
  for (const StreamState& s : conn.streams) {
    if (!s.fin_seen || s.next_offset < s.fin_offset || !s.pending.empty()) return false;
  }
  return true;
}

void TcpReassembler::finish_connection(ConnectionState& conn, EndReason reason) {
  stats_.discarded_on_close_bytes += pending_total(conn);
  ++stats_.connections_ended;
  if (on_end_) on_end_(conn.sides[0], reason);
}

void TcpReassembler::close_flow(const FiveTuple& tuple) {
  const FiveTuple key = tuple.canonical();
  if (ConnectionState* conn = conns_.find(key)) {
    finish_connection(*conn, EndReason::closed);
    conns_.erase(key);
  }
}

std::vector<FiveTuple> TcpReassembler::evict_idle(std::uint64_t now_us,
                                                  std::uint64_t idle_us) {
  std::vector<FiveTuple> evicted;
  if (idle_us == 0) return evicted;
  conns_.sweep([&](const FiveTuple&, ConnectionState& conn) {
    if (conn.last_activity_us + idle_us > now_us) return false;
    evicted.push_back(conn.sides[0]);
    finish_connection(conn, EndReason::evicted);
    return true;
  });
  stats_.evicted_flows += evicted.size();
  return evicted;
}

std::vector<FiveTuple> TcpReassembler::evict_idle_step(std::uint64_t now_us,
                                                       std::uint64_t idle_us,
                                                       std::size_t max_slots) {
  std::vector<FiveTuple> evicted;
  if (idle_us == 0) return evicted;
  conns_.sweep_step(max_slots, [&](const FiveTuple&, ConnectionState& conn) {
    if (conn.last_activity_us + idle_us > now_us) return false;
    evicted.push_back(conn.sides[0]);
    finish_connection(conn, EndReason::evicted);
    return true;
  });
  stats_.evicted_flows += evicted.size();
  return evicted;
}

}  // namespace vpm::net
