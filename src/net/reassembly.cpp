#include "net/reassembly.hpp"

#include <algorithm>

namespace vpm::net {

void TcpReassembler::ingest(const Packet& packet) {
  if (packet.tuple.proto != IpProto::tcp || packet.payload.empty()) return;
  FlowState& flow = flows_[packet.tuple];
  if (!flow.pinned) {
    flow.initial_seq = packet.tcp_seq;
    flow.pinned = true;
  }
  flow.last_activity_us = std::max(flow.last_activity_us, packet.timestamp_us);
  // 32-bit sequence arithmetic relative to the initial seq; streams here are
  // bounded well below 4 GiB so a single unwrapped delta suffices.
  const std::uint64_t offset =
      static_cast<std::uint32_t>(packet.tcp_seq - flow.initial_seq);

  std::uint64_t begin = offset;
  const std::uint8_t* src = packet.payload.data();
  std::size_t len = packet.payload.size();

  // Trim the part already delivered (retransmission / overlap: first wins).
  if (begin < flow.next_offset) {
    const std::uint64_t overlap = flow.next_offset - begin;
    if (overlap >= len) {
      trimmed_ += len;
      return;
    }
    trimmed_ += overlap;
    src += overlap;
    len -= overlap;
    begin = flow.next_offset;
  }

  if (begin == flow.next_offset) {
    on_chunk_(packet.tuple, begin, {src, len});
    flow.next_offset = begin + len;
    drain(packet.tuple, flow);
    return;
  }

  // Out of order: buffer unless the flow's budget is exhausted.
  if (flow.pending_bytes + len > limits_.max_buffered_bytes) {
    ++dropped_;
    return;
  }
  auto [it, inserted] = flow.pending.emplace(begin, util::Bytes(src, src + len));
  if (inserted) {
    flow.pending_bytes += len;
  } else {
    trimmed_ += len;  // duplicate offset: first wins
  }
}

void TcpReassembler::drain(const FiveTuple& tuple, FlowState& flow) {
  auto it = flow.pending.begin();
  while (it != flow.pending.end() && it->first <= flow.next_offset) {
    const std::uint64_t begin = it->first;
    util::Bytes& bytes = it->second;
    std::size_t skip = 0;
    if (begin < flow.next_offset) {
      skip = static_cast<std::size_t>(flow.next_offset - begin);
      if (skip >= bytes.size()) {
        trimmed_ += bytes.size();
        flow.pending_bytes -= bytes.size();
        it = flow.pending.erase(it);
        continue;
      }
      trimmed_ += skip;
    }
    on_chunk_(tuple, flow.next_offset, {bytes.data() + skip, bytes.size() - skip});
    flow.next_offset = begin + bytes.size();
    flow.pending_bytes -= bytes.size();
    it = flow.pending.erase(it);
  }
}

void TcpReassembler::close_flow(const FiveTuple& tuple) { flows_.erase(tuple); }

std::vector<FiveTuple> TcpReassembler::evict_idle(std::uint64_t now_us,
                                                  std::uint64_t idle_us) {
  std::vector<FiveTuple> evicted;
  if (idle_us == 0) return evicted;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.last_activity_us + idle_us <= now_us) {
      evicted.push_back(it->first);
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  evicted_ += evicted.size();
  return evicted;
}

}  // namespace vpm::net
