// Packet model for the network substrate.
//
// The paper's system model is a NIDS scanning *reassembled protocol streams*;
// this module provides the missing network layer: packets with 5-tuples and
// TCP sequence numbers, pcap-format capture I/O, flow packetization of the
// generated traces, and TCP stream reassembly feeding the IDS engine.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace vpm::net {

enum class IpProto : std::uint8_t { tcp = 6, udp = 17 };

struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  IpProto proto = IpProto::tcp;

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;

  // Stable hash for flow tables.
  std::uint64_t hash() const {
    std::uint64_t h = src_ip;
    h = h * 0x100000001B3ull ^ dst_ip;
    h = h * 0x100000001B3ull ^ (static_cast<std::uint32_t>(src_port) << 16 | dst_port);
    h = h * 0x100000001B3ull ^ static_cast<std::uint8_t>(proto);
    return h;
  }
};

struct Packet {
  std::uint64_t timestamp_us = 0;
  FiveTuple tuple;
  std::uint32_t tcp_seq = 0;  // sequence number of payload[0] (TCP only)
  util::Bytes payload;
};

}  // namespace vpm::net
