// Packet model for the network substrate.
//
// The paper's system model is a NIDS scanning *reassembled protocol streams*;
// this module provides the missing network layer: packets with 5-tuples and
// TCP sequence numbers, pcap-format capture I/O, flow packetization of the
// generated traces, and TCP stream reassembly feeding the IDS engine.
#pragma once

#include <cstdint>
#include <utility>

#include "util/bytes.hpp"

namespace vpm::net {

enum class IpProto : std::uint8_t { tcp = 6, udp = 17 };

// TCP flag bits (low byte of the TCP flags field, RFC 793 order).
inline constexpr std::uint8_t kTcpFin = 0x01;
inline constexpr std::uint8_t kTcpSyn = 0x02;
inline constexpr std::uint8_t kTcpRst = 0x04;
inline constexpr std::uint8_t kTcpPsh = 0x08;
inline constexpr std::uint8_t kTcpAck = 0x10;

struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  IpProto proto = IpProto::tcp;

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;

  // Stable hash for flow tables.  Directional: the two directions of one
  // connection hash differently (each side scans as its own stream).
  std::uint64_t hash() const {
    std::uint64_t h = src_ip;
    h = h * 0x100000001B3ull ^ dst_ip;
    h = h * 0x100000001B3ull ^ (static_cast<std::uint32_t>(src_port) << 16 | dst_port);
    h = h * 0x100000001B3ull ^ static_cast<std::uint8_t>(proto);
    return h;
  }

  // The same tuple as seen by the opposite direction.
  FiveTuple reversed() const {
    FiveTuple r = *this;
    std::swap(r.src_ip, r.dst_ip);
    std::swap(r.src_port, r.dst_port);
    return r;
  }

  // Direction-less connection identity: both directions of a connection
  // canonicalize to the same tuple (endpoints ordered by (ip, port)).
  FiveTuple canonical() const {
    const bool swap = dst_ip < src_ip || (dst_ip == src_ip && dst_port < src_port);
    return swap ? reversed() : *this;
  }

  // Symmetric flow-table/shard key: equal for both directions, so a
  // connection's two sides always land together.
  std::uint64_t conn_hash() const { return canonical().hash(); }
};

// Upper bound any decoder should accept for one packet's payload: the IPv4
// total-length ceiling.  Nothing legitimate exceeds it, so inputs claiming
// more are crafted (or corrupt) and get rejected up front instead of turning
// into attacker-sized allocations.
inline constexpr std::size_t kMaxSanePayload = 65535;

constexpr bool payload_size_sane(std::size_t n) { return n <= kMaxSanePayload; }

struct Packet {
  std::uint64_t timestamp_us = 0;
  FiveTuple tuple;
  std::uint32_t tcp_seq = 0;      // sequence number of payload[0] (TCP only)
  std::uint8_t tcp_flags = kTcpPsh | kTcpAck;  // TCP only; data-segment default
  util::Bytes payload;
};

}  // namespace vpm::net
