#include "net/frame.hpp"

#include <algorithm>

namespace vpm::net {

namespace {

void put_u16be(util::Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}
void put_u32be(util::Bytes& out, std::uint32_t v) {
  put_u16be(out, static_cast<std::uint16_t>(v >> 16));
  put_u16be(out, static_cast<std::uint16_t>(v & 0xFFFF));
}
std::uint16_t get_u16be(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] << 8 | p[1]);
}
std::uint32_t get_u32be(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 | static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 | p[3];
}

}  // namespace

std::size_t encoded_frame_length(const Packet& p) {
  const std::size_t l4 =
      p.tuple.proto == IpProto::tcp ? kTcpHeaderLen : kUdpHeaderLen;
  return kEthHeaderLen + kIpv4HeaderLen + l4 + p.payload.size();
}

void encode_ethernet_frame(util::Bytes& out, const Packet& p) {
  const bool tcp = p.tuple.proto == IpProto::tcp;
  const std::size_t l4 = tcp ? kTcpHeaderLen : kUdpHeaderLen;

  // Ethernet: synthetic MACs, EtherType IPv4.
  static constexpr std::uint8_t kDstMac[] = {0x02, 0, 0, 0, 0, 0x01};
  static constexpr std::uint8_t kSrcMac[] = {0x02, 0, 0, 0, 0, 0x02};
  out.insert(out.end(), std::begin(kDstMac), std::end(kDstMac));
  out.insert(out.end(), std::begin(kSrcMac), std::end(kSrcMac));
  put_u16be(out, 0x0800);

  // IPv4 header (no options, zero checksum).
  out.push_back(0x45);  // version 4, IHL 5
  out.push_back(0);     // DSCP/ECN
  put_u16be(out, static_cast<std::uint16_t>(kIpv4HeaderLen + l4 + p.payload.size()));
  put_u16be(out, 0);       // identification
  put_u16be(out, 0x4000);  // DF, no fragmentation
  out.push_back(64);       // TTL
  out.push_back(static_cast<std::uint8_t>(p.tuple.proto));
  put_u16be(out, 0);  // header checksum (offloaded)
  put_u32be(out, p.tuple.src_ip);
  put_u32be(out, p.tuple.dst_ip);

  if (tcp) {
    put_u16be(out, p.tuple.src_port);
    put_u16be(out, p.tuple.dst_port);
    put_u32be(out, p.tcp_seq);
    put_u32be(out, 0);      // ack
    out.push_back(5 << 4);  // data offset 5 words
    out.push_back(p.tcp_flags);
    put_u16be(out, 0xFFFF);  // window
    put_u16be(out, 0);       // checksum
    put_u16be(out, 0);       // urgent
  } else {
    put_u16be(out, p.tuple.src_port);
    put_u16be(out, p.tuple.dst_port);
    put_u16be(out, static_cast<std::uint16_t>(kUdpHeaderLen + p.payload.size()));
    put_u16be(out, 0);  // checksum
  }
  out.insert(out.end(), p.payload.begin(), p.payload.end());
}

FrameDecode decode_ethernet_frame(const std::uint8_t* frame, std::size_t len,
                                  bool clamp_truncated, Packet& out) {
  if (len < kEthHeaderLen + kIpv4HeaderLen || get_u16be(frame + 12) != 0x0800) {
    return FrameDecode::malformed;
  }
  const std::uint8_t* ip = frame + kEthHeaderLen;
  const unsigned ihl = (ip[0] & 0x0F) * 4u;
  if ((ip[0] >> 4) != 4 || ihl < 20 || len < kEthHeaderLen + ihl) {
    return FrameDecode::malformed;
  }
  const std::uint16_t total_len = get_u16be(ip + 2);
  const std::uint8_t proto = ip[9];
  if ((proto != 6 && proto != 17) || total_len < ihl) return FrameDecode::malformed;
  if (!clamp_truncated && kEthHeaderLen + total_len > len) {
    // Replay semantics: the capture claims more IP bytes than it delivered —
    // crafted lengths, not a snaplen cut.
    return FrameDecode::malformed;
  }
  // L4 bytes the IP header claims vs. bytes the capture actually delivered.
  const std::size_t l4_claimed = total_len - ihl;
  const std::size_t l4_captured =
      std::min<std::size_t>(l4_claimed, len - kEthHeaderLen - ihl);

  out.tuple.src_ip = get_u32be(ip + 12);
  out.tuple.dst_ip = get_u32be(ip + 16);
  out.tuple.proto = static_cast<IpProto>(proto);

  const std::uint8_t* l4 = ip + ihl;
  bool truncated = false;
  if (proto == 6) {
    if (l4_captured < kTcpHeaderLen) return FrameDecode::malformed;
    const unsigned data_off = (l4[12] >> 4) * 4u;
    if (data_off < kTcpHeaderLen || l4_claimed < data_off || l4_captured < data_off) {
      return FrameDecode::malformed;
    }
    out.tuple.src_port = get_u16be(l4);
    out.tuple.dst_port = get_u16be(l4 + 2);
    out.tcp_seq = get_u32be(l4 + 4);
    out.tcp_flags = l4[13];
    out.payload.assign(l4 + data_off, l4 + l4_captured);
    truncated = l4_captured < l4_claimed;
  } else {
    if (l4_captured < kUdpHeaderLen) return FrameDecode::malformed;
    // The UDP header carries its own length; honor it, but only when it is
    // consistent with the IP framing — a datagram claiming more bytes than
    // the IP layer delivered (or fewer than its own header) is crafted.
    const std::uint16_t udp_len = get_u16be(l4 + 4);
    if (udp_len < kUdpHeaderLen || udp_len > l4_claimed) return FrameDecode::malformed;
    const std::size_t udp_end = std::min<std::size_t>(udp_len, l4_captured);
    out.tuple.src_port = get_u16be(l4);
    out.tuple.dst_port = get_u16be(l4 + 2);
    out.payload.assign(l4 + kUdpHeaderLen, l4 + udp_end);
    truncated = udp_end < udp_len;
  }
  return truncated ? FrameDecode::truncated : FrameDecode::ok;
}

}  // namespace vpm::net
