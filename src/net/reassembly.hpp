// TCP stream reassembly.
//
// The NIDS scans reassembled byte streams, not individual packets (a pattern
// may straddle segments, and attackers deliberately fragment payloads).  The
// reassembler buffers out-of-order segments per flow, trims overlaps
// (first-arrival wins, the common IDS policy), and emits the in-order prefix
// as contiguous chunks — which feed ids::StreamScanner.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"

namespace vpm::net {

struct ReassemblyLimits {
  // Per-flow cap on buffered out-of-order bytes; overflow drops the segment
  // and counts it (defense against state-exhaustion).
  std::size_t max_buffered_bytes = 1 << 20;
};

class TcpReassembler {
 public:
  // Called with the next in-order chunk of a flow's stream.
  using ChunkCallback =
      std::function<void(const FiveTuple&, std::uint64_t stream_offset, util::ByteView chunk)>;

  explicit TcpReassembler(ChunkCallback on_chunk, ReassemblyLimits limits = {})
      : on_chunk_(std::move(on_chunk)), limits_(limits) {}

  // Ingests one TCP segment; may trigger zero or more callbacks.  The first
  // segment seen for a flow pins its initial sequence number.
  void ingest(const Packet& packet);

  // Flushes knowledge of a flow (connection close / timeout).
  void close_flow(const FiveTuple& tuple);

  // Evicts every flow whose last ingested segment is older than `idle_us`
  // relative to `now_us` (packet-capture time, not wall time).  Buffered
  // out-of-order data of evicted flows is discarded.  Returns the evicted
  // tuples so callers can tear down dependent per-flow state (e.g. the IDS
  // engine's stream scanners).  idle_us == 0 evicts nothing.
  std::vector<FiveTuple> evict_idle(std::uint64_t now_us, std::uint64_t idle_us);

  std::size_t active_flows() const { return flows_.size(); }
  std::uint64_t dropped_segments() const { return dropped_; }
  std::uint64_t duplicate_bytes_trimmed() const { return trimmed_; }
  std::uint64_t evicted_flows() const { return evicted_; }

 private:
  struct FlowState {
    std::uint32_t initial_seq = 0;
    bool pinned = false;
    std::uint64_t next_offset = 0;  // stream offset expected next
    std::uint64_t last_activity_us = 0;  // timestamp of the last ingested segment
    // Out-of-order segments keyed by stream offset.
    std::map<std::uint64_t, util::Bytes> pending;
    std::size_t pending_bytes = 0;
  };

  struct TupleHash {
    std::size_t operator()(const FiveTuple& t) const { return t.hash(); }
  };

  void drain(const FiveTuple& tuple, FlowState& flow);

  ChunkCallback on_chunk_;
  ReassemblyLimits limits_;
  std::unordered_map<FiveTuple, FlowState, TupleHash> flows_;
  std::uint64_t dropped_ = 0;
  std::uint64_t trimmed_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace vpm::net
