// Bidirectional, lifecycle-aware TCP stream reassembly.
//
// The NIDS scans reassembled byte streams, not individual packets (a pattern
// may straddle segments, and attackers deliberately fragment payloads).  The
// reassembler tracks one connection per canonical 5-tuple with TWO per-side
// streams (client→server and server→client), follows the SYN/FIN/RST
// lifecycle with connection start/end callbacks, buffers out-of-order
// segments per side, resolves overlapping retransmits under a configurable
// policy, and emits each side's in-order prefix as contiguous chunks — which
// feed ids::StreamScanner.
//
// Overlap model.  Bytes already delivered to the callback can never be
// retracted, so data overlapping the delivered prefix is always discarded
// ("first wins" there, under every policy — the same choice Suricata and
// PcapPlusPlus make).  The policy governs conflicts INSIDE the buffered
// out-of-order window, where classic IDS evasion plants contradictory
// retransmits:
//   first        buffered bytes win; a new segment only fills holes
//                (the pre-rework semantics, and the default)
//   last         the new segment's bytes replace whatever was buffered
//   target_bsd   the new segment wins only where it starts strictly before
//                the buffered segment it overlaps (4.4BSD pullup behavior)
//   target_linux like BSD, but the new segment also wins when the starts tie
// The pending window holds NON-overlapping segments by invariant: every
// conflict is resolved at insertion, so buffered bytes are counted exactly
// once against the budget and the drain path needs no overlap arbitration.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string_view>
#include <vector>

#include "net/packet.hpp"
#include "util/flow_table.hpp"

namespace vpm::telemetry {
class Histogram;
}

namespace vpm::net {

enum class Direction : std::uint8_t { client_to_server = 0, server_to_client = 1 };

inline constexpr const char* direction_name(Direction d) {
  return d == Direction::client_to_server ? "c2s" : "s2c";
}

enum class OverlapPolicy : std::uint8_t { first, last, target_bsd, target_linux };

constexpr const char* overlap_policy_name(OverlapPolicy p) {
  switch (p) {
    case OverlapPolicy::first: return "first";
    case OverlapPolicy::last: return "last";
    case OverlapPolicy::target_bsd: return "target_bsd";
    case OverlapPolicy::target_linux: return "target_linux";
  }
  return "?";
}

std::optional<OverlapPolicy> overlap_policy_from_name(std::string_view name);

// Why a connection went away (the end-callback reason).
enum class EndReason : std::uint8_t {
  fin,      // both sides FINed and every byte up to each FIN was delivered
  rst,      // RST teardown (buffered data is discarded, as the endpoint would)
  closed,   // explicit close_flow()
  evicted,  // idle eviction
};

constexpr const char* end_reason_name(EndReason r) {
  switch (r) {
    case EndReason::fin: return "fin";
    case EndReason::rst: return "rst";
    case EndReason::closed: return "closed";
    case EndReason::evicted: return "evicted";
  }
  return "?";
}

struct ReassemblyConfig {
  // Per-connection cap on buffered out-of-order bytes (both sides share it);
  // overflow drops the segment and counts it (defense against
  // state-exhaustion).  The non-overlap invariant means every buffered byte
  // is counted exactly once.
  std::size_t max_buffered_bytes = 1 << 20;
  OverlapPolicy overlap = OverlapPolicy::first;
};
// Pre-rework name; the policy rides along wherever the limits already flow.
using ReassemblyLimits = ReassemblyConfig;

// One side's delivery/conflict counters.
struct SideStats {
  std::uint64_t segments = 0;         // TCP segments ingested for this side
  std::uint64_t chunks = 0;           // in-order chunks delivered
  std::uint64_t delivered_bytes = 0;  // bytes handed to the chunk callback
  // New-segment bytes discarded because already-delivered or buffered data
  // won under the policy (retransmits, losing overlaps).
  std::uint64_t overlap_bytes_trimmed = 0;
  // Buffered bytes replaced in place because the NEW segment won the policy
  // conflict (last/target policies only).
  std::uint64_t overwritten_bytes = 0;
};

struct ReassemblyStats {
  SideStats side[2];  // indexed by Direction
  std::uint64_t dropped_segments = 0;       // budget overflows
  std::uint64_t discarded_on_close_bytes = 0;  // pending bytes dropped by
                                               // RST/close/eviction
  std::uint64_t connections_started = 0;
  std::uint64_t connections_ended = 0;
  std::uint64_t resets = 0;  // RST segments honored
  std::uint64_t fins = 0;    // FIN segments honored
  std::uint64_t evicted_flows = 0;

  std::uint64_t overlap_bytes_trimmed() const {
    return side[0].overlap_bytes_trimmed + side[1].overlap_bytes_trimmed;
  }
};

// One in-order chunk of one side's stream, plus the context a consumer needs
// to key and classify it without tracking connections itself.
struct StreamChunk {
  const FiveTuple& tuple;     // directional tuple (src = sender of the bytes)
  Direction dir;
  std::uint16_t server_port;  // the client side's destination port — the
                              // classification port for BOTH directions
  std::uint64_t offset;       // absolute stream offset of data[0] on this side
  util::ByteView data;
};

class TcpReassembler {
 public:
  using ChunkCallback = std::function<void(const StreamChunk&)>;
  // `client_tuple` is the initiator-side tuple (src = client); the other
  // side's stream is keyed by client_tuple.reversed().
  using ConnectionStartCallback = std::function<void(const FiveTuple& client_tuple)>;
  using ConnectionEndCallback =
      std::function<void(const FiveTuple& client_tuple, EndReason reason)>;

  explicit TcpReassembler(ChunkCallback on_chunk, ReassemblyConfig cfg = {})
      : on_chunk_(std::move(on_chunk)), cfg_(cfg) {}

  // Lifecycle callbacks (optional).  Start fires when a connection is first
  // seen (SYN or mid-stream pickup); end fires exactly once per started
  // connection — on FIN completion, RST, close_flow(), or idle eviction —
  // after its last chunk and before its state is dropped.
  void on_connection_start(ConnectionStartCallback cb) { on_start_ = std::move(cb); }
  void on_connection_end(ConnectionEndCallback cb) { on_end_ = std::move(cb); }

  // Ingests one TCP segment; may trigger zero or more chunk callbacks and at
  // most one start + one end callback.  The first data-bearing or SYN
  // segment of a side pins that side's initial sequence number (SYN and FIN
  // each consume one sequence number, per RFC 793).
  void ingest(const Packet& packet);

  // Flushes knowledge of a connection (either direction's tuple); fires the
  // end callback with EndReason::closed if the connection existed.
  void close_flow(const FiveTuple& tuple);

  // Evicts every connection whose last ingested segment is older than
  // `idle_us` relative to `now_us` (packet-capture time, not wall time).
  // Buffered out-of-order data of evicted connections is discarded (and
  // counted in discarded_on_close_bytes).  The end callback fires per
  // eviction with EndReason::evicted; the returned client-side tuples let
  // callers without an end callback tear down dependent state.  idle_us == 0
  // evicts nothing.
  std::vector<FiveTuple> evict_idle(std::uint64_t now_us, std::uint64_t idle_us);

  // Incremental eviction: examines at most `max_slots` flow-table slots from
  // a persistent rotating cursor and evicts the idle connections among them.
  // Bounded work per call — no full-sweep latency spike at million-flow
  // scale; repeated calls cycle the whole table (capacity() / max_slots
  // calls per full pass), so idle flows are still found, just with bounded
  // lag.  Same callback/stats behavior as evict_idle.
  std::vector<FiveTuple> evict_idle_step(std::uint64_t now_us, std::uint64_t idle_us,
                                         std::size_t max_slots);

  // Flow-table slot count (capacity of the open-addressing table); the
  // denominator for incremental-eviction cycle length.
  std::size_t table_capacity() const { return conns_.capacity(); }

  std::size_t active_flows() const { return conns_.size(); }
  const ReassemblyStats& stats() const { return stats_; }
  OverlapPolicy policy() const { return cfg_.overlap; }

  // Runtime-adjustable buffering budget (the overload ladder's first rung
  // shrinks it under pressure and restores it on recovery).  Applies to NEW
  // buffering decisions only: already-buffered bytes above a lowered budget
  // are not discarded — they drain normally, and further growth is refused
  // until the connection is back under budget.
  std::size_t max_buffered_bytes() const { return cfg_.max_buffered_bytes; }
  void set_max_buffered_bytes(std::size_t n) { cfg_.max_buffered_bytes = n; }

  // Optional instrumentation: every delivered chunk's size in bytes is
  // recorded into `h` (relaxed-atomic, allocation-free).  Null disables; the
  // histogram must outlive the reassembler.
  void set_chunk_histogram(telemetry::Histogram* h) { chunk_hist_ = h; }

  // Pre-rework accessor names (aggregates of stats()).
  std::uint64_t dropped_segments() const { return stats_.dropped_segments; }
  std::uint64_t duplicate_bytes_trimmed() const { return stats_.overlap_bytes_trimmed(); }
  std::uint64_t evicted_flows() const { return stats_.evicted_flows; }

 private:
  struct StreamState {
    std::uint32_t initial_seq = 0;  // sequence number of stream offset 0
    bool pinned = false;
    bool fin_seen = false;
    std::uint64_t fin_offset = 0;   // stream offset the FIN occupies
    std::uint64_t next_offset = 0;  // stream offset expected next
    // Out-of-order segments keyed by stream offset.  Invariant: ranges are
    // pairwise disjoint and start at or after next_offset.
    std::map<std::uint64_t, util::Bytes> pending;
    std::size_t pending_bytes = 0;
  };

  struct ConnectionState {
    // sides[0] = client's directional tuple, sides[1] = its reverse; stored
    // both ways so chunk delivery never materializes a temporary tuple.
    FiveTuple sides[2];
    StreamState streams[2];
    std::uint64_t last_activity_us = 0;
  };

  struct TupleHash {
    std::size_t operator()(const FiveTuple& t) const { return t.hash(); }
  };
  // Open-addressing with stable ConnectionState pointers and an incremental
  // sweep cursor — the structure evict_idle_step's bounded work rides on.
  using ConnMap = util::FlowTable<FiveTuple, ConnectionState, TupleHash>;

  std::size_t pending_total(const ConnectionState& conn) const {
    return conn.streams[0].pending_bytes + conn.streams[1].pending_bytes;
  }

  void deliver(const ConnectionState& conn, Direction dir, std::uint64_t offset,
               util::ByteView data);
  // Inserts [begin, begin+len) into the pending window, resolving overlaps
  // against buffered segments under the configured policy.
  void merge_insert(ConnectionState& conn, Direction dir, std::uint64_t begin,
                    const std::uint8_t* src, std::size_t len);
  // Buffers one non-overlapping piece; false when the budget dropped it
  // (the rest of the segment is dropped with it).
  bool insert_piece(ConnectionState& conn, StreamState& side, std::uint64_t begin,
                    const std::uint8_t* src, std::size_t len);
  void drain(ConnectionState& conn, Direction dir);
  // Trims buffered data at or past the side's FIN offset.
  void truncate_past_fin(StreamState& side, Direction dir);
  bool both_sides_done(const ConnectionState& conn) const;
  // Fires the end callback and counts discarded pending bytes.  Does NOT
  // erase: callers erase via the table (or return true from a sweep) so the
  // teardown works identically from point lookups and bounded sweeps.  The
  // end callback must not reenter this reassembler (the pipeline worker's
  // tears down engine state only).
  void finish_connection(ConnectionState& conn, EndReason reason);

  ChunkCallback on_chunk_;
  ConnectionStartCallback on_start_;
  ConnectionEndCallback on_end_;
  telemetry::Histogram* chunk_hist_ = nullptr;
  ReassemblyConfig cfg_;
  ConnMap conns_;  // keyed by canonical (direction-less) tuple
  ReassemblyStats stats_;
};

}  // namespace vpm::net
