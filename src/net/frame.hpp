// Ethernet/IPv4/{TCP,UDP} frame codec shared by the pcap reader/writer and
// the AF_PACKET capture path (ring walker + the in-process mock kernel
// ring).  One decoder means a frame is parsed identically whether it arrived
// from a replay file or a TPACKET_V3 ring — the capture differential test
// leans on exactly that.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/packet.hpp"

namespace vpm::net {

inline constexpr std::size_t kEthHeaderLen = 14;
inline constexpr std::size_t kIpv4HeaderLen = 20;
inline constexpr std::size_t kTcpHeaderLen = 20;
inline constexpr std::size_t kUdpHeaderLen = 8;

enum class FrameDecode : std::uint8_t {
  ok,         // fully decoded
  truncated,  // decoded, but the capture cut claimed payload bytes (clamp mode)
  malformed,  // not decodable; out is unspecified
};

// Decodes one Ethernet frame of `len` captured bytes into `out` (tuple,
// tcp_seq/flags, payload; the caller stamps timestamp_us).  Non-IPv4
// ethertypes, non-TCP/UDP protocols, and header-level inconsistencies are
// malformed.
//
// clamp_truncated governs frames whose captured bytes end before the
// IP/UDP-claimed payload does:
//   false  malformed — pcap-replay semantics (read_pcap), where cap_len
//          should cover the claimed frame and a shortfall means crafted
//          lengths;
//   true   the payload is clamped to the captured extent and `truncated` is
//          returned — snaplen-cut AF_PACKET frames, where tp_snaplen <
//          tp_len is routine and the prefix is still worth scanning.
FrameDecode decode_ethernet_frame(const std::uint8_t* frame, std::size_t len,
                                  bool clamp_truncated, Packet& out);

// Appends the canonical frame encoding of `p` (synthetic MACs, IPv4 without
// options, zero checksums) — the body write_pcap wraps in a record header
// and the mock ring wraps in a TPACKET_V3 frame header.
void encode_ethernet_frame(util::Bytes& out, const Packet& p);

// Byte length encode_ethernet_frame would append for `p`.
std::size_t encoded_frame_length(const Packet& p);

}  // namespace vpm::net
