// Runtime CPU feature detection.
//
// The engine picks the widest usable kernel at runtime (AVX-512 W=16,
// AVX2 W=8, scalar) — mirroring the paper's Haswell (256-bit) and Xeon-Phi
// (512-bit) targets. Tests skip ISA-specific cases on machines without them.
#pragma once

namespace vpm::simd {

struct CpuFeatures {
  bool avx2 = false;
  bool bmi2 = false;
  bool avx512f = false;
  bool avx512bw = false;
  bool avx512vl = false;
  bool avx512dq = false;

  // The AVX2 V-PATCH kernel needs AVX2 gathers; BMI helps but is not required.
  bool has_avx2_kernel() const { return avx2; }
  // The wide kernel needs F (gather, compress) + BW/VL (byte shuffles, masks).
  bool has_avx512_kernel() const { return avx512f && avx512bw && avx512vl; }
};

// Detected once at first call; cached.
const CpuFeatures& cpu();

}  // namespace vpm::simd
