// AVX-512 (W = 16) intrinsic sequences — the wide-vector stand-in for the
// paper's Xeon-Phi 512-bit VPU experiments (Fig. 7).
//
// Include only from translation units compiled with
// -mavx512f -mavx512bw -mavx512vl (guarded below).
#pragma once

#if !defined(__AVX512F__) || !defined(__AVX512BW__) || !defined(__AVX512VL__)
#error "avx512_ops.hpp must be compiled with -mavx512f -mavx512bw -mavx512vl"
#endif

#include <immintrin.h>

#include <bit>
#include <cstdint>

#include "simd/avx2_ops.hpp"
#include "util/hash.hpp"

namespace vpm::simd::avx512 {

// W=16 sliding 2-byte windows from the 32 raw bytes at p (uses p[0..16]).
// Built from two 256-bit window transforms: lanes 0..7 read the 16 bytes at
// p, lanes 8..15 the 16 bytes at p+8 — needs only AVX2-style per-lane
// shuffles, no VBMI.
inline __m512i windows2(const std::uint8_t* p, __m256i shuffle2) {
  const __m256i lo = avx2::windows2(p, shuffle2);
  const __m256i hi = avx2::windows2(p + 8, shuffle2);
  return _mm512_inserti64x4(_mm512_castsi256_si512(lo), hi, 1);
}

// W=16 sliding 4-byte windows from the raw bytes at p (uses p[0..18]).
inline __m512i windows4(const std::uint8_t* p, __m256i shuffle4) {
  const __m256i lo = avx2::windows4(p, shuffle4);
  const __m256i hi = avx2::windows4(p + 8, shuffle4);
  return _mm512_inserti64x4(_mm512_castsi256_si512(lo), hi, 1);
}

inline __m512i gather_u32(const std::uint8_t* base, __m512i idx) {
  return _mm512_i32gather_epi32(idx, base, 1);
}

inline __m512i hash_mul(__m512i v, unsigned out_bits) {
  const __m512i prod =
      _mm512_mullo_epi32(v, _mm512_set1_epi32(static_cast<int>(util::kGoldenGamma)));
  return _mm512_srli_epi32(prod, 32u - out_bits);
}

// Filter membership test; returns a 16-bit lane mask (native kmask).
inline std::uint32_t filter_testbits(__m512i words, __m512i vals) {
  const __m512i amount = _mm512_and_si512(vals, _mm512_set1_epi32(7));
  const __m512i shifted = _mm512_srlv_epi32(words, amount);
  const __m512i bit = _mm512_and_si512(shifted, _mm512_set1_epi32(1));
  return _mm512_test_epi32_mask(bit, bit);
}

// Per-lane popcount of the 16 dword lanes (VPOPCNTDQ is not in the required
// feature set): same nibble-LUT + 0x01010101-multiply fold as the AVX2 one.
inline __m512i popcount_u32(__m512i v) {
  const __m512i lut = _mm512_broadcast_i32x4(
      _mm_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
  const __m512i low_nib = _mm512_set1_epi8(0x0F);
  const __m512i lo = _mm512_and_si512(v, low_nib);
  const __m512i hi = _mm512_and_si512(_mm512_srli_epi16(v, 4), low_nib);
  const __m512i cnt8 =
      _mm512_add_epi8(_mm512_shuffle_epi8(lut, lo), _mm512_shuffle_epi8(lut, hi));
  return _mm512_srli_epi32(_mm512_mullo_epi32(cnt8, _mm512_set1_epi32(0x01010101)), 24);
}

// Compress-store of matching lane positions — AVX-512 has vpcompressd, so no
// permutation table is needed and only `popcount(mask)` dwords are written.
inline unsigned leftpack_positions(std::uint32_t base_pos, std::uint32_t mask16,
                                   std::uint32_t* dst) {
  const __m512i iota = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
  const __m512i pos = _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(base_pos)), iota);
  _mm512_mask_compressstoreu_epi32(dst, static_cast<__mmask16>(mask16), pos);
  return static_cast<unsigned>(std::popcount(mask16));
}

}  // namespace vpm::simd::avx512
