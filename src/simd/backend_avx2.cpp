// Exported AVX2 wrappers over the inline sequences in avx2_ops.hpp, so the
// unit tests can exercise each primitive against the scalar reference.
#include "simd/ops.hpp"

#if defined(__AVX2__)
#include "simd/avx2_ops.hpp"
#include "simd/cpu_features.hpp"

namespace vpm::simd {

bool avx2_available() { return cpu().has_avx2_kernel(); }

void windows2_avx2(const std::uint8_t* p, std::uint32_t out[8]) {
  const __m256i w = avx2::windows2(p, avx2::window_shuffle_mask(2));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), w);
}

void windows4_avx2(const std::uint8_t* p, std::uint32_t out[8]) {
  const __m256i w = avx2::windows4(p, avx2::window_shuffle_mask(4));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), w);
}

void gather_u32_avx2(const std::uint8_t* base, const std::uint32_t idx[8],
                     std::uint32_t out[8]) {
  const __m256i vidx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
  const __m256i got = avx2::gather_u32(base, vidx);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), got);
}

void hash_mul_avx2(const std::uint32_t in[8], std::uint32_t out[8], unsigned out_bits) {
  const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in));
  const __m256i h = avx2::hash_mul(v, out_bits);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), h);
}

std::uint32_t filter_testbits_avx2(const std::uint32_t words[8], const std::uint32_t vals[8]) {
  const __m256i w = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words));
  const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals));
  return avx2::filter_testbits(w, v);
}

unsigned leftpack_positions_avx2(std::uint32_t base_pos, std::uint32_t mask8,
                                 std::uint32_t* dst) {
  return avx2::leftpack_positions(base_pos, mask8, dst);
}

}  // namespace vpm::simd

#else  // compiler cannot target AVX2: conservative stubs

#include <cstdlib>

namespace vpm::simd {
bool avx2_available() { return false; }
void windows2_avx2(const std::uint8_t*, std::uint32_t*) { std::abort(); }
void windows4_avx2(const std::uint8_t*, std::uint32_t*) { std::abort(); }
void gather_u32_avx2(const std::uint8_t*, const std::uint32_t*, std::uint32_t*) { std::abort(); }
void hash_mul_avx2(const std::uint32_t*, std::uint32_t*, unsigned) { std::abort(); }
std::uint32_t filter_testbits_avx2(const std::uint32_t*, const std::uint32_t*) { std::abort(); }
unsigned leftpack_positions_avx2(std::uint32_t, std::uint32_t, std::uint32_t*) { std::abort(); }
}  // namespace vpm::simd

#endif
