// Testable SIMD primitives underlying the V-PATCH filtering kernel.
//
// Each primitive has a scalar reference implementation plus AVX2 (W=8) and
// AVX-512 (W=16) versions compiled in ISA-flagged translation units.  The hot
// kernels in src/core inline the same intrinsic sequences (via
// simd/avx2_ops.hpp / avx512_ops.hpp); these exported wrappers exist so the
// sequences are unit-testable against the scalar reference in isolation.
//
// Primitive inventory (paper reference):
//   windows2  — Fig. 2 input transformation: W sliding 2-byte windows
//   windows4  — same with 4-byte windows (Filter-3 indexes)
//   gather_u32 — the AVX2/AVX-512 hardware gather at byte offsets
//   filter_testbits — bit extraction from gathered filter words
//   leftpack  — compacting matching lane positions into the candidate arrays
#pragma once

#include <cstddef>
#include <cstdint>

namespace vpm::simd {

// ---- scalar reference (any W) ------------------------------------------
// out[j] = p[j] | p[j+1]<<8                       (reads p[0..w])
void windows2_scalar(const std::uint8_t* p, std::uint32_t* out, unsigned w);
// out[j] = 4-byte little-endian window at p+j     (reads p[0..w+2])
void windows4_scalar(const std::uint8_t* p, std::uint32_t* out, unsigned w);
// out[j] = 32-bit little-endian load of base+idx[j] (byte offsets)
void gather_u32_scalar(const std::uint8_t* base, const std::uint32_t* idx,
                       std::uint32_t* out, unsigned w);
// Lane-wise multiplicative hash, identical to util::multiplicative_hash.
void hash_mul_scalar(const std::uint32_t* in, std::uint32_t* out, unsigned w,
                     unsigned out_bits);
// Returns a mask with bit j set iff bit (vals[j] & 7) of the low byte of
// words[j] is set — i.e. the filter-membership test after a gather, where
// vals[j] is the window value and words[j] the gathered filter word when the
// gather used byte offset vals[j] >> 3.
std::uint32_t filter_testbits_scalar(const std::uint32_t* words, const std::uint32_t* vals,
                                     unsigned w);
// Appends base_pos + j for every set bit j of mask to dst; returns count.
unsigned leftpack_positions_scalar(std::uint32_t base_pos, std::uint32_t mask, unsigned w,
                                   std::uint32_t* dst);

// ---- AVX2 wrappers (W = 8; reads 16 bytes at p) -------------------------
bool avx2_available();
void windows2_avx2(const std::uint8_t* p, std::uint32_t out[8]);
void windows4_avx2(const std::uint8_t* p, std::uint32_t out[8]);
void gather_u32_avx2(const std::uint8_t* base, const std::uint32_t idx[8],
                     std::uint32_t out[8]);
void hash_mul_avx2(const std::uint32_t in[8], std::uint32_t out[8], unsigned out_bits);
std::uint32_t filter_testbits_avx2(const std::uint32_t words[8], const std::uint32_t vals[8]);
unsigned leftpack_positions_avx2(std::uint32_t base_pos, std::uint32_t mask8,
                                 std::uint32_t* dst);

// ---- AVX-512 wrappers (W = 16; reads 32 bytes at p) ----------------------
bool avx512_available();
void windows2_avx512(const std::uint8_t* p, std::uint32_t out[16]);
void windows4_avx512(const std::uint8_t* p, std::uint32_t out[16]);
void gather_u32_avx512(const std::uint8_t* base, const std::uint32_t idx[16],
                       std::uint32_t out[16]);
void hash_mul_avx512(const std::uint32_t in[16], std::uint32_t out[16], unsigned out_bits);
std::uint32_t filter_testbits_avx512(const std::uint32_t words[16],
                                     const std::uint32_t vals[16]);
unsigned leftpack_positions_avx512(std::uint32_t base_pos, std::uint32_t mask16,
                                   std::uint32_t* dst);

}  // namespace vpm::simd
