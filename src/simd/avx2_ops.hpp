// AVX2 (W = 8) intrinsic sequences for the V-PATCH filtering kernel.
//
// Include only from translation units compiled with -mavx2 (guarded below).
// Both the exported test wrappers (backend_avx2.cpp) and the hot kernel
// (core/vpatch_avx2.cpp) inline these, so correctness is established once by
// the unit tests and shared by the engine.
#pragma once

#if !defined(__AVX2__)
#error "avx2_ops.hpp must be compiled with -mavx2"
#endif

#include <immintrin.h>

#include <array>
#include <bit>
#include <cstdint>

#include "util/hash.hpp"

namespace vpm::simd::avx2 {

// Shuffle control producing, per 128-bit lane, four dwords of `bytes`-byte
// sliding windows (remaining dword bytes zeroed).  The raw input register
// holds the same 16 source bytes in both lanes (vbroadcasti128), so the low
// lane emits windows 0..3 and the high lane windows 4..7 — the transformation
// of the paper's Fig. 2 in a single vpshufb.
inline __m256i window_shuffle_mask(int bytes) {
  alignas(32) std::int8_t m[32];
  for (int lane = 0; lane < 2; ++lane) {
    for (int j = 0; j < 4; ++j) {
      const int start = lane * 4 + j;  // window start within the 16 raw bytes
      for (int b = 0; b < 4; ++b) {
        m[lane * 16 + j * 4 + b] =
            (b < bytes) ? static_cast<std::int8_t>(start + b) : static_cast<std::int8_t>(-1);
      }
    }
  }
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(m));
}

// W=8 sliding 2-byte windows from the 16 raw bytes at p (reads p[0..15],
// uses p[0..8]).
inline __m256i windows2(const std::uint8_t* p, __m256i shuffle2) {
  const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m256i both = _mm256_broadcastsi128_si256(raw);
  return _mm256_shuffle_epi8(both, shuffle2);
}

// W=8 sliding 4-byte windows from the 16 raw bytes at p (uses p[0..10]).
inline __m256i windows4(const std::uint8_t* p, __m256i shuffle4) {
  const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  const __m256i both = _mm256_broadcastsi128_si256(raw);
  return _mm256_shuffle_epi8(both, shuffle4);
}

// Hardware gather of 8 dwords at byte offsets idx[j] from base.
inline __m256i gather_u32(const std::uint8_t* base, __m256i idx) {
  return _mm256_i32gather_epi32(reinterpret_cast<const int*>(base), idx, 1);
}

// Lane-wise multiplicative hash into [0, 2^out_bits).
inline __m256i hash_mul(__m256i v, unsigned out_bits) {
  const __m256i prod = _mm256_mullo_epi32(v, _mm256_set1_epi32(static_cast<int>(util::kGoldenGamma)));
  return _mm256_srli_epi32(prod, static_cast<int>(32u - out_bits));
}

// Filter membership after a gather at byte offset (vals >> 3): test bit
// (vals & 7) of each gathered word; returns an 8-bit lane mask.
inline std::uint32_t filter_testbits(__m256i words, __m256i vals) {
  const __m256i amount = _mm256_and_si256(vals, _mm256_set1_epi32(7));
  const __m256i shifted = _mm256_srlv_epi32(words, amount);
  const __m256i bit = _mm256_and_si256(shifted, _mm256_set1_epi32(1));
  const __m256i nz = _mm256_cmpgt_epi32(bit, _mm256_setzero_si256());
  return static_cast<std::uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(nz)));
}

// Per-lane popcount of the 8 dword lanes (AVX2 has no vpopcntd): nibble-LUT
// byte counts, then a 0x01010101 multiply folds the four byte counts into
// the top byte of each dword (counts <= 8 per byte, so no carry).
inline __m256i popcount_u32(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_nib = _mm256_set1_epi8(0x0F);
  const __m256i lo = _mm256_and_si256(v, low_nib);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_nib);
  const __m256i cnt8 =
      _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
  return _mm256_srli_epi32(_mm256_mullo_epi32(cnt8, _mm256_set1_epi32(0x01010101)), 24);
}

// vpermd control table: row m lists the set-bit positions of mask m in order.
// Used to left-pack matching lane positions before the store into the
// candidate arrays (Polychroniou-style compaction; AVX2 has no vpcompressd).
struct LeftpackTable {
  alignas(32) std::uint32_t rows[256][8];
};

inline const LeftpackTable& leftpack_table() {
  static const LeftpackTable table = [] {
    LeftpackTable t{};
    for (unsigned m = 0; m < 256; ++m) {
      unsigned n = 0;
      for (unsigned j = 0; j < 8; ++j)
        if (m & (1u << j)) t.rows[m][n++] = j;
      for (; n < 8; ++n) t.rows[m][n] = 0;
    }
    return t;
  }();
  return table;
}

// Appends base_pos+j for every set bit j of mask8 to dst and returns the
// count.  Always stores 8 dwords — the destination must have >= 8 dwords of
// slack beyond the logical end (the candidate arrays reserve this).
inline unsigned leftpack_positions(std::uint32_t base_pos, std::uint32_t mask8,
                                   std::uint32_t* dst) {
  const __m256i perm = _mm256_load_si256(
      reinterpret_cast<const __m256i*>(leftpack_table().rows[mask8]));
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i pos = _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(base_pos)), iota);
  const __m256i packed = _mm256_permutevar8x32_epi32(pos, perm);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), packed);
  return static_cast<unsigned>(std::popcount(mask8));
}

}  // namespace vpm::simd::avx2
