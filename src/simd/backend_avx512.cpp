// Exported AVX-512 wrappers over the inline sequences in avx512_ops.hpp.
#include "simd/ops.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__)
#include "simd/avx512_ops.hpp"
#include "simd/cpu_features.hpp"

namespace vpm::simd {

bool avx512_available() { return cpu().has_avx512_kernel(); }

void windows2_avx512(const std::uint8_t* p, std::uint32_t out[16]) {
  const __m512i w = avx512::windows2(p, avx2::window_shuffle_mask(2));
  _mm512_storeu_si512(out, w);
}

void windows4_avx512(const std::uint8_t* p, std::uint32_t out[16]) {
  const __m512i w = avx512::windows4(p, avx2::window_shuffle_mask(4));
  _mm512_storeu_si512(out, w);
}

void gather_u32_avx512(const std::uint8_t* base, const std::uint32_t idx[16],
                       std::uint32_t out[16]) {
  const __m512i vidx = _mm512_loadu_si512(idx);
  const __m512i got = avx512::gather_u32(base, vidx);
  _mm512_storeu_si512(out, got);
}

void hash_mul_avx512(const std::uint32_t in[16], std::uint32_t out[16], unsigned out_bits) {
  const __m512i v = _mm512_loadu_si512(in);
  const __m512i h = avx512::hash_mul(v, out_bits);
  _mm512_storeu_si512(out, h);
}

std::uint32_t filter_testbits_avx512(const std::uint32_t words[16],
                                     const std::uint32_t vals[16]) {
  const __m512i w = _mm512_loadu_si512(words);
  const __m512i v = _mm512_loadu_si512(vals);
  return avx512::filter_testbits(w, v);
}

unsigned leftpack_positions_avx512(std::uint32_t base_pos, std::uint32_t mask16,
                                   std::uint32_t* dst) {
  return avx512::leftpack_positions(base_pos, mask16, dst);
}

}  // namespace vpm::simd

#else  // compiler cannot target AVX-512: conservative stubs

#include <cstdlib>

namespace vpm::simd {
bool avx512_available() { return false; }
void windows2_avx512(const std::uint8_t*, std::uint32_t*) { std::abort(); }
void windows4_avx512(const std::uint8_t*, std::uint32_t*) { std::abort(); }
void gather_u32_avx512(const std::uint8_t*, const std::uint32_t*, std::uint32_t*) { std::abort(); }
void hash_mul_avx512(const std::uint32_t*, std::uint32_t*, unsigned) { std::abort(); }
std::uint32_t filter_testbits_avx512(const std::uint32_t*, const std::uint32_t*) { std::abort(); }
unsigned leftpack_positions_avx512(std::uint32_t, std::uint32_t, std::uint32_t*) { std::abort(); }
}  // namespace vpm::simd

#endif
