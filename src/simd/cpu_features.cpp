#include "simd/cpu_features.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vpm::simd {

namespace {

// VPM_FORCE_ISA caps the features dispatch may use, so the vector fallback
// paths are testable on wide hosts:
//   scalar — no vector kernels at all
//   avx2   — mask AVX-512, keep AVX2
//   avx512 / best / unset — no cap
void apply_force_isa(CpuFeatures& f) {
  const char* force = std::getenv("VPM_FORCE_ISA");
  if (force == nullptr || *force == '\0') return;
  if (std::strcmp(force, "scalar") == 0) {
    f = CpuFeatures{};
  } else if (std::strcmp(force, "avx2") == 0) {
    f.avx512f = f.avx512bw = f.avx512vl = f.avx512dq = false;
  } else if (std::strcmp(force, "avx512") != 0 && std::strcmp(force, "best") != 0) {
    // A typo must not silently yield full vector dispatch: anyone setting
    // this variable believes a cap is active (the scalar-forced CI run
    // would otherwise pass vacuously).
    std::fprintf(stderr,
                 "vpm: ignoring unrecognized VPM_FORCE_ISA=\"%s\" "
                 "(expected scalar, avx2, avx512, or best)\n",
                 force);
  }
}

CpuFeatures detect() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2");
  f.bmi2 = __builtin_cpu_supports("bmi2");
  f.avx512f = __builtin_cpu_supports("avx512f");
  f.avx512bw = __builtin_cpu_supports("avx512bw");
  f.avx512vl = __builtin_cpu_supports("avx512vl");
  f.avx512dq = __builtin_cpu_supports("avx512dq");
#endif
#if !defined(VPM_HAVE_AVX2_BUILD)
  f.avx2 = false;  // compiler could not build the AVX2 TUs
#endif
#if !defined(VPM_HAVE_AVX512_BUILD)
  f.avx512f = f.avx512bw = f.avx512vl = f.avx512dq = false;
#endif
  apply_force_isa(f);
  return f;
}

}  // namespace

const CpuFeatures& cpu() {
  static const CpuFeatures f = detect();
  return f;
}

}  // namespace vpm::simd
