#include "simd/cpu_features.hpp"

namespace vpm::simd {

namespace {

CpuFeatures detect() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2");
  f.bmi2 = __builtin_cpu_supports("bmi2");
  f.avx512f = __builtin_cpu_supports("avx512f");
  f.avx512bw = __builtin_cpu_supports("avx512bw");
  f.avx512vl = __builtin_cpu_supports("avx512vl");
  f.avx512dq = __builtin_cpu_supports("avx512dq");
#endif
#if !defined(VPM_HAVE_AVX2_BUILD)
  f.avx2 = false;  // compiler could not build the AVX2 TUs
#endif
#if !defined(VPM_HAVE_AVX512_BUILD)
  f.avx512f = f.avx512bw = f.avx512vl = f.avx512dq = false;
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu() {
  static const CpuFeatures f = detect();
  return f;
}

}  // namespace vpm::simd
