#include "simd/ops.hpp"
#include "util/hash.hpp"

namespace vpm::simd {

void windows2_scalar(const std::uint8_t* p, std::uint32_t* out, unsigned w) {
  for (unsigned j = 0; j < w; ++j) {
    out[j] = static_cast<std::uint32_t>(p[j]) |
             (static_cast<std::uint32_t>(p[j + 1]) << 8);
  }
}

void windows4_scalar(const std::uint8_t* p, std::uint32_t* out, unsigned w) {
  for (unsigned j = 0; j < w; ++j) out[j] = util::load_u32(p + j);
}

void gather_u32_scalar(const std::uint8_t* base, const std::uint32_t* idx,
                       std::uint32_t* out, unsigned w) {
  for (unsigned j = 0; j < w; ++j) out[j] = util::load_u32(base + idx[j]);
}

void hash_mul_scalar(const std::uint32_t* in, std::uint32_t* out, unsigned w,
                     unsigned out_bits) {
  for (unsigned j = 0; j < w; ++j) out[j] = util::multiplicative_hash(in[j], out_bits);
}

std::uint32_t filter_testbits_scalar(const std::uint32_t* words, const std::uint32_t* vals,
                                     unsigned w) {
  std::uint32_t mask = 0;
  for (unsigned j = 0; j < w; ++j) {
    const std::uint32_t bit = (words[j] >> (vals[j] & 7u)) & 1u;
    mask |= bit << j;
  }
  return mask;
}

unsigned leftpack_positions_scalar(std::uint32_t base_pos, std::uint32_t mask, unsigned w,
                                   std::uint32_t* dst) {
  unsigned n = 0;
  for (unsigned j = 0; j < w; ++j) {
    if (mask & (1u << j)) dst[n++] = base_pos + j;
  }
  return n;
}

}  // namespace vpm::simd
