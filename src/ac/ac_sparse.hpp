// Sparse (failure-link) Aho-Corasick.
//
// Keeps the trie's sorted per-node transition lists and walks fail links at
// scan time — the memory-frugal variant (Snort's sparse/bnfa family).  Used
// as a second reference implementation in the differential tests and as the
// fallback when a full matrix would be oversized.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ac/trie.hpp"
#include "match/matcher.hpp"
#include "pattern/pattern_set.hpp"

namespace vpm::ac {

class AcSparseMatcher final : public Matcher {
 public:
  explicit AcSparseMatcher(const pattern::PatternSet& set);

  void scan(util::ByteView data, MatchSink& sink) const override;
  std::string_view name() const override { return "Aho-Corasick-sparse"; }
  std::size_t memory_bytes() const override;

  std::size_t state_count() const { return trie_->state_count(); }

 private:
  std::unique_ptr<Trie> trie_;
  struct Meta {
    std::uint32_t length = 0;
    bool nocase = false;
  };
  std::vector<Meta> meta_;
  const pattern::PatternSet* set_ = nullptr;
};

}  // namespace vpm::ac
