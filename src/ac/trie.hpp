// Aho-Corasick goto/fail trie construction.
//
// Shared by both automaton variants (full-matrix and sparse).  Built over
// case-folded bytes, as Snort's acsm does: the automaton alphabet is
// lowercased, nocase patterns match directly on an automaton hit, and
// case-sensitive patterns are verified against the original input bytes at
// the hit position.  This gives every engine in the library identical match
// semantics for mixed-case pattern sets.
#pragma once

#include <cstdint>
#include <vector>

#include "pattern/pattern_set.hpp"

namespace vpm::ac {

inline constexpr std::uint32_t kNoState = 0xFFFFFFFFu;

struct TrieNode {
  // Child per folded byte value; kNoState when absent. Kept sparse as a
  // sorted (byte, state) list to bound construction memory.
  std::vector<std::pair<std::uint8_t, std::uint32_t>> children;
  std::uint32_t fail = 0;
  // Pattern ids whose folded form ends exactly at this node.
  std::vector<std::uint32_t> outputs;
  // Nearest state reachable via fail links that has outputs (kNoState when
  // none) — the classic output-link chain for sparse scanning.
  std::uint32_t report_link = kNoState;
  std::uint8_t depth_byte = 0;  // folded byte on the edge from the parent
};

class Trie {
 public:
  // Builds goto/fail/report links for all patterns in the set.
  explicit Trie(const pattern::PatternSet& set);

  const std::vector<TrieNode>& nodes() const { return nodes_; }
  std::size_t state_count() const { return nodes_.size(); }

  std::uint32_t child(std::uint32_t state, std::uint8_t folded) const;

  // goto with fail fallback resolved (the DFA transition).
  std::uint32_t next_state(std::uint32_t state, std::uint8_t folded) const;

 private:
  std::vector<TrieNode> nodes_;
};

}  // namespace vpm::ac
