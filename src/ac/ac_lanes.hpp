// Lane-parallel Aho-Corasick traversal kernels over the compact interleaved
// layout (ac_compact.hpp), linked from translation units compiled with the
// matching -m flags (ISA-split like core/vpatch_kernels.hpp).
//
// Model: one BATCH PAYLOAD PER VECTOR LANE.  8 (AVX2) or 16 (AVX-512)
// independent automaton walks advance in lockstep; per input byte each lane
// issues one vpgatherdd word fetch (dense row entry, or sparse chunk word)
// plus one masked gather for sparse lanes (diff target, or root-row
// fallback).  The eight/sixteen dependent load chains of the scalar walk
// overlap, which is where the speedup comes from: scalar AC is bound by the
// latency of one state load per byte, the lane kernel by gather THROUGHPUT.
// When a lane's payload ends, it refills with the next staged payload
// (dynamic refill — ragged payload lengths never strand a lane); payload
// tail bytes shorter than one 4-byte fetch are handled by per-byte masking,
// not scalar drains, so lanes stay in the vector loop to the last byte.
//
// Read contract: the kernels read ONLY from `StagedBatch::folded` (the
// caller's staged, case-folded copy) and the automaton arena — NEVER from
// the original payload buffers.  Input bytes are fetched 4 at a time
// (gather of a u32 at folded + offset + pos, pos <= len - 1), so the staged
// buffer must stay addressable for kStagePad bytes past the last payload
// byte; AcCompactMatcher::scan_batch allocates that slack and zeroes it.
// Hits may be produced at most one per staged payload byte: the caller
// provides `hits` with capacity >= sum of staged lens.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vpm::ac {

// Pad bytes required past the last staged payload byte (a 4-byte input
// fetch at the final position reads 3 bytes of slack).
inline constexpr std::size_t kStagePad = 3;

// POD view of the compact automaton (arena described in ac_compact.hpp).
struct AcCompactView {
  const std::uint32_t* arena = nullptr;
};

// One automaton hit: a lane entered an output state.
struct AcLaneHit {
  std::uint32_t packet = 0;  // payload index within the batch
  std::uint32_t pos = 0;     // END position of the hit within that payload
  std::uint32_t ref = 0;     // the output state's StateRef (kAcOutputFlag set)
};

// Staged batch input: case-folded payload bytes, contiguous, with kStagePad
// addressable slack bytes after the end; per-payload start offsets, lengths
// (all > 0 — empties are skipped at staging), and original batch indices.
struct AcStagedBatch {
  const std::uint8_t* folded = nullptr;
  const std::uint32_t* offsets = nullptr;
  const std::uint32_t* lens = nullptr;
  const std::uint32_t* packets = nullptr;
  std::size_t count = 0;
};

// AVX2, 8 payload lanes. Requires simd::cpu().has_avx2_kernel().
// Returns the number of hits appended to `hits`.
std::size_t ac_lanes_scan_avx2(const AcCompactView& view, const AcStagedBatch& in,
                               AcLaneHit* hits);

// AVX-512, 16 payload lanes. Requires simd::cpu().has_avx512_kernel().
std::size_t ac_lanes_scan_avx512(const AcCompactView& view, const AcStagedBatch& in,
                                 AcLaneHit* hits);

}  // namespace vpm::ac
