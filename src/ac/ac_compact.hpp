// Compressed interleaved Aho-Corasick: one flat arena of 32-bit words
// replacing the full-matrix automaton's state x 256 transition table.
//
// Motivation (paper §II): the full DFA "does not fit in the cache" — for the
// 20 K-pattern sets the matrix is tens of MB and every input byte is a
// dependent, likely-missing load.  Two observations shrink it by >90%:
//
//   1. For every state s != root, the fail-resolved DFA row of s is the ROOT
//      row except at a handful of bytes (s's own goto children plus the few
//      bytes its fail chain overrides).  Storing only that per-state DIFF
//      keeps the O(1)-per-byte DFA property: a missing byte falls back to
//      the always-cache-hot root row — exactly, not approximately.
//   2. Folding the "this state reports matches" flag into the high bit of
//      the state reference makes the common no-match scan loop branch on a
//      register test instead of a second indexed load.
//
// Arena encoding (StateRef = std::uint32_t):
//   bit 31  kOutputFlag — the state has a non-empty merged output list
//   bit 30  kDenseFlag  — the record is a dense 256-entry row
//   bits 0..29          — word offset of the record in the arena
//
// Records (at word offset `off`; the root row is dense at offset 0):
//   output states  arena[off - 1] = index into the CSR output spans
//   dense          arena[off + b] = StateRef of next state for folded byte b
//   sparse         arena[off + c], c in [0, 11): chunk word for folded bytes
//                  [24c, 24c + 24): low 24 bits = presence bitmap (bit r set
//                  iff byte 24c + r differs from the root row), high 8 bits
//                  = rank base (count of present bits in chunks < c);
//                  arena[off + 11 + i] = StateRef of the i-th present byte.
//
//   lookup(off, b): c = b / 24, r = b % 24, w = arena[off + c];
//     present  -> arena[off + 11 + (w >> 24) + popcount(low bits of w < r)]
//     absent   -> arena[b]                     (the root row, offset 0)
//
// A state is laid out dense when it diffs from the root row on more than
// half the folded alphabet (>= 128 bytes) — the per-state threshold chosen
// at build time: such states are rare, so the memory cost is negligible,
// and the dense lookup needs one gather instead of two.  The root is always
// dense.  The arena is one contiguous, offset-addressed,
// trivially serializable blob: no per-node heap allocations, and state
// references gather directly (the SIMD lane kernel in ac_lanes.hpp walks 8
// or 16 payloads at once over this exact layout).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "match/matcher.hpp"
#include "pattern/pattern_set.hpp"

namespace vpm::ac {

inline constexpr std::uint32_t kAcOutputFlag = 0x80000000u;
inline constexpr std::uint32_t kAcDenseFlag = 0x40000000u;
inline constexpr std::uint32_t kAcOffsetMask = 0x3FFFFFFFu;
inline constexpr std::uint32_t kAcSparseChunks = 11;   // ceil(256 / 24)
inline constexpr std::uint32_t kAcRootRef = kAcDenseFlag;  // dense, offset 0

// chunk index b / 24 without a division (exact for b in [0, 255]).
constexpr std::uint32_t ac_chunk_of(std::uint32_t b) { return (b * 171u) >> 12; }

class AcCompactMatcher final : public Matcher {
 public:
  explicit AcCompactMatcher(const pattern::PatternSet& set);

  void scan(util::ByteView data, MatchSink& sink) const override;

  // Lane-parallel batch fast path: payloads are staged (copied + case-folded
  // + 3 zero pad bytes) into caller-owned scratch, then 8 (AVX2) or 16
  // (AVX-512) payload lanes traverse the arena simultaneously via vpgatherdd
  // with dynamic lane refill; automaton hits are buffered and resolved in
  // one deferred verification round.  Zero steady-state heap allocations;
  // falls back to per-payload scan() when no vector kernel is available.
  // The kernels read ONLY the staged copy — never past the caller's payload
  // buffers (see ac_lanes.hpp for the staging read contract).
  void scan_batch(std::span<const util::ByteView> payloads, BatchSink& sink,
                  ScanScratch& scratch) const override;

  std::string_view name() const override { return "Aho-Corasick-compact"; }
  std::size_t memory_bytes() const override;

  std::size_t state_count() const { return state_count_; }
  std::size_t dense_states() const { return dense_states_; }
  std::size_t arena_words() const { return arena_.size(); }
  const std::uint32_t* arena() const { return arena_.data(); }

 private:
  struct OutputSpan {
    std::uint32_t begin = 0;
    std::uint32_t count = 0;
  };
  struct Meta {
    std::uint32_t length = 0;
    bool nocase = false;
  };

  // Resolves the CSR output list of an output state and reports every
  // pattern verified at end position `end_pos` of `data`.
  void emit(std::uint32_t ref, std::uint64_t end_pos, util::ByteView data,
            MatchSink& sink) const;

  std::vector<std::uint32_t> arena_;
  std::vector<OutputSpan> output_spans_;
  std::vector<std::uint32_t> output_ids_;
  std::vector<Meta> meta_;
  const pattern::PatternSet* set_ = nullptr;
  std::size_t state_count_ = 0;
  std::size_t dense_states_ = 0;
};

}  // namespace vpm::ac
