// Lane-parallel Aho-Corasick batch kernel, AVX-512 (16 payload lanes).
//
// Same traversal as ac_lanes_avx2.cpp with native kmask predication: lane
// liveness, the dense/sparse layout split, and the presence test are all
// __mmask16 operations, and masked gathers/blends replace the AVX2
// blendv/movemask sequences.  See ac_lanes.hpp for the contracts.
#include "ac/ac_lanes.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__)

#include <bit>

#include "ac/ac_compact.hpp"
#include "simd/avx512_ops.hpp"

namespace vpm::ac {

namespace {

constexpr int kW = 16;

struct LaneArrays {
  alignas(64) std::uint32_t ref[kW];
  alignas(64) std::uint32_t pos[kW];
  alignas(64) std::uint32_t len[kW];
  alignas(64) std::uint32_t base[kW];
  std::uint32_t pkt[kW];
};

inline __m512i load16(const std::uint32_t* p) {
  return _mm512_load_si512(reinterpret_cast<const void*>(p));
}
inline void store16(std::uint32_t* p, __m512i v) {
  _mm512_store_si512(reinterpret_cast<void*>(p), v);
}

}  // namespace

std::size_t ac_lanes_scan_avx512(const AcCompactView& view, const AcStagedBatch& in,
                                 AcLaneHit* hits) {
  const void* arena = reinterpret_cast<const void*>(view.arena);
  const void* folded = reinterpret_cast<const void*>(in.folded);

  LaneArrays lanes;
  __mmask16 active = 0;
  std::size_t next = 0;
  for (int l = 0; l < kW; ++l) {
    lanes.ref[l] = kAcRootRef;
    lanes.pos[l] = lanes.len[l] = lanes.base[l] = lanes.pkt[l] = 0;
    if (next < in.count) {
      lanes.base[l] = in.offsets[next];
      lanes.len[l] = in.lens[next];
      lanes.pkt[l] = in.packets[next];
      active |= static_cast<__mmask16>(1u << l);
      ++next;
    }
  }

  const __m512i zero = _mm512_setzero_si512();
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i three = _mm512_set1_epi32(3);
  const __m512i byte_mask = _mm512_set1_epi32(0xFF);
  const __m512i low24 = _mm512_set1_epi32(0x00FFFFFF);
  const __m512i off_mask = _mm512_set1_epi32(static_cast<int>(kAcOffsetMask));
  const __m512i dense_bit = _mm512_set1_epi32(static_cast<int>(kAcDenseFlag));
  const __m512i chunk_mul = _mm512_set1_epi32(171);
  const __m512i chunk_width = _mm512_set1_epi32(24);
  const __m512i chunk_count = _mm512_set1_epi32(static_cast<int>(kAcSparseChunks));

  __m512i vref = load16(lanes.ref);
  __m512i vpos = load16(lanes.pos);
  __m512i vlen = load16(lanes.len);
  __m512i vbase = load16(lanes.base);

  std::size_t n_hits = 0;
  alignas(64) std::uint32_t tmp_ref[kW];
  alignas(64) std::uint32_t tmp_pos[kW];

  while (active != 0) {
    const __mmask16 live_now = _mm512_cmpgt_epi32_mask(vlen, vpos);
    std::uint32_t done = active & static_cast<std::uint32_t>(~live_now);
    if (done != 0) {
      store16(lanes.ref, vref);
      store16(lanes.pos, vpos);
      while (done != 0) {
        const int l = std::countr_zero(done);
        done &= done - 1;
        lanes.ref[l] = kAcRootRef;
        lanes.pos[l] = 0;
        if (next < in.count) {
          lanes.base[l] = in.offsets[next];
          lanes.len[l] = in.lens[next];
          lanes.pkt[l] = in.packets[next];
          ++next;
        } else {
          active = static_cast<__mmask16>(active & ~(1u << l));
          lanes.base[l] = lanes.len[l] = 0;
        }
      }
      if (active == 0) break;
      vref = load16(lanes.ref);
      vpos = load16(lanes.pos);
      vlen = load16(lanes.len);
      vbase = load16(lanes.base);
    }

    const __m512i word = _mm512_mask_i32gather_epi32(
        zero, active, _mm512_add_epi32(vbase, vpos), folded, 1);

    // Fast path: every lane (so, every lane active) has >= 4 bytes left —
    // no per-byte liveness masks, unmasked gathers, no blend into vref.
    const __mmask16 full =
        _mm512_cmpgt_epi32_mask(vlen, _mm512_add_epi32(vpos, three));
    if (full == 0xFFFFu) {
      for (int j = 0; j < 4; ++j) {
        const __m512i b = _mm512_and_si512(_mm512_srli_epi32(word, 8 * j), byte_mask);
        const __m512i voff = _mm512_and_si512(vref, off_mask);
        const __mmask16 dense = _mm512_test_epi32_mask(vref, dense_bit);
        const __m512i c = _mm512_srli_epi32(_mm512_mullo_epi32(b, chunk_mul), 12);
        const __m512i addr1 =
            _mm512_add_epi32(voff, _mm512_mask_blend_epi32(dense, c, b));
        const __m512i g1 = _mm512_i32gather_epi32(addr1, arena, 4);

        __m512i vnext = g1;
        const auto sparse = static_cast<__mmask16>(~dense);
        if (sparse != 0) {
          const __m512i r = _mm512_sub_epi32(b, _mm512_mullo_epi32(c, chunk_width));
          const __m512i bits = _mm512_and_si512(g1, low24);
          const __mmask16 present =
              _mm512_test_epi32_mask(_mm512_srlv_epi32(bits, r), one);
          const __m512i prefix =
              _mm512_and_si512(bits, _mm512_sub_epi32(_mm512_sllv_epi32(one, r), one));
          const __m512i rank = _mm512_add_epi32(_mm512_srli_epi32(g1, 24),
                                                simd::avx512::popcount_u32(prefix));
          const __m512i sparse_addr =
              _mm512_add_epi32(_mm512_add_epi32(voff, chunk_count), rank);
          const __m512i addr2 = _mm512_mask_blend_epi32(present, b, sparse_addr);
          const __m512i g2 = _mm512_mask_i32gather_epi32(zero, sparse, addr2, arena, 4);
          vnext = _mm512_mask_blend_epi32(dense, g2, g1);
        }
        vref = vnext;

        const std::uint32_t hit_mask = _mm512_cmplt_epi32_mask(vref, zero);
        if (hit_mask != 0) {
          store16(tmp_ref, vref);
          store16(tmp_pos, _mm512_add_epi32(vpos, _mm512_set1_epi32(j)));
          std::uint32_t m = hit_mask;
          while (m != 0) {
            const int l = std::countr_zero(m);
            m &= m - 1;
            hits[n_hits++] = {lanes.pkt[l], tmp_pos[l], tmp_ref[l]};
          }
        }
      }
      vpos = _mm512_add_epi32(vpos, _mm512_set1_epi32(4));
      continue;
    }

    for (int j = 0; j < 4; ++j) {
      const __m512i posj = _mm512_add_epi32(vpos, _mm512_set1_epi32(j));
      const __mmask16 live = active & _mm512_cmpgt_epi32_mask(vlen, posj);
      if (live == 0) continue;

      const __m512i b = _mm512_and_si512(_mm512_srli_epi32(word, 8 * j), byte_mask);
      const __m512i voff = _mm512_and_si512(vref, off_mask);
      const __mmask16 dense = _mm512_test_epi32_mask(vref, dense_bit);

      const __m512i c = _mm512_srli_epi32(_mm512_mullo_epi32(b, chunk_mul), 12);
      const __m512i addr1 =
          _mm512_add_epi32(voff, _mm512_mask_blend_epi32(dense, c, b));
      const __m512i g1 = _mm512_mask_i32gather_epi32(zero, live, addr1, arena, 4);

      // Sparse resolve, skipped when every live lane sits in a dense state
      // (root-heavy traffic spends most bytes there): g1 already IS the ref.
      __m512i vnext = g1;
      const __mmask16 sparse_live = live & static_cast<__mmask16>(~dense);
      if (sparse_live != 0) {
        const __m512i r = _mm512_sub_epi32(b, _mm512_mullo_epi32(c, chunk_width));
        const __m512i bits = _mm512_and_si512(g1, low24);
        const __mmask16 present =
            _mm512_test_epi32_mask(_mm512_srlv_epi32(bits, r), one);
        const __m512i prefix =
            _mm512_and_si512(bits, _mm512_sub_epi32(_mm512_sllv_epi32(one, r), one));
        const __m512i rank =
            _mm512_add_epi32(_mm512_srli_epi32(g1, 24), simd::avx512::popcount_u32(prefix));
        const __m512i sparse_addr =
            _mm512_add_epi32(_mm512_add_epi32(voff, chunk_count), rank);
        const __m512i addr2 = _mm512_mask_blend_epi32(present, b, sparse_addr);
        const __m512i g2 = _mm512_mask_i32gather_epi32(zero, sparse_live, addr2, arena, 4);
        vnext = _mm512_mask_blend_epi32(dense, g2, g1);
      }
      vref = _mm512_mask_blend_epi32(live, vref, vnext);

      const std::uint32_t hit_mask = live & _mm512_cmplt_epi32_mask(vref, zero);
      if (hit_mask != 0) {
        store16(tmp_ref, vref);
        store16(tmp_pos, posj);
        std::uint32_t m = hit_mask;
        while (m != 0) {
          const int l = std::countr_zero(m);
          m &= m - 1;
          hits[n_hits++] = {lanes.pkt[l], tmp_pos[l], tmp_ref[l]};
        }
      }
    }
    vpos = _mm512_add_epi32(vpos, _mm512_set1_epi32(4));
  }
  return n_hits;
}

}  // namespace vpm::ac

#else  // !AVX-512

#include <cstdlib>

namespace vpm::ac {
std::size_t ac_lanes_scan_avx512(const AcCompactView&, const AcStagedBatch&, AcLaneHit*) {
  std::abort();
}
}  // namespace vpm::ac

#endif
