#include "ac/ac_sparse.hpp"

#include "util/bytes.hpp"

namespace vpm::ac {

AcSparseMatcher::AcSparseMatcher(const pattern::PatternSet& set)
    : trie_(std::make_unique<Trie>(set)), set_(&set) {
  meta_.reserve(set.size());
  for (const pattern::Pattern& p : set) {
    meta_.push_back({static_cast<std::uint32_t>(p.size()), p.nocase});
  }
}

void AcSparseMatcher::scan(util::ByteView data, MatchSink& sink) const {
  const auto& nodes = trie_->nodes();
  std::uint32_t state = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    state = trie_->next_state(state, util::ascii_lower(data[i]));
    // Emit own outputs, then chase the report-link chain.
    for (std::uint32_t n = state; n != kNoState; n = nodes[n].report_link) {
      for (std::uint32_t id : nodes[n].outputs) {
        const Meta m = meta_[id];
        const std::uint64_t start = i + 1 - m.length;
        if (!m.nocase && !(*set_)[id].matches_at(data, start)) continue;
        sink.on_match({id, start});
      }
    }
  }
}

std::size_t AcSparseMatcher::memory_bytes() const {
  std::size_t bytes = 0;
  for (const TrieNode& n : trie_->nodes()) {
    bytes += sizeof(TrieNode) + n.children.capacity() * sizeof(std::pair<std::uint8_t, std::uint32_t>) +
             n.outputs.capacity() * sizeof(std::uint32_t);
  }
  return bytes + meta_.size() * sizeof(Meta);
}

}  // namespace vpm::ac
