#include "ac/trie.hpp"

#include <algorithm>
#include <deque>

#include "util/bytes.hpp"

namespace vpm::ac {

namespace {

std::uint32_t find_child(const TrieNode& node, std::uint8_t b) {
  auto it = std::lower_bound(node.children.begin(), node.children.end(), b,
                             [](const auto& e, std::uint8_t key) { return e.first < key; });
  if (it != node.children.end() && it->first == b) return it->second;
  return kNoState;
}

}  // namespace

Trie::Trie(const pattern::PatternSet& set) {
  nodes_.emplace_back();  // root = state 0

  // Phase 1: goto function (byte-folded trie).
  for (const pattern::Pattern& p : set) {
    std::uint32_t state = 0;
    for (std::uint8_t raw : p.bytes) {
      const std::uint8_t b = util::ascii_lower(raw);
      std::uint32_t next = find_child(nodes_[state], b);
      if (next == kNoState) {
        next = static_cast<std::uint32_t>(nodes_.size());
        auto& children = nodes_[state].children;
        auto it = std::lower_bound(children.begin(), children.end(), b,
                                   [](const auto& e, std::uint8_t key) { return e.first < key; });
        children.insert(it, {b, next});
        nodes_.emplace_back();
        nodes_.back().depth_byte = b;
      }
      state = next;
    }
    nodes_[state].outputs.push_back(p.id);
  }

  // Phase 2: BFS fail links + report links.
  std::deque<std::uint32_t> queue;
  for (const auto& [b, child] : nodes_[0].children) {
    nodes_[child].fail = 0;
    queue.push_back(child);
  }
  while (!queue.empty()) {
    const std::uint32_t state = queue.front();
    queue.pop_front();
    const std::uint32_t fail_of_state = nodes_[state].fail;
    nodes_[state].report_link = nodes_[fail_of_state].outputs.empty()
                                    ? nodes_[fail_of_state].report_link
                                    : fail_of_state;
    for (const auto& [b, child] : nodes_[state].children) {
      // Walk fail chain of the parent to find the longest proper suffix state
      // with a b-transition.
      std::uint32_t f = fail_of_state;
      std::uint32_t target = find_child(nodes_[f], b);
      while (target == kNoState && f != 0) {
        f = nodes_[f].fail;
        target = find_child(nodes_[f], b);
      }
      if (target == kNoState) target = 0;
      nodes_[child].fail = (target == child) ? 0 : target;
      queue.push_back(child);
    }
  }
}

std::uint32_t Trie::child(std::uint32_t state, std::uint8_t folded) const {
  return find_child(nodes_[state], folded);
}

std::uint32_t Trie::next_state(std::uint32_t state, std::uint8_t folded) const {
  for (;;) {
    const std::uint32_t t = find_child(nodes_[state], folded);
    if (t != kNoState) return t;
    if (state == 0) return 0;
    state = nodes_[state].fail;
  }
}

}  // namespace vpm::ac
