// Full-matrix Aho-Corasick (Snort's "ac-full" style).
//
// The fail function is compiled away into a dense state x 256 transition
// matrix: one table lookup per input byte, no fail-chain walking.  This is
// the fastest scalar form and also the memory hog the paper contrasts with
// the filtering approaches ("the size of the state automaton increases
// exponentially and does not fit in the cache").
#pragma once

#include <cstdint>
#include <vector>

#include "match/matcher.hpp"
#include "pattern/pattern_set.hpp"

namespace vpm::ac {

class AcFullMatcher final : public Matcher {
 public:
  explicit AcFullMatcher(const pattern::PatternSet& set);

  void scan(util::ByteView data, MatchSink& sink) const override;
  std::string_view name() const override { return "Aho-Corasick"; }
  std::size_t memory_bytes() const override;

  std::size_t state_count() const { return state_count_; }

 private:
  struct OutputSpan {
    std::uint32_t begin = 0;
    std::uint32_t count = 0;
  };

  // next_[state * 256 + folded_byte] -> state
  std::vector<std::uint32_t> next_;
  // Per-state merged output list (all patterns whose folded form is a suffix
  // of the state string), flattened.
  std::vector<OutputSpan> output_spans_;
  std::vector<std::uint32_t> output_ids_;

  // Pattern metadata for reporting / case verification.
  struct Meta {
    std::uint32_t length = 0;
    bool nocase = false;
  };
  std::vector<Meta> meta_;
  const pattern::PatternSet* set_ = nullptr;
  std::size_t state_count_ = 0;
};

}  // namespace vpm::ac
