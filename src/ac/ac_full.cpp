#include "ac/ac_full.hpp"

#include <deque>

#include "ac/trie.hpp"
#include "util/bytes.hpp"

namespace vpm::ac {

AcFullMatcher::AcFullMatcher(const pattern::PatternSet& set) : set_(&set) {
  const Trie trie(set);
  const auto& nodes = trie.nodes();
  state_count_ = trie.state_count();

  meta_.reserve(set.size());
  for (const pattern::Pattern& p : set) {
    meta_.push_back({static_cast<std::uint32_t>(p.size()), p.nocase});
  }

  // Dense transition matrix, resolved in BFS order so each state's fail
  // target is already complete when the state is processed.
  next_.assign(state_count_ * 256, 0);
  for (const auto& [b, child] : nodes[0].children) next_[b] = child;
  std::deque<std::uint32_t> queue;
  for (const auto& [b, child] : nodes[0].children) queue.push_back(child);
  while (!queue.empty()) {
    const std::uint32_t s = queue.front();
    queue.pop_front();
    const std::uint32_t f = nodes[s].fail;
    std::uint32_t* row = next_.data() + static_cast<std::size_t>(s) * 256;
    const std::uint32_t* fail_row = next_.data() + static_cast<std::size_t>(f) * 256;
    for (unsigned b = 0; b < 256; ++b) row[b] = fail_row[b];
    for (const auto& [b, child] : nodes[s].children) {
      row[b] = child;
      queue.push_back(child);
    }
  }

  // Merged output lists: the state's own outputs plus every output reachable
  // over the report-link chain (patterns that are proper suffixes).
  output_spans_.resize(state_count_);
  for (std::uint32_t s = 0; s < state_count_; ++s) {
    const auto begin = static_cast<std::uint32_t>(output_ids_.size());
    for (std::uint32_t id : nodes[s].outputs) output_ids_.push_back(id);
    for (std::uint32_t n = nodes[s].report_link; n != kNoState; n = nodes[n].report_link) {
      for (std::uint32_t id : nodes[n].outputs) output_ids_.push_back(id);
    }
    output_spans_[s] = {begin, static_cast<std::uint32_t>(output_ids_.size()) - begin};
  }
}

void AcFullMatcher::scan(util::ByteView data, MatchSink& sink) const {
  const std::uint32_t* next = next_.data();
  std::uint32_t state = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    state = next[static_cast<std::size_t>(state) * 256 + util::ascii_lower(data[i])];
    const OutputSpan span = output_spans_[state];
    if (span.count == 0) continue;
    for (std::uint32_t k = 0; k < span.count; ++k) {
      const std::uint32_t id = output_ids_[span.begin + k];
      const Meta m = meta_[id];
      const std::uint64_t start = i + 1 - m.length;
      if (!m.nocase) {
        // Automaton is case-folded; exact-case patterns verify raw bytes.
        const pattern::Pattern& p = (*set_)[id];
        if (!p.matches_at(data, start)) continue;
      }
      sink.on_match({id, start});
    }
  }
}

std::size_t AcFullMatcher::memory_bytes() const {
  return next_.size() * sizeof(std::uint32_t) + output_ids_.size() * sizeof(std::uint32_t) +
         output_spans_.size() * sizeof(OutputSpan) + meta_.size() * sizeof(Meta);
}

}  // namespace vpm::ac
