#include "ac/ac_compact.hpp"

#include <array>
#include <bit>
#include <deque>
#include <stdexcept>

#include "ac/ac_lanes.hpp"
#include "ac/trie.hpp"
#include "core/candidates.hpp"
#include "simd/cpu_features.hpp"
#include "util/bytes.hpp"

namespace vpm::ac {

namespace {

constexpr std::uint32_t kNoSpan = 0xFFFFFFFFu;
// Per-state layout threshold, evaluated at build time.  The automaton is
// case-folded, so at most 230 row entries can ever differ from the root row
// (the folded alphabet); a strict size break-even (245) would therefore
// never pick dense.  Instead, states diffing on more than half the folded
// alphabet take the dense row: the memory cost is small and bounded (such
// states are rare and shallow-hot), and a dense lookup saves the sparse
// path's second gather.  Must stay <= 255 so rank bases fit 8 bits.
constexpr std::size_t kDenseThreshold = 128;
// Staged offsets/positions are 32-bit; a single payload must leave room for
// the offset arithmetic (anything bigger takes the per-payload scan path).
constexpr std::size_t kMaxLanePayload = std::size_t{1} << 30;

// Reusable staging + hit-pool scratch for the lane-parallel batch path,
// installed into the caller-owned ScanScratch (zero steady-state allocs).
struct AcBatchState final : ScanScratch::State {
  core::UninitArray<std::uint8_t> folded;
  core::UninitArray<std::uint32_t> offsets;
  core::UninitArray<std::uint32_t> lens;
  core::UninitArray<std::uint32_t> packets;
  core::UninitArray<AcLaneHit> hits;
};

}  // namespace

AcCompactMatcher::AcCompactMatcher(const pattern::PatternSet& set) : set_(&set) {
  const Trie trie(set);
  const auto& nodes = trie.nodes();
  const std::size_t n = trie.state_count();
  state_count_ = n;

  meta_.reserve(set.size());
  for (const pattern::Pattern& p : set) {
    meta_.push_back({static_cast<std::uint32_t>(p.size()), p.nocase});
  }

  // BFS order: every state's fail target precedes it, so a state's resolved
  // row can be reconstructed from its fail state's already-computed diff.
  std::vector<std::uint32_t> order;
  order.reserve(n);
  {
    std::deque<std::uint32_t> queue;
    for (const auto& [b, child] : nodes[0].children) queue.push_back(child);
    while (!queue.empty()) {
      const std::uint32_t s = queue.front();
      queue.pop_front();
      order.push_back(s);
      for (const auto& [b, child] : nodes[s].children) queue.push_back(child);
    }
  }

  // Merged output lists (own outputs + report-link chain) in CSR form; only
  // output states get a span (and an out-word slot in the arena).
  std::vector<std::uint32_t> span_of(n, kNoSpan);
  for (std::uint32_t s = 0; s < n; ++s) {
    const auto begin = static_cast<std::uint32_t>(output_ids_.size());
    for (std::uint32_t id : nodes[s].outputs) output_ids_.push_back(id);
    for (std::uint32_t t = nodes[s].report_link; t != kNoState; t = nodes[t].report_link) {
      for (std::uint32_t id : nodes[t].outputs) output_ids_.push_back(id);
    }
    const auto count = static_cast<std::uint32_t>(output_ids_.size()) - begin;
    if (count != 0) {
      span_of[s] = static_cast<std::uint32_t>(output_spans_.size());
      output_spans_.push_back({begin, count});
    }
  }

  // The root's resolved row, and every other state's diff against it.  The
  // resolved row of s is fail(s)'s resolved row overlaid with s's own goto
  // children; fail(s)'s row is root_row overlaid with diffs[fail(s)], which
  // BFS order guarantees is already computed.  No full matrix is ever
  // materialized — peak build memory is the final arena plus one row.
  std::array<std::uint32_t, 256> root_row{};
  for (const auto& [b, child] : nodes[0].children) root_row[b] = child;

  std::vector<std::vector<std::pair<std::uint8_t, std::uint32_t>>> diffs(n);
  std::array<std::uint32_t, 256> row{};
  for (const std::uint32_t s : order) {
    row = root_row;
    for (const auto& [b, t] : diffs[nodes[s].fail]) row[b] = t;
    for (const auto& [b, child] : nodes[s].children) row[b] = child;
    auto& d = diffs[s];
    for (unsigned b = 0; b < 256; ++b) {
      if (row[b] != root_row[b]) d.emplace_back(static_cast<std::uint8_t>(b), row[b]);
    }
  }

  // Offset assignment (root dense at 0; out-word precedes output records).
  std::vector<std::uint64_t> offset(n, 0);
  std::vector<bool> dense(n, false);
  dense[0] = true;
  dense_states_ = 1;
  std::uint64_t cursor = 256;
  for (const std::uint32_t s : order) {
    const bool is_dense = diffs[s].size() >= kDenseThreshold;
    dense[s] = is_dense;
    if (is_dense) ++dense_states_;
    if (span_of[s] != kNoSpan) ++cursor;
    offset[s] = cursor;
    cursor += is_dense ? 256 : (kAcSparseChunks + diffs[s].size());
  }
  if (cursor > kAcOffsetMask) {
    throw std::runtime_error("aho-corasick-compact: automaton exceeds 2^30 arena words");
  }

  const auto ref_of = [&](std::uint32_t s) {
    std::uint32_t r = static_cast<std::uint32_t>(offset[s]);
    if (dense[s]) r |= kAcDenseFlag;
    if (span_of[s] != kNoSpan) r |= kAcOutputFlag;
    return r;
  };

  arena_.assign(cursor, 0);
  for (unsigned b = 0; b < 256; ++b) arena_[b] = ref_of(root_row[b]);
  for (const std::uint32_t s : order) {
    const std::uint64_t off = offset[s];
    if (span_of[s] != kNoSpan) arena_[off - 1] = span_of[s];
    if (dense[s]) {
      row = root_row;
      for (const auto& [b, t] : diffs[s]) row[b] = t;
      for (unsigned b = 0; b < 256; ++b) arena_[off + b] = ref_of(row[b]);
    } else {
      std::array<std::uint32_t, kAcSparseChunks> chunk{};
      std::uint64_t ti = off + kAcSparseChunks;
      for (const auto& [b, t] : diffs[s]) {  // ascending byte order
        const std::uint32_t c = ac_chunk_of(b);
        chunk[c] |= 1u << (b - c * 24u);
        arena_[ti++] = ref_of(t);
      }
      std::uint32_t rank_base = 0;
      for (std::uint32_t c = 0; c < kAcSparseChunks; ++c) {
        arena_[off + c] = chunk[c] | (rank_base << 24);
        rank_base += static_cast<std::uint32_t>(std::popcount(chunk[c]));
      }
    }
  }
}

void AcCompactMatcher::emit(std::uint32_t ref, std::uint64_t end_pos, util::ByteView data,
                            MatchSink& sink) const {
  const std::uint32_t off = ref & kAcOffsetMask;
  const OutputSpan span = output_spans_[arena_[off - 1]];
  for (std::uint32_t k = 0; k < span.count; ++k) {
    const std::uint32_t id = output_ids_[span.begin + k];
    const Meta m = meta_[id];
    const std::uint64_t start = end_pos + 1 - m.length;
    if (!m.nocase) {
      // Automaton is case-folded; exact-case patterns verify raw bytes.
      if (!(*set_)[id].matches_at(data, start)) continue;
    }
    sink.on_match({id, start});
  }
}

void AcCompactMatcher::scan(util::ByteView data, MatchSink& sink) const {
  const std::uint32_t* arena = arena_.data();
  std::uint32_t ref = kAcRootRef;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::uint32_t b = util::ascii_lower(data[i]);
    const std::uint32_t off = ref & kAcOffsetMask;
    if (ref & kAcDenseFlag) {
      ref = arena[off + b];
    } else {
      const std::uint32_t c = ac_chunk_of(b);
      const std::uint32_t r = b - c * 24u;
      const std::uint32_t w = arena[off + c];
      if ((w >> r) & 1u) {
        const std::uint32_t idx =
            (w >> 24) + static_cast<std::uint32_t>(std::popcount(w & ((1u << r) - 1u)));
        ref = arena[off + kAcSparseChunks + idx];
      } else {
        ref = arena[b];  // diff miss: the root row, always offset 0
      }
    }
    if (ref & kAcOutputFlag) emit(ref, i, data, sink);
  }
}

void AcCompactMatcher::scan_batch(std::span<const util::ByteView> payloads, BatchSink& sink,
                                  ScanScratch& scratch) const {
  std::size_t total = 0;
  std::size_t staged = 0;
  for (const util::ByteView& p : payloads) {
    if (p.empty() || p.size() >= kMaxLanePayload) continue;
    total += p.size();
    ++staged;
  }
  // Width by batch occupancy: 16 lanes only pay off when the batch can keep
  // most of them filled — an 8-payload batch runs ~1.5x faster on the
  // 8-lane AVX2 kernel than half-empty on the 16-lane one.
  const bool has_avx512 = simd::cpu().has_avx512_kernel();
  const bool has_avx2 = simd::cpu().has_avx2_kernel();
  int width = 0;
  if (has_avx512 && (staged >= 12 || !has_avx2)) {
    width = 16;
  } else if (has_avx2) {
    width = 8;
  }
  // A single payload cannot fill lanes, and a >2 GB staging copy would
  // overflow the gather indices (vpgatherdd sign-extends its 32-bit
  // indices, so staged offsets must stay below 2^31): both take the
  // per-payload path.
  if (width == 0 || staged < 2 || total + kStagePad > 0x7FFFFFFFull) {
    Matcher::scan_batch(payloads, sink, scratch);
    return;
  }

  AcBatchState& st = scratch.state_for<AcBatchState>(scratch_owner_id());
  st.folded.ensure(total + kStagePad);
  st.offsets.ensure(staged);
  st.lens.ensure(staged);
  st.packets.ensure(staged);
  // At most one output-state hit per staged byte — content-independent bound.
  st.hits.ensure(total);

  PacketSinkAdapter adapter;
  adapter.out = &sink;

  std::uint32_t off = 0;
  std::size_t idx = 0;
  for (std::size_t p = 0; p < payloads.size(); ++p) {
    const util::ByteView data = payloads[p];
    if (data.empty()) continue;
    if (data.size() >= kMaxLanePayload) {
      adapter.packet = static_cast<std::uint32_t>(p);
      scan(data, adapter);
      continue;
    }
    st.offsets[idx] = off;
    st.lens[idx] = static_cast<std::uint32_t>(data.size());
    st.packets[idx] = static_cast<std::uint32_t>(p);
    std::uint8_t* dst = st.folded.data() + off;
    for (std::size_t i = 0; i < data.size(); ++i) dst[i] = util::ascii_lower(data[i]);
    off += static_cast<std::uint32_t>(data.size());
    ++idx;
  }
  for (std::size_t i = 0; i < kStagePad; ++i) st.folded[off + i] = 0;

  const AcCompactView view{arena_.data()};
  const AcStagedBatch in{st.folded.data(), st.offsets.data(), st.lens.data(),
                         st.packets.data(), staged};
  const std::size_t n_hits = (width == 16) ? ac_lanes_scan_avx512(view, in, st.hits.data())
                                           : ac_lanes_scan_avx2(view, in, st.hits.data());

  // Deferred verification round: resolve CSR output lists and case-verify
  // against the ORIGINAL payload bytes (the staged copy is folded).
  for (std::size_t h = 0; h < n_hits; ++h) {
    const AcLaneHit& hit = st.hits[h];
    adapter.packet = hit.packet;
    emit(hit.ref, hit.pos, payloads[hit.packet], adapter);
  }
}

std::size_t AcCompactMatcher::memory_bytes() const {
  return arena_.size() * sizeof(std::uint32_t) + output_ids_.size() * sizeof(std::uint32_t) +
         output_spans_.size() * sizeof(OutputSpan) + meta_.size() * sizeof(Meta);
}

}  // namespace vpm::ac
