// Lane-parallel Aho-Corasick batch kernel, AVX2 (8 payload lanes).
//
// Each lane walks one staged payload through the compact arena
// (ac_compact.hpp).  Per input byte: one vpgatherdd fetches, per lane,
// either the dense-row entry (done) or the sparse chunk word; a second
// masked gather resolves sparse lanes to the diff target or the root-row
// fallback.  Input bytes are fetched four at a time per lane (one gather of
// a u32 from the staged buffer), the last <=3 bytes of a payload handled by
// per-byte liveness masks; finished lanes refill from the staged queue so
// ragged payload lengths never strand a lane.  See ac_lanes.hpp for the
// read and hit-capacity contracts.
#include "ac/ac_lanes.hpp"

#if defined(__AVX2__)

#include <bit>

#include "ac/ac_compact.hpp"
#include "simd/avx2_ops.hpp"

namespace vpm::ac {

namespace {

constexpr int kW = 8;

struct LaneArrays {
  alignas(32) std::uint32_t ref[kW];
  alignas(32) std::uint32_t pos[kW];
  alignas(32) std::uint32_t len[kW];
  alignas(32) std::uint32_t base[kW];
  std::uint32_t pkt[kW];
};

inline __m256i load8(const std::uint32_t* p) {
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(p));
}
inline void store8(std::uint32_t* p, __m256i v) {
  _mm256_store_si256(reinterpret_cast<__m256i*>(p), v);
}

}  // namespace

std::size_t ac_lanes_scan_avx2(const AcCompactView& view, const AcStagedBatch& in,
                               AcLaneHit* hits) {
  const int* arena = reinterpret_cast<const int*>(view.arena);
  const int* folded = reinterpret_cast<const int*>(in.folded);

  LaneArrays lanes;
  std::uint32_t active = 0;
  std::size_t next = 0;
  for (int l = 0; l < kW; ++l) {
    lanes.ref[l] = kAcRootRef;
    lanes.pos[l] = lanes.len[l] = lanes.base[l] = lanes.pkt[l] = 0;
    if (next < in.count) {
      lanes.base[l] = in.offsets[next];
      lanes.len[l] = in.lens[next];
      lanes.pkt[l] = in.packets[next];
      active |= 1u << l;
      ++next;
    }
  }

  const __m256i zero = _mm256_setzero_si256();
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i three = _mm256_set1_epi32(3);
  const __m256i all_ones = _mm256_set1_epi32(-1);
  const __m256i byte_mask = _mm256_set1_epi32(0xFF);
  const __m256i low24 = _mm256_set1_epi32(0x00FFFFFF);
  const __m256i off_mask = _mm256_set1_epi32(static_cast<int>(kAcOffsetMask));
  const __m256i dense_bit = _mm256_set1_epi32(static_cast<int>(kAcDenseFlag));
  const __m256i chunk_mul = _mm256_set1_epi32(171);
  const __m256i chunk_width = _mm256_set1_epi32(24);
  const __m256i chunk_count = _mm256_set1_epi32(static_cast<int>(kAcSparseChunks));
  const __m256i lane_bits = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);

  __m256i vref = load8(lanes.ref);
  __m256i vpos = load8(lanes.pos);
  __m256i vlen = load8(lanes.len);
  __m256i vbase = load8(lanes.base);
  __m256i vactive =
      _mm256_cmpeq_epi32(_mm256_and_si256(_mm256_set1_epi32(static_cast<int>(active)), lane_bits),
                         lane_bits);

  std::size_t n_hits = 0;
  alignas(32) std::uint32_t tmp_ref[kW];
  alignas(32) std::uint32_t tmp_pos[kW];

  while (active != 0) {
    // Dynamic lane refill: any lane past its payload end takes the next
    // staged payload (or goes inactive when the queue is dry).
    const auto live_bits = static_cast<std::uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(vlen, vpos))));
    std::uint32_t done = active & ~live_bits;
    if (done != 0) {
      // Spill all lanes, rewrite the finished ones, reload.
      store8(lanes.ref, vref);
      store8(lanes.pos, vpos);
      while (done != 0) {
        const int l = std::countr_zero(done);
        done &= done - 1;
        lanes.ref[l] = kAcRootRef;
        lanes.pos[l] = 0;
        if (next < in.count) {
          lanes.base[l] = in.offsets[next];
          lanes.len[l] = in.lens[next];
          lanes.pkt[l] = in.packets[next];
          ++next;
        } else {
          active &= ~(1u << l);
          lanes.base[l] = lanes.len[l] = 0;
        }
      }
      if (active == 0) break;
      vref = load8(lanes.ref);
      vpos = load8(lanes.pos);
      vlen = load8(lanes.len);
      vbase = load8(lanes.base);
      vactive = _mm256_cmpeq_epi32(
          _mm256_and_si256(_mm256_set1_epi32(static_cast<int>(active)), lane_bits), lane_bits);
    }

    // Fetch the next 4 staged bytes per lane (reads <= 3 bytes of the
    // kStagePad slack at payload/batch ends; never the caller's buffers).
    const __m256i word = _mm256_mask_i32gather_epi32(
        zero, folded, _mm256_add_epi32(vbase, vpos), vactive, 1);

    // Fast path: every lane (so, every lane active) has >= 4 bytes left —
    // no per-byte liveness masks, unmasked gathers, no blend into vref.
    const auto full_bits = static_cast<std::uint32_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(vlen, _mm256_add_epi32(vpos, three)))));
    if (full_bits == 0xFFu) {
      for (int j = 0; j < 4; ++j) {
        const __m256i b = _mm256_and_si256(_mm256_srli_epi32(word, 8 * j), byte_mask);
        const __m256i voff = _mm256_and_si256(vref, off_mask);
        const __m256i dense =
            _mm256_cmpgt_epi32(_mm256_and_si256(vref, dense_bit), zero);
        const __m256i c = _mm256_srli_epi32(_mm256_mullo_epi32(b, chunk_mul), 12);
        const __m256i addr1 = _mm256_add_epi32(voff, _mm256_blendv_epi8(c, b, dense));
        const __m256i g1 = _mm256_i32gather_epi32(arena, addr1, 4);

        __m256i vnext = g1;
        const __m256i sparse = _mm256_xor_si256(dense, all_ones);
        if (_mm256_movemask_ps(_mm256_castsi256_ps(sparse)) != 0) {
          const __m256i r = _mm256_sub_epi32(b, _mm256_mullo_epi32(c, chunk_width));
          const __m256i bits = _mm256_and_si256(g1, low24);
          const __m256i present = _mm256_cmpgt_epi32(
              _mm256_and_si256(_mm256_srlv_epi32(bits, r), one), zero);
          const __m256i prefix =
              _mm256_and_si256(bits, _mm256_sub_epi32(_mm256_sllv_epi32(one, r), one));
          const __m256i rank = _mm256_add_epi32(_mm256_srli_epi32(g1, 24),
                                                simd::avx2::popcount_u32(prefix));
          const __m256i sparse_addr =
              _mm256_add_epi32(_mm256_add_epi32(voff, chunk_count), rank);
          const __m256i addr2 = _mm256_blendv_epi8(b, sparse_addr, present);
          const __m256i g2 = _mm256_mask_i32gather_epi32(zero, arena, addr2, sparse, 4);
          vnext = _mm256_blendv_epi8(g2, g1, dense);
        }
        vref = vnext;

        const auto hit_mask = static_cast<std::uint32_t>(
            _mm256_movemask_ps(_mm256_castsi256_ps(vref)));
        if (hit_mask != 0) {
          store8(tmp_ref, vref);
          store8(tmp_pos, _mm256_add_epi32(vpos, _mm256_set1_epi32(j)));
          std::uint32_t m = hit_mask;
          while (m != 0) {
            const int l = std::countr_zero(m);
            m &= m - 1;
            hits[n_hits++] = {lanes.pkt[l], tmp_pos[l], tmp_ref[l]};
          }
        }
      }
      vpos = _mm256_add_epi32(vpos, _mm256_set1_epi32(4));
      continue;
    }

    for (int j = 0; j < 4; ++j) {
      const __m256i posj = _mm256_add_epi32(vpos, _mm256_set1_epi32(j));
      const __m256i live = _mm256_and_si256(vactive, _mm256_cmpgt_epi32(vlen, posj));
      const auto live_mask = static_cast<std::uint32_t>(
          _mm256_movemask_ps(_mm256_castsi256_ps(live)));
      if (live_mask == 0) continue;

      const __m256i b =
          _mm256_and_si256(_mm256_srli_epi32(word, 8 * j), byte_mask);
      const __m256i voff = _mm256_and_si256(vref, off_mask);
      const __m256i dense =
          _mm256_cmpgt_epi32(_mm256_and_si256(vref, dense_bit), zero);

      // Gather 1: dense-row entry (dense lanes) or sparse chunk word.
      const __m256i c = _mm256_srli_epi32(_mm256_mullo_epi32(b, chunk_mul), 12);
      const __m256i addr1 =
          _mm256_add_epi32(voff, _mm256_blendv_epi8(c, b, dense));
      const __m256i g1 = _mm256_mask_i32gather_epi32(zero, arena, addr1, live, 4);

      // Sparse resolve: bitmap presence -> rank-indexed diff target,
      // absence -> root-row fallback (dense row at arena offset 0).  Skipped
      // entirely when every live lane sits in a dense state (root-heavy
      // traffic spends most bytes there): g1 already IS the next ref.
      __m256i vnext = g1;
      const __m256i sparse_live = _mm256_andnot_si256(dense, live);
      if (_mm256_movemask_ps(_mm256_castsi256_ps(sparse_live)) != 0) {
        const __m256i r = _mm256_sub_epi32(b, _mm256_mullo_epi32(c, chunk_width));
        const __m256i bits = _mm256_and_si256(g1, low24);
        const __m256i present =
            _mm256_cmpgt_epi32(_mm256_and_si256(_mm256_srlv_epi32(bits, r), one), zero);
        const __m256i prefix =
            _mm256_and_si256(bits, _mm256_sub_epi32(_mm256_sllv_epi32(one, r), one));
        const __m256i rank =
            _mm256_add_epi32(_mm256_srli_epi32(g1, 24), simd::avx2::popcount_u32(prefix));
        const __m256i sparse_addr =
            _mm256_add_epi32(_mm256_add_epi32(voff, chunk_count), rank);
        const __m256i addr2 = _mm256_blendv_epi8(b, sparse_addr, present);
        const __m256i g2 = _mm256_mask_i32gather_epi32(zero, arena, addr2, sparse_live, 4);
        vnext = _mm256_blendv_epi8(g2, g1, dense);
      }
      vref = _mm256_blendv_epi8(vref, vnext, live);

      // Output flag is the sign bit of the new state ref.
      const auto hit_mask = static_cast<std::uint32_t>(
                                _mm256_movemask_ps(_mm256_castsi256_ps(vref))) &
                            live_mask;
      if (hit_mask != 0) {
        store8(tmp_ref, vref);
        store8(tmp_pos, posj);
        std::uint32_t m = hit_mask;
        while (m != 0) {
          const int l = std::countr_zero(m);
          m &= m - 1;
          hits[n_hits++] = {lanes.pkt[l], tmp_pos[l], tmp_ref[l]};
        }
      }
    }
    vpos = _mm256_add_epi32(vpos, _mm256_set1_epi32(4));
  }
  return n_hits;
}

}  // namespace vpm::ac

#else  // !__AVX2__

#include <cstdlib>

namespace vpm::ac {
std::size_t ac_lanes_scan_avx2(const AcCompactView&, const AcStagedBatch&, AcLaneHit*) {
  std::abort();
}
}  // namespace vpm::ac

#endif
