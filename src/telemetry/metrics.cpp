#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "telemetry/json.hpp"

namespace vpm::telemetry {

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= rank && counts[i] > 0) {
      const double hi = i < bounds.size() ? bounds[i]
                                          : (bounds.empty() ? 0.0 : bounds.back());
      if (i >= bounds.size()) return hi;  // +Inf bucket: report last finite bound
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double into = (rank - static_cast<double>(cumulative)) /
                          static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::clamp(into, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument("Histogram: bounds must be strictly increasing");
    }
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += s.counts[i];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

std::vector<double> exponential_buckets(double start, double factor, std::size_t count) {
  if (start <= 0.0 || factor <= 1.0) {
    throw std::invalid_argument("exponential_buckets: need start > 0 and factor > 1");
  }
  std::vector<double> b;
  b.reserve(count);
  double v = start;
  for (std::size_t i = 0; i < count; ++i, v *= factor) b.push_back(v);
  return b;
}

std::vector<double> linear_buckets(double start, double step, std::size_t count) {
  if (step <= 0.0) throw std::invalid_argument("linear_buckets: need step > 0");
  std::vector<double> b;
  b.reserve(count);
  double v = start;
  for (std::size_t i = 0; i < count; ++i, v += step) b.push_back(v);
  return b;
}

const std::vector<double>& latency_buckets_seconds() {
  static const std::vector<double> buckets = exponential_buckets(1e-6, 2.0, 24);
  return buckets;
}

const std::vector<double>& size_buckets_bytes() {
  static const std::vector<double> buckets = exponential_buckets(16.0, 4.0, 10);
  return buckets;
}

namespace {

// %.9g keeps integers integral ("256" not "256.000000") and round-trips the
// usual bucket bounds; Prometheus accepts any valid float literal.
std::string number_text(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void append_labels(std::string& out, const Labels& labels, const char* extra_key,
                   const std::string& extra_value) {
  if (labels.empty() && extra_key == nullptr) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    json_escape(v, out);  // Prometheus label escapes are a subset of JSON's
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
}

}  // namespace

MetricsRegistry::Family& MetricsRegistry::family_for(std::string_view name,
                                                     std::string_view help, Kind kind) {
  auto it = families_.find(name);
  if (it == families_.end()) {
    it = families_.emplace(std::string(name), Family{std::string(help), kind, {}}).first;
  } else if (it->second.kind != kind) {
    throw std::invalid_argument("MetricsRegistry: metric '" + std::string(name) +
                                "' registered with two different kinds");
  }
  return it->second;
}

MetricsRegistry::Series* MetricsRegistry::series_for(Family& fam, const Labels& labels) {
  for (auto& s : fam.series) {
    if (s->labels == labels) return s.get();
  }
  return nullptr;
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family_for(name, help, Kind::counter);
  if (Series* s = series_for(fam, labels)) return *s->counter;
  auto series = std::make_unique<Series>();
  series->labels = std::move(labels);
  series->counter = std::make_unique<Counter>();
  Counter& handle = *series->counter;
  fam.series.push_back(std::move(series));
  return handle;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family_for(name, help, Kind::gauge);
  if (Series* s = series_for(fam, labels)) return *s->gauge;
  auto series = std::make_unique<Series>();
  series->labels = std::move(labels);
  series->gauge = std::make_unique<Gauge>();
  Gauge& handle = *series->gauge;
  fam.series.push_back(std::move(series));
  return handle;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::string_view help,
                                      std::vector<double> bounds, Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family_for(name, help, Kind::histogram);
  if (Series* s = series_for(fam, labels)) {
    if (s->histogram->bounds() != bounds) {
      throw std::invalid_argument("MetricsRegistry: histogram '" + std::string(name) +
                                  "' re-registered with different buckets");
    }
    return *s->histogram;
  }
  auto series = std::make_unique<Series>();
  series->labels = std::move(labels);
  series->histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram& handle = *series->histogram;
  fam.series.push_back(std::move(series));
  return handle;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name,
                                                 const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = families_.find(name);
  if (it == families_.end() || it->second.kind != Kind::histogram) return nullptr;
  for (const auto& s : it->second.series) {
    if (s->labels == labels) return s->histogram.get();
  }
  return nullptr;
}

void MetricsRegistry::render_prometheus(std::string& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, fam] : families_) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += fam.help;
    out += "\n# TYPE ";
    out += name;
    out += ' ';
    out += fam.kind == Kind::counter ? "counter"
           : fam.kind == Kind::gauge ? "gauge"
                                     : "histogram";
    out += '\n';
    for (const auto& s : fam.series) {
      switch (fam.kind) {
        case Kind::counter:
          out += name;
          append_labels(out, s->labels, nullptr, {});
          out += ' ';
          out += std::to_string(s->counter->value());
          out += '\n';
          break;
        case Kind::gauge:
          out += name;
          append_labels(out, s->labels, nullptr, {});
          out += ' ';
          out += std::to_string(s->gauge->value());
          out += '\n';
          break;
        case Kind::histogram: {
          const HistogramSnapshot snap = s->histogram->snapshot();
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < snap.counts.size(); ++i) {
            cumulative += snap.counts[i];
            out += name;
            out += "_bucket";
            append_labels(out, s->labels, "le",
                          i < snap.bounds.size() ? number_text(snap.bounds[i]) : "+Inf");
            out += ' ';
            out += std::to_string(cumulative);
            out += '\n';
          }
          out += name;
          out += "_sum";
          append_labels(out, s->labels, nullptr, {});
          out += ' ';
          out += number_text(snap.sum);
          out += '\n';
          out += name;
          out += "_count";
          append_labels(out, s->labels, nullptr, {});
          out += ' ';
          out += std::to_string(snap.count);
          out += '\n';
          break;
        }
      }
    }
  }
}

std::string MetricsRegistry::render_prometheus() const {
  std::string out;
  render_prometheus(out);
  return out;
}

}  // namespace vpm::telemetry
