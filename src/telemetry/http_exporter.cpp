#include "telemetry/http_exporter.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "telemetry/metrics.hpp"

namespace vpm::telemetry {

namespace {

void send_all(int fd, const char* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away mid-response; nothing to salvage
    }
    sent += static_cast<std::size_t>(n);
  }
}

void send_response(int fd, const char* status, const char* content_type,
                   const std::string& body) {
  std::string head = "HTTP/1.1 ";
  head += status;
  head += "\r\nContent-Type: ";
  head += content_type;
  head += "\r\nContent-Length: " + std::to_string(body.size());
  head += "\r\nConnection: close\r\n\r\n";
  send_all(fd, head.data(), head.size());
  send_all(fd, body.data(), body.size());
}

constexpr const char* kMetricsContentType =
    "text/plain; version=0.0.4; charset=utf-8";

}  // namespace

HttpExporter::HttpExporter(HttpExporterConfig cfg) : cfg_(std::move(cfg)) {}

HttpExporter::~HttpExporter() { stop(); }

void HttpExporter::add_source(TextSource source) {
  if (running()) throw std::logic_error("HttpExporter: add_source after start()");
  sources_.push_back(std::move(source));
}

void HttpExporter::add_registry(const MetricsRegistry& registry) {
  add_source([&registry](std::string& out) { registry.render_prometheus(out); });
}

void HttpExporter::start() {
  if (running() || thread_.joinable()) {
    throw std::logic_error("HttpExporter::start: exporter is one-shot");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("HttpExporter: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpExporter: bad bind address '" + cfg_.bind_address +
                             "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpExporter: cannot listen on " + cfg_.bind_address +
                             ":" + std::to_string(cfg_.port) + ": " + err);
  }
  socklen_t addr_len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  if (::pipe(wake_pipe_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("HttpExporter: pipe: ") +
                             std::strerror(errno));
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

void HttpExporter::stop() {
  if (!thread_.joinable()) return;
  running_.store(false, std::memory_order_release);
  const char wake = 'x';
  // A full pipe cannot happen (one byte per stop), but check anyway to keep
  // -Wunused-result honest.
  if (::write(wake_pipe_[1], &wake, 1) < 0) { /* poll times out regardless */
  }
  thread_.join();
  ::close(listen_fd_);
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  listen_fd_ = -1;
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

void HttpExporter::run() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    // A timeout backstops a lost wake byte; nothing spins at 1 Hz.
    const int ready = ::poll(fds, 2, 1000);
    if (ready <= 0) continue;
    if (fds[1].revents != 0) break;  // stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (client < 0) continue;
    // Bound both directions so a stuck scraper cannot wedge the listener.
    timeval tv{2, 0};
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    serve_one(client);
    ::close(client);
  }
}

void HttpExporter::serve_one(int client_fd) {
  // Read until the header terminator (requests are one GET line + headers;
  // 8 KB is generous) — a scraper that never finishes its headers times out
  // via SO_RCVTIMEO.
  std::string request;
  char buf[2048];
  while (request.size() < 8192 && request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(client_fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  const std::size_t line_end = request.find("\r\n");
  const std::string line = request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  const std::string method = sp1 == std::string::npos ? "" : line.substr(0, sp1);
  const std::string path =
      sp1 == std::string::npos || sp2 == std::string::npos
          ? ""
          : line.substr(sp1 + 1, sp2 - sp1 - 1);

  if (method != "GET") {
    send_response(client_fd, "405 Method Not Allowed", "text/plain",
                  "method not allowed\n");
    return;
  }
  if (path == "/healthz") {
    send_response(client_fd, "200 OK", "text/plain", "ok\n");
    return;
  }
  if (path == "/metrics" || path.rfind("/metrics?", 0) == 0) {
    std::string body;
    body.reserve(1 << 14);
    for (const TextSource& source : sources_) source(body);
    send_response(client_fd, "200 OK", kMetricsContentType, body);
    return;
  }
  send_response(client_fd, "404 Not Found", "text/plain", "not found\n");
}

}  // namespace vpm::telemetry
