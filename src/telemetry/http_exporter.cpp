#include "telemetry/http_exporter.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "telemetry/metrics.hpp"
#include "util/failpoint.hpp"

namespace vpm::telemetry {

namespace {

// Absolute wall-clock budget for one I/O direction of one client.  All
// waiting happens in poll() against the time REMAINING, so partial progress
// (a drip-feeding scraper) spends the budget instead of resetting it — the
// failure mode of per-call SO_SNDTIMEO/SO_RCVTIMEO.
struct Deadline {
  std::chrono::steady_clock::time_point end;
  bool unbounded = false;

  static Deadline in_ms(std::uint64_t ms) {
    Deadline d;
    d.unbounded = ms == 0;
    d.end = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  // Remaining budget clamped for poll(); -1 = wait forever (unbounded).
  int remaining_ms() const {
    if (unbounded) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          end - std::chrono::steady_clock::now())
                          .count();
    if (left <= 0) return 0;
    return left > 60'000 ? 60'000 : static_cast<int>(left);
  }
};

enum class IoResult : std::uint8_t { ok, peer_gone, timed_out };

// Writes the whole buffer (EINTR-safe, partial-write-safe) or reports why it
// could not.  The socket must be nonblocking; blocking happens only in
// poll() against the deadline.
IoResult send_all(int fd, const char* data, std::size_t len, const Deadline& dl) {
  std::size_t sent = 0;
  while (sent < len) {
    std::size_t chunk = len - sent;
    // Chaos hook: force a 1-byte short write, exercising the resume path a
    // cooperative local peer would otherwise never take.
    if (util::failpoint::should_fail(util::failpoint::Site::exporter_socket)) {
      chunk = 1;
    }
    const ssize_t n = ::send(fd, data + sent, chunk, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const int wait = dl.remaining_ms();
      if (wait == 0) return IoResult::timed_out;
      pollfd p{fd, POLLOUT, 0};
      const int ready = ::poll(&p, 1, wait);
      if (ready < 0 && errno == EINTR) continue;
      if (ready == 0) return IoResult::timed_out;
      if (ready < 0) return IoResult::peer_gone;
      continue;
    }
    return IoResult::peer_gone;  // reset/closed mid-response; nothing to salvage
  }
  return IoResult::ok;
}

IoResult send_response(int fd, const char* status, const char* content_type,
                       const std::string& body, const Deadline& dl) {
  std::string head = "HTTP/1.1 ";
  head += status;
  head += "\r\nContent-Type: ";
  head += content_type;
  head += "\r\nContent-Length: " + std::to_string(body.size());
  head += "\r\nConnection: close\r\n\r\n";
  const IoResult r = send_all(fd, head.data(), head.size(), dl);
  if (r != IoResult::ok) return r;
  return send_all(fd, body.data(), body.size(), dl);
}

constexpr const char* kMetricsContentType =
    "text/plain; version=0.0.4; charset=utf-8";

}  // namespace

HttpExporter::HttpExporter(HttpExporterConfig cfg) : cfg_(std::move(cfg)) {}

HttpExporter::~HttpExporter() { stop(); }

void HttpExporter::add_source(TextSource source) {
  if (running()) throw std::logic_error("HttpExporter: add_source after start()");
  sources_.push_back(std::move(source));
}

void HttpExporter::add_registry(const MetricsRegistry& registry) {
  add_source([&registry](std::string& out) { registry.render_prometheus(out); });
}

void HttpExporter::start() {
  if (running() || thread_.joinable()) {
    throw std::logic_error("HttpExporter::start: exporter is one-shot");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("HttpExporter: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.port);
  if (::inet_pton(AF_INET, cfg_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpExporter: bad bind address '" + cfg_.bind_address +
                             "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpExporter: cannot listen on " + cfg_.bind_address +
                             ":" + std::to_string(cfg_.port) + ": " + err);
  }
  socklen_t addr_len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  if (::pipe(wake_pipe_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("HttpExporter: pipe: ") +
                             std::strerror(errno));
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

void HttpExporter::stop() {
  if (!thread_.joinable()) return;
  running_.store(false, std::memory_order_release);
  const char wake = 'x';
  // A full pipe cannot happen (one byte per stop), but check anyway to keep
  // -Wunused-result honest.
  if (::write(wake_pipe_[1], &wake, 1) < 0) { /* poll times out regardless */
  }
  thread_.join();
  ::close(listen_fd_);
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  listen_fd_ = -1;
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

void HttpExporter::run() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    // A timeout backstops a lost wake byte; nothing spins at 1 Hz.
    const int ready = ::poll(fds, 2, 1000);
    if (ready <= 0) continue;
    if (fds[1].revents != 0) break;  // stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC | SOCK_NONBLOCK);
    if (client < 0) continue;
    // Nonblocking + poll deadlines in serve_one bound the TOTAL time a
    // client may hold this single-threaded listener.
    serve_one(client);
    ::close(client);
  }
}

void HttpExporter::serve_one(int client_fd) {
  // Read until the header terminator (requests are one GET line + headers;
  // 8 KB is generous).  The whole read shares one budget: a scraper that
  // drips bytes spends it down and gets disconnected.
  const Deadline read_dl = Deadline::in_ms(cfg_.read_timeout_ms);
  std::string request;
  char buf[2048];
  bool read_timed_out = false;
  while (request.size() < 8192 && request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(client_fd, buf, sizeof buf, 0);
    if (n > 0) {
      request.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;  // clean half-close: parse what we have
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const int wait = read_dl.remaining_ms();
      pollfd p{client_fd, POLLIN, 0};
      const int ready = wait == 0 ? 0 : ::poll(&p, 1, wait);
      if (ready < 0 && errno == EINTR) continue;
      if (ready == 0) {
        read_timed_out = true;
        break;
      }
      if (ready < 0) break;
      continue;
    }
    break;  // reset
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (read_timed_out && request.find("\r\n\r\n") == std::string::npos) {
    // Never finished its headers inside the budget: drop it, count it.
    slow_aborts_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const Deadline write_dl = Deadline::in_ms(cfg_.write_timeout_ms);

  const std::size_t line_end = request.find("\r\n");
  const std::string line = request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  const std::string method = sp1 == std::string::npos ? "" : line.substr(0, sp1);
  const std::string path =
      sp1 == std::string::npos || sp2 == std::string::npos
          ? ""
          : line.substr(sp1 + 1, sp2 - sp1 - 1);

  const auto respond = [&](const char* status, const char* content_type,
                           const std::string& body) {
    if (send_response(client_fd, status, content_type, body, write_dl) ==
        IoResult::timed_out) {
      slow_aborts_.fetch_add(1, std::memory_order_relaxed);
    }
  };

  if (method != "GET") {
    respond("405 Method Not Allowed", "text/plain", "method not allowed\n");
    return;
  }
  if (path == "/healthz") {
    respond("200 OK", "text/plain", "ok\n");
    return;
  }
  if (path == "/metrics" || path.rfind("/metrics?", 0) == 0) {
    std::string body;
    body.reserve(1 << 14);
    for (const TextSource& source : sources_) source(body);
    respond("200 OK", kMetricsContentType, body);
    return;
  }
  respond("404 Not Found", "text/plain", "not found\n");
}

}  // namespace vpm::telemetry
