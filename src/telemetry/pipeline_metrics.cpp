#include "telemetry/pipeline_metrics.hpp"

#include <cstdio>

namespace vpm::telemetry {

using pipeline::PipelineStats;
using pipeline::StatKind;
using pipeline::WorkerStats;

std::string describe_pipeline_stats(const PipelineStats& stats) {
  std::string out;
  out += "pipeline: submitted=" + std::to_string(stats.submitted) +
         " routed=" + std::to_string(stats.routed) +
         " dropped_backpressure=" + std::to_string(stats.dropped_backpressure) +
         " workers=" + std::to_string(stats.workers.size()) +
         " watchdog_stalls=" + std::to_string(stats.watchdog_stalls) +
         " worker_failures=" + std::to_string(stats.worker_failures) + "\n";
  for (const std::string& err : stats.errors) {
    out += "worker error: " + err + "\n";
  }

  const WorkerStats totals = stats.totals();
  out += "totals:";
  WorkerStats::for_each_field([&](const char* name, StatKind kind, auto member) {
    out += ' ';
    out += name;
    out += '=';
    out += std::to_string(totals.*member);
    if (kind != StatKind::counter) out += "(g)";  // gauge: level, not a total
  });
  out += '\n';

  for (std::size_t w = 0; w < stats.workers.size(); ++w) {
    const WorkerStats& ws = stats.workers[w];
    out += "worker " + std::to_string(w) + ":";
    WorkerStats::for_each_field([&](const char* name, StatKind, auto member) {
      out += ' ';
      out += name;
      out += '=';
      out += std::to_string(ws.*member);
    });
    out += '\n';
  }
  return out;
}

namespace {

void emit_family(std::string& out, const std::string& name, const char* type,
                 const char* help) {
  out += "# HELP " + name + ' ' + help + "\n# TYPE " + name + ' ' + type + '\n';
}

}  // namespace

void render_pipeline_prometheus(std::string& out, const PipelineStats& stats) {
  // Ingest-side counters (producer thread's view).
  emit_family(out, "vpm_pipeline_submitted_total", "counter",
              "Packets handed to PipelineRuntime::submit()");
  out += "vpm_pipeline_submitted_total " + std::to_string(stats.submitted) + '\n';
  emit_family(out, "vpm_pipeline_routed_total", "counter",
              "Packets pushed into a worker ring");
  out += "vpm_pipeline_routed_total " + std::to_string(stats.routed) + '\n';
  emit_family(out, "vpm_pipeline_dropped_backpressure_total", "counter",
              "Packets discarded by the drop backpressure policy");
  out += "vpm_pipeline_dropped_backpressure_total " +
         std::to_string(stats.dropped_backpressure) + '\n';
  emit_family(out, "vpm_pipeline_watchdog_stalls_total", "counter",
              "Worker stall episodes flagged by the liveness watchdog");
  out += "vpm_pipeline_watchdog_stalls_total " + std::to_string(stats.watchdog_stalls) +
         '\n';
  emit_family(out, "vpm_pipeline_worker_failures_total", "counter",
              "Workers that died on an exception and drained their ring");
  out += "vpm_pipeline_worker_failures_total " + std::to_string(stats.worker_failures) +
         '\n';

  const WorkerStats totals = stats.totals();

  WorkerStats::for_each_field([&](const char* field, StatKind kind, auto member) {
    const bool counter = kind == StatKind::counter;
    // Per-worker series.
    const std::string worker_name =
        std::string("vpm_worker_") + field + (counter ? "_total" : "");
    emit_family(out, worker_name, counter ? "counter" : "gauge",
                "Per-worker pipeline statistic (see WorkerStats)");
    for (std::size_t w = 0; w < stats.workers.size(); ++w) {
      out += worker_name + "{worker=\"" + std::to_string(w) + "\"} " +
             std::to_string(stats.workers[w].*member) + '\n';
    }
    // Aggregate series (sum for counters/gauges, max for gauge_max — the
    // same rule totals() applies).
    const std::string total_name =
        std::string("vpm_") + field + (counter ? "_total" : "");
    emit_family(out, total_name, counter ? "counter" : "gauge",
                kind == StatKind::gauge_max
                    ? "Max across workers (see WorkerStats)"
                    : "Sum across workers (see WorkerStats)");
    out += total_name + ' ' + std::to_string(totals.*member) + '\n';
  });
}

}  // namespace vpm::telemetry
