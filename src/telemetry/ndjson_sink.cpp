#include "telemetry/ndjson_sink.hpp"

#include <chrono>
#include <stdexcept>

#include "telemetry/json.hpp"
#include "util/failpoint.hpp"

namespace vpm::telemetry {

namespace {

void append_ipv4(std::string& out, std::uint32_t ip) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", ip >> 24 & 0xFF, ip >> 16 & 0xFF,
                ip >> 8 & 0xFF, ip & 0xFF);
  out += buf;
}

std::uint64_t wall_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

NdjsonAlertSink::NdjsonAlertSink(const std::string& path,
                                 const pattern::PatternSet* patterns,
                                 ids::AlertSink* forward)
    : out_(std::fopen(path.c_str(), "w")),
      owns_stream_(true),
      patterns_(patterns),
      forward_(forward) {
  if (out_ == nullptr) {
    throw std::runtime_error("NdjsonAlertSink: cannot open '" + path + "' for writing");
  }
}

NdjsonAlertSink::NdjsonAlertSink(std::FILE* stream, const pattern::PatternSet* patterns,
                                 ids::AlertSink* forward)
    : out_(stream), owns_stream_(false), patterns_(patterns), forward_(forward) {
  if (out_ == nullptr) throw std::invalid_argument("NdjsonAlertSink: null stream");
}

NdjsonAlertSink::~NdjsonAlertSink() {
  if (owns_stream_) {
    std::fclose(out_);
  } else {
    std::fflush(out_);
  }
}

void NdjsonAlertSink::register_flow(std::uint64_t flow_id, const net::FiveTuple& tuple,
                                    net::Direction dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  flows_.emplace(flow_id, FlowInfo{tuple, dir});
}

void NdjsonAlertSink::append_line(const ids::Alert& alert) {
  line_.clear();
  line_ += "{\"ts_us\":" + std::to_string(wall_us());
  line_ += ",\"flow\":" + std::to_string(alert.flow_id);
  const auto it = flows_.find(alert.flow_id);
  if (it != flows_.end()) {
    const net::FiveTuple& t = it->second.tuple;
    line_ += ",\"src_ip\":\"";
    append_ipv4(line_, t.src_ip);
    line_ += "\",\"src_port\":" + std::to_string(t.src_port);
    line_ += ",\"dst_ip\":\"";
    append_ipv4(line_, t.dst_ip);
    line_ += "\",\"dst_port\":" + std::to_string(t.dst_port);
    line_ += ",\"proto\":\"";
    line_ += t.proto == net::IpProto::tcp ? "tcp" : "udp";
    line_ += "\",\"dir\":\"";
    line_ += net::direction_name(it->second.dir);
    line_ += '"';
  }
  line_ += ",\"group\":\"";
  line_ += pattern::group_name(alert.group);
  line_ += "\",\"pattern\":" + std::to_string(alert.pattern_id);
  line_ += ",\"offset\":" + std::to_string(alert.stream_offset);
  line_ += ",\"generation\":" + std::to_string(alert.generation);
  if (patterns_ != nullptr && alert.pattern_id < patterns_->size()) {
    line_ += ",\"match\":\"";
    json_escape((*patterns_)[alert.pattern_id].printable(), line_);
    line_ += '"';
  }
  line_ += "}\n";
}

void NdjsonAlertSink::on_alert(const ids::Alert& alert) {
  std::lock_guard<std::mutex> lock(mutex_);
  append_line(alert);
  // Chaos hook: pretend the write failed (disk full, dead pipe) without
  // needing a real broken FILE*.
  const bool injected =
      util::failpoint::should_fail(util::failpoint::Site::alert_sink_write);
  if (injected || std::fwrite(line_.data(), 1, line_.size(), out_) != line_.size()) {
    // A failed write loses THIS line only: record it, clear the stream's
    // sticky error flag so a transient failure (pipe pressure, rotated
    // volume) does not poison every later line, and keep going.  ok() stays
    // false so the operator learns the log has holes.
    write_error_ = true;
    ++dropped_;
    std::clearerr(out_);
  } else {
    ++emitted_;
  }
  // The downstream sink always gets the alert — a broken log file must not
  // sever live delivery.
  if (forward_ != nullptr) forward_->on_alert(alert);
}

void NdjsonAlertSink::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::fflush(out_) != 0) {
    write_error_ = true;
    std::clearerr(out_);
  }
}

std::uint64_t NdjsonAlertSink::emitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return emitted_;
}

std::uint64_t NdjsonAlertSink::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

bool NdjsonAlertSink::ok() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !write_error_;
}

}  // namespace vpm::telemetry
