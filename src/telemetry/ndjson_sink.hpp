// Structured alert output: one JSON object per line (NDJSON), the format
// log shippers (filebeat/vector/fluentd) ingest without a parser config.
//
// An ids::Alert carries the directional flow id (tuple hash) but not the
// tuple itself — the engine layer is deliberately network-agnostic.  The
// embedder therefore registers each flow id's 5-tuple and direction as it
// first routes the flow (register_flow is idempotent); alerts for
// unregistered flows still emit, just without the tuple fields.
//
// Line schema (fields always in this order; absent = unknown):
//   {"ts_us":…, "flow":…, "src_ip":"a.b.c.d", "src_port":…, "dst_ip":…,
//    "dst_port":…, "proto":"tcp|udp", "dir":"c2s|s2c", "group":"http",
//    "pattern":…, "offset":…, "generation":…, "match":"…"}
// "match" (the pattern's printable text, JSON-escaped centrally through
// telemetry::json_escape) appears only when a PatternSet was provided.
//
// Thread-safe: on_alert takes one mutex around format+write+forward, so the
// pipeline's workers can share one sink and an optional downstream sink
// (e.g. an AlertBuffer for the end-of-run report) is serialized through the
// same lock.  The alert path is orders of magnitude colder than the scan
// path; a mutex is the honest tool.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>

#include "ids/alert.hpp"
#include "net/reassembly.hpp"
#include "pattern/pattern_set.hpp"

namespace vpm::telemetry {

class NdjsonAlertSink final : public ids::AlertSink {
 public:
  // Writes to `path` (truncating).  `patterns` (optional, must outlive the
  // sink) adds the matched pattern text; `forward` (optional) receives every
  // alert after it is written, under the sink's lock.
  NdjsonAlertSink(const std::string& path, const pattern::PatternSet* patterns = nullptr,
                  ids::AlertSink* forward = nullptr);
  // Writes to an already-open stream the caller owns (stdout, memstream).
  NdjsonAlertSink(std::FILE* stream, const pattern::PatternSet* patterns = nullptr,
                  ids::AlertSink* forward = nullptr);
  ~NdjsonAlertSink();

  NdjsonAlertSink(const NdjsonAlertSink&) = delete;
  NdjsonAlertSink& operator=(const NdjsonAlertSink&) = delete;

  // Associates a DIRECTIONAL flow id (pipeline::flow_key(tuple)) with its
  // tuple.  Idempotent; later registrations of the same id are ignored.
  // Call from any thread (takes the sink lock).
  void register_flow(std::uint64_t flow_id, const net::FiveTuple& tuple,
                     net::Direction dir);

  void on_alert(const ids::Alert& alert) override;

  // Flushes buffered lines to the underlying stream.
  void flush();

  // Lines successfully written / lines lost to write failures.  Every alert
  // is one or the other; forwarding to the downstream sink happens either
  // way, so a sick log file degrades durability, never live delivery.
  std::uint64_t emitted() const;
  std::uint64_t dropped() const;
  bool ok() const;  // false once any write failed (disk full, closed pipe)

 private:
  struct FlowInfo {
    net::FiveTuple tuple;
    net::Direction dir;
  };

  void append_line(const ids::Alert& alert);

  mutable std::mutex mutex_;
  std::FILE* out_;
  bool owns_stream_;
  const pattern::PatternSet* patterns_;
  ids::AlertSink* forward_;
  std::unordered_map<std::uint64_t, FlowInfo> flows_;
  std::string line_;  // reused per alert
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;  // lines lost to failed writes
  bool write_error_ = false;
};

}  // namespace vpm::telemetry
