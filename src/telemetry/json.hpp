// The one JSON string escaper: every surface that emits JSON (the NDJSON
// alert sink, the bench reporters) and the Prometheus label renderer (whose
// escape rules are a subset) route through here, so escaping bugs have a
// single home.
#pragma once

#include <string>
#include <string_view>

namespace vpm::telemetry {

// Appends `s` to `out` with ", \, and control bytes escaped (RFC 8259).
// Bytes >= 0x80 pass through untouched: inputs are either UTF-8 already or
// raw pattern bytes the consumer treats as opaque.
void json_escape(std::string_view s, std::string& out);

inline std::string json_escaped(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  json_escape(s, out);
  return out;
}

}  // namespace vpm::telemetry
