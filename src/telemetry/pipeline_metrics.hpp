// The two rendering surfaces for PipelineStats, driven off the ONE
// WorkerStats field table (WorkerStats::for_each_field):
//
//   describe_pipeline_stats   the human text block pcap_sensor prints (and
//                             anything else wanting a console summary)
//   render_pipeline_prometheus the /metrics families the HTTP exporter
//                             serves, gauge/counter-typed per StatKind
//
// Both iterate the same table, so a WorkerStats field added tomorrow appears
// in the console dump, the exporter, and totals() aggregation without any of
// the three being touched — the failure mode this module exists to kill was
// a counter reaching one surface and silently missing another.
#pragma once

#include <string>

#include "pipeline/stats.hpp"

namespace vpm::telemetry {

// Multi-line human summary: pipeline-level counters, the totals row (every
// field from the table, counters first, gauges marked), then one compact
// line per worker.
std::string describe_pipeline_stats(const pipeline::PipelineStats& stats);

// Prometheus text: per-field families named vpm_worker_<field>[_total] with
// a worker="i" label per series plus an aggregate family per field
// (vpm_<field>[_total]) from totals(); counters get the _total suffix and
// TYPE counter, gauges keep the bare name and TYPE gauge (rules_generation
// becomes the vpm_rules_generation gauge dashboards watch across swaps).
// Pipeline-level ingest counters (submitted/routed/dropped_backpressure)
// are emitted as vpm_pipeline_*_total.
void render_pipeline_prometheus(std::string& out, const pipeline::PipelineStats& stats);

}  // namespace vpm::telemetry
