// Metrics substrate for the pipeline: counters, gauges, and fixed-bucket
// histograms behind a registry that renders Prometheus text format v0.0.4.
//
// Contract: the RECORD path (Counter::add, Gauge::set, Histogram::record) is
// a handful of relaxed atomic operations — no locks, no allocation, safe
// from any thread, cheap enough for the pipeline worker's per-batch loop
// (alloc_test pins the no-allocation half of this).  All allocation happens
// at REGISTRATION time (MetricsRegistry::counter/gauge/histogram, mutex-
// guarded), which the embedder does once at setup; handles returned by the
// registry are stable for its lifetime.
//
// Relaxed atomics mean a scrape sees each series' value at-or-near "now",
// with no cross-series ordering guarantee — the same coherence class as
// WorkerStats snapshots, and exactly what Prometheus expects of a scrape.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vpm::telemetry {

class Counter {
 public:
  // Hot path: one relaxed fetch_add.
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  // Single-writer publication of an externally accumulated monotonic total
  // (the pipeline worker already keeps its own counters; publishing the
  // running total is cheaper than mirroring every increment).  Callers must
  // never publish a smaller value — Prometheus counters only go up.
  void set(std::uint64_t total) { v_.store(total, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n = 1) { v_.fetch_sub(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// A read-coherent copy of one histogram, plus quantile estimation for the
// bench reporters (Prometheus computes quantiles server-side; the bench
// wants p50/p99 locally).
struct HistogramSnapshot {
  std::vector<double> bounds;        // upper bounds; implicit +Inf follows
  std::vector<std::uint64_t> counts; // per-bucket (NOT cumulative); size bounds+1
  std::uint64_t count = 0;           // total observations
  double sum = 0.0;

  // Linear interpolation inside the winning bucket (lower edge 0 for the
  // first, last finite bound for the +Inf bucket).  q in [0, 1].
  double quantile(double q) const;
};

// Fixed-bucket histogram.  Bounds are strictly increasing upper bounds
// (Prometheus `le` semantics: bucket i counts v <= bounds[i]); one implicit
// +Inf bucket follows.  Bounds are fixed at registration, so record() is a
// short linear scan plus two relaxed atomic adds.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  // Hot path: no locks, no allocation.
  void record(double v) {
    const std::size_t n = bounds_.size();
    std::size_t i = 0;
    while (i < n && v > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    // GCC/x86-64 implements this as a CAS loop — lock-free, not lock-based.
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  HistogramSnapshot snapshot() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds+1 (+Inf last)
  std::atomic<double> sum_{0.0};
};

// `start * factor^i` for i in [0, count): the usual latency/size ladder.
std::vector<double> exponential_buckets(double start, double factor, std::size_t count);
std::vector<double> linear_buckets(double start, double step, std::size_t count);

// Shared default ladders so every latency/size histogram in the process
// buckets identically (dashboards can aggregate across workers).
const std::vector<double>& latency_buckets_seconds();  // 1 µs .. ~8 s, ×2
const std::vector<double>& size_buckets_bytes();       // 16 B .. 4 MiB, ×4

using Labels = std::vector<std::pair<std::string, std::string>>;

// Families keyed by metric name; series within a family keyed by label set.
// Registering the same (name, labels) twice returns the same handle;
// registering one name with two different metric kinds (or histogram bucket
// layouts) throws std::invalid_argument.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name, std::string_view help, Labels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help, Labels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<double> bounds, Labels labels = {});

  // Prometheus text format v0.0.4: one # HELP / # TYPE pair per family,
  // families sorted by name, series in registration order.
  void render_prometheus(std::string& out) const;
  std::string render_prometheus() const;

  // Finds an already-registered histogram (bench reporters); nullptr when
  // the series does not exist.
  const Histogram* find_histogram(std::string_view name, const Labels& labels) const;

 private:
  enum class Kind : std::uint8_t { counter, gauge, histogram };

  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string help;
    Kind kind{};
    std::vector<std::unique_ptr<Series>> series;
  };

  Family& family_for(std::string_view name, std::string_view help, Kind kind);
  Series* series_for(Family& fam, const Labels& labels);

  mutable std::mutex mutex_;
  std::map<std::string, Family, std::less<>> families_;
};

}  // namespace vpm::telemetry
