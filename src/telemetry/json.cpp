#include "telemetry/json.hpp"

#include <cstdio>

namespace vpm::telemetry {

void json_escape(std::string_view s, std::string& out) {
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

}  // namespace vpm::telemetry
