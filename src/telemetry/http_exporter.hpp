// Minimal blocking Prometheus exposition endpoint: one listener thread, one
// connection served at a time (scrapes are rare and tiny; a deliberately
// boring server is the right amount of server for a sensor's sidecar port).
//
//   GET /metrics   text/plain; version=0.0.4 — concatenation of every
//                  registered text source (the metrics registry, the live
//                  PipelineStats renderer, ...), assembled fresh per scrape
//   GET /healthz   200 "ok\n" liveness probe
//   anything else  404 (405 for non-GET methods)
//
// The listener thread never touches the scan path: sources read relaxed-
// atomic snapshots, so a scrape perturbs workers no more than a stats()
// call.  stop() (or the destructor) wakes the poll loop through a pipe and
// joins — no half-closed listener sockets left behind.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace vpm::telemetry {

class MetricsRegistry;

struct HttpExporterConfig {
  std::string bind_address = "0.0.0.0";  // scrape from anywhere by default
  std::uint16_t port = 0;                // 0 = kernel-assigned (tests)
  // Overall wall-clock budgets for one client, enforced with nonblocking
  // sockets + poll deadlines.  Per-call socket timeouts (SO_RCVTIMEO /
  // SO_SNDTIMEO) restart on every syscall, so a client draining one byte per
  // call could hold the single-threaded listener forever; these budgets
  // bound the WHOLE header read and the WHOLE response write.  0 disables
  // the bound (not recommended).
  std::uint64_t read_timeout_ms = 2000;
  std::uint64_t write_timeout_ms = 2000;
};

class HttpExporter {
 public:
  // Appends its text to the /metrics body; called on the listener thread,
  // must be safe to run concurrently with whatever it snapshots.
  using TextSource = std::function<void(std::string&)>;

  explicit HttpExporter(HttpExporterConfig cfg = {});
  ~HttpExporter();  // stops if still running

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  // Sources render in registration order.  Register before start().
  void add_source(TextSource source);
  // Convenience: the registry's full Prometheus rendering as a source.
  void add_registry(const MetricsRegistry& registry);

  // Binds + listens + spawns the listener thread.  Throws std::runtime_error
  // (with errno text) when the address cannot be bound.  One-shot.
  void start();
  void stop();  // idempotent; joins the listener thread

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port (resolves port 0 after start()).
  std::uint16_t port() const { return port_; }

  // Total scrapes served (any path); test/ops visibility.
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  // Clients disconnected because they exhausted a read/write budget.
  std::uint64_t slow_client_aborts() const {
    return slow_aborts_.load(std::memory_order_relaxed);
  }

 private:
  void run();
  void serve_one(int client_fd);

  HttpExporterConfig cfg_;
  std::vector<TextSource> sources_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // stop() writes, the poll loop wakes
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> slow_aborts_{0};
  std::thread thread_;
};

}  // namespace vpm::telemetry
