#include "pattern/ruleset_gen.hpp"

#include <algorithm>
#include <string>

#include "pattern/attack_corpus.hpp"
#include "util/rng.hpp"

namespace vpm::pattern {

namespace {

// Long-pattern length model: a mixture peaking around 8-20 bytes with a tail
// to ~200, loosely following the Snort content-length histogram.
std::size_t draw_long_length(util::Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.45) return static_cast<std::size_t>(rng.between(5, 12));
  if (u < 0.80) return static_cast<std::size_t>(rng.between(13, 32));
  if (u < 0.95) return static_cast<std::size_t>(rng.between(33, 80));
  return static_cast<std::size_t>(rng.between(81, 200));
}

Group draw_group(util::Rng& rng, const RulesetConfig& cfg) {
  const double u = rng.uniform();
  if (u < cfg.http_fraction) return Group::http;
  if (u < cfg.http_fraction + cfg.generic_fraction) return Group::generic;
  const double rest = rng.uniform();
  if (rest < 0.40) return Group::dns;
  if (rest < 0.70) return Group::ftp;
  return Group::smtp;
}

bool is_all_text(const util::Bytes& b) {
  return std::all_of(b.begin(), b.end(),
                     [](std::uint8_t c) { return c >= 0x20 && c < 0x7F; });
}

// Builds a long text pattern by sampling corpus strings and mutating: pick a
// base attack string, then extend/trim/splice until the target length is hit.
// The shared prefixes across derived patterns give the realistic clustering
// of 2-byte prefixes that the direct filters key off.
util::Bytes make_long_text(util::Rng& rng, std::size_t target_len) {
  const auto corpus = attack_strings();
  const auto vocab = http_vocabulary();
  std::string s{rng.pick(corpus)};
  while (s.size() < target_len) {
    switch (rng.below(4)) {
      case 0: s += rng.pick(corpus); break;
      case 1: s += rng.pick(vocab); break;
      case 2: {  // parameter-like filler
        s += rng.chance(0.5) ? "/" : "&";
        const std::size_t n = static_cast<std::size_t>(rng.between(2, 10));
        for (std::size_t i = 0; i < n; ++i) s += rng.alnum();
        break;
      }
      default: {  // numeric suffix (version-like)
        s += std::to_string(rng.below(10000));
        break;
      }
    }
  }
  s.resize(target_len);
  // Unconditional point mutation: signatures describe *attack* payloads, so
  // a truncated benign corpus string must not survive verbatim — otherwise
  // long patterns fire on benign traffic at unrealistic rates (real rules
  // match benign streams almost never; the frequent natural matches come
  // from the SHORT protocol tokens, which is the paper's premise).  The
  // mutation stays clear of the first four bytes: real rulesets share a
  // limited set of content prefixes (paths, verbs, markers), and that prefix
  // clustering is what keeps the direct filters' occupancy low.
  s[4 + rng.below(s.size() - 4)] = rng.alnum();
  return util::to_bytes(s);
}

util::Bytes make_binary(util::Rng& rng, std::size_t target_len) {
  util::Bytes b(target_len);
  // Shellcode-ish: runs of NOP-like bytes plus random payload.
  for (std::size_t i = 0; i < target_len; ++i) {
    b[i] = rng.chance(0.25) ? 0x90 : rng.byte();
  }
  return b;
}

// Short-length model mirroring Snort's content-length histogram within the
// 1-4 byte class: 1-2 byte contents are rare and overwhelmingly binary
// (|00|, |90 90| style); 3-4 byte contents dominate and include the
// protocol tokens (GET, HTTP) the paper highlights.
std::size_t draw_short_length(util::Rng& rng) {
  const double u = rng.uniform();
  if (u < 0.02) return 1;
  if (u < 0.12) return 2;
  if (u < 0.45) return 3;
  return 4;
}

util::Bytes make_short(util::Rng& rng, std::size_t len) {
  if (len <= 2) {
    // Binary markers: NULs, NOP sleds, IAC bytes — strings that essentially
    // never occur in text traffic.
    static constexpr std::uint8_t kMarkers[] = {0x00, 0x90, 0xFF, 0xCC, 0x0B, 0xBE, 0xEF, 0x7F};
    util::Bytes b(len);
    for (auto& c : b) c = kMarkers[rng.below(std::size(kMarkers))];
    return b;
  }
  const auto tokens = short_tokens();
  if (rng.chance(0.55)) {
    const std::string_view t = rng.pick(tokens);
    if (t.size() >= 3 && t.size() <= len) {
      // Use the token as-is when it fits the drawn length class.
      return util::to_bytes(t);
    }
  }
  util::Bytes b(len);
  for (auto& c : b) c = static_cast<std::uint8_t>(rng.chance(0.8) ? rng.alnum() : rng.byte());
  return b;
}

}  // namespace

RulesetConfig s1_config(std::uint64_t seed) {
  RulesetConfig cfg;
  cfg.count = 2500;
  cfg.seed = seed;
  cfg.http_fraction = 0.55;
  cfg.generic_fraction = 0.25;  // web subset ~80% -> ~2K patterns
  return cfg;
}

RulesetConfig s2_config(std::uint64_t seed) {
  RulesetConfig cfg;
  cfg.count = 20000;
  cfg.seed = seed;
  cfg.http_fraction = 0.25;
  cfg.generic_fraction = 0.20;  // web subset ~45% -> ~9K patterns
  return cfg;
}

PatternSet generate_ruleset(const RulesetConfig& cfg) {
  PatternSet set;
  util::Rng rng(cfg.seed);
  std::size_t attempts = 0;
  const std::size_t max_attempts = cfg.count * 64 + 4096;
  while (set.size() < cfg.count && attempts++ < max_attempts) {
    util::Bytes bytes;
    if (rng.chance(cfg.short_fraction)) {
      bytes = make_short(rng, draw_short_length(rng));
    } else if (rng.chance(cfg.binary_fraction)) {
      bytes = make_binary(rng, draw_long_length(rng));
    } else {
      bytes = make_long_text(rng, draw_long_length(rng));
    }
    const bool nocase = is_all_text(bytes) && rng.chance(cfg.nocase_fraction);
    const std::size_t before = set.size();
    set.add(std::move(bytes), nocase, draw_group(rng, cfg));
    (void)before;  // duplicates simply do not grow the set; loop retries
  }
  return set;
}

}  // namespace vpm::pattern
