// Parser for Snort-style rule files.
//
// The paper builds its pattern sets from the `content:` options of Snort
// 2.9.7 and ET-Open rulesets.  This parser extracts those contents —
// including `|48 65 78|` hex escapes and the `nocase` modifier — and maps the
// rule header's protocol/port to a pattern Group, so any real ruleset file
// drops into the benchmarks unchanged.  A synthetic generator with matched
// statistics (ruleset_gen.hpp) substitutes when no ruleset file is available.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "pattern/pattern_set.hpp"

namespace vpm::pattern {

struct ParsedContent {
  util::Bytes bytes;
  bool nocase = false;
};

struct ParsedRule {
  Group group = Group::generic;
  std::vector<ParsedContent> contents;
  std::string msg;
};

// How rules with several content options are turned into patterns.
enum class ContentSelection {
  kLongestOnly,  // one pattern per rule: its longest content (Snort's MPSE choice)
  kAll,          // every content becomes a pattern
};

// Parses one rule line. Returns false for blank lines, comments and rules
// without any content option. Throws std::invalid_argument on malformed
// content strings (unterminated quote / bad hex).
bool parse_rule_line(std::string_view line, ParsedRule& out);

// Parses a whole rules file content (not path). Malformed lines are skipped
// and counted in `skipped` when non-null.
std::vector<ParsedRule> parse_rules(std::string_view text, std::size_t* skipped = nullptr);

// Convenience: parse text and load the selected contents into a PatternSet.
PatternSet patterns_from_rules(std::string_view text,
                               ContentSelection selection = ContentSelection::kLongestOnly);

// Renders a PatternSet back to a rules-file-like text (round-trip aid for
// tests and for exporting generated rulesets).
std::string render_rules(const PatternSet& set);

}  // namespace vpm::pattern
