#include "pattern/snort_rules.hpp"

#include <cctype>
#include <stdexcept>

namespace vpm::pattern {

namespace {

// Defensive ceilings for attacker-supplied rule text.  Real Snort contents
// are tens of bytes; real rule lines are a few hundred.  Anything past these
// is crafted or corrupt, and a parse_rules caller sees it as one counted bad
// line instead of an unbounded allocation.
constexpr std::size_t kMaxContentBytes = 64 * 1024;
constexpr std::size_t kMaxRuleLineBytes = 1 << 20;

bool is_hex_digit(char c) { return std::isxdigit(static_cast<unsigned char>(c)) != 0; }

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return c - 'A' + 10;
}

// Decodes a Snort content string body (between the quotes): literal bytes
// with |HH HH| hex runs and backslash escapes for \" \\ \; \|.
util::Bytes decode_content(std::string_view body) {
  util::Bytes out;
  bool in_hex = false;
  for (std::size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (in_hex) {
      if (c == '|') { in_hex = false; continue; }
      if (c == ' ' || c == '\t') continue;
      if (i + 1 >= body.size() || !is_hex_digit(c) || !is_hex_digit(body[i + 1])) {
        throw std::invalid_argument("bad hex run in content");
      }
      out.push_back(static_cast<std::uint8_t>(hex_value(c) * 16 + hex_value(body[i + 1])));
      if (out.size() > kMaxContentBytes) {
        throw std::invalid_argument("content exceeds size limit");
      }
      ++i;
      continue;
    }
    if (c == '|') { in_hex = true; continue; }
    if (c == '\\') {
      if (i + 1 >= body.size()) throw std::invalid_argument("dangling backslash in content");
      out.push_back(static_cast<std::uint8_t>(body[++i]));
      continue;
    }
    out.push_back(static_cast<std::uint8_t>(c));
    if (out.size() > kMaxContentBytes) {
      throw std::invalid_argument("content exceeds size limit");
    }
  }
  if (in_hex) throw std::invalid_argument("unterminated hex run in content");
  if (out.empty()) throw std::invalid_argument("empty content");
  return out;
}

// Maps the rule header (protocol + destination port) to a Group; mirrors how
// Snort assigns rules to port groups before pattern matching.
Group classify_header(std::string_view header) {
  auto contains = [&](std::string_view needle) {
    return header.find(needle) != std::string_view::npos;
  };
  if (contains("$HTTP_PORTS") || contains(" 80 ") || contains(":80 ") || contains(" 8080 "))
    return Group::http;
  if (contains(" 53 ")) return Group::dns;
  if (contains(" 21 ")) return Group::ftp;
  if (contains(" 25 ") || contains("$SMTP_PORTS")) return Group::smtp;
  return Group::generic;
}

}  // namespace

bool parse_rule_line(std::string_view line, ParsedRule& out) {
  if (line.size() > kMaxRuleLineBytes) {
    throw std::invalid_argument("rule line exceeds size limit");
  }
  // Strip leading whitespace.
  std::size_t begin = line.find_first_not_of(" \t\r\n");
  if (begin == std::string_view::npos) return false;
  line = line.substr(begin);
  if (line.empty() || line[0] == '#') return false;

  const std::size_t open = line.find('(');
  const std::size_t close = line.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos || close <= open)
    return false;

  out = ParsedRule{};
  out.group = classify_header(line.substr(0, open));
  std::string_view opts = line.substr(open + 1, close - open - 1);

  // Walk options; handle quotes so ';' inside content strings is not a split.
  std::size_t i = 0;
  while (i < opts.size()) {
    // option name
    std::size_t name_end = i;
    while (name_end < opts.size() && opts[name_end] != ':' && opts[name_end] != ';') ++name_end;
    std::string_view name = opts.substr(i, name_end - i);
    // trim
    while (!name.empty() && (name.front() == ' ' || name.front() == '\t')) name.remove_prefix(1);
    while (!name.empty() && (name.back() == ' ' || name.back() == '\t')) name.remove_suffix(1);

    std::string_view value;
    std::size_t next;
    if (name_end < opts.size() && opts[name_end] == ':') {
      // scan value until unquoted ';'
      std::size_t v = name_end + 1;
      bool quoted = false;
      std::size_t j = v;
      for (; j < opts.size(); ++j) {
        const char c = opts[j];
        if (c == '\\' && quoted && j + 1 < opts.size()) { ++j; continue; }
        if (c == '"') quoted = !quoted;
        else if (c == ';' && !quoted) break;
      }
      value = opts.substr(v, j - v);
      next = (j < opts.size()) ? j + 1 : j;
    } else {
      next = (name_end < opts.size()) ? name_end + 1 : name_end;
    }

    if (name == "content") {
      std::size_t q1 = value.find('"');
      std::size_t q2 = value.rfind('"');
      if (q1 == std::string_view::npos || q2 <= q1)
        throw std::invalid_argument("content without quoted string");
      bool negated = false;
      for (std::size_t k = 0; k < q1; ++k)
        if (value[k] == '!') negated = true;
      if (!negated) {
        out.contents.push_back({decode_content(value.substr(q1 + 1, q2 - q1 - 1)), false});
      }
    } else if (name == "nocase") {
      if (!out.contents.empty()) out.contents.back().nocase = true;
    } else if (name == "msg") {
      std::size_t q1 = value.find('"');
      std::size_t q2 = value.rfind('"');
      if (q1 != std::string_view::npos && q2 > q1)
        out.msg = std::string(value.substr(q1 + 1, q2 - q1 - 1));
    }
    i = next;
  }
  return !out.contents.empty();
}

std::vector<ParsedRule> parse_rules(std::string_view text, std::size_t* skipped) {
  std::vector<ParsedRule> rules;
  std::size_t bad = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ParsedRule rule;
    try {
      if (parse_rule_line(line, rule)) rules.push_back(std::move(rule));
    } catch (const std::invalid_argument&) {
      ++bad;
    }
    if (eol == text.size()) break;
  }
  if (skipped) *skipped = bad;
  return rules;
}

PatternSet patterns_from_rules(std::string_view text, ContentSelection selection) {
  PatternSet set;
  for (const ParsedRule& rule : parse_rules(text)) {
    if (selection == ContentSelection::kAll) {
      for (const ParsedContent& c : rule.contents) set.add(c.bytes, c.nocase, rule.group);
    } else {
      const ParsedContent* longest = &rule.contents.front();
      for (const ParsedContent& c : rule.contents) {
        if (c.bytes.size() > longest->bytes.size()) longest = &c;
      }
      set.add(longest->bytes, longest->nocase, rule.group);
    }
  }
  return set;
}

std::string render_rules(const PatternSet& set) {
  std::string out;
  for (const Pattern& p : set) {
    out += "alert tcp any any -> any ";
    switch (p.group) {
      case Group::http: out += "$HTTP_PORTS "; break;
      case Group::dns: out += "53 "; break;
      case Group::ftp: out += "21 "; break;
      case Group::smtp: out += "25 "; break;
      default: out += "any "; break;
    }
    out += "(msg:\"vpm pattern ";
    out += std::to_string(p.id);
    out += "\"; content:\"";
    // Render as hex run for safety (always decodable).
    out += '|';
    static constexpr char kHex[] = "0123456789ABCDEF";
    for (std::size_t i = 0; i < p.bytes.size(); ++i) {
      if (i) out += ' ';
      out += kHex[p.bytes[i] >> 4];
      out += kHex[p.bytes[i] & 0xF];
    }
    out += "|\";";
    if (p.nocase) out += " nocase;";
    out += " sid:";
    out += std::to_string(1000000 + p.id);
    out += ";)\n";
  }
  return out;
}

}  // namespace vpm::pattern
