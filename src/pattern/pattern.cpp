#include "pattern/pattern.hpp"

namespace vpm::pattern {

std::string_view group_name(Group g) {
  switch (g) {
    case Group::generic: return "generic";
    case Group::http: return "http";
    case Group::dns: return "dns";
    case Group::ftp: return "ftp";
    case Group::smtp: return "smtp";
    case Group::count: break;
  }
  return "?";
}

}  // namespace vpm::pattern
