// Synthetic ruleset generation — the stand-in for Snort S1 / ET-Open S2.
//
// Reproduces the statistics the paper's experiments depend on:
//   * set size (2.5 K for S1, 20 K for S2);
//   * 21 % of patterns with length 1-4 bytes (paper footnote 2);
//   * realistic prefix skew: patterns share protocol-token prefixes, so the
//     2-byte direct filters see clustered, not uniform, occupancy;
//   * a protocol-group mix chosen so the "web" subset (http + generic)
//     matches the paper's 2 K-of-S1 and 9 K-of-S2 working sets.
#pragma once

#include <cstdint>

#include "pattern/pattern_set.hpp"

namespace vpm::pattern {

struct RulesetConfig {
  std::size_t count = 2500;
  std::uint64_t seed = 1;
  // Fraction of patterns with length 1..4 (Snort 2.9.7 statistic).
  double short_fraction = 0.21;
  // Fraction of patterns that are raw binary (shellcode-like) rather than text.
  double binary_fraction = 0.10;
  // Fraction of text patterns marked nocase (Snort contents are often nocase).
  double nocase_fraction = 0.35;
  // Group mix: probability that a pattern lands in http / generic; the rest
  // spreads over dns/ftp/smtp. web = http + generic is what Fig. 4 uses.
  double http_fraction = 0.45;
  double generic_fraction = 0.35;
};

// S1-like: ~2.5 K patterns, web subset ~2 K.
RulesetConfig s1_config(std::uint64_t seed = 1);
// S2-like: ~20 K patterns, web subset ~9 K.
RulesetConfig s2_config(std::uint64_t seed = 2);

// Generates exactly cfg.count distinct patterns, deterministically from
// cfg.seed.
PatternSet generate_ruleset(const RulesetConfig& cfg);

}  // namespace vpm::pattern
