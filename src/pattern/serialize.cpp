#include "pattern/serialize.hpp"

#include <cstring>
#include <stdexcept>

namespace vpm::pattern {

namespace {

constexpr char kMagic[8] = {'V', 'P', 'M', 'D', 'B', '1', 0, 0};

void put_u32(util::Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

util::Bytes serialize_patterns(const PatternSet& set) {
  util::Bytes out;
  // Byte-wise append: the iterator-range insert of a char[] into the empty
  // vector trips GCC 12's -Wstringop-overflow false positive.
  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  put_u32(out, static_cast<std::uint32_t>(set.size()));
  for (const Pattern& p : set) {
    put_u32(out, static_cast<std::uint32_t>(p.size()));
    out.push_back(p.nocase ? 1 : 0);
    out.push_back(static_cast<std::uint8_t>(p.group));
    out.insert(out.end(), p.bytes.begin(), p.bytes.end());
  }
  return out;
}

PatternSet deserialize_patterns(util::ByteView data) {
  if (data.size() < 12 || std::memcmp(data.data(), kMagic, 8) != 0) {
    throw std::invalid_argument("pattern db: bad magic");
  }
  const std::uint32_t count = get_u32(data.data() + 8);
  PatternSet set;
  std::size_t off = 12;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (off + 6 > data.size()) throw std::invalid_argument("pattern db: truncated header");
    const std::uint32_t len = get_u32(data.data() + off);
    const std::uint8_t flags = data[off + 4];
    const std::uint8_t group = data[off + 5];
    off += 6;
    if (len == 0) throw std::invalid_argument("pattern db: empty pattern");
    if (flags > 1) throw std::invalid_argument("pattern db: unknown flags");
    if (group >= static_cast<std::uint8_t>(Group::count)) {
      throw std::invalid_argument("pattern db: invalid group");
    }
    if (off + len > data.size()) throw std::invalid_argument("pattern db: truncated bytes");
    set.add(util::Bytes(data.begin() + static_cast<long>(off),
                        data.begin() + static_cast<long>(off + len)),
            flags & 1, static_cast<Group>(group));
    off += len;
  }
  return set;
}

}  // namespace vpm::pattern
