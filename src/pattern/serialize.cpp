#include "pattern/serialize.hpp"

#include <cstring>
#include <stdexcept>

namespace vpm::pattern {

namespace {

constexpr char kMagicV1[8] = {'V', 'P', 'M', 'D', 'B', '1', 0, 0};
constexpr char kMagicV2[8] = {'V', 'P', 'M', 'D', 'B', '2', 0, 0};
// v2 preamble after the magic: version u32 | hint u8 | reserved u8[3] |
// fingerprint u64 | count u32.
constexpr std::size_t kV2HeaderSize = 8 + 4 + 1 + 3 + 8 + 4;

void put_u32(util::Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void put_u64(util::Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         static_cast<std::uint64_t>(get_u32(p + 4)) << 32;
}

void append_patterns(util::Bytes& out, const PatternSet& set) {
  put_u32(out, static_cast<std::uint32_t>(set.size()));
  for (const Pattern& p : set) {
    put_u32(out, static_cast<std::uint32_t>(p.size()));
    out.push_back(p.nocase ? 1 : 0);
    out.push_back(static_cast<std::uint8_t>(p.group));
    out.insert(out.end(), p.bytes.begin(), p.bytes.end());
  }
}

PatternSet parse_patterns(util::ByteView data, std::size_t off, std::uint32_t count,
                          std::size_t* consumed = nullptr) {
  if (off > data.size()) throw std::invalid_argument("pattern db: truncated header");
  // Plausibility gate before trusting `count`: every pattern costs at least
  // 7 bytes (6-byte entry header + 1 payload byte), so a count the remaining
  // bytes cannot possibly hold is a lie — reject it up front instead of
  // letting a crafted header drive a 4-billion-iteration loop (or a
  // proportional reserve) against a 30-byte file.
  if (count > (data.size() - off) / 7) {
    throw std::invalid_argument("pattern db: implausible pattern count");
  }
  PatternSet set;
  for (std::uint32_t i = 0; i < count; ++i) {
    // Subtraction-form bounds: off <= data.size() holds on entry to every
    // iteration, so neither comparison can overflow however `len` lies.
    if (data.size() - off < 6) throw std::invalid_argument("pattern db: truncated header");
    const std::uint32_t len = get_u32(data.data() + off);
    const std::uint8_t flags = data[off + 4];
    const std::uint8_t group = data[off + 5];
    off += 6;
    if (len == 0) throw std::invalid_argument("pattern db: empty pattern");
    if (flags > 1) throw std::invalid_argument("pattern db: unknown flags");
    if (group >= static_cast<std::uint8_t>(Group::count)) {
      throw std::invalid_argument("pattern db: invalid group");
    }
    if (len > data.size() - off) throw std::invalid_argument("pattern db: truncated bytes");
    set.add(util::Bytes(data.begin() + static_cast<long>(off),
                        data.begin() + static_cast<long>(off + len)),
            flags & 1, static_cast<Group>(group));
    off += len;
  }
  if (consumed != nullptr) *consumed = off;
  return set;
}

}  // namespace

util::Bytes serialize_patterns(const PatternSet& set) {
  util::Bytes out;
  // Byte-wise append: the iterator-range insert of a char[] into the empty
  // vector trips GCC 12's -Wstringop-overflow false positive.
  for (const char c : kMagicV1) out.push_back(static_cast<std::uint8_t>(c));
  append_patterns(out, set);
  return out;
}

util::Bytes serialize_patterns(const PatternSet& set, const DbHeader& header) {
  util::Bytes out;
  for (const char c : kMagicV2) out.push_back(static_cast<std::uint8_t>(c));
  put_u32(out, 2);
  out.push_back(header.algorithm_hint);
  for (int i = 0; i < 3; ++i) out.push_back(0);  // reserved
  put_u64(out, header.fingerprint);
  append_patterns(out, set);
  return out;
}

PatternSet deserialize_patterns(util::ByteView data, DbHeader* header) {
  return deserialize_patterns(data, header, nullptr);
}

PatternSet deserialize_patterns(util::ByteView data, DbHeader* header,
                                std::size_t* consumed) {
  if (data.size() >= 8 && std::memcmp(data.data(), kMagicV1, 8) == 0) {
    if (data.size() < 12) throw std::invalid_argument("pattern db: truncated header");
    if (header != nullptr) *header = DbHeader{1, kNoAlgorithmHint, 0};
    return parse_patterns(data, 12, get_u32(data.data() + 8), consumed);
  }
  if (data.size() >= 8 && std::memcmp(data.data(), kMagicV2, 8) == 0) {
    if (data.size() < kV2HeaderSize) {
      throw std::invalid_argument("pattern db: truncated header");
    }
    const std::uint32_t version = get_u32(data.data() + 8);
    if (version != 2) throw std::invalid_argument("pattern db: unsupported version");
    if (header != nullptr) {
      header->version = version;
      header->algorithm_hint = data[12];
      header->fingerprint = get_u64(data.data() + 16);
    }
    return parse_patterns(data, kV2HeaderSize, get_u32(data.data() + 24), consumed);
  }
  throw std::invalid_argument("pattern db: bad magic");
}

}  // namespace vpm::pattern
