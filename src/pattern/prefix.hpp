// Pattern-prefix helpers for filter construction.
//
// All direct filters index on raw input bytes (no folding in the hot loop,
// matching the paper's Algorithm 1/2).  Case-insensitive patterns therefore
// insert every case variant of their prefix into the filters/tables: at most
// 2^k variants for a k-byte prefix, and only alphabetic bytes fork.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace vpm::pattern {

// Little-endian packed values of every case variant of `prefix` (1..4 bytes).
// For nocase == false, the single raw value.
std::vector<std::uint32_t> prefix_variants(util::ByteView prefix, bool nocase);

}  // namespace vpm::pattern
