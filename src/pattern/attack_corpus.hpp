// Embedded corpus of realistic signature strings.
//
// Substitute for the proprietary Snort / ET-Open rule contents: a few hundred
// strings drawn from the public space of web-attack indicators (SQLi / XSS
// fragments, traversal paths, exploit tool markers, protocol keywords,
// malware user-agents, shell commands, binary shellcode prefixes).  The
// ruleset generator samples and mutates these to reach the paper's set sizes
// while keeping the prefix skew and token realism that drive filter
// occupancy.
#pragma once

#include <span>
#include <string_view>

namespace vpm::pattern {

// Long-ish attack/protocol strings (>= 5 bytes).
std::span<const std::string_view> attack_strings();

// Short protocol tokens (1-4 bytes) — the `GET` / `HTTP`-class patterns the
// paper singles out as frequent natural matches in real traffic.
std::span<const std::string_view> short_tokens();

// HTTP header names / protocol vocabulary used both by the ruleset generator
// and by the traffic generator (shared vocabulary is what makes short
// patterns fire in "realistic" traffic, as in the paper's ISCX runs).
std::span<const std::string_view> http_vocabulary();

}  // namespace vpm::pattern
