// Binary pattern-database format.
//
// Rule sets are distributed and loaded far more often than they change; the
// binary format loads without re-parsing rule text and round-trips every
// pattern attribute (bytes, nocase, group) exactly.  Layout (little-endian):
//
//   magic "VPMDB1\0\0" (8 B) | pattern count u32 |
//   per pattern: length u32 | flags u8 (bit0 = nocase) | group u8 | bytes
#pragma once

#include "pattern/pattern_set.hpp"

namespace vpm::pattern {

util::Bytes serialize_patterns(const PatternSet& set);

// Throws std::invalid_argument on bad magic, truncation, or invalid fields.
PatternSet deserialize_patterns(util::ByteView data);

}  // namespace vpm::pattern
