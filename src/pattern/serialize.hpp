// Binary pattern-database format.
//
// Rule sets are distributed and loaded far more often than they change; the
// binary format loads without re-parsing rule text and round-trips every
// pattern attribute (bytes, nocase, group) exactly.  Two layouts
// (little-endian):
//
// v1 (legacy, still read and written by the header-less functions):
//   magic "VPMDB1\0\0" (8 B) | pattern count u32 |
//   per pattern: length u32 | flags u8 (bit0 = nocase) | group u8 | bytes
//
// v2 (the compiled-database interchange format, written when a DbHeader is
// supplied — vpm::Database::save_patterns uses this):
//   magic "VPMDB2\0\0" (8 B) | version u32 (= 2) |
//   algorithm_hint u8 (opaque engine id; kNoAlgorithmHint = absent) |
//   reserved u8[3] (zero) | fingerprint u64 (content hash; 0 = absent) |
//   pattern count u32 | per-pattern records as in v1
//
// The pattern layer treats the header fields as opaque payload: the
// algorithm hint is interpreted by the compile layer (core::Algorithm), and
// fingerprint verification happens in Database::from_serialized — which
// REQUIRES a matching nonzero fingerprint in v2 blobs, so writers other
// than Database::save_patterns should fill it via Database::fingerprint_of.
#pragma once

#include "pattern/pattern_set.hpp"

namespace vpm::pattern {

// algorithm_hint value meaning "no engine recorded".
inline constexpr std::uint8_t kNoAlgorithmHint = 0xFF;

// The v2 preamble carried alongside the pattern records.
struct DbHeader {
  std::uint32_t version = 2;
  std::uint8_t algorithm_hint = kNoAlgorithmHint;
  std::uint64_t fingerprint = 0;
};

// Writes the legacy v1 layout (no header) — byte-stable, pinned by the
// golden suite.
util::Bytes serialize_patterns(const PatternSet& set);

// Writes the v2 layout carrying `header` (header.version is forced to 2).
util::Bytes serialize_patterns(const PatternSet& set, const DbHeader& header);

// Reads either layout.  When `header` is non-null it receives the parsed
// preamble (v1 inputs yield {1, kNoAlgorithmHint, 0}).  Throws
// std::invalid_argument on bad magic, unsupported version, truncation, or
// invalid fields.
PatternSet deserialize_patterns(util::ByteView data, DbHeader* header = nullptr);

// As above, additionally reporting where the pattern records end:
// *consumed is the offset of the first byte after the last pattern record.
// The compile layer appends (and re-parses) trailing sections — the v2
// prefilter artifact — after that offset.
PatternSet deserialize_patterns(util::ByteView data, DbHeader* header,
                                std::size_t* consumed);

}  // namespace vpm::pattern
