#include "pattern/prefix.hpp"

#include <cassert>

namespace vpm::pattern {

std::vector<std::uint32_t> prefix_variants(util::ByteView prefix, bool nocase) {
  assert(prefix.size() >= 1 && prefix.size() <= 4);
  std::vector<std::uint32_t> values{0};
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    const std::uint8_t raw = prefix[i];
    const std::uint8_t lo = util::ascii_lower(raw);
    const std::uint8_t hi = util::ascii_upper(raw);
    const bool forks = nocase && lo != hi;
    const std::size_t n = values.size();
    if (forks) values.reserve(n * 2);
    for (std::size_t k = 0; k < n; ++k) {
      const std::uint32_t base = values[k];
      values[k] = base | (static_cast<std::uint32_t>(forks ? lo : raw) << (8 * i));
      if (forks) values.push_back(base | (static_cast<std::uint32_t>(hi) << (8 * i)));
    }
  }
  return values;
}

}  // namespace vpm::pattern
