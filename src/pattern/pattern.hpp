// Pattern model.
//
// A pattern is an exact byte string (possibly ASCII-case-insensitive, like
// Snort's `nocase` contents) with a dense integer id and a protocol group.
// Groups mirror how Snort organizes rules: traffic is only matched against
// the patterns relevant to its protocol plus the generic ones (paper §V-A).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.hpp"

namespace vpm::pattern {

enum class Group : std::uint8_t { generic = 0, http, dns, ftp, smtp, count };

std::string_view group_name(Group g);

struct Pattern {
  std::uint32_t id = 0;
  util::Bytes bytes;
  bool nocase = false;
  Group group = Group::generic;

  std::size_t size() const { return bytes.size(); }

  // True iff this pattern occurs in `data` starting at `pos`.
  bool matches_at(util::ByteView data, std::size_t pos) const {
    if (pos + bytes.size() > data.size()) return false;
    return util::bytes_equal(data.data() + pos, bytes.data(), bytes.size(), nocase);
  }

  std::string printable() const { return util::escape_bytes(bytes); }
};

}  // namespace vpm::pattern
