// PatternSet: the deduplicated collection handed to matcher builders.
//
// Provides the statistics the algorithms key off (short/long split at the
// S-PATCH 4-byte boundary), protocol-group filtering (the paper evaluates
// "web" = http + generic patterns), and deterministic random subsetting for
// the Fig. 5a pattern-count sweep.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "pattern/pattern.hpp"

namespace vpm::pattern {

// Patterns shorter than this belong to the "short" family (Filter 1 /
// A_short); patterns of at least this length to the "long" family.
inline constexpr std::size_t kShortLongBoundary = 4;

struct LengthStats {
  std::size_t total = 0;
  std::size_t short_family = 0;  // 1..3 bytes
  std::size_t long_family = 0;   // >= 4 bytes
  std::size_t min_len = 0;
  std::size_t max_len = 0;
  double mean_len = 0.0;
  // Snort footnote statistic from the paper: fraction with length 1..4.
  double frac_len_1_to_4 = 0.0;
};

class PatternSet {
 public:
  // Adds a pattern unless an identical (bytes, nocase) one exists; returns
  // the id of the stored pattern either way. Empty patterns are rejected.
  std::uint32_t add(util::Bytes bytes, bool nocase = false, Group group = Group::generic);
  std::uint32_t add(std::string_view text, bool nocase = false, Group group = Group::generic) {
    return add(util::to_bytes(text), nocase, group);
  }

  bool contains(util::ByteView bytes, bool nocase) const;

  const Pattern& operator[](std::uint32_t id) const { return patterns_[id]; }
  std::size_t size() const { return patterns_.size(); }
  bool empty() const { return patterns_.empty(); }
  const std::vector<Pattern>& patterns() const { return patterns_; }

  auto begin() const { return patterns_.begin(); }
  auto end() const { return patterns_.end(); }

  LengthStats length_stats() const;

  // Patterns whose group is in `groups` (ids are re-densified in the result).
  PatternSet filter_groups(std::initializer_list<Group> groups) const;
  // The paper's "web traffic patterns": http-specific plus generic ones.
  PatternSet web_patterns() const { return filter_groups({Group::http, Group::generic}); }

  // Deterministic random subset of n patterns (n clamped to size()).
  PatternSet random_subset(std::size_t n, std::uint64_t seed) const;

  std::size_t max_pattern_length() const;

 private:
  struct KeyHash {
    std::size_t operator()(const std::pair<util::Bytes, bool>& k) const;
  };
  std::vector<Pattern> patterns_;
  std::unordered_map<std::pair<util::Bytes, bool>, std::uint32_t, KeyHash> index_;
};

}  // namespace vpm::pattern
