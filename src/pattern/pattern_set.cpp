#include "pattern/pattern_set.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace vpm::pattern {

std::size_t PatternSet::KeyHash::operator()(const std::pair<util::Bytes, bool>& k) const {
  const std::uint32_t h = util::fnv1a(k.first.data(), k.first.size());
  return h * 2u + (k.second ? 1u : 0u);
}

std::uint32_t PatternSet::add(util::Bytes bytes, bool nocase, Group group) {
  if (bytes.empty()) throw std::invalid_argument("PatternSet::add: empty pattern");
  auto key = std::make_pair(bytes, nocase);
  if (auto it = index_.find(key); it != index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(patterns_.size());
  patterns_.push_back(Pattern{id, std::move(bytes), nocase, group});
  index_.emplace(std::move(key), id);
  return id;
}

bool PatternSet::contains(util::ByteView bytes, bool nocase) const {
  return index_.contains({util::Bytes(bytes.begin(), bytes.end()), nocase});
}

LengthStats PatternSet::length_stats() const {
  LengthStats s;
  s.total = patterns_.size();
  if (patterns_.empty()) return s;
  s.min_len = patterns_.front().size();
  std::size_t sum = 0;
  std::size_t len_1_to_4 = 0;
  for (const Pattern& p : patterns_) {
    const std::size_t n = p.size();
    sum += n;
    s.min_len = std::min(s.min_len, n);
    s.max_len = std::max(s.max_len, n);
    if (n < kShortLongBoundary) ++s.short_family; else ++s.long_family;
    if (n <= 4) ++len_1_to_4;
  }
  s.mean_len = static_cast<double>(sum) / static_cast<double>(s.total);
  s.frac_len_1_to_4 = static_cast<double>(len_1_to_4) / static_cast<double>(s.total);
  return s;
}

PatternSet PatternSet::filter_groups(std::initializer_list<Group> groups) const {
  PatternSet out;
  for (const Pattern& p : patterns_) {
    if (std::find(groups.begin(), groups.end(), p.group) != groups.end()) {
      out.add(p.bytes, p.nocase, p.group);
    }
  }
  return out;
}

PatternSet PatternSet::random_subset(std::size_t n, std::uint64_t seed) const {
  n = std::min(n, patterns_.size());
  std::vector<std::uint32_t> ids(patterns_.size());
  std::iota(ids.begin(), ids.end(), 0u);
  util::Rng rng(seed);
  // Fisher-Yates prefix shuffle: only the first n slots matter.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.below(ids.size() - i));
    std::swap(ids[i], ids[j]);
  }
  PatternSet out;
  for (std::size_t i = 0; i < n; ++i) {
    const Pattern& p = patterns_[ids[i]];
    out.add(p.bytes, p.nocase, p.group);
  }
  return out;
}

std::size_t PatternSet::max_pattern_length() const {
  std::size_t m = 0;
  for (const Pattern& p : patterns_) m = std::max(m, p.size());
  return m;
}

}  // namespace vpm::pattern
