#include "pattern/attack_corpus.hpp"

#include <array>

namespace vpm::pattern {

namespace {

constexpr std::string_view kAttackStrings[] = {
    // SQL injection fragments
    "UNION SELECT", "union all select", "' OR '1'='1", "\" OR \"\"=\"",
    "1=1--", "' OR 1=1#", "ORDER BY 1--", "GROUP BY CONCAT(",
    "information_schema.tables", "xp_cmdshell", "sp_executesql",
    "WAITFOR DELAY", "BENCHMARK(", "SLEEP(5)", "pg_sleep(", "EXTRACTVALUE(",
    "UPDATEXML(", "LOAD_FILE(", "INTO OUTFILE", "INTO DUMPFILE",
    "CAST(CHR(", "CHAR(0x", "0x3c736372697074", "/**/UNION/**/",
    "%27%20OR%20%271", "admin'--", "having 1=1", "select @@version",
    "UTL_HTTP.REQUEST", "DBMS_PIPE.RECEIVE_MESSAGE",
    // XSS fragments
    "<script>", "</script>", "<script>alert(", "javascript:alert(",
    "onerror=alert(", "onload=eval(", "onmouseover=", "document.cookie",
    "String.fromCharCode(", "<img src=x onerror=", "<svg/onload=",
    "eval(atob(", "<iframe src=", "expression(alert(", "vbscript:msgbox(",
    "%3Cscript%3E", "&#x3C;script&#x3E;", "<body onload=",
    // Path traversal / LFI / RFI
    "../../../../etc/passwd", "..%2f..%2f..%2f", "/etc/shadow",
    "/etc/passwd", "..\\..\\..\\windows\\", "boot.ini", "win.ini",
    "c:\\windows\\system32\\", "/proc/self/environ", "php://filter",
    "php://input", "data://text/plain", "expect://", "zip://",
    "%c0%af%c0%af", "....//....//", "/WEB-INF/web.xml", "/.git/config",
    "/.env", "wp-config.php", "/cgi-bin/", "/.htaccess", "/server-status",
    // Command injection / shells
    "/bin/sh", "/bin/bash -i", "cmd.exe /c", "powershell -enc",
    "powershell.exe -nop -w hidden", "nc -e /bin/sh", "bash -c 'exec",
    "wget http://", "curl -o /tmp/", "chmod 777 /tmp/", "rm -rf /",
    "| id;", "; cat /etc", "&& whoami", "$(curl ", "`wget ",
    "python -c 'import socket", "perl -e 'use Socket",
    "sh -i >& /dev/tcp/", "mkfifo /tmp/f;", "exec 5<>/dev/tcp/",
    // Webshell / backdoor markers
    "c99shell", "r57shell", "wso shell", "b374k", "eval($_POST[",
    "eval($_GET[", "assert($_REQUEST[", "base64_decode($_", "passthru(",
    "shell_exec(", "system($_", "preg_replace(\"/.*/e\"", "create_function(",
    "move_uploaded_file(", "FilesMan", "PHPShell", "antsword", "behinder",
    // Exploit kit / malware callbacks
    "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)", "sqlmap/1.",
    "Nikto/2.", "nessus", "masscan/1.", "zgrab/", "python-requests/",
    "Go-http-client/1.1", "ZmEu", "morfeus", "w00tw00t.at.ISC.SANS",
    "libwww-perl/", "Wget/1.", "MSIE 6.0; Windows 98", "DirBuster-",
    "gobuster/", "fuzz-agent", "Acunetix", "nmap scripting engine",
    // Protocol attack markers
    "SITE EXEC", "MKD AAAA", "USER anonymous", "PASS mozilla@",
    "RETR /etc/passwd", "EHLO localhost", "MAIL FROM:<", "RCPT TO:<",
    "VRFY root", "EXPN decode", "HELO evil.example", "STARTTLS\r\nEHLO",
    "TRACE / HTTP/1.1", "OPTIONS * HTTP/1.0", "CONNECT 127.0.0.1:25",
    "PROPFIND / HTTP/1.1", "SEARCH / HTTP/1.1", "Translate: f",
    // Known CVE-ish / overflow markers
    "AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA", "%u9090%u6858", "\x90\x90\x90\x90",
    "jmp esp", "\xcc\xcc\xcc\xcc", "METASPLOIT", "meterpreter",
    "/../../../../../../../../", "%252e%252e%252f", "${jndi:ldap://",
    "${jndi:rmi://", "() { :; };", "/bin/ping -c 4", "<%25=",
    "<?php @eval", "<?xml version=\"1.0\"?><!DOCTYPE foo [<!ENTITY",
    "<!ENTITY xxe SYSTEM", "file:///etc/passwd", "gopher://127.0.0.1",
    "dict://localhost:11211", "jndi:dns://", "org.apache.commons.collections",
    "java.lang.Runtime.getRuntime", "ObjectInputStream", "ysoserial",
    // Credential / recon strings
    "Authorization: Basic YWRtaW46YWRtaW4=", "X-Forwarded-For: 127.0.0.1",
    "Cookie: PHPSESSID=deadbeef", "passwd=admin&login=", "uid=0(root)",
    "root:x:0:0:root", "SELECT password FROM users", "net user administrator",
    "cat ~/.ssh/id_rsa", "ssh-rsa AAAAB3NzaC1yc2E", "BEGIN RSA PRIVATE KEY",
    "smb://", "\\\\evil\\share\\payload.dll", "rundll32.exe javascript:",
    "regsvr32 /s /u /i:http://", "mshta http://", "certutil -urlcache -split",
    "bitsadmin /transfer", "schtasks /create /tn", "wmic process call create",
    // DNS / tunneling markers
    "dnscat2", "iodine-tunnel", "0x20-encoded-query", "burpcollaborator.net",
    "oastify.com", "interact.sh", "requestbin.net", "xip.io",
    // Crypto-miner / botnet strings
    "stratum+tcp://", "xmrig", "minerd -a cryptonight", "mirai.arm7",
    "/bins/busybox", "POST /ctrlt/DeviceUpgrade_1", "/GponForm/diag_Form",
    "XWebPageName=diag&diag_action=ping", "/shell?cd+/tmp",
    "/picsdesc.xml", "/wanipcn.xml", "loligang.x86", "kaiten.c",
};

constexpr std::string_view kShortTokens[] = {
    "GET", "POST", "HEAD", "PUT", "HTTP", "EHLO", "HELO", "USER", "PASS",
    "RETR", "STOR", "QUIT", "AUTH", "STAT", "LIST", "MKD", "DELE", "NOOP",
    "PORT", "PASV", "TYPE", "MODE", "cmd", "exe", "dll", "php", "asp",
    "jsp", "cgi", "sh", "pl", "py", "js", "%00", "%0a", "%0d", "\\x90",
    "|00|", "../", "..\\", "', '", "\"/>", "<%", "%>", "();", "&&", "||",
    "#!", "$(", "`", "--", ";--", "/*", "*/", "@@", "0x",
};

constexpr std::string_view kHttpVocabulary[] = {
    "GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS", "HTTP/1.1", "HTTP/1.0",
    "Host", "User-Agent", "Accept", "Accept-Language", "Accept-Encoding",
    "Connection", "keep-alive", "close", "Content-Type", "Content-Length",
    "Cookie", "Set-Cookie", "Referer", "Cache-Control", "no-cache",
    "Pragma", "If-Modified-Since", "ETag", "Last-Modified", "Server",
    "Apache", "nginx", "Microsoft-IIS", "X-Powered-By", "PHP", "ASP.NET",
    "text/html", "text/plain", "application/json", "application/xml",
    "application/x-www-form-urlencoded", "multipart/form-data",
    "image/png", "image/jpeg", "gzip, deflate", "charset=utf-8",
    "Mozilla/5.0", "Windows NT 10.0", "Macintosh; Intel Mac OS X",
    "AppleWebKit/537.36", "Chrome/91.0", "Safari/537.36", "Firefox/89.0",
    "Gecko/20100101", "Transfer-Encoding", "chunked", "Location",
    "Authorization", "Bearer", "Basic", "X-Requested-With", "XMLHttpRequest",
};

}  // namespace

std::span<const std::string_view> attack_strings() { return kAttackStrings; }
std::span<const std::string_view> short_tokens() { return kShortTokens; }
std::span<const std::string_view> http_vocabulary() { return kHttpVocabulary; }

}  // namespace vpm::pattern
