// Figure 6 (a/b/c): the filtering round in isolation — scalar S-PATCH
// filtering vs V-PATCH filtering with candidate stores vs V-PATCH filtering
// with the stores removed, across the three realistic traces and the 2 K /
// 9 K / 20 K pattern sets.  This is where the raw vectorization gain (up to
// ~2.8x in the paper) shows before Amdahl's law dilutes it.
//
//   fig6_filtering_only [--mb=N] [--runs=N] [--seed=N] [--quick]
#include <cstdio>
#include <memory>

#include "common.hpp"
#include "core/spatch.hpp"
#include "core/vpatch.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace vpm::bench {
namespace {

template <typename F>
double measure_gbps(std::size_t bytes, unsigned runs, F&& body) {
  body();  // warm-up
  util::RunningStats stats;
  for (unsigned r = 0; r < runs; ++r) {
    util::Timer timer;
    body();
    stats.add(util::gbps(bytes, timer.seconds()));
  }
  return stats.mean();
}

void run_set(const char* label, const pattern::PatternSet& set,
             const std::vector<Workload>& workloads, const Options& opt,
             JsonReport& report) {
  std::printf("\n=== Fig 6 (%s): %zu patterns, filtering round only ===\n", label, set.size());
  const std::vector<int> widths{14, 26, 12, 12};
  print_row({"trace", "variant", "Gbps", "vs-scalar"}, widths);

  const core::SpatchMatcher spatch(set);
  // The paper's Fig. 6 platform is Haswell (W=8); the W=16 rows show the
  // wide-vector scaling on AVX-512 hosts.
  std::vector<std::unique_ptr<core::VpatchMatcher>> vectors;
  if (core::isa_supported(core::Isa::avx2)) {
    core::VpatchConfig cfg;
    cfg.isa = core::Isa::avx2;
    vectors.push_back(std::make_unique<core::VpatchMatcher>(set, cfg));
  }
  if (core::isa_supported(core::Isa::avx512)) {
    core::VpatchConfig cfg;
    cfg.isa = core::Isa::avx512;
    vectors.push_back(std::make_unique<core::VpatchMatcher>(set, cfg));
  }

  // Caller-owned scratch: the measured loops reuse candidate buffers rather
  // than re-allocating them every filter_only call.
  ScanScratch scratch;
  for (const Workload& w : workloads) {
    if (w.name == "random") continue;  // Fig. 6 uses the realistic traces
    volatile std::uint64_t guard = 0;  // keep the no-store variant honest
    const double scalar = measure_gbps(w.trace.size(), opt.runs, [&] {
      const auto r = spatch.filter_only(w.trace, true);
      guard = guard + r.short_candidates + r.long_candidates;
    });
    print_row({w.name, "S-PATCH-filtering", fmt(scalar), "1.00"}, widths);
    report.add({{"set", label}, {"workload", w.name}, {"variant", "S-PATCH-filtering"}},
               {{"gbps", scalar}});
    for (const auto& vpatch : vectors) {
      const std::string tag(vpatch->name());
      const double vec_stores = measure_gbps(w.trace.size(), opt.runs, [&] {
        const auto r = vpatch->filter_only(w.trace, true, scratch);
        guard = guard + r.short_candidates + r.long_candidates;
      });
      const double vec_nostores = measure_gbps(w.trace.size(), opt.runs, [&] {
        const auto r = vpatch->filter_only(w.trace, false, scratch);
        guard = guard + r.short_candidates + r.long_candidates;
      });
      print_row({w.name, tag + "-filtering+stores", fmt(vec_stores), fmt(vec_stores / scalar)},
                widths);
      print_row({w.name, tag + "-filtering", fmt(vec_nostores), fmt(vec_nostores / scalar)},
                widths);
      report.add({{"set", label}, {"workload", w.name}, {"variant", tag + "-filtering+stores"}},
                 {{"gbps", vec_stores}});
      report.add({{"set", label}, {"workload", w.name}, {"variant", tag + "-filtering"}},
                 {{"gbps", vec_nostores}});
    }
  }
}

int main_impl(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const auto workloads = paper_workloads(opt);
  JsonReport report("fig6_filtering_only", opt);
  run_set("a: S1 web 2K", s1_web_patterns(opt.seed), workloads, opt, report);
  run_set("b: S2 web 9K", s2_web_patterns(opt.seed + 1), workloads, opt, report);
  run_set("c: full 20K", s2_full_patterns(opt.seed + 1), workloads, opt, report);
  return report.write() ? 0 : 1;
}

}  // namespace
}  // namespace vpm::bench

int main(int argc, char** argv) { return vpm::bench::main_impl(argc, argv); }
