// The approximate-prefilter trade: at low match fractions most payloads are
// rejected by the cheap q-gram screen and never reach the exact engine
// (throughput multiplies); at fraction 1.0 the screen is pure overhead and
// `auto` must stand down to keep the regression bounded.  Sweeps ruleset
// scale (S1/S2 heavy groups, gated at >= 8 bytes so the consecutive-window
// threshold is strong) x trace flavor x payload size x planted match
// fraction x mode, and reports measured throughput, pass ratio,
// false-positive rate, and — hard contract — zero false negatives (the
// screened path must find every match the unscreened path finds).
//
// The trace flavor matters more than anything else here: HTTP-heavy text
// shares 4-gram vocabulary with web rulesets, so the screen passes most
// text payloads (and `auto` must notice and stand down), while binary-ish
// traffic (the random trace: encrypted/compressed payloads) rejects almost
// everything and multiplies throughput.
//
//   bench_prefilter [--mb=N] [--runs=N] [--seed=N] [--quick] [--json=FILE]
#include <algorithm>
#include <cstdio>
#include <iterator>
#include <vector>

#include "common.hpp"
#include "core/prefilter.hpp"
#include "traffic/trace.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace vpm::bench {
namespace {

struct CountingBatchSink final : BatchSink {
  std::uint64_t matches = 0;
  void on_match(std::uint32_t, const Match&) override { ++matches; }
};

// Heavy-group gating: keep only the long patterns (>= min_len bytes) of a
// web ruleset, re-homed into the http group.  Short patterns would clamp the
// screen's consecutive-window threshold to 1 and let almost everything pass;
// real deployments would leave them to the exact engine's short family.
pattern::PatternSet gate_long(const pattern::PatternSet& src, std::size_t min_len) {
  pattern::PatternSet out;
  for (const auto& p : src.patterns()) {
    if (p.bytes.size() >= min_len) out.add(p.bytes, p.nocase, pattern::Group::http);
  }
  return out;
}

struct ModeResult {
  util::RunningStats gbps;
  std::uint64_t matches = 0;
  std::uint64_t pass_payloads = 0;
  std::uint64_t reject_payloads = 0;
};

constexpr std::size_t kBatch = 32;
// The engine's PrefilterMode::automatic policy constants (ids/engine.hpp):
// sample the pass ratio over 64-payload windows; a window passing more than
// half bypasses the screen for the next 31 windows.
constexpr std::uint32_t kAutoSampleWindow = 64;
constexpr std::uint32_t kAutoBypassPayloads = 31 * 64;

// One timed pass over all payloads in `mode`: batches of 32 through the
// screen (per mode policy), survivors to the exact engine's batch path.
void one_pass(const Matcher& matcher, const core::Prefilter& pf,
              core::PrefilterMode mode, std::span<const util::ByteView> views,
              std::size_t bytes, bool record, ScanScratch& scan_scratch,
              ScanScratch& screen_scratch, std::vector<std::uint8_t>& verdicts,
              std::vector<util::ByteView>& passed, ModeResult& result) {
  CountingBatchSink sink;
  std::uint64_t pass = 0, reject = 0;
  std::uint32_t sampled = 0, sampled_pass = 0, bypass = 0;
  util::Timer timer;
  for (std::size_t begin = 0; begin < views.size(); begin += kBatch) {
    const std::size_t count = std::min(kBatch, views.size() - begin);
    const std::span<const util::ByteView> batch{views.data() + begin, count};
    bool screen = mode != core::PrefilterMode::off;
    if (screen && mode == core::PrefilterMode::automatic && bypass > 0) {
      bypass -= static_cast<std::uint32_t>(std::min<std::size_t>(bypass, batch.size()));
      screen = false;
    }
    if (!screen) {
      matcher.scan_batch(batch, sink, scan_scratch);
      continue;
    }
    pf.screen_batch(batch, verdicts.data(), screen_scratch);
    passed.clear();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (verdicts[i] != 0) passed.push_back(batch[i]);
    }
    pass += passed.size();
    reject += batch.size() - passed.size();
    if (mode == core::PrefilterMode::automatic) {
      sampled += static_cast<std::uint32_t>(batch.size());
      sampled_pass += static_cast<std::uint32_t>(passed.size());
      if (sampled >= kAutoSampleWindow) {
        if (sampled_pass * 2 > sampled) bypass = kAutoBypassPayloads;
        sampled = 0;
        sampled_pass = 0;
      }
    }
    if (!passed.empty()) matcher.scan_batch(passed, sink, scan_scratch);
  }
  const double secs = timer.seconds();
  if (record) {
    result.gbps.add(util::gbps(bytes, secs));
    result.matches = sink.matches;
    result.pass_payloads = pass;
    result.reject_payloads = reject;
  }
}

int run_set(const char* label, const pattern::PatternSet& rules,
            traffic::TraceKind kind, core::Algorithm algo, const Options& opt,
            JsonReport& report) {
  const auto matcher = core::make_matcher(algo, rules);
  const auto pf = core::build_prefilter(rules);
  if (pf == nullptr) {
    std::fprintf(stderr, "prefilter failed to build for %s\n", label);
    return 1;
  }
  const std::string trace_name(traffic::trace_kind_name(kind));

  std::printf("\n=== Prefilter (%s, %s trace): %zu patterns, q=%u threshold=%u "
              "%zu KB signature, exact engine %s ===\n",
              label, trace_name.c_str(), rules.size(), pf->q(), pf->threshold(),
              pf->memory_bytes() >> 10, std::string(matcher->name()).c_str());
  const std::vector<int> widths{9, 10, 8, 11, 11, 9, 9, 9};
  print_row({"payload", "fraction", "mode", "Gbps", "speedup", "pass-%", "fp-%",
             "matches"},
            widths);

  constexpr core::PrefilterMode kModes[] = {
      core::PrefilterMode::off, core::PrefilterMode::on,
      core::PrefilterMode::automatic};

  for (std::size_t payload : {std::size_t{256}, std::size_t{1500}}) {
    for (double fraction : {0.0, 0.01, 0.1, 1.0}) {
      // A fresh trace per cell (planting mutates it), sliced into payloads;
      // every k-th slice gets a verbatim pattern occurrence planted.
      util::Bytes trace =
          traffic::generate_trace(kind, opt.trace_mb << 20, opt.seed + 30);
      std::vector<util::ByteView> views;
      for (std::size_t off = 0; off + payload <= trace.size(); off += payload) {
        views.emplace_back(trace.data() + off, payload);
      }
      util::Rng rng(opt.seed + payload * 1000 +
                    static_cast<std::uint64_t>(fraction * 100));
      if (fraction > 0.0) {
        const std::size_t stride = static_cast<std::size_t>(1.0 / fraction);
        for (std::size_t i = 0; i < views.size(); i += stride) {
          const auto& pat = rules.patterns()[rng.below(rules.size())];
          if (pat.bytes.size() > payload) continue;
          const std::size_t pos = rng.below(payload - pat.bytes.size() + 1);
          std::copy(pat.bytes.begin(), pat.bytes.end(),
                    trace.begin() + static_cast<std::ptrdiff_t>(i * payload + pos));
        }
      }
      // Ground truth for the false-positive rate: which payloads actually
      // contain a match (planted or natural trace bytes).
      std::uint64_t matching_payloads = 0;
      for (const util::ByteView& v : views) {
        if (matcher->count_matches(v) > 0) ++matching_payloads;
      }

      // Interleaved measurement: every run times all three modes back to
      // back so machine-state drift cancels out of the speedup ratios.
      const std::size_t bytes = views.size() * payload;
      ScanScratch scan_scratch, screen_scratch;
      std::vector<std::uint8_t> verdicts(kBatch);
      std::vector<util::ByteView> passed;
      passed.reserve(kBatch);
      ModeResult results[std::size(kModes)];
      for (unsigned r = 0; r <= opt.runs; ++r) {  // run 0 is the warm-up
        for (std::size_t mi = 0; mi < std::size(kModes); ++mi) {
          one_pass(*matcher, *pf, kModes[mi], views, bytes, r > 0, scan_scratch,
                   screen_scratch, verdicts, passed, results[mi]);
        }
      }

      const ModeResult& off = results[0];
      for (std::size_t mi = 0; mi < std::size(kModes); ++mi) {
        const ModeResult& res = results[mi];
        const std::string mode(core::prefilter_mode_name(kModes[mi]));
        // The hard exactness contract: the screen may only ever add work
        // (false positives), never hide a match.
        if (res.matches != off.matches) {
          std::fprintf(stderr,
                       "FALSE NEGATIVES: %s %s payload=%zu fraction=%.2f: "
                       "%llu matches vs %llu unscreened\n",
                       label, mode.c_str(), payload, fraction,
                       static_cast<unsigned long long>(res.matches),
                       static_cast<unsigned long long>(off.matches));
          return 1;
        }
        const std::uint64_t screened = res.pass_payloads + res.reject_payloads;
        const double pass_ratio =
            screened > 0 ? static_cast<double>(res.pass_payloads) / screened : 0.0;
        // False positives only exist among screened payloads with no match;
        // with `auto` bypassing, screened true-matchers are not separable
        // from bypassed ones, so fp_rate is reported for full screening only.
        double fp_rate = 0.0;
        if (screened == views.size() && views.size() > matching_payloads) {
          const std::uint64_t fp = res.pass_payloads >= matching_payloads
                                       ? res.pass_payloads - matching_payloads
                                       : 0;
          fp_rate = static_cast<double>(fp) /
                    static_cast<double>(views.size() - matching_payloads);
        }
        const double speedup =
            off.gbps.mean() > 0 ? res.gbps.mean() / off.gbps.mean() : 0.0;
        print_row({std::to_string(payload), fmt(fraction, 2), mode,
                   fmt(res.gbps.mean()), fmt(speedup), fmt(pass_ratio * 100, 1),
                   fmt(fp_rate * 100, 2), std::to_string(res.matches)},
                  widths);
        report.add({{"set", label},
                    {"trace", trace_name},
                    {"mode", mode},
                    {"algorithm", std::string(core::algorithm_name(algo))}},
                   {{"gbps", res.gbps.mean()},
                    {"gbps_stddev", res.gbps.stddev()},
                    {"speedup_vs_off", speedup},
                    {"pass_ratio", pass_ratio},
                    {"fp_rate", fp_rate},
                    {"match_fraction", fraction}},
                   {{"payload_bytes", payload},
                    {"matches", res.matches},
                    {"matching_payloads", matching_payloads},
                    {"payloads", views.size()},
                    {"pass_payloads", res.pass_payloads},
                    {"reject_payloads", res.reject_payloads},
                    {"false_negatives", 0},
                    {"q", pf->q()},
                    {"threshold", pf->threshold()},
                    {"bits_log2", pf->bits_log2()},
                    {"signature_kb", pf->memory_bytes() >> 10}});
      }
    }
  }
  return 0;
}

int main_impl(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  JsonReport report("prefilter", opt);
  const auto s1 = gate_long(s1_web_patterns(opt.seed), 8);
  const auto s2 = gate_long(s2_web_patterns(opt.seed + 1), 8);
  // The exact-engine dimension is the story: screening in front of V-PATCH
  // (whose own direct filter already rejects easy traffic at wire speed)
  // buys little, while screening in front of the compact-AC automaton (the
  // heavy fallback engine for dense groups) multiplies throughput whenever
  // the traffic lets the screen reject.
  for (core::Algorithm algo :
       {core::Algorithm::aho_corasick_compact, core::Algorithm::vpatch}) {
    if (!core::algorithm_available(algo)) continue;
    for (traffic::TraceKind kind :
         {traffic::TraceKind::random, traffic::TraceKind::iscx_day2}) {
      if (run_set("S1-gated", s1, kind, algo, opt, report) != 0) return 1;
      if (run_set("S2-gated", s2, kind, algo, opt, report) != 0) return 1;
    }
  }
  return report.write() ? 0 : 1;
}

}  // namespace
}  // namespace vpm::bench

int main(int argc, char** argv) { return vpm::bench::main_impl(argc, argv); }
