// Multi-thread scaling of the scan (paper §V-A: "different hardware threads
// can operate independently on different parts of the stream ... the
// aggregated gain will naturally be higher").  Splits one large trace across
// threads with overlap-correct attribution and reports aggregate Gbps.
//
//   parallel_scaling [--mb=N] [--runs=N] [--seed=N] [--quick]
#include <cstdio>
#include <thread>

#include "common.hpp"
#include "core/parallel_scan.hpp"
#include "traffic/trace.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace vpm::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const auto set = s1_web_patterns(opt.seed);
  const auto trace = traffic::generate_trace(traffic::TraceKind::iscx_day2,
                                             opt.trace_mb << 20, opt.seed + 10);
  std::printf("=== Thread scaling: %zu patterns, %zu MB HTTP trace, %u hw threads ===\n",
              set.size(), opt.trace_mb, std::thread::hardware_concurrency());
  const std::vector<int> widths{22, 10, 12, 12, 12};
  print_row({"algorithm", "threads", "Gbps", "scaling", "matches"}, widths);

  JsonReport report("parallel_scaling", opt);
  for (core::Algorithm algo : {core::Algorithm::dfc, core::Algorithm::vpatch}) {
    if (!core::algorithm_available(algo)) continue;
    const MatcherPtr m = core::make_matcher(algo, set);
    // Set-aware overload: the segment overlap is derived from the actual
    // pattern set, so it can never silently undershoot the longest pattern.
    core::ParallelScanConfig cfg;
    double base = 0.0;
    for (unsigned threads : {1u, 2u, 4u}) {
      cfg.threads = threads;
      (void)core::parallel_count_matches(*m, set, trace, cfg);  // warm-up
      util::RunningStats stats;
      std::uint64_t matches = 0;
      for (unsigned r = 0; r < opt.runs; ++r) {
        util::Timer timer;
        matches = core::parallel_count_matches(*m, set, trace, cfg);
        stats.add(util::gbps(trace.size(), timer.seconds()));
      }
      if (threads == 1) base = stats.mean();
      print_row({std::string(m->name()), std::to_string(threads), fmt(stats.mean()),
                 fmt(base > 0 ? stats.mean() / base : 0.0), std::to_string(matches)},
                widths);
      report.add({{"algorithm", std::string(m->name())}},
                 {{"gbps_mean", stats.mean()}, {"gbps_stddev", stats.stddev()},
                  {"scaling", base > 0 ? stats.mean() / base : 0.0}},
                 {{"threads", threads}, {"matches", matches}});
    }
  }
  return report.write() ? 0 : 1;
}

}  // namespace
}  // namespace vpm::bench

int main(int argc, char** argv) { return vpm::bench::main_impl(argc, argv); }
