// Throughput of the sharded multi-worker pipeline runtime: generated TCP
// flows (with light reordering, so reassembly does real work) are packetized
// once, then replayed through PipelineRuntime sweeping worker counts and
// algorithms.  Reported Gbps is end-to-end — routing, ring transfer,
// reassembly, and grouped inspection included — which is the number a
// deployed sensor would see, unlike the matcher-only figure benches.
//
//   pipeline_throughput [--mb=N] [--runs=N] [--seed=N] [--quick] [--json=FILE]
//                       [--flows=N] [--reorder=PCT] [--evasion] [--telemetry]
//
// --evasion switches the generator to the adversarial corpus (handshakes,
// wrap-adjacent ISNs, conflicting retransmits, keep-alive probes,
// bidirectional streams, FIN/RST teardown) — a soak of the reassembler's
// slow paths under load rather than a best-case segment stream.
//
// --telemetry switches to the instrumentation-overhead mode: the same replay
// with the metrics registry off vs on, reporting the throughput delta (the
// CI gate on telemetry cost) plus p50/p99 scan latency and ring dwell from
// the recorded histograms.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "common.hpp"
#include "net/flowgen.hpp"
#include "pipeline/runtime.hpp"
#include "telemetry/metrics.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace vpm::bench {
namespace {

// Aggregate quantile across every worker's instance of one histogram family
// (same bucket layout by construction — one registration site).
telemetry::HistogramSnapshot merged_snapshot(const telemetry::MetricsRegistry& reg,
                                             const char* name, unsigned workers) {
  telemetry::HistogramSnapshot merged;
  for (unsigned w = 0; w < workers; ++w) {
    const telemetry::Histogram* h =
        reg.find_histogram(name, {{"worker", std::to_string(w)}});
    if (h == nullptr) continue;
    const telemetry::HistogramSnapshot s = h->snapshot();
    if (merged.bounds.empty()) {
      merged = s;
    } else {
      for (std::size_t i = 0; i < merged.counts.size(); ++i) merged.counts[i] += s.counts[i];
      merged.count += s.count;
      merged.sum += s.sum;
    }
  }
  return merged;
}

int telemetry_mode(const Options& opt, const pattern::PatternSet& rules,
                   const std::vector<net::Packet>& packets,
                   std::uint64_t payload_bytes) {
  const unsigned workers = std::min(4u, std::max(2u, std::thread::hardware_concurrency() / 2));
  std::printf("=== Telemetry overhead: %zu patterns, %zu packets, %u workers ===\n",
              rules.size(), packets.size(), workers);
  const std::vector<int> widths{22, 12, 12, 12, 12, 12, 12};
  print_row({"algorithm", "Gbps off", "Gbps on", "overhead%", "scan p50us",
             "scan p99us", "dwell p99us"},
            widths);

  JsonReport report("telemetry_overhead", opt);
  for (core::Algorithm algo :
       {core::Algorithm::aho_corasick, core::Algorithm::dfc, core::Algorithm::vpatch}) {
    if (!core::algorithm_available(algo)) continue;

    util::RunningStats gbps_by_mode[2];  // [0]=off, [1]=on
    std::uint64_t alerts_by_mode[2] = {0, 0};
    telemetry::HistogramSnapshot scan_latency, ring_dwell;
    for (int mode = 0; mode < 2; ++mode) {
      for (unsigned r = 0; r <= opt.runs; ++r) {  // run 0 is the warm-up
        // Fresh registry per run so the final run's histograms describe one
        // replay, not an accumulation over warm-ups.
        telemetry::MetricsRegistry registry;
        pipeline::PipelineConfig cfg;
        cfg.algorithm = algo;
        cfg.workers = workers;
        if (mode == 1) cfg.metrics = &registry;
        pipeline::PipelineRuntime rt(rules, cfg);
        rt.start();
        util::Timer timer;
        rt.submit(std::span<const net::Packet>(packets));
        rt.stop();
        const double secs = timer.seconds();
        if (r == 0) continue;
        gbps_by_mode[mode].add(util::gbps(payload_bytes, secs));
        alerts_by_mode[mode] = rt.stats().totals().alerts;
        if (mode == 1) {
          scan_latency = merged_snapshot(registry, "vpm_scan_latency_seconds", workers);
          ring_dwell = merged_snapshot(registry, "vpm_ring_dwell_seconds", workers);
        }
      }
    }
    // Telemetry must be an observer: identical alert totals off vs on (the
    // full multiset equality lives in telemetry_test).
    if (alerts_by_mode[0] != alerts_by_mode[1]) {
      std::fprintf(stderr, "FATAL: alert count changed with telemetry on (%llu vs %llu)\n",
                   static_cast<unsigned long long>(alerts_by_mode[0]),
                   static_cast<unsigned long long>(alerts_by_mode[1]));
      return 1;
    }
    const double off = gbps_by_mode[0].mean();
    const double on = gbps_by_mode[1].mean();
    const double overhead_pct = off > 0 ? (off - on) / off * 100.0 : 0.0;
    const double p50_us = scan_latency.quantile(0.50) * 1e6;
    const double p99_us = scan_latency.quantile(0.99) * 1e6;
    const double dwell_p99_us = ring_dwell.quantile(0.99) * 1e6;
    print_row({std::string(core::algorithm_name(algo)), fmt(off), fmt(on),
               fmt(overhead_pct), fmt(p50_us), fmt(p99_us), fmt(dwell_p99_us)},
              widths);
    report.add({{"algorithm", std::string(core::algorithm_name(algo))}},
               {{"gbps_off", off},
                {"gbps_on", on},
                {"overhead_pct", overhead_pct},
                {"scan_latency_p50_us", p50_us},
                {"scan_latency_p99_us", p99_us},
                {"ring_dwell_p99_us", dwell_p99_us}},
               {{"workers", workers},
                {"alerts", alerts_by_mode[1]},
                {"packets", packets.size()},
                {"scan_rounds", scan_latency.count}});
  }
  return report.write() ? 0 : 1;
}

int main_impl(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  std::size_t flow_count = 32;
  double reorder = 0.05;
  bool evasion = false;
  bool telemetry = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--flows=", 8) == 0) {
      flow_count = static_cast<std::size_t>(std::strtoull(argv[i] + 8, nullptr, 10));
    } else if (std::strncmp(argv[i], "--reorder=", 10) == 0) {
      reorder = std::strtod(argv[i] + 10, nullptr) / 100.0;
    } else if (std::strcmp(argv[i], "--evasion") == 0) {
      evasion = true;
    } else if (std::strcmp(argv[i], "--telemetry") == 0) {
      telemetry = true;
    }
  }
  if (flow_count == 0) flow_count = 1;

  const auto rules = s1_web_patterns(opt.seed);

  net::FlowGenConfig fcfg;
  fcfg.flow_count = flow_count;
  fcfg.bytes_per_flow = std::max<std::size_t>((opt.trace_mb << 20) / flow_count, 1 << 16);
  fcfg.reorder_fraction = reorder;
  fcfg.seed = opt.seed + 40;
  fcfg.evasion = evasion;
  const auto flows = net::generate_flows(fcfg);
  std::uint64_t payload_bytes = 0;
  for (const auto& p : flows.packets) payload_bytes += p.payload.size();

  if (telemetry) return telemetry_mode(opt, rules, flows.packets, payload_bytes);

  std::printf("=== Pipeline throughput: %zu patterns, %zu flows x %zu KB, %zu packets "
              "(%.0f%% reordered%s), %u hw threads ===\n",
              rules.size(), flow_count, fcfg.bytes_per_flow >> 10, flows.packets.size(),
              reorder * 100, evasion ? ", evasion corpus" : "",
              std::thread::hardware_concurrency());
  const std::vector<int> widths{22, 10, 12, 12, 12, 12};
  print_row({"algorithm", "workers", "Gbps", "stddev", "scaling", "alerts"}, widths);

  JsonReport report("pipeline_throughput", opt);
  for (core::Algorithm algo :
       {core::Algorithm::aho_corasick, core::Algorithm::dfc, core::Algorithm::vpatch}) {
    if (!core::algorithm_available(algo)) continue;
    double base = 0.0;
    for (unsigned workers : {1u, 2u, 4u}) {
      util::RunningStats stats;
      std::uint64_t alerts = 0;
      pipeline::WorkerStats totals{};
      for (unsigned r = 0; r <= opt.runs; ++r) {  // run 0 is the warm-up
        pipeline::PipelineConfig cfg;
        cfg.algorithm = algo;
        cfg.workers = workers;
        pipeline::PipelineRuntime rt(rules, cfg);
        rt.start();
        util::Timer timer;
        rt.submit(std::span<const net::Packet>(flows.packets));
        rt.stop();
        const double secs = timer.seconds();
        if (r == 0) continue;
        stats.add(util::gbps(payload_bytes, secs));
        totals = rt.stats().totals();
        alerts = totals.alerts;
      }
      if (workers == 1) base = stats.mean();
      print_row({std::string(core::algorithm_name(algo)), std::to_string(workers),
                 fmt(stats.mean()), fmt(stats.stddev(), 3),
                 fmt(base > 0 ? stats.mean() / base : 0.0), std::to_string(alerts)},
                widths);
      report.add({{"algorithm", std::string(core::algorithm_name(algo))}},
                 {{"gbps_mean", stats.mean()}, {"gbps_stddev", stats.stddev()},
                  {"scaling", base > 0 ? stats.mean() / base : 0.0}},
                 {{"workers", workers}, {"alerts", alerts},
                  {"packets", flows.packets.size()},
                  {"c2s_delivered_bytes", totals.c2s_delivered_bytes},
                  {"s2c_delivered_bytes", totals.s2c_delivered_bytes},
                  {"discarded_on_close_bytes", totals.discarded_on_close_bytes}});
    }
  }
  return report.write() ? 0 : 1;
}

}  // namespace
}  // namespace vpm::bench

int main(int argc, char** argv) { return vpm::bench::main_impl(argc, argv); }
