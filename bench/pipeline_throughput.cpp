// Throughput of the sharded multi-worker pipeline runtime: generated TCP
// flows (with light reordering, so reassembly does real work) are packetized
// once, then replayed through PipelineRuntime sweeping worker counts and
// algorithms.  Reported Gbps is end-to-end — routing, ring transfer,
// reassembly, and grouped inspection included — which is the number a
// deployed sensor would see, unlike the matcher-only figure benches.
//
//   pipeline_throughput [--mb=N] [--runs=N] [--seed=N] [--quick] [--json=FILE]
//                       [--flows=N] [--reorder=PCT] [--evasion] [--telemetry]
//
// --evasion switches the generator to the adversarial corpus (handshakes,
// wrap-adjacent ISNs, conflicting retransmits, keep-alive probes,
// bidirectional streams, FIN/RST teardown) — a soak of the reassembler's
// slow paths under load rather than a best-case segment stream.
//
// --telemetry switches to the instrumentation-overhead mode: the same replay
// with the metrics registry off vs on, reporting the throughput delta (the
// CI gate on telemetry cost) plus p50/p99 scan latency and ring dwell from
// the recorded histograms.
//
// --source=trace --soak-seconds=N switches to the live-ingestion soak: an
// endless TraceSource (fresh flows every epoch) feeds the pipeline for N
// wall seconds with bounded incremental eviction, reporting steady-state
// kpkt/s, flow-table occupancy (tracked connections), and eviction debt.
//
// --churn=N is the million-flow churn phase: N distinct single-packet flows
// streamed through one worker with bounded-step eviction, proving the
// tables sustain >= 1M tracked flows, plus a direct FlowTable measurement
// of the full-sweep latency spike vs the bounded-step bound.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "capture/trace_source.hpp"
#include "common.hpp"
#include "net/flowgen.hpp"
#include "pipeline/runtime.hpp"
#include "telemetry/metrics.hpp"
#include "util/flow_table.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace vpm::bench {
namespace {

// Aggregate quantile across every worker's instance of one histogram family
// (same bucket layout by construction — one registration site).
telemetry::HistogramSnapshot merged_snapshot(const telemetry::MetricsRegistry& reg,
                                             const char* name, unsigned workers) {
  telemetry::HistogramSnapshot merged;
  for (unsigned w = 0; w < workers; ++w) {
    const telemetry::Histogram* h =
        reg.find_histogram(name, {{"worker", std::to_string(w)}});
    if (h == nullptr) continue;
    const telemetry::HistogramSnapshot s = h->snapshot();
    if (merged.bounds.empty()) {
      merged = s;
    } else {
      for (std::size_t i = 0; i < merged.counts.size(); ++i) merged.counts[i] += s.counts[i];
      merged.count += s.count;
      merged.sum += s.sum;
    }
  }
  return merged;
}

int telemetry_mode(const Options& opt, const pattern::PatternSet& rules,
                   const std::vector<net::Packet>& packets,
                   std::uint64_t payload_bytes) {
  const unsigned workers = std::min(4u, std::max(2u, std::thread::hardware_concurrency() / 2));
  std::printf("=== Telemetry overhead: %zu patterns, %zu packets, %u workers ===\n",
              rules.size(), packets.size(), workers);
  const std::vector<int> widths{22, 12, 12, 12, 12, 12, 12};
  print_row({"algorithm", "Gbps off", "Gbps on", "overhead%", "scan p50us",
             "scan p99us", "dwell p99us"},
            widths);

  JsonReport report("telemetry_overhead", opt);
  for (core::Algorithm algo :
       {core::Algorithm::aho_corasick, core::Algorithm::dfc, core::Algorithm::vpatch}) {
    if (!core::algorithm_available(algo)) continue;

    util::RunningStats gbps_by_mode[2];  // [0]=off, [1]=on
    std::uint64_t alerts_by_mode[2] = {0, 0};
    telemetry::HistogramSnapshot scan_latency, ring_dwell;
    for (int mode = 0; mode < 2; ++mode) {
      for (unsigned r = 0; r <= opt.runs; ++r) {  // run 0 is the warm-up
        // Fresh registry per run so the final run's histograms describe one
        // replay, not an accumulation over warm-ups.
        telemetry::MetricsRegistry registry;
        pipeline::PipelineConfig cfg;
        cfg.algorithm = algo;
        cfg.workers = workers;
        if (mode == 1) cfg.metrics = &registry;
        pipeline::PipelineRuntime rt(rules, cfg);
        rt.start();
        util::Timer timer;
        rt.submit(std::span<const net::Packet>(packets));
        rt.stop();
        const double secs = timer.seconds();
        if (r == 0) continue;
        gbps_by_mode[mode].add(util::gbps(payload_bytes, secs));
        alerts_by_mode[mode] = rt.stats().totals().alerts;
        if (mode == 1) {
          scan_latency = merged_snapshot(registry, "vpm_scan_latency_seconds", workers);
          ring_dwell = merged_snapshot(registry, "vpm_ring_dwell_seconds", workers);
        }
      }
    }
    // Telemetry must be an observer: identical alert totals off vs on (the
    // full multiset equality lives in telemetry_test).
    if (alerts_by_mode[0] != alerts_by_mode[1]) {
      std::fprintf(stderr, "FATAL: alert count changed with telemetry on (%llu vs %llu)\n",
                   static_cast<unsigned long long>(alerts_by_mode[0]),
                   static_cast<unsigned long long>(alerts_by_mode[1]));
      return 1;
    }
    const double off = gbps_by_mode[0].mean();
    const double on = gbps_by_mode[1].mean();
    const double overhead_pct = off > 0 ? (off - on) / off * 100.0 : 0.0;
    const double p50_us = scan_latency.quantile(0.50) * 1e6;
    const double p99_us = scan_latency.quantile(0.99) * 1e6;
    const double dwell_p99_us = ring_dwell.quantile(0.99) * 1e6;
    print_row({std::string(core::algorithm_name(algo)), fmt(off), fmt(on),
               fmt(overhead_pct), fmt(p50_us), fmt(p99_us), fmt(dwell_p99_us)},
              widths);
    report.add({{"algorithm", std::string(core::algorithm_name(algo))}},
               {{"gbps_off", off},
                {"gbps_on", on},
                {"overhead_pct", overhead_pct},
                {"scan_latency_p50_us", p50_us},
                {"scan_latency_p99_us", p99_us},
                {"ring_dwell_p99_us", dwell_p99_us}},
               {{"workers", workers},
                {"alerts", alerts_by_mode[1]},
                {"packets", packets.size()},
                {"scan_rounds", scan_latency.count}});
  }
  return report.write() ? 0 : 1;
}

// --source=trace --soak-seconds=N: steady-state ingestion from an endless
// generated trace.  Every epoch remaps the server address, so the flow
// tables see continuous arrival of NEW flows while old epochs age out
// through bounded incremental eviction — the deployed-sensor steady state,
// not a replay that ends.
int soak_mode(const Options& opt, std::size_t flow_count, double soak_seconds,
              std::size_t evict_steps) {
  capture::TraceConfig tc;
  tc.profile = "mixed";
  tc.flows = flow_count;
  tc.bytes_per_flow = 32 * 1024;
  tc.seed = opt.seed + 7;
  tc.epochs = 0;  // endless
  capture::TraceSource source(tc);

  // One epoch's capture-time span; an idle timeout of one span means a
  // flow's state lives ~one epoch past its last packet, so the live set
  // hovers around two epochs' flows and eviction runs continuously.
  std::uint64_t span_us = 0;
  for (const net::Packet& p : source.base().packets) {
    span_us = std::max(span_us, p.timestamp_us);
  }

  const auto rules = s1_web_patterns(opt.seed);
  pipeline::PipelineConfig cfg;
  cfg.algorithm = core::Algorithm::vpatch;
  cfg.workers = std::max(1u, std::thread::hardware_concurrency() / 2);
  cfg.idle_timeout_us = span_us;
  cfg.eviction_max_steps = evict_steps;
  pipeline::PipelineRuntime rt(rules, cfg);
  rt.start();

  std::printf("=== Capture soak: trace source, %zu flows/epoch, %zu pkt/epoch, "
              "%u workers, eviction bound %zu slots/sweep, %.0f s ===\n",
              flow_count, source.packets_per_epoch(), cfg.workers, evict_steps,
              soak_seconds);
  const std::vector<int> widths{10, 12, 14, 14, 14};
  print_row({"t_s", "kpkt/s", "tracked", "evicted", "epochs"}, widths);

  util::Timer wall;
  std::vector<net::Packet> batch;
  std::uint64_t submitted = 0, last_sampled = 0;
  double last_sample_t = 0.0;
  util::RunningStats steady_kpps;  // samples after the first (warm-up) second
  std::uint64_t peak_tracked = 0;
  while (wall.seconds() < soak_seconds) {
    batch.clear();
    source.poll(batch, 256);
    for (net::Packet& p : batch) rt.submit(std::move(p));
    submitted += batch.size();
    const double t = wall.seconds();
    if (t - last_sample_t >= 1.0) {
      const auto totals = rt.stats().totals();
      const double kpps =
          static_cast<double>(submitted - last_sampled) / (t - last_sample_t) / 1e3;
      peak_tracked = std::max(peak_tracked, totals.tracked_connections);
      if (last_sample_t > 0.0) steady_kpps.add(kpps);  // skip warm-up interval
      print_row({fmt(t, 1), fmt(kpps, 0), std::to_string(totals.tracked_connections),
                 std::to_string(totals.flows_evicted),
                 std::to_string(submitted / source.packets_per_epoch())},
                widths);
      last_sampled = submitted;
      last_sample_t = t;
    }
  }
  rt.stop();
  const double secs = wall.seconds();
  const auto totals = rt.stats().totals();
  // Debt: connections still tracked beyond the roughly one-epoch live set —
  // flows whose eviction the bounded sweeps have not reached yet.
  const std::uint64_t live_estimate = flow_count;
  const std::uint64_t debt = totals.tracked_connections > live_estimate
                                 ? totals.tracked_connections - live_estimate
                                 : 0;
  std::printf("soak: %llu packets in %.1f s (steady %.0f kpkt/s), "
              "%llu connections started / %llu ended, %llu evicted, "
              "final tracked %llu (eviction debt ~%llu)\n",
              static_cast<unsigned long long>(submitted), secs, steady_kpps.mean(),
              static_cast<unsigned long long>(totals.connections_started),
              static_cast<unsigned long long>(totals.connections_ended),
              static_cast<unsigned long long>(totals.flows_evicted),
              static_cast<unsigned long long>(totals.tracked_connections),
              static_cast<unsigned long long>(debt));

  JsonReport report("capture_soak", opt);
  report.add({{"mode", "soak"}, {"profile", "trace:mixed"}},
             {{"steady_kpps", steady_kpps.mean()},
              {"kpps_stddev", steady_kpps.stddev()},
              {"soak_seconds", secs}},
             {{"workers", cfg.workers},
              {"flows_per_epoch", flow_count},
              {"packets", submitted},
              {"eviction_max_steps", evict_steps},
              {"connections_started", totals.connections_started},
              {"connections_ended", totals.connections_ended},
              {"flows_evicted", totals.flows_evicted},
              {"peak_tracked", peak_tracked},
              {"final_tracked", totals.tracked_connections},
              {"eviction_debt", debt}});
  return report.write() ? 0 : 1;
}

// --churn=N: million-flow scale.  Part 1 measures the eviction pause
// directly on a FlowTable (full sweep vs bounded steps over the same
// table).  Part 2 streams N single-packet flows through one pipeline worker
// with bounded eviction and verifies the tables sustain the load and the
// lifecycle identity started == ended + still-tracked holds.
int churn_mode(const Options& opt, std::size_t total_flows, std::size_t evict_steps) {
  std::printf("=== Flow-table churn: %zu flows, eviction bound %zu ===\n",
              total_flows, evict_steps);

  // Part 1: the latency-spike comparison the bounded sweep exists for.
  util::FlowTable<std::uint64_t, std::uint64_t, util::U64Hash> table;
  for (std::uint64_t i = 0; i < total_flows; ++i) {
    table.find_or_emplace(i, [&] { return i; });
  }
  util::Timer t_full;
  // Sweep evicting nothing: pure scan cost, the floor of the pause a full
  // sweep inflicts on the packet path at this table size.  The visit counter
  // keeps the scan observable (a result-free sweep is dead code to the
  // optimizer, which benchmarks an empty loop at 0 ms).
  std::uint64_t visited_full = 0;
  table.sweep([&](std::uint64_t, std::uint64_t) {
    ++visited_full;
    return false;
  });
  const double full_ms = t_full.seconds() * 1e3;
  double max_step_ms = 0.0;
  std::size_t step_calls = 0;
  std::uint64_t visited_stepped = 0;
  for (std::size_t visited = 0; visited < table.capacity();
       visited += evict_steps, ++step_calls) {
    util::Timer t_step;
    table.sweep_step(evict_steps, [&](std::uint64_t, std::uint64_t) {
      ++visited_stepped;
      return false;
    });
    max_step_ms = std::max(max_step_ms, t_step.seconds() * 1e3);
  }
  if (visited_full != table.size() || visited_stepped != table.size()) {
    std::fprintf(stderr, "churn: sweep visit counts diverged (%llu/%llu vs %zu)\n",
                 static_cast<unsigned long long>(visited_full),
                 static_cast<unsigned long long>(visited_stepped), table.size());
    return 1;
  }
  std::printf("eviction pause at %zu entries (capacity %zu): full sweep %.2f ms; "
              "bounded %zu-slot step max %.4f ms over %zu calls\n",
              table.size(), table.capacity(), full_ms, evict_steps, max_step_ms,
              step_calls);

  // Part 2: the pipeline sustaining a tracked set at total_flows' scale.
  // Single-packet flows 1 us apart, idle timeout at 5/8 of the capture
  // span: the tracked set climbs to ~62% of total_flows (>= 1M tracked at
  // --churn=2000000) before idle eviction engages, and from there every
  // batch retires at most eviction_max_steps slots — bounded per-batch cost
  // while the table stays millions deep.
  const auto rules = s1_web_patterns(opt.seed);
  pipeline::PipelineConfig cfg;
  cfg.algorithm = core::Algorithm::vpatch;
  cfg.workers = 1;
  cfg.idle_timeout_us = static_cast<std::uint64_t>(total_flows) * 5 / 8;
  cfg.eviction_max_steps = evict_steps;
  pipeline::PipelineRuntime rt(rules, cfg);
  rt.start();
  util::Timer wall;
  std::uint64_t peak_tracked = 0;
  net::Packet p;
  p.tuple.dst_ip = 0xC0A80001;
  p.tuple.src_port = 49152;
  p.tuple.dst_port = 80;
  p.payload = util::Bytes{'G', 'E', 'T', ' ', '/', 'x', ' ', 'H',
                          'T', 'T', 'P', '/', '1', '.', '1', '\n'};
  for (std::uint64_t i = 0; i < total_flows; ++i) {
    p.timestamp_us = i;
    p.tuple.src_ip = static_cast<std::uint32_t>(0x0B000000 + i);
    rt.submit(p);
    if ((i + 1) % 65536 == 0) {
      peak_tracked = std::max(peak_tracked, rt.stats().totals().tracked_connections);
    }
  }
  rt.stop();
  const double secs = wall.seconds();
  const auto totals = rt.stats().totals();
  peak_tracked = std::max(peak_tracked, totals.tracked_connections);
  // Lifecycle identity: every connection ever started was either ended
  // (FIN/RST/eviction all finish through the same path) or is still
  // tracked.  An all-TCP workload keeps tracked_connections TCP-only.
  const bool identity_ok = totals.connections_started ==
                           totals.connections_ended + totals.tracked_connections;
  std::printf("churn: %zu flows in %.1f s (%.0f kpkt/s), peak tracked %llu, "
              "final tracked %llu, evicted %llu, identity started==ended+tracked %s\n",
              total_flows, secs, static_cast<double>(total_flows) / secs / 1e3,
              static_cast<unsigned long long>(peak_tracked),
              static_cast<unsigned long long>(totals.tracked_connections),
              static_cast<unsigned long long>(totals.flows_evicted),
              identity_ok ? "OK" : "VIOLATED");

  JsonReport report("capture_churn", opt);
  report.add({{"mode", "churn"}},
             {{"full_sweep_ms", full_ms},
              {"bounded_step_max_ms", max_step_ms},
              {"kpps", static_cast<double>(total_flows) / secs / 1e3}},
             {{"flows", total_flows},
              {"eviction_max_steps", evict_steps},
              {"table_capacity", table.capacity()},
              {"peak_tracked", peak_tracked},
              {"final_tracked", totals.tracked_connections},
              {"flows_evicted", totals.flows_evicted},
              {"connections_started", totals.connections_started},
              {"connections_ended", totals.connections_ended},
              {"identity_ok", identity_ok ? 1u : 0u}});
  if (!report.write()) return 1;
  return identity_ok ? 0 : 1;
}

int main_impl(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  std::size_t flow_count = 32;
  double reorder = 0.05;
  bool evasion = false;
  bool telemetry = false;
  double soak_seconds = 0.0;
  std::size_t churn_flows = 0;
  std::size_t evict_steps = 2048;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--flows=", 8) == 0) {
      flow_count = static_cast<std::size_t>(std::strtoull(argv[i] + 8, nullptr, 10));
    } else if (std::strncmp(argv[i], "--reorder=", 10) == 0) {
      reorder = std::strtod(argv[i] + 10, nullptr) / 100.0;
    } else if (std::strcmp(argv[i], "--evasion") == 0) {
      evasion = true;
    } else if (std::strcmp(argv[i], "--telemetry") == 0) {
      telemetry = true;
    } else if (std::strncmp(argv[i], "--soak-seconds=", 15) == 0) {
      soak_seconds = std::strtod(argv[i] + 15, nullptr);
    } else if (std::strncmp(argv[i], "--churn=", 8) == 0) {
      churn_flows = static_cast<std::size_t>(std::strtoull(argv[i] + 8, nullptr, 10));
    } else if (std::strncmp(argv[i], "--evict-steps=", 14) == 0) {
      evict_steps = static_cast<std::size_t>(std::strtoull(argv[i] + 14, nullptr, 10));
    } else if (std::strncmp(argv[i], "--source=", 9) == 0) {
      // --source=trace is the only generated source here; accepted for
      // symmetry with pcap_sensor's flag.
      if (std::strcmp(argv[i] + 9, "trace") != 0) {
        std::fprintf(stderr, "only --source=trace is supported by this bench\n");
        return 2;
      }
    }
  }
  if (flow_count == 0) flow_count = 1;
  if (churn_flows > 0) return churn_mode(opt, churn_flows, evict_steps);
  if (soak_seconds > 0.0) {
    return soak_mode(opt, std::max<std::size_t>(flow_count, 256), soak_seconds,
                     evict_steps);
  }

  const auto rules = s1_web_patterns(opt.seed);

  net::FlowGenConfig fcfg;
  fcfg.flow_count = flow_count;
  fcfg.bytes_per_flow = std::max<std::size_t>((opt.trace_mb << 20) / flow_count, 1 << 16);
  fcfg.reorder_fraction = reorder;
  fcfg.seed = opt.seed + 40;
  fcfg.evasion = evasion;
  const auto flows = net::generate_flows(fcfg);
  std::uint64_t payload_bytes = 0;
  for (const auto& p : flows.packets) payload_bytes += p.payload.size();

  if (telemetry) return telemetry_mode(opt, rules, flows.packets, payload_bytes);

  std::printf("=== Pipeline throughput: %zu patterns, %zu flows x %zu KB, %zu packets "
              "(%.0f%% reordered%s), %u hw threads ===\n",
              rules.size(), flow_count, fcfg.bytes_per_flow >> 10, flows.packets.size(),
              reorder * 100, evasion ? ", evasion corpus" : "",
              std::thread::hardware_concurrency());
  const std::vector<int> widths{22, 10, 12, 12, 12, 12};
  print_row({"algorithm", "workers", "Gbps", "stddev", "scaling", "alerts"}, widths);

  JsonReport report("pipeline_throughput", opt);
  for (core::Algorithm algo :
       {core::Algorithm::aho_corasick, core::Algorithm::dfc, core::Algorithm::vpatch}) {
    if (!core::algorithm_available(algo)) continue;
    double base = 0.0;
    for (unsigned workers : {1u, 2u, 4u}) {
      util::RunningStats stats;
      std::uint64_t alerts = 0;
      pipeline::WorkerStats totals{};
      for (unsigned r = 0; r <= opt.runs; ++r) {  // run 0 is the warm-up
        pipeline::PipelineConfig cfg;
        cfg.algorithm = algo;
        cfg.workers = workers;
        pipeline::PipelineRuntime rt(rules, cfg);
        rt.start();
        util::Timer timer;
        rt.submit(std::span<const net::Packet>(flows.packets));
        rt.stop();
        const double secs = timer.seconds();
        if (r == 0) continue;
        stats.add(util::gbps(payload_bytes, secs));
        totals = rt.stats().totals();
        alerts = totals.alerts;
      }
      if (workers == 1) base = stats.mean();
      print_row({std::string(core::algorithm_name(algo)), std::to_string(workers),
                 fmt(stats.mean()), fmt(stats.stddev(), 3),
                 fmt(base > 0 ? stats.mean() / base : 0.0), std::to_string(alerts)},
                widths);
      report.add({{"algorithm", std::string(core::algorithm_name(algo))}},
                 {{"gbps_mean", stats.mean()}, {"gbps_stddev", stats.stddev()},
                  {"scaling", base > 0 ? stats.mean() / base : 0.0}},
                 {{"workers", workers}, {"alerts", alerts},
                  {"packets", flows.packets.size()},
                  {"c2s_delivered_bytes", totals.c2s_delivered_bytes},
                  {"s2c_delivered_bytes", totals.s2c_delivered_bytes},
                  {"discarded_on_close_bytes", totals.discarded_on_close_bytes}});
    }
  }
  return report.write() ? 0 : 1;
}

}  // namespace
}  // namespace vpm::bench

int main(int argc, char** argv) { return vpm::bench::main_impl(argc, argv); }
