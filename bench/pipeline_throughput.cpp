// Throughput of the sharded multi-worker pipeline runtime: generated TCP
// flows (with light reordering, so reassembly does real work) are packetized
// once, then replayed through PipelineRuntime sweeping worker counts and
// algorithms.  Reported Gbps is end-to-end — routing, ring transfer,
// reassembly, and grouped inspection included — which is the number a
// deployed sensor would see, unlike the matcher-only figure benches.
//
//   pipeline_throughput [--mb=N] [--runs=N] [--seed=N] [--quick] [--json=FILE]
//                       [--flows=N] [--reorder=PCT] [--evasion]
//
// --evasion switches the generator to the adversarial corpus (handshakes,
// wrap-adjacent ISNs, conflicting retransmits, keep-alive probes,
// bidirectional streams, FIN/RST teardown) — a soak of the reassembler's
// slow paths under load rather than a best-case segment stream.
#include <cstdio>
#include <cstring>
#include <thread>

#include "common.hpp"
#include "net/flowgen.hpp"
#include "pipeline/runtime.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace vpm::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  std::size_t flow_count = 32;
  double reorder = 0.05;
  bool evasion = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--flows=", 8) == 0) {
      flow_count = static_cast<std::size_t>(std::strtoull(argv[i] + 8, nullptr, 10));
    } else if (std::strncmp(argv[i], "--reorder=", 10) == 0) {
      reorder = std::strtod(argv[i] + 10, nullptr) / 100.0;
    } else if (std::strcmp(argv[i], "--evasion") == 0) {
      evasion = true;
    }
  }
  if (flow_count == 0) flow_count = 1;

  const auto rules = s1_web_patterns(opt.seed);

  net::FlowGenConfig fcfg;
  fcfg.flow_count = flow_count;
  fcfg.bytes_per_flow = std::max<std::size_t>((opt.trace_mb << 20) / flow_count, 1 << 16);
  fcfg.reorder_fraction = reorder;
  fcfg.seed = opt.seed + 40;
  fcfg.evasion = evasion;
  const auto flows = net::generate_flows(fcfg);
  std::uint64_t payload_bytes = 0;
  for (const auto& p : flows.packets) payload_bytes += p.payload.size();

  std::printf("=== Pipeline throughput: %zu patterns, %zu flows x %zu KB, %zu packets "
              "(%.0f%% reordered%s), %u hw threads ===\n",
              rules.size(), flow_count, fcfg.bytes_per_flow >> 10, flows.packets.size(),
              reorder * 100, evasion ? ", evasion corpus" : "",
              std::thread::hardware_concurrency());
  const std::vector<int> widths{22, 10, 12, 12, 12, 12};
  print_row({"algorithm", "workers", "Gbps", "stddev", "scaling", "alerts"}, widths);

  JsonReport report("pipeline_throughput", opt);
  for (core::Algorithm algo :
       {core::Algorithm::aho_corasick, core::Algorithm::dfc, core::Algorithm::vpatch}) {
    if (!core::algorithm_available(algo)) continue;
    double base = 0.0;
    for (unsigned workers : {1u, 2u, 4u}) {
      util::RunningStats stats;
      std::uint64_t alerts = 0;
      for (unsigned r = 0; r <= opt.runs; ++r) {  // run 0 is the warm-up
        pipeline::PipelineConfig cfg;
        cfg.algorithm = algo;
        cfg.workers = workers;
        pipeline::PipelineRuntime rt(rules, cfg);
        rt.start();
        util::Timer timer;
        rt.submit(std::span<const net::Packet>(flows.packets));
        rt.stop();
        const double secs = timer.seconds();
        if (r == 0) continue;
        stats.add(util::gbps(payload_bytes, secs));
        alerts = rt.stats().totals().alerts;
      }
      if (workers == 1) base = stats.mean();
      print_row({std::string(core::algorithm_name(algo)), std::to_string(workers),
                 fmt(stats.mean()), fmt(stats.stddev(), 3),
                 fmt(base > 0 ? stats.mean() / base : 0.0), std::to_string(alerts)},
                widths);
      report.add({{"algorithm", std::string(core::algorithm_name(algo))}},
                 {{"gbps_mean", stats.mean()}, {"gbps_stddev", stats.stddev()},
                  {"scaling", base > 0 ? stats.mean() / base : 0.0}},
                 {{"workers", workers}, {"alerts", alerts},
                  {"packets", flows.packets.size()}});
    }
  }
  return report.write() ? 0 : 1;
}

}  // namespace
}  // namespace vpm::bench

int main(int argc, char** argv) { return vpm::bench::main_impl(argc, argv); }
