// Shared benchmark harness: workload construction, repeated-run throughput
// measurement (the paper reports mean and stddev over independent runs), and
// aligned table output so each bench binary prints rows mirroring its figure.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/matcher_factory.hpp"
#include "match/matcher.hpp"
#include "pattern/pattern_set.hpp"
#include "traffic/trace.hpp"
#include "util/bytes.hpp"

namespace vpm::bench {

struct Options {
  std::size_t trace_mb = 16;  // bytes scanned per workload
  unsigned runs = 5;          // independent runs per cell (paper uses 10)
  std::uint64_t seed = 1;
  bool quick = false;      // --quick: 4 MB traces, 2 runs (CI smoke)
  std::string json_path;   // --json=FILE: machine-readable results
};

// Recognizes --mb=N --runs=N --seed=N --quick --json=FILE; ignores unknown
// flags so the binaries can grow figure-specific options.
Options parse_options(int argc, char** argv);

// Machine-readable result collection (the BENCH_*.json perf trajectory).
// Every bench builds one of these alongside its printed table; rows carry
// string dimensions (workload, algorithm, ...) plus numeric metrics, and
// write() emits
//   {"bench": ..., "options": {...}, "rows": [{...}, ...]}
// Write is a no-op returning true when the user did not pass --json.
class JsonReport {
 public:
  JsonReport(std::string bench_name, const Options& opt);

  void add(std::vector<std::pair<std::string, std::string>> dims,
           std::vector<std::pair<std::string, double>> metrics,
           std::vector<std::pair<std::string, std::uint64_t>> counts = {});

  // Writes to opt.json_path if set; returns false (after printing a
  // diagnostic) on I/O failure so mains can propagate a nonzero exit.
  bool write() const;

 private:
  std::string bench_;
  Options opt_;
  std::vector<std::string> rows_;  // pre-rendered JSON objects
};

struct Throughput {
  double mean_gbps = 0.0;
  double stddev_gbps = 0.0;
  std::uint64_t matches = 0;
};

// Scans `data` `runs` times (after one untimed warm-up) and reports
// throughput statistics.
Throughput measure_scan(const Matcher& matcher, util::ByteView data, unsigned runs);

// The paper's four evaluation workloads at the configured size.
struct Workload {
  std::string name;
  util::Bytes trace;
};
std::vector<Workload> paper_workloads(const Options& opt);

// The paper's pattern sets: S1-web (~2 K) and S2-web (~9 K), plus S2-full
// (20 K) for Fig. 5/6.
pattern::PatternSet s1_web_patterns(std::uint64_t seed = 1);
pattern::PatternSet s2_web_patterns(std::uint64_t seed = 2);
pattern::PatternSet s2_full_patterns(std::uint64_t seed = 2);

// Minimal fixed-width table printer.
void print_row(const std::vector<std::string>& cells, const std::vector<int>& widths);
std::string fmt(double v, int precision = 2);

}  // namespace vpm::bench
