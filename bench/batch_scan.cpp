// Batch-scan fast path vs per-packet scan(): small-packet IDS traffic is
// where per-invocation fixed costs (candidate-buffer allocation, kernel
// setup, cold verification tables) dominate, and where the batch path's
// shared scratch + deferred prefetch-pipelined verification round pays.
// Sweeps payload size x algorithm x batch size over the same trace bytes
// sliced into payloads; reports both paths' throughput and the speedup.
//
//   bench_batch_scan [--mb=N] [--runs=N] [--seed=N] [--quick] [--json=FILE]
#include <cstdio>
#include <iterator>
#include <vector>

#include "common.hpp"
#include "traffic/trace.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace vpm::bench {
namespace {

struct CountingBatchSink final : BatchSink {
  std::uint64_t matches = 0;
  void on_match(std::uint32_t, const Match&) override { ++matches; }
};

std::vector<util::ByteView> slice(const util::Bytes& trace, std::size_t payload) {
  std::vector<util::ByteView> views;
  views.reserve(trace.size() / payload + 1);
  for (std::size_t off = 0; off + payload <= trace.size(); off += payload) {
    views.emplace_back(trace.data() + off, payload);
  }
  return views;
}

int run_set(const char* label, const pattern::PatternSet& set, const util::Bytes& trace,
            const Options& opt, JsonReport& report) {
  std::printf("\n=== Batch scan (%s): %zu patterns, %zu MB ISCX-style trace sliced "
              "into payloads ===\n",
              label, set.size(), opt.trace_mb);
  const std::vector<int> widths{14, 10, 8, 12, 12, 10};
  print_row({"algorithm", "payload", "batch", "scan-Gbps", "batch-Gbps", "speedup"},
            widths);

  for (core::Algorithm algo : {core::Algorithm::dfc, core::Algorithm::vector_dfc,
                               core::Algorithm::spatch, core::Algorithm::vpatch}) {
    if (!core::algorithm_available(algo)) continue;
    const auto matcher = core::make_matcher(algo, set);

    for (std::size_t payload : {std::size_t{64}, std::size_t{256}, std::size_t{1500}}) {
      const auto views = slice(trace, payload);
      const std::size_t bytes = views.size() * payload;
      const std::size_t batches[] = {1, 8, 32};

      // Interleaved measurement: each run measures the per-packet baseline
      // AND every batch size back to back, so machine-state drift between
      // measurement blocks cancels out of the speedup ratio.
      std::uint64_t scan_matches = 0;
      std::uint64_t batch_matches[std::size(batches)] = {};
      util::RunningStats scan_stats;
      util::RunningStats batch_stats[std::size(batches)];
      ScanScratch scratch;
      for (unsigned r = 0; r <= opt.runs; ++r) {  // run 0 is the warm-up
        {
          CountingSink sink;
          util::Timer timer;
          for (const util::ByteView& v : views) matcher->scan(v, sink);
          const double secs = timer.seconds();
          if (r > 0) {
            scan_stats.add(util::gbps(bytes, secs));
            scan_matches = sink.count();
          }
        }
        for (std::size_t bi = 0; bi < std::size(batches); ++bi) {
          const std::size_t batch = batches[bi];
          CountingBatchSink sink;
          util::Timer timer;
          for (std::size_t begin = 0; begin < views.size(); begin += batch) {
            const std::size_t count = std::min(batch, views.size() - begin);
            matcher->scan_batch({views.data() + begin, count}, sink, scratch);
          }
          const double secs = timer.seconds();
          if (r > 0) {
            batch_stats[bi].add(util::gbps(bytes, secs));
            batch_matches[bi] = sink.matches;
          }
        }
      }

      for (std::size_t bi = 0; bi < std::size(batches); ++bi) {
        if (batch_matches[bi] != scan_matches) {
          std::fprintf(stderr, "batch/scan match mismatch for %s: %llu vs %llu\n",
                       std::string(matcher->name()).c_str(),
                       static_cast<unsigned long long>(batch_matches[bi]),
                       static_cast<unsigned long long>(scan_matches));
          return 1;
        }
        const double speedup =
            scan_stats.mean() > 0 ? batch_stats[bi].mean() / scan_stats.mean() : 0.0;
        print_row({std::string(core::algorithm_name(algo)), std::to_string(payload),
                   std::to_string(batches[bi]), fmt(scan_stats.mean()),
                   fmt(batch_stats[bi].mean()), fmt(speedup)},
                  widths);
        report.add({{"set", label}, {"algorithm", std::string(core::algorithm_name(algo))}},
                   {{"scan_gbps", scan_stats.mean()},
                    {"scan_gbps_stddev", scan_stats.stddev()},
                    {"batch_gbps", batch_stats[bi].mean()},
                    {"batch_gbps_stddev", batch_stats[bi].stddev()},
                    {"speedup", speedup}},
                   {{"payload_bytes", payload},
                    {"batch", batches[bi]},
                    {"matches", batch_matches[bi]}});
      }
    }
  }
  return 0;
}

int main_impl(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const auto trace = traffic::generate_trace(traffic::TraceKind::iscx_day2,
                                             opt.trace_mb << 20, opt.seed + 20);
  JsonReport report("batch_scan", opt);
  // Two ruleset scales: the light web set (filter structures fully
  // cache-resident; the batch win is mostly allocation/setup amortization)
  // and the full 20 K set (verification tables spill; the deferred
  // prefetch-pipelined round adds on top).
  if (run_set("S1-web", s1_web_patterns(opt.seed), trace, opt, report) != 0) return 1;
  if (run_set("S2-full", s2_full_patterns(opt.seed + 1), trace, opt, report) != 0) return 1;
  return report.write() ? 0 : 1;
}

}  // namespace
}  // namespace vpm::bench

int main(int argc, char** argv) { return vpm::bench::main_impl(argc, argv); }
