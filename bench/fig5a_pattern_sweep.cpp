// Figure 5a: S-PATCH vs V-PATCH throughput as the number of patterns grows
// (random subsets of the full 20 K S2-like set), plus the vectorization
// speedup — the paper's observation is that the speedup stays roughly
// constant once the two Fig. 5b trends cancel out.
//
//   fig5a_pattern_sweep [--mb=N] [--runs=N] [--seed=N] [--quick] [--f3=BITS]
//
// --f3 sets log2 of the Filter-3 bit count (default 16 = 8 KB, the paper's
// L1-resident choice; larger values trade cache residency for selectivity at
// high pattern counts — see EXPERIMENTS.md).
#include <cstdio>
#include <cstring>

#include "common.hpp"
#include "core/spatch.hpp"
#include "core/vpatch.hpp"
#include "traffic/trace.hpp"

namespace vpm::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  unsigned f3_bits = 16;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--f3=", 5) == 0) {
      f3_bits = static_cast<unsigned>(std::strtoul(argv[i] + 5, nullptr, 10));
    }
  }
  const auto full = s2_full_patterns(opt.seed);
  const auto trace = traffic::generate_trace(traffic::TraceKind::iscx_day2,
                                             opt.trace_mb << 20, opt.seed + 10);

  std::printf("=== Fig 5a: throughput vs pattern count (full set %zu), %zu MB HTTP trace, "
              "F3 2^%u bits ===\n",
              full.size(), opt.trace_mb, f3_bits);
  const std::vector<int> widths{10, 14, 14, 12, 12};
  print_row({"patterns", "S-PATCH-Gbps", "V-PATCH-Gbps", "speedup", "matches"}, widths);

  JsonReport report("fig5a_pattern_sweep", opt);
  const std::size_t counts[] = {1000, 2500, 5000, 10000, 15000, 20000};
  for (std::size_t n : counts) {
    const auto subset = full.random_subset(n, opt.seed + n);
    core::SpatchConfig scfg;
    scfg.filters.f3_bits_log2 = f3_bits;
    core::VpatchConfig vcfg;
    vcfg.filters.f3_bits_log2 = f3_bits;
    const core::SpatchMatcher spatch(subset, scfg);
    const core::VpatchMatcher vpatch(subset, vcfg);  // widest available kernel
    const Throughput ts = measure_scan(spatch, trace, opt.runs);
    const Throughput tv = measure_scan(vpatch, trace, opt.runs);
    print_row({std::to_string(subset.size()), fmt(ts.mean_gbps), fmt(tv.mean_gbps),
               fmt(ts.mean_gbps > 0 ? tv.mean_gbps / ts.mean_gbps : 0.0),
               std::to_string(tv.matches)},
              widths);
    report.add({},
               {{"spatch_gbps", ts.mean_gbps}, {"vpatch_gbps", tv.mean_gbps}},
               {{"patterns", subset.size()}, {"matches", tv.matches}});
  }
  return report.write() ? 0 : 1;
}

}  // namespace
}  // namespace vpm::bench

int main(int argc, char** argv) { return vpm::bench::main_impl(argc, argv); }
