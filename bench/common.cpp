#include "common.hpp"

#include <cstdio>
#include <cstring>

#include "pattern/ruleset_gen.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace vpm::bench {

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--mb=", 5) == 0) {
      opt.trace_mb = static_cast<std::size_t>(std::strtoull(arg + 5, nullptr, 10));
    } else if (std::strncmp(arg, "--runs=", 7) == 0) {
      opt.runs = static_cast<unsigned>(std::strtoul(arg + 7, nullptr, 10));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strcmp(arg, "--quick") == 0) {
      opt.quick = true;
    }
  }
  if (opt.quick) {
    opt.trace_mb = std::min<std::size_t>(opt.trace_mb, 4);
    opt.runs = std::min(opt.runs, 2u);
  }
  if (opt.trace_mb == 0) opt.trace_mb = 1;
  if (opt.runs == 0) opt.runs = 1;
  return opt;
}

Throughput measure_scan(const Matcher& matcher, util::ByteView data, unsigned runs) {
  Throughput result;
  result.matches = matcher.count_matches(data);  // warm-up + match count
  util::RunningStats stats;
  for (unsigned r = 0; r < runs; ++r) {
    util::Timer timer;
    const std::uint64_t n = matcher.count_matches(data);
    const double secs = timer.seconds();
    if (n != result.matches) {
      std::fprintf(stderr, "non-deterministic match count from %s\n",
                   std::string(matcher.name()).c_str());
    }
    stats.add(util::gbps(data.size(), secs));
  }
  result.mean_gbps = stats.mean();
  result.stddev_gbps = stats.stddev();
  return result;
}

std::vector<Workload> paper_workloads(const Options& opt) {
  const std::size_t bytes = opt.trace_mb << 20;
  std::vector<Workload> w;
  w.push_back({"ISCX-day2", traffic::generate_trace(traffic::TraceKind::iscx_day2, bytes,
                                                    opt.seed + 10)});
  w.push_back({"ISCX-day6", traffic::generate_trace(traffic::TraceKind::iscx_day6, bytes,
                                                    opt.seed + 11)});
  w.push_back({"DARPA-2000", traffic::generate_trace(traffic::TraceKind::darpa2000, bytes,
                                                     opt.seed + 12)});
  w.push_back({"random", traffic::generate_trace(traffic::TraceKind::random, bytes,
                                                 opt.seed + 13)});
  return w;
}

pattern::PatternSet s1_web_patterns(std::uint64_t seed) {
  return pattern::generate_ruleset(pattern::s1_config(seed)).web_patterns();
}

pattern::PatternSet s2_web_patterns(std::uint64_t seed) {
  return pattern::generate_ruleset(pattern::s2_config(seed)).web_patterns();
}

pattern::PatternSet s2_full_patterns(std::uint64_t seed) {
  return pattern::generate_ruleset(pattern::s2_config(seed));
}

void print_row(const std::vector<std::string>& cells, const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 12;
    char buf[128];
    std::snprintf(buf, sizeof buf, "%-*s", width, cells[i].c_str());
    line += buf;
  }
  std::puts(line.c_str());
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace vpm::bench
