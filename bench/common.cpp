#include "common.hpp"

#include <cstdio>
#include <cstring>

#include "pattern/ruleset_gen.hpp"
#include "telemetry/json.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace vpm::bench {

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--mb=", 5) == 0) {
      opt.trace_mb = static_cast<std::size_t>(std::strtoull(arg + 5, nullptr, 10));
    } else if (std::strncmp(arg, "--runs=", 7) == 0) {
      opt.runs = static_cast<unsigned>(std::strtoul(arg + 7, nullptr, 10));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opt.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      opt.json_path = arg + 7;
    } else if (std::strcmp(arg, "--quick") == 0) {
      opt.quick = true;
    }
  }
  if (opt.quick) {
    opt.trace_mb = std::min<std::size_t>(opt.trace_mb, 4);
    opt.runs = std::min(opt.runs, 2u);
  }
  if (opt.trace_mb == 0) opt.trace_mb = 1;
  if (opt.runs == 0) opt.runs = 1;
  return opt;
}

Throughput measure_scan(const Matcher& matcher, util::ByteView data, unsigned runs) {
  Throughput result;
  result.matches = matcher.count_matches(data);  // warm-up + match count
  util::RunningStats stats;
  for (unsigned r = 0; r < runs; ++r) {
    util::Timer timer;
    const std::uint64_t n = matcher.count_matches(data);
    const double secs = timer.seconds();
    if (n != result.matches) {
      std::fprintf(stderr, "non-deterministic match count from %s\n",
                   std::string(matcher.name()).c_str());
    }
    stats.add(util::gbps(data.size(), secs));
  }
  result.mean_gbps = stats.mean();
  result.stddev_gbps = stats.stddev();
  return result;
}

std::vector<Workload> paper_workloads(const Options& opt) {
  const std::size_t bytes = opt.trace_mb << 20;
  std::vector<Workload> w;
  w.push_back({"ISCX-day2", traffic::generate_trace(traffic::TraceKind::iscx_day2, bytes,
                                                    opt.seed + 10)});
  w.push_back({"ISCX-day6", traffic::generate_trace(traffic::TraceKind::iscx_day6, bytes,
                                                    opt.seed + 11)});
  w.push_back({"DARPA-2000", traffic::generate_trace(traffic::TraceKind::darpa2000, bytes,
                                                     opt.seed + 12)});
  w.push_back({"random", traffic::generate_trace(traffic::TraceKind::random, bytes,
                                                 opt.seed + 13)});
  return w;
}

pattern::PatternSet s1_web_patterns(std::uint64_t seed) {
  return pattern::generate_ruleset(pattern::s1_config(seed)).web_patterns();
}

pattern::PatternSet s2_web_patterns(std::uint64_t seed) {
  return pattern::generate_ruleset(pattern::s2_config(seed)).web_patterns();
}

pattern::PatternSet s2_full_patterns(std::uint64_t seed) {
  return pattern::generate_ruleset(pattern::s2_config(seed));
}

namespace {

// The one escaper (telemetry/json.hpp) — the NDJSON sink, the exporter's
// label rendering, and these reports must never drift apart on escaping.
std::string json_escape(const std::string& s) { return telemetry::json_escaped(s); }

std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

JsonReport::JsonReport(std::string bench_name, const Options& opt)
    : bench_(std::move(bench_name)), opt_(opt) {}

void JsonReport::add(std::vector<std::pair<std::string, std::string>> dims,
                     std::vector<std::pair<std::string, double>> metrics,
                     std::vector<std::pair<std::string, std::uint64_t>> counts) {
  std::string row = "{";
  bool first = true;
  const auto sep = [&] {
    if (!first) row += ", ";
    first = false;
  };
  for (const auto& [k, v] : dims) {
    sep();
    row += "\"" + json_escape(k) + "\": \"" + json_escape(v) + "\"";
  }
  for (const auto& [k, v] : metrics) {
    sep();
    row += "\"" + json_escape(k) + "\": " + json_number(v);
  }
  for (const auto& [k, v] : counts) {
    sep();
    row += "\"" + json_escape(k) + "\": " + std::to_string(v);
  }
  row += "}";
  rows_.push_back(std::move(row));
}

bool JsonReport::write() const {
  if (opt_.json_path.empty()) return true;
  std::FILE* f = std::fopen(opt_.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for writing\n", opt_.json_path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"%s\",\n  \"options\": {\"trace_mb\": %zu, "
               "\"runs\": %u, \"seed\": %llu, \"quick\": %s},\n  \"rows\": [\n",
               json_escape(bench_).c_str(), opt_.trace_mb, opt_.runs,
               static_cast<unsigned long long>(opt_.seed), opt_.quick ? "true" : "false");
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    std::fprintf(f, "    %s%s\n", rows_[i].c_str(), i + 1 < rows_.size() ? "," : "");
  }
  const bool wrote = std::fprintf(f, "  ]\n}\n") > 0;
  const bool ok = std::fclose(f) == 0 && wrote;
  if (!ok) {
    std::fprintf(stderr, "bench: failed writing %s\n", opt_.json_path.c_str());
    return false;
  }
  std::printf("wrote JSON results to %s (%zu rows)\n", opt_.json_path.c_str(),
              rows_.size());
  return true;
}

void print_row(const std::vector<std::string>& cells, const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 12;
    char buf[128];
    std::snprintf(buf, sizeof buf, "%-*s", width, cells[i].c_str());
    line += buf;
  }
  std::puts(line.c_str());
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace vpm::bench
