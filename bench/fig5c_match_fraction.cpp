// Figure 5c: vectorization speedup as the fraction of matching input grows.
// The paper injects increasing amounts of patterns (drawn from a 2 K ruleset)
// into synthetic input; the vector engine's speculative lanes carry more
// useful work as matches densify, so the relative speedup creeps up.
//
//   fig5c_match_fraction [--mb=N] [--runs=N] [--seed=N] [--quick]
#include <cstdio>

#include "common.hpp"
#include "core/spatch.hpp"
#include "core/vpatch.hpp"
#include "traffic/match_injector.hpp"
#include "traffic/random_trace.hpp"

namespace vpm::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const auto full = s2_full_patterns(opt.seed);
  const auto rules = full.random_subset(2000, opt.seed + 5);
  const core::SpatchMatcher spatch(rules);
  const core::VpatchMatcher vpatch(rules);

  std::printf("=== Fig 5c: speedup vs fraction of matching input (2K patterns) ===\n");
  const std::vector<int> widths{12, 14, 14, 12, 14};
  print_row({"match-frac", "S-PATCH-Gbps", "V-PATCH-Gbps", "speedup", "matches"}, widths);

  JsonReport json("fig5c_match_fraction", opt);
  for (double frac : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    auto trace = traffic::generate_random_printable_trace(opt.trace_mb << 20, opt.seed + 20);
    const auto report = traffic::inject_matches(trace, rules, frac, opt.seed + 21);
    const Throughput ts = measure_scan(spatch, trace, opt.runs);
    const Throughput tv = measure_scan(vpatch, trace, opt.runs);
    print_row({fmt(report.achieved_fraction * 100, 0) + "%", fmt(ts.mean_gbps),
               fmt(tv.mean_gbps), fmt(ts.mean_gbps > 0 ? tv.mean_gbps / ts.mean_gbps : 0.0),
               std::to_string(tv.matches)},
              widths);
    json.add({},
             {{"match_fraction", report.achieved_fraction},
              {"spatch_gbps", ts.mean_gbps},
              {"vpatch_gbps", tv.mean_gbps}},
             {{"matches", tv.matches}});
  }
  return json.write() ? 0 : 1;
}

}  // namespace
}  // namespace vpm::bench

int main(int argc, char** argv) { return vpm::bench::main_impl(argc, argv); }
