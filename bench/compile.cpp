// Compile-path latency: how long vpm::compile() takes to turn a rule set
// into an immutable Database, per algorithm and ruleset size, plus the
// compiled footprint (Database::memory_bytes — engine tables + owned pattern
// copy).  This is the control-plane cost a hot-swap pays before publishing a
// new generation, so the trajectory tracks it the same way the scan benches
// track data-plane throughput.
//
//   bench_compile [--seed=N] [--runs=N] [--quick] [--json=FILE]
#include <cstdio>

#include "common.hpp"
#include "core/database.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace vpm::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  struct Set {
    const char* name;
    pattern::PatternSet patterns;
  };
  std::vector<Set> sets;
  sets.push_back({"S1-web", s1_web_patterns(opt.seed)});
  if (!opt.quick) sets.push_back({"S2-full", s2_full_patterns(opt.seed)});

  std::printf("=== compile(): database build latency and footprint ===\n");
  const std::vector<int> widths{10, 22, 10, 12, 12, 14};
  print_row({"set", "algorithm", "patterns", "compile-ms", "stddev-ms", "db-KB"}, widths);

  JsonReport report("compile", opt);
  const unsigned runs = opt.runs > 0 ? opt.runs : 1;
  for (const Set& s : sets) {
    for (const core::Algorithm algo : core::available_algorithms()) {
      // One warm-up compile (first-touch page faults, allocator growth),
      // then `runs` timed compiles of fresh databases.  engine() is touched
      // inside the timed region: the whole-set engine materializes lazily,
      // and this bench reports the full pattern-copy + engine-build cost a
      // Scanner-path reload pays.
      DatabasePtr db = compile(algo, s.patterns);
      db->engine();
      std::vector<double> ms;
      ms.reserve(runs);
      for (unsigned r = 0; r < runs; ++r) {
        util::Timer timer;
        db = compile(algo, s.patterns);
        db->engine();
        ms.push_back(timer.millis());
      }
      const double mean = util::mean_of(ms);
      const double stddev = util::stddev_of(ms);
      print_row({s.name, std::string(core::algorithm_name(algo)),
                 std::to_string(db->pattern_count()), fmt(mean, 2), fmt(stddev, 2),
                 std::to_string(db->memory_bytes() >> 10)},
                widths);
      report.add({{"set", s.name}, {"algorithm", std::string(core::algorithm_name(algo))}},
                 {{"compile_ms_mean", mean}, {"compile_ms_stddev", stddev}},
                 {{"patterns", db->pattern_count()},
                  {"memory_bytes", db->memory_bytes()}});
    }
  }
  return report.write() ? 0 : 1;
}

}  // namespace
}  // namespace vpm::bench

int main(int argc, char** argv) { return vpm::bench::main_impl(argc, argv); }
