// Figure 7 (a/b): the wide-vector experiment.  The paper runs on Xeon Phi
// (512-bit VPU, W = 16); our stand-in is the AVX-512 kernel on the host
// (same width, same gather semantics — see DESIGN.md substitutions).  The
// claim under test is the *scaling shape*: V-PATCH's advantage over the
// scalar engines roughly doubles relative to the W = 8 configuration.
//
//   fig7_wide_vector [--set=s1|s2|both] [--mb=N] [--runs=N] [--seed=N] [--quick]
#include <cstdio>
#include <cstring>

#include "common.hpp"
#include "simd/cpu_features.hpp"

namespace vpm::bench {
namespace {

void run_set(const char* set_name, const pattern::PatternSet& set,
             const std::vector<Workload>& workloads, const Options& opt,
             JsonReport& report) {
  std::printf("\n=== Fig 7 (%s): %zu web patterns, W=16 V-PATCH ===\n", set_name, set.size());
  const std::vector<int> widths{14, 22, 12, 12, 12, 12};
  print_row({"trace", "algorithm", "Gbps", "stddev", "vs-DFC", "matches"}, widths);

  std::vector<core::Algorithm> algos{core::Algorithm::aho_corasick, core::Algorithm::dfc};
  if (core::algorithm_available(core::Algorithm::vector_dfc)) {
    algos.push_back(core::Algorithm::vector_dfc);
  }
  algos.push_back(core::Algorithm::spatch);
  algos.push_back(core::Algorithm::vpatch_avx512);

  std::vector<MatcherPtr> matchers;
  for (core::Algorithm a : algos) matchers.push_back(core::make_matcher(a, set));

  for (const Workload& w : workloads) {
    double dfc_gbps = 0.0;
    for (std::size_t i = 0; i < matchers.size(); ++i) {
      const Throughput t = measure_scan(*matchers[i], w.trace, opt.runs);
      if (algos[i] == core::Algorithm::dfc) dfc_gbps = t.mean_gbps;
      print_row({w.name, std::string(matchers[i]->name()), fmt(t.mean_gbps),
                 fmt(t.stddev_gbps, 3),
                 dfc_gbps > 0.0 ? fmt(t.mean_gbps / dfc_gbps) : std::string("-"),
                 std::to_string(t.matches)},
                widths);
      report.add({{"set", set_name}, {"workload", w.name},
                  {"algorithm", std::string(matchers[i]->name())}},
                 {{"gbps_mean", t.mean_gbps}, {"gbps_stddev", t.stddev_gbps}},
                 {{"matches", t.matches}});
    }
  }
}

int main_impl(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  if (!simd::cpu().has_avx512_kernel()) {
    std::printf("Fig 7 requires AVX-512 (the Xeon-Phi wide-vector stand-in); "
                "not available on this CPU — skipping.\n");
    return 0;
  }
  const char* which = "both";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--set=", 6) == 0) which = argv[i] + 6;
  }
  const auto workloads = paper_workloads(opt);
  JsonReport report("fig7_wide_vector", opt);
  if (std::strcmp(which, "s1") == 0 || std::strcmp(which, "both") == 0) {
    run_set("a: S1 web", s1_web_patterns(opt.seed), workloads, opt, report);
  }
  if (std::strcmp(which, "s2") == 0 || std::strcmp(which, "both") == 0) {
    run_set("b: S2 web", s2_web_patterns(opt.seed + 1), workloads, opt, report);
  }
  return report.write() ? 0 : 1;
}

}  // namespace
}  // namespace vpm::bench

int main(int argc, char** argv) { return vpm::bench::main_impl(argc, argv); }
