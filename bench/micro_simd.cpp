// google-benchmark micro suite for the SIMD primitives: the per-instruction
// story behind the figure-level results (gather vs scalar probes, shuffle
// window transform, hashing, left-pack stores).
#include <benchmark/benchmark.h>

#include <vector>

#include "core/candidates.hpp"
#include "core/filter_bank.hpp"
#include "core/spatch.hpp"
#include "core/vpatch.hpp"
#include "core/vpatch_kernels.hpp"
#include "pattern/ruleset_gen.hpp"
#include "simd/cpu_features.hpp"
#include "simd/ops.hpp"
#include "traffic/http_trace.hpp"
#include "util/rng.hpp"

namespace {

using namespace vpm;

util::Bytes make_data(std::size_t n) {
  util::Bytes d(n);
  util::Rng rng(1);
  for (auto& b : d) b = rng.byte();
  return d;
}

// ---- window transform ------------------------------------------------------

void BM_windows2_scalar(benchmark::State& state) {
  const auto data = make_data(1 << 16);
  std::uint32_t out[8];
  for (auto _ : state) {
    for (std::size_t i = 0; i + 16 <= data.size(); i += 8) {
      simd::windows2_scalar(data.data() + i, out, 8);
      benchmark::DoNotOptimize(out[7]);
    }
  }
  state.SetBytesProcessed(state.iterations() * ((1 << 16) - 16));
}
BENCHMARK(BM_windows2_scalar);

void BM_windows2_avx2(benchmark::State& state) {
  if (!simd::avx2_available()) {
    state.SkipWithError("AVX2 unavailable");
    return;
  }
  const auto data = make_data(1 << 16);
  std::uint32_t out[8];
  for (auto _ : state) {
    for (std::size_t i = 0; i + 16 <= data.size(); i += 8) {
      simd::windows2_avx2(data.data() + i, out);
      benchmark::DoNotOptimize(out[7]);
    }
  }
  state.SetBytesProcessed(state.iterations() * ((1 << 16) - 16));
}
BENCHMARK(BM_windows2_avx2);

// ---- gather vs scalar filter probes ------------------------------------------

void BM_filter_probe_scalar(benchmark::State& state) {
  const auto data = make_data(1 << 16);
  const auto set = pattern::generate_ruleset({.count = 2000, .seed = 2});
  const core::FilterBank bank(set);
  std::uint64_t hits = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i + 1 < data.size(); ++i) {
      const std::uint32_t w = util::load_u16(data.data() + i);
      hits += bank.test_f1(w) + bank.test_f2(w);
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetBytesProcessed(state.iterations() * ((1 << 16) - 1));
}
BENCHMARK(BM_filter_probe_scalar);

void BM_filter_probe_gather_avx2(benchmark::State& state) {
  if (!simd::avx2_available()) {
    state.SkipWithError("AVX2 unavailable");
    return;
  }
  const auto data = make_data(1 << 16);
  const auto set = pattern::generate_ruleset({.count = 2000, .seed = 2});
  const core::FilterBank bank(set);
  core::NoStoreCounts counts;
  for (auto _ : state) {
    core::vpatch_filter_nostore_avx2(data.data(), 0, data.size() - 1, data.size(), bank,
                                     counts);
    benchmark::DoNotOptimize(counts);
  }
  state.SetBytesProcessed(state.iterations() * ((1 << 16) - 1));
}
BENCHMARK(BM_filter_probe_gather_avx2);

void BM_filter_probe_gather_avx512(benchmark::State& state) {
  if (!simd::avx512_available()) {
    state.SkipWithError("AVX-512 unavailable");
    return;
  }
  const auto data = make_data(1 << 16);
  const auto set = pattern::generate_ruleset({.count = 2000, .seed = 2});
  const core::FilterBank bank(set);
  core::NoStoreCounts counts;
  for (auto _ : state) {
    core::vpatch_filter_nostore_avx512(data.data(), 0, data.size() - 1, data.size(), bank,
                                       counts);
    benchmark::DoNotOptimize(counts);
  }
  state.SetBytesProcessed(state.iterations() * ((1 << 16) - 1));
}
BENCHMARK(BM_filter_probe_gather_avx512);

// ---- hash -----------------------------------------------------------------------

void BM_hash_mul_scalar(benchmark::State& state) {
  std::vector<std::uint32_t> in(4096), out(4096);
  util::Rng rng(3);
  for (auto& v : in) v = static_cast<std::uint32_t>(rng());
  for (auto _ : state) {
    simd::hash_mul_scalar(in.data(), out.data(), 4096, 16);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_hash_mul_scalar);

// ---- left-pack --------------------------------------------------------------------

void BM_leftpack_avx2(benchmark::State& state) {
  if (!simd::avx2_available()) {
    state.SkipWithError("AVX2 unavailable");
    return;
  }
  util::Rng rng(4);
  std::vector<std::uint32_t> masks(4096);
  for (auto& m : masks) m = static_cast<std::uint32_t>(rng.below(256));
  std::uint32_t dst[16];
  for (auto _ : state) {
    unsigned total = 0;
    for (std::uint32_t m : masks) total += simd::leftpack_positions_avx2(0, m, dst);
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_leftpack_avx2);

// ---- end-to-end filter round on realistic input -------------------------------------

void BM_spatch_filter_http(benchmark::State& state) {
  const auto trace = traffic::generate_http_trace(traffic::iscx_day2_config(1 << 20, 5));
  const auto set = pattern::generate_ruleset({.count = 2000, .seed = 6});
  const core::SpatchMatcher m(set);
  for (auto _ : state) {
    const auto r = m.filter_only(trace, true);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_spatch_filter_http);

void BM_vpatch_filter_http(benchmark::State& state) {
  if (!simd::avx2_available() && !simd::avx512_available()) {
    state.SkipWithError("no vector kernel");
    return;
  }
  const auto trace = traffic::generate_http_trace(traffic::iscx_day2_config(1 << 20, 5));
  const auto set = pattern::generate_ruleset({.count = 2000, .seed = 6});
  const core::VpatchMatcher m(set);
  for (auto _ : state) {
    const auto r = m.filter_only(trace, true);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * trace.size());
}
BENCHMARK(BM_vpatch_filter_http);

}  // namespace
