// Figure 4 (a/b): overall throughput of the five algorithms on the paper's
// four workloads, for the S1-web (~2 K) and S2-web (~9 K) pattern sets, on
// the "Haswell" configuration (V-PATCH with AVX2, W = 8).
//
//   fig4_throughput [--set=s1|s2|both] [--mb=N] [--runs=N] [--seed=N] [--quick]
//
// Each row reports mean Gbps (stddev) and the speedup relative to DFC, the
// number the paper prints above its bars.
#include <cstdio>
#include <cstring>

#include "common.hpp"
#include "simd/cpu_features.hpp"

namespace vpm::bench {
namespace {

void run_set(const char* set_name, const pattern::PatternSet& set,
             const std::vector<Workload>& workloads, const Options& opt,
             JsonReport& report) {
  std::printf("\n=== Fig 4 (%s): %zu web patterns, %zu MB/trace, %u runs ===\n",
              set_name, set.size(), opt.trace_mb, opt.runs);
  const std::vector<int> widths{14, 22, 12, 12, 12, 12};
  print_row({"trace", "algorithm", "Gbps", "stddev", "vs-DFC", "matches"}, widths);

  std::vector<core::Algorithm> algos{core::Algorithm::aho_corasick, core::Algorithm::dfc};
  if (core::algorithm_available(core::Algorithm::vector_dfc)) {
    algos.push_back(core::Algorithm::vector_dfc);
  }
  algos.push_back(core::Algorithm::spatch);
  if (core::algorithm_available(core::Algorithm::vpatch_avx2)) {
    algos.push_back(core::Algorithm::vpatch_avx2);
  }

  // Build once per set (construction excluded from scan timing, as in the
  // paper; AC's automaton build dominates otherwise).
  std::vector<MatcherPtr> matchers;
  for (core::Algorithm a : algos) matchers.push_back(core::make_matcher(a, set));

  for (const Workload& w : workloads) {
    double dfc_gbps = 0.0;
    for (std::size_t i = 0; i < matchers.size(); ++i) {
      const Throughput t = measure_scan(*matchers[i], w.trace, opt.runs);
      if (algos[i] == core::Algorithm::dfc) dfc_gbps = t.mean_gbps;
      const std::string speedup =
          dfc_gbps > 0.0 ? fmt(t.mean_gbps / dfc_gbps) : std::string("-");
      print_row({w.name, std::string(matchers[i]->name()), fmt(t.mean_gbps),
                 fmt(t.stddev_gbps, 3), speedup, std::to_string(t.matches)},
                widths);
      report.add({{"set", set_name}, {"workload", w.name},
                  {"algorithm", std::string(matchers[i]->name())}},
                 {{"gbps_mean", t.mean_gbps}, {"gbps_stddev", t.stddev_gbps}},
                 {{"matches", t.matches}});
    }
  }
}

int main_impl(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const char* which = "both";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--set=", 6) == 0) which = argv[i] + 6;
  }

  if (!simd::cpu().has_avx2_kernel()) {
    std::printf("note: AVX2 unavailable; Vector-DFC and V-PATCH rows skipped\n");
  }

  const auto workloads = paper_workloads(opt);
  JsonReport report("fig4_throughput", opt);
  if (std::strcmp(which, "s1") == 0 || std::strcmp(which, "both") == 0) {
    run_set("S1 web, paper Fig4a", s1_web_patterns(opt.seed), workloads, opt, report);
  }
  if (std::strcmp(which, "s2") == 0 || std::strcmp(which, "both") == 0) {
    run_set("S2 web, paper Fig4b", s2_web_patterns(opt.seed + 1), workloads, opt, report);
  }
  return report.write() ? 0 : 1;
}

}  // namespace
}  // namespace vpm::bench

int main(int argc, char** argv) { return vpm::bench::main_impl(argc, argv); }
