// Figure 5b: the two opposing trends behind the constant Fig. 5a speedup —
//   (blue line) filtering time as a fraction of total running time falls as
//   pattern count grows (verification eats the budget, Amdahl);
//   (red line)  useful lanes per speculative Filter-3 block rise (more lanes
//   pass Filter 2, so the all-lane evaluation wastes less work).
//
//   fig5b_filter_ratio [--mb=N] [--runs=N] [--seed=N] [--quick]
#include <cstdio>

#include "common.hpp"
#include "core/prefilter.hpp"
#include "core/scan_stats.hpp"
#include "core/vpatch.hpp"
#include "traffic/trace.hpp"

namespace vpm::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const auto full = s2_full_patterns(opt.seed);
  const auto trace = traffic::generate_trace(traffic::TraceKind::iscx_day2,
                                             opt.trace_mb << 20, opt.seed + 10);

  std::printf("=== Fig 5b: filtering/total time %% and useful F3 lanes %% vs patterns ===\n");
  const std::vector<int> widths{10, 16, 18, 14, 14};
  print_row({"patterns", "filter-time-%", "useful-lanes-%", "short-cand", "long-cand"}, widths);

  JsonReport report("fig5b_filter_ratio", opt);
  const std::size_t counts[] = {1000, 2500, 5000, 10000, 15000, 20000};
  // Companion datapoint for the approximate prefilter: per subset size, how
  // many MTU-sized payloads of this trace the q-gram screen would pass, and
  // how many of those passes are false (no true match inside).  Reported in
  // the JSON rows only — the printed figure stays the paper's.
  std::vector<util::ByteView> payloads;
  for (std::size_t off = 0; off + 1500 <= trace.size(); off += 1500) {
    payloads.emplace_back(trace.data() + off, 1500);
  }

  for (std::size_t n : counts) {
    const auto subset = full.random_subset(n, opt.seed + n);
    const core::VpatchMatcher vpatch(subset);
    core::ScanStats stats;
    for (unsigned r = 0; r < opt.runs; ++r) {
      CountingSink sink;
      vpatch.scan_with_stats(trace, sink, stats);
    }

    // Built over the screenable long patterns (>= 8 B, like bench_prefilter's
    // heavy-group gating — the subset's 1-2 byte patterns would null the
    // filter), with ground truth from a matcher over the same gated set so
    // "false pass" means exactly: passed but no screenable pattern inside.
    pattern::PatternSet gated;
    for (const auto& p : subset.patterns()) {
      if (p.bytes.size() >= 8) gated.add(p.bytes, p.nocase, pattern::Group::http);
    }
    double pass_pct = 100.0, fp_pct = 100.0;
    std::uint64_t pf_patterns = 0;
    if (const auto pf = core::build_prefilter(gated)) {
      pf_patterns = gated.size();
      const core::VpatchMatcher gated_vpatch(gated);
      std::uint64_t pass = 0, matching = 0, false_pass = 0;
      for (const util::ByteView p : payloads) {
        const bool hit = pf->screen(p);
        const bool real = gated_vpatch.count_matches(p) > 0;
        pass += hit;
        matching += real;
        false_pass += hit && !real;
      }
      pass_pct = payloads.empty() ? 0.0 : 100.0 * static_cast<double>(pass) /
                                              static_cast<double>(payloads.size());
      fp_pct = payloads.size() > matching
                   ? 100.0 * static_cast<double>(false_pass) /
                         static_cast<double>(payloads.size() - matching)
                   : 0.0;
    }

    print_row({std::to_string(subset.size()), fmt(stats.filter_time_fraction() * 100, 1),
               fmt(stats.f3_lane_utilization() * 100, 1),
               std::to_string(stats.short_candidates / opt.runs),
               std::to_string(stats.long_candidates / opt.runs)},
              widths);
    report.add({},
               {{"filter_time_pct", stats.filter_time_fraction() * 100},
                {"useful_lanes_pct", stats.f3_lane_utilization() * 100},
                {"prefilter_pass_pct", pass_pct},
                {"prefilter_fp_pct", fp_pct}},
               {{"patterns", subset.size()},
                {"short_candidates", stats.short_candidates / opt.runs},
                {"long_candidates", stats.long_candidates / opt.runs},
                {"prefilter_patterns", pf_patterns}});
  }
  return report.write() ? 0 : 1;
}

}  // namespace
}  // namespace vpm::bench

int main(int argc, char** argv) { return vpm::bench::main_impl(argc, argv); }
