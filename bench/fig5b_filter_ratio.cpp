// Figure 5b: the two opposing trends behind the constant Fig. 5a speedup —
//   (blue line) filtering time as a fraction of total running time falls as
//   pattern count grows (verification eats the budget, Amdahl);
//   (red line)  useful lanes per speculative Filter-3 block rise (more lanes
//   pass Filter 2, so the all-lane evaluation wastes less work).
//
//   fig5b_filter_ratio [--mb=N] [--runs=N] [--seed=N] [--quick]
#include <cstdio>

#include "common.hpp"
#include "core/scan_stats.hpp"
#include "core/vpatch.hpp"
#include "traffic/trace.hpp"

namespace vpm::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const auto full = s2_full_patterns(opt.seed);
  const auto trace = traffic::generate_trace(traffic::TraceKind::iscx_day2,
                                             opt.trace_mb << 20, opt.seed + 10);

  std::printf("=== Fig 5b: filtering/total time %% and useful F3 lanes %% vs patterns ===\n");
  const std::vector<int> widths{10, 16, 18, 14, 14};
  print_row({"patterns", "filter-time-%", "useful-lanes-%", "short-cand", "long-cand"}, widths);

  JsonReport report("fig5b_filter_ratio", opt);
  const std::size_t counts[] = {1000, 2500, 5000, 10000, 15000, 20000};
  for (std::size_t n : counts) {
    const auto subset = full.random_subset(n, opt.seed + n);
    const core::VpatchMatcher vpatch(subset);
    core::ScanStats stats;
    for (unsigned r = 0; r < opt.runs; ++r) {
      CountingSink sink;
      vpatch.scan_with_stats(trace, sink, stats);
    }
    print_row({std::to_string(subset.size()), fmt(stats.filter_time_fraction() * 100, 1),
               fmt(stats.f3_lane_utilization() * 100, 1),
               std::to_string(stats.short_candidates / opt.runs),
               std::to_string(stats.long_candidates / opt.runs)},
              widths);
    report.add({},
               {{"filter_time_pct", stats.filter_time_fraction() * 100},
                {"useful_lanes_pct", stats.f3_lane_utilization() * 100}},
               {{"patterns", subset.size()},
                {"short_candidates", stats.short_candidates / opt.runs},
                {"long_candidates", stats.long_candidates / opt.runs}});
  }
  return report.write() ? 0 : 1;
}

}  // namespace
}  // namespace vpm::bench

int main(int argc, char** argv) { return vpm::bench::main_impl(argc, argv); }
