// Ablation bench for the V-PATCH design choices DESIGN.md §5 calls out:
//   * filter merging (one gather for F1+F2) vs separate gathers;
//   * 2x unroll vs straight loop;
//   * speculative all-lane Filter 3 vs per-lane scalar probes;
//   * Filter-3 size (cache residency vs false-positive rate);
//   * two-round split (S-PATCH) vs interleaved filtering+verification (DFC).
//
//   ablation_design [--mb=N] [--runs=N] [--seed=N] [--quick]
#include <cstdio>

#include "common.hpp"
#include "core/spatch.hpp"
#include "core/vpatch.hpp"
#include "dfc/dfc.hpp"
#include "simd/cpu_features.hpp"
#include "traffic/trace.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace vpm::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  // The kernel-level choices live in the filtering round, so ablations
  // measure round one in isolation (end-to-end at high pattern counts is
  // verification-bound and would bury the differences in noise).
  const auto set = s1_web_patterns(opt.seed);
  const auto trace = traffic::generate_trace(traffic::TraceKind::iscx_day2,
                                             opt.trace_mb << 20, opt.seed + 10);
  std::printf("=== Ablations (filtering round): %zu patterns, %zu MB HTTP trace ===\n",
              set.size(), opt.trace_mb);
  const std::vector<int> widths{44, 12, 12};
  print_row({"configuration", "filter-Gbps", "vs-base"}, widths);

  if (!simd::cpu().has_avx2_kernel()) {
    std::printf("AVX2 unavailable; vector ablations skipped\n");
    return 0;
  }

  double base = 0.0;
  ScanScratch scratch;  // reused across configurations and runs
  auto row = [&](const std::string& label, const core::VpatchConfig& cfg) {
    const core::VpatchMatcher m(set, cfg);
    volatile std::uint64_t guard = 0;
    m.filter_only(trace, true, scratch);  // warm-up
    util::RunningStats stats;
    for (unsigned r = 0; r < opt.runs; ++r) {
      util::Timer timer;
      const auto res = m.filter_only(trace, true, scratch);
      stats.add(util::gbps(trace.size(), timer.seconds()));
      guard = guard + res.short_candidates + res.long_candidates;
    }
    if (base == 0.0) base = stats.mean();
    print_row({label, fmt(stats.mean()), fmt(stats.mean() / base)}, widths);
  };

  core::VpatchConfig cfg;  // defaults: merged + unroll2 + speculative F3
  cfg.isa = core::Isa::avx2;  // the paper's Haswell kernel (W=8)
  row("V-PATCH default (merged, unroll2, spec-F3)", cfg);

  {
    auto c = cfg;
    c.kernel.merged_filters = false;
    row("  separate F1/F2 gathers", c);
  }
  {
    auto c = cfg;
    c.kernel.unroll2 = false;
    row("  no unroll", c);
  }
  {
    auto c = cfg;
    c.kernel.speculative_f3 = false;
    row("  scalar per-lane Filter 3", c);
  }
  for (unsigned bits : {12u, 14u, 16u, 18u, 20u}) {
    auto c = cfg;
    c.filters.f3_bits_log2 = bits;
    row("  F3 size 2^" + std::to_string(bits) + " bits (" +
            std::to_string((1u << bits) / 8192) + " KB)",
        c);
  }
  for (std::size_t chunk : {std::size_t{4} << 10, std::size_t{32} << 10, std::size_t{256} << 10}) {
    auto c = cfg;
    c.chunk_size = chunk;
    row("  chunk " + std::to_string(chunk >> 10) + " KB", c);
  }

  // Two-round split vs interleaved verification: S-PATCH vs DFC (scalar).
  {
    const core::SpatchMatcher spatch(set);
    const dfc::DfcMatcher dfcm(set);
    const Throughput ts = measure_scan(spatch, trace, opt.runs);
    const Throughput td = measure_scan(dfcm, trace, opt.runs);
    print_row({"S-PATCH (two rounds, scalar)", fmt(ts.mean_gbps), fmt(ts.mean_gbps / base)},
              widths);
    print_row({"DFC (interleaved, scalar)", fmt(td.mean_gbps), fmt(td.mean_gbps / base)},
              widths);
  }
  return 0;
}

}  // namespace
}  // namespace vpm::bench

int main(int argc, char** argv) { return vpm::bench::main_impl(argc, argv); }
