// Lane-parallel AC vs scalar AC: the compact interleaved automaton gives
// Aho-Corasick a real batch fast path — 8/16 payload lanes traverse the
// arena via hardware gathers, so the scalar walk's one-dependent-load-per-
// byte latency chain becomes gather THROUGHPUT across lanes.  Sweeps
// payload size x batch size x ruleset scale for three engines over the same
// trace bytes sliced into payloads:
//
//   ac-full     scalar full-matrix AC, per-payload scan()   (the baseline)
//   ac-compact  scalar scan() over the compact arena
//   ac-lanes    compact scan_batch (the lane kernel; batch=1 falls back to
//               the per-payload path, so that row measures dispatch cost)
//
//   bench_ac_lanes [--mb=N] [--runs=N] [--seed=N] [--quick] [--json=FILE]
#include <cstdio>
#include <iterator>
#include <vector>

#include "ac/ac_compact.hpp"
#include "ac/ac_full.hpp"
#include "common.hpp"
#include "traffic/trace.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace vpm::bench {
namespace {

struct CountingBatchSink final : BatchSink {
  std::uint64_t matches = 0;
  void on_match(std::uint32_t, const Match&) override { ++matches; }
};

std::vector<util::ByteView> slice(const util::Bytes& trace, std::size_t payload) {
  std::vector<util::ByteView> views;
  views.reserve(trace.size() / payload + 1);
  for (std::size_t off = 0; off + payload <= trace.size(); off += payload) {
    views.emplace_back(trace.data() + off, payload);
  }
  return views;
}

int run_set(const char* label, const pattern::PatternSet& set, const util::Bytes& trace,
            const Options& opt, JsonReport& report) {
  const ac::AcFullMatcher full(set);
  const ac::AcCompactMatcher compact(set);
  std::printf("\n=== AC lanes (%s): %zu patterns, %zu states, full %zu KB vs compact %zu KB "
              "(%.1fx smaller), %zu MB trace ===\n",
              label, set.size(), full.state_count(), full.memory_bytes() >> 10,
              compact.memory_bytes() >> 10,
              static_cast<double>(full.memory_bytes()) /
                  static_cast<double>(compact.memory_bytes()),
              opt.trace_mb);
  const std::vector<int> widths{10, 8, 12, 14, 12, 10};
  print_row({"payload", "batch", "full-Gbps", "compact-Gbps", "lanes-Gbps", "speedup"},
            widths);

  for (std::size_t payload : {std::size_t{64}, std::size_t{256}, std::size_t{1500}}) {
    const auto views = slice(trace, payload);
    const std::size_t bytes = views.size() * payload;
    const std::size_t batches[] = {1, 8, 32};

    // Interleaved measurement: every run times the scalar baselines AND all
    // batch sizes back to back so machine drift cancels out of the ratios.
    std::uint64_t full_matches = 0;
    std::uint64_t compact_matches = 0;
    std::uint64_t lanes_matches[std::size(batches)] = {};
    util::RunningStats full_stats;
    util::RunningStats compact_stats;
    util::RunningStats lanes_stats[std::size(batches)];
    ScanScratch scratch;
    for (unsigned r = 0; r <= opt.runs; ++r) {  // run 0 is the warm-up
      {
        CountingSink sink;
        util::Timer timer;
        for (const util::ByteView& v : views) full.scan(v, sink);
        const double secs = timer.seconds();
        if (r > 0) {
          full_stats.add(util::gbps(bytes, secs));
          full_matches = sink.count();
        }
      }
      {
        CountingSink sink;
        util::Timer timer;
        for (const util::ByteView& v : views) compact.scan(v, sink);
        const double secs = timer.seconds();
        if (r > 0) {
          compact_stats.add(util::gbps(bytes, secs));
          compact_matches = sink.count();
        }
      }
      for (std::size_t bi = 0; bi < std::size(batches); ++bi) {
        const std::size_t batch = batches[bi];
        CountingBatchSink sink;
        util::Timer timer;
        for (std::size_t begin = 0; begin < views.size(); begin += batch) {
          const std::size_t count = std::min(batch, views.size() - begin);
          compact.scan_batch({views.data() + begin, count}, sink, scratch);
        }
        const double secs = timer.seconds();
        if (r > 0) {
          lanes_stats[bi].add(util::gbps(bytes, secs));
          lanes_matches[bi] = sink.matches;
        }
      }
    }

    if (compact_matches != full_matches) {
      std::fprintf(stderr, "compact/full match mismatch: %llu vs %llu\n",
                   static_cast<unsigned long long>(compact_matches),
                   static_cast<unsigned long long>(full_matches));
      return 1;
    }
    for (std::size_t bi = 0; bi < std::size(batches); ++bi) {
      if (lanes_matches[bi] != full_matches) {
        std::fprintf(stderr, "lanes/full match mismatch at batch %zu: %llu vs %llu\n",
                     batches[bi], static_cast<unsigned long long>(lanes_matches[bi]),
                     static_cast<unsigned long long>(full_matches));
        return 1;
      }
      const double speedup =
          full_stats.mean() > 0 ? lanes_stats[bi].mean() / full_stats.mean() : 0.0;
      print_row({std::to_string(payload), std::to_string(batches[bi]),
                 fmt(full_stats.mean()), fmt(compact_stats.mean()),
                 fmt(lanes_stats[bi].mean()), fmt(speedup)},
                widths);
      report.add({{"set", label}},
                 {{"full_gbps", full_stats.mean()},
                  {"full_gbps_stddev", full_stats.stddev()},
                  {"compact_scan_gbps", compact_stats.mean()},
                  {"compact_scan_gbps_stddev", compact_stats.stddev()},
                  {"lanes_gbps", lanes_stats[bi].mean()},
                  {"lanes_gbps_stddev", lanes_stats[bi].stddev()},
                  {"speedup_vs_full", speedup}},
                 {{"payload_bytes", payload},
                  {"batch", batches[bi]},
                  {"matches", lanes_matches[bi]},
                  {"full_table_bytes", full.memory_bytes()},
                  {"compact_bytes", compact.memory_bytes()},
                  {"states", full.state_count()}});
    }
  }
  return 0;
}

int main_impl(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const auto trace = traffic::generate_trace(traffic::TraceKind::iscx_day2,
                                             opt.trace_mb << 20, opt.seed + 30);
  JsonReport report("ac_lanes", opt);
  // Two ruleset scales: the light web set (automaton borderline
  // cache-resident; the lane win is mostly the amortized walk) and the full
  // 20 K set (the full matrix spills hard — the compact arena plus gather
  // MLP is where AC stops being latency-bound).
  if (run_set("S1-web", s1_web_patterns(opt.seed), trace, opt, report) != 0) return 1;
  if (run_set("S2-full", s2_full_patterns(opt.seed + 1), trace, opt, report) != 0) return 1;
  return report.write() ? 0 : 1;
}

}  // namespace
}  // namespace vpm::bench

int main(int argc, char** argv) { return vpm::bench::main_impl(argc, argv); }
