// Memory & build-cost comparison (supports the paper's §II motivation: "as
// the number of patterns increases, the size of the state automaton
// increases ... and does not fit in the cache", vs the filter engines' few
// KB of cache-resident state).  Reports search-structure footprint, build
// time, and — for the automaton engines — bytes per state, which is where
// the compact interleaved AC layout's compression claim is measured rather
// than asserted: the full matrix pays 256 x 4 B per state, the compact
// arena a few dozen bytes.
//
//   table_memory [--seed=N] [--quick]
#include <cstdio>

#include "ac/ac_compact.hpp"
#include "ac/ac_full.hpp"
#include "ac/ac_sparse.hpp"
#include "common.hpp"
#include "core/prefilter.hpp"
#include "util/timer.hpp"

namespace vpm::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const auto full = s2_full_patterns(opt.seed);

  std::printf("=== Search-structure memory and build time vs ruleset size ===\n");
  const std::vector<int> widths{10, 22, 14, 14, 14, 10};
  print_row({"patterns", "algorithm", "memory-KB", "build-ms", "states", "B/state"},
            widths);

  JsonReport report("table_memory", opt);
  const std::size_t counts[] = {1000, 5000, 20000};
  for (std::size_t n : counts) {
    if (opt.quick && n > 5000) break;
    const auto subset = full.random_subset(n, opt.seed + n);
    for (core::Algorithm algo :
         {core::Algorithm::aho_corasick, core::Algorithm::aho_corasick_sparse,
          core::Algorithm::aho_corasick_compact, core::Algorithm::dfc,
          core::Algorithm::spatch, core::Algorithm::vpatch, core::Algorithm::wu_manber}) {
      if (!core::algorithm_available(algo)) continue;
      util::Timer timer;
      const MatcherPtr m = core::make_matcher(algo, subset);
      const double build_ms = timer.millis();
      std::size_t state_count = 0;
      if (const auto* ac = dynamic_cast<const ac::AcFullMatcher*>(m.get())) {
        state_count = ac->state_count();
      } else if (const auto* acc = dynamic_cast<const ac::AcCompactMatcher*>(m.get())) {
        state_count = acc->state_count();
      } else if (const auto* acs = dynamic_cast<const ac::AcSparseMatcher*>(m.get())) {
        state_count = acs->state_count();
      }
      const std::string states = state_count ? std::to_string(state_count) : "-";
      const std::string bps =
          state_count ? fmt(static_cast<double>(m->memory_bytes()) /
                                static_cast<double>(state_count),
                            1)
                      : "-";
      print_row({std::to_string(subset.size()), std::string(m->name()),
                 std::to_string(m->memory_bytes() >> 10), fmt(build_ms, 1), states, bps},
                widths);
      report.add({{"algorithm", std::string(core::algorithm_name(algo))}},
                 {{"build_ms", build_ms},
                  {"bytes_per_state",
                   state_count ? static_cast<double>(m->memory_bytes()) /
                                     static_cast<double>(state_count)
                               : 0.0}},
                 {{"patterns", subset.size()},
                  {"memory_bytes", m->memory_bytes()},
                  {"states", state_count}});
    }

    // The approximate q-gram prefilter rides in front of whichever exact
    // engine serves the group; its signature is the memory it adds on top.
    // Built over the screenable long patterns (>= 8 B, like bench_prefilter's
    // heavy-group gating — the full subset's 1-2 byte patterns would null the
    // filter); "states" is the distinct-gram count the signature encodes.
    pattern::PatternSet gated;
    for (const auto& p : subset.patterns()) {
      if (p.bytes.size() >= 8) gated.add(p.bytes, p.nocase, pattern::Group::http);
    }
    util::Timer pf_timer;
    if (const auto pf = core::build_prefilter(gated)) {
      const double pf_ms = pf_timer.millis();
      print_row({std::to_string(gated.size()), "q-gram prefilter",
                 std::to_string(pf->memory_bytes() >> 10), fmt(pf_ms, 1),
                 std::to_string(pf->gram_count()),
                 fmt(static_cast<double>(pf->memory_bytes()) /
                         static_cast<double>(pf->gram_count()),
                     1)},
                widths);
      report.add({{"algorithm", "qgram_prefilter"}},
                 {{"build_ms", pf_ms},
                  {"bytes_per_state", static_cast<double>(pf->memory_bytes()) /
                                          static_cast<double>(pf->gram_count())},
                  {"occupancy", pf->occupancy()}},
                 {{"patterns", gated.size()},
                  {"memory_bytes", pf->memory_bytes()},
                  {"states", pf->gram_count()}});
    }
  }
  return report.write() ? 0 : 1;
}

}  // namespace
}  // namespace vpm::bench

int main(int argc, char** argv) { return vpm::bench::main_impl(argc, argv); }
