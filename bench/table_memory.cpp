// Memory & build-cost comparison (supports the paper's §II motivation: "as
// the number of patterns increases, the size of the state automaton
// increases ... and does not fit in the cache", vs the filter engines' few
// KB of cache-resident state).  Reports search-structure footprint and build
// time per algorithm across ruleset sizes.
//
//   table_memory [--seed=N] [--quick]
#include <cstdio>

#include "ac/ac_full.hpp"
#include "common.hpp"
#include "util/timer.hpp"

namespace vpm::bench {
namespace {

int main_impl(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const auto full = s2_full_patterns(opt.seed);

  std::printf("=== Search-structure memory and build time vs ruleset size ===\n");
  const std::vector<int> widths{10, 22, 14, 14, 14};
  print_row({"patterns", "algorithm", "memory-KB", "build-ms", "states"}, widths);

  const std::size_t counts[] = {1000, 5000, 20000};
  for (std::size_t n : counts) {
    if (opt.quick && n > 5000) break;
    const auto subset = full.random_subset(n, opt.seed + n);
    for (core::Algorithm algo :
         {core::Algorithm::aho_corasick, core::Algorithm::aho_corasick_sparse,
          core::Algorithm::dfc, core::Algorithm::spatch, core::Algorithm::vpatch,
          core::Algorithm::wu_manber}) {
      if (!core::algorithm_available(algo)) continue;
      util::Timer timer;
      const MatcherPtr m = core::make_matcher(algo, subset);
      const double build_ms = timer.millis();
      std::string states = "-";
      if (const auto* ac = dynamic_cast<const ac::AcFullMatcher*>(m.get())) {
        states = std::to_string(ac->state_count());
      }
      print_row({std::to_string(subset.size()), std::string(m->name()),
                 std::to_string(m->memory_bytes() >> 10), fmt(build_ms, 1), states},
                widths);
    }
  }
  return 0;
}

}  // namespace
}  // namespace vpm::bench

int main(int argc, char** argv) { return vpm::bench::main_impl(argc, argv); }
