// Packet-level sensor: the complete deployed-NIDS path — pcap capture in,
// TCP reassembly, protocol-grouped V-PATCH inspection, alerts out.
//
//   ./pcap_sensor <capture.pcap> [rules.rules]   inspect a real capture
//   ./pcap_sensor --demo                         generate + inspect a capture
//
// Demo mode synthesizes HTTP flows (with deliberately reordered segments and
// planted attack payloads), writes a well-formed pcap to a temp file, then
// runs the inspection pipeline on it — proving a pattern split across TCP
// segments is still caught.
#include <cstdio>
#include <cstring>

#include "ids/pcap_pipeline.hpp"
#include "net/flowgen.hpp"
#include "pattern/ruleset_gen.hpp"
#include "pattern/snort_rules.hpp"
#include "util/byte_io.hpp"
#include "util/timer.hpp"

namespace {

using namespace vpm;

int run(const util::Bytes& pcap_bytes, const pattern::PatternSet& rules) {
  util::Timer timer;
  const auto result = ids::inspect_pcap(pcap_bytes, rules, {core::Algorithm::vpatch});
  const double secs = timer.seconds();

  std::printf("packets: %zu (skipped %zu), flows: %llu, reassembly drops: %llu, "
              "overlap bytes trimmed: %llu\n",
              result.packets, result.skipped_records,
              static_cast<unsigned long long>(result.counters.flows),
              static_cast<unsigned long long>(result.reassembly_drops),
              static_cast<unsigned long long>(result.duplicate_bytes_trimmed));
  std::printf("inspected %llu payload bytes in %.3f s (%.2f Gbps incl. reassembly)\n",
              static_cast<unsigned long long>(result.counters.bytes_inspected), secs,
              util::gbps(result.counters.bytes_inspected, secs));
  std::printf("%zu alerts; first 10:\n", result.alerts.size());
  for (std::size_t i = 0; i < result.alerts.size() && i < 10; ++i) {
    std::printf("  %s\n", format_alert(result.alerts[i], rules).c_str());
  }
  return 0;
}

int run_demo() {
  std::printf("demo: synthesizing a capture with reordered segments and planted attacks\n\n");

  // Flows with 30% adjacent-segment reordering.
  net::FlowGenConfig cfg;
  cfg.flow_count = 6;
  cfg.bytes_per_flow = 1 << 20;
  cfg.reorder_fraction = 0.3;
  cfg.seed = 11;
  auto flows = net::generate_flows(cfg);

  // Plant an attack string ACROSS a segment boundary of flow 0: segment
  // payloads come from the stream, so patching the stream before packets are
  // cut would be invisible; instead patch two consecutive packets' payloads.
  const char* attack = "GET /cgi-bin/../../../../etc/passwd HTTP/1.1";
  std::vector<net::Packet*> flow0;
  for (auto& p : flows.packets) {
    if (p.tuple == flows.tuples[0]) flow0.push_back(&p);
  }
  if (flow0.size() >= 4) {
    net::Packet& a = *flow0[2];
    net::Packet& b = *flow0[3];
    const std::size_t len = std::strlen(attack);
    const std::size_t first = std::min(a.payload.size(), len / 2);
    std::memcpy(a.payload.data() + a.payload.size() - first, attack, first);
    std::memcpy(b.payload.data(), attack + first, std::min(b.payload.size(), len - first));
  }

  const auto pcap = net::write_pcap(flows.packets);
  const std::string path = "/tmp/vpm_demo.pcap";
  util::write_file(path, pcap);
  std::printf("wrote %zu packets (%zu KB) to %s\n\n", flows.packets.size(),
              pcap.size() >> 10, path.c_str());

  pattern::PatternSet rules;
  rules.add("/etc/passwd", true, pattern::Group::http);
  rules.add("cgi-bin/..", true, pattern::Group::http);
  rules.add("UNION SELECT", true, pattern::Group::http);
  rules.add("<script>alert(", true, pattern::Group::http);
  return run(pcap, rules);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--demo") == 0) return run_demo();
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <capture.pcap> [rules.rules]  |  %s --demo\n", argv[0],
                 argv[0]);
    return 2;
  }
  const auto pcap = util::read_file(argv[1]);
  pattern::PatternSet rules;
  if (argc >= 3) {
    rules = pattern::patterns_from_rules(util::to_string(util::read_file(argv[2])));
  } else {
    rules = pattern::generate_ruleset(pattern::s1_config(1));
  }
  std::printf("%zu patterns\n", rules.size());
  return run(pcap, rules);
}
