// Packet-level sensor: the complete deployed-NIDS path — pcap capture in,
// TCP reassembly, protocol-grouped V-PATCH inspection, alerts out.
//
//   ./pcap_sensor <capture.pcap> [rules.rules]   inspect a real capture
//   ./pcap_sensor --demo                         generate + inspect a capture
//   ./pcap_sensor --workers=N ...                shard flows across N workers
//   ./pcap_sensor --batch=N ...                  packets per ring batch (with
//                                                --workers; batches feed the
//                                                engines' scan_batch fast path)
//   ./pcap_sensor --algo=NAME ...                matcher engine; names come
//                                                from available_algorithms()
//                                                (see --help for this CPU)
//   ./pcap_sensor --swap-after=N ...             with --workers: quiesce after
//                                                N packets and hot-swap to a
//                                                freshly compiled database —
//                                                the zero-drop ruleset reload
//                                                path, end to end (alerts are
//                                                tagged per generation)
//   ./pcap_sensor --overlap-policy=NAME ...      TCP segment-overlap policy:
//                                                first|last|target_bsd|
//                                                target_linux (default first)
//
// Demo mode synthesizes HTTP flows (with deliberately reordered segments and
// planted attack payloads), writes a well-formed pcap to a temp file, then
// runs the inspection pipeline on it — proving a pattern split across TCP
// segments is still caught.  With --workers=N the capture is replayed
// through the sharded pipeline runtime (one reassembler + engine per
// worker), which reports the same alerts as the single-threaded path.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/database.hpp"
#include "core/matcher_factory.hpp"
#include "ids/pcap_pipeline.hpp"
#include "net/flowgen.hpp"
#include "pattern/ruleset_gen.hpp"
#include "pattern/snort_rules.hpp"
#include "pipeline/runtime.hpp"
#include "util/byte_io.hpp"
#include "util/timer.hpp"

namespace {

using namespace vpm;

int run_sharded(const util::Bytes& pcap_bytes, const pattern::PatternSet& rules,
                unsigned workers, std::size_t batch_packets, core::Algorithm algo,
                std::size_t swap_after, net::ReassemblyConfig reassembly) {
  auto parsed = net::read_pcap(pcap_bytes);

  // Compile once, share everywhere: the database owns its pattern copy and
  // is handed to the runtime as an immutable artifact.
  const DatabasePtr db = compile(algo, rules);

  pipeline::PipelineConfig cfg;
  cfg.workers = workers;
  cfg.reassembly = reassembly;
  if (batch_packets > 0) cfg.batch_packets = batch_packets;
  pipeline::PipelineRuntime rt(db, cfg);
  rt.start();
  // Compiled outside the timed region: the control-plane cost of producing a
  // new ruleset (bench_compile measures it) must not distort the data-plane
  // Gbps this mode reports alongside the non-swap one.
  DatabasePtr db2;
  if (swap_after > 0 && swap_after < parsed.packets.size()) {
    db2 = compile(algo, rules);  // stands in for a newly distributed ruleset
  }
  util::Timer timer;
  if (db2 != nullptr) {
    for (std::size_t i = 0; i < swap_after; ++i) rt.submit(std::move(parsed.packets[i]));
    // Quiesce-then-swap: every packet so far is attributed to generation 1,
    // everything after to generation 2 — the zero-drop reload recipe.
    rt.quiesce();
    rt.swap_database(db2);
    for (std::size_t i = swap_after; i < parsed.packets.size(); ++i) {
      rt.submit(std::move(parsed.packets[i]));
    }
  } else {
    for (net::Packet& p : parsed.packets) rt.submit(std::move(p));
  }
  rt.stop();
  const double secs = timer.seconds();

  if (db2 != nullptr) {
    std::size_t gen1 = 0, gen2 = 0;
    for (const ids::Alert& a : rt.alerts()) {
      if (a.generation == db->generation()) ++gen1;
      if (a.generation == db2->generation()) ++gen2;
    }
    std::printf("hot-swap after %zu packets: %zu alerts under generation %llu, "
                "%zu under generation %llu (fingerprints %016llx / %016llx)\n",
                swap_after, gen1, static_cast<unsigned long long>(db->generation()),
                gen2, static_cast<unsigned long long>(db2->generation()),
                static_cast<unsigned long long>(db->fingerprint()),
                static_cast<unsigned long long>(db2->fingerprint()));
  }

  const auto stats = rt.stats();
  const auto totals = stats.totals();
  std::printf("pipeline: %u workers, batch %zu, %zu packets (skipped %zu), %llu flows, "
              "reassembly drops: %llu\n",
              rt.workers(), cfg.batch_packets, parsed.packets.size(),
              parsed.skipped_records,
              static_cast<unsigned long long>(totals.flows_seen),
              static_cast<unsigned long long>(totals.reassembly_drops));
  std::printf("reassembly [%s]: c2s %llu B, s2c %llu B, overlap trimmed %llu B, "
              "overwritten %llu B, connections %llu started / %llu ended, "
              "discarded on close %llu B\n",
              net::overlap_policy_name(reassembly.overlap),
              static_cast<unsigned long long>(totals.c2s_delivered_bytes),
              static_cast<unsigned long long>(totals.s2c_delivered_bytes),
              static_cast<unsigned long long>(totals.duplicate_bytes_trimmed),
              static_cast<unsigned long long>(totals.overwritten_bytes),
              static_cast<unsigned long long>(totals.connections_started),
              static_cast<unsigned long long>(totals.connections_ended),
              static_cast<unsigned long long>(totals.discarded_on_close_bytes));
  for (std::size_t w = 0; w < stats.workers.size(); ++w) {
    std::printf("  worker %zu: %llu pkts, %llu flows, %llu alerts\n", w,
                static_cast<unsigned long long>(stats.workers[w].packets),
                static_cast<unsigned long long>(stats.workers[w].flows_seen),
                static_cast<unsigned long long>(stats.workers[w].alerts));
  }
  std::printf("inspected %llu payload bytes in %.3f s (%.2f Gbps end-to-end, "
              "%.0f kpkt/s)\n",
              static_cast<unsigned long long>(totals.bytes_inspected), secs,
              util::gbps(totals.bytes_inspected, secs),
              secs > 0 ? static_cast<double>(parsed.packets.size()) / secs / 1e3 : 0.0);
  std::printf("%zu alerts; first 10:\n", rt.alerts().size());
  for (std::size_t i = 0; i < rt.alerts().size() && i < 10; ++i) {
    std::printf("  %s\n", format_alert(rt.alerts()[i], rules).c_str());
  }
  return 0;
}

int run(const util::Bytes& pcap_bytes, const pattern::PatternSet& rules,
        core::Algorithm algo, net::ReassemblyConfig reassembly) {
  util::Timer timer;
  const auto result = ids::inspect_pcap(pcap_bytes, rules, {algo}, reassembly);
  const double secs = timer.seconds();

  std::printf("packets: %zu (skipped %zu), flows: %llu, reassembly drops: %llu, "
              "overlap bytes trimmed: %llu\n",
              result.packets, result.skipped_records,
              static_cast<unsigned long long>(result.counters.flows),
              static_cast<unsigned long long>(result.reassembly_drops),
              static_cast<unsigned long long>(result.duplicate_bytes_trimmed));
  const net::ReassemblyStats& rs = result.reassembly;
  std::printf("reassembly [%s]: c2s %llu B in %llu chunks, s2c %llu B in %llu "
              "chunks, overwritten %llu B, connections %llu started / %llu ended "
              "(%llu fins, %llu resets), discarded on close %llu B\n",
              net::overlap_policy_name(reassembly.overlap),
              static_cast<unsigned long long>(rs.side[0].delivered_bytes),
              static_cast<unsigned long long>(rs.side[0].chunks),
              static_cast<unsigned long long>(rs.side[1].delivered_bytes),
              static_cast<unsigned long long>(rs.side[1].chunks),
              static_cast<unsigned long long>(rs.side[0].overwritten_bytes +
                                              rs.side[1].overwritten_bytes),
              static_cast<unsigned long long>(rs.connections_started),
              static_cast<unsigned long long>(rs.connections_ended),
              static_cast<unsigned long long>(rs.fins),
              static_cast<unsigned long long>(rs.resets),
              static_cast<unsigned long long>(rs.discarded_on_close_bytes));
  std::printf("inspected %llu payload bytes in %.3f s (%.2f Gbps incl. reassembly, "
              "%.0f kpkt/s)\n",
              static_cast<unsigned long long>(result.counters.bytes_inspected), secs,
              util::gbps(result.counters.bytes_inspected, secs),
              secs > 0 ? static_cast<double>(result.packets) / secs / 1e3 : 0.0);
  std::printf("%zu alerts; first 10:\n", result.alerts.size());
  for (std::size_t i = 0; i < result.alerts.size() && i < 10; ++i) {
    std::printf("  %s\n", format_alert(result.alerts[i], rules).c_str());
  }
  return 0;
}

int run_demo(unsigned workers, std::size_t batch_packets, core::Algorithm algo,
             std::size_t swap_after, net::ReassemblyConfig reassembly) {
  std::printf("demo: synthesizing a capture with reordered segments and planted attacks\n\n");

  // Flows with 30% adjacent-segment reordering.
  net::FlowGenConfig cfg;
  cfg.flow_count = 6;
  cfg.bytes_per_flow = 1 << 20;
  cfg.reorder_fraction = 0.3;
  cfg.seed = 11;
  auto flows = net::generate_flows(cfg);

  // Plant an attack string ACROSS a segment boundary of flow 0: segment
  // payloads come from the stream, so patching the stream before packets are
  // cut would be invisible; instead patch two consecutive packets' payloads.
  const char* attack = "GET /cgi-bin/../../../../etc/passwd HTTP/1.1";
  std::vector<net::Packet*> flow0;
  for (auto& p : flows.packets) {
    if (p.tuple == flows.tuples[0]) flow0.push_back(&p);
  }
  if (flow0.size() >= 4) {
    net::Packet& a = *flow0[2];
    net::Packet& b = *flow0[3];
    const std::size_t len = std::strlen(attack);
    const std::size_t first = std::min(a.payload.size(), len / 2);
    std::memcpy(a.payload.data() + a.payload.size() - first, attack, first);
    std::memcpy(b.payload.data(), attack + first, std::min(b.payload.size(), len - first));
  }

  const auto pcap = net::write_pcap(flows.packets);
  const std::string path = "/tmp/vpm_demo.pcap";
  util::write_file(path, pcap);
  std::printf("wrote %zu packets (%zu KB) to %s\n\n", flows.packets.size(),
              pcap.size() >> 10, path.c_str());

  pattern::PatternSet rules;
  rules.add("/etc/passwd", true, pattern::Group::http);
  rules.add("cgi-bin/..", true, pattern::Group::http);
  rules.add("UNION SELECT", true, pattern::Group::http);
  rules.add("<script>alert(", true, pattern::Group::http);
  return workers > 0 ? run_sharded(pcap, rules, workers, batch_packets, algo,
                                   swap_after, reassembly)
                     : run(pcap, rules, algo, reassembly);
}

// The engine list is the factory's advertised contract for THIS CPU (vector
// variants only appear when the kernels can dispatch), never a hard-coded
// string that silently goes stale when an algorithm is added.
std::string algo_names() {
  std::string names;
  for (const core::Algorithm a : core::available_algorithms()) {
    if (!names.empty()) names += "|";
    names += core::algorithm_name(a);
  }
  return names;
}

void print_usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--workers=N] [--batch=N] [--algo=NAME] [--swap-after=N] "
               "[--overlap-policy=NAME] <capture.pcap> [rules.rules]  |  %s --demo\n"
               "  --algo=NAME      matcher engine (default v-patch); available on "
               "this CPU:\n                   %s\n"
               "  --swap-after=N   with --workers: hot-swap to a recompiled "
               "database after N packets\n"
               "  --overlap-policy=NAME  segment-overlap arbitration: "
               "first|last|target_bsd|target_linux (default first)\n",
               prog, prog, algo_names().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  unsigned workers = 0;        // 0 = single-threaded inspect_pcap path
  std::size_t batch_packets = 0;  // 0 = PipelineConfig default
  std::size_t swap_after = 0;     // 0 = no hot-swap
  core::Algorithm algo = core::Algorithm::vpatch;
  net::ReassemblyConfig reassembly;
  bool demo = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers = static_cast<unsigned>(std::strtoul(argv[i] + 10, nullptr, 10));
    } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
      batch_packets = static_cast<std::size_t>(std::strtoull(argv[i] + 8, nullptr, 10));
    } else if (std::strncmp(argv[i], "--swap-after=", 13) == 0) {
      swap_after = static_cast<std::size_t>(std::strtoull(argv[i] + 13, nullptr, 10));
    } else if (std::strncmp(argv[i], "--overlap-policy=", 17) == 0) {
      const auto policy = net::overlap_policy_from_name(argv[i] + 17);
      if (!policy) {
        std::fprintf(stderr,
                     "unknown --overlap-policy=%s; expected "
                     "first|last|target_bsd|target_linux\n",
                     argv[i] + 17);
        return 2;
      }
      reassembly.overlap = *policy;
    } else if (std::strncmp(argv[i], "--algo=", 7) == 0) {
      const auto parsed = core::algorithm_from_name(argv[i] + 7);
      if (!parsed || !core::algorithm_available(*parsed)) {
        std::fprintf(stderr, "unknown or unavailable --algo=%s; available: %s\n",
                     argv[i] + 7, algo_names().c_str());
        return 2;
      }
      algo = *parsed;
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      print_usage(argv[0]);
      return 0;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (workers == 0 && batch_packets > 0) {
    std::fprintf(stderr,
                 "note: --batch=N only affects the sharded pipeline; add --workers=N\n");
  }
  if (workers == 0 && swap_after > 0) {
    std::fprintf(stderr,
                 "note: --swap-after=N only affects the sharded pipeline; add "
                 "--workers=N\n");
  }
  if (demo) return run_demo(workers, batch_packets, algo, swap_after, reassembly);
  if (positional.empty()) {
    print_usage(argv[0]);
    return 2;
  }
  const auto pcap = util::read_file(positional[0]);
  pattern::PatternSet rules;
  if (positional.size() >= 2) {
    rules = pattern::patterns_from_rules(util::to_string(util::read_file(positional[1])));
  } else {
    rules = pattern::generate_ruleset(pattern::s1_config(1));
  }
  std::printf("%zu patterns\n", rules.size());
  return workers > 0 ? run_sharded(pcap, rules, workers, batch_packets, algo,
                                   swap_after, reassembly)
                     : run(pcap, rules, algo, reassembly);
}
