// Packet-level sensor: the complete deployed-NIDS path — pcap capture in,
// TCP reassembly, protocol-grouped V-PATCH inspection, alerts out.
//
//   ./pcap_sensor <capture.pcap> [rules.rules]   inspect a real capture
//   ./pcap_sensor --demo                         generate + inspect a capture
//   ./pcap_sensor --source=SPEC ...              where packets come from:
//                                                pcap:FILE (same as the
//                                                positional form),
//                                                trace:mixed|evasion[,flows=..,
//                                                epochs=..] generated soak
//                                                traffic, afpacket:IFACE live
//                                                capture (VPM_WITH_AFPACKET)
//   ./pcap_sensor --cpu-list=0-3,8 ...           pin worker i to the i-th
//                                                listed CPU (and replicate the
//                                                compiled rules per NUMA node)
//   ./pcap_sensor --numa=auto ...                derive the pin list from the
//                                                detected topology, workers
//                                                interleaved across nodes
//   ./pcap_sensor --workers=N ...                shard flows across N workers
//   ./pcap_sensor --batch=N ...                  packets per ring batch (with
//                                                --workers; batches feed the
//                                                engines' scan_batch fast path)
//   ./pcap_sensor --algo=NAME ...                matcher engine; names come
//                                                from available_algorithms()
//                                                (see --help for this CPU)
//   ./pcap_sensor --swap-after=N ...             with --workers: quiesce after
//                                                N packets and hot-swap to a
//                                                freshly compiled database —
//                                                the zero-drop ruleset reload
//                                                path, end to end (alerts are
//                                                tagged per generation)
//   ./pcap_sensor --overlap-policy=NAME ...      TCP segment-overlap policy:
//                                                first|last|target_bsd|
//                                                target_linux (default first)
//
// Demo mode synthesizes HTTP flows (with deliberately reordered segments and
// planted attack payloads), writes a well-formed pcap to a temp file, then
// runs the inspection pipeline on it — proving a pattern split across TCP
// segments is still caught.  With --workers=N the capture is replayed
// through the sharded pipeline runtime (one reassembler + engine per
// worker), which reports the same alerts as the single-threaded path.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "capture/capture_telemetry.hpp"
#include "capture/pcap_source.hpp"
#include "capture/source.hpp"
#include "capture/topology.hpp"
#include "core/database.hpp"
#include "core/matcher_factory.hpp"
#include "ids/pcap_pipeline.hpp"
#include "net/flowgen.hpp"
#include "net/pcap.hpp"
#include "pattern/ruleset_gen.hpp"
#include "pattern/snort_rules.hpp"
#include "pipeline/runtime.hpp"
#include "telemetry/http_exporter.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/ndjson_sink.hpp"
#include "telemetry/pipeline_metrics.hpp"
#include "util/byte_io.hpp"
#include "util/failpoint.hpp"
#include "util/timer.hpp"

namespace {

using namespace vpm;

struct SensorOptions {
  unsigned workers = 0;           // 0 = single-threaded inspect_pcap path
  std::size_t batch_packets = 0;  // 0 = PipelineConfig default
  std::size_t swap_after = 0;     // 0 = no hot-swap
  std::string source_spec;        // --source= (positional pcap path otherwise)
  std::vector<int> worker_cpus;   // --cpu-list / --numa=auto pinning
  std::size_t max_packets = 0;    // stop a live/endless source after N (0 = no cap)
  core::Algorithm algo = core::Algorithm::vpatch;
  core::PrefilterMode prefilter = core::PrefilterMode::automatic;
  net::ReassemblyConfig reassembly;
  int metrics_port = -1;          // >= 0: serve /metrics on this port (0 = ephemeral)
  unsigned serve_seconds = 0;     // keep the /metrics endpoint up after the run
  std::string alert_json;         // non-empty: NDJSON alert file
  pipeline::OverloadConfig overload;  // degradation ladder (disabled by default)
  std::string overload_name = "off";
  std::string fail_spec;          // non-empty: arm failpoints (chaos runs)
  std::uint64_t fail_seed = 1;
};

// Registers each directional flow with the NDJSON sink as the producer first
// sees it, so alert lines carry the 5-tuple.  Direction heuristic, mirroring
// the reassembler's client pinning: the reverse side already seen => this is
// its opposite; a SYN|ACK opener => server-to-client; otherwise the first
// speaker is the client.
class FlowRegistrar {
 public:
  explicit FlowRegistrar(telemetry::NdjsonAlertSink& sink) : sink_(sink) {}

  void see(const net::Packet& p) {
    const std::uint64_t key = pipeline::flow_key(p.tuple);
    if (dirs_.find(key) != dirs_.end()) return;
    net::Direction dir = net::Direction::client_to_server;
    const auto rev = dirs_.find(pipeline::flow_key(p.tuple.reversed()));
    if (rev != dirs_.end()) {
      dir = rev->second == net::Direction::client_to_server
                ? net::Direction::server_to_client
                : net::Direction::client_to_server;
    } else if (p.tuple.proto == net::IpProto::tcp &&
               (p.tcp_flags & net::kTcpSyn) != 0 && (p.tcp_flags & net::kTcpAck) != 0) {
      dir = net::Direction::server_to_client;
    }
    dirs_.emplace(key, dir);
    sink_.register_flow(key, p.tuple, dir);
  }

 private:
  telemetry::NdjsonAlertSink& sink_;
  std::unordered_map<std::uint64_t, net::Direction> dirs_;
};

int run_sharded(capture::CaptureSource& source, const pattern::PatternSet& rules,
                const SensorOptions& opt) {
  // Compile once, share everywhere: the database owns its pattern copy and
  // is handed to the runtime as an immutable artifact.
  const DatabasePtr db = compile(opt.algo, rules);

  // Declared before the runtime: instruments registered by the workers live
  // here and must outlive them.
  telemetry::MetricsRegistry registry;

  pipeline::PipelineConfig cfg;
  cfg.workers = opt.workers;
  cfg.prefilter = opt.prefilter;
  cfg.reassembly = opt.reassembly;
  cfg.overload = opt.overload;
  cfg.worker_cpus = opt.worker_cpus;
  // Pinned workers get per-NUMA-node replicas of the compiled ruleset.
  cfg.numa_replicate_rules = !opt.worker_cpus.empty();
  if (opt.batch_packets > 0) cfg.batch_packets = opt.batch_packets;
  if (opt.metrics_port >= 0) cfg.metrics = &registry;

  // --alert-json: alerts stream to the NDJSON file as workers find them, and
  // forward into `collected` (under the sink's lock) so the end-of-run
  // report below stays identical.
  std::vector<ids::Alert> collected;
  ids::AlertBuffer collect_sink{collected};
  std::unique_ptr<telemetry::NdjsonAlertSink> json_sink;
  std::unique_ptr<FlowRegistrar> registrar;
  if (!opt.alert_json.empty()) {
    json_sink = std::make_unique<telemetry::NdjsonAlertSink>(opt.alert_json, &rules,
                                                             &collect_sink);
    registrar = std::make_unique<FlowRegistrar>(*json_sink);
    cfg.alert_sink = json_sink.get();
  }

  pipeline::PipelineRuntime rt(db, cfg);
  if (cfg.numa_replicate_rules && rt.rules_replicas() > 1) {
    std::printf("numa: %zu ruleset replicas across pinned nodes\n",
                rt.rules_replicas());
  }

  std::unique_ptr<capture::CaptureTelemetry> capture_metrics;
  if (opt.metrics_port >= 0) {
    capture_metrics =
        std::make_unique<capture::CaptureTelemetry>(registry, source.kind());
  }

  // The exporter outlives nothing: declared after the runtime so its
  // destructor joins the listener thread before `rt` (which its /metrics
  // source snapshots) is torn down.
  std::unique_ptr<telemetry::HttpExporter> exporter;
  if (opt.metrics_port >= 0) {
    telemetry::HttpExporterConfig ecfg;
    ecfg.port = static_cast<std::uint16_t>(opt.metrics_port);
    exporter = std::make_unique<telemetry::HttpExporter>(ecfg);
    exporter->add_registry(registry);
    exporter->add_source([&rt](std::string& out) {
      telemetry::render_pipeline_prometheus(out, rt.stats());
    });
    exporter->start();
    std::printf("metrics: http://%s:%u/metrics\n", ecfg.bind_address.c_str(),
                exporter->port());
    // Visible immediately even when stdout is a pipe/file: scripts watch for
    // this line to learn the bound (possibly ephemeral) port.
    std::fflush(stdout);
  }

  rt.start();
  // Compiled outside the timed region: the control-plane cost of producing a
  // new ruleset (bench_compile measures it) must not distort the data-plane
  // Gbps this mode reports alongside the non-swap one.
  DatabasePtr db2;
  if (opt.swap_after > 0) {
    db2 = compile(opt.algo, rules);  // stands in for a newly distributed ruleset
  }
  const auto submit = [&](net::Packet& p) {
    if (registrar != nullptr) registrar->see(p);
    rt.submit(std::move(p));
  };
  // One pull loop for every source kind: the file source exhausts, the trace
  // source exhausts after its epochs (or never, epochs=0), the ring source
  // never does — --max-packets bounds the latter two.
  util::Timer timer;
  std::vector<net::Packet> pulled;
  std::size_t submitted = 0;
  bool swapped = db2 == nullptr;
  while (!source.exhausted() &&
         (opt.max_packets == 0 || submitted < opt.max_packets)) {
    pulled.clear();
    if (source.poll(pulled, 256) == 0) continue;  // ring sources wait inside
    for (net::Packet& p : pulled) {
      submit(p);
      ++submitted;
      if (!swapped && submitted >= opt.swap_after) {
        // Quiesce-then-swap: every packet so far is attributed to generation
        // 1, everything after to generation 2 — the zero-drop reload recipe.
        rt.quiesce();
        rt.swap_database(db2);
        swapped = true;
      }
    }
    if (capture_metrics != nullptr) capture_metrics->publish(source);
  }
  rt.stop();
  const double secs = timer.seconds();
  if (capture_metrics != nullptr) capture_metrics->publish(source);
  if (json_sink != nullptr) json_sink->flush();

  // With --alert-json the live sink collected the alerts; otherwise the
  // runtime buffered them per worker.
  const std::vector<ids::Alert>& alerts =
      json_sink != nullptr ? collected : rt.alerts();

  if (db2 != nullptr && swapped) {
    std::size_t gen1 = 0, gen2 = 0;
    for (const ids::Alert& a : alerts) {
      if (a.generation == db->generation()) ++gen1;
      if (a.generation == db2->generation()) ++gen2;
    }
    std::printf("hot-swap after %zu packets: %zu alerts under generation %llu, "
                "%zu under generation %llu (fingerprints %016llx / %016llx)\n",
                opt.swap_after, gen1,
                static_cast<unsigned long long>(db->generation()), gen2,
                static_cast<unsigned long long>(db2->generation()),
                static_cast<unsigned long long>(db->fingerprint()),
                static_cast<unsigned long long>(db2->fingerprint()));
  }

  const auto cap_stats = source.stats();
  const auto stats = rt.stats();
  const auto totals = stats.totals();
  std::printf("%zu packets (skipped %llu), batch %zu, overlap policy %s, "
              "overload policy %s, prefilter %s\n",
              submitted, static_cast<unsigned long long>(cap_stats.skipped),
              cfg.batch_packets, net::overlap_policy_name(opt.reassembly.overlap),
              opt.overload_name.c_str(),
              std::string(core::prefilter_mode_name(opt.prefilter)).c_str());
  std::printf("%s\n", capture::describe_capture_stats(source).c_str());
  // The one shared stats formatter (every WorkerStats field, totals + per
  // worker) — the same field table the /metrics endpoint renders from.
  std::fputs(telemetry::describe_pipeline_stats(stats).c_str(), stdout);
  std::printf("inspected %llu payload bytes in %.3f s (%.2f Gbps end-to-end, "
              "%.0f kpkt/s)\n",
              static_cast<unsigned long long>(totals.bytes_inspected), secs,
              util::gbps(totals.bytes_inspected, secs),
              secs > 0 ? static_cast<double>(submitted) / secs / 1e3 : 0.0);
  std::printf("%zu alerts; first 10:\n", alerts.size());
  for (std::size_t i = 0; i < alerts.size() && i < 10; ++i) {
    std::printf("  %s\n", format_alert(alerts[i], rules).c_str());
  }
  if (json_sink != nullptr) {
    std::printf("wrote %llu NDJSON alerts to %s%s\n",
                static_cast<unsigned long long>(json_sink->emitted()),
                opt.alert_json.c_str(),
                json_sink->ok() ? "" : " (WRITE ERRORS)");
  }

  if (exporter != nullptr && opt.serve_seconds > 0) {
    std::printf("serving /metrics for %u more seconds...\n", opt.serve_seconds);
    std::this_thread::sleep_for(std::chrono::seconds(opt.serve_seconds));
  }
  return json_sink != nullptr && !json_sink->ok() ? 1 : 0;
}

// Opens the source spec and routes to the sharded pipeline or the
// single-threaded inspect_pcap reference.  The reference path consumes raw
// pcap bytes; a trace source is drained and round-tripped through the pcap
// writer so both paths inspect the identical byte stream.
int run(const util::Bytes& pcap_bytes, const pattern::PatternSet& rules,
        const SensorOptions& opt);

int dispatch(const std::string& spec, const pattern::PatternSet& rules,
             const SensorOptions& opt) {
  std::unique_ptr<capture::CaptureSource> source = capture::open_source(spec);
  if (opt.workers > 0) return run_sharded(*source, rules, opt);
  if (const auto* pf = dynamic_cast<const capture::PcapFileSource*>(source.get())) {
    return run(pf->raw(), rules, opt);
  }
  if (source->kind() == "trace") {
    std::vector<net::Packet> packets;
    while (!source->exhausted() &&
           (opt.max_packets == 0 || packets.size() < opt.max_packets)) {
      if (source->poll(packets, 4096) == 0) break;
    }
    if (opt.max_packets != 0 && packets.size() > opt.max_packets) {
      packets.resize(opt.max_packets);
    }
    return run(net::write_pcap(packets), rules, opt);
  }
  std::fprintf(stderr, "--source=%s is a live capture; add --workers=N\n",
               spec.c_str());
  return 2;
}

int run(const util::Bytes& pcap_bytes, const pattern::PatternSet& rules,
        const SensorOptions& opt) {
  util::Timer timer;
  const auto result =
      ids::inspect_pcap(pcap_bytes, rules, {opt.algo, opt.prefilter}, opt.reassembly);
  const double secs = timer.seconds();

  std::printf("packets: %zu (skipped %zu), flows: %llu, reassembly drops: %llu, "
              "overlap bytes trimmed: %llu\n",
              result.packets, result.skipped_records,
              static_cast<unsigned long long>(result.counters.flows),
              static_cast<unsigned long long>(result.reassembly_drops),
              static_cast<unsigned long long>(result.duplicate_bytes_trimmed));
  const net::ReassemblyStats& rs = result.reassembly;
  std::printf("reassembly [%s]: c2s %llu B in %llu chunks, s2c %llu B in %llu "
              "chunks, overwritten %llu B, connections %llu started / %llu ended "
              "(%llu fins, %llu resets), discarded on close %llu B\n",
              net::overlap_policy_name(opt.reassembly.overlap),
              static_cast<unsigned long long>(rs.side[0].delivered_bytes),
              static_cast<unsigned long long>(rs.side[0].chunks),
              static_cast<unsigned long long>(rs.side[1].delivered_bytes),
              static_cast<unsigned long long>(rs.side[1].chunks),
              static_cast<unsigned long long>(rs.side[0].overwritten_bytes +
                                              rs.side[1].overwritten_bytes),
              static_cast<unsigned long long>(rs.connections_started),
              static_cast<unsigned long long>(rs.connections_ended),
              static_cast<unsigned long long>(rs.fins),
              static_cast<unsigned long long>(rs.resets),
              static_cast<unsigned long long>(rs.discarded_on_close_bytes));
  std::printf("prefilter [%s]: passed %llu payloads / %llu B, rejected %llu "
              "payloads / %llu B\n",
              std::string(core::prefilter_mode_name(opt.prefilter)).c_str(),
              static_cast<unsigned long long>(result.counters.prefilter_pass_payloads),
              static_cast<unsigned long long>(result.counters.prefilter_pass_bytes),
              static_cast<unsigned long long>(result.counters.prefilter_reject_payloads),
              static_cast<unsigned long long>(result.counters.prefilter_reject_bytes));
  std::printf("inspected %llu payload bytes in %.3f s (%.2f Gbps incl. reassembly, "
              "%.0f kpkt/s)\n",
              static_cast<unsigned long long>(result.counters.bytes_inspected), secs,
              util::gbps(result.counters.bytes_inspected, secs),
              secs > 0 ? static_cast<double>(result.packets) / secs / 1e3 : 0.0);
  std::printf("%zu alerts; first 10:\n", result.alerts.size());
  for (std::size_t i = 0; i < result.alerts.size() && i < 10; ++i) {
    std::printf("  %s\n", format_alert(result.alerts[i], rules).c_str());
  }
  return 0;
}

int run_demo(const SensorOptions& opt) {
  std::printf("demo: synthesizing a capture with reordered segments and planted attacks\n\n");

  // Flows with 30% adjacent-segment reordering.
  net::FlowGenConfig cfg;
  cfg.flow_count = 6;
  cfg.bytes_per_flow = 1 << 20;
  cfg.reorder_fraction = 0.3;
  cfg.seed = 11;
  auto flows = net::generate_flows(cfg);

  // Plant an attack string ACROSS a segment boundary of flow 0: segment
  // payloads come from the stream, so patching the stream before packets are
  // cut would be invisible; instead patch two consecutive packets' payloads.
  const char* attack = "GET /cgi-bin/../../../../etc/passwd HTTP/1.1";
  std::vector<net::Packet*> flow0;
  for (auto& p : flows.packets) {
    if (p.tuple == flows.tuples[0]) flow0.push_back(&p);
  }
  if (flow0.size() >= 4) {
    net::Packet& a = *flow0[2];
    net::Packet& b = *flow0[3];
    const std::size_t len = std::strlen(attack);
    const std::size_t first = std::min(a.payload.size(), len / 2);
    std::memcpy(a.payload.data() + a.payload.size() - first, attack, first);
    std::memcpy(b.payload.data(), attack + first, std::min(b.payload.size(), len - first));
  }

  const auto pcap = net::write_pcap(flows.packets);
  const std::string path = "/tmp/vpm_demo.pcap";
  util::write_file(path, pcap);
  std::printf("wrote %zu packets (%zu KB) to %s\n\n", flows.packets.size(),
              pcap.size() >> 10, path.c_str());

  pattern::PatternSet rules;
  rules.add("/etc/passwd", true, pattern::Group::http);
  rules.add("cgi-bin/..", true, pattern::Group::http);
  rules.add("UNION SELECT", true, pattern::Group::http);
  rules.add("<script>alert(", true, pattern::Group::http);
  if (opt.workers > 0) {
    capture::PcapFileSource source(pcap);
    return run_sharded(source, rules, opt);
  }
  return run(pcap, rules, opt);
}

// The engine list is the factory's advertised contract for THIS CPU (vector
// variants only appear when the kernels can dispatch), never a hard-coded
// string that silently goes stale when an algorithm is added.
std::string algo_names() {
  std::string names;
  for (const core::Algorithm a : core::available_algorithms()) {
    if (!names.empty()) names += "|";
    names += core::algorithm_name(a);
  }
  return names;
}

void print_usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--source=SPEC] [--workers=N] [--batch=N] [--algo=NAME] "
               "[--prefilter=MODE] [--swap-after=N] [--cpu-list=LIST] [--numa=auto] "
               "[--max-packets=N] "
               "[--overlap-policy=NAME] [--overload-policy=NAME] [--fail=SPEC] "
               "[--fail-seed=N] [--metrics-port=N] [--serve-seconds=N] "
               "[--alert-json=FILE] <capture.pcap> [rules.rules]  |  %s --demo\n"
               "  --source=SPEC    pcap:FILE | trace:mixed|evasion[,flows=N,"
               "seed=N,epochs=N] | afpacket:IFACE[,blocks=N,block_kb=N,fanout=ID] "
               "(a bare path means pcap)\n"
               "  --cpu-list=LIST  pin worker i to the i-th CPU of LIST (0-3,8) "
               "and replicate the ruleset per NUMA node\n"
               "  --numa=auto      derive the pin list from sysfs topology, "
               "interleaved across nodes\n"
               "  --max-packets=N  stop after N packets (endless/live sources)\n"
               "  --algo=NAME      matcher engine (default v-patch); available on "
               "this CPU:\n                   %s\n"
               "  --prefilter=MODE approximate q-gram prefilter ahead of the exact "
               "engines: on|off|auto (default auto; alerts are identical in every "
               "mode)\n"
               "  --swap-after=N   with --workers: hot-swap to a recompiled "
               "database after N packets\n"
               "  --overlap-policy=NAME  segment-overlap arbitration: "
               "first|last|target_bsd|target_linux (default first)\n"
               "  --overload-policy=NAME with --workers: graceful-degradation "
               "ladder: off|conservative|aggressive (default off)\n"
               "  --fail=SPEC      arm deterministic failpoints, e.g. "
               "ring_push=every:100,alert_sink_write=prob:0.01\n"
               "  --fail-seed=N    seed for probabilistic failpoint modes\n"
               "  --metrics-port=N with --workers: serve Prometheus /metrics and "
               "/healthz on port N (0 = ephemeral)\n"
               "  --serve-seconds=N      keep /metrics up N seconds after the run\n"
               "  --alert-json=FILE      with --workers: stream alerts as NDJSON "
               "(one JSON object per line) to FILE\n",
               prog, prog, algo_names().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  SensorOptions opt;
  bool demo = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      opt.workers = static_cast<unsigned>(std::strtoul(argv[i] + 10, nullptr, 10));
    } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
      opt.batch_packets =
          static_cast<std::size_t>(std::strtoull(argv[i] + 8, nullptr, 10));
    } else if (std::strncmp(argv[i], "--swap-after=", 13) == 0) {
      opt.swap_after =
          static_cast<std::size_t>(std::strtoull(argv[i] + 13, nullptr, 10));
    } else if (std::strncmp(argv[i], "--source=", 9) == 0) {
      opt.source_spec = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--max-packets=", 14) == 0) {
      opt.max_packets =
          static_cast<std::size_t>(std::strtoull(argv[i] + 14, nullptr, 10));
    } else if (std::strncmp(argv[i], "--cpu-list=", 11) == 0) {
      const auto cpus = capture::parse_cpu_list(argv[i] + 11);
      if (!cpus || cpus->empty()) {
        std::fprintf(stderr, "bad --cpu-list=%s; expected e.g. 0-3,8\n",
                     argv[i] + 11);
        return 2;
      }
      opt.worker_cpus = *cpus;
    } else if (std::strcmp(argv[i], "--numa=auto") == 0) {
      opt.worker_cpus = capture::CpuTopology::detect().interleaved_cpus();
    } else if (std::strncmp(argv[i], "--metrics-port=", 15) == 0) {
      opt.metrics_port = static_cast<int>(std::strtol(argv[i] + 15, nullptr, 10));
      if (opt.metrics_port < 0 || opt.metrics_port > 65535) {
        std::fprintf(stderr, "bad --metrics-port=%s; expected 0..65535\n",
                     argv[i] + 15);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--serve-seconds=", 16) == 0) {
      opt.serve_seconds =
          static_cast<unsigned>(std::strtoul(argv[i] + 16, nullptr, 10));
    } else if (std::strncmp(argv[i], "--alert-json=", 13) == 0) {
      opt.alert_json = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--overload-policy=", 18) == 0) {
      const auto policy = pipeline::overload_policy_from_name(argv[i] + 18);
      if (!policy) {
        std::fprintf(stderr,
                     "unknown --overload-policy=%s; expected "
                     "off|conservative|aggressive\n",
                     argv[i] + 18);
        return 2;
      }
      opt.overload = *policy;
      opt.overload_name = argv[i] + 18;
    } else if (std::strncmp(argv[i], "--fail=", 7) == 0) {
      opt.fail_spec = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--fail-seed=", 12) == 0) {
      opt.fail_seed = std::strtoull(argv[i] + 12, nullptr, 10);
    } else if (std::strncmp(argv[i], "--overlap-policy=", 17) == 0) {
      const auto policy = net::overlap_policy_from_name(argv[i] + 17);
      if (!policy) {
        std::fprintf(stderr,
                     "unknown --overlap-policy=%s; expected "
                     "first|last|target_bsd|target_linux\n",
                     argv[i] + 17);
        return 2;
      }
      opt.reassembly.overlap = *policy;
    } else if (std::strncmp(argv[i], "--prefilter=", 12) == 0) {
      const auto mode = core::prefilter_mode_from_name(argv[i] + 12);
      if (!mode) {
        std::fprintf(stderr, "unknown --prefilter=%s; expected on|off|auto\n",
                     argv[i] + 12);
        return 2;
      }
      opt.prefilter = *mode;
    } else if (std::strncmp(argv[i], "--algo=", 7) == 0) {
      const auto parsed = core::algorithm_from_name(argv[i] + 7);
      if (!parsed || !core::algorithm_available(*parsed)) {
        std::fprintf(stderr, "unknown or unavailable --algo=%s; available: %s\n",
                     argv[i] + 7, algo_names().c_str());
        return 2;
      }
      opt.algo = *parsed;
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      print_usage(argv[0]);
      return 0;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (opt.workers == 0) {
    if (opt.batch_packets > 0) {
      std::fprintf(
          stderr, "note: --batch=N only affects the sharded pipeline; add --workers=N\n");
    }
    if (opt.swap_after > 0) {
      std::fprintf(stderr,
                   "note: --swap-after=N only affects the sharded pipeline; add "
                   "--workers=N\n");
    }
    if (opt.metrics_port >= 0 || !opt.alert_json.empty()) {
      std::fprintf(stderr,
                   "note: --metrics-port/--alert-json require the sharded pipeline; "
                   "add --workers=N\n");
    }
  }
  // Chaos arming before any pipeline runs, so the failure paths of BOTH the
  // single-threaded and the sharded sensor can be exercised from the CLI
  // (equivalent to VPM_FAILPOINTS=<spec> in the environment).
  if (!opt.fail_spec.empty()) {
    const std::string err = util::failpoint::arm(opt.fail_spec, opt.fail_seed);
    if (!err.empty()) {
      std::fprintf(stderr, "bad --fail=%s: %s\n", opt.fail_spec.c_str(), err.c_str());
      return 2;
    }
  }
  const auto finish = [](int rc) {
    if (util::failpoint::any_armed()) {
      std::printf("failpoints:\n%s", util::failpoint::describe().c_str());
    }
    return rc;
  };
  if (demo) return finish(run_demo(opt));
  if (opt.source_spec.empty() && positional.empty()) {
    print_usage(argv[0]);
    return 2;
  }
  // Positional file and --source are the same thing: a bare path opens as a
  // pcap source, so the historical `pcap_sensor capture.pcap` form routes
  // through the exact code the live modes use.
  const std::string spec =
      !opt.source_spec.empty() ? opt.source_spec : std::string(positional[0]);
  const std::size_t rules_arg = opt.source_spec.empty() ? 1 : 0;
  pattern::PatternSet rules;
  if (positional.size() > rules_arg) {
    rules = pattern::patterns_from_rules(
        util::to_string(util::read_file(positional[rules_arg])));
  } else {
    rules = pattern::generate_ruleset(pattern::s1_config(1));
  }
  std::printf("%zu patterns\n", rules.size());
  try {
    return finish(dispatch(spec, rules, opt));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return finish(1);
  }
}
