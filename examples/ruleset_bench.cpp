// Interactive throughput explorer: pick an algorithm, a pattern count and a
// trace kind; get Gbps and match counts.  Handy for poking at the trade-off
// space without running the full figure benches.
//
//   ./ruleset_bench [--algo=NAME] [--patterns=N] [--trace=iscx2|iscx6|darpa|random]
//                   [--mb=N] [--seed=N] [--list]
#include <cstdio>
#include <cstring>
#include <string>

#include "core/matcher_factory.hpp"
#include "pattern/ruleset_gen.hpp"
#include "traffic/trace.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace vpm;

  std::string algo_name = "v-patch";
  std::size_t n_patterns = 2000;
  std::string trace_name = "iscx2";
  std::size_t mb = 8;
  std::uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--algo=", 7) == 0) algo_name = a + 7;
    else if (std::strncmp(a, "--patterns=", 11) == 0) n_patterns = std::strtoull(a + 11, nullptr, 10);
    else if (std::strncmp(a, "--trace=", 8) == 0) trace_name = a + 8;
    else if (std::strncmp(a, "--mb=", 5) == 0) mb = std::strtoull(a + 5, nullptr, 10);
    else if (std::strncmp(a, "--seed=", 7) == 0) seed = std::strtoull(a + 7, nullptr, 10);
    else if (std::strcmp(a, "--list") == 0) {
      std::printf("algorithms available on this CPU:\n");
      for (core::Algorithm alg : core::available_algorithms()) {
        std::printf("  %s\n", std::string(core::algorithm_name(alg)).c_str());
      }
      return 0;
    }
  }

  const auto algo = core::algorithm_from_name(algo_name);
  if (!algo || !core::algorithm_available(*algo)) {
    std::fprintf(stderr, "unknown or unavailable algorithm '%s' (try --list)\n",
                 algo_name.c_str());
    return 2;
  }

  traffic::TraceKind kind = traffic::TraceKind::iscx_day2;
  if (trace_name == "iscx6") kind = traffic::TraceKind::iscx_day6;
  else if (trace_name == "darpa") kind = traffic::TraceKind::darpa2000;
  else if (trace_name == "random") kind = traffic::TraceKind::random;
  else if (trace_name != "iscx2") {
    std::fprintf(stderr, "unknown trace '%s'\n", trace_name.c_str());
    return 2;
  }

  pattern::RulesetConfig cfg = pattern::s2_config(seed);
  const auto full = pattern::generate_ruleset(cfg);
  const auto set = full.random_subset(n_patterns, seed + 1);
  std::printf("patterns: %zu (of %zu generated), trace: %s %zu MB, seed %llu\n", set.size(),
              full.size(), trace_name.c_str(), mb, static_cast<unsigned long long>(seed));

  util::Timer build_timer;
  const MatcherPtr m = core::make_matcher(*algo, set);
  std::printf("%s: built in %.2f ms, structures %zu KB\n",
              std::string(m->name()).c_str(), build_timer.millis(), m->memory_bytes() >> 10);

  const auto trace = traffic::generate_trace(kind, mb << 20, seed + 2);
  (void)m->count_matches(trace);  // warm-up
  util::Timer timer;
  const auto matches = m->count_matches(trace);
  const double secs = timer.seconds();
  std::printf("scan: %.3f s, %.2f Gbps, %llu matches\n", secs, util::gbps(trace.size(), secs),
              static_cast<unsigned long long>(matches));
  return 0;
}
