// Multi-pattern log/file scanner: grep for thousands of indicators in one
// pass — the "whitelisting or blacklisting over a byte stream" use case.
//
//   ./log_scanner <patterns.txt> <file...>     scan files (one pattern per line)
//   ./log_scanner --demo                       self-contained demonstration
//
// Prints every occurrence with file, offset, and the matched pattern, then a
// per-pattern hit summary.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "core/matcher_factory.hpp"
#include "pattern/attack_corpus.hpp"
#include "pattern/pattern_set.hpp"
#include "traffic/http_trace.hpp"
#include "util/byte_io.hpp"
#include "util/timer.hpp"

namespace {

using namespace vpm;

pattern::PatternSet patterns_from_lines(const std::string& text) {
  pattern::PatternSet set;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty() && line[0] != '#') set.add(line, /*nocase=*/true);
  }
  return set;
}

int scan_buffer(const std::string& name, util::ByteView data,
                const pattern::PatternSet& set, const Matcher& matcher,
                std::map<std::uint32_t, std::uint64_t>& totals, bool print_each) {
  util::Timer timer;
  const auto matches = matcher.find_matches(data);
  const double secs = timer.seconds();
  for (const Match& m : matches) {
    ++totals[m.pattern_id];
    if (print_each && totals[m.pattern_id] <= 5) {  // cap per-pattern spam
      std::printf("%s:%llu: %s\n", name.c_str(), static_cast<unsigned long long>(m.pos),
                  set[m.pattern_id].printable().c_str());
    }
  }
  std::printf("-- %s: %zu bytes, %zu matches, %.2f Gbps\n", name.c_str(), data.size(),
              matches.size(), util::gbps(data.size(), secs));
  return 0;
}

int run_demo() {
  std::printf("demo: scanning generated web-server traffic for the built-in "
              "attack-indicator corpus\n\n");
  pattern::PatternSet set;
  for (const auto s : pattern::attack_strings()) set.add(std::string(s), true);
  const auto matcher = core::make_matcher(core::Algorithm::vpatch, set);

  auto traffic_buf = traffic::generate_http_trace(traffic::iscx_day2_config(4 << 20, 9));
  // Plant a few indicators so the demo has guaranteed findings.
  const char* planted[] = {"UNION SELECT", "../../../../etc/passwd", "<script>alert("};
  std::size_t at = 100000;
  for (const char* p : planted) {
    std::memcpy(traffic_buf.data() + at, p, std::strlen(p));
    at += 300000;
  }

  std::map<std::uint32_t, std::uint64_t> totals;
  scan_buffer("generated-traffic", traffic_buf, set, *matcher, totals, true);

  std::printf("\ntop indicators:\n");
  for (const auto& [id, count] : totals) {
    std::printf("  %6llu x %s\n", static_cast<unsigned long long>(count),
                set[id].printable().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--demo") == 0) return run_demo();
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <patterns.txt> <file...>  |  %s --demo\n", argv[0],
                 argv[0]);
    return 2;
  }
  const auto set = patterns_from_lines(util::to_string(util::read_file(argv[1])));
  if (set.empty()) {
    std::fprintf(stderr, "no patterns in %s\n", argv[1]);
    return 2;
  }
  std::printf("%zu patterns loaded\n", set.size());
  const auto matcher = core::make_matcher(core::Algorithm::vpatch, set);
  std::map<std::uint32_t, std::uint64_t> totals;
  for (int i = 2; i < argc; ++i) {
    const auto data = util::read_file(argv[i]);
    scan_buffer(argv[i], data, set, *matcher, totals, true);
  }
  return 0;
}
