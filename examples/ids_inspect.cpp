// Mini-NIDS demo: the scenario from the paper's introduction — thousands of
// Snort-style rules, protocol rule groups, reassembled flows inspected
// chunk-by-chunk, alerts on matches.
//
//   ./ids_inspect [ruleset.rules]
//
// With no argument, a synthetic S1-like ruleset (~2.5 K patterns) and an
// ISCX-like HTTP traffic mix with injected attacks are generated.
#include <cstdio>
#include <string>

#include "ids/engine.hpp"
#include "pattern/ruleset_gen.hpp"
#include "pattern/snort_rules.hpp"
#include "traffic/match_injector.hpp"
#include "traffic/trace.hpp"
#include "util/byte_io.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace vpm;

  // 1. Rules: parse a real Snort rules file if given, else generate.
  pattern::PatternSet rules;
  if (argc > 1) {
    const auto text = util::read_file(argv[1]);
    rules = pattern::patterns_from_rules(util::to_string(text));
    std::printf("loaded %zu patterns from %s\n", rules.size(), argv[1]);
  } else {
    rules = pattern::generate_ruleset(pattern::s1_config(42));
    std::printf("generated %zu synthetic patterns (S1-like)\n", rules.size());
  }
  const auto stats = rules.length_stats();
  std::printf("  short family (1-3B): %zu, long family (>=4B): %zu, 1-4B fraction: %.0f%%\n",
              stats.short_family, stats.long_family, stats.frac_len_1_to_4 * 100);

  // 2. Traffic: 8 flows of HTTP with injected attack patterns.
  constexpr std::size_t kFlowBytes = 2 << 20;
  constexpr int kFlows = 8;
  std::vector<util::Bytes> flows;
  for (int f = 0; f < kFlows; ++f) {
    auto stream = traffic::generate_trace(traffic::TraceKind::iscx_day2, kFlowBytes, 100 + f);
    traffic::inject_matches(stream, rules.web_patterns(), 0.0005, 200 + f);
    flows.push_back(std::move(stream));
  }

  // 3. Inspect: chunked feed through the engine (HTTP protocol group).
  ids::IdsEngine engine(rules, {core::Algorithm::vpatch});
  std::vector<ids::Alert> alerts;
  util::Rng rng(7);
  util::Timer timer;
  for (int f = 0; f < kFlows; ++f) {
    std::size_t off = 0;
    while (off < flows[f].size()) {
      const auto len = std::min<std::size_t>(
          static_cast<std::size_t>(rng.between(512, 9000)), flows[f].size() - off);
      engine.inspect(static_cast<std::uint64_t>(f), pattern::Group::http,
                     {flows[f].data() + off, len}, alerts);
      off += len;
    }
    engine.close_flow(static_cast<std::uint64_t>(f));
  }
  const double secs = timer.seconds();

  // 4. Report.
  const auto& c = engine.counters();
  std::printf("\ninspected %llu bytes in %llu chunks across %llu flows in %.3f s (%.2f Gbps)\n",
              static_cast<unsigned long long>(c.bytes_inspected),
              static_cast<unsigned long long>(c.chunks),
              static_cast<unsigned long long>(c.flows), secs,
              util::gbps(c.bytes_inspected, secs));
  std::printf("%llu alerts; first 10:\n", static_cast<unsigned long long>(c.alerts));
  for (std::size_t i = 0; i < alerts.size() && i < 10; ++i) {
    std::printf("  %s\n", format_alert(alerts[i], rules).c_str());
  }
  return 0;
}
