// Quickstart: build a V-PATCH matcher from a handful of patterns and scan a
// buffer — the 30-second tour of the public API.
//
//   ./quickstart
#include <cstdio>

#include "core/matcher_factory.hpp"
#include "pattern/pattern_set.hpp"

int main() {
  using namespace vpm;

  // 1. Collect patterns.  Ids are dense and stable; `nocase` gives Snort-style
  //    ASCII case-insensitive matching; groups tag protocol relevance.
  pattern::PatternSet patterns;
  patterns.add("GET /admin", /*nocase=*/true, pattern::Group::http);
  patterns.add("UNION SELECT", /*nocase=*/true, pattern::Group::http);
  patterns.add("/etc/passwd");
  patterns.add("\x90\x90\x90\x90");  // binary patterns work too

  // 2. Build a matcher.  Algorithm::vpatch picks the widest SIMD kernel the
  //    CPU offers (AVX-512 W=16, AVX2 W=8, scalar fallback) — all engines
  //    report the identical matches.
  const MatcherPtr matcher = core::make_matcher(core::Algorithm::vpatch, patterns);
  std::printf("engine: %s, search structures: %zu KB\n",
              std::string(matcher->name()).c_str(), matcher->memory_bytes() >> 10);

  // 3. Scan.  Sinks receive (pattern_id, start offset) for every occurrence.
  const std::string payload =
      "GET /admin HTTP/1.1\r\nHost: x\r\n\r\n"
      "id=1 union select password from users -- /etc/passwd";
  const auto matches = matcher->find_matches(util::as_view(payload));

  std::printf("%zu matches in %zu bytes:\n", matches.size(), payload.size());
  for (const Match& m : matches) {
    std::printf("  offset %4llu  pattern %u  '%s'\n",
                static_cast<unsigned long long>(m.pos), m.pattern_id,
                patterns[m.pattern_id].printable().c_str());
  }
  return 0;
}
