// Quickstart: compile a V-PATCH database from a handful of patterns and scan
// a buffer through a Scanner session — the 30-second tour of the public API.
//
//   ./quickstart
#include <cstdio>

#include "core/database.hpp"
#include "pattern/pattern_set.hpp"

int main() {
  using namespace vpm;

  // 1. Collect patterns.  Ids are dense and stable; `nocase` gives Snort-style
  //    ASCII case-insensitive matching; groups tag protocol relevance.
  pattern::PatternSet patterns;
  patterns.add("GET /admin", /*nocase=*/true, pattern::Group::http);
  patterns.add("UNION SELECT", /*nocase=*/true, pattern::Group::http);
  patterns.add("/etc/passwd");
  patterns.add("\x90\x90\x90\x90");  // binary patterns work too

  // 2. Compile.  Algorithm::vpatch picks the widest SIMD kernel the CPU
  //    offers (AVX-512 W=16, AVX2 W=8, scalar fallback) — all engines report
  //    the identical matches.  The Database owns a copy of the patterns, so
  //    `patterns` could be destroyed right here; share it across threads via
  //    the returned shared_ptr.
  const DatabasePtr db = compile(core::Algorithm::vpatch, patterns);
  std::printf("engine: %s, %zu patterns, compiled size: %zu KB, "
              "generation %llu, fingerprint %016llx\n",
              std::string(db->engine().name()).c_str(), db->pattern_count(),
              db->memory_bytes() >> 10,
              static_cast<unsigned long long>(db->generation()),
              static_cast<unsigned long long>(db->fingerprint()));

  // 3. Scan through a per-thread Scanner session.  Sinks receive
  //    (pattern_id, start offset) for every occurrence; find_matches is the
  //    collecting convenience.
  Scanner scanner(db);
  const std::string payload =
      "GET /admin HTTP/1.1\r\nHost: x\r\n\r\n"
      "id=1 union select password from users -- /etc/passwd";
  const auto matches = scanner.find_matches(util::as_view(payload));

  std::printf("%zu matches in %zu bytes:\n", matches.size(), payload.size());
  for (const Match& m : matches) {
    std::printf("  offset %4llu  pattern %u  '%s'\n",
                static_cast<unsigned long long>(m.pos), m.pattern_id,
                db->patterns()[m.pattern_id].printable().c_str());
  }
  return 0;
}
