// The pipeline determinism contract: the sharded multi-worker runtime must
// produce exactly the alert multiset of a single-threaded IdsEngine fed by
// one TcpReassembler over the same packets — across worker counts,
// algorithms, reordered segments, mixed protocols, and batch sizes.  Flow
// ids are pipeline::flow_key(tuple) on both sides, so the comparison is
// bitwise, not just count-wise.
#include <gtest/gtest.h>

#include <algorithm>

#include "helpers.hpp"
#include "ids/pcap_pipeline.hpp"
#include "net/flowgen.hpp"
#include "pipeline/runtime.hpp"

namespace vpm::pipeline {
namespace {

pattern::PatternSet mixed_rules() {
  pattern::PatternSet rules;
  // HTTP-group patterns that actually occur in the generated HTTP traces.
  rules.add("GET /", false, pattern::Group::http);
  rules.add("HTTP/1.1", true, pattern::Group::http);
  rules.add("Host:", true, pattern::Group::http);
  rules.add("/etc/passwd", false, pattern::Group::http);
  // Generic patterns are folded into every group's matcher.
  rules.add("ion", false, pattern::Group::generic);
  rules.add("admin", true, pattern::Group::generic);
  // A DNS-group pattern for the UDP datagrams.
  rules.add("dns-marker", false, pattern::Group::dns);
  return rules;
}

// The traffic mix: TCP flows to port 80 (http group) and port 21 (ftp
// group, exercising a second matcher), with segment reordering, plus UDP
// datagrams to port 53 — interleaved deterministically.
std::vector<net::Packet> mixed_traffic(std::uint64_t seed) {
  net::FlowGenConfig http_cfg;
  http_cfg.flow_count = 6;
  http_cfg.bytes_per_flow = 60000;
  http_cfg.reorder_fraction = 0.3;
  http_cfg.seed = seed;
  http_cfg.dst_port = 80;
  auto http = net::generate_flows(http_cfg);

  net::FlowGenConfig ftp_cfg;
  ftp_cfg.flow_count = 3;
  ftp_cfg.bytes_per_flow = 30000;
  ftp_cfg.reorder_fraction = 0.2;
  ftp_cfg.seed = seed + 1;
  ftp_cfg.dst_port = 21;
  auto ftp = net::generate_flows(ftp_cfg);

  std::vector<net::Packet> packets;
  packets.reserve(http.packets.size() + ftp.packets.size() + 64);
  std::size_t hi = 0, fi = 0;
  std::uint32_t udp_counter = 0;
  util::Rng rng(seed + 2);
  while (hi < http.packets.size() || fi < ftp.packets.size()) {
    // 2:1 interleave with occasional UDP datagrams sprinkled in.
    for (int k = 0; k < 2 && hi < http.packets.size(); ++k) {
      packets.push_back(std::move(http.packets[hi++]));
    }
    if (fi < ftp.packets.size()) packets.push_back(std::move(ftp.packets[fi++]));
    if (rng.chance(0.05)) {
      net::Packet p;
      p.timestamp_us = packets.back().timestamp_us;
      p.tuple.src_ip = 0x0A010000u + (udp_counter % 5);  // 5 recurring UDP flows
      p.tuple.dst_ip = 0xC0A80002u;
      p.tuple.src_port = 5353;
      p.tuple.dst_port = 53;
      p.tuple.proto = net::IpProto::udp;
      p.payload = util::to_bytes(udp_counter % 3 == 0 ? "query dns-marker admin"
                                                      : "query benign name");
      ++udp_counter;
      packets.push_back(std::move(p));
    }
  }
  return packets;
}

// The single-threaded reference: one reassembler feeding one engine, flow
// ids, protocol classification, and connection-lifecycle teardown identical
// to the pipeline workers'.
std::vector<ids::Alert> single_threaded_reference(const std::vector<net::Packet>& packets,
                                                  const pattern::PatternSet& rules,
                                                  core::Algorithm algorithm,
                                                  ids::EngineCounters* counters_out,
                                                  net::ReassemblyConfig reassembly = {}) {
  ids::IdsEngine engine(rules, {algorithm});
  std::vector<ids::Alert> alerts;
  net::TcpReassembler reassembler(
      [&](const net::StreamChunk& chunk) {
        engine.inspect(flow_key(chunk.tuple), ids::classify_port(chunk.server_port),
                       chunk.data, alerts);
      },
      reassembly);
  reassembler.on_connection_end([&](const net::FiveTuple& client, net::EndReason) {
    engine.close_flow(flow_key(client));
    engine.close_flow(flow_key(client.reversed()));
  });
  for (const net::Packet& p : packets) {
    if (p.tuple.proto == net::IpProto::tcp) {
      reassembler.ingest(p);
    } else {
      engine.inspect(flow_key(p.tuple), ids::classify_port(p.tuple.dst_port), p.payload,
                     alerts);
    }
  }
  if (counters_out != nullptr) *counters_out = engine.counters();
  std::sort(alerts.begin(), alerts.end());
  return alerts;
}

class PipelineDifferential : public ::testing::TestWithParam<core::Algorithm> {};

TEST_P(PipelineDifferential, ShardedAlertsEqualSingleThreaded) {
  const core::Algorithm algorithm = GetParam();
  if (!core::algorithm_available(algorithm)) GTEST_SKIP() << "algorithm unavailable";

  const auto rules = mixed_rules();
  const auto packets = mixed_traffic(testutil::case_seed(80));

  ids::EngineCounters ref_counters;
  const auto expected =
      single_threaded_reference(packets, rules, algorithm, &ref_counters);
  ASSERT_GT(expected.size(), 0u) << "workload must produce alerts to compare ("
                                 << testutil::seed_note() << ")";

  for (unsigned workers : {1u, 2u, 4u}) {
    for (std::size_t batch : {std::size_t{1}, std::size_t{32}}) {
      PipelineConfig cfg;
      cfg.algorithm = algorithm;
      cfg.workers = workers;
      cfg.batch_packets = batch;
      PipelineRuntime rt(rules, cfg);
      rt.start();
      rt.submit(std::span<const net::Packet>(packets));
      rt.stop();

      std::vector<ids::Alert> actual = rt.alerts();
      std::sort(actual.begin(), actual.end());
      ASSERT_EQ(actual.size(), expected.size())
          << workers << " workers, batch " << batch << " ("
          << core::algorithm_name(algorithm) << ", " << testutil::seed_note() << ")";
      for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_EQ(actual[i], expected[i])
            << "first divergence at alert " << i << " with " << workers
            << " workers, batch " << batch << " (" << core::algorithm_name(algorithm)
            << ", " << testutil::seed_note() << ")";
      }
      const auto totals = rt.stats().totals();
      EXPECT_EQ(totals.bytes_inspected, ref_counters.bytes_inspected);
      EXPECT_EQ(totals.alerts, ref_counters.alerts);
      EXPECT_EQ(totals.flows_seen, ref_counters.flows);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, PipelineDifferential,
                         ::testing::Values(core::Algorithm::aho_corasick,
                                           core::Algorithm::vpatch,
                                           core::Algorithm::dfc),
                         [](const auto& info) {
                           std::string name(core::algorithm_name(info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(PipelineDifferentialExtra, HeavyReorderingAcrossManyFlows) {
  // A second universe: more flows than workers, heavier reordering, property
  // seeded — the reassembled streams must still yield identical alerts.
  const auto rules = mixed_rules();
  net::FlowGenConfig cfg;
  cfg.flow_count = 16;
  cfg.bytes_per_flow = 20000;
  cfg.reorder_fraction = 0.5;
  cfg.seed = testutil::case_seed(81);
  auto flows = net::generate_flows(cfg);

  const auto expected =
      single_threaded_reference(flows.packets, rules, core::Algorithm::vpatch, nullptr);

  PipelineConfig pcfg;
  pcfg.algorithm = core::Algorithm::vpatch;
  pcfg.workers = 4;
  pcfg.batch_packets = 7;  // deliberately not a divisor of anything
  PipelineRuntime rt(rules, pcfg);
  rt.start();
  for (net::Packet& p : flows.packets) rt.submit(std::move(p));
  rt.stop();

  std::vector<ids::Alert> actual = rt.alerts();
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected) << testutil::seed_note();
}

// The evasion corpus through the full pipeline, once per overlap policy:
// SYN/FIN/RST lifecycle, bidirectional streams, conflicting retransmits,
// keep-alive probes, and wrap-adjacent ISNs — sharded must still equal the
// single-threaded reference bit for bit, and connection teardown (which
// flushes and closes BOTH directional flow ids) must happen at the same
// packet on both sides of the comparison.
class PipelineEvasionDifferential
    : public ::testing::TestWithParam<net::OverlapPolicy> {};

TEST_P(PipelineEvasionDifferential, ShardedEqualsReferenceOnEvasionCorpus) {
  const net::OverlapPolicy policy = GetParam();
  const auto rules = mixed_rules();
  net::FlowGenConfig cfg;
  cfg.flow_count = 8;
  cfg.bytes_per_flow = 20000;
  cfg.reorder_fraction = 0.25;
  cfg.seed = testutil::case_seed(82);
  cfg.evasion = true;
  const auto flows = net::generate_flows(cfg);

  net::ReassemblyConfig rcfg;
  rcfg.overlap = policy;
  const auto expected = single_threaded_reference(flows.packets, rules,
                                                  core::Algorithm::vpatch, nullptr, rcfg);
  ASSERT_GT(expected.size(), 0u)
      << "evasion workload must produce alerts (" << testutil::seed_note() << ")";

  for (unsigned workers : {1u, 3u}) {
    PipelineConfig pcfg;
    pcfg.algorithm = core::Algorithm::vpatch;
    pcfg.workers = workers;
    pcfg.batch_packets = 5;
    pcfg.reassembly = rcfg;
    PipelineRuntime rt(rules, pcfg);
    rt.start();
    rt.submit(std::span<const net::Packet>(flows.packets));
    rt.stop();

    std::vector<ids::Alert> actual = rt.alerts();
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected)
        << workers << " workers, policy " << net::overlap_policy_name(policy) << " ("
        << testutil::seed_note() << ")";
    const auto totals = rt.stats().totals();
    EXPECT_GT(totals.connections_started, 0u);
    EXPECT_EQ(totals.connections_started, totals.connections_ended)
        << "every evasion-corpus connection is torn down by FIN or RST";
    EXPECT_GT(totals.s2c_delivered_bytes, 0u)
        << "the server→client streams must have been reassembled and scanned";
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, PipelineEvasionDifferential,
                         ::testing::Values(net::OverlapPolicy::first,
                                           net::OverlapPolicy::last,
                                           net::OverlapPolicy::target_bsd,
                                           net::OverlapPolicy::target_linux),
                         [](const auto& info) {
                           return std::string(net::overlap_policy_name(info.param));
                         });

// The `first` policy is the pre-rework semantics: with lifecycle-free
// traffic (no handshakes, no FIN/RST — exactly what the old reassembler
// understood) it must reproduce the same alerts byte for byte.
TEST(PipelineDifferentialExtra, FirstPolicyMatchesLegacySemantics) {
  const auto rules = mixed_rules();
  const auto packets = mixed_traffic(testutil::case_seed(83));

  const auto with_default = single_threaded_reference(packets, rules,
                                                      core::Algorithm::vpatch, nullptr);
  net::ReassemblyConfig explicit_first;
  explicit_first.overlap = net::OverlapPolicy::first;
  const auto with_first = single_threaded_reference(
      packets, rules, core::Algorithm::vpatch, nullptr, explicit_first);
  EXPECT_EQ(with_default, with_first);
  ASSERT_GT(with_first.size(), 0u) << testutil::seed_note();
}

}  // namespace
}  // namespace vpm::pipeline
