// The approximate-prefilter contract: rejection is exact (ZERO false
// negatives — any payload containing a pattern occurrence must pass the
// screen), passing is approximate, and engaging the screen anywhere in the
// stack (engine flush path, pipeline workers, serialized databases) must
// leave the alert multiset bit-identical to prefilter-off.  The batch screen
// must agree with the scalar screen verdict-for-verdict on every ISA (the
// _scalar rerun of this suite forces the portable kernel).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <string>
#include <utility>
#include <vector>

#include "core/database.hpp"
#include "core/matcher_factory.hpp"
#include "core/naive.hpp"
#include "core/prefilter.hpp"
#include "helpers.hpp"
#include "ids/engine.hpp"
#include "net/flowgen.hpp"
#include "pattern/serialize.hpp"
#include "pipeline/runtime.hpp"

namespace vpm {
namespace {

using testutil::case_seed;
using testutil::seed_note;

// Like testutil::random_set but with a length floor, so the set is
// prefilter-eligible (no sub-3-byte pattern nulls the signature) and the
// threshold is predictable from min_len.
pattern::PatternSet random_long_set(std::size_t count, std::size_t min_len,
                                    std::size_t max_len, std::uint64_t seed,
                                    unsigned alphabet = 4) {
  pattern::PatternSet set;
  util::Rng rng(seed);
  std::size_t guard = 0;
  while (set.size() < count && guard++ < count * 50) {
    const std::size_t len = min_len + rng.below(max_len - min_len + 1);
    util::Bytes b(len);
    for (auto& c : b) c = static_cast<std::uint8_t>('a' + rng.below(alphabet));
    set.add(std::move(b), rng.chance(0.3));
  }
  return set;
}

void plant(util::Bytes& text, const util::Bytes& pattern, std::size_t pos) {
  ASSERT_LE(pos + pattern.size(), text.size());
  std::copy(pattern.begin(), pattern.end(), text.begin() + pos);
}

// ---- construction --------------------------------------------------------

TEST(PrefilterBuild, RejectsUnusableSets) {
  EXPECT_EQ(core::build_prefilter(pattern::PatternSet{}), nullptr);

  pattern::PatternSet two_byte;
  two_byte.add("ab");
  two_byte.add("abcdefgh");  // one long pattern does not rescue a 2-byte one
  EXPECT_EQ(core::build_prefilter(two_byte), nullptr);

  pattern::PatternSet ok;
  ok.add("abc");
  ok.add("xyz");
  const auto pf = core::build_prefilter(ok);
  ASSERT_NE(pf, nullptr);
  EXPECT_EQ(pf->q(), 3u);
  EXPECT_EQ(pf->threshold(), 1u);
}

TEST(PrefilterBuild, SelectsQAndThresholdFromShortestPattern) {
  pattern::PatternSet longset;
  longset.add("abcdefgh");
  const auto pf = core::build_prefilter(longset);
  ASSERT_NE(pf, nullptr);
  EXPECT_EQ(pf->q(), 4u);
  EXPECT_EQ(pf->threshold(), 4u);  // min(8 - 4 + 1, 4)
  EXPECT_EQ(pf->min_payload(), 7u);
  EXPECT_EQ(pf->pattern_count(), 1u);
  EXPECT_EQ(pf->gram_count(), 5u);  // abcd bcde cdef defg efgh
  EXPECT_GE(pf->bits_log2(), 10u);
  EXPECT_EQ(pf->memory_bytes(), (std::size_t{1} << pf->bits_log2()) / 8);
  EXPECT_GT(pf->occupancy(), 0.0);
  EXPECT_LT(pf->occupancy(), 1.0);

  pattern::PatternSet four;
  four.add("abcd");
  const auto pf4 = core::build_prefilter(four);
  ASSERT_NE(pf4, nullptr);
  EXPECT_EQ(pf4->q(), 4u);
  EXPECT_EQ(pf4->threshold(), 1u);

  pattern::PatternSet mixed;
  mixed.add("abc");
  mixed.add("abcdefgh");
  const auto pf3 = core::build_prefilter(mixed);
  ASSERT_NE(pf3, nullptr);
  EXPECT_EQ(pf3->q(), 3u);  // shortest pattern forces q=3
  EXPECT_EQ(pf3->threshold(), 1u);

  core::PrefilterConfig capped;
  capped.max_threshold = 2;
  const auto pfc = core::build_prefilter(longset, capped);
  ASSERT_NE(pfc, nullptr);
  EXPECT_EQ(pfc->threshold(), 2u);

  core::PrefilterConfig forced_q;
  forced_q.q = 3;
  const auto pfq = core::build_prefilter(longset, forced_q);
  ASSERT_NE(pfq, nullptr);
  EXPECT_EQ(pfq->q(), 3u);
  EXPECT_EQ(pfq->threshold(), 4u);  // min(8 - 3 + 1, 4)
}

TEST(PrefilterBuild, AdvisedRequiresEnoughPatterns) {
  pattern::PatternSet one;
  one.add("abcdefgh");
  const auto pf = core::build_prefilter(one);
  ASSERT_NE(pf, nullptr);
  EXPECT_FALSE(pf->advised());  // 1 pattern < default min_patterns

  core::PrefilterConfig eager;
  eager.min_patterns = 1;
  const auto pfe = core::build_prefilter(one, eager);
  ASSERT_NE(pfe, nullptr);
  EXPECT_TRUE(pfe->advised());

  const auto many = random_long_set(12, 4, 8, case_seed(400));
  const auto pfm = core::build_prefilter(many);
  ASSERT_NE(pfm, nullptr);
  EXPECT_TRUE(pfm->advised());
}

TEST(PrefilterBuild, ModeNamesRoundTrip) {
  using core::PrefilterMode;
  EXPECT_EQ(core::prefilter_mode_name(PrefilterMode::off), "off");
  EXPECT_EQ(core::prefilter_mode_name(PrefilterMode::on), "on");
  EXPECT_EQ(core::prefilter_mode_name(PrefilterMode::automatic), "auto");
  EXPECT_EQ(core::prefilter_mode_from_name("off"), PrefilterMode::off);
  EXPECT_EQ(core::prefilter_mode_from_name("on"), PrefilterMode::on);
  EXPECT_EQ(core::prefilter_mode_from_name("auto"), PrefilterMode::automatic);
  EXPECT_EQ(core::prefilter_mode_from_name("automatic"), PrefilterMode::automatic);
  EXPECT_EQ(core::prefilter_mode_from_name("bogus"), std::nullopt);
}

// ---- scalar screen semantics ---------------------------------------------

TEST(PrefilterScreen, ExactRejectBelowMinPayloadAndTailPass) {
  pattern::PatternSet set;
  set.add("abcdef");  // q=4, threshold=3, min_payload=6
  const auto pf = core::build_prefilter(set);
  ASSERT_NE(pf, nullptr);
  ASSERT_EQ(pf->min_payload(), 6u);

  const util::Bytes exact = util::to_bytes("abcdef");
  EXPECT_TRUE(pf->screen(exact));
  EXPECT_FALSE(pf->screen(util::ByteView(exact.data(), 5)));  // too short: exact reject
  EXPECT_FALSE(pf->screen(util::ByteView{}));

  // Occurrence flush against the end of the payload must pass (the tail
  // windows are where a blocked kernel is most likely to cut corners).
  util::Bytes tail(200, std::uint8_t{'z'});
  plant(tail, exact, tail.size() - exact.size());
  EXPECT_TRUE(pf->screen(tail));

  const util::Bytes filler(200, std::uint8_t{'z'});
  EXPECT_FALSE(pf->screen(filler));
}

TEST(PrefilterScreen, CaseFoldingNeverCostsAnOccurrence) {
  pattern::PatternSet nocase;
  nocase.add("AbCdEfGh", true);
  const auto pf = core::build_prefilter(nocase);
  ASSERT_NE(pf, nullptr);
  EXPECT_TRUE(pf->screen(util::to_bytes("xx..abcdefgh..xx")));
  EXPECT_TRUE(pf->screen(util::to_bytes("xx..ABCDEFGH..xx")));
  EXPECT_TRUE(pf->screen(util::to_bytes("xx..aBcDeFgH..xx")));

  pattern::PatternSet exact_case;
  exact_case.add("MixedCaseSig");
  const auto pfe = core::build_prefilter(exact_case);
  ASSERT_NE(pfe, nullptr);
  EXPECT_TRUE(pfe->screen(util::to_bytes("zzz MixedCaseSig zzz")));
}

TEST(PrefilterScreen, NoFalseNegativesFuzz) {
  for (std::uint64_t salt = 410; salt < 414; ++salt) {
    const std::uint64_t seed = case_seed(salt);
    const auto set = random_long_set(50, 3, 10, seed);
    const auto pf = core::build_prefilter(set);
    ASSERT_NE(pf, nullptr) << seed_note();
    const core::NaiveMatcher oracle(set);

    util::Rng rng(seed ^ 0xF00D);
    for (int i = 0; i < 150; ++i) {
      const std::size_t len = rng.below(600);
      util::Bytes text = testutil::random_text(len, seed + 7 * i + 1);
      if (oracle.count_matches(text) > 0) {
        EXPECT_TRUE(pf->screen(text))
            << "false negative on random text, salt " << salt << " iter " << i << " ("
            << seed_note() << ")";
      }
      // Plant a verbatim occurrence (exact bytes match regardless of the
      // nocase flag) at a random position, biased toward the tail.
      const auto& pat = set.patterns()[rng.below(set.size())];
      if (text.size() < pat.bytes.size()) continue;
      const std::size_t room = text.size() - pat.bytes.size();
      const std::size_t pos = rng.chance(0.3) ? room : rng.below(room + 1);
      plant(text, pat.bytes, pos);
      EXPECT_TRUE(pf->screen(text))
          << "false negative on planted pattern " << pat.id << " at " << pos
          << ", salt " << salt << " (" << seed_note() << ")";
    }
  }
}

// ---- batch screen == scalar screen ---------------------------------------

TEST(PrefilterScreen, BatchVerdictsMatchScalarScreen) {
  const std::uint64_t seed = case_seed(420);
  const auto set = random_long_set(40, 3, 9, seed);
  const auto pf = core::build_prefilter(set);
  ASSERT_NE(pf, nullptr) << seed_note();

  // Every size class the kernels treat differently: empty, below
  // min_payload, block-boundary straddlers, and full MTU payloads.
  const std::size_t sizes[] = {0,  1,  2,   3,   5,   7,   8,    15,  16,  17,
                               31, 32, 33,  63,  64,  65,  127,  128, 129, 255,
                               256, 600, 1024, 1499, 1500};
  std::vector<util::Bytes> store;
  util::Rng rng(seed ^ 0xBEEF);
  for (std::size_t len : sizes) {
    for (int rep = 0; rep < 4; ++rep) {
      // Mix of far-alphabet text (mostly rejects), near-alphabet text, and
      // planted occurrences (must pass).
      util::Bytes text = testutil::random_text(len, seed + 13 * store.size() + 1,
                                               rep % 2 == 0 ? 8 : 4);
      const auto& pat = set.patterns()[rng.below(set.size())];
      if (rep == 3 && text.size() >= pat.bytes.size()) {
        plant(text, pat.bytes, rng.below(text.size() - pat.bytes.size() + 1));
      }
      store.push_back(std::move(text));
    }
  }
  std::vector<util::ByteView> views(store.begin(), store.end());

  ScanScratch scratch;
  std::vector<std::uint8_t> verdicts(views.size(), 0xFF);
  // Two passes over the same scratch: the second exercises steady-state
  // staging reuse, and both must agree with the scalar screen.
  for (int pass = 0; pass < 2; ++pass) {
    pf->screen_batch(views, verdicts.data(), scratch);
    std::size_t passed = 0;
    for (std::size_t i = 0; i < views.size(); ++i) {
      EXPECT_EQ(verdicts[i] != 0, pf->screen(views[i]))
          << "batch/scalar divergence at payload " << i << " size " << views[i].size()
          << " pass " << pass << " (" << seed_note() << ")";
      passed += verdicts[i] != 0 ? 1 : 0;
    }
    // The workload must exercise both verdicts to be meaningful.
    EXPECT_GT(passed, 0u) << seed_note();
    EXPECT_LT(passed, views.size()) << seed_note();
  }
}

// ---- serialization -------------------------------------------------------

TEST(PrefilterSerialize, SectionRoundTripsAndChecksCorruption) {
  core::GroupPrefilters filters{};
  filters[static_cast<std::size_t>(pattern::Group::http)] =
      core::build_prefilter(random_long_set(20, 4, 9, case_seed(430)));
  filters[static_cast<std::size_t>(pattern::Group::dns)] =
      core::build_prefilter(random_long_set(10, 3, 6, case_seed(431)));
  ASSERT_NE(filters[1], nullptr);
  ASSERT_NE(filters[2], nullptr);

  const std::uint64_t fp = 0x1234'5678'9ABC'DEF0ull;
  util::Bytes out;
  core::append_prefilter_section(out, filters, fp);
  ASSERT_GT(out.size(), 0u);

  const auto parsed = core::parse_prefilter_section(out, fp);
  for (std::size_t g = 0; g < core::kPrefilterGroupCount; ++g) {
    ASSERT_EQ(parsed[g] == nullptr, filters[g] == nullptr) << "group " << g;
    if (filters[g] == nullptr) continue;
    EXPECT_EQ(parsed[g]->q(), filters[g]->q());
    EXPECT_EQ(parsed[g]->threshold(), filters[g]->threshold());
    EXPECT_EQ(parsed[g]->bits_log2(), filters[g]->bits_log2());
    EXPECT_EQ(parsed[g]->pattern_count(), filters[g]->pattern_count());
    EXPECT_EQ(parsed[g]->gram_count(), filters[g]->gram_count());
    EXPECT_EQ(parsed[g]->words(), filters[g]->words()) << "group " << g;
  }

  EXPECT_THROW(core::parse_prefilter_section(out, fp + 1), std::invalid_argument)
      << "fingerprint mismatch must be rejected";

  // Every truncation point must throw, never crash or mis-parse.
  for (std::size_t cut = 0; cut < out.size(); ++cut) {
    EXPECT_THROW(core::parse_prefilter_section({out.data(), cut}, fp),
                 std::invalid_argument)
        << "truncation at " << cut;
  }
  // Every single-byte corruption must be caught (structure or checksum).
  for (std::size_t i = 0; i < out.size(); ++i) {
    util::Bytes bad = out;
    bad[i] ^= 0x40;
    EXPECT_THROW(core::parse_prefilter_section(bad, fp), std::invalid_argument)
        << "flip at byte " << i;
  }
}

pattern::PatternSet grouped_long_rules(std::uint64_t seed) {
  pattern::PatternSet rules;
  util::Rng rng(seed);
  const pattern::Group groups[] = {pattern::Group::http, pattern::Group::dns,
                                   pattern::Group::generic};
  std::size_t n = 0;
  while (rules.size() < 36) {
    const std::size_t len = 5 + rng.below(5);  // 5..9: threshold > 1 everywhere
    util::Bytes b(len);
    for (auto& c : b) c = static_cast<std::uint8_t>('a' + rng.below(4));
    rules.add(std::move(b), rng.chance(0.3), groups[n++ % std::size(groups)]);
  }
  return rules;
}

TEST(PrefilterSerialize, DatabaseRoundTripPreservesSignatures) {
  const auto rules = grouped_long_rules(case_seed(432));
  const auto db = compile(core::Algorithm::aho_corasick, rules);
  const util::Bytes blob = db->save_patterns();
  const auto db2 = Database::from_serialized(blob);
  EXPECT_EQ(db2->fingerprint(), db->fingerprint());
  for (std::size_t g = 0; g < core::kPrefilterGroupCount; ++g) {
    const auto& a = db->prefilters()[g];
    const auto& b = db2->prefilters()[g];
    ASSERT_EQ(a == nullptr, b == nullptr) << "group " << g;
    if (a == nullptr) continue;
    EXPECT_EQ(a->q(), b->q());
    EXPECT_EQ(a->threshold(), b->threshold());
    EXPECT_EQ(a->words(), b->words()) << "group " << g;
  }

  // v1 blobs predate the section: loading rebuilds identical signatures.
  const util::Bytes v1 = pattern::serialize_patterns(rules);
  const auto db1 = Database::from_serialized(v1, core::Algorithm::aho_corasick);
  for (std::size_t g = 0; g < core::kPrefilterGroupCount; ++g) {
    const auto& a = db->prefilters()[g];
    const auto& b = db1->prefilters()[g];
    ASSERT_EQ(a == nullptr, b == nullptr) << "group " << g;
    if (a != nullptr) {
      EXPECT_EQ(a->words(), b->words()) << "group " << g;
    }
  }

  // The v2 section is mandatory: truncating anywhere inside it (including
  // dropping it entirely) must be rejected, as must any byte flip.
  const std::array<std::uint8_t, 6> magic = {'V', 'P', 'M', 'P', 'F', '1'};
  const auto it = std::search(blob.begin(), blob.end(), magic.begin(), magic.end());
  ASSERT_NE(it, blob.end()) << "v2 blob must carry the prefilter section";
  const auto section_start = static_cast<std::size_t>(it - blob.begin());
  for (std::size_t cut = section_start; cut < blob.size(); ++cut) {
    EXPECT_THROW(Database::from_serialized({blob.data(), cut}), std::invalid_argument)
        << "truncation at " << cut;
  }
  for (std::size_t i = section_start; i < blob.size(); ++i) {
    util::Bytes bad = blob;
    bad[i] ^= 0x20;
    EXPECT_THROW(Database::from_serialized(bad), std::invalid_argument)
        << "flip at byte " << i;
  }
}

TEST(PrefilterSerialize, DatabaseMemoryAndGating) {
  const auto rules = grouped_long_rules(case_seed(433));
  const auto db = compile(core::Algorithm::aho_corasick, rules);
  std::size_t signature_bytes = 0;
  for (const auto& pf : db->prefilters()) {
    if (pf != nullptr) signature_bytes += pf->memory_bytes();
  }
  EXPECT_GT(signature_bytes, 0u);
  EXPECT_GE(db->memory_bytes(), signature_bytes);

  // One sub-3-byte generic pattern poisons every group's composed set.
  pattern::PatternSet poisoned = rules;
  poisoned.add("a", false, pattern::Group::generic);
  const auto db_null = compile(core::Algorithm::aho_corasick, poisoned);
  for (const auto& pf : db_null->prefilters()) EXPECT_EQ(pf, nullptr);
}

// ---- engine differential: alerts are mode-independent --------------------

struct Chunk {
  std::uint64_t flow = 0;
  pattern::Group protocol{};
  util::ByteView view;
};

// Per-flow streams over a WIDER alphabet than the rules (so random text
// mostly rejects), with verbatim occurrences planted before chunking (so
// some straddle chunk boundaries and ride the stream carry), sliced into
// churny chunk sizes and interleaved round-robin across flows.
std::vector<Chunk> make_chunks(const pattern::PatternSet& rules, std::uint64_t seed,
                               std::vector<util::Bytes>& streams) {
  const pattern::Group protocols[] = {pattern::Group::http, pattern::Group::dns,
                                      pattern::Group::generic};
  util::Rng rng(seed);
  streams.clear();
  std::vector<std::vector<Chunk>> per_flow;
  for (std::uint64_t f = 0; f < 6; ++f) {
    util::Bytes stream = testutil::random_text(16000, seed + f, 8);
    for (int k = 0; k < 8; ++k) {
      const auto& pat = rules.patterns()[rng.below(rules.size())];
      const std::size_t pos = rng.below(stream.size() - pat.bytes.size());
      std::copy(pat.bytes.begin(), pat.bytes.end(), stream.begin() + pos);
    }
    streams.push_back(std::move(stream));
  }
  const std::size_t cuts[] = {1, 2, 37, 63, 64, 256, 700, 1500};
  for (std::uint64_t f = 0; f < streams.size(); ++f) {
    std::vector<Chunk> chunks;
    std::size_t off = 0;
    while (off < streams[f].size()) {
      const std::size_t want = cuts[rng.below(std::size(cuts))];
      const std::size_t len = std::min(want, streams[f].size() - off);
      chunks.push_back({f, protocols[f % std::size(protocols)],
                        util::ByteView{streams[f].data() + off, len}});
      off += len;
    }
    per_flow.push_back(std::move(chunks));
  }
  std::vector<Chunk> interleaved;
  for (std::size_t i = 0;; ++i) {
    bool any = false;
    for (auto& chunks : per_flow) {
      if (i >= chunks.size()) continue;
      interleaved.push_back(chunks[i]);
      any = true;
    }
    if (!any) break;
  }
  return interleaved;
}

std::vector<ids::Alert> drive_engine(const pattern::PatternSet& rules,
                                     core::Algorithm algo, core::PrefilterMode mode,
                                     std::size_t batch, const std::vector<Chunk>& chunks,
                                     ids::EngineCounters& counters_out) {
  ids::IdsEngine engine(rules, {algo, mode});
  std::vector<ids::Alert> alerts;
  ids::AlertBuffer sink(alerts);
  std::size_t staged = 0;
  for (const Chunk& c : chunks) {
    engine.stage(c.flow, c.protocol, c.view, sink);
    if (++staged % batch == 0) engine.flush_batch(sink);
  }
  engine.flush_batch(sink);
  counters_out = engine.counters();
  std::sort(alerts.begin(), alerts.end());
  return alerts;
}

TEST(PrefilterEngineDifferential, AlertsIdenticalWithScreenOnAcrossEngines) {
  const auto rules = grouped_long_rules(case_seed(440));
  std::vector<util::Bytes> streams;
  const auto chunks = make_chunks(rules, case_seed(441), streams);

  for (core::Algorithm algo :
       {core::Algorithm::aho_corasick, core::Algorithm::aho_corasick_compact,
        core::Algorithm::vpatch, core::Algorithm::dfc, core::Algorithm::wu_manber}) {
    if (!core::algorithm_available(algo)) continue;
    for (std::size_t batch : {std::size_t{1}, std::size_t{32}}) {
      ids::EngineCounters off_counters, on_counters;
      const auto off = drive_engine(rules, algo, core::PrefilterMode::off, batch,
                                    chunks, off_counters);
      const auto on = drive_engine(rules, algo, core::PrefilterMode::on, batch,
                                   chunks, on_counters);
      ASSERT_GT(off.size(), 0u)
          << "workload must alert (" << core::algorithm_name(algo) << ", "
          << seed_note() << ")";
      ASSERT_EQ(on, off) << "prefilter changed the alert multiset ("
                         << core::algorithm_name(algo) << ", batch " << batch << ", "
                         << seed_note() << ")";
      // The stream accounting is screen-independent...
      EXPECT_EQ(on_counters.chunks, off_counters.chunks);
      EXPECT_EQ(on_counters.bytes_inspected, off_counters.bytes_inspected);
      EXPECT_EQ(on_counters.alerts, off_counters.alerts);
      // ...and the screen must have both rejected and passed something.
      EXPECT_EQ(off_counters.prefilter_pass_payloads, 0u);
      EXPECT_EQ(off_counters.prefilter_reject_payloads, 0u);
      EXPECT_GT(on_counters.prefilter_pass_payloads, 0u);
      EXPECT_GT(on_counters.prefilter_reject_payloads, 0u);
      EXPECT_GT(on_counters.prefilter_reject_bytes, 0u);
    }
  }
}

// The per-chunk inspect() API routes through the staged path whenever the
// screen would engage, so the legacy single-threaded surface (inspect_pcap,
// example sensors without --workers) gets the same screening — and the same
// alert multiset — as stage()/flush_batch().
TEST(PrefilterEngineDifferential, InspectPathScreensIdentically) {
  const auto rules = grouped_long_rules(case_seed(444));
  std::vector<util::Bytes> streams;
  const auto chunks = make_chunks(rules, case_seed(445), streams);

  const auto drive_inspect = [&](core::PrefilterMode mode,
                                 ids::EngineCounters& counters_out) {
    ids::IdsEngine engine(rules, {core::Algorithm::aho_corasick_compact, mode});
    std::vector<ids::Alert> alerts;
    ids::AlertBuffer sink(alerts);
    for (const Chunk& c : chunks) engine.inspect(c.flow, c.protocol, c.view, sink);
    counters_out = engine.counters();
    std::sort(alerts.begin(), alerts.end());
    return alerts;
  };

  ids::EngineCounters off_counters, on_counters, staged_counters;
  const auto off = drive_inspect(core::PrefilterMode::off, off_counters);
  const auto on = drive_inspect(core::PrefilterMode::on, on_counters);
  const auto staged = drive_engine(rules, core::Algorithm::aho_corasick_compact,
                                   core::PrefilterMode::on, 32, chunks, staged_counters);
  ASSERT_GT(off.size(), 0u) << "workload must alert (" << seed_note() << ")";
  ASSERT_EQ(on, off) << "screened inspect() changed the alert multiset ("
                     << seed_note() << ")";
  ASSERT_EQ(on, staged) << "inspect() and stage()/flush_batch() diverged ("
                        << seed_note() << ")";
  EXPECT_EQ(on_counters.chunks, off_counters.chunks);
  EXPECT_EQ(on_counters.bytes_inspected, off_counters.bytes_inspected);
  EXPECT_EQ(off_counters.prefilter_pass_payloads, 0u);
  EXPECT_EQ(off_counters.prefilter_reject_payloads, 0u);
  EXPECT_GT(on_counters.prefilter_pass_payloads, 0u);
  EXPECT_GT(on_counters.prefilter_reject_payloads, 0u);
}

TEST(PrefilterEngineAuto, BypassesMatchHeavyTrafficWithoutLosingAlerts) {
  // >= min_patterns so `automatic` engages, and every payload contains a
  // pattern so the sampled pass ratio is 1: the screen must stand down after
  // the first sample window instead of taxing hopeless traffic forever.
  const auto rules = random_long_set(10, 8, 8, case_seed(450));
  std::vector<util::Bytes> store;
  std::vector<Chunk> chunks;
  util::Rng rng(case_seed(451));
  for (std::uint64_t i = 0; i < 480; ++i) {
    util::Bytes text = testutil::random_text(1024, case_seed(452) + i, 8);
    const auto& pat = rules.patterns()[rng.below(rules.size())];
    std::copy(pat.bytes.begin(), pat.bytes.end(),
              text.begin() + rng.below(text.size() - pat.bytes.size()));
    store.push_back(std::move(text));
  }
  for (std::uint64_t i = 0; i < store.size(); ++i) {
    chunks.push_back({i, pattern::Group::http, util::ByteView(store[i])});
  }

  ids::EngineCounters off_counters, auto_counters;
  const auto off = drive_engine(rules, core::Algorithm::aho_corasick,
                                core::PrefilterMode::off, 32, chunks, off_counters);
  const auto adaptive = drive_engine(rules, core::Algorithm::aho_corasick,
                                     core::PrefilterMode::automatic, 32, chunks,
                                     auto_counters);
  ASSERT_GT(off.size(), 0u) << seed_note();
  EXPECT_EQ(adaptive, off) << seed_note();

  const std::uint64_t screened = auto_counters.prefilter_pass_payloads +
                                 auto_counters.prefilter_reject_payloads;
  EXPECT_GE(screened, 64u) << "the sample window must have run (" << seed_note() << ")";
  EXPECT_LT(screened, chunks.size())
      << "pass-ratio bypass never engaged on match-heavy traffic (" << seed_note()
      << ")";
}

TEST(PrefilterEngineAuto, DoesNotEngageBelowPatternFloor) {
  // 4 patterns < min_patterns: `automatic` must leave the screen cold while
  // `on` still engages the (built) signature.
  pattern::PatternSet rules;
  rules.add("abcdefgh", false, pattern::Group::http);
  rules.add("aabbccdd", false, pattern::Group::http);
  rules.add("ddccbbaa", true, pattern::Group::http);
  rules.add("abababab", false, pattern::Group::http);

  std::vector<util::Bytes> store;
  std::vector<Chunk> chunks;
  for (std::uint64_t i = 0; i < 64; ++i) {
    store.push_back(testutil::random_text(512, case_seed(453) + i, 8));
  }
  for (std::uint64_t i = 0; i < store.size(); ++i) {
    chunks.push_back({i, pattern::Group::http, util::ByteView(store[i])});
  }

  ids::EngineCounters auto_counters, on_counters;
  drive_engine(rules, core::Algorithm::aho_corasick, core::PrefilterMode::automatic, 32,
               chunks, auto_counters);
  drive_engine(rules, core::Algorithm::aho_corasick, core::PrefilterMode::on, 32,
               chunks, on_counters);
  EXPECT_EQ(auto_counters.prefilter_pass_payloads +
                auto_counters.prefilter_reject_payloads,
            0u);
  EXPECT_GT(on_counters.prefilter_pass_payloads +
                on_counters.prefilter_reject_payloads,
            0u);
}

// ---- pipeline differential: sharded workers, all modes -------------------

TEST(PrefilterPipelineDifferential, ShardedAlertsIdenticalAcrossModes) {
  pattern::PatternSet rules;
  rules.add("GET /", false, pattern::Group::http);
  rules.add("HTTP/1.1", true, pattern::Group::http);
  rules.add("Host:", true, pattern::Group::http);
  rules.add("/etc/passwd", false, pattern::Group::http);
  rules.add("Content-Length", true, pattern::Group::http);
  rules.add("User-Agent", true, pattern::Group::http);
  rules.add("wp-admin", false, pattern::Group::http);
  rules.add("X-Forwarded-For", true, pattern::Group::http);
  rules.add("ion", false, pattern::Group::generic);
  rules.add("admin", true, pattern::Group::generic);
  rules.add("session", false, pattern::Group::generic);

  net::FlowGenConfig fcfg;
  fcfg.flow_count = 8;
  fcfg.bytes_per_flow = 30000;
  fcfg.reorder_fraction = 0.3;
  fcfg.seed = case_seed(460);
  fcfg.dst_port = 80;
  auto flows = net::generate_flows(fcfg);

  auto run = [&](core::PrefilterMode mode, unsigned workers,
                 pipeline::WorkerStats& totals_out) {
    pipeline::PipelineConfig cfg;
    cfg.algorithm = core::Algorithm::aho_corasick;
    cfg.prefilter = mode;
    cfg.workers = workers;
    cfg.batch_packets = 32;
    pipeline::PipelineRuntime rt(rules, cfg);
    rt.start();
    rt.submit(std::span<const net::Packet>(flows.packets));
    rt.stop();
    std::vector<ids::Alert> alerts = rt.alerts();
    std::sort(alerts.begin(), alerts.end());
    totals_out = rt.stats().totals();
    return alerts;
  };

  pipeline::WorkerStats off_totals;
  const auto expected = run(core::PrefilterMode::off, 1, off_totals);
  ASSERT_GT(expected.size(), 0u) << seed_note();
  EXPECT_EQ(off_totals.prefilter_pass_payloads, 0u);
  EXPECT_EQ(off_totals.prefilter_reject_payloads, 0u);

  for (core::PrefilterMode mode :
       {core::PrefilterMode::on, core::PrefilterMode::automatic}) {
    for (unsigned workers : {1u, 4u}) {
      pipeline::WorkerStats totals;
      const auto actual = run(mode, workers, totals);
      ASSERT_EQ(actual, expected)
          << core::prefilter_mode_name(mode) << " with " << workers << " workers ("
          << seed_note() << ")";
      EXPECT_EQ(totals.bytes_inspected, off_totals.bytes_inspected);
      EXPECT_EQ(totals.alerts, off_totals.alerts);
      if (mode == core::PrefilterMode::on) {
        EXPECT_GT(totals.prefilter_pass_payloads + totals.prefilter_reject_payloads,
                  0u)
            << workers << " workers (" << seed_note() << ")";
      }
    }
  }
}

}  // namespace
}  // namespace vpm
