// Traffic substrate tests: generator determinism and the workload properties
// the paper's experiments rely on (HTTP token density, printable skew,
// injector exactness).
#include <gtest/gtest.h>

#include "pattern/ruleset_gen.hpp"
#include "traffic/http_trace.hpp"
#include "traffic/match_injector.hpp"
#include "traffic/mixed_trace.hpp"
#include "traffic/random_trace.hpp"
#include "traffic/trace.hpp"
#include "traffic/trace_stats.hpp"

namespace vpm::traffic {
namespace {

TEST(RandomTrace, SizeAndDeterminism) {
  const auto a = generate_random_trace(10000, 1);
  const auto b = generate_random_trace(10000, 1);
  const auto c = generate_random_trace(10000, 2);
  EXPECT_EQ(a.size(), 10000u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(RandomTrace, HighEntropy) {
  const auto t = generate_random_trace(1 << 16, 3);
  const TraceStats s = compute_trace_stats(t);
  EXPECT_GT(s.shannon_entropy_bits, 7.9);
  EXPECT_EQ(s.distinct_bytes, 256u);
}

TEST(RandomTrace, PrintableVariantIsPrintable) {
  const auto t = generate_random_printable_trace(5000, 4);
  const TraceStats s = compute_trace_stats(t);
  EXPECT_DOUBLE_EQ(s.printable_fraction, 1.0);
}

TEST(HttpTrace, SizeAndDeterminism) {
  const auto cfg = iscx_day2_config(1 << 16, 9);
  const auto a = generate_http_trace(cfg);
  const auto b = generate_http_trace(cfg);
  EXPECT_EQ(a.size(), static_cast<std::size_t>(1 << 16));
  EXPECT_EQ(a, b);
}

TEST(HttpTrace, ContainsFrequentHttpTokens) {
  // The core premise of the paper's S-PATCH design: GET/HTTP-class tokens
  // appear densely in realistic web traffic (tens of occurrences per MB).
  const auto t = generate_http_trace(iscx_day2_config(1 << 20, 10));
  EXPECT_GT(token_density_per_mb(t, util::as_view("GET ")), 50.0);
  EXPECT_GT(token_density_per_mb(t, util::as_view("HTTP/1.1")), 100.0);
  EXPECT_GT(token_density_per_mb(t, util::as_view("User-Agent")), 20.0);
}

TEST(HttpTrace, MostlyPrintableWithBinaryBodies) {
  const auto t = generate_http_trace(iscx_day2_config(1 << 20, 11));
  const TraceStats s = compute_trace_stats(t);
  EXPECT_GT(s.printable_fraction, 0.60);
  EXPECT_LT(s.printable_fraction, 0.999) << "binary bodies should be present";
}

TEST(HttpTrace, Day6ProfileHasMoreBinary) {
  const auto d2 = generate_http_trace(iscx_day2_config(1 << 20, 12));
  const auto d6 = generate_http_trace(iscx_day6_config(1 << 20, 12));
  const double p2 = compute_trace_stats(d2).printable_fraction;
  const double p6 = compute_trace_stats(d6).printable_fraction;
  EXPECT_LT(p6, p2) << "day6 profile is response/binary-heavier";
}

TEST(MixedTrace, SizeAndDeterminism) {
  MixedTraceConfig cfg;
  cfg.target_bytes = 1 << 16;
  cfg.seed = 13;
  const auto a = generate_mixed_trace(cfg);
  const auto b = generate_mixed_trace(cfg);
  EXPECT_EQ(a.size(), static_cast<std::size_t>(1 << 16));
  EXPECT_EQ(a, b);
}

TEST(MixedTrace, ContainsMultiProtocolMarkers) {
  MixedTraceConfig cfg;
  cfg.target_bytes = 1 << 20;
  cfg.seed = 14;
  const auto t = generate_mixed_trace(cfg);
  EXPECT_GT(token_density_per_mb(t, util::as_view("USER ")), 0.5);
  EXPECT_GT(token_density_per_mb(t, util::as_view("EHLO ")), 0.5);
  EXPECT_GT(token_density_per_mb(t, util::as_view("login: ")), 0.5);
}

TEST(TraceKinds, AllKindsGenerate) {
  for (TraceKind k : {TraceKind::iscx_day2, TraceKind::iscx_day6, TraceKind::darpa2000,
                      TraceKind::random}) {
    const auto t = generate_trace(k, 4096, 1);
    EXPECT_EQ(t.size(), 4096u) << trace_kind_name(k);
  }
}

TEST(TraceKinds, KindsProduceDistinctStreams) {
  const auto a = generate_trace(TraceKind::iscx_day2, 8192, 1);
  const auto b = generate_trace(TraceKind::iscx_day6, 8192, 1);
  const auto c = generate_trace(TraceKind::darpa2000, 8192, 1);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
}

// ---- match injector ---------------------------------------------------------

pattern::PatternSet small_set() {
  pattern::PatternSet set;
  set.add("EVILPATTERN");
  set.add("badstuff123");
  set.add("xploit");
  return set;
}

TEST(Injector, HitsRequestedFraction) {
  auto trace = generate_random_trace(1 << 18, 21);
  const auto report = inject_matches(trace, small_set(), 0.10, 99);
  EXPECT_NEAR(report.achieved_fraction, 0.10, 0.01);
  EXPECT_GT(report.injected_copies, 0u);
}

TEST(Injector, InjectedBytesConsistent) {
  auto trace = generate_random_trace(1 << 16, 22);
  const auto report = inject_matches(trace, small_set(), 0.05, 100);
  EXPECT_EQ(report.injected_bytes,
            static_cast<std::size_t>(report.achieved_fraction * trace.size() + 0.5));
}

TEST(Injector, CopiesAreFindable) {
  auto trace = generate_random_printable_trace(1 << 16, 23);
  const pattern::PatternSet set = small_set();
  const auto report = inject_matches(trace, set, 0.02, 101);
  // Count literal occurrences of all patterns; must be >= injected copies
  // (injection sites never overlap, so every copy survives).
  std::size_t found = 0;
  for (const pattern::Pattern& p : set) {
    found += static_cast<std::size_t>(
        token_density_per_mb(trace, p.bytes) * (static_cast<double>(trace.size()) / (1 << 20)) + 0.5);
  }
  EXPECT_GE(found, report.injected_copies);
}

TEST(Injector, ZeroFractionInjectsNothing) {
  auto trace = generate_random_trace(4096, 24);
  const auto before = trace;
  const auto report = inject_matches(trace, small_set(), 0.0, 102);
  EXPECT_EQ(report.injected_copies, 0u);
  EXPECT_EQ(trace, before);
}

TEST(Injector, DeterministicForSeed) {
  auto t1 = generate_random_trace(1 << 16, 25);
  auto t2 = t1;
  inject_matches(t1, small_set(), 0.05, 7);
  inject_matches(t2, small_set(), 0.05, 7);
  EXPECT_EQ(t1, t2);
}

TEST(Injector, EmptyInputsAreSafe) {
  util::Bytes empty;
  const auto report = inject_matches(empty, small_set(), 0.5, 1);
  EXPECT_EQ(report.injected_copies, 0u);
  pattern::PatternSet none;
  auto trace = generate_random_trace(1024, 1);
  EXPECT_EQ(inject_matches(trace, none, 0.5, 1).injected_copies, 0u);
}

// ---- stats ------------------------------------------------------------------

TEST(TraceStats, EmptyTrace) {
  const TraceStats s = compute_trace_stats({});
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_EQ(s.shannon_entropy_bits, 0.0);
}

TEST(TraceStats, UniformSingleByte) {
  const util::Bytes t(1000, 'A');
  const TraceStats s = compute_trace_stats(t);
  EXPECT_EQ(s.distinct_bytes, 1u);
  EXPECT_DOUBLE_EQ(s.shannon_entropy_bits, 0.0);
  EXPECT_DOUBLE_EQ(s.printable_fraction, 1.0);
}

TEST(TraceStats, TokenDensityCountsOverlaps) {
  const auto t = util::to_bytes("aaaa");
  // "aa" occurs at positions 0,1,2 in 4 bytes.
  const double per_mb = token_density_per_mb(t, util::as_view("aa"));
  EXPECT_NEAR(per_mb, 3.0 / (4.0 / (1 << 20)), 1.0);
}

}  // namespace
}  // namespace vpm::traffic
