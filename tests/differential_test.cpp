// Cross-engine differential suite: every algorithm must report the identical
// match multiset ("producing the same output as Aho-Corasick", §IV-A2) on
// every workload class — the library's central correctness property.
#include <gtest/gtest.h>

#include "core/matcher_factory.hpp"
#include "helpers.hpp"
#include "pattern/ruleset_gen.hpp"
#include "traffic/match_injector.hpp"
#include "traffic/trace.hpp"

namespace vpm {
namespace {

struct DiffCase {
  std::string name;
  std::size_t pattern_count;
  std::size_t max_pattern_len;
  std::size_t text_len;
  unsigned alphabet;
  std::uint64_t seed;
};

class EngineEquivalence
    : public ::testing::TestWithParam<std::tuple<core::Algorithm, DiffCase>> {};

std::vector<core::Algorithm> engines_under_test() {
  std::vector<core::Algorithm> out;
  for (core::Algorithm a : core::available_algorithms()) {
    if (a != core::Algorithm::naive) out.push_back(a);
  }
  return out;
}

const std::vector<DiffCase>& diff_cases() {
  static const std::vector<DiffCase> cases{
      {"dense_tiny_alphabet", 60, 6, 3000, 3, 1},
      {"sparse_wide_alphabet", 60, 10, 3000, 26, 2},
      {"many_short_patterns", 120, 3, 2500, 5, 3},
      {"long_patterns_only", 40, 24, 4000, 6, 4},
      {"single_pattern", 1, 8, 2000, 4, 5},
      {"tiny_text", 50, 6, 30, 4, 6},
  };
  return cases;
}

TEST_P(EngineEquivalence, MatchesOracle) {
  const auto [algo, dc] = GetParam();
  const auto set = testutil::random_set(dc.pattern_count, dc.max_pattern_len,
                                        testutil::case_seed(dc.seed), dc.alphabet);
  const auto text = testutil::random_text(dc.text_len, testutil::case_seed(dc.seed + 1000), dc.alphabet);
  const MatcherPtr m = core::make_matcher(algo, set);
  testutil::expect_matches_naive(*m, set, text, dc.name);
}

std::string param_name(
    const ::testing::TestParamInfo<std::tuple<core::Algorithm, DiffCase>>& info) {
  std::string n = std::string(core::algorithm_name(std::get<0>(info.param))) + "_" +
                  std::get<1>(info.param).name;
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(AllEnginesAllCases, EngineEquivalence,
                         ::testing::Combine(::testing::ValuesIn(engines_under_test()),
                                            ::testing::ValuesIn(diff_cases())),
                         param_name);

// ---- realistic-workload equivalence (generated rulesets + traces) ----------

class RealisticEquivalence : public ::testing::TestWithParam<core::Algorithm> {};

INSTANTIATE_TEST_SUITE_P(Engines, RealisticEquivalence,
                         ::testing::ValuesIn(engines_under_test()),
                         [](const auto& info) {
                           std::string n{core::algorithm_name(info.param)};
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST_P(RealisticEquivalence, GeneratedRulesetOnHttpTrace) {
  pattern::RulesetConfig cfg;
  cfg.count = 300;
  cfg.seed = testutil::case_seed(77);
  const auto set = pattern::generate_ruleset(cfg);
  auto trace = traffic::generate_trace(traffic::TraceKind::iscx_day2, 1 << 16, testutil::case_seed(7));
  traffic::inject_matches(trace, set, 0.01, testutil::case_seed(8));

  const MatcherPtr engine = core::make_matcher(GetParam(), set);
  const MatcherPtr reference = core::make_matcher(core::Algorithm::aho_corasick, set);
  EXPECT_EQ(engine->find_matches(trace), reference->find_matches(trace))
      << testutil::seed_note();
}

TEST_P(RealisticEquivalence, GeneratedRulesetOnMixedTrace) {
  pattern::RulesetConfig cfg;
  cfg.count = 300;
  cfg.seed = testutil::case_seed(78);
  const auto set = pattern::generate_ruleset(cfg);
  const auto trace = traffic::generate_trace(traffic::TraceKind::darpa2000, 1 << 16, testutil::case_seed(9));

  const MatcherPtr engine = core::make_matcher(GetParam(), set);
  const MatcherPtr reference = core::make_matcher(core::Algorithm::aho_corasick, set);
  EXPECT_EQ(engine->find_matches(trace), reference->find_matches(trace))
      << testutil::seed_note();
}

TEST_P(RealisticEquivalence, RandomBinaryTrace) {
  pattern::RulesetConfig cfg;
  cfg.count = 200;
  cfg.seed = testutil::case_seed(79);
  cfg.binary_fraction = 0.5;
  const auto set = pattern::generate_ruleset(cfg);
  const auto trace = traffic::generate_trace(traffic::TraceKind::random, 1 << 16, testutil::case_seed(10));

  const MatcherPtr engine = core::make_matcher(GetParam(), set);
  const MatcherPtr reference = core::make_matcher(core::Algorithm::aho_corasick, set);
  EXPECT_EQ(engine->find_matches(trace), reference->find_matches(trace))
      << testutil::seed_note();
}

// ---- adversarial micro-cases ---------------------------------------------------

class AdversarialCases : public ::testing::TestWithParam<core::Algorithm> {};

INSTANTIATE_TEST_SUITE_P(Engines, AdversarialCases, ::testing::ValuesIn(engines_under_test()),
                         [](const auto& info) {
                           std::string n{core::algorithm_name(info.param)};
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST_P(AdversarialCases, SharedPrefixFamilies) {
  // attack / attribute: the paper's own false-positive example for Filter 2.
  pattern::PatternSet set;
  set.add("attack");
  set.add("attribute");
  set.add("att");
  set.add("at");
  const MatcherPtr m = core::make_matcher(GetParam(), set);
  testutil::expect_matches_naive(*m, set,
                                 util::as_view("the attacker set an attribute at attic"));
}

TEST_P(AdversarialCases, PatternEqualsWholeInput) {
  pattern::PatternSet set;
  set.add("exactinput");
  const MatcherPtr m = core::make_matcher(GetParam(), set);
  EXPECT_EQ(m->count_matches(util::as_view("exactinput")), 1u);
}

TEST_P(AdversarialCases, RepeatedPatternBackToBack) {
  pattern::PatternSet set;
  set.add("abab");
  const MatcherPtr m = core::make_matcher(GetParam(), set);
  // "abababab": matches at 0,2,4.
  EXPECT_EQ(m->count_matches(util::as_view("abababab")), 3u);
}

TEST_P(AdversarialCases, AllBytesIdentical) {
  pattern::PatternSet set;
  set.add("aaaa");
  set.add("aa");
  const MatcherPtr m = core::make_matcher(GetParam(), set);
  const std::string text(100, 'a');
  testutil::expect_matches_naive(*m, set, util::as_view(text));
}

TEST_P(AdversarialCases, NocaseAndExactVariantsOfSameBytes) {
  pattern::PatternSet set;
  set.add("Select", false);
  set.add("Select", true);
  set.add("select", false);
  const MatcherPtr m = core::make_matcher(GetParam(), set);
  testutil::expect_matches_naive(*m, set, util::as_view("select SELECT Select sElEcT"));
}

TEST_P(AdversarialCases, HighBytePatterns) {
  pattern::PatternSet set;
  set.add(util::Bytes{0xFF, 0xFF});
  set.add(util::Bytes{0xFE});
  set.add(util::Bytes{0x80, 0x81, 0x82, 0x83, 0x84});
  const MatcherPtr m = core::make_matcher(GetParam(), set);
  util::Bytes text;
  for (int i = 0; i < 400; ++i) text.push_back(static_cast<std::uint8_t>(0x7E + (i % 10)));
  text.insert(text.end(), {0xFF, 0xFF, 0xFE, 0x80, 0x81, 0x82, 0x83, 0x84});
  testutil::expect_matches_naive(*m, set, text);
}

TEST_P(AdversarialCases, MatchEveryPosition) {
  // Pattern "aa" in "aaaa...": a match starts at every position; stresses
  // candidate-array growth and verification throughput.
  pattern::PatternSet set;
  set.add("aa");
  const MatcherPtr m = core::make_matcher(GetParam(), set);
  const std::string text(5000, 'a');
  EXPECT_EQ(m->count_matches(util::as_view(text)), 4999u);
}

}  // namespace
}  // namespace vpm
