// Chaos suite: seeded fault injection against every robustness mechanism.
//
// Covers the failpoint framework itself (spec grammar, determinism, counter
// contracts), then each armed site end to end: ring push/pop, reassembly
// buffering, alert-sink delivery (GuardedSink quarantine + NDJSON write
// failures), hot-swap publish, exporter socket short writes, and whole-batch
// worker failure.  The load-bearing invariants:
//   * faults off  -> alert output identical to a never-armed run;
//   * faults on   -> no deadlock, no crash, and the accounting identity
//                    routed == Σ packets, packets == processed + shed
//     holds per worker — every packet is processed or accounted shed, never
//     silently lost;
//   * the degradation ladder climbs/descends one rung per evaluation with
//     hysteresis, and every shed byte lands in WorkerStats::shed_*.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/database.hpp"
#include "helpers.hpp"
#include "net/pcap.hpp"
#include "net/reassembly.hpp"
#include "pattern/serialize.hpp"
#include "pattern/snort_rules.hpp"
#include "pipeline/overload.hpp"
#include "pipeline/runtime.hpp"
#include "pipeline/watchdog.hpp"
#include "telemetry/http_exporter.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/ndjson_sink.hpp"
#include "util/failpoint.hpp"

namespace vpm {
namespace {

namespace fp = util::failpoint;

// Every test leaves the global failpoint state clean, so suite order and
// filtering cannot leak arming between tests.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { fp::disarm(); }
  void TearDown() override { fp::disarm(); }
};

net::Packet tcp_packet(std::uint32_t src_ip, std::uint16_t src_port, std::uint32_t seq,
                       std::string_view payload, std::uint64_t ts = 0,
                       std::uint16_t dst_port = 80) {
  net::Packet p;
  p.timestamp_us = ts;
  p.tuple.src_ip = src_ip;
  p.tuple.dst_ip = 0xC0A80001;
  p.tuple.src_port = src_port;
  p.tuple.dst_port = dst_port;
  p.tuple.proto = net::IpProto::tcp;
  p.tcp_seq = seq;
  p.payload = util::to_bytes(payload);
  return p;
}

pattern::PatternSet demo_rules() {
  pattern::PatternSet rules;
  rules.add("NEEDLE", false, pattern::Group::http);
  rules.add("zz-generic-zz", false, pattern::Group::generic);
  return rules;
}

// Asserts the drain identity on a stopped pipeline: nothing in, through, or
// out of the rings is ever silently lost, fault injection or not.
void expect_accounting_identity(const pipeline::PipelineStats& stats) {
  std::uint64_t ring_packets = 0;
  for (const auto& w : stats.workers) {
    EXPECT_EQ(w.packets, w.processed_packets + w.shed_packets)
        << "per-worker identity: consumed == processed + shed";
    ring_packets += w.packets;
  }
  EXPECT_EQ(stats.routed, ring_packets) << "every routed packet was consumed";
  EXPECT_EQ(stats.submitted, stats.routed + stats.dropped_backpressure)
      << "every submitted packet was routed or counted dropped";
}

// ---- failpoint framework --------------------------------------------------

using FpTest = ChaosTest;

TEST_F(FpTest, SpecParseErrorsAreReportedAndLeavePriorArmingIntact) {
  EXPECT_EQ(fp::arm("ring_push=always"), "");
  EXPECT_TRUE(fp::any_armed());

  EXPECT_NE(fp::arm("no_such_site=always"), "");
  EXPECT_NE(fp::arm("ring_push=bogus_mode"), "");
  EXPECT_NE(fp::arm("ring_push=every:0"), "");
  EXPECT_NE(fp::arm("ring_push=prob:nan?"), "");
  EXPECT_NE(fp::arm("ring_push"), "");

  // Every failed arm above left the original arming live.
  EXPECT_TRUE(fp::any_armed());
  EXPECT_TRUE(fp::should_fail(fp::Site::ring_push));
}

TEST_F(FpTest, ModesFireOnTheDocumentedHitIndices) {
  const auto fire_pattern = [](const char* spec) {
    EXPECT_EQ(fp::arm(spec), "") << spec;
    std::vector<bool> fired;
    for (int i = 0; i < 10; ++i) fired.push_back(fp::should_fail(fp::Site::exporter_socket));
    return fired;
  };

  EXPECT_EQ(fire_pattern("exporter_socket=every:3"),
            (std::vector<bool>{0, 0, 1, 0, 0, 1, 0, 0, 1, 0}));
  EXPECT_EQ(fp::hits(fp::Site::exporter_socket), 10u);
  EXPECT_EQ(fp::fires(fp::Site::exporter_socket), 3u);

  EXPECT_EQ(fire_pattern("exporter_socket=after:7"),
            (std::vector<bool>{0, 0, 0, 0, 0, 0, 0, 1, 1, 1}));
  EXPECT_EQ(fire_pattern("exporter_socket=once:4"),
            (std::vector<bool>{0, 0, 0, 1, 0, 0, 0, 0, 0, 0}));
  EXPECT_EQ(fire_pattern("exporter_socket=always"), std::vector<bool>(10, true));

  EXPECT_EQ(fp::arm("exporter_socket=off"), "");
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(fp::should_fail(fp::Site::exporter_socket));
}

TEST_F(FpTest, ProbabilisticFiresAreAPureFunctionOfSeedAndHitIndex) {
  const auto draw = [](std::uint64_t seed) {
    EXPECT_EQ(fp::arm("hot_swap_publish=prob:0.5", seed), "");
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(fp::should_fail(fp::Site::hot_swap_publish));
    return fired;
  };

  const auto a1 = draw(42);
  const auto a2 = draw(42);
  EXPECT_EQ(a1, a2) << "re-arming with the same seed must replay the same fires";
  EXPECT_NE(a1, draw(43)) << "a different seed must select a different fire set";
  // prob:0.5 over 64 draws: both outcomes occur (P[miss] ~ 2^-64).
  EXPECT_NE(std::count(a1.begin(), a1.end(), true), 0);
  EXPECT_NE(std::count(a1.begin(), a1.end(), false), 0);
}

TEST_F(FpTest, DescribeListsArmedSitesWithCounters) {
  EXPECT_EQ(fp::arm("ring_push=every:2,alert_sink_write=always"), "");
  (void)fp::should_fail(fp::Site::ring_push);
  const std::string desc = fp::describe();
  EXPECT_NE(desc.find("ring_push"), std::string::npos);
  EXPECT_NE(desc.find("alert_sink_write"), std::string::npos);
  EXPECT_NE(desc.find("hits="), std::string::npos);
  fp::disarm();
  EXPECT_TRUE(fp::describe().empty());
}

TEST_F(FpTest, SiteNamesRoundTrip) {
  for (std::size_t i = 0; i < fp::kSiteCount; ++i) {
    const auto site = static_cast<fp::Site>(i);
    const auto back = fp::site_from_name(fp::site_name(site));
    ASSERT_TRUE(back.has_value()) << fp::site_name(site);
    EXPECT_EQ(*back, site);
  }
  EXPECT_FALSE(fp::site_from_name("nope").has_value());
}

// ---- ring + reassembly sites ----------------------------------------------

using ChaosRing = ChaosTest;

TEST_F(ChaosRing, PushFailpointReportsFullAndLeavesTheItemUntouched) {
  pipeline::SpscRing<int> ring(4);
  ASSERT_EQ(fp::arm("ring_push=always"), "");
  int item = 7;
  EXPECT_FALSE(ring.try_push(item));
  EXPECT_EQ(item, 7);
  fp::disarm();
  EXPECT_TRUE(ring.try_push(item));

  ASSERT_EQ(fp::arm("ring_pop=always"), "");
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out)) << "armed pop reports empty even when data waits";
  fp::disarm();
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 7);
}

using ChaosReassembly = ChaosTest;

TEST_F(ChaosReassembly, BufferFailpointDropsSegmentsAsBudgetExhaustion) {
  std::size_t delivered = 0;
  net::TcpReassembler reasm([&](const net::StreamChunk& c) { delivered += c.data.size(); });

  reasm.ingest(tcp_packet(1, 40000, 100, "aaa"));  // pins ISN, delivers in order
  const std::size_t delivered_before = delivered;

  ASSERT_EQ(fp::arm("reassembly_buffer=always"), "");
  reasm.ingest(tcp_packet(1, 40000, 110, "bbb"));  // hole -> buffered -> injected drop
  EXPECT_GE(reasm.stats().dropped_segments, 1u);
  EXPECT_EQ(delivered, delivered_before);

  fp::disarm();
  reasm.ingest(tcp_packet(1, 40000, 103, "ccccccc"));  // fills 103..110
  EXPECT_EQ(delivered, delivered_before + 7) << "the dropped segment must stay dropped";
}

// ---- alert sink containment ------------------------------------------------

class FlakySink final : public ids::AlertSink {
 public:
  bool throwing = false;
  std::vector<ids::Alert> received;
  void on_alert(const ids::Alert& alert) override {
    if (throwing) throw std::runtime_error("sink down");
    received.push_back(alert);
  }
};

using ChaosSink = ChaosTest;

TEST_F(ChaosSink, GuardedSinkQuarantinesAfterConsecutiveFailuresOnly) {
  FlakySink inner;
  pipeline::GuardedSink guard(&inner, /*quarantine_after=*/3);
  const ids::Alert alert{1, 0, 0, pattern::Group::http, 0};

  inner.throwing = true;
  guard.on_alert(alert);
  guard.on_alert(alert);
  inner.throwing = false;
  guard.on_alert(alert);  // success resets the streak
  inner.throwing = true;
  guard.on_alert(alert);
  guard.on_alert(alert);
  EXPECT_FALSE(guard.quarantined()) << "4 errors, but never 3 consecutive";
  EXPECT_EQ(guard.errors(), 4u);
  EXPECT_EQ(inner.received.size(), 1u);

  guard.on_alert(alert);  // third consecutive failure
  EXPECT_TRUE(guard.quarantined());
  inner.throwing = false;
  guard.on_alert(alert);  // quarantined: counted + dropped, inner untouched
  EXPECT_EQ(guard.dropped(), 1u);
  EXPECT_EQ(inner.received.size(), 1u);
}

TEST_F(ChaosSink, WriteFailpointDrivesQuarantineWithoutAThrowingSink) {
  FlakySink inner;
  pipeline::GuardedSink guard(&inner, /*quarantine_after=*/2);
  ASSERT_EQ(fp::arm("alert_sink_write=always"), "");
  const ids::Alert alert{1, 0, 0, pattern::Group::http, 0};
  guard.on_alert(alert);
  guard.on_alert(alert);
  EXPECT_TRUE(guard.quarantined());
  EXPECT_EQ(guard.errors(), 2u);
  EXPECT_TRUE(inner.received.empty()) << "the injected failure fires before delivery";
}

TEST_F(ChaosSink, NdjsonSurvivesWriteFailuresAndKeepsForwarding) {
  std::vector<ids::Alert> forwarded;
  ids::AlertBuffer collect(forwarded);

  char* buffer = nullptr;
  std::size_t buffer_size = 0;
  std::FILE* mem = open_memstream(&buffer, &buffer_size);
  ASSERT_NE(mem, nullptr);
  {
    telemetry::NdjsonAlertSink sink(mem, nullptr, &collect);
    ASSERT_EQ(fp::arm("alert_sink_write=always"), "");
    sink.on_alert(ids::Alert{1, 0, 0, pattern::Group::http, 0});
    sink.on_alert(ids::Alert{2, 0, 4, pattern::Group::dns, 0});
    EXPECT_EQ(sink.dropped(), 2u);
    EXPECT_EQ(sink.emitted(), 0u);
    EXPECT_FALSE(sink.ok());
    EXPECT_EQ(forwarded.size(), 2u) << "downstream delivery survives a sick log file";

    fp::disarm();
    sink.on_alert(ids::Alert{3, 0, 8, pattern::Group::http, 0});
    EXPECT_EQ(sink.emitted(), 1u) << "the sink recovers once writes succeed again";
    EXPECT_EQ(forwarded.size(), 3u);
  }
  std::fclose(mem);  // caller owns the memstream (the sink only borrows it)
  std::free(buffer);
}

// ---- hot-swap publish site -------------------------------------------------

using ChaosSwap = ChaosTest;

TEST_F(ChaosSwap, PublishFailpointThrowsAndTheOldGenerationStaysLive) {
  const DatabasePtr db_a = compile(core::Algorithm::vpatch, demo_rules());
  const DatabasePtr db_b = compile(core::Algorithm::vpatch, demo_rules());

  pipeline::PipelineConfig cfg;
  cfg.workers = 2;
  pipeline::PipelineRuntime rt(db_a, cfg);
  rt.start();
  const std::uint64_t gen_before = rt.generation();

  ASSERT_EQ(fp::arm("hot_swap_publish=always"), "");
  EXPECT_THROW(rt.swap_database(db_b), std::runtime_error);
  EXPECT_EQ(rt.generation(), gen_before) << "a failed publish must not change the ruleset";

  fp::disarm();
  rt.submit(tcp_packet(1, 40001, 100, "xxNEEDLExx"));
  rt.swap_database(db_b);
  EXPECT_NE(rt.generation(), gen_before);
  rt.stop();
  EXPECT_EQ(rt.alerts().size(), 1u) << "the pipeline keeps scanning across a failed swap";
  expect_accounting_identity(rt.stats());
}

// ---- degradation ladder ----------------------------------------------------

TEST(OverloadLadder, ClimbsAndDescendsOneRungPerUpdateWithHysteresis) {
  pipeline::OverloadConfig cfg;
  cfg.enabled = true;  // defaults: enter {.50,.75,.90}, exit {.30,.55,.75}
  pipeline::OverloadManager mgr(cfg);
  using L = pipeline::DegradationLevel;

  EXPECT_EQ(mgr.update(0.95), L::shrink_budgets) << "one rung per evaluation, not a jump";
  EXPECT_EQ(mgr.update(0.95), L::evict_early);
  EXPECT_EQ(mgr.update(0.95), L::shed_load);
  EXPECT_EQ(mgr.update(0.95), L::shed_load) << "the top rung saturates";

  EXPECT_EQ(mgr.update(0.80), L::shed_load) << "0.80 is inside the hysteresis band";
  EXPECT_EQ(mgr.update(0.74), L::evict_early);
  EXPECT_EQ(mgr.update(0.60), L::evict_early) << "not yet below exit_fill[1]";
  EXPECT_EQ(mgr.update(0.50), L::shrink_budgets);
  EXPECT_EQ(mgr.update(0.10), L::normal);
  EXPECT_EQ(mgr.transitions(), 6u);
}

TEST(OverloadLadder, NamedPoliciesResolve) {
  const auto off = pipeline::overload_policy_from_name("off");
  ASSERT_TRUE(off.has_value());
  EXPECT_FALSE(off->enabled);

  const auto conservative = pipeline::overload_policy_from_name("conservative");
  ASSERT_TRUE(conservative.has_value());
  EXPECT_TRUE(conservative->enabled);

  const auto aggressive = pipeline::overload_policy_from_name("aggressive");
  ASSERT_TRUE(aggressive.has_value());
  EXPECT_TRUE(aggressive->enabled);
  EXPECT_LT(aggressive->enter_fill[0], conservative->enter_fill[0]);
  EXPECT_LT(aggressive->shed_payload_bytes, conservative->shed_payload_bytes);

  EXPECT_FALSE(pipeline::overload_policy_from_name("yolo").has_value());
}

using ChaosOverload = ChaosTest;

TEST_F(ChaosOverload, ShedLoadAccountsEveryPacketAndByte) {
  pipeline::PipelineConfig cfg;
  cfg.workers = 2;
  cfg.batch_packets = 1;  // one ladder evaluation per packet
  cfg.overload.enabled = true;
  // Force the climb: every evaluation sees fill >= enter, never below exit.
  for (double& e : cfg.overload.enter_fill) e = 0.0;
  for (double& e : cfg.overload.exit_fill) e = -1.0;
  cfg.overload.shed_payload_bytes = 8;  // every 32-byte payload is oversized

  pipeline::PipelineRuntime rt(demo_rules(), cfg);
  rt.start();
  const std::string payload(32, 'x');
  for (std::uint32_t i = 0; i < 200; ++i) {
    rt.submit(tcp_packet(1 + i % 8, 40000, 100 + (i / 8) * 32, payload, i));
  }
  rt.stop();

  const auto stats = rt.stats();
  expect_accounting_identity(stats);
  const auto totals = stats.totals();
  EXPECT_GT(totals.shed_packets, 0u) << "rung 3 must shed oversized payloads";
  EXPECT_EQ(totals.shed_bytes, totals.shed_packets * payload.size());
  EXPECT_EQ(totals.degradation_level, 3u) << "gauge mirrors the top rung";
  EXPECT_GE(totals.degradation_transitions, 3u);
}

TEST_F(ChaosOverload, DisabledLadderShedsNothing) {
  pipeline::PipelineConfig cfg;
  cfg.workers = 2;
  pipeline::PipelineRuntime rt(demo_rules(), cfg);
  rt.start();
  for (std::uint32_t i = 0; i < 100; ++i) {
    rt.submit(tcp_packet(1 + i % 4, 40000, 100 + (i / 4) * 8, "xxNEEDLE", i));
  }
  rt.stop();
  const auto totals = rt.stats().totals();
  EXPECT_EQ(totals.shed_packets, 0u);
  EXPECT_EQ(totals.processed_packets, totals.packets);
  EXPECT_EQ(totals.degradation_level, 0u);
}

// ---- fault differential ----------------------------------------------------

using ChaosDifferential = ChaosTest;

std::vector<ids::Alert> run_pipeline(const std::vector<net::Packet>& packets) {
  pipeline::PipelineConfig cfg;
  cfg.workers = 2;
  cfg.batch_packets = 4;
  pipeline::PipelineRuntime rt(demo_rules(), cfg);
  rt.start();
  for (const auto& p : packets) rt.submit(p);
  rt.stop();
  expect_accounting_identity(rt.stats());
  std::vector<ids::Alert> alerts = rt.alerts();
  std::sort(alerts.begin(), alerts.end());
  return alerts;
}

TEST_F(ChaosDifferential, DisarmedRunsAreIdenticalAndBlockedPushRetriesAreLossless) {
  std::vector<net::Packet> packets;
  for (std::uint32_t f = 0; f < 16; ++f) {
    packets.push_back(tcp_packet(10 + f, 50000, 100, "ab NEE", f));
    packets.push_back(tcp_packet(10 + f, 50000, 106, "DLE cd", f + 16));
  }

  const auto baseline = run_pipeline(packets);
  ASSERT_EQ(baseline.size(), 16u);
  EXPECT_EQ(run_pipeline(packets), baseline) << "disarmed runs must be deterministic";

  // Injected ring-full under the block policy: the router retries until the
  // push lands, so faults cost latency, never alerts.
  ASSERT_EQ(fp::arm("ring_push=every:3"), "");
  EXPECT_EQ(run_pipeline(packets), baseline);
  EXPECT_GT(fp::fires(fp::Site::ring_push), 0u) << "the fault actually fired";

  // Injected ring-empty on the consumer side: workers just spin once more.
  ASSERT_EQ(fp::arm("ring_pop=every:2"), "");
  EXPECT_EQ(run_pipeline(packets), baseline);

  fp::disarm();
  EXPECT_EQ(run_pipeline(packets), baseline) << "disarming restores the exact baseline";
}

// ---- worker failure + watchdog ---------------------------------------------

using ChaosWorker = ChaosTest;

TEST_F(ChaosWorker, BatchFailureIsContainedDrainedAndAccounted) {
  ASSERT_EQ(fp::arm("worker_batch=always"), "");
  pipeline::PipelineConfig cfg;
  cfg.workers = 2;
  cfg.batch_packets = 4;
  pipeline::PipelineRuntime rt(demo_rules(), cfg);
  rt.start();
  for (std::uint32_t i = 0; i < 64; ++i) {
    rt.submit(tcp_packet(1 + i % 8, 40000, 100 + (i / 8) * 8, "xxNEEDLE", i));
  }
  rt.stop();  // must terminate: dead workers drain their rings

  const auto stats = rt.stats();
  expect_accounting_identity(stats);
  EXPECT_GE(stats.worker_failures, 1u);
  ASSERT_FALSE(stats.errors.empty());
  EXPECT_NE(stats.errors.front().find("failpoint"), std::string::npos);
  const auto totals = stats.totals();
  EXPECT_EQ(totals.processed_packets, 0u) << "every batch threw before processing";
  EXPECT_EQ(totals.shed_packets, totals.packets);
}

TEST(ChaosWatchdog, FlagsOneStallPerEpisodeAndClearsOnRecovery) {
  std::atomic<std::uint64_t> heartbeat{0};
  std::atomic<bool> finished{false};
  pipeline::Watchdog dog({.interval_ms = 2, .stall_intervals = 2});
  dog.watch({&heartbeat, &finished});
  dog.start();

  const auto wait_until = [&](auto cond) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!cond() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return cond();
  };

  EXPECT_TRUE(wait_until([&] { return dog.stalls() >= 1; })) << "flat heartbeat = stall";
  EXPECT_EQ(dog.currently_stalled(), 1u);
  EXPECT_EQ(dog.stalls(), 1u) << "one episode counts once, not once per sample";

  // Recovery: the heartbeat advances, the episode ends.
  std::thread beater([&] {
    for (int i = 0; i < 200 && dog.currently_stalled() != 0; ++i) {
      heartbeat.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  beater.join();
  EXPECT_TRUE(wait_until([&] { return dog.currently_stalled() == 0; }));

  // A second wedge is a NEW episode.
  EXPECT_TRUE(wait_until([&] { return dog.stalls() >= 2; }));

  // A finished worker is never a stall, however flat its heartbeat.
  finished.store(true, std::memory_order_release);
  EXPECT_TRUE(wait_until([&] { return dog.currently_stalled() == 0; }));
  dog.stop();
}

class WedgingSink final : public ids::AlertSink {
 public:
  void on_alert(const ids::Alert&) override {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return released_; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool released_ = false;
};

TEST(ChaosWatchdog, PipelineSurfacesAWedgedWorkerInStats) {
  WedgingSink sink;
  pipeline::PipelineConfig cfg;
  cfg.workers = 2;
  cfg.batch_packets = 1;
  cfg.watchdog_interval_ms = 2;
  cfg.watchdog_stall_intervals = 3;
  cfg.alert_sink = &sink;
  pipeline::PipelineRuntime rt(demo_rules(), cfg);
  rt.start();
  rt.submit(tcp_packet(1, 40000, 100, "xxNEEDLExx"));
  rt.flush();

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (rt.stats().watchdog_stalls == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(rt.stats().watchdog_stalls, 1u)
      << "a sink wedged inside a batch must show up as a stall";

  sink.release();
  rt.stop();
  expect_accounting_identity(rt.stats());
}

// ---- exporter socket site ---------------------------------------------------

std::string http_request(std::uint16_t port, const std::string& head) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
      << std::strerror(errno);
  const std::string req = head + "\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0), static_cast<ssize_t>(req.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

using ChaosExporter = ChaosTest;

TEST_F(ChaosExporter, PartialWritesStillDeliverByteIdenticalResponses) {
  telemetry::MetricsRegistry reg;
  reg.counter("vpm_chaos_ops_total", "ops", {}).add(123);

  telemetry::HttpExporterConfig cfg;
  cfg.bind_address = "127.0.0.1";
  cfg.port = 0;
  telemetry::HttpExporter exporter(cfg);
  exporter.add_registry(reg);
  exporter.start();
  ASSERT_GT(exporter.port(), 0);

  const std::string baseline = http_request(exporter.port(), "GET /metrics HTTP/1.1");
  ASSERT_NE(baseline.find("vpm_chaos_ops_total 123"), std::string::npos);

  // Injected short writes: send_all degrades to one-byte chunks and must
  // still push the whole response through the poll-deadline loop.
  ASSERT_EQ(fp::arm("exporter_socket=always"), "");
  EXPECT_EQ(http_request(exporter.port(), "GET /metrics HTTP/1.1"), baseline);
  EXPECT_GT(fp::fires(fp::Site::exporter_socket), 0u);
  fp::disarm();
  EXPECT_EQ(exporter.slow_client_aborts(), 0u);
  exporter.stop();
}

TEST_F(ChaosExporter, SlowClientIsAbortedAtTheReadDeadline) {
  telemetry::HttpExporterConfig cfg;
  cfg.bind_address = "127.0.0.1";
  cfg.port = 0;
  cfg.read_timeout_ms = 50;
  telemetry::HttpExporter exporter(cfg);
  exporter.start();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(exporter.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  // A slow-loris client: partial headers, then silence.
  ASSERT_GT(::send(fd, "GET /metr", 9, 0), 0);
  char buf[256];
  const ssize_t n = ::recv(fd, buf, sizeof buf, 0);  // blocks until server closes
  EXPECT_EQ(n, 0) << "the server must hang up, not answer a half request";
  ::close(fd);

  EXPECT_GE(exporter.slow_client_aborts(), 1u);
  exporter.stop();
}

// ---- defensive decode regressions -------------------------------------------

TEST(HardenedDecode, PcapRecordClaimingMoreThanTheFileIsSkipped) {
  const auto pcap = net::write_pcap({tcp_packet(1, 40000, 100, "hello")});
  auto lying = pcap;
  ASSERT_GE(lying.size(), 36u);
  // Patch incl_len (record header offset 24 + 8) to ~2 GiB.
  lying[32] = 0xFF; lying[33] = 0xFF; lying[34] = 0xFF; lying[35] = 0x7F;
  const auto result = net::read_pcap(lying);
  EXPECT_EQ(result.packets.size(), 0u);
  EXPECT_GE(result.skipped_records, 1u);
}

TEST(HardenedDecode, PcapOversizedInFileRecordIsSkippedAndParsingResumes) {
  const auto valid = net::write_pcap({tcp_packet(1, 40000, 100, "hello")});
  ASSERT_GT(valid.size(), 24u);
  // header | bogus record claiming 70000 bytes (> eth + max sane payload,
  // present in full) | the valid record.  The parser must skip the claimed
  // extent and still decode the trailing record.
  util::Bytes stitched(valid.begin(), valid.begin() + 24);
  const std::uint32_t bogus_len = 70000;
  for (int i = 0; i < 8; ++i) stitched.push_back(0);  // ts_sec, ts_usec
  for (int i = 0; i < 2; ++i) {                       // incl_len, orig_len
    stitched.push_back(bogus_len & 0xFF);
    stitched.push_back(bogus_len >> 8 & 0xFF);
    stitched.push_back(bogus_len >> 16 & 0xFF);
    stitched.push_back(bogus_len >> 24 & 0xFF);
  }
  stitched.resize(stitched.size() + bogus_len, 0);
  stitched.insert(stitched.end(), valid.begin() + 24, valid.end());

  const auto result = net::read_pcap(stitched);
  EXPECT_EQ(result.skipped_records, 1u);
  ASSERT_EQ(result.packets.size(), 1u);
  EXPECT_EQ(result.packets[0].payload, util::to_bytes("hello"));
}

TEST(HardenedDecode, UdpLengthFieldBelowHeaderSizeIsRejected) {
  net::Packet p = tcp_packet(1, 40000, 0, "hello", 0, 53);
  p.tuple.proto = net::IpProto::udp;
  auto pcap = net::write_pcap({p});
  // UDP length field: record data at 40, eth 14, ipv4 20, udp len at +4.
  const std::size_t udp_len_off = 40 + 14 + 20 + 4;
  ASSERT_GT(pcap.size(), udp_len_off + 1);
  pcap[udp_len_off] = 0;
  pcap[udp_len_off + 1] = 3;  // < the 8-byte UDP header: impossible
  const auto result = net::read_pcap(pcap);
  EXPECT_EQ(result.packets.size(), 0u);
  EXPECT_EQ(result.skipped_records, 1u);
}

TEST(HardenedDecode, PatternDbImplausibleCountThrowsInsteadOfLooping) {
  pattern::PatternSet set;
  set.add("abc");
  auto blob = pattern::serialize_patterns(set);
  ASSERT_GE(blob.size(), 12u);
  // v1 layout: 8-byte magic, then the u32 pattern count.
  blob[8] = 0xFF; blob[9] = 0xFF; blob[10] = 0xFF; blob[11] = 0xFF;
  EXPECT_THROW(pattern::deserialize_patterns(blob), std::invalid_argument);
}

TEST(HardenedDecode, SnortOversizedLineAndContentAreCountedNotFatal) {
  std::string text = "alert tcp any any -> any 80 (content:\"ok\"; sid:1;)\n";
  text += "alert tcp any any -> any 80 (content:\"" + std::string(1 << 21, 'a') +
          "\"; sid:2;)\n";  // line over the 1 MiB ceiling
  text += "alert tcp any any -> any 80 (content:\"" + std::string(70000, 'b') +
          "\"; sid:3;)\n";  // content over the 64 KiB ceiling

  std::size_t skipped = 0;
  const auto rules = pattern::parse_rules(text, &skipped);
  EXPECT_EQ(rules.size(), 1u);
  EXPECT_EQ(skipped, 2u);
}

}  // namespace
}  // namespace vpm
