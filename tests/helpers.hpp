// Shared test fixtures: small pattern sets, random workloads, and the
// engine-equivalence assertion used across the differential suites.
#pragma once

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/naive.hpp"
#include "match/matcher.hpp"
#include "pattern/pattern_set.hpp"
#include "util/rng.hpp"

namespace vpm::testutil {

// ---- deterministic seeding -----------------------------------------------
//
// Every randomized suite derives its util::Rng seeds from one global base
// seed so a run is reproducible end to end.  The base is fixed by default
// (CI always runs the same counterexample space); set VPM_TEST_SEED=<n> to
// explore other universes.  Failure messages print the base seed so any
// counterexample replays with a single env var.

inline std::uint64_t global_seed() {
  static const std::uint64_t s = [] {
    constexpr std::uint64_t kDefault = 20170814;  // the paper's ICPP year
    const char* env = std::getenv("VPM_TEST_SEED");
    if (env == nullptr || *env == '\0') return kDefault;
    char* end = nullptr;
    const auto v = static_cast<std::uint64_t>(std::strtoull(env, &end, 0));
    if (end == env || *end != '\0') {
      // A typo must not silently select universe 0 while the developer
      // believes the universe they named was tested.
      std::fprintf(stderr,
                   "vpm tests: unparseable VPM_TEST_SEED=\"%s\"; "
                   "using default %llu\n",
                   env, static_cast<unsigned long long>(kDefault));
      return kDefault;
    }
    return v;
  }();
  return s;
}

// Stream-splits the base seed: distinct salts give independent Rng streams
// (splitmix64 finalizer, so salt=1/salt=2 do not produce correlated draws).
inline std::uint64_t case_seed(std::uint64_t salt) {
  std::uint64_t z = global_seed() + 0x9E3779B97F4A7C15ull * (salt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Appended to assertion messages: how to replay this exact run.
inline std::string seed_note() {
  return "VPM_TEST_SEED=" + std::to_string(global_seed());
}

// The canonical AC textbook example plus overlap-heavy extras.
inline pattern::PatternSet classic_set() {
  pattern::PatternSet set;
  set.add("he");
  set.add("she");
  set.add("his");
  set.add("hers");
  return set;
}

// Mixed-length, mixed-case set covering every family boundary (1..5 bytes).
inline pattern::PatternSet boundary_set() {
  pattern::PatternSet set;
  set.add("a");                    // 1B
  set.add("ab");                   // 2B
  set.add("abc");                  // 3B short-family max
  set.add("abcd");                 // 4B long-family min
  set.add("abcde");                // 5B
  set.add("GET", true);            // nocase short
  set.add("HTTP/1.1", true);       // nocase long
  set.add(util::Bytes{0x00, 0x01});       // binary incl. NUL
  set.add(util::Bytes{0xFF, 0xFE, 0xFD, 0xFC, 0xFB});
  return set;
}

// Deterministic random pattern set: lengths in [1, max_len], byte values
// drawn from a narrow alphabet so matches actually occur in random text.
inline pattern::PatternSet random_set(std::size_t count, std::size_t max_len,
                                      std::uint64_t seed, unsigned alphabet = 4) {
  pattern::PatternSet set;
  util::Rng rng(seed);
  std::size_t guard = 0;
  while (set.size() < count && guard++ < count * 50) {
    const std::size_t len = 1 + rng.below(max_len);
    util::Bytes b(len);
    for (auto& c : b) c = static_cast<std::uint8_t>('a' + rng.below(alphabet));
    set.add(std::move(b), rng.chance(0.3));
  }
  return set;
}

// Random text over the same narrow alphabet (plus occasional uppercase).
inline util::Bytes random_text(std::size_t len, std::uint64_t seed, unsigned alphabet = 4) {
  util::Bytes b(len);
  util::Rng rng(seed);
  for (auto& c : b) {
    const char base = rng.chance(0.25) ? 'A' : 'a';
    c = static_cast<std::uint8_t>(base + rng.below(alphabet));
  }
  return b;
}

// Asserts that `matcher` reports exactly the ground-truth match multiset.
inline void expect_matches_naive(const Matcher& matcher, const pattern::PatternSet& set,
                                 util::ByteView data, const std::string& context = {}) {
  const core::NaiveMatcher oracle(set);
  const auto expected = oracle.find_matches(data);
  const auto actual = matcher.find_matches(data);
  ASSERT_EQ(actual.size(), expected.size())
      << context << " [" << matcher.name() << "] match count mismatch (" << seed_note() << ")";
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual[i], expected[i])
        << context << " [" << matcher.name() << "] first divergence at index " << i
        << " (pattern " << expected[i].pattern_id << " pos " << expected[i].pos << ", "
        << seed_note() << ")";
  }
}

}  // namespace vpm::testutil
