// Shared test fixtures: small pattern sets, random workloads, and the
// engine-equivalence assertion used across the differential suites.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/naive.hpp"
#include "match/matcher.hpp"
#include "pattern/pattern_set.hpp"
#include "util/rng.hpp"

namespace vpm::testutil {

// The canonical AC textbook example plus overlap-heavy extras.
inline pattern::PatternSet classic_set() {
  pattern::PatternSet set;
  set.add("he");
  set.add("she");
  set.add("his");
  set.add("hers");
  return set;
}

// Mixed-length, mixed-case set covering every family boundary (1..5 bytes).
inline pattern::PatternSet boundary_set() {
  pattern::PatternSet set;
  set.add("a");                    // 1B
  set.add("ab");                   // 2B
  set.add("abc");                  // 3B short-family max
  set.add("abcd");                 // 4B long-family min
  set.add("abcde");                // 5B
  set.add("GET", true);            // nocase short
  set.add("HTTP/1.1", true);       // nocase long
  set.add(util::Bytes{0x00, 0x01});       // binary incl. NUL
  set.add(util::Bytes{0xFF, 0xFE, 0xFD, 0xFC, 0xFB});
  return set;
}

// Deterministic random pattern set: lengths in [1, max_len], byte values
// drawn from a narrow alphabet so matches actually occur in random text.
inline pattern::PatternSet random_set(std::size_t count, std::size_t max_len,
                                      std::uint64_t seed, unsigned alphabet = 4) {
  pattern::PatternSet set;
  util::Rng rng(seed);
  std::size_t guard = 0;
  while (set.size() < count && guard++ < count * 50) {
    const std::size_t len = 1 + rng.below(max_len);
    util::Bytes b(len);
    for (auto& c : b) c = static_cast<std::uint8_t>('a' + rng.below(alphabet));
    set.add(std::move(b), rng.chance(0.3));
  }
  return set;
}

// Random text over the same narrow alphabet (plus occasional uppercase).
inline util::Bytes random_text(std::size_t len, std::uint64_t seed, unsigned alphabet = 4) {
  util::Bytes b(len);
  util::Rng rng(seed);
  for (auto& c : b) {
    const char base = rng.chance(0.25) ? 'A' : 'a';
    c = static_cast<std::uint8_t>(base + rng.below(alphabet));
  }
  return b;
}

// Asserts that `matcher` reports exactly the ground-truth match multiset.
inline void expect_matches_naive(const Matcher& matcher, const pattern::PatternSet& set,
                                 util::ByteView data, const std::string& context = {}) {
  const core::NaiveMatcher oracle(set);
  const auto expected = oracle.find_matches(data);
  const auto actual = matcher.find_matches(data);
  ASSERT_EQ(actual.size(), expected.size())
      << context << " [" << matcher.name() << "] match count mismatch";
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual[i], expected[i])
        << context << " [" << matcher.name() << "] first divergence at index " << i
        << " (pattern " << expected[i].pattern_id << " pos " << expected[i].pos << ")";
  }
}

}  // namespace vpm::testutil
