// Core S-PATCH / V-PATCH tests: filter bank construction, the two-round
// engines, kernel/ISA equivalence, chunking, tails, stats instrumentation,
// and ablation option sanity.
#include <gtest/gtest.h>

#include "core/filter_bank.hpp"
#include "core/matcher_factory.hpp"
#include "core/naive.hpp"
#include "core/spatch.hpp"
#include "core/vpatch.hpp"
#include "helpers.hpp"
#include "simd/cpu_features.hpp"
#include "util/hash.hpp"

namespace vpm::core {
namespace {

using testutil::expect_matches_naive;

// ---- FilterBank -----------------------------------------------------------

TEST(FilterBank, ShortPatternsGoToF1Only) {
  pattern::PatternSet set;
  set.add("ab");
  const FilterBank bank(set);
  const auto w = util::load_u16(util::to_bytes("ab").data());
  EXPECT_TRUE(bank.test_f1(w));
  EXPECT_FALSE(bank.test_f2(w));
  EXPECT_TRUE(bank.has_short_patterns());
  EXPECT_FALSE(bank.has_long_patterns());
}

TEST(FilterBank, LongPatternsGoToF2AndF3) {
  pattern::PatternSet set;
  set.add("abcdef");
  const FilterBank bank(set);
  const auto w2 = util::load_u16(util::to_bytes("ab").data());
  const auto w4 = util::load_u32(util::to_bytes("abcd").data());
  EXPECT_FALSE(bank.test_f1(w2));
  EXPECT_TRUE(bank.test_f2(w2));
  EXPECT_TRUE(bank.test_f3(w4));
}

TEST(FilterBank, MergedLayoutInterleavesF1F2) {
  pattern::PatternSet set;
  set.add("ab");      // F1
  set.add("cdef");    // F2
  const FilterBank bank(set);
  const std::uint8_t* merged = bank.merged_data();
  for (std::uint32_t v : {util::load_u16(util::to_bytes("ab").data()),
                          util::load_u16(util::to_bytes("cd").data())}) {
    const std::uint8_t f1_byte = merged[2 * (v >> 3)];
    const std::uint8_t f2_byte = merged[2 * (v >> 3) + 1];
    EXPECT_EQ(((f1_byte >> (v & 7)) & 1) != 0, bank.test_f1(v));
    EXPECT_EQ(((f2_byte >> (v & 7)) & 1) != 0, bank.test_f2(v));
  }
}

TEST(FilterBank, MergedMatchesSeparateEverywhere) {
  const auto set = testutil::random_set(300, 10, 42, 26);
  const FilterBank bank(set);
  const std::uint8_t* merged = bank.merged_data();
  for (std::uint32_t v = 0; v < (1u << 16); ++v) {
    const bool f1 = (merged[2 * (v >> 3)] >> (v & 7)) & 1;
    const bool f2 = (merged[2 * (v >> 3) + 1] >> (v & 7)) & 1;
    ASSERT_EQ(f1, bank.test_f1(v)) << v;
    ASSERT_EQ(f2, bank.test_f2(v)) << v;
  }
}

TEST(FilterBank, F3SizeConfigurable) {
  pattern::PatternSet set;
  set.add("abcdefgh");
  FilterBankConfig cfg;
  cfg.f3_bits_log2 = 12;
  const FilterBank bank(set, cfg);
  EXPECT_EQ(bank.f3_bits_log2(), 12u);
  EXPECT_TRUE(bank.test_f3(util::load_u32(util::to_bytes("abcd").data())));
}

TEST(FilterBank, OccupancyGrowsWithPatterns) {
  const auto small = testutil::random_set(50, 10, 1, 26);
  const auto large = testutil::random_set(2000, 10, 2, 26);
  const FilterBank a(small), b(large);
  EXPECT_GT(b.f2_occupancy(), a.f2_occupancy());
  EXPECT_GT(b.f3_occupancy(), a.f3_occupancy());
}

// ---- S-PATCH ------------------------------------------------------------------

TEST(Spatch, BoundarySetAgainstOracle) {
  const auto set = testutil::boundary_set();
  const SpatchMatcher m(set);
  expect_matches_naive(m, set, util::as_view("a ab abc abcd abcde GET HtTp/1.1 xx"));
}

TEST(Spatch, RandomizedDifferential) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto set = testutil::random_set(80, 8, seed);
    const SpatchMatcher m(set);
    const auto text = testutil::random_text(4000, seed + 30);
    expect_matches_naive(m, set, text, "seed=" + std::to_string(seed));
  }
}

TEST(Spatch, ChunkBoundariesDoNotLoseMatches) {
  pattern::PatternSet set;
  set.add("boundary-crossing-pattern");
  SpatchConfig cfg;
  cfg.chunk_size = 64;  // force many chunks
  const SpatchMatcher m(set, cfg);
  std::string text(1000, '.');
  text.replace(60, 25, "boundary-crossing-pattern");   // straddles chunk 0/1
  text.replace(640, 25, "boundary-crossing-pattern");  // chunk 10
  EXPECT_EQ(m.count_matches(util::as_view(text)), 2u);
}

TEST(Spatch, ChunkSizeDoesNotChangeResults) {
  const auto set = testutil::random_set(50, 8, 5);
  const auto text = testutil::random_text(5000, 6);
  std::vector<Match> reference;
  for (std::size_t chunk : {7u, 64u, 333u, 4096u, 1u << 20}) {
    SpatchConfig cfg;
    cfg.chunk_size = chunk;
    const SpatchMatcher m(set, cfg);
    const auto got = m.find_matches(text);
    if (reference.empty()) {
      reference = got;
    } else {
      EXPECT_EQ(got, reference) << "chunk=" << chunk;
    }
  }
  EXPECT_FALSE(reference.empty());
}

TEST(Spatch, TailPositions) {
  pattern::PatternSet set;
  set.add("x");
  set.add("yz");
  set.add("wxyz");
  const SpatchMatcher m(set);
  EXPECT_EQ(m.count_matches(util::as_view("x")), 1u);       // 1-byte input
  EXPECT_EQ(m.count_matches(util::as_view("yz")), 1u);      // exact 2-byte
  EXPECT_EQ(m.count_matches(util::as_view("wxyz")), 3u);    // wxyz@0, x@1, yz@2
  EXPECT_EQ(m.count_matches(util::as_view("aax")), 1u);     // match at last byte
}

TEST(Spatch, EmptyAndDegenerateInputs) {
  const auto set = testutil::boundary_set();
  const SpatchMatcher m(set);
  EXPECT_EQ(m.count_matches({}), 0u);
  for (std::size_t len = 1; len <= 8; ++len) {
    const auto text = testutil::random_text(len, len);
    expect_matches_naive(m, set, text, "len=" + std::to_string(len));
  }
}

TEST(Spatch, StatsSplitFilteringAndVerification) {
  const auto set = testutil::random_set(100, 8, 7);
  const SpatchMatcher m(set);
  const auto text = testutil::random_text(1 << 16, 8);
  ScanStats stats;
  CountingSink sink;
  m.scan_with_stats(text, sink, stats);
  EXPECT_GT(stats.filter_seconds, 0.0);
  EXPECT_EQ(stats.matches, sink.count());
  EXPECT_GT(stats.short_candidates + stats.long_candidates, 0u);
  EXPECT_GE(stats.filter_time_fraction(), 0.0);
  EXPECT_LE(stats.filter_time_fraction(), 1.0);
}

TEST(Spatch, FilterOnlyCountsAgreeWithStores) {
  const auto set = testutil::random_set(100, 8, 9);
  const SpatchMatcher m(set);
  const auto text = testutil::random_text(20000, 10);
  const auto with = m.filter_only(text, true);
  const auto without = m.filter_only(text, false);
  EXPECT_EQ(with.short_candidates, without.short_candidates);
  EXPECT_EQ(with.long_candidates, without.long_candidates);
}

TEST(Spatch, FewerLongCandidatesThanDfcStyleF2Alone) {
  // Filter 3 must strictly reduce candidates vs Filter 2 alone on random
  // input — the design point of the third filter.
  const auto set = testutil::random_set(200, 10, 11);
  const SpatchMatcher m(set);
  const auto text = testutil::random_text(50000, 12);
  const auto& bank = m.filter_bank();
  std::uint64_t f2_hits = 0;
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    if (bank.test_f2(util::load_u16(text.data() + i))) ++f2_hits;
  }
  const auto result = m.filter_only(text, false);
  EXPECT_LT(result.long_candidates, f2_hits);
}

// ---- V-PATCH ------------------------------------------------------------------

std::vector<Isa> testable_isas() {
  std::vector<Isa> isas{Isa::scalar};
  if (simd::cpu().has_avx2_kernel()) isas.push_back(Isa::avx2);
  if (simd::cpu().has_avx512_kernel()) isas.push_back(Isa::avx512);
  return isas;
}

class VpatchIsa : public ::testing::TestWithParam<Isa> {
 protected:
  VpatchConfig config() const {
    VpatchConfig cfg;
    cfg.isa = GetParam();
    return cfg;
  }
};

INSTANTIATE_TEST_SUITE_P(AllIsas, VpatchIsa, ::testing::ValuesIn(testable_isas()),
                         [](const auto& info) { return std::string(isa_name(info.param)); });

TEST_P(VpatchIsa, BoundarySetAgainstOracle) {
  const auto set = testutil::boundary_set();
  const VpatchMatcher m(set, config());
  expect_matches_naive(m, set, util::as_view("a ab abc abcd abcde GET HtTp/1.1 xx"));
}

TEST_P(VpatchIsa, RandomizedDifferential) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto set = testutil::random_set(80, 8, seed);
    const VpatchMatcher m(set, config());
    const auto text = testutil::random_text(4000, seed + 40);
    expect_matches_naive(m, set, text, "seed=" + std::to_string(seed));
  }
}

TEST_P(VpatchIsa, AgreesWithSpatchOnHttpLikeText) {
  const auto set = testutil::random_set(150, 10, 13);
  const SpatchMatcher scalar(set);
  const VpatchMatcher vec(set, config());
  const auto text = testutil::random_text(100000, 14);
  EXPECT_EQ(vec.find_matches(text), scalar.find_matches(text));
}

TEST_P(VpatchIsa, AllLengthsNearVectorBoundaries) {
  pattern::PatternSet set;
  set.add("ab");
  set.add("a");
  set.add("bcde");
  set.add("deadbeef");
  const VpatchMatcher m(set, config());
  for (std::size_t len = 0; len <= 80; ++len) {
    const auto text = testutil::random_text(len, len * 13 + 1, 5);
    expect_matches_naive(m, set, text, "len=" + std::to_string(len));
  }
}

TEST_P(VpatchIsa, MatchesAtChunkAndVectorSeams) {
  pattern::PatternSet set;
  set.add("seam");
  VpatchConfig cfg = config();
  cfg.chunk_size = 128;
  const VpatchMatcher m(set, cfg);
  // Place "seam" across every offset near the chunk boundary.
  for (std::size_t pos = 120; pos <= 136; ++pos) {
    std::string text(300, '.');
    text.replace(pos, 4, "seam");
    EXPECT_EQ(m.count_matches(util::as_view(text)), 1u) << "pos=" << pos;
  }
}

TEST_P(VpatchIsa, StatsTrackLaneUtilization) {
  const auto set = testutil::random_set(200, 10, 15);
  const VpatchMatcher m(set, config());
  const auto text = testutil::random_text(1 << 16, 16);
  ScanStats stats;
  CountingSink sink;
  m.scan_with_stats(text, sink, stats);
  EXPECT_EQ(stats.vector_width, m.vector_width());
  if (GetParam() != Isa::scalar) {
    EXPECT_GT(stats.f3_blocks, 0u);
    EXPECT_GT(stats.f3_lane_utilization(), 0.0);
    EXPECT_LE(stats.f3_lane_utilization(), 1.0);
  }
}

TEST_P(VpatchIsa, FilterOnlyMatchesScalarCounts) {
  const auto set = testutil::random_set(120, 10, 17);
  const SpatchMatcher scalar(set);
  const VpatchMatcher vec(set, config());
  const auto text = testutil::random_text(50000, 18);
  const auto s = scalar.filter_only(text, true);
  const auto v_stores = vec.filter_only(text, true);
  const auto v_nostores = vec.filter_only(text, false);
  EXPECT_EQ(v_stores.short_candidates, s.short_candidates);
  EXPECT_EQ(v_stores.long_candidates, s.long_candidates);
  EXPECT_EQ(v_nostores.short_candidates, s.short_candidates);
  EXPECT_EQ(v_nostores.long_candidates, s.long_candidates);
}

TEST_P(VpatchIsa, KernelOptionCombinationsAreEquivalent) {
  const auto set = testutil::random_set(100, 10, 19);
  const auto text = testutil::random_text(30000, 20);
  const SpatchMatcher reference(set);
  const auto expected = reference.find_matches(text);
  for (bool unroll : {false, true}) {
    for (bool merged : {false, true}) {
      for (bool spec : {false, true}) {
        VpatchConfig cfg = config();
        cfg.kernel.unroll2 = unroll;
        cfg.kernel.merged_filters = merged;
        cfg.kernel.speculative_f3 = spec;
        const VpatchMatcher m(set, cfg);
        EXPECT_EQ(m.find_matches(text), expected)
            << "unroll=" << unroll << " merged=" << merged << " spec=" << spec;
      }
    }
  }
}

TEST(Vpatch, BestIsaResolvesToWidestAvailable) {
  const Isa best = resolve_isa(Isa::best);
  if (simd::cpu().has_avx512_kernel()) {
    EXPECT_EQ(best, Isa::avx512);
  } else if (simd::cpu().has_avx2_kernel()) {
    EXPECT_EQ(best, Isa::avx2);
  } else {
    EXPECT_EQ(best, Isa::scalar);
  }
}

// available_algorithms() is the factory's advertised contract: every entry
// must construct and scan without throwing on the current feature set.  This
// suite is also re-run with VPM_FORCE_ISA=scalar (see tests/CMakeLists.txt),
// which exercises the same assertion with the vector engines masked out.
TEST(MatcherFactory, AvailableAlgorithmsAllConstructAndScan) {
  const auto set = testutil::boundary_set();
  const auto algos = available_algorithms();
  ASSERT_FALSE(algos.empty());
  for (const Algorithm a : algos) {
    EXPECT_TRUE(algorithm_available(a)) << algorithm_name(a);
    MatcherPtr m;
    ASSERT_NO_THROW(m = make_matcher(a, set)) << algorithm_name(a);
    testutil::expect_matches_naive(*m, set, util::as_view("xyzabcdexyz GET abc"),
                                   std::string(algorithm_name(a)));
  }
}

TEST(MatcherFactory, UnavailableAlgorithmsThrowInsteadOfMisbehaving) {
  const auto set = testutil::boundary_set();
  for (const Algorithm a :
       {Algorithm::vector_dfc, Algorithm::vpatch_avx2, Algorithm::vpatch_avx512}) {
    if (algorithm_available(a)) continue;
    EXPECT_THROW((void)make_matcher(a, set), std::runtime_error) << algorithm_name(a);
  }
}

TEST(MatcherFactory, VpatchConstructsOnScalarAndBestIsa) {
  // Isa::scalar must work everywhere; Isa::best must resolve to something
  // constructible whatever the CPU (or VPM_FORCE_ISA) says.
  const auto set = testutil::boundary_set();
  for (const Isa isa : {Isa::scalar, Isa::best}) {
    VpatchConfig cfg;
    cfg.isa = isa;
    ASSERT_NO_THROW((VpatchMatcher{set, cfg})) << isa_name(isa);
    VpatchMatcher m(set, cfg);
    testutil::expect_matches_naive(m, set, util::as_view("she sells abcde shells"),
                                   std::string(isa_name(isa)));
  }
}

TEST(Vpatch, NameReflectsIsa) {
  const auto set = testutil::boundary_set();
  if (simd::cpu().has_avx2_kernel()) {
    VpatchConfig cfg;
    cfg.isa = Isa::avx2;
    EXPECT_EQ(VpatchMatcher(set, cfg).name(), "V-PATCH");
  }
  if (simd::cpu().has_avx512_kernel()) {
    VpatchConfig cfg;
    cfg.isa = Isa::avx512;
    EXPECT_EQ(VpatchMatcher(set, cfg).name(), "V-PATCH-512");
  }
}

// ---- factory ---------------------------------------------------------------------

TEST(Factory, NamesRoundTrip) {
  for (Algorithm a : available_algorithms()) {
    const auto name = algorithm_name(a);
    const auto parsed = algorithm_from_name(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, a);
  }
  EXPECT_FALSE(algorithm_from_name("nonsense").has_value());
}

TEST(Factory, BuildsEveryAvailableAlgorithm) {
  const auto set = testutil::boundary_set();
  for (Algorithm a : available_algorithms()) {
    const MatcherPtr m = make_matcher(a, set);
    ASSERT_NE(m, nullptr);
    EXPECT_FALSE(m->name().empty());
    // Smoke scan.
    EXPECT_EQ(m->count_matches(util::as_view("abcd GET")),
              make_matcher(Algorithm::naive, set)->count_matches(util::as_view("abcd GET")))
        << m->name();
  }
}

// ---- naive ------------------------------------------------------------------------

TEST(Naive, FindsOverlapsAndDuplicates) {
  pattern::PatternSet set;
  set.add("aa");
  set.add("a");
  const NaiveMatcher m(set);
  // "aaa": a@0,1,2 and aa@0,1 = 5 matches.
  EXPECT_EQ(m.count_matches(util::as_view("aaa")), 5u);
}

}  // namespace
}  // namespace vpm::core
