// Unit tests for the foundation utilities.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "util/arena.hpp"
#include "util/bitarray.hpp"
#include "util/byte_io.hpp"
#include "util/bytes.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace vpm::util {
namespace {

// ---- BitArray ------------------------------------------------------------

TEST(BitArray, StartsAllClear) {
  BitArray bits(1024);
  for (std::size_t i = 0; i < 1024; ++i) EXPECT_FALSE(bits.test(i)) << i;
  EXPECT_EQ(bits.popcount(), 0u);
}

TEST(BitArray, SetTestClear) {
  BitArray bits(256);
  bits.set(0);
  bits.set(7);
  bits.set(8);
  bits.set(255);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(7));
  EXPECT_TRUE(bits.test(8));
  EXPECT_TRUE(bits.test(255));
  EXPECT_FALSE(bits.test(1));
  EXPECT_FALSE(bits.test(254));
  bits.clear(7);
  EXPECT_FALSE(bits.test(7));
  EXPECT_TRUE(bits.test(8));
}

TEST(BitArray, SetIsIdempotent) {
  BitArray bits(64);
  bits.set(33);
  bits.set(33);
  EXPECT_EQ(bits.popcount(), 1u);
}

TEST(BitArray, PopcountAndOccupancy) {
  BitArray bits(1000);
  for (std::size_t i = 0; i < 1000; i += 10) bits.set(i);
  EXPECT_EQ(bits.popcount(), 100u);
  EXPECT_NEAR(bits.occupancy(), 0.1, 1e-12);
}

TEST(BitArray, ResetClearsEverything) {
  BitArray bits(512);
  for (std::size_t i = 0; i < 512; i += 3) bits.set(i);
  bits.reset();
  EXPECT_EQ(bits.popcount(), 0u);
}

TEST(BitArray, GatherSlackIsAllocatedAndZero) {
  BitArray bits(16);  // 2 data bytes + slack
  EXPECT_EQ(bits.byte_size(), 2u);
  // A 4-byte read at the last data byte must stay in bounds (this is what
  // the dword gathers in the kernels rely on).
  const std::uint8_t* p = bits.data();
  std::uint32_t word = 0;
  std::memcpy(&word, p + 1, 4);
  EXPECT_EQ(word & 0xFFFFFF00u, 0u);
}

TEST(BitArray, EmptyArray) {
  BitArray bits;
  EXPECT_EQ(bits.bit_size(), 0u);
  EXPECT_EQ(bits.occupancy(), 0.0);
}

TEST(BitArray, BitAndByteIndexConsistency) {
  BitArray bits(1 << 16);
  const std::size_t idx = 0xABCD;
  bits.set(idx);
  // The filter kernels read byte idx>>3 and test bit idx&7.
  EXPECT_TRUE((bits.data()[idx >> 3] >> (idx & 7)) & 1);
}

// ---- hashing ---------------------------------------------------------------

TEST(Hash, MultiplicativeHashInRange) {
  for (unsigned bits = 8; bits <= 20; bits += 4) {
    const std::uint32_t bound = 1u << bits;
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(multiplicative_hash(static_cast<std::uint32_t>(rng()), bits), bound);
    }
  }
}

TEST(Hash, MultiplicativeHashSpreadsPrefixes) {
  // Keys sharing a 2-byte prefix must not collapse into a few buckets.
  std::set<std::uint32_t> buckets;
  for (std::uint32_t suffix = 0; suffix < 1000; ++suffix) {
    buckets.insert(multiplicative_hash(0x4747u | (suffix << 16), 16));
  }
  EXPECT_GT(buckets.size(), 900u);
}

TEST(Hash, LoadLeAssemblesLittleEndian) {
  const std::uint8_t bytes[] = {0x01, 0x02, 0x03, 0x04};
  EXPECT_EQ(load_le(bytes, 1), 0x01u);
  EXPECT_EQ(load_u16(bytes), 0x0201u);
  EXPECT_EQ(load_le(bytes, 3), 0x030201u);
  EXPECT_EQ(load_u32(bytes), 0x04030201u);
}

TEST(Hash, Fnv1aDistinguishesPermutations) {
  const std::uint8_t a[] = {'a', 'b', 'c'};
  const std::uint8_t b[] = {'c', 'b', 'a'};
  EXPECT_NE(fnv1a(a, 3), fnv1a(b, 3));
}

TEST(Hash, Mix64AvalanchesSingleBit) {
  // Flipping one input bit should flip roughly half the output bits.
  int total = 0;
  for (int bit = 0; bit < 64; ++bit) {
    total += std::popcount(mix64(123456789) ^ mix64(123456789ull ^ (1ull << bit)));
  }
  EXPECT_GT(total / 64, 20);
  EXPECT_LT(total / 64, 44);
}

// ---- Rng -------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.between(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -2);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, PrintableStaysPrintable) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const char c = rng.printable();
    EXPECT_GE(c, 0x20);
    EXPECT_LT(c, 0x7F);
  }
}

// ---- stats -----------------------------------------------------------------

TEST(Stats, RunningMeanAndStddev) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, EmptyStats) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, BatchHelpersMatchRunning) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 10.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(mean_of(xs), s.mean());
  EXPECT_DOUBLE_EQ(stddev_of(xs), s.stddev());
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 50), 25.0);
}

TEST(Stats, PercentileOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(percentile_of({}, 50), 0.0);
}

// ---- bytes / case folding ---------------------------------------------------

TEST(Bytes, AsciiFolding) {
  EXPECT_EQ(ascii_lower('A'), 'a');
  EXPECT_EQ(ascii_lower('Z'), 'z');
  EXPECT_EQ(ascii_lower('a'), 'a');
  EXPECT_EQ(ascii_lower('0'), '0');
  EXPECT_EQ(ascii_lower(0xC4), 0xC4);  // no locale folding of high bytes
  EXPECT_EQ(ascii_upper('a'), 'A');
  EXPECT_TRUE(ascii_ieq('G', 'g'));
  EXPECT_FALSE(ascii_ieq('G', 'h'));
}

TEST(Bytes, BytesEqualModes) {
  const auto a = to_bytes("GeT");
  const auto b = to_bytes("gEt");
  EXPECT_TRUE(bytes_equal(a.data(), b.data(), 3, true));
  EXPECT_FALSE(bytes_equal(a.data(), b.data(), 3, false));
}

TEST(Bytes, RoundTripStringConversion) {
  const std::string s = "hello\x01world";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(Bytes, EscapeBytesRendersNonPrintable) {
  const auto b = to_bytes(std::string("A\x00Z", 3));
  EXPECT_EQ(escape_bytes(b), "A\\x00Z");
}

// ---- arena ------------------------------------------------------------------

TEST(Arena, OffsetsAreStableAcrossGrowth) {
  ByteArena arena;
  const auto off1 = arena.add(to_bytes("hello"));
  std::vector<std::uint32_t> offsets;
  for (int i = 0; i < 1000; ++i) offsets.push_back(arena.add(to_bytes("xyz")));
  EXPECT_EQ(to_string(arena.view(off1, 5)), "hello");
  EXPECT_EQ(to_string(arena.view(offsets[500], 3)), "xyz");
}

TEST(Arena, EmptySpanYieldsValidOffset) {
  ByteArena arena;
  const auto off = arena.add({});
  EXPECT_EQ(off, 0u);
  EXPECT_TRUE(arena.empty());
}

// ---- timer / throughput ------------------------------------------------------

TEST(Timer, ReportsForwardProgress) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(t.seconds(), 0.0);
}

TEST(Timer, GbpsArithmetic) {
  EXPECT_DOUBLE_EQ(gbps(1'000'000'000 / 8, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(gbps(0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(gbps(100, 0.0), 0.0);  // guard against div-by-zero
}

// ---- byte_io -----------------------------------------------------------------

TEST(ByteIo, RoundTripFile) {
  const std::string path = testing::TempDir() + "/vpm_io_test.bin";
  Bytes data(1000);
  Rng rng(9);
  for (auto& b : data) b = rng.byte();
  write_file(path, data);
  EXPECT_EQ(read_file(path), data);
  std::remove(path.c_str());
}

TEST(ByteIo, MissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/vpm/file"), std::runtime_error);
}

}  // namespace
}  // namespace vpm::util
