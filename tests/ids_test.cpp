// Mini-NIDS layer tests: streaming scan with carry, rule grouping, and the
// end-to-end engine.
#include <gtest/gtest.h>

#include "core/matcher_factory.hpp"
#include "helpers.hpp"
#include "ids/engine.hpp"
#include "ids/flow.hpp"
#include "ids/rule_group.hpp"

namespace vpm::ids {
namespace {

std::vector<std::uint32_t> lengths_of(const pattern::PatternSet& set) {
  std::vector<std::uint32_t> lengths;
  for (const pattern::Pattern& p : set) lengths.push_back(static_cast<std::uint32_t>(p.size()));
  return lengths;
}

// ---- StreamScanner -------------------------------------------------------

TEST(StreamScanner, WholeBufferEqualsSingleFeed) {
  const auto set = testutil::boundary_set();
  const auto m = core::make_matcher(core::Algorithm::spatch, set);
  const auto lengths = lengths_of(set);
  const auto text = testutil::random_text(5000, 1);

  StreamScanner scanner(*m, set.max_pattern_length(), lengths);
  CollectingSink streamed;
  scanner.feed(text, streamed);
  EXPECT_EQ(streamed.sorted(), m->find_matches(text));
}

TEST(StreamScanner, ChunkedFeedEqualsWholeBuffer) {
  const auto set = testutil::random_set(60, 8, 2);
  const auto m = core::make_matcher(core::Algorithm::vpatch, set);
  const auto lengths = lengths_of(set);
  const auto text = testutil::random_text(20000, 3);
  const auto expected = m->find_matches(text);

  for (std::size_t chunk_len : {1u, 7u, 100u, 1024u, 9999u}) {
    StreamScanner scanner(*m, set.max_pattern_length(), lengths);
    CollectingSink sink;
    for (std::size_t off = 0; off < text.size(); off += chunk_len) {
      const std::size_t len = std::min(chunk_len, text.size() - off);
      scanner.feed({text.data() + off, len}, sink);
    }
    EXPECT_EQ(sink.sorted(), expected) << "chunk_len=" << chunk_len;
  }
}

TEST(StreamScanner, MatchStraddlingChunkBoundaryFoundOnce) {
  pattern::PatternSet set;
  set.add("straddle");
  const auto m = core::make_matcher(core::Algorithm::spatch, set);
  StreamScanner scanner(*m, set.max_pattern_length(), lengths_of(set));
  CollectingSink sink;
  scanner.feed(util::as_view("xxxxstra"), sink);
  scanner.feed(util::as_view("ddlexxxx"), sink);
  ASSERT_EQ(sink.matches().size(), 1u);
  EXPECT_EQ(sink.matches()[0].pos, 4u);
}

TEST(StreamScanner, MatchInsideCarryNotDuplicated) {
  pattern::PatternSet set;
  set.add("dup");
  set.add("abcdefghij");  // long max-len -> deep carry
  const auto m = core::make_matcher(core::Algorithm::spatch, set);
  StreamScanner scanner(*m, set.max_pattern_length(), lengths_of(set));
  CollectingSink sink;
  scanner.feed(util::as_view("xxdupxx"), sink);   // match fully in first chunk
  scanner.feed(util::as_view("yyyyyyy"), sink);   // carry re-scan must not re-report
  ASSERT_EQ(sink.matches().size(), 1u);
  EXPECT_EQ(sink.matches()[0].pos, 2u);
}

TEST(StreamScanner, OffsetsAreAbsolute) {
  pattern::PatternSet set;
  set.add("mark");
  const auto m = core::make_matcher(core::Algorithm::spatch, set);
  StreamScanner scanner(*m, set.max_pattern_length(), lengths_of(set));
  CollectingSink sink;
  scanner.feed(util::as_view("0123456789"), sink);
  scanner.feed(util::as_view("0123mark89"), sink);
  ASSERT_EQ(sink.matches().size(), 1u);
  EXPECT_EQ(sink.matches()[0].pos, 14u);
  EXPECT_EQ(scanner.stream_length(), 20u);
}

TEST(StreamScanner, ResetForgetsHistory) {
  pattern::PatternSet set;
  set.add("join");
  const auto m = core::make_matcher(core::Algorithm::spatch, set);
  StreamScanner scanner(*m, set.max_pattern_length(), lengths_of(set));
  CollectingSink sink;
  scanner.feed(util::as_view("xxjo"), sink);
  scanner.reset();
  scanner.feed(util::as_view("inxx"), sink);
  EXPECT_TRUE(sink.matches().empty());
}

// ---- GroupedRules -------------------------------------------------------------

pattern::PatternSet grouped_set() {
  pattern::PatternSet set;
  set.add("GET /evil", false, pattern::Group::http);
  set.add("generic-attack", false, pattern::Group::generic);
  set.add("EHLO spam", false, pattern::Group::smtp);
  set.add("RETR secret", false, pattern::Group::ftp);
  return set;
}

TEST(GroupedRules, HttpGroupSeesHttpAndGeneric) {
  const auto master = grouped_set();
  const GroupedRules rules(master, core::Algorithm::spatch);
  const auto& http = rules.patterns_for(pattern::Group::http);
  EXPECT_EQ(http.size(), 2u);
  EXPECT_TRUE(http.contains(util::as_view("GET /evil"), false));
  EXPECT_TRUE(http.contains(util::as_view("generic-attack"), false));
  EXPECT_FALSE(http.contains(util::as_view("EHLO spam"), false));
}

TEST(GroupedRules, GenericGroupSeesOnlyGeneric) {
  const auto master = grouped_set();
  const GroupedRules rules(master, core::Algorithm::spatch);
  EXPECT_EQ(rules.patterns_for(pattern::Group::generic).size(), 1u);
}

TEST(GroupedRules, MasterIdMappingRoundTrips) {
  const auto master = grouped_set();
  const GroupedRules rules(master, core::Algorithm::spatch);
  const auto& smtp = rules.patterns_for(pattern::Group::smtp);
  for (std::uint32_t local = 0; local < smtp.size(); ++local) {
    const auto master_id = rules.master_id(pattern::Group::smtp, local);
    EXPECT_EQ(master[master_id].bytes, smtp[local].bytes);
  }
}

TEST(GroupedRules, HttpMatcherIgnoresSmtpPattern) {
  const auto master = grouped_set();
  const GroupedRules rules(master, core::Algorithm::spatch);
  const auto& m = rules.matcher_for(pattern::Group::http);
  EXPECT_EQ(m.count_matches(util::as_view("EHLO spam")), 0u);
  EXPECT_EQ(m.count_matches(util::as_view("GET /evil generic-attack")), 2u);
}

// ---- IdsEngine --------------------------------------------------------------------

TEST(IdsEngine, ProducesAlertsWithMasterIds) {
  const auto master = grouped_set();
  IdsEngine engine(master, {core::Algorithm::spatch});
  std::vector<Alert> alerts;
  engine.inspect(1, pattern::Group::http, util::as_view("zz GET /evil zz"), alerts);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].flow_id, 1u);
  EXPECT_EQ(alerts[0].pattern_id, 0u);  // master id of "GET /evil"
  EXPECT_EQ(alerts[0].stream_offset, 3u);
  EXPECT_EQ(alerts[0].group, pattern::Group::http);
}

TEST(IdsEngine, RoutesByProtocol) {
  const auto master = grouped_set();
  IdsEngine engine(master, {core::Algorithm::spatch});
  std::vector<Alert> alerts;
  // SMTP pattern inside an HTTP flow: not matched (different group).
  engine.inspect(1, pattern::Group::http, util::as_view("EHLO spam"), alerts);
  EXPECT_TRUE(alerts.empty());
  engine.inspect(2, pattern::Group::smtp, util::as_view("EHLO spam"), alerts);
  EXPECT_EQ(alerts.size(), 1u);
}

TEST(IdsEngine, FlowsKeepIndependentStreams) {
  pattern::PatternSet master;
  master.add("crossflow", false, pattern::Group::http);
  IdsEngine engine(master, {core::Algorithm::spatch});
  std::vector<Alert> alerts;
  engine.inspect(1, pattern::Group::http, util::as_view("xxcross"), alerts);
  engine.inspect(2, pattern::Group::http, util::as_view("flowxx"), alerts);
  EXPECT_TRUE(alerts.empty()) << "halves in different flows must not join";
  engine.inspect(1, pattern::Group::http, util::as_view("flowxx"), alerts);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].flow_id, 1u);
}

TEST(IdsEngine, CloseFlowDropsCarry) {
  pattern::PatternSet master;
  master.add("severed", false, pattern::Group::http);
  IdsEngine engine(master, {core::Algorithm::spatch});
  std::vector<Alert> alerts;
  engine.inspect(5, pattern::Group::http, util::as_view("xxseve"), alerts);
  engine.close_flow(5);
  engine.inspect(5, pattern::Group::http, util::as_view("redxx"), alerts);
  EXPECT_TRUE(alerts.empty());
}

TEST(IdsEngine, CountersAccumulate) {
  const auto master = grouped_set();
  IdsEngine engine(master, {core::Algorithm::spatch});
  std::vector<Alert> alerts;
  engine.inspect(1, pattern::Group::http, util::as_view("GET /evil"), alerts);
  engine.inspect(1, pattern::Group::http, util::as_view("generic-attack"), alerts);
  engine.inspect(9, pattern::Group::ftp, util::as_view("RETR secret"), alerts);
  const EngineCounters& c = engine.counters();
  EXPECT_EQ(c.chunks, 3u);
  EXPECT_EQ(c.flows, 2u);
  EXPECT_EQ(c.alerts, 3u);
  EXPECT_EQ(c.bytes_inspected, 9u + 14u + 11u);
}

TEST(IdsEngine, FormatAlertIsReadable) {
  const auto master = grouped_set();
  IdsEngine engine(master, {core::Algorithm::spatch});
  std::vector<Alert> alerts;
  engine.inspect(3, pattern::Group::http, util::as_view("GET /evil"), alerts);
  ASSERT_EQ(alerts.size(), 1u);
  const std::string line = format_alert(alerts[0], master);
  EXPECT_NE(line.find("flow=3"), std::string::npos);
  EXPECT_NE(line.find("group=http"), std::string::npos);
  EXPECT_NE(line.find("GET /evil"), std::string::npos);
}

}  // namespace
}  // namespace vpm::ids
